package openflow

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"sdnbuffer/internal/packet"
)

func TestStatsRequestRoundTrips(t *testing.T) {
	tests := []*StatsRequest{
		{StatsType: StatsDesc},
		{StatsType: StatsFlow, Match: ExactMatchForTest(), TableID: 0, OutPort: PortNone},
		{StatsType: StatsAggregate, Match: MatchAll(), OutPort: PortNone},
		{StatsType: StatsTable},
		{StatsType: StatsPort, PortNo: 2},
	}
	for _, m := range tests {
		t.Run(m.StatsType.String(), func(t *testing.T) {
			got := roundTrip(t, m, 9).(*StatsRequest)
			if got.StatsType != m.StatsType {
				t.Errorf("type = %v, want %v", got.StatsType, m.StatsType)
			}
			switch m.StatsType {
			case StatsFlow, StatsAggregate:
				if !got.Match.Equal(&m.Match) || got.OutPort != m.OutPort {
					t.Errorf("scope mismatch: %+v", got)
				}
			case StatsPort:
				if got.PortNo != m.PortNo {
					t.Errorf("port = %d, want %d", got.PortNo, m.PortNo)
				}
			}
		})
	}
}

func TestStatsReplyDescRoundTrip(t *testing.T) {
	m := &StatsReply{
		StatsType: StatsDesc,
		Desc: &DescStats{
			Manufacturer: "sdnbuffer project",
			Hardware:     "emulated",
			Software:     "v1",
			SerialNum:    "007",
			Datapath:     "dp",
		},
	}
	got := roundTrip(t, m, 10).(*StatsReply)
	if !reflect.DeepEqual(got.Desc, m.Desc) {
		t.Errorf("desc = %+v, want %+v", got.Desc, m.Desc)
	}
}

func TestStatsReplyFlowRoundTrip(t *testing.T) {
	m := &StatsReply{
		StatsType: StatsFlow,
		Flows: []FlowStatsEntry{
			{
				Match:       ExactMatchForTest(),
				DurationSec: 12, DurationNs: 500, Priority: 100,
				IdleTimeout: 5, HardTimeout: 60, Cookie: 7,
				PacketCount: 1000, ByteCount: 1_000_000,
				Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0xffff}},
			},
			{
				Match:    MatchAll(),
				Priority: 1,
				Actions:  []Action{&ActionSetNWTOS{TOS: 0x2e}, &ActionOutput{Port: 1}},
			},
		},
	}
	got := roundTrip(t, m, 11).(*StatsReply)
	if len(got.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(got.Flows))
	}
	for i := range m.Flows {
		w, g := m.Flows[i], got.Flows[i]
		if !g.Match.Equal(&w.Match) || g.PacketCount != w.PacketCount ||
			g.ByteCount != w.ByteCount || g.Priority != w.Priority ||
			g.Cookie != w.Cookie || g.IdleTimeout != w.IdleTimeout {
			t.Errorf("flow %d mismatch: got %+v want %+v", i, g, w)
		}
		if !reflect.DeepEqual(g.Actions, w.Actions) {
			t.Errorf("flow %d actions mismatch", i)
		}
	}
}

func TestStatsReplyAggregateTablePortRoundTrips(t *testing.T) {
	agg := &StatsReply{
		StatsType: StatsAggregate,
		Aggregate: &AggregateStats{PacketCount: 5, ByteCount: 5000, FlowCount: 2},
	}
	got := roundTrip(t, agg, 12).(*StatsReply)
	if !reflect.DeepEqual(got.Aggregate, agg.Aggregate) {
		t.Errorf("aggregate = %+v", got.Aggregate)
	}

	tbl := &StatsReply{
		StatsType: StatsTable,
		Tables: []TableStatsEntry{{
			TableID: 0, Name: "main", Wildcards: WildcardAll,
			MaxEntries: 1000, ActiveCount: 12, LookupCount: 99, MatchedCount: 88,
		}},
	}
	gotT := roundTrip(t, tbl, 13).(*StatsReply)
	if !reflect.DeepEqual(gotT.Tables, tbl.Tables) {
		t.Errorf("tables = %+v", gotT.Tables)
	}

	prt := &StatsReply{
		StatsType: StatsPort,
		Ports: []PortStatsEntry{
			{PortNo: 1, RxPackets: 10, TxPackets: 20, RxBytes: 100, TxBytes: 200},
			{PortNo: 2, RxErrors: 1, TxDropped: 2},
		},
	}
	gotP := roundTrip(t, prt, 14).(*StatsReply)
	if !reflect.DeepEqual(gotP.Ports, prt.Ports) {
		t.Errorf("ports = %+v", gotP.Ports)
	}
}

func TestStatsReplyEmptyLists(t *testing.T) {
	for _, st := range []StatsType{StatsFlow, StatsTable, StatsPort} {
		m := &StatsReply{StatsType: st}
		got := roundTrip(t, m, 15).(*StatsReply)
		if len(got.Flows)+len(got.Tables)+len(got.Ports) != 0 {
			t.Errorf("%v: nonempty decode of empty reply", st)
		}
	}
}

func TestStatsReplyRejectsUnknownType(t *testing.T) {
	b := MustEncode(&StatsReply{StatsType: StatsDesc}, 1)
	b[HeaderLen+1] = 99 // corrupt the stats type (low byte)
	// Length no longer matches a known body; must error, not panic.
	if _, _, err := Decode(b); err == nil {
		t.Error("accepted unknown stats type")
	}
}

func TestStatsDescTruncatesLongStrings(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	m := &StatsReply{StatsType: StatsDesc, Desc: &DescStats{Manufacturer: string(long)}}
	got := roundTrip(t, m, 16).(*StatsReply)
	if len(got.Desc.Manufacturer) >= 256 {
		t.Errorf("manufacturer not truncated: %d bytes", len(got.Desc.Manufacturer))
	}
}

func TestPropertyStatsReplyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	prop := func() bool {
		var m *StatsReply
		switch r.Intn(4) {
		case 0:
			m = &StatsReply{StatsType: StatsAggregate, Aggregate: &AggregateStats{
				PacketCount: r.Uint64(), ByteCount: r.Uint64(), FlowCount: r.Uint32(),
			}}
		case 1:
			var flows []FlowStatsEntry
			for i := 0; i < r.Intn(5); i++ {
				flows = append(flows, FlowStatsEntry{
					Match:    FlowMatch(randomKeyForStats(r)),
					Priority: uint16(r.Uint32()), Cookie: r.Uint64(),
					PacketCount: r.Uint64(), ByteCount: r.Uint64(),
					Actions: []Action{&ActionOutput{Port: uint16(r.Uint32())}},
				})
			}
			m = &StatsReply{StatsType: StatsFlow, Flows: flows}
		case 2:
			var tables []TableStatsEntry
			for i := 0; i < r.Intn(4); i++ {
				tables = append(tables, TableStatsEntry{
					TableID: uint8(i), Name: "t", LookupCount: r.Uint64(), MatchedCount: r.Uint64(),
				})
			}
			m = &StatsReply{StatsType: StatsTable, Tables: tables}
		default:
			var ports []PortStatsEntry
			for i := 0; i < r.Intn(6); i++ {
				ports = append(ports, PortStatsEntry{
					PortNo: uint16(i + 1), RxPackets: r.Uint64(), TxBytes: r.Uint64(),
				})
			}
			m = &StatsReply{StatsType: StatsPort, Ports: ports}
		}
		b, err := Encode(m, 1)
		if err != nil {
			return false
		}
		got, _, err := Decode(b)
		if err != nil {
			return false
		}
		// Re-encode: byte-identical round trip.
		b2, err := Encode(got, 1)
		if err != nil {
			return false
		}
		return string(b) == string(b2)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomKeyForStats(r *rand.Rand) (k packet.FlowKey) {
	var a, b [4]byte
	r.Read(a[:])
	r.Read(b[:])
	k.SrcIP = netip.AddrFrom4(a)
	k.DstIP = netip.AddrFrom4(b)
	k.SrcPort = uint16(r.Uint32())
	k.DstPort = uint16(r.Uint32())
	k.Proto = 17
	return k
}
