package openflow

import (
	"encoding/binary"
	"fmt"
)

// OpenFlow 1.0 statistics messages (OFPT_STATS_REQUEST / OFPT_STATS_REPLY).
// The paper's measurement methodology reads switch-side counters; these
// messages are how a controller does that over the wire, and they complete
// the spec subset the testbed exercises (the CapFlowStats/CapTableStats/
// CapPortStats capability bits the switch advertises).

// Stats message type codes.
const (
	TypeStatsRequest MsgType = 16
	TypeStatsReply   MsgType = 17
)

// StatsType selects the statistics body (OFPST_*).
type StatsType uint16

// Statistics kinds.
const (
	StatsDesc      StatsType = 0
	StatsFlow      StatsType = 1
	StatsAggregate StatsType = 2
	StatsTable     StatsType = 3
	StatsPort      StatsType = 4
)

// String names the stats type.
func (t StatsType) String() string {
	switch t {
	case StatsDesc:
		return "DESC"
	case StatsFlow:
		return "FLOW"
	case StatsAggregate:
		return "AGGREGATE"
	case StatsTable:
		return "TABLE"
	case StatsPort:
		return "PORT"
	default:
		return fmt.Sprintf("OFPST_%d", uint16(t))
	}
}

// StatsRequest asks the switch for statistics. Match/OutPort scope flow and
// aggregate requests; PortNo scopes port requests (PortNone = all ports).
type StatsRequest struct {
	StatsType StatsType
	Flags     uint16
	// Flow / aggregate scope.
	Match   Match
	TableID uint8
	OutPort uint16
	// Port scope.
	PortNo uint16
}

var _ Message = (*StatsRequest)(nil)

// Type implements Message.
func (*StatsRequest) Type() MsgType { return TypeStatsRequest }
func (m *StatsRequest) bodyLen() int {
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		return 4 + MatchLen + 4
	case StatsPort:
		return 4 + 8
	default:
		return 4
	}
}
func (m *StatsRequest) encodeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		m.Match.encode(b[4 : 4+MatchLen])
		b[4+MatchLen] = m.TableID
		binary.BigEndian.PutUint16(b[4+MatchLen+2:4+MatchLen+4], m.OutPort)
	case StatsPort:
		binary.BigEndian.PutUint16(b[4:6], m.PortNo)
	}
}
func (m *StatsRequest) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: stats request needs 4 bytes, have %d", ErrTruncated, len(b))
	}
	m.StatsType = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	switch m.StatsType {
	case StatsFlow, StatsAggregate:
		if len(b) < 4+MatchLen+4 {
			return fmt.Errorf("%w: flow stats request body %d bytes", ErrTruncated, len(b))
		}
		match, err := decodeMatch(b[4 : 4+MatchLen])
		if err != nil {
			return err
		}
		m.Match = match
		m.TableID = b[4+MatchLen]
		m.OutPort = binary.BigEndian.Uint16(b[4+MatchLen+2 : 4+MatchLen+4])
	case StatsPort:
		if len(b) < 4+8 {
			return fmt.Errorf("%w: port stats request body %d bytes", ErrTruncated, len(b))
		}
		m.PortNo = binary.BigEndian.Uint16(b[4:6])
	}
	return nil
}

// DescStats describes the switch implementation (OFPST_DESC reply).
type DescStats struct {
	Manufacturer string
	Hardware     string
	Software     string
	SerialNum    string
	Datapath     string
}

// FlowStatsEntry is one rule's statistics (OFPST_FLOW reply element).
type FlowStatsEntry struct {
	TableID     uint8
	Match       Match
	DurationSec uint32
	DurationNs  uint32
	Priority    uint16
	IdleTimeout uint16
	HardTimeout uint16
	Cookie      uint64
	PacketCount uint64
	ByteCount   uint64
	Actions     []Action
}

// AggregateStats summarizes the rules a scope matched (OFPST_AGGREGATE
// reply).
type AggregateStats struct {
	PacketCount uint64
	ByteCount   uint64
	FlowCount   uint32
}

// TableStatsEntry is one table's statistics (OFPST_TABLE reply element).
type TableStatsEntry struct {
	TableID      uint8
	Name         string
	Wildcards    uint32
	MaxEntries   uint32
	ActiveCount  uint32
	LookupCount  uint64
	MatchedCount uint64
}

// PortStatsEntry is one port's counters (OFPST_PORT reply element).
type PortStatsEntry struct {
	PortNo    uint16
	RxPackets uint64
	TxPackets uint64
	RxBytes   uint64
	TxBytes   uint64
	RxDropped uint64
	TxDropped uint64
	RxErrors  uint64
	TxErrors  uint64
}

// StatsReply answers a StatsRequest: exactly one of the payload fields
// matching StatsType is populated.
type StatsReply struct {
	StatsType StatsType
	Flags     uint16
	Desc      *DescStats
	Flows     []FlowStatsEntry
	Aggregate *AggregateStats
	Tables    []TableStatsEntry
	Ports     []PortStatsEntry
}

var _ Message = (*StatsReply)(nil)

const (
	descStrLen       = 256
	descSerialLen    = 32
	descStatsLen     = descStrLen*3 + descSerialLen + descStrLen
	flowStatsFixed   = 4 + MatchLen + 44 // length/table/pad + match + counters, before actions
	tableStatsLen    = 64
	portStatsLen     = 104
	aggregateBodyLen = 24
)

// Type implements Message.
func (*StatsReply) Type() MsgType { return TypeStatsReply }

func (m *StatsReply) bodyLen() int {
	n := 4
	switch m.StatsType {
	case StatsDesc:
		n += descStatsLen
	case StatsFlow:
		for i := range m.Flows {
			n += flowStatsFixed + actionsLen(m.Flows[i].Actions)
		}
	case StatsAggregate:
		n += aggregateBodyLen
	case StatsTable:
		n += tableStatsLen * len(m.Tables)
	case StatsPort:
		n += portStatsLen * len(m.Ports)
	}
	return n
}

func putPadded(b []byte, s string) {
	if len(s) >= len(b) {
		s = s[:len(b)-1] // keep a NUL terminator
	}
	copy(b, s)
}

func getPadded(b []byte) string {
	end := 0
	for end < len(b) && b[end] != 0 {
		end++
	}
	return string(b[:end])
}

func (m *StatsReply) encodeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(m.StatsType))
	binary.BigEndian.PutUint16(b[2:4], m.Flags)
	p := b[4:]
	switch m.StatsType {
	case StatsDesc:
		d := m.Desc
		if d == nil {
			d = &DescStats{}
		}
		putPadded(p[0:descStrLen], d.Manufacturer)
		putPadded(p[descStrLen:2*descStrLen], d.Hardware)
		putPadded(p[2*descStrLen:3*descStrLen], d.Software)
		putPadded(p[3*descStrLen:3*descStrLen+descSerialLen], d.SerialNum)
		putPadded(p[3*descStrLen+descSerialLen:], d.Datapath)
	case StatsFlow:
		off := 0
		for i := range m.Flows {
			e := &m.Flows[i]
			entryLen := flowStatsFixed + actionsLen(e.Actions)
			binary.BigEndian.PutUint16(p[off:off+2], uint16(entryLen))
			p[off+2] = e.TableID
			e.Match.encode(p[off+4 : off+4+MatchLen])
			q := p[off+4+MatchLen:]
			binary.BigEndian.PutUint32(q[0:4], e.DurationSec)
			binary.BigEndian.PutUint32(q[4:8], e.DurationNs)
			binary.BigEndian.PutUint16(q[8:10], e.Priority)
			binary.BigEndian.PutUint16(q[10:12], e.IdleTimeout)
			binary.BigEndian.PutUint16(q[12:14], e.HardTimeout)
			binary.BigEndian.PutUint64(q[20:28], e.Cookie)
			binary.BigEndian.PutUint64(q[28:36], e.PacketCount)
			binary.BigEndian.PutUint64(q[36:44], e.ByteCount)
			encodeActions(q[44:44+actionsLen(e.Actions)], e.Actions)
			off += entryLen
		}
	case StatsAggregate:
		a := m.Aggregate
		if a == nil {
			a = &AggregateStats{}
		}
		binary.BigEndian.PutUint64(p[0:8], a.PacketCount)
		binary.BigEndian.PutUint64(p[8:16], a.ByteCount)
		binary.BigEndian.PutUint32(p[16:20], a.FlowCount)
	case StatsTable:
		off := 0
		for i := range m.Tables {
			e := &m.Tables[i]
			p[off] = e.TableID
			putPadded(p[off+4:off+36], e.Name)
			binary.BigEndian.PutUint32(p[off+36:off+40], e.Wildcards)
			binary.BigEndian.PutUint32(p[off+40:off+44], e.MaxEntries)
			binary.BigEndian.PutUint32(p[off+44:off+48], e.ActiveCount)
			binary.BigEndian.PutUint64(p[off+48:off+56], e.LookupCount)
			binary.BigEndian.PutUint64(p[off+56:off+64], e.MatchedCount)
			off += tableStatsLen
		}
	case StatsPort:
		off := 0
		for i := range m.Ports {
			e := &m.Ports[i]
			binary.BigEndian.PutUint16(p[off:off+2], e.PortNo)
			q := p[off+8:]
			binary.BigEndian.PutUint64(q[0:8], e.RxPackets)
			binary.BigEndian.PutUint64(q[8:16], e.TxPackets)
			binary.BigEndian.PutUint64(q[16:24], e.RxBytes)
			binary.BigEndian.PutUint64(q[24:32], e.TxBytes)
			binary.BigEndian.PutUint64(q[32:40], e.RxDropped)
			binary.BigEndian.PutUint64(q[40:48], e.TxDropped)
			binary.BigEndian.PutUint64(q[48:56], e.RxErrors)
			binary.BigEndian.PutUint64(q[56:64], e.TxErrors)
			off += portStatsLen
		}
	}
}

func (m *StatsReply) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: stats reply needs 4 bytes, have %d", ErrTruncated, len(b))
	}
	m.StatsType = StatsType(binary.BigEndian.Uint16(b[0:2]))
	m.Flags = binary.BigEndian.Uint16(b[2:4])
	p := b[4:]
	switch m.StatsType {
	case StatsDesc:
		if len(p) < descStatsLen {
			return fmt.Errorf("%w: desc stats body %d bytes", ErrTruncated, len(p))
		}
		m.Desc = &DescStats{
			Manufacturer: getPadded(p[0:descStrLen]),
			Hardware:     getPadded(p[descStrLen : 2*descStrLen]),
			Software:     getPadded(p[2*descStrLen : 3*descStrLen]),
			SerialNum:    getPadded(p[3*descStrLen : 3*descStrLen+descSerialLen]),
			Datapath:     getPadded(p[3*descStrLen+descSerialLen:]),
		}
	case StatsFlow:
		m.Flows = nil
		for len(p) > 0 {
			if len(p) < flowStatsFixed {
				return fmt.Errorf("%w: flow stats entry %d bytes", ErrTruncated, len(p))
			}
			entryLen := int(binary.BigEndian.Uint16(p[0:2]))
			if entryLen < flowStatsFixed || entryLen > len(p) {
				return fmt.Errorf("%w: flow stats entry length %d", ErrBadLength, entryLen)
			}
			var e FlowStatsEntry
			e.TableID = p[2]
			match, err := decodeMatch(p[4 : 4+MatchLen])
			if err != nil {
				return err
			}
			e.Match = match
			q := p[4+MatchLen : entryLen]
			e.DurationSec = binary.BigEndian.Uint32(q[0:4])
			e.DurationNs = binary.BigEndian.Uint32(q[4:8])
			e.Priority = binary.BigEndian.Uint16(q[8:10])
			e.IdleTimeout = binary.BigEndian.Uint16(q[10:12])
			e.HardTimeout = binary.BigEndian.Uint16(q[12:14])
			e.Cookie = binary.BigEndian.Uint64(q[20:28])
			e.PacketCount = binary.BigEndian.Uint64(q[28:36])
			e.ByteCount = binary.BigEndian.Uint64(q[36:44])
			actions, err := decodeActions(q[44:])
			if err != nil {
				return err
			}
			e.Actions = actions
			m.Flows = append(m.Flows, e)
			p = p[entryLen:]
		}
	case StatsAggregate:
		if len(p) < aggregateBodyLen {
			return fmt.Errorf("%w: aggregate stats body %d bytes", ErrTruncated, len(p))
		}
		m.Aggregate = &AggregateStats{
			PacketCount: binary.BigEndian.Uint64(p[0:8]),
			ByteCount:   binary.BigEndian.Uint64(p[8:16]),
			FlowCount:   binary.BigEndian.Uint32(p[16:20]),
		}
	case StatsTable:
		if len(p)%tableStatsLen != 0 {
			return fmt.Errorf("%w: table stats body %d bytes", ErrBadLength, len(p))
		}
		m.Tables = nil
		for off := 0; off < len(p); off += tableStatsLen {
			m.Tables = append(m.Tables, TableStatsEntry{
				TableID:      p[off],
				Name:         getPadded(p[off+4 : off+36]),
				Wildcards:    binary.BigEndian.Uint32(p[off+36 : off+40]),
				MaxEntries:   binary.BigEndian.Uint32(p[off+40 : off+44]),
				ActiveCount:  binary.BigEndian.Uint32(p[off+44 : off+48]),
				LookupCount:  binary.BigEndian.Uint64(p[off+48 : off+56]),
				MatchedCount: binary.BigEndian.Uint64(p[off+56 : off+64]),
			})
		}
	case StatsPort:
		if len(p)%portStatsLen != 0 {
			return fmt.Errorf("%w: port stats body %d bytes", ErrBadLength, len(p))
		}
		m.Ports = nil
		for off := 0; off < len(p); off += portStatsLen {
			q := p[off+8:]
			m.Ports = append(m.Ports, PortStatsEntry{
				PortNo:    binary.BigEndian.Uint16(p[off : off+2]),
				RxPackets: binary.BigEndian.Uint64(q[0:8]),
				TxPackets: binary.BigEndian.Uint64(q[8:16]),
				RxBytes:   binary.BigEndian.Uint64(q[16:24]),
				TxBytes:   binary.BigEndian.Uint64(q[24:32]),
				RxDropped: binary.BigEndian.Uint64(q[32:40]),
				TxDropped: binary.BigEndian.Uint64(q[40:48]),
				RxErrors:  binary.BigEndian.Uint64(q[48:56]),
				TxErrors:  binary.BigEndian.Uint64(q[56:64]),
			})
		}
	default:
		return fmt.Errorf("openflow: unsupported stats type %d", uint16(m.StatsType))
	}
	return nil
}
