package openflow

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"

	"sdnbuffer/internal/packet"
)

func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	b, err := Encode(m, xid)
	if err != nil {
		t.Fatalf("Encode(%v): %v", m.Type(), err)
	}
	if len(b) != EncodedLen(m) {
		t.Fatalf("EncodedLen(%v) = %d, encoded %d", m.Type(), EncodedLen(m), len(b))
	}
	got, gotXid, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.Type(), err)
	}
	if gotXid != xid {
		t.Errorf("xid = %d, want %d", gotXid, xid)
	}
	if got.Type() != m.Type() {
		t.Errorf("type = %v, want %v", got.Type(), m.Type())
	}
	return got
}

func TestHelloRoundTrip(t *testing.T) {
	got := roundTrip(t, &Hello{}, 1)
	if _, ok := got.(*Hello); !ok {
		t.Errorf("decoded %T, want *Hello", got)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	req := &EchoRequest{Data: []byte("ping")}
	got := roundTrip(t, req, 2).(*EchoRequest)
	if !bytes.Equal(got.Data, req.Data) {
		t.Errorf("data = %q, want %q", got.Data, req.Data)
	}
	rep := &EchoReply{Data: []byte("pong")}
	gotRep := roundTrip(t, rep, 3).(*EchoReply)
	if !bytes.Equal(gotRep.Data, rep.Data) {
		t.Errorf("data = %q, want %q", gotRep.Data, rep.Data)
	}
}

func TestErrorMsgRoundTrip(t *testing.T) {
	m := &ErrorMsg{ErrType: ErrTypeBadRequest, Code: ErrCodeBadBufferID, Data: []byte{1, 2, 3}}
	got := roundTrip(t, m, 4).(*ErrorMsg)
	if got.ErrType != m.ErrType || got.Code != m.Code || !bytes.Equal(got.Data, m.Data) {
		t.Errorf("got %+v, want %+v", got, m)
	}
	if got.Error() == "" {
		t.Error("Error() empty")
	}
}

func TestFeaturesReplyRoundTrip(t *testing.T) {
	m := &FeaturesReply{
		DatapathID:   0x00004e756d626572,
		NBuffers:     256,
		NTables:      1,
		Capabilities: CapFlowStats | CapPortStats,
		Actions:      1,
		Ports: []PhyPort{
			{PortNo: 1, HWAddr: packet.MAC{2, 0, 0, 0, 0, 1}, Name: "eth1", Curr: 0x40},
			{PortNo: 2, HWAddr: packet.MAC{2, 0, 0, 0, 0, 2}, Name: "eth2", State: 1},
		},
	}
	got := roundTrip(t, m, 5).(*FeaturesReply)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestFeaturesReplyLongPortNameTruncated(t *testing.T) {
	m := &FeaturesReply{Ports: []PhyPort{{PortNo: 1, Name: "a-very-long-port-name-exceeding"}}}
	got := roundTrip(t, m, 6).(*FeaturesReply)
	if len(got.Ports[0].Name) > 15 {
		t.Errorf("name %q longer than 15 bytes", got.Ports[0].Name)
	}
}

func TestConfigRoundTrip(t *testing.T) {
	set := &SetConfig{Config: SwitchConfig{Flags: 0, MissSendLen: 128}}
	got := roundTrip(t, set, 7).(*SetConfig)
	if got.Config != set.Config {
		t.Errorf("got %+v, want %+v", got.Config, set.Config)
	}
	rep := &GetConfigReply{Config: SwitchConfig{MissSendLen: 0xffff}}
	gotRep := roundTrip(t, rep, 8).(*GetConfigReply)
	if gotRep.Config != rep.Config {
		t.Errorf("got %+v, want %+v", gotRep.Config, rep.Config)
	}
	roundTrip(t, &GetConfigRequest{}, 9)
	roundTrip(t, &FeaturesRequest{}, 10)
	roundTrip(t, &BarrierRequest{}, 11)
	roundTrip(t, &BarrierReply{}, 12)
}

func TestPacketInRoundTrip(t *testing.T) {
	m := &PacketIn{
		BufferID: 42,
		TotalLen: 1000,
		InPort:   1,
		Reason:   ReasonNoMatch,
		Data:     bytes.Repeat([]byte{0xaa}, 128),
	}
	got := roundTrip(t, m, 13).(*PacketIn)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestPacketInSizeWithAndWithoutBuffer(t *testing.T) {
	full := &PacketIn{BufferID: NoBuffer, TotalLen: 1000, Data: make([]byte, 1000)}
	buffered := &PacketIn{BufferID: 7, TotalLen: 1000, Data: make([]byte, DefaultMissSendLen)}
	if EncodedLen(full) != HeaderLen+10+1000 {
		t.Errorf("full packet_in length = %d", EncodedLen(full))
	}
	if EncodedLen(buffered) != HeaderLen+10+128 {
		t.Errorf("buffered packet_in length = %d", EncodedLen(buffered))
	}
	// The buffered request must be much smaller: that is the paper's point.
	if EncodedLen(buffered)*4 > EncodedLen(full) {
		t.Errorf("buffered packet_in (%dB) not substantially smaller than full (%dB)",
			EncodedLen(buffered), EncodedLen(full))
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		m    *PacketOut
	}{
		{
			"buffered release",
			&PacketOut{BufferID: 9, InPort: 1, Actions: []Action{&ActionOutput{Port: 2, MaxLen: 0}}},
		},
		{
			"full packet",
			&PacketOut{BufferID: NoBuffer, InPort: 1,
				Actions: []Action{&ActionOutput{Port: 2}}, Data: bytes.Repeat([]byte{1}, 64)},
		},
		{
			"drop (no actions)",
			&PacketOut{BufferID: 3, InPort: PortNone},
		},
		{
			"multiple actions",
			&PacketOut{BufferID: 3, InPort: 1, Actions: []Action{
				&ActionSetDLDst{Addr: packet.MAC{1, 2, 3, 4, 5, 6}},
				&ActionSetDLSrc{Addr: packet.MAC{6, 5, 4, 3, 2, 1}},
				&ActionSetNWTOS{TOS: 0x2e},
				&ActionEnqueue{Port: 4, QueueID: 2},
				&ActionOutput{Port: 4},
			}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := roundTrip(t, tt.m, 14).(*PacketOut)
			if !reflect.DeepEqual(got, tt.m) {
				t.Errorf("got %+v, want %+v", got, tt.m)
			}
		})
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := &FlowMod{
		Match: Match{
			Wildcards: WildcardAll &^ (WildcardNWSrcAll | WildcardTPDst),
			NWSrc:     netip.MustParseAddr("10.1.2.3"),
			TPDst:     443,
		},
		Cookie:      0xfeedface,
		Command:     FlowModAdd,
		IdleTimeout: 5,
		HardTimeout: 30,
		Priority:    100,
		BufferID:    NoBuffer,
		OutPort:     PortNone,
		Flags:       FlowModFlagSendFlowRem,
		Actions:     []Action{&ActionOutput{Port: 2, MaxLen: 0xffff}},
	}
	got := roundTrip(t, m, 15).(*FlowMod)
	if got.Cookie != m.Cookie || got.Command != m.Command || got.Priority != m.Priority {
		t.Errorf("fields mismatch: got %+v", got)
	}
	if !got.Match.Equal(&m.Match) {
		t.Errorf("match mismatch: got %v, want %v", got.Match.String(), m.Match.String())
	}
	if !reflect.DeepEqual(got.Actions, m.Actions) {
		t.Errorf("actions mismatch: %+v", got.Actions)
	}
}

func TestFlowModWireSize(t *testing.T) {
	m := &FlowMod{Actions: []Action{&ActionOutput{Port: 2}}}
	// ofp_flow_mod is 72 bytes incl. header, plus an 8-byte output action.
	if got := EncodedLen(m); got != 80 {
		t.Errorf("flow_mod wire length = %d, want 80", got)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{
		Match:       ExactMatchForTest(),
		Cookie:      1,
		Priority:    10,
		Reason:      RemovedIdleTimeout,
		DurationSec: 30,
		DurationNs:  500,
		IdleTimeout: 5,
		PacketCount: 100,
		ByteCount:   100000,
	}
	got := roundTrip(t, m, 16).(*FlowRemoved)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

func TestPortStatusRoundTrip(t *testing.T) {
	m := &PortStatus{Reason: PortReasonModify, Desc: PhyPort{PortNo: 3, Name: "eth3"}}
	got := roundTrip(t, m, 17).(*PortStatus)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("got %+v, want %+v", got, m)
	}
}

// ExactMatchForTest builds a deterministic non-trivial match for tests.
func ExactMatchForTest() Match {
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr("10.0.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1234,
		DstPort:   80,
	}
	return ExactMatch(1, f)
}

func TestDecodeErrors(t *testing.T) {
	valid := MustEncode(&Hello{}, 1)

	short := valid[:4]
	if _, _, err := Decode(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short frame error = %v, want ErrTruncated", err)
	}

	badVer := bytes.Clone(valid)
	badVer[0] = 0x04
	if _, _, err := Decode(badVer); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version error = %v, want ErrBadVersion", err)
	}

	badLen := bytes.Clone(valid)
	binary.BigEndian.PutUint16(badLen[2:4], 100)
	if _, _, err := Decode(badLen); !errors.Is(err, ErrBadLength) {
		t.Errorf("bad length error = %v, want ErrBadLength", err)
	}

	badType := bytes.Clone(valid)
	badType[1] = 200
	if _, _, err := Decode(badType); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type error = %v, want ErrUnknownType", err)
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	// Craft a packet_in frame whose header claims a body shorter than the
	// packet_in fixed fields.
	frame := make([]byte, HeaderLen+4)
	frame[0] = Version
	frame[1] = byte(TypePacketIn)
	binary.BigEndian.PutUint16(frame[2:4], uint16(len(frame)))
	if _, _, err := Decode(frame); err == nil {
		t.Error("Decode accepted truncated packet_in body")
	}
}

func TestReaderReadsStreamedMessages(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		&Hello{},
		&PacketIn{BufferID: 1, TotalLen: 100, InPort: 1, Data: []byte{1, 2, 3}},
		&BarrierReply{},
	}
	for i, m := range msgs {
		if err := WriteMessage(&buf, m, uint32(i)); err != nil {
			t.Fatalf("WriteMessage: %v", err)
		}
	}
	r := NewReader(&buf)
	for i, want := range msgs {
		got, xid, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		if got.Type() != want.Type() || xid != uint32(i) {
			t.Errorf("message %d: type %v xid %d", i, got.Type(), xid)
		}
	}
	if _, _, err := r.ReadMessage(); err != io.EOF {
		t.Errorf("after stream end: %v, want io.EOF", err)
	}
}

func TestReaderRejectsOversizedLength(t *testing.T) {
	hdr := make([]byte, HeaderLen)
	hdr[0] = Version
	binary.BigEndian.PutUint16(hdr[2:4], 4) // < HeaderLen
	if _, _, err := NewReader(bytes.NewReader(hdr)).ReadMessage(); !errors.Is(err, ErrBadLength) {
		t.Errorf("undersized length error = %v", err)
	}
}

func TestReaderTruncatedBody(t *testing.T) {
	b := MustEncode(&PacketIn{BufferID: 1, Data: make([]byte, 100)}, 1)
	r := NewReader(bytes.NewReader(b[:len(b)-10]))
	if _, _, err := r.ReadMessage(); err == nil {
		t.Error("ReadMessage accepted truncated body")
	}
}

func TestMatchMatches(t *testing.T) {
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr("10.0.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1234,
		DstPort:   80,
	}
	exact := ExactMatch(1, f)
	if !exact.Matches(1, f) {
		t.Error("exact match rejected its own frame")
	}
	if exact.Matches(2, f) {
		t.Error("exact match accepted wrong in_port")
	}
	other := *f
	other.SrcIP = netip.MustParseAddr("10.0.0.99")
	if exact.Matches(1, &other) {
		t.Error("exact match accepted wrong nw_src")
	}

	all := MatchAll()
	if !all.Matches(7, f) || !all.Matches(1, &other) {
		t.Error("wildcard-all match rejected a frame")
	}

	flow := FlowMatch(f.Key())
	if !flow.Matches(1, f) || !flow.Matches(9, f) {
		t.Error("flow match must ignore in_port")
	}
	if flow.Matches(1, &other) {
		t.Error("flow match accepted different 5-tuple")
	}
}

func TestMatchString(t *testing.T) {
	all := MatchAll()
	if got := all.String(); got != "any" {
		t.Errorf("MatchAll().String() = %q, want \"any\"", got)
	}
	m := FlowMatch(packet.FlowKey{
		SrcIP: netip.MustParseAddr("1.2.3.4"), DstIP: netip.MustParseAddr("5.6.7.8"),
		SrcPort: 10, DstPort: 20, Proto: packet.ProtoTCP,
	})
	s := m.String()
	for _, want := range []string{"nw_src=1.2.3.4", "nw_dst=5.6.7.8", "tp_src=10", "tp_dst=20", "nw_proto=6"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestMatchEqual(t *testing.T) {
	a := ExactMatchForTest()
	b := ExactMatchForTest()
	if !a.Equal(&b) {
		t.Error("identical matches not Equal")
	}
	b.TPDst = 81
	if a.Equal(&b) {
		t.Error("different tp_dst considered Equal")
	}
	// Wildcarded fields must not affect equality.
	c := MatchAll()
	d := MatchAll()
	d.NWSrc = netip.MustParseAddr("9.9.9.9")
	if !c.Equal(&d) {
		t.Error("wildcarded field affected Equal")
	}
}

func TestVendorFlowBufferConfigRoundTrip(t *testing.T) {
	cfg := FlowBufferConfig{
		Granularity:         GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxPacketsPerFlow:   64,
		MaxRerequests:       8,
		RerequestBackoffPct: 200,
	}
	v, err := EncodeFlowBufferConfig(cfg)
	if err != nil {
		t.Fatalf("EncodeFlowBufferConfig: %v", err)
	}
	got := roundTrip(t, v, 20).(*Vendor)
	payload, err := ParseVendor(got)
	if err != nil {
		t.Fatalf("ParseVendor: %v", err)
	}
	if payload.Config == nil || *payload.Config != cfg {
		t.Errorf("config = %+v, want %+v", payload.Config, cfg)
	}
}

func TestVendorFlowBufferStatsRoundTrip(t *testing.T) {
	s := FlowBufferStats{
		UnitsInUse: 5, UnitsCapacity: 256, FlowsBuffered: 3,
		PacketIns: 100, Rerequests: 2, DroppedNoBuffer: 1, Giveups: 4,
	}
	got := roundTrip(t, EncodeFlowBufferStats(s), 21).(*Vendor)
	payload, err := ParseVendor(got)
	if err != nil {
		t.Fatalf("ParseVendor: %v", err)
	}
	if payload.Stats == nil || *payload.Stats != s {
		t.Errorf("stats = %+v, want %+v", payload.Stats, s)
	}

	req := roundTrip(t, EncodeFlowBufferStatsRequest(), 22).(*Vendor)
	p2, err := ParseVendor(req)
	if err != nil {
		t.Fatalf("ParseVendor(request): %v", err)
	}
	if !p2.StatsRequest {
		t.Error("stats request not recognized")
	}
}

// TestVendorLegacyBodies pins wire compatibility with pre-retry-policy
// peers: the original 12-byte config and 36-byte stats bodies must still
// parse, with the new fields decoding as zero (retry-forever semantics).
func TestVendorLegacyBodies(t *testing.T) {
	cfg := make([]byte, 4+12)
	binary.BigEndian.PutUint16(cfg[0:2], FlowBufSubtypeConfig)
	cfg[4] = uint8(GranularityFlow)
	binary.BigEndian.PutUint32(cfg[8:12], 50)
	binary.BigEndian.PutUint32(cfg[12:16], 64)
	p, err := ParseVendor(&Vendor{Vendor: VendorID, Data: cfg})
	if err != nil {
		t.Fatalf("ParseVendor(legacy config): %v", err)
	}
	want := FlowBufferConfig{Granularity: GranularityFlow, RerequestTimeoutMs: 50, MaxPacketsPerFlow: 64}
	if p.Config == nil || *p.Config != want {
		t.Errorf("legacy config = %+v, want %+v", p.Config, want)
	}

	st := make([]byte, 4+36)
	binary.BigEndian.PutUint16(st[0:2], FlowBufSubtypeStatsReply)
	binary.BigEndian.PutUint32(st[4:8], 7)
	binary.BigEndian.PutUint64(st[24:32], 3)
	ps, err := ParseVendor(&Vendor{Vendor: VendorID, Data: st})
	if err != nil {
		t.Fatalf("ParseVendor(legacy stats): %v", err)
	}
	if ps.Stats == nil || ps.Stats.UnitsInUse != 7 || ps.Stats.Rerequests != 3 || ps.Stats.Giveups != 0 {
		t.Errorf("legacy stats = %+v", ps.Stats)
	}
}

func TestVendorRejections(t *testing.T) {
	if _, err := EncodeFlowBufferConfig(FlowBufferConfig{}); err == nil {
		t.Error("EncodeFlowBufferConfig accepted zero granularity")
	}
	if _, err := ParseVendor(&Vendor{Vendor: 0x1234}); !errors.Is(err, ErrForeignVendor) {
		t.Errorf("foreign vendor error = %v", err)
	}
	if _, err := ParseVendor(&Vendor{Vendor: VendorID, Data: []byte{0}}); err == nil {
		t.Error("ParseVendor accepted truncated payload")
	}
	bad := EncodeFlowBufferStatsRequest()
	binary.BigEndian.PutUint16(bad.Data[0:2], 99)
	if _, err := ParseVendor(bad); err == nil {
		t.Error("ParseVendor accepted unknown subtype")
	}
}

func TestGranularityStringsAndValidity(t *testing.T) {
	tests := []struct {
		g     BufferGranularity
		s     string
		valid bool
	}{
		{GranularityNone, "no-buffer", true},
		{GranularityPacket, "packet-granularity", true},
		{GranularityFlow, "flow-granularity", true},
		{0, "granularity(0)", false},
		{9, "granularity(9)", false},
	}
	for _, tt := range tests {
		if got := tt.g.String(); got != tt.s {
			t.Errorf("String(%d) = %q, want %q", tt.g, got, tt.s)
		}
		if got := tt.g.Valid(); got != tt.valid {
			t.Errorf("Valid(%d) = %v, want %v", tt.g, got, tt.valid)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if got := TypePacketIn.String(); got != "PACKET_IN" {
		t.Errorf("String = %q", got)
	}
	if got := MsgType(77).String(); got != "OFPT_77" {
		t.Errorf("String = %q", got)
	}
}

func TestEncodeTooLong(t *testing.T) {
	m := &EchoRequest{Data: make([]byte, MaxMessageLen)}
	if _, err := Encode(m, 1); !errors.Is(err, ErrMessageTooLong) {
		t.Errorf("Encode oversized: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEncode did not panic on oversized message")
		}
	}()
	MustEncode(m, 1)
}

// randomMessage builds a random valid message for property tests.
func randomMessage(r *rand.Rand) Message {
	randMAC := func() packet.MAC {
		var m packet.MAC
		r.Read(m[:])
		return m
	}
	randAddr := func() netip.Addr {
		var a [4]byte
		r.Read(a[:])
		return netip.AddrFrom4(a)
	}
	randBytes := func(n int) []byte {
		b := make([]byte, r.Intn(n))
		r.Read(b)
		if len(b) == 0 {
			return nil
		}
		return b
	}
	randActions := func() []Action {
		var out []Action
		for i := 0; i < r.Intn(4); i++ {
			switch r.Intn(5) {
			case 0:
				out = append(out, &ActionOutput{Port: uint16(r.Uint32()), MaxLen: uint16(r.Uint32())})
			case 1:
				out = append(out, &ActionSetDLSrc{Addr: randMAC()})
			case 2:
				out = append(out, &ActionSetDLDst{Addr: randMAC()})
			case 3:
				out = append(out, &ActionSetNWTOS{TOS: uint8(r.Uint32())})
			default:
				out = append(out, &ActionEnqueue{Port: uint16(r.Uint32()), QueueID: r.Uint32()})
			}
		}
		return out
	}
	randMatch := func() Match {
		return Match{
			Wildcards: r.Uint32() & WildcardAll,
			InPort:    uint16(r.Uint32()),
			DLSrc:     randMAC(),
			DLDst:     randMAC(),
			DLVLAN:    uint16(r.Uint32()),
			DLVLANPCP: uint8(r.Intn(8)),
			DLType:    uint16(r.Uint32()),
			NWTOS:     uint8(r.Uint32()),
			NWProto:   uint8(r.Uint32()),
			NWSrc:     randAddr(),
			NWDst:     randAddr(),
			TPSrc:     uint16(r.Uint32()),
			TPDst:     uint16(r.Uint32()),
		}
	}
	switch r.Intn(10) {
	case 0:
		return &Hello{}
	case 1:
		return &EchoRequest{Data: randBytes(64)}
	case 2:
		return &ErrorMsg{ErrType: uint16(r.Intn(4)), Code: uint16(r.Intn(8)), Data: randBytes(32)}
	case 3:
		return &PacketIn{
			BufferID: r.Uint32(), TotalLen: uint16(r.Uint32()),
			InPort: uint16(r.Uint32()), Reason: uint8(r.Intn(2)), Data: randBytes(256),
		}
	case 4:
		return &PacketOut{
			BufferID: r.Uint32(), InPort: uint16(r.Uint32()),
			Actions: randActions(), Data: randBytes(256),
		}
	case 5:
		return &FlowMod{
			Match: randMatch(), Cookie: r.Uint64(), Command: uint16(r.Intn(5)),
			IdleTimeout: uint16(r.Uint32()), HardTimeout: uint16(r.Uint32()),
			Priority: uint16(r.Uint32()), BufferID: r.Uint32(),
			OutPort: uint16(r.Uint32()), Flags: uint16(r.Intn(8)), Actions: randActions(),
		}
	case 6:
		var ports []PhyPort
		for i := 0; i < r.Intn(4); i++ {
			ports = append(ports, PhyPort{PortNo: uint16(i + 1), HWAddr: randMAC(), Name: "p"})
		}
		return &FeaturesReply{
			DatapathID: r.Uint64(), NBuffers: r.Uint32(), NTables: uint8(r.Uint32()),
			Capabilities: r.Uint32(), Actions: r.Uint32(), Ports: ports,
		}
	case 7:
		return &FlowRemoved{
			Match: randMatch(), Cookie: r.Uint64(), Priority: uint16(r.Uint32()),
			Reason: uint8(r.Intn(4)), DurationSec: r.Uint32(), DurationNs: r.Uint32(),
			IdleTimeout: uint16(r.Uint32()), PacketCount: r.Uint64(), ByteCount: r.Uint64(),
		}
	case 8:
		return &SetConfig{Config: SwitchConfig{Flags: uint16(r.Intn(4)), MissSendLen: uint16(r.Uint32())}}
	default:
		return &Vendor{Vendor: r.Uint32(), Data: randBytes(64)}
	}
}

func TestPropertyEncodeDecodeIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	prop := func() bool {
		m := randomMessage(r)
		xid := r.Uint32()
		b, err := Encode(m, xid)
		if err != nil {
			t.Logf("Encode: %v", err)
			return false
		}
		got, gotXid, err := Decode(b)
		if err != nil {
			t.Logf("Decode(%v): %v", m.Type(), err)
			return false
		}
		if gotXid != xid {
			return false
		}
		if !reflect.DeepEqual(got, m) {
			t.Logf("mismatch %v:\n got %#v\nwant %#v", m.Type(), got, m)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	prop := func() bool {
		n := r.Intn(128)
		b := make([]byte, n)
		r.Read(b)
		if n >= 4 {
			// Half the time, make version and length plausible so body
			// decoders actually run.
			if r.Intn(2) == 0 {
				b[0] = Version
				binary.BigEndian.PutUint16(b[2:4], uint16(n))
			}
		}
		_, _, _ = Decode(b) // must not panic
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMatchEncodeDecodeIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	prop := func() bool {
		fm := &FlowMod{Match: Match{
			Wildcards: r.Uint32() & WildcardAll,
			InPort:    uint16(r.Uint32()),
			DLType:    uint16(r.Uint32()),
			NWProto:   uint8(r.Uint32()),
			NWSrc:     netip.AddrFrom4([4]byte{byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32())}),
			NWDst:     netip.AddrFrom4([4]byte{byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32()), byte(r.Uint32())}),
			TPSrc:     uint16(r.Uint32()),
			TPDst:     uint16(r.Uint32()),
		}}
		b, err := Encode(fm, 1)
		if err != nil {
			return false
		}
		got, _, err := Decode(b)
		if err != nil {
			return false
		}
		gm := got.(*FlowMod).Match
		return gm.Equal(&fm.Match) && fm.Match.Equal(&gm)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWriterBatchSingleWrite(t *testing.T) {
	// AppendMessage stages without touching the stream; Flush emits every
	// staged frame in exactly one Write call, and a Reader sees the same
	// message sequence it would from per-message writes.
	var w countingWriter
	bw := NewWriter(&w)
	msgs := []Message{
		&FlowMod{Command: FlowModAdd, Priority: 1, BufferID: NoBuffer,
			Actions: []Action{&ActionOutput{Port: 2}}},
		&PacketOut{BufferID: 9, InPort: 1, Actions: []Action{&ActionOutput{Port: 2}}},
		&EchoRequest{Data: []byte("keepalive")},
	}
	for i, m := range msgs {
		if err := bw.AppendMessage(m, uint32(i)); err != nil {
			t.Fatalf("AppendMessage %d: %v", i, err)
		}
	}
	if w.writes != 0 {
		t.Fatalf("AppendMessage wrote to the stream (%d writes)", w.writes)
	}
	if bw.Buffered() == 0 {
		t.Fatal("nothing staged")
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.writes != 1 {
		t.Errorf("Flush used %d writes, want 1", w.writes)
	}
	if bw.Buffered() != 0 {
		t.Errorf("Buffered after Flush = %d", bw.Buffered())
	}
	// Flush with nothing staged is a no-op.
	if err := bw.Flush(); err != nil || w.writes != 1 {
		t.Errorf("empty Flush: err %v, writes %d", err, w.writes)
	}
	r := NewReader(bytes.NewReader(w.buf.Bytes()))
	for i, want := range msgs {
		got, xid, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("ReadMessage %d: %v", i, err)
		}
		if got.Type() != want.Type() || xid != uint32(i) {
			t.Errorf("message %d: type %v xid %d, want %v %d", i, got.Type(), xid, want.Type(), i)
		}
	}
	if _, _, err := r.ReadMessage(); err != io.EOF {
		t.Errorf("after batch end: %v, want io.EOF", err)
	}
}

func TestWriterMixedAppendAndWriteMessagePreservesOrder(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.AppendMessage(&Hello{}, 1); err != nil {
		t.Fatal(err)
	}
	// WriteMessage flushes the staged hello ahead of the echo.
	if err := bw.WriteMessage(&EchoRequest{Data: []byte("x")}, 2); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	m1, x1, err := r.ReadMessage()
	if err != nil || m1.Type() != TypeHello || x1 != 1 {
		t.Fatalf("first = %v xid %d err %v, want HELLO 1", m1, x1, err)
	}
	m2, x2, err := r.ReadMessage()
	if err != nil || m2.Type() != TypeEchoRequest || x2 != 2 {
		t.Fatalf("second = %v xid %d err %v, want ECHO_REQUEST 2", m2, x2, err)
	}
}

func TestWriterAppendOversizedLeavesStageIntact(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	if err := bw.AppendMessage(&Hello{}, 1); err != nil {
		t.Fatal(err)
	}
	staged := bw.Buffered()
	big := &EchoRequest{Data: make([]byte, MaxMessageLen)}
	if err := bw.AppendMessage(big, 2); !errors.Is(err, ErrMessageTooLong) {
		t.Fatalf("oversized append error = %v", err)
	}
	if bw.Buffered() != staged {
		t.Errorf("failed append changed stage: %d -> %d bytes", staged, bw.Buffered())
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if m, _, err := NewReader(&buf).ReadMessage(); err != nil || m.Type() != TypeHello {
		t.Errorf("staged hello lost: %v, %v", m, err)
	}
}

// countingWriter counts Write calls while collecting the bytes.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}
