package openflow

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"

	"sdnbuffer/internal/packet"
)

// MatchLen is the wire length of ofp_match in OpenFlow 1.0.
const MatchLen = 40

// Wildcard bits (OFPFW_*). A set bit means "field is NOT matched".
const (
	WildcardInPort  uint32 = 1 << 0
	WildcardDLVLAN  uint32 = 1 << 1
	WildcardDLSrc   uint32 = 1 << 2
	WildcardDLDst   uint32 = 1 << 3
	WildcardDLType  uint32 = 1 << 4
	WildcardNWProto uint32 = 1 << 5
	WildcardTPSrc   uint32 = 1 << 6
	WildcardTPDst   uint32 = 1 << 7
	// Bits 8..13 are NW_SRC mask bits, 14..19 NW_DST mask bits: the 6-bit
	// field value is the number of low address bits to IGNORE, so 0 is an
	// exact match, 8 matches a /24 prefix and >=32 wildcards the field
	// entirely. Partial values (1..31) are honoured as CIDR prefix matches;
	// WildcardNWSrcPrefix/WildcardNWDstPrefix build them.
	WildcardNWSrcAll  uint32 = 32 << 8
	WildcardNWDstAll  uint32 = 32 << 14
	WildcardDLVLANPCP uint32 = 1 << 20
	WildcardNWTOS     uint32 = 1 << 21

	// WildcardAll has every supported wildcard bit set.
	WildcardAll = WildcardInPort | WildcardDLVLAN | WildcardDLSrc |
		WildcardDLDst | WildcardDLType | WildcardNWProto | WildcardTPSrc |
		WildcardTPDst | WildcardNWSrcAll | WildcardNWDstAll |
		WildcardDLVLANPCP | WildcardNWTOS
)

// WildcardNWSrcPrefix returns the NW_SRC wildcard bits matching a
// /prefixLen source prefix (prefixLen 0..32; 0 wildcards the field).
func WildcardNWSrcPrefix(prefixLen int) uint32 {
	return nwIgnoreToBits(prefixLen) << 8
}

// WildcardNWDstPrefix returns the NW_DST wildcard bits matching a
// /prefixLen destination prefix (prefixLen 0..32; 0 wildcards the field).
func WildcardNWDstPrefix(prefixLen int) uint32 {
	return nwIgnoreToBits(prefixLen) << 14
}

func nwIgnoreToBits(prefixLen int) uint32 {
	if prefixLen <= 0 {
		return 32
	}
	if prefixLen >= 32 {
		return 0
	}
	return uint32(32 - prefixLen)
}

// NWSrcIgnoreBits extracts the NW_SRC mask field from a wildcard word: the
// number of low source-address bits ignored during matching, capped at 32.
func NWSrcIgnoreBits(wildcards uint32) uint32 { return capIgnore(wildcards >> 8 & 0x3f) }

// NWDstIgnoreBits is NWSrcIgnoreBits for the NW_DST mask field.
func NWDstIgnoreBits(wildcards uint32) uint32 { return capIgnore(wildcards >> 14 & 0x3f) }

func capIgnore(v uint32) uint32 {
	if v > 32 {
		return 32
	}
	return v
}

// MaskAddr canonicalises an IPv4 address under a mask field value: the low
// ignore bits are zeroed, and a fully ignored field collapses to the zero
// Addr. Non-IPv4 addresses (in practice only the zero Addr of an unset
// field) pass through unchanged so raw equality still applies to them.
func MaskAddr(a netip.Addr, ignore uint32) netip.Addr {
	if ignore >= 32 {
		return netip.Addr{}
	}
	if ignore == 0 || !a.Is4() {
		return a
	}
	v := a.As4()
	u := binary.BigEndian.Uint32(v[:]) &^ (1<<ignore - 1)
	binary.BigEndian.PutUint32(v[:], u)
	return netip.AddrFrom4(v)
}

// nwEqual compares two addresses under a shared mask field value.
func nwEqual(a, b netip.Addr, ignore uint32) bool {
	return MaskAddr(a, ignore) == MaskAddr(b, ignore)
}

// Match is the OpenFlow 1.0 ofp_match structure. Wildcards selects which
// fields participate in matching; a wildcarded field is ignored.
type Match struct {
	Wildcards uint32
	InPort    uint16
	DLSrc     packet.MAC
	DLDst     packet.MAC
	DLVLAN    uint16
	DLVLANPCP uint8
	DLType    uint16
	NWTOS     uint8
	NWProto   uint8
	NWSrc     netip.Addr
	NWDst     netip.Addr
	TPSrc     uint16
	TPDst     uint16
}

// MatchAll returns a match with every field wildcarded.
func MatchAll() Match { return Match{Wildcards: WildcardAll} }

// ExactMatch builds the match Floodlight's reactive forwarding installs for
// a miss-match packet: in_port plus the full L2/L3/L4 header fields.
func ExactMatch(inPort uint16, f *packet.Frame) Match {
	return Match{
		Wildcards: WildcardDLVLAN | WildcardDLVLANPCP | WildcardNWTOS,
		InPort:    inPort,
		DLSrc:     f.SrcMAC,
		DLDst:     f.DstMAC,
		DLType:    f.EtherType,
		NWProto:   f.Proto,
		NWSrc:     f.SrcIP,
		NWDst:     f.DstIP,
		TPSrc:     f.SrcPort,
		TPDst:     f.DstPort,
	}
}

// FlowMatch builds a match on the 5-tuple only, the granularity the paper's
// buffer_id map uses.
func FlowMatch(key packet.FlowKey) Match {
	return Match{
		Wildcards: WildcardAll &^ (WildcardDLType | WildcardNWProto |
			WildcardNWSrcAll | WildcardNWDstAll | WildcardTPSrc | WildcardTPDst),
		DLType:  packet.EtherTypeIPv4,
		NWProto: key.Proto,
		NWSrc:   key.SrcIP,
		NWDst:   key.DstIP,
		TPSrc:   key.SrcPort,
		TPDst:   key.DstPort,
	}
}

// Matches reports whether a frame arriving on inPort satisfies the match.
func (m *Match) Matches(inPort uint16, f *packet.Frame) bool {
	w := m.Wildcards
	if w&WildcardInPort == 0 && m.InPort != inPort {
		return false
	}
	if w&WildcardDLSrc == 0 && m.DLSrc != f.SrcMAC {
		return false
	}
	if w&WildcardDLDst == 0 && m.DLDst != f.DstMAC {
		return false
	}
	if w&WildcardDLType == 0 && m.DLType != f.EtherType {
		return false
	}
	if w&WildcardNWTOS == 0 && m.NWTOS != f.TOS {
		return false
	}
	if w&WildcardNWProto == 0 && m.NWProto != f.Proto {
		return false
	}
	if !nwEqual(m.NWSrc, f.SrcIP, NWSrcIgnoreBits(w)) {
		return false
	}
	if !nwEqual(m.NWDst, f.DstIP, NWDstIgnoreBits(w)) {
		return false
	}
	if w&WildcardTPSrc == 0 && m.TPSrc != f.SrcPort {
		return false
	}
	if w&WildcardTPDst == 0 && m.TPDst != f.DstPort {
		return false
	}
	return true
}

// encode writes the 40-byte wire form into b.
func (m *Match) encode(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Wildcards)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	copy(b[6:12], m.DLSrc[:])
	copy(b[12:18], m.DLDst[:])
	binary.BigEndian.PutUint16(b[18:20], m.DLVLAN)
	b[20] = m.DLVLANPCP
	// b[21] pad
	binary.BigEndian.PutUint16(b[22:24], m.DLType)
	b[24] = m.NWTOS
	b[25] = m.NWProto
	// b[26:28] pad
	putAddr(b[28:32], m.NWSrc)
	putAddr(b[32:36], m.NWDst)
	binary.BigEndian.PutUint16(b[36:38], m.TPSrc)
	binary.BigEndian.PutUint16(b[38:40], m.TPDst)
}

// decodeMatch parses a 40-byte wire-form match.
func decodeMatch(b []byte) (Match, error) {
	var m Match
	if len(b) < MatchLen {
		return m, fmt.Errorf("%w: match needs %d bytes, have %d", ErrTruncated, MatchLen, len(b))
	}
	m.Wildcards = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	copy(m.DLSrc[:], b[6:12])
	copy(m.DLDst[:], b[12:18])
	m.DLVLAN = binary.BigEndian.Uint16(b[18:20])
	m.DLVLANPCP = b[20]
	m.DLType = binary.BigEndian.Uint16(b[22:24])
	m.NWTOS = b[24]
	m.NWProto = b[25]
	m.NWSrc = netip.AddrFrom4([4]byte(b[28:32]))
	m.NWDst = netip.AddrFrom4([4]byte(b[32:36]))
	m.TPSrc = binary.BigEndian.Uint16(b[36:38])
	m.TPDst = binary.BigEndian.Uint16(b[38:40])
	return m, nil
}

func putAddr(b []byte, a netip.Addr) {
	if a.Is4() {
		v := a.As4()
		copy(b, v[:])
	} else {
		b[0], b[1], b[2], b[3] = 0, 0, 0, 0
	}
}

// String formats the non-wildcarded fields, e.g.
// "in_port=1,nw_src=10.0.0.1,tp_dst=80".
func (m *Match) String() string {
	var parts []string
	w := m.Wildcards
	if w&WildcardInPort == 0 {
		parts = append(parts, fmt.Sprintf("in_port=%d", m.InPort))
	}
	if w&WildcardDLSrc == 0 {
		parts = append(parts, "dl_src="+m.DLSrc.String())
	}
	if w&WildcardDLDst == 0 {
		parts = append(parts, "dl_dst="+m.DLDst.String())
	}
	if w&WildcardDLType == 0 {
		parts = append(parts, fmt.Sprintf("dl_type=0x%04x", m.DLType))
	}
	if w&WildcardNWProto == 0 {
		parts = append(parts, fmt.Sprintf("nw_proto=%d", m.NWProto))
	}
	if ig := NWSrcIgnoreBits(w); ig < 32 {
		if ig > 0 {
			parts = append(parts, fmt.Sprintf("nw_src=%s/%d", MaskAddr(m.NWSrc, ig), 32-ig))
		} else {
			parts = append(parts, "nw_src="+m.NWSrc.String())
		}
	}
	if ig := NWDstIgnoreBits(w); ig < 32 {
		if ig > 0 {
			parts = append(parts, fmt.Sprintf("nw_dst=%s/%d", MaskAddr(m.NWDst, ig), 32-ig))
		} else {
			parts = append(parts, "nw_dst="+m.NWDst.String())
		}
	}
	if w&WildcardTPSrc == 0 {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.TPSrc))
	}
	if w&WildcardTPDst == 0 {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.TPDst))
	}
	if len(parts) == 0 {
		return "any"
	}
	return strings.Join(parts, ",")
}

// Equal reports whether two matches are identical in wildcards and in every
// non-wildcarded field (wildcarded field contents are ignored).
func (m *Match) Equal(o *Match) bool {
	if m.Wildcards != o.Wildcards {
		return false
	}
	w := m.Wildcards
	if w&WildcardInPort == 0 && m.InPort != o.InPort {
		return false
	}
	if w&WildcardDLSrc == 0 && m.DLSrc != o.DLSrc {
		return false
	}
	if w&WildcardDLDst == 0 && m.DLDst != o.DLDst {
		return false
	}
	if w&WildcardDLVLAN == 0 && m.DLVLAN != o.DLVLAN {
		return false
	}
	if w&WildcardDLVLANPCP == 0 && m.DLVLANPCP != o.DLVLANPCP {
		return false
	}
	if w&WildcardDLType == 0 && m.DLType != o.DLType {
		return false
	}
	if w&WildcardNWTOS == 0 && m.NWTOS != o.NWTOS {
		return false
	}
	if w&WildcardNWProto == 0 && m.NWProto != o.NWProto {
		return false
	}
	if !nwEqual(m.NWSrc, o.NWSrc, NWSrcIgnoreBits(w)) {
		return false
	}
	if !nwEqual(m.NWDst, o.NWDst, NWDstIgnoreBits(w)) {
		return false
	}
	if w&WildcardTPSrc == 0 && m.TPSrc != o.TPSrc {
		return false
	}
	if w&WildcardTPDst == 0 && m.TPDst != o.TPDst {
		return false
	}
	return true
}

// Covers reports whether every packet matched by o is also matched by m —
// the OpenFlow 1.0 non-strict delete relation. Pattern m covers entry match
// o when every field m specifies is also specified by o with an equal
// value; a fully wildcarded m (MatchAll) covers everything. Strict deletes
// keep using Equal.
func (m *Match) Covers(o *Match) bool {
	w := m.Wildcards
	field := func(bit uint32, eq bool) bool {
		if w&bit != 0 {
			return true // m does not constrain the field
		}
		return o.Wildcards&bit == 0 && eq
	}
	// A pattern prefix covers an entry prefix when it ignores at least as
	// many low bits and agrees on the bits it does constrain.
	nwField := func(mi, oi uint32, a, b netip.Addr) bool {
		if mi >= 32 {
			return true
		}
		return oi <= mi && nwEqual(a, b, mi)
	}
	return field(WildcardInPort, m.InPort == o.InPort) &&
		field(WildcardDLSrc, m.DLSrc == o.DLSrc) &&
		field(WildcardDLDst, m.DLDst == o.DLDst) &&
		field(WildcardDLVLAN, m.DLVLAN == o.DLVLAN) &&
		field(WildcardDLVLANPCP, m.DLVLANPCP == o.DLVLANPCP) &&
		field(WildcardDLType, m.DLType == o.DLType) &&
		field(WildcardNWTOS, m.NWTOS == o.NWTOS) &&
		field(WildcardNWProto, m.NWProto == o.NWProto) &&
		nwField(NWSrcIgnoreBits(w), NWSrcIgnoreBits(o.Wildcards), m.NWSrc, o.NWSrc) &&
		nwField(NWDstIgnoreBits(w), NWDstIgnoreBits(o.Wildcards), m.NWDst, o.NWDst) &&
		field(WildcardTPSrc, m.TPSrc == o.TPSrc) &&
		field(WildcardTPDst, m.TPDst == o.TPDst)
}
