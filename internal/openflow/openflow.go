// Package openflow implements the OpenFlow 1.0 wire protocol subset the
// testbed needs, plus a vendor extension carrying the paper's
// flow-granularity buffer mechanism. Messages are encoded byte-accurately:
// control-path-load results in the evaluation are computed from the real
// serialized sizes of packet_in, packet_out and flow_mod messages, so the
// codec is a load-bearing part of the reproduction, not a convenience.
//
// The package offers two I/O surfaces:
//
//   - Encode/Decode on byte slices, used by the simulator (messages travel
//     as byte slices across simulated links, and their length is what the
//     capture module accounts).
//   - Reader/WriteMessage on io streams, used by the live-mode switch and
//     controller over real TCP connections.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Version is the OpenFlow protocol version implemented (1.0).
const Version = 0x01

// HeaderLen is the length of the ofp_header.
const HeaderLen = 8

// MaxMessageLen bounds accepted message lengths, guarding the live-mode
// reader against corrupt length fields.
const MaxMessageLen = 1 << 16

// MsgType enumerates the OpenFlow 1.0 message types implemented here.
type MsgType uint8

// OpenFlow 1.0 message type codes.
const (
	TypeHello            MsgType = 0
	TypeError            MsgType = 1
	TypeEchoRequest      MsgType = 2
	TypeEchoReply        MsgType = 3
	TypeVendor           MsgType = 4
	TypeFeaturesRequest  MsgType = 5
	TypeFeaturesReply    MsgType = 6
	TypeGetConfigRequest MsgType = 7
	TypeGetConfigReply   MsgType = 8
	TypeSetConfig        MsgType = 9
	TypePacketIn         MsgType = 10
	TypeFlowRemoved      MsgType = 11
	TypePortStatus       MsgType = 12
	TypePacketOut        MsgType = 13
	TypeFlowMod          MsgType = 14
	TypeBarrierRequest   MsgType = 18
	TypeBarrierReply     MsgType = 19
)

// String names the message type in the spec's OFPT_* style.
func (t MsgType) String() string {
	switch t {
	case TypeHello:
		return "HELLO"
	case TypeError:
		return "ERROR"
	case TypeEchoRequest:
		return "ECHO_REQUEST"
	case TypeEchoReply:
		return "ECHO_REPLY"
	case TypeVendor:
		return "VENDOR"
	case TypeFeaturesRequest:
		return "FEATURES_REQUEST"
	case TypeFeaturesReply:
		return "FEATURES_REPLY"
	case TypeGetConfigRequest:
		return "GET_CONFIG_REQUEST"
	case TypeGetConfigReply:
		return "GET_CONFIG_REPLY"
	case TypeSetConfig:
		return "SET_CONFIG"
	case TypePacketIn:
		return "PACKET_IN"
	case TypeFlowRemoved:
		return "FLOW_REMOVED"
	case TypePortStatus:
		return "PORT_STATUS"
	case TypePacketOut:
		return "PACKET_OUT"
	case TypeFlowMod:
		return "FLOW_MOD"
	case TypeStatsRequest:
		return "STATS_REQUEST"
	case TypeStatsReply:
		return "STATS_REPLY"
	case TypeBarrierRequest:
		return "BARRIER_REQUEST"
	case TypeBarrierReply:
		return "BARRIER_REPLY"
	default:
		return fmt.Sprintf("OFPT_%d", uint8(t))
	}
}

// Special port numbers (ofp_port).
const (
	PortMax        uint16 = 0xff00
	PortInPort     uint16 = 0xfff8
	PortTable      uint16 = 0xfff9
	PortNormal     uint16 = 0xfffa
	PortFlood      uint16 = 0xfffb
	PortAll        uint16 = 0xfffc
	PortController uint16 = 0xfffd
	PortLocal      uint16 = 0xfffe
	PortNone       uint16 = 0xffff
)

// NoBuffer is the buffer_id meaning "packet not buffered" (OFP_NO_BUFFER):
// the packet travels in full inside the packet_in / packet_out message.
const NoBuffer uint32 = 0xffffffff

// PacketIn reasons.
const (
	ReasonNoMatch uint8 = 0 // OFPR_NO_MATCH
	ReasonAction  uint8 = 1 // OFPR_ACTION
)

// FlowMod commands.
const (
	FlowModAdd          uint16 = 0
	FlowModModify       uint16 = 1
	FlowModModifyStrict uint16 = 2
	FlowModDelete       uint16 = 3
	FlowModDeleteStrict uint16 = 4
)

// FlowMod flags.
const (
	FlowModFlagSendFlowRem  uint16 = 1 << 0
	FlowModFlagCheckOverlap uint16 = 1 << 1
	FlowModFlagEmerg        uint16 = 1 << 2
)

// FlowRemoved reasons.
const (
	RemovedIdleTimeout uint8 = 0
	RemovedHardTimeout uint8 = 1
	RemovedDelete      uint8 = 2
	RemovedEviction    uint8 = 3 // extension: capacity eviction (paper §VI.B)
)

// DefaultMissSendLen is the spec default number of bytes of a buffered
// miss-match packet forwarded to the controller in packet_in.
const DefaultMissSendLen = 128

// Codec and framing errors.
var (
	ErrTruncated      = errors.New("openflow: truncated message")
	ErrBadVersion     = errors.New("openflow: unsupported version")
	ErrBadLength      = errors.New("openflow: bad length field")
	ErrUnknownType    = errors.New("openflow: unknown message type")
	ErrMessageTooLong = errors.New("openflow: message exceeds maximum length")
)

// Message is one OpenFlow message body. Implementations encode and decode
// only their body; the header is handled by Encode/Decode.
type Message interface {
	// Type reports the message type code for the header.
	Type() MsgType
	// bodyLen reports the encoded body length in bytes.
	bodyLen() int
	// encodeBody writes the body into b, which has length bodyLen().
	encodeBody(b []byte)
	// decodeBody parses the body from b.
	decodeBody(b []byte) error
}

// Encode serializes a message with the given transaction id into a
// standalone frame (header + body). The returned slice is exactly sized and
// freshly allocated, so it can be retained indefinitely — which is what the
// simulator needs: encoded messages live on simulated links and in buffer
// mechanisms across virtual time.
func Encode(m Message, xid uint32) ([]byte, error) {
	return AppendEncode(nil, m, xid)
}

// AppendEncode appends the encoded frame (header + body) to dst and returns
// the extended slice, allocating only when dst lacks capacity. The live-mode
// Writer uses it to reuse one encode buffer per connection; callers that
// retain encoded frames must use Encode (or pass nil) so frames do not share
// a buffer.
func AppendEncode(dst []byte, m Message, xid uint32) ([]byte, error) {
	n := HeaderLen + m.bodyLen()
	if n > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrMessageTooLong, n)
	}
	off := len(dst)
	need := off + n
	if cap(dst) >= need {
		dst = dst[:need]
		clear(dst[off:]) // encodeBody implementations assume a zeroed buffer
	} else {
		grown := make([]byte, need)
		copy(grown, dst)
		dst = grown
	}
	buf := dst[off:]
	buf[0] = Version
	buf[1] = byte(m.Type())
	binary.BigEndian.PutUint16(buf[2:4], uint16(n))
	binary.BigEndian.PutUint32(buf[4:8], xid)
	m.encodeBody(buf[HeaderLen:])
	return dst, nil
}

// MustEncode is Encode for messages known to fit; it panics on error and is
// intended for internal fixed-size messages built by the library itself.
func MustEncode(m Message, xid uint32) []byte {
	b, err := Encode(m, xid)
	if err != nil {
		panic(fmt.Sprintf("openflow: MustEncode: %v", err))
	}
	return b
}

// Free lists for the three high-volume message types: every simulated miss
// produces a packet_in and every controller response a packet_out or
// flow_mod, so Decode would otherwise allocate a shell per control message.
// Shells are zeroed on release, so acquired shells are always blank.
var (
	packetInPool  = sync.Pool{New: func() any { return new(PacketIn) }}
	packetOutPool = sync.Pool{New: func() any { return new(PacketOut) }}
	flowModPool   = sync.Pool{New: func() any { return new(FlowMod) }}
)

// AcquirePacketIn returns a blank PacketIn from the free list.
func AcquirePacketIn() *PacketIn { return packetInPool.Get().(*PacketIn) }

// AcquirePacketOut returns a blank PacketOut from the free list.
func AcquirePacketOut() *PacketOut { return packetOutPool.Get().(*PacketOut) }

// AcquireFlowMod returns a blank FlowMod from the free list.
func AcquireFlowMod() *FlowMod { return flowModPool.Get().(*FlowMod) }

// ReleaseMessage returns a pooled message shell to its free list (a no-op
// for other types). Only the struct shell is recycled: slices the message
// referenced (Data, Actions) keep their backing arrays, so consumers that
// retained those slices are unaffected. The caller must not touch m after
// release, and must never release a message something else still holds — the
// decode sites in simswitch and the sim controller release exactly the
// messages they finished dispatching, and mechanism-built packet_ins (which
// the flow-granularity mechanism retains for re-requests) are never pooled.
func ReleaseMessage(m Message) {
	switch v := m.(type) {
	case *PacketIn:
		*v = PacketIn{}
		packetInPool.Put(v)
	case *PacketOut:
		*v = PacketOut{}
		packetOutPool.Put(v)
	case *FlowMod:
		*v = FlowMod{}
		flowModPool.Put(v)
	}
}

// newMessage allocates the empty body struct for a type code, drawing the
// high-volume types from their free lists.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeError:
		return &ErrorMsg{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypeVendor:
		return &Vendor{}, nil
	case TypeFeaturesRequest:
		return &FeaturesRequest{}, nil
	case TypeFeaturesReply:
		return &FeaturesReply{}, nil
	case TypeGetConfigRequest:
		return &GetConfigRequest{}, nil
	case TypeGetConfigReply:
		return &GetConfigReply{}, nil
	case TypeSetConfig:
		return &SetConfig{}, nil
	case TypePacketIn:
		return AcquirePacketIn(), nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypePortStatus:
		return &PortStatus{}, nil
	case TypePacketOut:
		return AcquirePacketOut(), nil
	case TypeFlowMod:
		return AcquireFlowMod(), nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeBarrierRequest:
		return &BarrierRequest{}, nil
	case TypeBarrierReply:
		return &BarrierReply{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
}

// Decode parses one complete frame (header + body) and returns the message
// and its transaction id. The input must contain exactly one message.
func Decode(b []byte) (Message, uint32, error) {
	if len(b) < HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d bytes, need header", ErrTruncated, len(b))
	}
	if b[0] != Version {
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, b[0])
	}
	length := int(binary.BigEndian.Uint16(b[2:4]))
	if length < HeaderLen || length != len(b) {
		return nil, 0, fmt.Errorf("%w: header says %d, frame is %d", ErrBadLength, length, len(b))
	}
	xid := binary.BigEndian.Uint32(b[4:8])
	m, err := newMessage(MsgType(b[1]))
	if err != nil {
		return nil, xid, err
	}
	if err := m.decodeBody(b[HeaderLen:]); err != nil {
		return nil, xid, fmt.Errorf("decoding %v body: %w", MsgType(b[1]), err)
	}
	return m, xid, nil
}

// WriteMessage encodes and writes one message to w, allocating a fresh
// buffer per call. Long-lived connections should use a Writer instead.
func WriteMessage(w io.Writer, m Message, xid uint32) error {
	b, err := Encode(m, xid)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("openflow: writing %v: %w", m.Type(), err)
	}
	return nil
}

// Writer writes framed messages to a stream, reusing one encode buffer
// across calls — the per-connection encode buffer of the live-mode agent and
// controller. It is not safe for concurrent use; callers must serialize
// writes (the live endpoints hold their write mutex around each call, or
// funnel all writes through one writer goroutine).
//
// Beyond per-message WriteMessage, a Writer can batch: AppendMessage stages
// encoded frames without writing, and Flush emits everything staged in a
// single Write call — one syscall for a burst of flow_mods and packet_outs,
// which is what lets the live controller's per-connection writer goroutine
// drain its queue faster than the dispatch side fills it.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter wraps a stream for framed message writes.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// AppendMessage encodes one message into the Writer's staging buffer without
// writing it. Call Flush to emit everything staged as one Write. An encode
// error leaves previously staged frames intact.
func (w *Writer) AppendMessage(m Message, xid uint32) error {
	b, err := AppendEncode(w.buf, m, xid)
	if err != nil {
		return err
	}
	w.buf = b
	return nil
}

// Buffered reports the number of staged bytes awaiting Flush.
func (w *Writer) Buffered() int { return len(w.buf) }

// Flush writes all staged frames in a single Write call and resets the
// staging buffer (retaining its capacity). A no-op when nothing is staged.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		return fmt.Errorf("openflow: flushing batch: %w", err)
	}
	return nil
}

// WriteMessage encodes and writes one message, reusing the Writer's buffer.
// Any frames staged with AppendMessage are flushed ahead of it, preserving
// order.
func (w *Writer) WriteMessage(m Message, xid uint32) error {
	if err := w.AppendMessage(m, xid); err != nil {
		return err
	}
	return w.Flush()
}

// Reader reads framed OpenFlow messages from a byte stream (live mode).
type Reader struct {
	r   io.Reader
	hdr [HeaderLen]byte
}

// NewReader wraps a stream for framed message reads.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// ReadMessage reads the next complete message. On a cleanly closed stream it
// returns io.EOF.
func (r *Reader) ReadMessage() (Message, uint32, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF
		}
		return nil, 0, fmt.Errorf("openflow: reading header: %w", err)
	}
	length := int(binary.BigEndian.Uint16(r.hdr[2:4]))
	if length < HeaderLen {
		return nil, 0, fmt.Errorf("%w: %d", ErrBadLength, length)
	}
	if length > MaxMessageLen {
		return nil, 0, fmt.Errorf("%w: %d", ErrMessageTooLong, length)
	}
	frame := make([]byte, length)
	copy(frame, r.hdr[:])
	if _, err := io.ReadFull(r.r, frame[HeaderLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: reading %d-byte body: %w", length-HeaderLen, err)
	}
	return Decode(frame)
}

// EncodedLen reports the full frame length of a message without encoding it;
// the simulator uses it for transmission-time computation.
func EncodedLen(m Message) int { return HeaderLen + m.bodyLen() }
