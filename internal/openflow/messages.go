package openflow

import (
	"encoding/binary"
	"fmt"

	"sdnbuffer/internal/packet"
)

// Hello is exchanged on connection setup to negotiate the version.
type Hello struct{}

var _ Message = (*Hello)(nil)

// Type implements Message.
func (*Hello) Type() MsgType           { return TypeHello }
func (*Hello) bodyLen() int            { return 0 }
func (*Hello) encodeBody([]byte)       {}
func (*Hello) decodeBody([]byte) error { return nil }

// Error type codes (OFPET_*) used by this implementation.
const (
	ErrTypeHelloFailed   uint16 = 0
	ErrTypeBadRequest    uint16 = 1
	ErrTypeBadAction     uint16 = 2
	ErrTypeFlowModFailed uint16 = 3
)

// Flow-mod failure codes (OFPFMFC_*).
const (
	ErrCodeAllTablesFull uint16 = 0
	ErrCodeOverlap       uint16 = 1
	ErrCodeBadCommand    uint16 = 3
)

// Bad-request codes (OFPBRC_*).
const (
	ErrCodeBadVersion  uint16 = 0
	ErrCodeBadType     uint16 = 1
	ErrCodeBufferEmpty uint16 = 6
	ErrCodeBadBufferID uint16 = 7 // OFPBRC_BUFFER_UNKNOWN
)

// Bad-action codes (OFPBAC_*).
const (
	ErrCodeBadOutPort uint16 = 4 // OFPBAC_BAD_OUT_PORT
)

// ErrorMsg reports a protocol error; Data carries at least the first 64
// bytes of the offending message per the spec.
type ErrorMsg struct {
	ErrType uint16
	Code    uint16
	Data    []byte
}

var _ Message = (*ErrorMsg)(nil)

// Type implements Message.
func (*ErrorMsg) Type() MsgType  { return TypeError }
func (m *ErrorMsg) bodyLen() int { return 4 + len(m.Data) }
func (m *ErrorMsg) encodeBody(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], m.ErrType)
	binary.BigEndian.PutUint16(b[2:4], m.Code)
	copy(b[4:], m.Data)
}
func (m *ErrorMsg) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: error body needs 4 bytes, have %d", ErrTruncated, len(b))
	}
	m.ErrType = binary.BigEndian.Uint16(b[0:2])
	m.Code = binary.BigEndian.Uint16(b[2:4])
	m.Data = cloneBytes(b[4:])
	return nil
}

// Error implements the error interface so an ErrorMsg can be returned up a
// call chain directly.
func (m *ErrorMsg) Error() string {
	return fmt.Sprintf("openflow error: type=%d code=%d", m.ErrType, m.Code)
}

// EchoRequest is a liveness probe; the peer must answer with EchoReply
// carrying the same data.
type EchoRequest struct {
	Data []byte
}

var _ Message = (*EchoRequest)(nil)

// Type implements Message.
func (*EchoRequest) Type() MsgType         { return TypeEchoRequest }
func (m *EchoRequest) bodyLen() int        { return len(m.Data) }
func (m *EchoRequest) encodeBody(b []byte) { copy(b, m.Data) }
func (m *EchoRequest) decodeBody(b []byte) error {
	m.Data = cloneBytes(b)
	return nil
}

// EchoReply answers an EchoRequest.
type EchoReply struct {
	Data []byte
}

var _ Message = (*EchoReply)(nil)

// Type implements Message.
func (*EchoReply) Type() MsgType         { return TypeEchoReply }
func (m *EchoReply) bodyLen() int        { return len(m.Data) }
func (m *EchoReply) encodeBody(b []byte) { copy(b, m.Data) }
func (m *EchoReply) decodeBody(b []byte) error {
	m.Data = cloneBytes(b)
	return nil
}

// FeaturesRequest asks the switch for its datapath description.
type FeaturesRequest struct{}

var _ Message = (*FeaturesRequest)(nil)

// Type implements Message.
func (*FeaturesRequest) Type() MsgType           { return TypeFeaturesRequest }
func (*FeaturesRequest) bodyLen() int            { return 0 }
func (*FeaturesRequest) encodeBody([]byte)       {}
func (*FeaturesRequest) decodeBody([]byte) error { return nil }

// PhyPortLen is the wire length of ofp_phy_port.
const PhyPortLen = 48

// PhyPort describes one switch port (ofp_phy_port).
type PhyPort struct {
	PortNo     uint16
	HWAddr     packet.MAC
	Name       string // at most 15 bytes on the wire
	Config     uint32
	State      uint32
	Curr       uint32
	Advertised uint32
	Supported  uint32
	Peer       uint32
}

func (p *PhyPort) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], p.PortNo)
	copy(b[2:8], p.HWAddr[:])
	name := p.Name
	if len(name) > 15 {
		name = name[:15]
	}
	copy(b[8:24], name) // NUL-padded by the zeroed buffer
	binary.BigEndian.PutUint32(b[24:28], p.Config)
	binary.BigEndian.PutUint32(b[28:32], p.State)
	binary.BigEndian.PutUint32(b[32:36], p.Curr)
	binary.BigEndian.PutUint32(b[36:40], p.Advertised)
	binary.BigEndian.PutUint32(b[40:44], p.Supported)
	binary.BigEndian.PutUint32(b[44:48], p.Peer)
}

func decodePhyPort(b []byte) PhyPort {
	var p PhyPort
	p.PortNo = binary.BigEndian.Uint16(b[0:2])
	copy(p.HWAddr[:], b[2:8])
	name := b[8:24]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	p.Name = string(name[:end])
	p.Config = binary.BigEndian.Uint32(b[24:28])
	p.State = binary.BigEndian.Uint32(b[28:32])
	p.Curr = binary.BigEndian.Uint32(b[32:36])
	p.Advertised = binary.BigEndian.Uint32(b[36:40])
	p.Supported = binary.BigEndian.Uint32(b[40:44])
	p.Peer = binary.BigEndian.Uint32(b[44:48])
	return p
}

// Switch capability bits (OFPC_*).
const (
	CapFlowStats  uint32 = 1 << 0
	CapTableStats uint32 = 1 << 1
	CapPortStats  uint32 = 1 << 2
	CapQueueStats uint32 = 1 << 6
)

// FeaturesReply describes the datapath: its id, how many packets its buffer
// can hold (NBuffers — the quantity the paper sweeps as buffer-16 /
// buffer-256), table count, and its ports.
type FeaturesReply struct {
	DatapathID   uint64
	NBuffers     uint32
	NTables      uint8
	Capabilities uint32
	Actions      uint32
	Ports        []PhyPort
}

var _ Message = (*FeaturesReply)(nil)

// Type implements Message.
func (*FeaturesReply) Type() MsgType  { return TypeFeaturesReply }
func (m *FeaturesReply) bodyLen() int { return 24 + PhyPortLen*len(m.Ports) }
func (m *FeaturesReply) encodeBody(b []byte) {
	binary.BigEndian.PutUint64(b[0:8], m.DatapathID)
	binary.BigEndian.PutUint32(b[8:12], m.NBuffers)
	b[12] = m.NTables
	binary.BigEndian.PutUint32(b[16:20], m.Capabilities)
	binary.BigEndian.PutUint32(b[20:24], m.Actions)
	off := 24
	for i := range m.Ports {
		m.Ports[i].encode(b[off : off+PhyPortLen])
		off += PhyPortLen
	}
}
func (m *FeaturesReply) decodeBody(b []byte) error {
	if len(b) < 24 || (len(b)-24)%PhyPortLen != 0 {
		return fmt.Errorf("%w: features reply body %d bytes", ErrBadLength, len(b))
	}
	m.DatapathID = binary.BigEndian.Uint64(b[0:8])
	m.NBuffers = binary.BigEndian.Uint32(b[8:12])
	m.NTables = b[12]
	m.Capabilities = binary.BigEndian.Uint32(b[16:20])
	m.Actions = binary.BigEndian.Uint32(b[20:24])
	m.Ports = nil
	for off := 24; off < len(b); off += PhyPortLen {
		m.Ports = append(m.Ports, decodePhyPort(b[off:off+PhyPortLen]))
	}
	return nil
}

// GetConfigRequest asks for the switch configuration.
type GetConfigRequest struct{}

var _ Message = (*GetConfigRequest)(nil)

// Type implements Message.
func (*GetConfigRequest) Type() MsgType           { return TypeGetConfigRequest }
func (*GetConfigRequest) bodyLen() int            { return 0 }
func (*GetConfigRequest) encodeBody([]byte)       {}
func (*GetConfigRequest) decodeBody([]byte) error { return nil }

// SwitchConfig is the shared body of GET_CONFIG_REPLY and SET_CONFIG.
// MissSendLen is the packet_in payload truncation for buffered packets; 0
// with buffering disabled means "send the whole packet".
type SwitchConfig struct {
	Flags       uint16
	MissSendLen uint16
}

func (c *SwitchConfig) encode(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], c.Flags)
	binary.BigEndian.PutUint16(b[2:4], c.MissSendLen)
}

func (c *SwitchConfig) decode(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: switch config needs 4 bytes, have %d", ErrTruncated, len(b))
	}
	c.Flags = binary.BigEndian.Uint16(b[0:2])
	c.MissSendLen = binary.BigEndian.Uint16(b[2:4])
	return nil
}

// GetConfigReply carries the current switch configuration.
type GetConfigReply struct {
	Config SwitchConfig
}

var _ Message = (*GetConfigReply)(nil)

// Type implements Message.
func (*GetConfigReply) Type() MsgType               { return TypeGetConfigReply }
func (*GetConfigReply) bodyLen() int                { return 4 }
func (m *GetConfigReply) encodeBody(b []byte)       { m.Config.encode(b) }
func (m *GetConfigReply) decodeBody(b []byte) error { return m.Config.decode(b) }

// SetConfig updates the switch configuration.
type SetConfig struct {
	Config SwitchConfig
}

var _ Message = (*SetConfig)(nil)

// Type implements Message.
func (*SetConfig) Type() MsgType               { return TypeSetConfig }
func (*SetConfig) bodyLen() int                { return 4 }
func (m *SetConfig) encodeBody(b []byte)       { m.Config.encode(b) }
func (m *SetConfig) decodeBody(b []byte) error { return m.Config.decode(b) }

// PacketIn is the switch-to-controller request for a miss-match packet.
// With buffering, BufferID identifies the buffered packet and Data carries
// only the first miss_send_len bytes; without buffering BufferID is NoBuffer
// and Data carries the whole packet. TotalLen preserves the original frame
// length either way.
type PacketIn struct {
	BufferID uint32
	TotalLen uint16
	InPort   uint16
	Reason   uint8
	Data     []byte
}

var _ Message = (*PacketIn)(nil)

// Type implements Message.
func (*PacketIn) Type() MsgType  { return TypePacketIn }
func (m *PacketIn) bodyLen() int { return 10 + len(m.Data) }
func (m *PacketIn) encodeBody(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.TotalLen)
	binary.BigEndian.PutUint16(b[6:8], m.InPort)
	b[8] = m.Reason
	copy(b[10:], m.Data)
}
func (m *PacketIn) decodeBody(b []byte) error {
	if len(b) < 10 {
		return fmt.Errorf("%w: packet_in body needs 10 bytes, have %d", ErrTruncated, len(b))
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.TotalLen = binary.BigEndian.Uint16(b[4:6])
	m.InPort = binary.BigEndian.Uint16(b[6:8])
	m.Reason = b[8]
	m.Data = cloneBytes(b[10:])
	return nil
}

// FlowRemoved notifies the controller that a rule left the flow table.
type FlowRemoved struct {
	Match       Match
	Cookie      uint64
	Priority    uint16
	Reason      uint8
	DurationSec uint32
	DurationNs  uint32
	IdleTimeout uint16
	PacketCount uint64
	ByteCount   uint64
}

var _ Message = (*FlowRemoved)(nil)

// Type implements Message.
func (*FlowRemoved) Type() MsgType { return TypeFlowRemoved }
func (*FlowRemoved) bodyLen() int  { return MatchLen + 40 }
func (m *FlowRemoved) encodeBody(b []byte) {
	m.Match.encode(b[0:MatchLen])
	p := b[MatchLen:]
	binary.BigEndian.PutUint64(p[0:8], m.Cookie)
	binary.BigEndian.PutUint16(p[8:10], m.Priority)
	p[10] = m.Reason
	binary.BigEndian.PutUint32(p[12:16], m.DurationSec)
	binary.BigEndian.PutUint32(p[16:20], m.DurationNs)
	binary.BigEndian.PutUint16(p[20:22], m.IdleTimeout)
	binary.BigEndian.PutUint64(p[24:32], m.PacketCount)
	binary.BigEndian.PutUint64(p[32:40], m.ByteCount)
}
func (m *FlowRemoved) decodeBody(b []byte) error {
	if len(b) < MatchLen+40 {
		return fmt.Errorf("%w: flow_removed body %d bytes", ErrTruncated, len(b))
	}
	match, err := decodeMatch(b[0:MatchLen])
	if err != nil {
		return err
	}
	m.Match = match
	p := b[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(p[0:8])
	m.Priority = binary.BigEndian.Uint16(p[8:10])
	m.Reason = p[10]
	m.DurationSec = binary.BigEndian.Uint32(p[12:16])
	m.DurationNs = binary.BigEndian.Uint32(p[16:20])
	m.IdleTimeout = binary.BigEndian.Uint16(p[20:22])
	m.PacketCount = binary.BigEndian.Uint64(p[24:32])
	m.ByteCount = binary.BigEndian.Uint64(p[32:40])
	return nil
}

// Port status change reasons (OFPPR_*).
const (
	PortReasonAdd    uint8 = 0
	PortReasonDelete uint8 = 1
	PortReasonModify uint8 = 2
)

// PortStateLinkDown is the ofp_port_state bit reporting no physical link
// (OFPPS_LINK_DOWN).
const PortStateLinkDown uint32 = 1 << 0

// PortStatus announces a port change.
type PortStatus struct {
	Reason uint8
	Desc   PhyPort
}

var _ Message = (*PortStatus)(nil)

// Type implements Message.
func (*PortStatus) Type() MsgType { return TypePortStatus }
func (*PortStatus) bodyLen() int  { return 8 + PhyPortLen }
func (m *PortStatus) encodeBody(b []byte) {
	b[0] = m.Reason
	m.Desc.encode(b[8 : 8+PhyPortLen])
}
func (m *PortStatus) decodeBody(b []byte) error {
	if len(b) < 8+PhyPortLen {
		return fmt.Errorf("%w: port_status body %d bytes", ErrTruncated, len(b))
	}
	m.Reason = b[0]
	m.Desc = decodePhyPort(b[8 : 8+PhyPortLen])
	return nil
}

// PacketOut instructs the switch to emit a packet. With a valid BufferID it
// releases the buffered packet through the action list and carries no
// payload; with BufferID == NoBuffer the full packet rides in Data.
type PacketOut struct {
	BufferID uint32
	InPort   uint16
	Actions  []Action
	Data     []byte
}

var _ Message = (*PacketOut)(nil)

// Type implements Message.
func (*PacketOut) Type() MsgType { return TypePacketOut }
func (m *PacketOut) bodyLen() int {
	return 8 + actionsLen(m.Actions) + len(m.Data)
}
func (m *PacketOut) encodeBody(b []byte) {
	al := actionsLen(m.Actions)
	binary.BigEndian.PutUint32(b[0:4], m.BufferID)
	binary.BigEndian.PutUint16(b[4:6], m.InPort)
	binary.BigEndian.PutUint16(b[6:8], uint16(al))
	encodeActions(b[8:8+al], m.Actions)
	copy(b[8+al:], m.Data)
}
func (m *PacketOut) decodeBody(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: packet_out body needs 8 bytes, have %d", ErrTruncated, len(b))
	}
	m.BufferID = binary.BigEndian.Uint32(b[0:4])
	m.InPort = binary.BigEndian.Uint16(b[4:6])
	al := int(binary.BigEndian.Uint16(b[6:8]))
	if 8+al > len(b) {
		return fmt.Errorf("%w: actions length %d exceeds body %d", ErrBadLength, al, len(b))
	}
	actions, err := decodeActions(b[8 : 8+al])
	if err != nil {
		return err
	}
	m.Actions = actions
	m.Data = cloneBytes(b[8+al:])
	return nil
}

// FlowMod installs, modifies or deletes flow-table rules. When BufferID is
// valid the switch also applies the new rule's actions to the buffered
// packet, combining flow_mod and packet_out in one message.
type FlowMod struct {
	Match       Match
	Cookie      uint64
	Command     uint16
	IdleTimeout uint16
	HardTimeout uint16
	Priority    uint16
	BufferID    uint32
	OutPort     uint16
	Flags       uint16
	Actions     []Action
}

var _ Message = (*FlowMod)(nil)

// Type implements Message.
func (*FlowMod) Type() MsgType { return TypeFlowMod }
func (m *FlowMod) bodyLen() int {
	return MatchLen + 24 + actionsLen(m.Actions)
}
func (m *FlowMod) encodeBody(b []byte) {
	m.Match.encode(b[0:MatchLen])
	p := b[MatchLen:]
	binary.BigEndian.PutUint64(p[0:8], m.Cookie)
	binary.BigEndian.PutUint16(p[8:10], m.Command)
	binary.BigEndian.PutUint16(p[10:12], m.IdleTimeout)
	binary.BigEndian.PutUint16(p[12:14], m.HardTimeout)
	binary.BigEndian.PutUint16(p[14:16], m.Priority)
	binary.BigEndian.PutUint32(p[16:20], m.BufferID)
	binary.BigEndian.PutUint16(p[20:22], m.OutPort)
	binary.BigEndian.PutUint16(p[22:24], m.Flags)
	encodeActions(p[24:], m.Actions)
}
func (m *FlowMod) decodeBody(b []byte) error {
	if len(b) < MatchLen+24 {
		return fmt.Errorf("%w: flow_mod body %d bytes", ErrTruncated, len(b))
	}
	match, err := decodeMatch(b[0:MatchLen])
	if err != nil {
		return err
	}
	m.Match = match
	p := b[MatchLen:]
	m.Cookie = binary.BigEndian.Uint64(p[0:8])
	m.Command = binary.BigEndian.Uint16(p[8:10])
	m.IdleTimeout = binary.BigEndian.Uint16(p[10:12])
	m.HardTimeout = binary.BigEndian.Uint16(p[12:14])
	m.Priority = binary.BigEndian.Uint16(p[14:16])
	m.BufferID = binary.BigEndian.Uint32(p[16:20])
	m.OutPort = binary.BigEndian.Uint16(p[20:22])
	m.Flags = binary.BigEndian.Uint16(p[22:24])
	actions, err := decodeActions(p[24:])
	if err != nil {
		return err
	}
	m.Actions = actions
	return nil
}

// BarrierRequest asks the switch to finish all preceding messages before
// answering.
type BarrierRequest struct{}

var _ Message = (*BarrierRequest)(nil)

// Type implements Message.
func (*BarrierRequest) Type() MsgType           { return TypeBarrierRequest }
func (*BarrierRequest) bodyLen() int            { return 0 }
func (*BarrierRequest) encodeBody([]byte)       {}
func (*BarrierRequest) decodeBody([]byte) error { return nil }

// BarrierReply acknowledges a BarrierRequest.
type BarrierReply struct{}

var _ Message = (*BarrierReply)(nil)

// Type implements Message.
func (*BarrierReply) Type() MsgType           { return TypeBarrierReply }
func (*BarrierReply) bodyLen() int            { return 0 }
func (*BarrierReply) encodeBody([]byte)       {}
func (*BarrierReply) decodeBody([]byte) error { return nil }

func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
