package openflow

import (
	"net/netip"
	"reflect"
	"testing"
)

// flowRemovedFixtures is one FlowRemoved per reason code, including the
// eviction extension, with a prefix-masked match on the eviction variant so
// the codec exercises the partial NW_DST mask bits too.
func flowRemovedFixtures() []*FlowRemoved {
	// The codec decodes address fields to explicit 0.0.0.0, never the zero
	// Addr, so the fixtures use the wire-normalized form for DeepEqual.
	zero := netip.AddrFrom4([4]byte{})
	plain := Match{NWSrc: zero, NWDst: zero}
	masked := Match{
		Wildcards: WildcardAll&^(WildcardDLType|WildcardNWDstAll) | WildcardNWDstPrefix(24),
		DLType:    0x0800,
		NWSrc:     zero,
		NWDst:     netip.MustParseAddr("10.0.1.0"),
	}
	return []*FlowRemoved{
		{Match: plain, Priority: 100, Reason: RemovedIdleTimeout, Cookie: 1, DurationSec: 2, DurationNs: 5000, IdleTimeout: 1, PacketCount: 5, ByteCount: 500},
		{Match: plain, Priority: 100, Reason: RemovedHardTimeout, Cookie: 2, DurationSec: 10, PacketCount: 9, ByteCount: 9000},
		{Match: plain, Priority: 100, Reason: RemovedDelete, Cookie: 3},
		{Match: masked, Priority: 50, Reason: RemovedEviction, Cookie: 4, PacketCount: 1, ByteCount: 60},
	}
}

// TestFlowRemovedReasonRoundTrip pins the reason-code extension: all four
// codes — the three spec values plus the eviction extension — survive an
// encode/decode round trip byte-exactly, so an unextended peer still sees a
// well-formed flow_removed and the reason byte it was sent.
func TestFlowRemovedReasonRoundTrip(t *testing.T) {
	wantReasons := []uint8{RemovedIdleTimeout, RemovedHardTimeout, RemovedDelete, RemovedEviction}
	if RemovedEviction != 3 {
		t.Fatalf("RemovedEviction = %d; the extension must extend the spec's 0..2 contiguously", RemovedEviction)
	}
	for i, fr := range flowRemovedFixtures() {
		if fr.Reason != wantReasons[i] {
			t.Fatalf("fixture %d has reason %d, want %d", i, fr.Reason, wantReasons[i])
		}
		b := MustEncode(fr, uint32(i))
		m, xid, err := Decode(b)
		if err != nil {
			t.Fatalf("reason %d: decode: %v", fr.Reason, err)
		}
		if xid != uint32(i) {
			t.Fatalf("reason %d: xid %d, want %d", fr.Reason, xid, i)
		}
		got, ok := m.(*FlowRemoved)
		if !ok {
			t.Fatalf("reason %d: decoded %T", fr.Reason, m)
		}
		if !reflect.DeepEqual(got, fr) {
			t.Errorf("reason %d: round trip diverged:\nsent: %#v\ngot:  %#v", fr.Reason, fr, got)
		}
	}
}

// FuzzDecodeFlowRemoved narrows FuzzDecode's corpus onto flow_removed
// frames: decode never panics, and any accepted frame re-encodes to an
// equivalent one — with the counter, duration, and reason fields (all four
// codes) preserved exactly.
func FuzzDecodeFlowRemoved(f *testing.F) {
	for i, fr := range flowRemovedFixtures() {
		f.Add(MustEncode(fr, uint32(i)))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, xid, err := Decode(b)
		if err != nil {
			return // rejected input; not panicking is the property
		}
		fr, ok := m.(*FlowRemoved)
		if !ok {
			return // some other accepted type; FuzzDecode covers it
		}
		re, err := Encode(fr, xid)
		if err != nil {
			t.Fatalf("decoded flow_removed does not re-encode: %v", err)
		}
		m2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded flow_removed does not decode: %v", err)
		}
		if !reflect.DeepEqual(fr, m2) {
			t.Fatalf("flow_removed not equivalent across re-encode:\nfirst:  %#v\nsecond: %#v", fr, m2)
		}
	})
}
