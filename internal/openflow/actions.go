package openflow

import (
	"encoding/binary"
	"fmt"

	"sdnbuffer/internal/packet"
)

// ActionType enumerates the OpenFlow 1.0 action type codes implemented.
type ActionType uint16

// Action type codes (OFPAT_*).
const (
	ActionTypeOutput   ActionType = 0
	ActionTypeSetDLSrc ActionType = 4
	ActionTypeSetDLDst ActionType = 5
	ActionTypeSetNWTOS ActionType = 8
	ActionTypeEnqueue  ActionType = 11
)

// String names the action type in the spec's OFPAT_* style.
func (t ActionType) String() string {
	switch t {
	case ActionTypeOutput:
		return "OUTPUT"
	case ActionTypeSetDLSrc:
		return "SET_DL_SRC"
	case ActionTypeSetDLDst:
		return "SET_DL_DST"
	case ActionTypeSetNWTOS:
		return "SET_NW_TOS"
	case ActionTypeEnqueue:
		return "ENQUEUE"
	default:
		return fmt.Sprintf("OFPAT_%d", uint16(t))
	}
}

// Action is one entry of an OpenFlow action list.
type Action interface {
	// ActionType reports the wire type code.
	ActionType() ActionType
	// actionLen reports the encoded length (a multiple of 8).
	actionLen() int
	// encodeAction writes the action (including its type/len prefix).
	encodeAction(b []byte)
}

// ActionOutput forwards the packet to a port. MaxLen limits how many bytes
// are sent when the port is PortController.
type ActionOutput struct {
	Port   uint16
	MaxLen uint16
}

var _ Action = (*ActionOutput)(nil)

// ActionType implements Action.
func (*ActionOutput) ActionType() ActionType { return ActionTypeOutput }
func (*ActionOutput) actionLen() int         { return 8 }
func (a *ActionOutput) encodeAction(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeOutput))
	binary.BigEndian.PutUint16(b[2:4], 8)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint16(b[6:8], a.MaxLen)
}

// String formats the action like "output:3".
func (a *ActionOutput) String() string { return fmt.Sprintf("output:%d", a.Port) }

// ActionSetDLSrc rewrites the Ethernet source address.
type ActionSetDLSrc struct {
	Addr packet.MAC
}

var _ Action = (*ActionSetDLSrc)(nil)

// ActionType implements Action.
func (*ActionSetDLSrc) ActionType() ActionType { return ActionTypeSetDLSrc }
func (*ActionSetDLSrc) actionLen() int         { return 16 }
func (a *ActionSetDLSrc) encodeAction(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeSetDLSrc))
	binary.BigEndian.PutUint16(b[2:4], 16)
	copy(b[4:10], a.Addr[:])
}

// ActionSetDLDst rewrites the Ethernet destination address.
type ActionSetDLDst struct {
	Addr packet.MAC
}

var _ Action = (*ActionSetDLDst)(nil)

// ActionType implements Action.
func (*ActionSetDLDst) ActionType() ActionType { return ActionTypeSetDLDst }
func (*ActionSetDLDst) actionLen() int         { return 16 }
func (a *ActionSetDLDst) encodeAction(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeSetDLDst))
	binary.BigEndian.PutUint16(b[2:4], 16)
	copy(b[4:10], a.Addr[:])
}

// ActionSetNWTOS rewrites the IPv4 TOS/DSCP byte; the egress-scheduling
// extension sketched in the paper's future work uses it to map flows onto
// QoS classes.
type ActionSetNWTOS struct {
	TOS uint8
}

var _ Action = (*ActionSetNWTOS)(nil)

// ActionType implements Action.
func (*ActionSetNWTOS) ActionType() ActionType { return ActionTypeSetNWTOS }
func (*ActionSetNWTOS) actionLen() int         { return 8 }
func (a *ActionSetNWTOS) encodeAction(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeSetNWTOS))
	binary.BigEndian.PutUint16(b[2:4], 8)
	b[4] = a.TOS
}

// ActionEnqueue forwards the packet to a specific queue on a port.
type ActionEnqueue struct {
	Port    uint16
	QueueID uint32
}

var _ Action = (*ActionEnqueue)(nil)

// ActionType implements Action.
func (*ActionEnqueue) ActionType() ActionType { return ActionTypeEnqueue }
func (*ActionEnqueue) actionLen() int         { return 16 }
func (a *ActionEnqueue) encodeAction(b []byte) {
	binary.BigEndian.PutUint16(b[0:2], uint16(ActionTypeEnqueue))
	binary.BigEndian.PutUint16(b[2:4], 16)
	binary.BigEndian.PutUint16(b[4:6], a.Port)
	binary.BigEndian.PutUint32(b[12:16], a.QueueID)
}

// actionsLen sums the encoded lengths of an action list.
func actionsLen(actions []Action) int {
	n := 0
	for _, a := range actions {
		n += a.actionLen()
	}
	return n
}

// encodeActions writes an action list into b (which must be actionsLen long).
func encodeActions(b []byte, actions []Action) {
	off := 0
	for _, a := range actions {
		a.encodeAction(b[off : off+a.actionLen()])
		off += a.actionLen()
	}
}

// decodeActions parses a packed action list.
func decodeActions(b []byte) ([]Action, error) {
	var out []Action
	for len(b) > 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("%w: action header needs 4 bytes, have %d", ErrTruncated, len(b))
		}
		t := ActionType(binary.BigEndian.Uint16(b[0:2]))
		l := int(binary.BigEndian.Uint16(b[2:4]))
		if l < 8 || l%8 != 0 || l > len(b) {
			return nil, fmt.Errorf("%w: action %v length %d with %d remaining", ErrBadLength, t, l, len(b))
		}
		body := b[:l]
		switch t {
		case ActionTypeOutput:
			out = append(out, &ActionOutput{
				Port:   binary.BigEndian.Uint16(body[4:6]),
				MaxLen: binary.BigEndian.Uint16(body[6:8]),
			})
		case ActionTypeSetDLSrc:
			a := &ActionSetDLSrc{}
			copy(a.Addr[:], body[4:10])
			out = append(out, a)
		case ActionTypeSetDLDst:
			a := &ActionSetDLDst{}
			copy(a.Addr[:], body[4:10])
			out = append(out, a)
		case ActionTypeSetNWTOS:
			out = append(out, &ActionSetNWTOS{TOS: body[4]})
		case ActionTypeEnqueue:
			if l < 16 {
				return nil, fmt.Errorf("%w: enqueue action length %d", ErrBadLength, l)
			}
			out = append(out, &ActionEnqueue{
				Port:    binary.BigEndian.Uint16(body[4:6]),
				QueueID: binary.BigEndian.Uint32(body[12:16]),
			})
		default:
			return nil, fmt.Errorf("openflow: unsupported action type %d", uint16(t))
		}
		b = b[l:]
	}
	return out, nil
}
