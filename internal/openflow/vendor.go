package openflow

import (
	"encoding/binary"
	"fmt"
)

// VendorID identifies this library's experimenter extension, which carries
// the paper's flow-granularity buffer mechanism. The OpenFlow buffer model
// itself (buffer_id in packet_in / packet_out / flow_mod) is standard; what
// the paper adds — one buffer_id per flow, shared by all queued packets, with
// a re-request timeout — needs extra configuration and statistics messages,
// and the spec's extension point for those is the vendor (experimenter)
// message.
const VendorID uint32 = 0x00F17B0F

// Vendor subtypes for the flow-granularity buffer extension.
const (
	FlowBufSubtypeConfig       uint16 = 1
	FlowBufSubtypeConfigReply  uint16 = 2
	FlowBufSubtypeStatsRequest uint16 = 3
	FlowBufSubtypeStatsReply   uint16 = 4
	// FlowBufSubtypeBackpressure carries the controller's admission signal
	// (controller-to-switch): level 1 asserts backpressure (the packet_in
	// queue shed load), level 0 clears it.
	FlowBufSubtypeBackpressure uint16 = 5
)

// Buffer granularity modes carried by FlowBufferConfig.
type BufferGranularity uint8

// Granularity modes. The zero value is invalid so an unset config is
// detectable.
const (
	// GranularityNone disables buffering: every miss-match packet rides in
	// full inside packet_in (buffer_id == NoBuffer).
	GranularityNone BufferGranularity = 1
	// GranularityPacket is the OpenFlow default buffer behaviour: each
	// miss-match packet gets its own buffer unit and its own packet_in.
	GranularityPacket BufferGranularity = 2
	// GranularityFlow is the paper's mechanism: all miss-match packets of a
	// flow share one buffer_id; only the first triggers a packet_in.
	GranularityFlow BufferGranularity = 3
)

// String names the granularity mode.
func (g BufferGranularity) String() string {
	switch g {
	case GranularityNone:
		return "no-buffer"
	case GranularityPacket:
		return "packet-granularity"
	case GranularityFlow:
		return "flow-granularity"
	default:
		return fmt.Sprintf("granularity(%d)", uint8(g))
	}
}

// Valid reports whether g is one of the defined modes.
func (g BufferGranularity) Valid() bool {
	return g >= GranularityNone && g <= GranularityFlow
}

// Vendor is the raw experimenter message: a vendor id plus opaque payload.
// Typed extension bodies are encoded into / decoded from Data with
// EncodeFlowBufferConfig and ParseVendor.
type Vendor struct {
	Vendor uint32
	Data   []byte
}

var _ Message = (*Vendor)(nil)

// Type implements Message.
func (*Vendor) Type() MsgType  { return TypeVendor }
func (m *Vendor) bodyLen() int { return 4 + len(m.Data) }
func (m *Vendor) encodeBody(b []byte) {
	binary.BigEndian.PutUint32(b[0:4], m.Vendor)
	copy(b[4:], m.Data)
}
func (m *Vendor) decodeBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("%w: vendor body needs 4 bytes, have %d", ErrTruncated, len(b))
	}
	m.Vendor = binary.BigEndian.Uint32(b[0:4])
	m.Data = cloneBytes(b[4:])
	return nil
}

// FlowBufferConfig configures the switch's buffer mechanism
// (controller-to-switch). RerequestTimeoutMs is Algorithm 1's timeout: how
// long the switch waits for control operation messages before re-sending the
// packet_in for a still-buffered flow. MaxPacketsPerFlow bounds one flow's
// queue so a single heavy flow cannot monopolize the pool (0 means
// unbounded).
//
// MaxRerequests and RerequestBackoffPct harden the re-request loop against a
// lossy or dead control channel: after MaxRerequests unanswered re-sends the
// switch gives up on the buffered flow — releasing its pool unit and
// draining the queued packets through the no-buffer full-packet path — and
// each successive wait grows by RerequestBackoffPct percent (100 doubles it).
// Both zero keeps the original retry-forever, fixed-interval behavior, which
// is also what a legacy 12-byte config body decodes to.
type FlowBufferConfig struct {
	Granularity         BufferGranularity
	RerequestTimeoutMs  uint32
	MaxPacketsPerFlow   uint32
	MaxRerequests       uint32
	RerequestBackoffPct uint32
}

const (
	flowBufferConfigLenV1 = 4 + 12 // subheader + original body
	flowBufferConfigLen   = 4 + 20 // subheader + body with retry policy
)

// EncodeFlowBufferConfig wraps the config into a Vendor message.
func EncodeFlowBufferConfig(c FlowBufferConfig) (*Vendor, error) {
	if !c.Granularity.Valid() {
		return nil, fmt.Errorf("openflow: invalid buffer granularity %d", uint8(c.Granularity))
	}
	data := make([]byte, flowBufferConfigLen)
	binary.BigEndian.PutUint16(data[0:2], FlowBufSubtypeConfig)
	data[4] = uint8(c.Granularity)
	binary.BigEndian.PutUint32(data[8:12], c.RerequestTimeoutMs)
	binary.BigEndian.PutUint32(data[12:16], c.MaxPacketsPerFlow)
	binary.BigEndian.PutUint32(data[16:20], c.MaxRerequests)
	binary.BigEndian.PutUint32(data[20:24], c.RerequestBackoffPct)
	return &Vendor{Vendor: VendorID, Data: data}, nil
}

// FlowBufferStats reports buffer occupancy and mechanism counters
// (switch-to-controller, answering a stats request). Giveups counts flows
// abandoned after exhausting the re-request budget; their queued packets are
// reported through the mechanism's fallback counter, not lost. A legacy
// 36-byte stats body decodes with Giveups == 0, and a 44-byte body with the
// byte-occupancy fields zero — older peers keep interoperating.
//
// BytesInUse / BytesHighWater / RejectedBytes report the pool's byte
// accounting (the paper's Fig. 10 utilization axis): current buffered
// bytes, the peak, and bytes turned away by the byte budget or the dynamic
// per-flow admission threshold.
type FlowBufferStats struct {
	UnitsInUse      uint32
	UnitsCapacity   uint32
	FlowsBuffered   uint32
	PacketIns       uint64
	Rerequests      uint64
	DroppedNoBuffer uint64
	Giveups         uint64
	BytesInUse      uint64
	BytesHighWater  uint64
	RejectedBytes   uint64
}

const (
	flowBufferStatsLenV1 = 4 + 36
	flowBufferStatsLenV2 = 4 + 44
	flowBufferStatsLen   = 4 + 68
)

// EncodeFlowBufferStatsRequest builds the stats request Vendor message.
func EncodeFlowBufferStatsRequest() *Vendor {
	data := make([]byte, 4)
	binary.BigEndian.PutUint16(data[0:2], FlowBufSubtypeStatsRequest)
	return &Vendor{Vendor: VendorID, Data: data}
}

// EncodeFlowBufferStats wraps the stats into a Vendor reply message.
func EncodeFlowBufferStats(s FlowBufferStats) *Vendor {
	data := make([]byte, flowBufferStatsLen)
	binary.BigEndian.PutUint16(data[0:2], FlowBufSubtypeStatsReply)
	binary.BigEndian.PutUint32(data[4:8], s.UnitsInUse)
	binary.BigEndian.PutUint32(data[8:12], s.UnitsCapacity)
	binary.BigEndian.PutUint32(data[12:16], s.FlowsBuffered)
	binary.BigEndian.PutUint64(data[16:24], s.PacketIns)
	binary.BigEndian.PutUint64(data[24:32], s.Rerequests)
	binary.BigEndian.PutUint64(data[32:40], s.DroppedNoBuffer)
	binary.BigEndian.PutUint64(data[40:48], s.Giveups)
	binary.BigEndian.PutUint64(data[48:56], s.BytesInUse)
	binary.BigEndian.PutUint64(data[56:64], s.BytesHighWater)
	binary.BigEndian.PutUint64(data[64:72], s.RejectedBytes)
	return &Vendor{Vendor: VendorID, Data: data}
}

// BackpressureSignal is the controller's admission signal: Level > 0 means
// the controller is shedding packet_ins and the switch should relieve
// pressure (the degradation ladder treats it as saturation).
type BackpressureSignal struct {
	Level uint8
}

const flowBufferBackpressureLen = 4 + 4

// EncodeBackpressure wraps the admission signal into a Vendor message.
func EncodeBackpressure(level uint8) *Vendor {
	data := make([]byte, flowBufferBackpressureLen)
	binary.BigEndian.PutUint16(data[0:2], FlowBufSubtypeBackpressure)
	data[4] = level
	return &Vendor{Vendor: VendorID, Data: data}
}

// VendorPayload is the decoded form of one of this extension's messages:
// exactly one field is non-nil.
type VendorPayload struct {
	Config       *FlowBufferConfig
	StatsRequest bool
	Stats        *FlowBufferStats
	Backpressure *BackpressureSignal
}

// ErrForeignVendor reports a vendor message from a different experimenter.
var ErrForeignVendor = fmt.Errorf("openflow: vendor message from foreign experimenter")

// ParseVendor decodes a Vendor message belonging to this extension.
func ParseVendor(v *Vendor) (*VendorPayload, error) {
	if v.Vendor != VendorID {
		return nil, fmt.Errorf("%w: 0x%08x", ErrForeignVendor, v.Vendor)
	}
	if len(v.Data) < 4 {
		return nil, fmt.Errorf("%w: vendor payload needs subheader", ErrTruncated)
	}
	subtype := binary.BigEndian.Uint16(v.Data[0:2])
	switch subtype {
	case FlowBufSubtypeConfig:
		// Accept the legacy 12-byte body (pre-retry-policy peers) alongside
		// the extended 20-byte body; missing fields decode as zero, which
		// means retry-forever — the legacy semantics.
		if len(v.Data) < flowBufferConfigLenV1 {
			return nil, fmt.Errorf("%w: flow buffer config payload %d bytes", ErrTruncated, len(v.Data))
		}
		c := &FlowBufferConfig{
			Granularity:        BufferGranularity(v.Data[4]),
			RerequestTimeoutMs: binary.BigEndian.Uint32(v.Data[8:12]),
			MaxPacketsPerFlow:  binary.BigEndian.Uint32(v.Data[12:16]),
		}
		if len(v.Data) >= flowBufferConfigLen {
			c.MaxRerequests = binary.BigEndian.Uint32(v.Data[16:20])
			c.RerequestBackoffPct = binary.BigEndian.Uint32(v.Data[20:24])
		}
		if !c.Granularity.Valid() {
			return nil, fmt.Errorf("openflow: invalid buffer granularity %d", v.Data[4])
		}
		return &VendorPayload{Config: c}, nil
	case FlowBufSubtypeStatsRequest:
		return &VendorPayload{StatsRequest: true}, nil
	case FlowBufSubtypeStatsReply:
		if len(v.Data) < flowBufferStatsLenV1 {
			return nil, fmt.Errorf("%w: flow buffer stats payload %d bytes", ErrTruncated, len(v.Data))
		}
		s := &FlowBufferStats{
			UnitsInUse:      binary.BigEndian.Uint32(v.Data[4:8]),
			UnitsCapacity:   binary.BigEndian.Uint32(v.Data[8:12]),
			FlowsBuffered:   binary.BigEndian.Uint32(v.Data[12:16]),
			PacketIns:       binary.BigEndian.Uint64(v.Data[16:24]),
			Rerequests:      binary.BigEndian.Uint64(v.Data[24:32]),
			DroppedNoBuffer: binary.BigEndian.Uint64(v.Data[32:40]),
		}
		if len(v.Data) >= flowBufferStatsLenV2 {
			s.Giveups = binary.BigEndian.Uint64(v.Data[40:48])
		}
		if len(v.Data) >= flowBufferStatsLen {
			s.BytesInUse = binary.BigEndian.Uint64(v.Data[48:56])
			s.BytesHighWater = binary.BigEndian.Uint64(v.Data[56:64])
			s.RejectedBytes = binary.BigEndian.Uint64(v.Data[64:72])
		}
		return &VendorPayload{Stats: s}, nil
	case FlowBufSubtypeBackpressure:
		if len(v.Data) < flowBufferBackpressureLen {
			return nil, fmt.Errorf("%w: backpressure payload %d bytes", ErrTruncated, len(v.Data))
		}
		return &VendorPayload{Backpressure: &BackpressureSignal{Level: v.Data[4]}}, nil
	default:
		return nil, fmt.Errorf("openflow: unknown flow buffer subtype %d", subtype)
	}
}
