package openflow

import (
	"bytes"
	"reflect"
	"testing"
)

// fuzzSeedMessages is the corpus of real encoded messages the fuzzers start
// from: one of every message type the codec implements, with both buffered
// and unbuffered variants for the buffer-carrying types.
func fuzzSeedMessages(tb testing.TB) [][]byte {
	tb.Helper()
	msgs := []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&ErrorMsg{ErrType: 1, Code: 2, Data: []byte{0xde, 0xad}},
		&FeaturesRequest{},
		&FeaturesReply{
			DatapathID: 1, NBuffers: 256, NTables: 1,
			Ports: []PhyPort{{PortNo: 1, Name: "eth0"}, {PortNo: 2, Name: "eth1"}},
		},
		&GetConfigRequest{},
		&GetConfigReply{},
		&SetConfig{},
		&PacketIn{BufferID: 7, TotalLen: 1000, InPort: 1, Reason: ReasonNoMatch, Data: make([]byte, 64)},
		&PacketIn{BufferID: NoBuffer, TotalLen: 60, InPort: 2, Reason: ReasonNoMatch, Data: []byte{1, 2, 3}},
		&PacketOut{BufferID: 7, InPort: 1, Actions: []Action{&ActionOutput{Port: 2}}},
		&PacketOut{
			BufferID: NoBuffer, InPort: 1,
			Actions: []Action{&ActionOutput{Port: PortFlood}, &ActionSetNWTOS{TOS: 0x10}},
			Data:    []byte{0xca, 0xfe},
		},
		&FlowMod{
			Command: FlowModAdd, Priority: 100, BufferID: NoBuffer,
			IdleTimeout: 30, Actions: []Action{&ActionOutput{Port: 2}},
		},
		&FlowRemoved{Priority: 10, Reason: RemovedIdleTimeout, PacketCount: 5, ByteCount: 500},
		&PortStatus{Reason: 1, Desc: PhyPort{PortNo: 3, Name: "p3"}},
		&BarrierRequest{},
		&BarrierReply{},
		&StatsRequest{StatsType: StatsDesc},
		&StatsRequest{StatsType: StatsFlow, TableID: 0xff, OutPort: PortNone},
		&StatsReply{StatsType: StatsDesc, Desc: &DescStats{}},
	}
	cfg, err := EncodeFlowBufferConfig(FlowBufferConfig{
		Granularity:        GranularityFlow,
		RerequestTimeoutMs: 50,
	})
	if err != nil {
		tb.Fatalf("EncodeFlowBufferConfig: %v", err)
	}
	msgs = append(msgs, cfg)

	out := make([][]byte, 0, len(msgs))
	for i, m := range msgs {
		out = append(out, MustEncode(m, uint32(i)))
	}
	return out
}

// FuzzDecode asserts the codec's two safety properties on arbitrary bytes:
// Decode never panics, and any frame it accepts re-encodes to an equivalent
// frame (encode → decode is the identity on decoded messages). The second
// property is what keeps the capture module's byte accounting honest: a
// message's measured wire size is the size its fields encode back to.
func FuzzDecode(f *testing.F) {
	for _, seed := range fuzzSeedMessages(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, xid, err := Decode(b)
		if err != nil {
			return // rejected input; not panicking is the property
		}
		re, err := Encode(m, xid)
		if err != nil {
			t.Fatalf("decoded %v does not re-encode: %v", m.Type(), err)
		}
		m2, xid2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %v does not decode: %v", m.Type(), err)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across re-encode: %d -> %d", xid, xid2)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%v not equivalent across re-encode:\nfirst:  %#v\nsecond: %#v", m.Type(), m, m2)
		}
	})
}

// FuzzVendorDecode targets the flow-buffer vendor codec: ParseVendor must
// never panic on arbitrary payload bytes, and any payload it accepts must
// survive a re-encode/re-parse round trip (legacy-length bodies re-encode to
// the extended layout with the new fields zero, which the round-trip
// comparison tolerates by re-parsing rather than comparing bytes).
func FuzzVendorDecode(f *testing.F) {
	cfg, err := EncodeFlowBufferConfig(FlowBufferConfig{
		Granularity:         GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxPacketsPerFlow:   64,
		MaxRerequests:       8,
		RerequestBackoffPct: 200,
	})
	if err != nil {
		f.Fatalf("EncodeFlowBufferConfig: %v", err)
	}
	f.Add(cfg.Data)
	f.Add(EncodeFlowBufferStatsRequest().Data)
	f.Add(EncodeFlowBufferStats(FlowBufferStats{
		UnitsInUse: 3, UnitsCapacity: 256, PacketIns: 10, Rerequests: 2, Giveups: 1,
	}).Data)
	f.Add(cfg.Data[:4+12]) // legacy config body
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseVendor(&Vendor{Vendor: VendorID, Data: data})
		if err != nil {
			return // rejected input; not panicking is the property
		}
		var re *Vendor
		switch {
		case p.Config != nil:
			re, err = EncodeFlowBufferConfig(*p.Config)
			if err != nil {
				t.Fatalf("accepted config %+v does not re-encode: %v", p.Config, err)
			}
		case p.StatsRequest:
			re = EncodeFlowBufferStatsRequest()
		case p.Stats != nil:
			re = EncodeFlowBufferStats(*p.Stats)
		default:
			t.Fatalf("ParseVendor returned empty payload for %x", data)
		}
		p2, err := ParseVendor(re)
		if err != nil {
			t.Fatalf("re-encoded payload does not parse: %v", err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("payload not equivalent across re-encode:\nfirst:  %#v\nsecond: %#v", p, p2)
		}
	})
}

// FuzzReader drives the stream reader with the same corpus: whatever framing
// the byte-slice decoder accepts, the io reader must deliver identically.
func FuzzReader(f *testing.F) {
	for _, seed := range fuzzSeedMessages(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, xid, err := Decode(b)
		if err != nil {
			return
		}
		r := NewReader(bytes.NewReader(b))
		m2, xid2, err := r.ReadMessage()
		if err != nil {
			t.Fatalf("Decode accepted frame the Reader rejects: %v", err)
		}
		if xid2 != xid || !reflect.DeepEqual(m, m2) {
			t.Fatalf("Reader decoded %v differently from Decode", m.Type())
		}
	})
}

// FuzzReaderStream drives the live-mode framing path with multi-message
// byte streams — the attack surface a real switch connection exposes: valid
// frames back to back, truncated tails, corrupt length prefixes, oversized
// lengths, garbage versions. The reader must hand back every well-formed
// prefix message unchanged and then fail with an error (never panic, never
// spin): exactly the contract the live controller relies on to close a
// misbehaving connection without disturbing the others.
func FuzzReaderStream(f *testing.F) {
	seeds := fuzzSeedMessages(f)
	// Clean two- and three-message streams.
	f.Add(append(append([]byte{}, seeds[0]...), seeds[1]...))
	f.Add(append(append(append([]byte{}, seeds[2]...), seeds[3]...), seeds[4]...))
	// A valid frame followed by a truncated one (mid-frame cut).
	cut := append(append([]byte{}, seeds[0]...), seeds[9][:len(seeds[9])-3]...)
	f.Add(cut)
	// Corrupt length prefixes after a valid frame.
	under := append([]byte{}, seeds[0]...)
	under = append(under, Version, byte(TypeHello), 0x00, 0x04, 0, 0, 0, 1) // length < header
	f.Add(under)
	over := append([]byte{}, seeds[0]...)
	over = append(over, Version, byte(TypeEchoRequest), 0xff, 0xff, 0, 0, 0, 1) // 65535-byte claim, no body
	f.Add(over)
	f.Add([]byte{0xff, 0x00, 0x00, 0x08, 0, 0, 0, 0}) // bad version
	f.Add([]byte{Version, 0xee, 0x00, 0x08, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		r := NewReader(bytes.NewReader(b))
		consumed := 0
		for {
			m, _, err := r.ReadMessage()
			if err != nil {
				return // any error ends the connection; the stream may not resync
			}
			if m == nil {
				t.Fatal("ReadMessage returned nil message with nil error")
			}
			consumed += EncodedLen(m)
			if consumed > len(b) {
				t.Fatalf("reader produced %d message bytes from a %d-byte stream", consumed, len(b))
			}
		}
	})
}
