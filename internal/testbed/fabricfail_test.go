package testbed

import (
	"fmt"
	"os"
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/topo"
)

// The survivability contract (DESIGN.md §16), pinned on a 2×2 leaf-spine:
// kill a link or a switch on the active path mid-run and the fabric must
// reroute and keep delivering — no routing loop ever forms, surviving
// traffic arrives exactly once in order, and every in-window loss is
// attributed to a named drop reason (the ledger below closes exactly).

// survivabilitySched is a multi-packet-per-flow workload long enough to
// straddle a mid-run failure window: 8 flows × 30 frames at 40 Mbps spans
// roughly 48 ms of sending.
func survivabilitySched(t *testing.T, g *topo.Graph, dst int) pktgen.Schedule {
	t.Helper()
	sched, err := pktgen.InterleavedBursts(fabricPktgen(g, 40, dst), 8, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// midWindow places a 20 ms failure window in the middle of the schedule.
func midWindow(sched pktgen.Schedule) netem.Window {
	start := sched.Duration() / 3
	return netem.Window{Start: start, End: start + 20*time.Millisecond}
}

// dropLedger sums the named in-window loss reasons. FramesSent must equal
// FramesDelivered plus exactly this — an unnamed loss is a bug.
func dropLedger(res *FabricResult) int64 {
	return res.LinkDownDrops + int64(res.TxDownDrops) + int64(res.BufDropsDeadPort) +
		int64(res.CrashRxDrops) + int64(res.CrashBufPackets)
}

// settleDeadline is when a failure plan's last transition must have fully
// reconverged: the last window edge plus one re-request period (the slowest
// recovery spring) and control-plane slack.
func settleDeadline(plan *netem.FailurePlan) time.Duration {
	var last time.Duration
	for _, lf := range plan.Links {
		if lf.Window.End > last {
			last = lf.Window.End
		}
	}
	for _, sf := range plan.Switches {
		if sf.Window.End > last {
			last = sf.Window.End
		}
	}
	return last + 60*time.Millisecond
}

// checkSurvivability asserts the invariants every failure run must keep.
// Transient reordering while old-path and new-path frames race is physical
// and allowed — but only until settleBy; afterwards delivery is exactly
// once in order.
func checkSurvivability(t *testing.T, label string, res *FabricResult, settleBy time.Duration) {
	t.Helper()
	if res.LoopFrames != 0 {
		t.Errorf("%s: %d loop frames", label, res.LoopFrames)
	}
	if res.DupEmissions != 0 || res.Misdelivered != 0 {
		t.Errorf("%s: dups %d, misdelivered %d", label, res.DupEmissions, res.Misdelivered)
	}
	if res.LastReorderTime > settleBy {
		t.Errorf("%s: reorder delivered at %v, past the settle deadline %v",
			label, res.LastReorderTime, settleBy)
	}
	if res.Unroutable != 0 || res.Blackholes != 0 {
		t.Errorf("%s: unroutable %d, blackholes %d on a fabric with a spare spine",
			label, res.Unroutable, res.Blackholes)
	}
	if res.ReroutedPaths == 0 {
		t.Errorf("%s: no next hops changed — the failure was never learned", label)
	}
	if got, want := res.FramesDelivered+dropLedger(res), int64(res.FramesSent); got != want {
		t.Errorf("%s: ledger does not close: delivered %d + named drops %d = %d, sent %d",
			label, res.FramesDelivered, dropLedger(res), got, want)
	}
	if res.FramesDelivered <= int64(res.FramesSent)/2 {
		t.Errorf("%s: only %d of %d frames survived a 20ms window",
			label, res.FramesDelivered, res.FramesSent)
	}
	if res.BufferUnitsLeaked != 0 || res.BufferBytesLeaked != 0 {
		t.Errorf("%s: leaked %d units / %d bytes", label, res.BufferUnitsLeaked, res.BufferBytesLeaked)
	}
	if res.ConvergenceTime <= 0 {
		t.Errorf("%s: convergence time %v", label, res.ConvergenceTime)
	}
}

// runSurvivability builds a 2×2 leaf-spine, kills mid-run whatever the plan
// names, and returns the result.
func runSurvivability(t *testing.T, gran openflow.BufferGranularity, install topo.InstallMode,
	shards, workers int, mkPlan func(g *topo.Graph, w netem.Window) *netem.FailurePlan) (*FabricResult, time.Duration) {
	t.Helper()
	graph := buildGraph(t, "leafspine:leaves=2,spines=2")
	sched := survivabilitySched(t, graph, 1)
	plan := mkPlan(graph, midWindow(sched))
	buf := openflow.FlowBufferConfig{Granularity: gran, RerequestTimeoutMs: 50}
	cfg := DefaultConfig(buf, 256)
	cfg.Seed = 1
	fb, err := NewFabric(cfg, FabricOptions{
		Graph:         graph,
		Shards:        shards,
		Install:       install,
		KernelWorkers: workers,
		Failures:      plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	return res, settleDeadline(plan)
}

// firstHopPlan kills the active path's first inter-switch link.
func firstHopPlan(g *topo.Graph, w netem.Window) *netem.FailurePlan {
	path, err := g.HostPath(0, 1)
	if err != nil || len(path) < 2 {
		panic(fmt.Sprintf("leaf-spine path: %v (%d hops)", err, len(path)))
	}
	return &netem.FailurePlan{Links: []netem.LinkFailure{
		{A: path[0].Switch, B: path[1].Switch, Window: w},
	}}
}

// midSpinePlan crashes the spine the active path crosses.
func midSpinePlan(g *topo.Graph, w netem.Window) *netem.FailurePlan {
	path, err := g.HostPath(0, 1)
	if err != nil || len(path) < 3 {
		panic(fmt.Sprintf("leaf-spine path: %v (%d hops)", err, len(path)))
	}
	return &netem.FailurePlan{Switches: []netem.SwitchFailure{
		{Switch: path[1].Switch, Window: w},
	}}
}

func TestFabricLinkFailureSurvivability(t *testing.T) {
	// Every mechanism × both install modes: a mid-run link kill on the
	// active path must reroute over the spare spine with the invariants
	// intact. The mechanisms differ only in what the refused releases cost:
	// flow granularity re-offers parked units after the reroute, so its
	// dead-port buffer losses are zero by construction.
	for _, gran := range []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	} {
		for _, install := range []topo.InstallMode{topo.InstallHopByHop, topo.InstallPath} {
			label := fmt.Sprintf("gran=%v install=%v", gran, install)
			res, settle := runSurvivability(t, gran, install, 1, 1, firstHopPlan)
			checkSurvivability(t, label, res, settle)
			if gran == openflow.GranularityFlow && res.BufDropsDeadPort != 0 {
				t.Errorf("%s: flow granularity destroyed %d buffered packets (units must stay parked)",
					label, res.BufDropsDeadPort)
			}
		}
	}
}

func TestFabricSwitchCrashSurvivability(t *testing.T) {
	// Crash the active spine mid-run: neighbors see carrier loss, traffic
	// reroutes over the other spine, and the chassis losses — wiped buffers,
	// frames into the dead switch — are named in the ledger. After restart
	// the pristine routes return through the empty switch's miss path.
	res, settle := runSurvivability(t, openflow.GranularityFlow, topo.InstallPath, 1, 1, midSpinePlan)
	checkSurvivability(t, "spine crash", res, settle)
	if res.CrashBufPackets == 0 && res.CrashRxDrops == 0 && res.LinkDownDrops == 0 {
		t.Error("spine crash destroyed nothing — the failure never bit the workload")
	}
}

func TestFabricSurvivabilityDeterministic(t *testing.T) {
	// A failure run is exactly reproducible, and sharded recovery — two
	// controllers learning the failure at different times over the peer
	// sync link — keeps every invariant.
	run := func() (*FabricResult, time.Duration) {
		return runSurvivability(t, openflow.GranularityFlow, topo.InstallPath, 2, 1, firstHopPlan)
	}
	res, settle := run()
	checkSurvivability(t, "sharded link failure", res, settle)
	again, _ := run()
	diffResults(t, "repeat run", res, again)
}

func TestFabricSurvivabilityParMatchesSerial(t *testing.T) {
	// The §15 contract extends to failure runs: link kill plus spine crash,
	// two shards, and the parallel kernel at any worker count reproduces the
	// serial result field for field — failure events are scheduled one per
	// owning domain in both modes, so even Executed() matches.
	mkPlan := func(g *topo.Graph, w netem.Window) *netem.FailurePlan {
		p := firstHopPlan(g, w)
		late := netem.Window{Start: w.End + 5*time.Millisecond, End: w.End + 15*time.Millisecond}
		p.Switches = midSpinePlan(g, late).Switches
		return p
	}
	graph := buildGraph(t, "leafspine:leaves=2,spines=2")
	sched := survivabilitySched(t, graph, 1)
	plan := mkPlan(graph, midWindow(sched))
	run := func(workers int) (*Fabric, *FabricResult) {
		buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
		cfg := DefaultConfig(buf, 256)
		cfg.Seed = 1
		fb, err := NewFabric(cfg, FabricOptions{
			Graph:         graph,
			Shards:        2,
			Install:       topo.InstallPath,
			KernelWorkers: workers,
			Failures:      plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return fb, res
	}
	sfb, sres := run(1)
	checkSurvivability(t, "serial baseline", sres, settleDeadline(plan))
	for _, workers := range []int{2, 8} {
		label := fmt.Sprintf("workers=%d", workers)
		pfb, pres := run(workers)
		if pfb.ParKernel() == nil {
			t.Fatalf("%s: still on the serial kernel", label)
		}
		diffResults(t, label, sres, pres)
		if se, pe := sfb.Runner().Executed(), pfb.Runner().Executed(); se != pe {
			t.Errorf("%s: executed %d events, serial %d", label, pe, se)
		}
		if sn, pn := sfb.Runner().Now(), pfb.Runner().Now(); sn != pn {
			t.Errorf("%s: final virtual time %v, serial %v", label, pn, sn)
		}
	}
}

func TestFabricEmptyFailurePlanIsInert(t *testing.T) {
	// The zero-value plan is the absence of the feature: same results, same
	// executed-event count as a fabric that never heard of failure plans.
	run := func(plan *netem.FailurePlan) (*FabricResult, uint64) {
		graph := buildGraph(t, "leafspine:leaves=2,spines=2")
		sched := survivabilitySched(t, graph, 1)
		buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
		fb, err := NewFabric(DefaultConfig(buf, 256), FabricOptions{Graph: graph, Failures: plan})
		if err != nil {
			t.Fatal(err)
		}
		res, err := fb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return res, fb.Runner().Executed()
	}
	base, baseExec := run(nil)
	empty, emptyExec := run(&netem.FailurePlan{})
	diffResults(t, "empty plan", base, empty)
	if baseExec != emptyExec {
		t.Errorf("empty plan executed %d events, baseline %d", emptyExec, baseExec)
	}
	if base.FramesDelivered != int64(base.FramesSent) {
		t.Errorf("healthy baseline delivered %d of %d", base.FramesDelivered, base.FramesSent)
	}
}

// TestSurvivabilitySoak is CI's survivability seed sweep (SURVIVABILITY_SOAK=1,
// under the race detector): many seeds × both failure scenarios × mechanisms
// × serial and parallel kernels, every run held to the full survivability
// contract. Skipped unless SURVIVABILITY_SOAK is set so regular `go test`
// stays fast.
func TestSurvivabilitySoak(t *testing.T) {
	if os.Getenv("SURVIVABILITY_SOAK") == "" {
		t.Skip("set SURVIVABILITY_SOAK=1 to run the survivability seed sweep")
	}
	graph := buildGraph(t, "leafspine:leaves=2,spines=2")
	plans := []struct {
		name string
		mk   func(g *topo.Graph, w netem.Window) *netem.FailurePlan
	}{{"link", firstHopPlan}, {"crash", midSpinePlan}}
	grans := []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	}
	for seed := int64(1); seed <= 10; seed++ {
		for _, pl := range plans {
			for _, gran := range grans {
				for _, workers := range []int{1, 4} {
					label := fmt.Sprintf("seed=%d %s gran=%v workers=%d", seed, pl.name, gran, workers)
					pg := fabricPktgen(graph, 40, 1)
					pg.Seed = seed
					sched, err := pktgen.InterleavedBursts(pg, 8, 30, 4)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					plan := pl.mk(graph, midWindow(sched))
					buf := openflow.FlowBufferConfig{Granularity: gran, RerequestTimeoutMs: 50}
					cfg := DefaultConfig(buf, 256)
					cfg.Seed = seed
					fb, err := NewFabric(cfg, FabricOptions{
						Graph:         graph,
						Shards:        2,
						Install:       topo.InstallPath,
						KernelWorkers: workers,
						Failures:      plan,
					})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					res, err := fb.Run(sched)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					checkSurvivability(t, label, res, settleDeadline(plan))
					t.Logf("%s: delivered %d/%d, converged in %v, %d rerouted",
						label, res.FramesDelivered, res.FramesSent, res.ConvergenceTime, res.ReroutedPaths)
				}
			}
		}
	}
}

func TestFabricFailurePlanValidation(t *testing.T) {
	graph := buildGraph(t, "leafspine:leaves=2,spines=2")
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow}
	cfg := DefaultConfig(buf, 64)
	w := netem.Window{Start: time.Millisecond, End: 2 * time.Millisecond}
	for name, plan := range map[string]*netem.FailurePlan{
		"switch out of range": {Switches: []netem.SwitchFailure{{Switch: 9, Window: w}}},
		"link out of range":   {Links: []netem.LinkFailure{{A: 0, B: 9, Window: w}}},
		"not an edge":         {Links: []netem.LinkFailure{{A: 0, B: 1, Window: w}}}, // both leaves
		"self loop":           {Links: []netem.LinkFailure{{A: 2, B: 2, Window: w}}},
		"bad window":          {Switches: []netem.SwitchFailure{{Switch: 2, Window: netem.Window{Start: time.Second, End: time.Second}}}},
	} {
		if _, err := NewFabric(cfg, FabricOptions{Graph: graph, Failures: plan}); err == nil {
			t.Errorf("%s: NewFabric succeeded", name)
		}
	}
}
