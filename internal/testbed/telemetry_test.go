package testbed

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/telemetry"
)

// runWithTelemetry runs the Study A workload with a recorder wired in and
// restores the process-wide gate afterwards so other tests see the default.
func runWithTelemetry(t *testing.T, g openflow.BufferGranularity, rate float64, flows int) (*Testbed, *Result) {
	t.Helper()
	prev := telemetry.Enabled()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
	buf := openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 50}
	cfg := DefaultConfig(buf, 256)
	cfg.Telemetry = &telemetry.Config{}
	tb, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sched, err := pktgen.SinglePacketFlows(pktgenConfig(rate), flows)
	if err != nil {
		t.Fatalf("SinglePacketFlows: %v", err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tb, res
}

func TestTelemetryObservesWithoutPerturbing(t *testing.T) {
	// The determinism contract (DESIGN.md §12): recording schedules no kernel
	// events and draws no randomness, so a telemetry run executes exactly the
	// same event sequence — same event count, same results — as a bare run.
	bare, err := New(DefaultConfig(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}, 256))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.SinglePacketFlows(pktgenConfig(45), 400)
	if err != nil {
		t.Fatal(err)
	}
	bareRes, err := bare.Run(sched)
	if err != nil {
		t.Fatal(err)
	}

	tb, res := runWithTelemetry(t, openflow.GranularityFlow, 45, 400)

	if got, want := tb.Kernel().Executed(), bare.Kernel().Executed(); got != want {
		t.Errorf("kernel executed %d events with telemetry, %d without", got, want)
	}
	if res.FramesDelivered != bareRes.FramesDelivered ||
		res.PacketIns != bareRes.PacketIns ||
		res.CtrlLoadToControllerMbps != bareRes.CtrlLoadToControllerMbps ||
		res.FlowSetupDelay.Mean() != bareRes.FlowSetupDelay.Mean() ||
		res.BufferOccupancyMean != bareRes.BufferOccupancyMean ||
		res.ControllerDelay.Mean() != bareRes.ControllerDelay.Mean() {
		t.Error("telemetry run produced different results than bare run")
	}
	if tb.Telemetry().Tracer().Emitted() == 0 {
		t.Error("telemetry run recorded no spans")
	}
}

func TestTelemetrySpanTaxonomyCovered(t *testing.T) {
	// Multi-packet flows exercise both the miss path (first packet of each
	// flow) and the fast path (subsequent packets hitting the installed rule).
	prev := telemetry.Enabled()
	t.Cleanup(func() { telemetry.SetEnabled(prev) })
	cfg := DefaultConfig(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}, 256)
	cfg.Telemetry = &telemetry.Config{}
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(pktgenConfig(50), 50, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(sched); err != nil {
		t.Fatal(err)
	}
	spans := tb.Telemetry().Tracer().Snapshot()
	var seen [telemetry.NumSpanKinds]int
	for _, s := range spans {
		seen[s.Kind]++
	}
	// Every stage of the miss path must appear in a buffered-granularity run.
	for _, k := range []telemetry.SpanKind{
		telemetry.KindIngress, telemetry.KindForward, telemetry.KindMiss,
		telemetry.KindBufferEnqueue, telemetry.KindPacketIn,
		telemetry.KindControllerService, telemetry.KindControllerRTT,
		telemetry.KindFlowMod, telemetry.KindBufferDrain,
		telemetry.KindEgress, telemetry.KindFlowSetup,
		telemetry.KindSwitchCPU, telemetry.KindControllerCPU,
	} {
		if seen[k] == 0 {
			t.Errorf("no %v spans recorded", k)
		}
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("span %v ends before it starts: %v > %v", s.Kind, s.Start, s.End)
		}
	}
}

func TestTelemetryFlowRecordsAccountEveryFrame(t *testing.T) {
	const flows = 300
	tb, res := runWithTelemetry(t, openflow.GranularityFlow, 50, flows)
	recs := tb.Telemetry().Flows().Records()
	if len(recs) != flows {
		t.Fatalf("exported %d flow records, want %d", len(recs), flows)
	}
	var pkts, bytesTotal uint64
	for _, r := range recs {
		pkts += r.Packets
		bytesTotal += r.Bytes
		if r.LastSeen < r.FirstSeen {
			t.Fatalf("record %v: last seen %v before first seen %v", r.Key, r.LastSeen, r.FirstSeen)
		}
	}
	if pkts != uint64(res.FramesSent) {
		t.Errorf("flow records account %d packets, testbed sent %d", pkts, res.FramesSent)
	}
	if bytesTotal == 0 {
		t.Error("flow records account zero bytes")
	}
	var buf bytes.Buffer
	if err := tb.Telemetry().Flows().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != telemetry.FlowCSVHeader {
		t.Errorf("CSV header = %q", lines[0])
	}
	if len(lines) != flows+1 {
		t.Errorf("CSV has %d data rows, want %d", len(lines)-1, flows)
	}
}

func TestTelemetryTraceExportLoadable(t *testing.T) {
	tb, _ := runWithTelemetry(t, openflow.GranularityPacket, 40, 100)
	var buf bytes.Buffer
	if err := telemetry.WriteTrace(&buf, tb.Telemetry().Tracer().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
}
