// Package testbed assembles the paper's experimental platform (Fig. 1) in
// simulation: Host1 and Host2 attached to the software switch by 100 Mbps
// links, the switch attached to the controller by a control link, tcpdump
// sniffers on the control channel, and pktgen-style workloads replayed from
// a schedule. One Run produces every metric the paper defines in §III.B.
//
// A Testbed (like the sim kernel it wraps) is confined to one goroutine,
// but independent instances share no mutable state: experiments may
// assemble and run one testbed per goroutine concurrently.
package testbed

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"sdnbuffer/internal/capture"
	"sdnbuffer/internal/chaos"
	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/core"
	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/sim"
	"sdnbuffer/internal/switchd"
	"sdnbuffer/internal/telemetry"
)

// Port numbers of the Fig. 1 topology.
const (
	PortHost1 uint16 = 1
	PortHost2 uint16 = 2
)

// Config describes one testbed instance.
type Config struct {
	// Seed drives the deterministic kernel.
	Seed int64
	// HostLinkMbps is the host-switch link bandwidth (paper: 100 Mbps).
	HostLinkMbps float64
	// HostLinkPropagation is the host-switch one-way latency.
	HostLinkPropagation time.Duration
	// ControlLinkMbps is the switch-controller link bandwidth.
	ControlLinkMbps float64
	// ControlLinkPropagation is the switch-controller one-way latency.
	ControlLinkPropagation time.Duration
	// Switch is the switch resource model (zero value: DefaultSimConfig
	// with the Datapath left as provided).
	Switch switchd.SimConfig
	// Controller is the controller resource model.
	Controller controller.SimConfig
	// ControlLossRate drops each control message independently with this
	// probability (both directions). The paper's re-request timer
	// (Algorithm 1 line 12) exists exactly for this failure mode.
	ControlLossRate float64
	// Chaos layers a fault plan over the control path: link impairments on
	// both control directions, controller-side stall/drop/crash windows, and
	// switch-visible outage windows that flip the datapath into its fail
	// mode. Nil means no injected faults. A plan with zero loss leaves
	// ControlLossRate in force (the impairment merge rule), so outage or
	// reorder scenarios compose with the legacy loss knob.
	Chaos *chaos.Plan
	// UseAuthorityProxy interposes a DevoFlow/DIFANE-style authority device
	// on the control path (the related-work approach of §II): it answers
	// misses for already-seen destinations from cloned rules and escalates
	// the rest. ProxyCost is its per-message processing demand (default
	// 30 µs).
	UseAuthorityProxy bool
	ProxyCost         time.Duration
	// Forwarder configures the reactive forwarding app. When Routes is
	// empty, the Fig. 1 default is installed: 10.0.0.0/24 via Host2's port,
	// 10.1.0.0/16 (the forged pktgen sources) via Host1's port.
	Forwarder controller.ForwarderConfig
	// Drain bounds how long the run may continue after the last emission to
	// let in-flight work finish (default 2s of virtual time).
	Drain time.Duration
	// Telemetry, when non-nil, wires a packet-lifecycle recorder through the
	// platform (switch, buffer mechanism, controller) and enables the
	// process-wide telemetry gate. Recording is purely observational — it
	// schedules no kernel events and draws no randomness — so results and
	// event order are identical with or without it.
	Telemetry *telemetry.Config
}

// DefaultConfig returns the paper's platform parameters with the given
// buffer setup.
func DefaultConfig(buffer openflow.FlowBufferConfig, bufferCapacity int) Config {
	sw := switchd.DefaultSimConfig()
	sw.Datapath = switchd.Config{
		DatapathID:     1,
		NumPorts:       2,
		Buffer:         buffer,
		BufferCapacity: bufferCapacity,
	}
	return Config{
		Seed:                   1,
		HostLinkMbps:           100,
		HostLinkPropagation:    20 * time.Microsecond,
		ControlLinkMbps:        100,
		ControlLinkPropagation: 500 * time.Microsecond,
		Switch:                 sw,
		Controller:             controller.DefaultSimConfig(),
	}
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.HostLinkMbps <= 0 || out.ControlLinkMbps <= 0 {
		return out, fmt.Errorf("testbed: link bandwidths must be positive")
	}
	if out.Drain == 0 {
		out.Drain = 2 * time.Second
	}
	if len(out.Forwarder.Routes) == 0 {
		out.Forwarder.Routes = []controller.Route{
			{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Port: PortHost2},
			{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Port: PortHost1},
		}
	}
	return out, nil
}

// Result carries the paper's §III.B metrics for one run.
type Result struct {
	// Elapsed is the measurement window (virtual time from start to
	// quiescence).
	Elapsed time.Duration
	// SendingWindow is the nominal emission span of the workload.
	SendingWindow time.Duration

	// CtrlLoadToControllerMbps is Fig. 2(a)/9(a): packet_in traffic.
	CtrlLoadToControllerMbps float64
	// CtrlLoadToSwitchMbps is Fig. 2(b)/9(b): flow_mod + packet_out traffic.
	CtrlLoadToSwitchMbps float64
	// ControllerUsagePercent is Fig. 3/10.
	ControllerUsagePercent float64
	// SwitchUsagePercent is Fig. 4/11.
	SwitchUsagePercent float64
	// FlowSetupDelay (seconds) is Fig. 5/12(a): first packet in → first
	// packet out, per flow.
	FlowSetupDelay metrics.Summary
	// ControllerDelay (seconds) is Fig. 6: packet_in out → first response
	// in, per request, measured at the switch.
	ControllerDelay metrics.Summary
	// SwitchDelayMean (seconds) is Fig. 7: the paper defines it as the
	// difference between the flow setup delay and the controller delay.
	SwitchDelayMean float64
	// FlowForwardingDelay (seconds) is Fig. 12(b): first packet in → last
	// packet of the flow out, per flow.
	FlowForwardingDelay metrics.Summary
	// BufferOccupancyMean / Max are Fig. 8/13: buffer units in use.
	BufferOccupancyMean float64
	BufferOccupancyMax  float64

	// Bookkeeping for verification.
	PacketIns       int64
	FlowMods        int64
	PacketOuts      int64
	Rerequests      uint64
	BufferFallbacks uint64
	FramesSent      int
	FramesDelivered int64
	FlowsObserved   int

	// Resilience bookkeeping (all zero on a healthy run).
	//
	// Giveups counts flows whose re-request budget ran out (the hardened
	// mechanism released their buffer and fell back to full-packet
	// packet_ins). BufferUnitsLeaked is the pool occupancy at quiescence —
	// the acceptance criterion demands zero. DupEmissions counts workload
	// frames the switch emitted more than once; OrderViolations counts
	// emissions whose per-flow sequence number went backwards.
	Giveups           uint64
	BufferUnitsLeaked int
	DupEmissions      int64
	OrderViolations   int64
	// StandaloneForwards / ControlDownMisses mirror the datapath fail-mode
	// counters; CtrlStalled/Dropped/Crashed mirror the chaos injector.
	StandaloneForwards uint64
	ControlDownMisses  uint64
	CtrlStalled        int64
	CtrlDropped        int64
	CtrlCrashed        int64

	// Overload bookkeeping (all zero unless overload protection is
	// configured and under pressure).
	//
	// PacerDrops counts packet_ins refused by the switch-side token bucket;
	// CtrlShedPacketIns counts packet_ins shed at the controller's admission
	// queue. Ladder fields mirror the degradation ladder: the deepest rung
	// reached, the rung at quiescence (must equal zero — flow granularity —
	// after pressure subsides), and the transition count. Byte fields mirror
	// the pool's byte accounting; BufferBytesLeaked is the pool's byte
	// occupancy at quiescence and must be zero.
	PacerDrops           uint64
	PacerDropBytes       uint64
	CtrlShedPacketIns    uint64
	CtrlShedBytes        uint64
	LadderMaxLevel       uint8
	LadderLevelEnd       uint8
	LadderTransitions    int
	BufferBytesHighWater uint64
	BufferRejectedBytes  uint64
	BufferBytesLeaked    int64
}

// frameIdent identifies a workload frame by flow key and IP id (pktgen sets
// the IP id to the per-flow sequence number).
type frameIdent struct {
	key  packet.FlowKey
	ipid uint16
}

type flowTrack struct {
	enterFirst time.Duration
	haveEnter  bool
	leaveFirst time.Duration
	haveLeave  bool
	leaveLast  time.Duration
	leaves     int
	lastSeq    int // highest per-flow sequence (IP id) emitted; -1 before any
}

// Testbed is one assembled platform instance.
type Testbed struct {
	cfg    Config
	kernel *sim.Kernel
	sw     *switchd.SimSwitch
	ctl    *controller.SimController
	fwd    *controller.ReactiveForwarder
	chans  *capture.ControlChannel

	h1ToSw *netem.Link
	swToH1 *netem.Link
	h2ToSw *netem.Link
	swToH2 *netem.Link

	proxy         *AuthorityProxy
	upstreamChans *capture.ControlChannel // proxy<->controller leg, when proxied

	inj *chaos.Injector // nil without controller faults

	index     map[frameIdent]int // frame -> flow id
	flows     map[int]*flowTrack
	emitted   map[frameIdent]int // transmit-tap emission counts
	delivered int64
	dups      int64
	misorders int64

	tel *telemetry.Recorder // nil unless Config.Telemetry is set
}

// New assembles a testbed.
func New(cfg Config) (*Testbed, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	k := sim.New(cfg.Seed)

	if cfg.Switch.CPUCores == 0 { // zero value: fill in the calibrated model
		dp := cfg.Switch.Datapath
		cfg.Switch = switchd.DefaultSimConfig()
		cfg.Switch.Datapath = dp
	}
	if cfg.Controller.CPUCores == 0 {
		cfg.Controller = controller.DefaultSimConfig()
	}

	sw, err := switchd.NewSimSwitch(k, cfg.Switch)
	if err != nil {
		return nil, fmt.Errorf("testbed: building switch: %w", err)
	}
	fwd, err := controller.NewReactiveForwarder(cfg.Forwarder)
	if err != nil {
		return nil, fmt.Errorf("testbed: building forwarder: %w", err)
	}
	ctl, err := controller.NewSimController(k, cfg.Controller, fwd)
	if err != nil {
		return nil, fmt.Errorf("testbed: building controller: %w", err)
	}

	mkLink := func(name string, mbps float64, prop time.Duration) (*netem.Link, error) {
		l, err := netem.NewLink(k, name, mbps, prop)
		if err != nil {
			return nil, fmt.Errorf("testbed: link %s: %w", name, err)
		}
		return l, nil
	}
	tb := &Testbed{
		cfg:     cfg,
		kernel:  k,
		sw:      sw,
		ctl:     ctl,
		fwd:     fwd,
		index:   make(map[frameIdent]int),
		flows:   make(map[int]*flowTrack),
		emitted: make(map[frameIdent]int),
	}
	if cfg.Telemetry != nil {
		tb.tel = telemetry.NewRecorder(*cfg.Telemetry)
		telemetry.SetEnabled(true)
		sw.SetTelemetry(tb.tel)
		ctl.SetTelemetry(tb.tel)
	}
	if tb.h1ToSw, err = mkLink("h1->sw", cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	if tb.swToH1, err = mkLink("sw->h1", cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	if tb.h2ToSw, err = mkLink("h2->sw", cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	if tb.swToH2, err = mkLink("sw->h2", cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	ctrlUp, err := mkLink("sw->ctl", cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
	if err != nil {
		return nil, err
	}
	ctrlDown, err := mkLink("ctl->sw", cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
	if err != nil {
		return nil, err
	}
	if cfg.ControlLossRate > 0 {
		if err := ctrlUp.SetLossRate(cfg.ControlLossRate); err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
		if err := ctrlDown.SetLossRate(cfg.ControlLossRate); err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
	}
	if cfg.Chaos != nil {
		if err := cfg.Chaos.Validate(); err != nil {
			return nil, fmt.Errorf("testbed: %w", err)
		}
		up, down := cfg.Chaos.ControlUp, cfg.Chaos.ControlDown
		if len(cfg.Chaos.SwitchOutages) > 0 {
			// Blank both control links over switch-outage windows so no
			// message crosses while the datapath sits in its fail mode.
			up.Outages = append(append([]netem.Window(nil), up.Outages...), cfg.Chaos.SwitchOutages...)
			down.Outages = append(append([]netem.Window(nil), down.Outages...), cfg.Chaos.SwitchOutages...)
		}
		if up.Enabled() {
			if err := ctrlUp.SetImpairment(up); err != nil {
				return nil, fmt.Errorf("testbed: control-up impairment: %w", err)
			}
		}
		if down.Enabled() {
			if err := ctrlDown.SetImpairment(down); err != nil {
				return nil, fmt.Errorf("testbed: control-down impairment: %w", err)
			}
		}
		for _, w := range cfg.Chaos.SwitchOutages {
			w := w
			k.At(w.Start, func() { sw.SetControlDown(true) })
			k.At(w.End, func() { sw.SetControlDown(false) })
		}
		if cfg.Chaos.Controller.Enabled() {
			tb.inj = chaos.NewInjector(k, cfg.Chaos.Controller, nil)
		}
	}
	tb.chans = capture.NewControlChannel(ctrlUp, ctrlDown)

	// deliverToController applies the controller-side fault injector (when
	// configured) at the point a control message would reach the controller.
	deliverToController := func(msg []byte) func() {
		deliver := func() { ctl.Deliver(msg) }
		if tb.inj != nil {
			return tb.inj.Wrap(deliver)
		}
		return deliver
	}

	if cfg.UseAuthorityProxy {
		cost := cfg.ProxyCost
		if cost == 0 {
			cost = 30 * time.Microsecond
		}
		proxy := NewAuthorityProxy(k, cost)
		proxyUp, err := mkLink("proxy->ctl", cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		proxyDown, err := mkLink("ctl->proxy", cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		tb.upstreamChans = capture.NewControlChannel(proxyUp, proxyDown)
		// switch -> ctrlUp -> proxy -> proxyUp -> controller, and back.
		sw.SetControlSender(func(msg []byte) {
			ctrlUp.Send(msg, func() { proxy.DeliverFromSwitch(msg) })
		})
		proxy.SetUpstream(func(msg []byte) {
			proxyUp.Send(msg, deliverToController(msg))
		})
		ctl.SetSwitchSender(func(msg []byte) {
			proxyDown.Send(msg, func() { proxy.DeliverFromController(msg) })
		})
		proxy.SetDownstream(func(msg []byte) {
			ctrlDown.Send(msg, func() { sw.DeliverControl(msg) })
		})
		tb.proxy = proxy
	} else {
		sw.SetControlSender(func(msg []byte) {
			ctrlUp.Send(msg, deliverToController(msg))
		})
		ctl.SetSwitchSender(func(msg []byte) {
			ctrlDown.Send(msg, func() { sw.DeliverControl(msg) })
		})
	}
	sw.SetTransmit(tb.onSwitchTransmit)
	return tb, nil
}

// Kernel exposes the event kernel (for composing extra scenario events).
func (tb *Testbed) Kernel() *sim.Kernel { return tb.kernel }

// Switch exposes the simulated switch.
func (tb *Testbed) Switch() *switchd.SimSwitch { return tb.sw }

// Controller exposes the simulated controller.
func (tb *Testbed) Controller() *controller.SimController { return tb.ctl }

// Capture exposes the switch-side control-channel sniffers.
func (tb *Testbed) Capture() *capture.ControlChannel { return tb.chans }

// Telemetry exposes the packet-lifecycle recorder (nil unless
// Config.Telemetry was set). After Run, the recorder holds the span ring
// and the flushed flow records.
func (tb *Testbed) Telemetry() *telemetry.Recorder { return tb.tel }

// Injector exposes the controller-side fault injector (nil unless the chaos
// plan configures controller faults).
func (tb *Testbed) Injector() *chaos.Injector { return tb.inj }

// UpstreamCapture exposes the proxy-to-controller sniffers (nil without
// UseAuthorityProxy). The gap between Capture and UpstreamCapture is the
// traffic the authority device absorbed.
func (tb *Testbed) UpstreamCapture() *capture.ControlChannel { return tb.upstreamChans }

// Proxy exposes the authority proxy (nil without UseAuthorityProxy).
func (tb *Testbed) Proxy() *AuthorityProxy { return tb.proxy }

// onSwitchTransmit observes every frame leaving the switch and forwards it
// onto the proper egress link. The tap doubles as the exactly-once-in-order
// oracle for the resilience runs: pktgen stamps each frame's IP id with its
// 0-based per-flow sequence number, so a repeated ident is a duplicate
// emission and a sequence number below the flow's high-water mark is an
// ordering violation.
func (tb *Testbed) onSwitchTransmit(port uint16, frame []byte) {
	now := tb.kernel.Now()
	if ident, id, ok := tb.identify(frame); ok {
		tb.emitted[ident]++
		if tb.emitted[ident] > 1 {
			tb.dups++
		}
		tr := tb.flows[id]
		if tr != nil && tr.haveEnter {
			if seq := int(ident.ipid); seq < tr.lastSeq {
				tb.misorders++
			} else {
				tr.lastSeq = seq
			}
			if !tr.haveLeave {
				tr.leaveFirst = now
				tr.haveLeave = true
				if tb.tel != nil {
					// The paper's flow setup delay, as a span: the flow's first
					// packet entering the platform to its first packet leaving.
					tb.tel.Span(telemetry.KindFlowSetup, tr.enterFirst, now,
						telemetry.HashKey(ident.key), uint32(id), uint32(len(frame)))
				}
			}
			if now > tr.leaveLast {
				tr.leaveLast = now
			}
			tr.leaves++
		}
	}
	switch port {
	case PortHost1:
		tb.swToH1.Send(frame, func() { tb.delivered++ })
	case PortHost2:
		tb.swToH2.Send(frame, func() { tb.delivered++ })
	}
}

// identify maps a frame to its workload flow id.
func (tb *Testbed) identify(frame []byte) (frameIdent, int, bool) {
	f, err := packet.ParseHeaders(frame)
	if err != nil {
		return frameIdent{}, 0, false
	}
	ident := frameIdent{key: f.Key(), ipid: f.IPID}
	id, ok := tb.index[ident]
	return ident, id, ok
}

// Run replays a schedule from Host1 and runs the platform to quiescence,
// returning the metric set. Run may be called once per Testbed.
func (tb *Testbed) Run(sched pktgen.Schedule) (*Result, error) {
	if len(sched) == 0 {
		return nil, fmt.Errorf("testbed: empty schedule")
	}
	for _, e := range sched {
		f, err := packet.ParseHeaders(e.Frame)
		if err != nil {
			return nil, fmt.Errorf("testbed: schedule frame unparseable: %w", err)
		}
		tb.index[frameIdent{key: f.Key(), ipid: f.IPID}] = e.FlowID
		if _, ok := tb.flows[e.FlowID]; !ok {
			tb.flows[e.FlowID] = &flowTrack{lastSeq: -1}
		}
	}
	for _, e := range sched {
		e := e
		tb.kernel.At(e.At, func() {
			tb.h1ToSw.Send(e.Frame, func() {
				now := tb.kernel.Now()
				if _, id, ok := tb.identify(e.Frame); ok {
					tr := tb.flows[id]
					if !tr.haveEnter {
						tr.enterFirst = now
						tr.haveEnter = true
					}
				}
				tb.sw.Ingest(PortHost1, e.Frame)
			})
		})
	}
	// Run to quiescence: the kernel drains naturally once every packet has
	// been forwarded and every timer disarmed. The deadline only bounds
	// pathological runs (e.g. a flow whose re-request timer is never
	// answered re-arms forever).
	deadline := sched.Duration() + tb.cfg.Drain
	tb.kernel.Drain(deadline)
	tb.tel.Finish(tb.kernel.Now()) // flush live flow records (nil-safe)
	return tb.collect(sched), nil
}

func (tb *Testbed) collect(sched pktgen.Schedule) *Result {
	now := tb.kernel.Now()
	res := &Result{
		Elapsed:       now,
		SendingWindow: sched.Duration(),
		FramesSent:    len(sched),
	}
	res.CtrlLoadToControllerMbps = tb.chans.ToController.LoadMbps(now)
	res.CtrlLoadToSwitchMbps = tb.chans.ToSwitch.LoadMbps(now)
	res.ControllerUsagePercent = tb.ctl.CPUUtilizationPercent()
	res.SwitchUsagePercent = tb.sw.CPUUtilizationPercent()
	res.ControllerDelay = *tb.sw.ControllerDelay()

	// Iterate flows in id order: Welford summaries are order-sensitive in
	// the last bits, and determinism across runs is a hard guarantee.
	ids := make([]int, 0, len(tb.flows))
	for id := range tb.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr := tb.flows[id]
		if !tr.haveEnter {
			continue
		}
		res.FlowsObserved++
		if tr.haveLeave {
			res.FlowSetupDelay.Observe((tr.leaveFirst - tr.enterFirst).Seconds())
			res.FlowForwardingDelay.Observe((tr.leaveLast - tr.enterFirst).Seconds())
		}
	}
	res.SwitchDelayMean = res.FlowSetupDelay.Mean() - res.ControllerDelay.Mean()
	if res.SwitchDelayMean < 0 {
		res.SwitchDelayMean = 0
	}

	mech := tb.sw.Datapath().Mechanism()
	res.BufferOccupancyMean = mech.OccupancyMean(now)
	res.BufferOccupancyMax = mech.OccupancyMax()
	st := mech.Stats(now)
	res.Rerequests = st.Rerequests
	res.BufferFallbacks = st.DroppedNoBuffer
	res.Giveups = st.Giveups
	if pm, ok := mech.(interface{ Pool() *core.Pool }); ok {
		res.BufferUnitsLeaked = pm.Pool().Live()
		res.BufferBytesHighWater = uint64(pm.Pool().BytesHighWater())
		res.BufferRejectedBytes = pm.Pool().RejectedBytes()
		res.BufferBytesLeaked = pm.Pool().BytesInUse()
	}
	if lad, ok := mech.(*core.Ladder); ok {
		res.LadderMaxLevel = uint8(lad.MaxLevel())
		res.LadderLevelEnd = uint8(lad.Level())
		res.LadderTransitions = len(lad.Transitions())
	}
	res.PacerDrops, res.PacerDropBytes = tb.sw.PacerDrops()
	res.CtrlShedPacketIns, res.CtrlShedBytes = tb.ctl.AdmissionStats()
	res.DupEmissions = tb.dups
	res.OrderViolations = tb.misorders
	res.StandaloneForwards, res.ControlDownMisses = tb.sw.Datapath().FailStats()
	if tb.inj != nil {
		res.CtrlStalled = tb.inj.Stalled
		res.CtrlDropped = tb.inj.Dropped
		res.CtrlCrashed = tb.inj.Crashed
	}

	res.PacketIns, _ = tb.chans.ToController.ByType(openflow.TypePacketIn)
	res.FlowMods, _ = tb.chans.ToSwitch.ByType(openflow.TypeFlowMod)
	res.PacketOuts, _ = tb.chans.ToSwitch.ByType(openflow.TypePacketOut)
	res.FramesDelivered = tb.delivered
	return res
}
