package testbed

import (
	"fmt"
	"sort"
	"time"

	"sdnbuffer/internal/capture"
	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/sim"
	"sdnbuffer/internal/switchd"
)

// LineTestbed generalizes the Fig. 1 platform to a line of switches:
//
//	Host1 — SW1 — SW2 — … — SWn — Host2
//
// with one controller connected to every switch (sharing one controller
// CPU, like a single Floodlight process). Every switch misses independently
// for a new flow, so each flow costs n request round trips — the multi-hop
// amplification that makes the buffer mechanisms matter more, not less, in
// real topologies.
//
// Each switch uses port 1 for its left neighbour (or Host1) and port 2 for
// its right neighbour (or Host2).
type LineTestbed struct {
	cfg      Config
	switches int
	kernel   *sim.Kernel
	sws      []*switchd.SimSwitch
	ctl      *controller.SimController
	chans    []*capture.ControlChannel

	hostIn  *netem.Link // Host1 -> SW1
	hostOut *netem.Link // SWn -> Host2

	index     map[frameIdent]int
	flows     map[int]*flowTrack
	delivered int64
}

// NewLine assembles a line of the given number of switches using the same
// per-switch configuration as New.
func NewLine(cfg Config, switches int) (*LineTestbed, error) {
	if switches < 1 {
		return nil, fmt.Errorf("testbed: need at least one switch, got %d", switches)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	k := sim.New(cfg.Seed)
	if cfg.Switch.CPUCores == 0 {
		dp := cfg.Switch.Datapath
		cfg.Switch = switchd.DefaultSimConfig()
		cfg.Switch.Datapath = dp
	}
	if cfg.Controller.CPUCores == 0 {
		cfg.Controller = controller.DefaultSimConfig()
	}

	fwd, err := controller.NewReactiveForwarder(cfg.Forwarder)
	if err != nil {
		return nil, fmt.Errorf("testbed: building forwarder: %w", err)
	}
	ctl, err := controller.NewSimController(k, cfg.Controller, fwd)
	if err != nil {
		return nil, fmt.Errorf("testbed: building controller: %w", err)
	}

	lt := &LineTestbed{
		cfg:      cfg,
		switches: switches,
		kernel:   k,
		ctl:      ctl,
		index:    make(map[frameIdent]int),
		flows:    make(map[int]*flowTrack),
	}

	mkLink := func(name string, mbps float64, prop time.Duration) (*netem.Link, error) {
		l, err := netem.NewLink(k, name, mbps, prop)
		if err != nil {
			return nil, fmt.Errorf("testbed: link %s: %w", name, err)
		}
		return l, nil
	}

	// Build switches, each with its own control channel to the shared
	// controller.
	for i := 0; i < switches; i++ {
		swCfg := cfg.Switch
		swCfg.Datapath.DatapathID = uint64(i + 1)
		swCfg.Datapath.NumPorts = 2
		sw, err := switchd.NewSimSwitch(k, swCfg)
		if err != nil {
			return nil, fmt.Errorf("testbed: building switch %d: %w", i+1, err)
		}
		up, err := mkLink(fmt.Sprintf("sw%d->ctl", i+1), cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		down, err := mkLink(fmt.Sprintf("ctl->sw%d", i+1), cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		if cfg.ControlLossRate > 0 {
			if err := up.SetLossRate(cfg.ControlLossRate); err != nil {
				return nil, err
			}
			if err := down.SetLossRate(cfg.ControlLossRate); err != nil {
				return nil, err
			}
		}
		lt.chans = append(lt.chans, capture.NewControlChannel(up, down))

		swi, upLink, downLink := sw, up, down
		deliver := ctl.Attach(func(msg []byte) {
			downLink.Send(msg, func() { swi.DeliverControl(msg) })
		})
		swi.SetControlSender(func(msg []byte) {
			upLink.Send(msg, func() { deliver(msg) })
		})
		lt.sws = append(lt.sws, sw)
	}

	// Data plane: Host1 -> SW1, inter-switch links, SWn -> Host2, plus the
	// reverse direction for flood/backward traffic.
	if lt.hostIn, err = mkLink("h1->sw1", cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	if lt.hostOut, err = mkLink(fmt.Sprintf("sw%d->h2", switches), cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
		return nil, err
	}
	// rights[i]: SWi -> SWi+1; lefts[i]: SWi+1 -> SWi.
	rights := make([]*netem.Link, switches-1)
	lefts := make([]*netem.Link, switches-1)
	for i := 0; i < switches-1; i++ {
		if rights[i], err = mkLink(fmt.Sprintf("sw%d->sw%d", i+1, i+2), cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
			return nil, err
		}
		if lefts[i], err = mkLink(fmt.Sprintf("sw%d->sw%d", i+2, i+1), cfg.HostLinkMbps, cfg.HostLinkPropagation); err != nil {
			return nil, err
		}
	}
	for i := 0; i < switches; i++ {
		i := i
		lt.sws[i].SetTransmit(func(port uint16, frame []byte) {
			switch {
			case port == PortHost2 && i == switches-1:
				// Rightmost switch: the frame leaves toward Host2.
				lt.observeExit(frame)
				lt.hostOut.Send(frame, func() { lt.delivered++ })
			case port == PortHost2:
				next := lt.sws[i+1]
				rights[i].Send(frame, func() { next.Ingest(PortHost1, frame) })
			case port == PortHost1 && i == 0:
				// Leftmost switch: back toward Host1 (flood or reverse
				// traffic); counted but not tracked per flow.
			case port == PortHost1:
				prev := lt.sws[i-1]
				lefts[i-1].Send(frame, func() { prev.Ingest(PortHost2, frame) })
			}
		})
	}
	return lt, nil
}

// observeExit records per-flow first/last egress at the final switch.
func (lt *LineTestbed) observeExit(frame []byte) {
	now := lt.kernel.Now()
	f, err := packet.ParseHeaders(frame)
	if err != nil {
		return
	}
	id, ok := lt.index[frameIdent{key: f.Key(), ipid: f.IPID}]
	if !ok {
		return
	}
	tr := lt.flows[id]
	if tr == nil || !tr.haveEnter {
		return
	}
	if !tr.haveLeave {
		tr.leaveFirst = now
		tr.haveLeave = true
	}
	if now > tr.leaveLast {
		tr.leaveLast = now
	}
	tr.leaves++
}

// Switches exposes the simulated switches, leftmost first.
func (lt *LineTestbed) Switches() []*switchd.SimSwitch { return lt.sws }

// Controller exposes the shared controller.
func (lt *LineTestbed) Controller() *controller.SimController { return lt.ctl }

// Capture exposes the per-switch control channels, leftmost first.
func (lt *LineTestbed) Capture() []*capture.ControlChannel { return lt.chans }

// Run replays a schedule from Host1 through the line and reports end-to-end
// metrics. Delay metrics are measured Host1-ingress to Host2-side egress,
// i.e. across all hops.
func (lt *LineTestbed) Run(sched pktgen.Schedule) (*Result, error) {
	if len(sched) == 0 {
		return nil, fmt.Errorf("testbed: empty schedule")
	}
	for _, e := range sched {
		f, err := packet.ParseHeaders(e.Frame)
		if err != nil {
			return nil, fmt.Errorf("testbed: schedule frame unparseable: %w", err)
		}
		lt.index[frameIdent{key: f.Key(), ipid: f.IPID}] = e.FlowID
		if _, ok := lt.flows[e.FlowID]; !ok {
			lt.flows[e.FlowID] = &flowTrack{}
		}
	}
	first := lt.sws[0]
	for _, e := range sched {
		e := e
		lt.kernel.At(e.At, func() {
			lt.hostIn.Send(e.Frame, func() {
				now := lt.kernel.Now()
				if f, err := packet.ParseHeaders(e.Frame); err == nil {
					if id, ok := lt.index[frameIdent{key: f.Key(), ipid: f.IPID}]; ok {
						tr := lt.flows[id]
						if !tr.haveEnter {
							tr.enterFirst = now
							tr.haveEnter = true
						}
					}
				}
				first.Ingest(PortHost1, e.Frame)
			})
		})
	}
	deadline := sched.Duration() + lt.cfg.Drain
	lt.kernel.Drain(deadline)
	return lt.collect(sched), nil
}

func (lt *LineTestbed) collect(sched pktgen.Schedule) *Result {
	now := lt.kernel.Now()
	res := &Result{
		Elapsed:       now,
		SendingWindow: sched.Duration(),
		FramesSent:    len(sched),
	}
	for _, ch := range lt.chans {
		res.CtrlLoadToControllerMbps += ch.ToController.LoadMbps(now)
		res.CtrlLoadToSwitchMbps += ch.ToSwitch.LoadMbps(now)
		pi, _ := ch.ToController.ByType(openflow.TypePacketIn)
		res.PacketIns += pi
	}
	res.ControllerUsagePercent = lt.ctl.CPUUtilizationPercent()
	for _, sw := range lt.sws {
		res.SwitchUsagePercent += sw.CPUUtilizationPercent()
		st := sw.Datapath().Mechanism().Stats(now)
		res.Rerequests += st.Rerequests
		res.BufferFallbacks += st.DroppedNoBuffer
		res.BufferOccupancyMean += sw.Datapath().Mechanism().OccupancyMean(now)
		if m := sw.Datapath().Mechanism().OccupancyMax(); m > res.BufferOccupancyMax {
			res.BufferOccupancyMax = m
		}
		res.ControllerDelay.Merge(sw.ControllerDelay())
	}
	res.SwitchUsagePercent /= float64(len(lt.sws))

	ids := make([]int, 0, len(lt.flows))
	for id := range lt.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr := lt.flows[id]
		if !tr.haveEnter {
			continue
		}
		res.FlowsObserved++
		if tr.haveLeave {
			res.FlowSetupDelay.Observe((tr.leaveFirst - tr.enterFirst).Seconds())
			res.FlowForwardingDelay.Observe((tr.leaveLast - tr.enterFirst).Seconds())
		}
	}
	res.SwitchDelayMean = res.FlowSetupDelay.Mean() - res.ControllerDelay.Mean()
	if res.SwitchDelayMean < 0 {
		res.SwitchDelayMean = 0
	}
	res.FramesDelivered = lt.delivered
	return res
}
