package testbed

import (
	"sort"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/sim"
	"sdnbuffer/internal/topo"
)

// Fabric survivability (DESIGN.md §16): the failure plan becomes ordinary
// kernel events, scheduled per affected domain — one event per (domain,
// transition) in serial and parallel mode alike, so the executed-event
// stream and every result column are byte-identical at any worker count.
// Detection and recovery then run entirely through modeled channels: the
// switch announces port_status over its control link, the mastering shard
// swaps its routing snapshot and flushes, and peers learn the transition
// over the inter-controller sync link wired below.

// ctlKernel reports the kernel executing controller shard j's events.
func (fb *Fabric) ctlKernel(j int) *sim.Kernel {
	if fb.par != nil {
		return fb.par.DomainKernel(fb.ctlDomain(j))
	}
	return fb.kernel
}

// initSurvivability allocates the plan-gated observers: per-switch ingress
// counts for the loop oracle, the delivery timeline for convergence, and
// the visit bound. The bound is 1 + the plan's total edge transitions: the
// flush-and-swap protocol routes every frame by at most one BFS tree per
// table epoch, and each learned transition opens at most one new epoch, so
// a frame legitimately enters a given switch at most that many times — any
// excess is a forwarding loop.
func (fb *Fabric) initSurvivability(plan *netem.FailurePlan) {
	fb.swIngress = make([]map[frameIdent]int, fb.g.NumSwitches())
	for i := range fb.swIngress {
		fb.swIngress[i] = make(map[frameIdent]int)
	}
	fb.deliveryTimes = make([]time.Duration, 0, 256)

	transitions := 2 * len(plan.Links)
	for _, sf := range plan.Switches {
		for p := 1; p <= fb.g.NumPorts(sf.Switch); p++ {
			if peer, ok := fb.g.PeerOf(sf.Switch, uint16(p)); ok && peer.Switch >= 0 {
				transitions += 2
			}
		}
	}
	fb.visitBound = 1 + transitions

	for _, lf := range plan.Links {
		fb.failStarts = append(fb.failStarts, lf.Window.Start)
	}
	for _, sf := range plan.Switches {
		fb.failStarts = append(fb.failStarts, sf.Window.Start)
	}
	sort.Slice(fb.failStarts, func(a, b int) bool { return fb.failStarts[a] < fb.failStarts[b] })
}

// scheduleFailures turns the plan into kernel events. A link failure flips
// the facing port on each endpoint's own domain; a switch failure crashes
// the chassis on its domain and takes every neighbor's facing port down —
// carrier loss is how the fabric detects a dead peer, exactly as hardware
// would. Port state is symmetric: the egress backstop stops new sends at
// the source from w.Start, and onTransmit destroys what the failure caught
// mid-air when it arrives to the dead far end.
func (fb *Fabric) scheduleFailures(plan *netem.FailurePlan) {
	for _, lf := range plan.Links {
		pa, pb, _ := fb.g.EdgePorts(lf.A, lf.B)
		fb.schedulePortWindow(lf.A, pa, lf.Window)
		fb.schedulePortWindow(lf.B, pb, lf.Window)
	}
	for _, sf := range plan.Switches {
		i, w := sf.Switch, sf.Window
		k := fb.swKernel(i)
		k.At(w.Start, func() { fb.sws[i].Crash() }) // loss lands in FailureStats
		k.At(w.End, func() { fb.sws[i].Restart() })
		for p := 1; p <= fb.g.NumPorts(i); p++ {
			peer, ok := fb.g.PeerOf(i, uint16(p))
			if !ok || peer.Switch < 0 {
				continue
			}
			fb.schedulePortWindow(peer.Switch, peer.Port, w)
		}
	}
}

// schedulePortWindow takes one switch port down for the window, on the
// owning switch's domain. SetPortDown is idempotent, so overlapping plan
// entries converge instead of double-notifying.
func (fb *Fabric) schedulePortWindow(sw int, port uint16, w netem.Window) {
	k := fb.swKernel(sw)
	k.At(w.Start, func() { _ = fb.sws[sw].SetPortDown(port, true) })
	k.At(w.End, func() { _ = fb.sws[sw].SetPortDown(port, false) })
}

// wirePeerSync connects the shards' topology views: a first-hand learned
// edge transition reaches every other shard one control-link propagation
// later, as a LearnEdge delivery on that shard's domain. The receiving
// shard's flushes then leave through its normal controller egress
// (InjectDirected), paying the normal CPU and link costs. A crashed
// controller misses the sync — counted with the other control losses —
// and reconverges only through its own switches' port_status reports.
func (fb *Fabric) wirePeerSync() {
	delay := fb.cfg.ControlLinkPropagation
	if delay <= 0 {
		delay = time.Nanosecond
	}
	for j := range fb.apps {
		j := j
		fb.apps[j].SetPeerNotify(func(e topo.EdgeKey, down bool) {
			t := fb.ctlKernel(j).Now() + delay
			for j2 := range fb.apps {
				if j2 == j {
					continue
				}
				j2 := j2
				deliver := func() {
					if fb.ctlDown[j2] {
						fb.ctlDropped.Add(1)
						return
					}
					if dirs := fb.apps[j2].LearnEdge(e, down); len(dirs) > 0 {
						fb.ctls[j2].InjectDirected(dirs)
					}
				}
				if fb.par != nil {
					fb.par.Post(fb.ctlDomain(j), fb.ctlDomain(j2), t, deliver)
				} else {
					fb.kernel.At(t, deliver)
				}
			}
		})
	}
}

// noteIngress feeds the loop oracle: one count per workload frame entering
// a switch, written on that switch's own domain.
func (fb *Fabric) noteIngress(sw int, frame []byte) {
	if fb.swIngress == nil {
		return
	}
	if ident, _, ok := fb.identify(frame); ok {
		fb.swIngress[sw][ident]++
	}
}

// loopFrames sums switch visits beyond the table-epoch bound. Zero means
// no frame ever circulated; a genuine forwarding loop revisits its switches
// once per wire round trip and blows far past the bound.
func (fb *Fabric) loopFrames() int64 {
	var loops int64
	for _, counts := range fb.swIngress {
		for _, n := range counts {
			if n > fb.visitBound {
				loops += int64(n - fb.visitBound)
			}
		}
	}
	return loops
}

// convergenceTime reports the longest delivery gap any failure opened: for
// each failure-window start, the wait until the destination edge saw its
// next frame. Deliveries are recorded in time order on the destination
// domain, so the first at-or-after entry is the reconvergence point.
func (fb *Fabric) convergenceTime() time.Duration {
	var worst time.Duration
	for _, start := range fb.failStarts {
		for _, t := range fb.deliveryTimes {
			if t >= start {
				if gap := t - start; gap > worst {
					worst = gap
				}
				break
			}
		}
	}
	return worst
}
