package testbed

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/capture"
	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/core"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/sim"
	"sdnbuffer/internal/switchd"
	"sdnbuffer/internal/tablemgmt"
	"sdnbuffer/internal/telemetry"
	"sdnbuffer/internal/topo"
)

// FabricOptions shapes a multi-switch fabric instance on top of the shared
// per-switch Config.
type FabricOptions struct {
	// Graph is the built topology (required).
	Graph *topo.Graph
	// Shards is the controller count (default 1). Switch i is mastered by
	// controller i mod Shards; with Shards > 1 its backup is the next shard,
	// and a crash window hands the switch over deterministically.
	Shards int
	// Install selects hop-by-hop or whole-path rule installation.
	Install topo.InstallMode
	// SrcHost / DstHost select the workload's endpoints (defaults 0 and 1).
	SrcHost, DstHost int
	// CrashWindows takes each listed controller down over the given windows:
	// control messages to and from it are lost, and switches it masters fail
	// over to their backup shard for the duration.
	CrashWindows map[int][]netem.Window
	// Failures is the data-plane fault schedule (DESIGN.md §16): link-down
	// windows and switch crash windows, injected as ordinary kernel events on
	// the domains that own the affected state. A nil or empty plan leaves the
	// run byte-identical to one without the field.
	Failures *netem.FailurePlan
	// TrackHops records per-hop ingress/egress times for each flow's first
	// packet (schedule sequence 0), feeding the hop-sum oracle and the hop
	// telemetry spans. Leave it off for scale runs.
	TrackHops bool
	// TableMgmt, when non-nil, enables the controller-side flow-table
	// management layer on every shard's PathForwarder: occupancy tracking
	// from flow_removed / table-full feedback plus destination-prefix
	// wildcard aggregation past the configured threshold.
	TableMgmt *tablemgmt.Config
	// KernelWorkers selects intra-run parallelism: with a value > 1 the
	// fabric shards the simulation into per-switch and per-controller
	// logical processes on a conservative parallel kernel (DESIGN.md §15)
	// and executes event windows on up to that many goroutines. The default
	// (0 or 1) keeps the untouched serial kernel. Results are byte-identical
	// either way — the parallel kernel's tie-breaks replicate serial
	// execution order — and the fabric falls back to the serial kernel when
	// the configuration rules parallelism out (a zero-propagation link
	// leaves no lookahead; ControlLossRate > 0 draws from the kernel RNG on
	// every control send, whose serial global draw order no split stream
	// can reproduce).
	KernelWorkers int
}

func (o FabricOptions) withDefaults() (FabricOptions, error) {
	if o.Graph == nil {
		return o, fmt.Errorf("testbed: fabric needs a topology graph")
	}
	if o.Shards == 0 {
		o.Shards = 1
	}
	if o.Shards < 1 {
		return o, fmt.Errorf("testbed: shard count must be positive, got %d", o.Shards)
	}
	if o.SrcHost == 0 && o.DstHost == 0 {
		o.DstHost = 1
	}
	hosts := len(o.Graph.Hosts())
	if o.SrcHost < 0 || o.SrcHost >= hosts || o.DstHost < 0 || o.DstHost >= hosts {
		return o, fmt.Errorf("testbed: host pair (%d, %d) out of range [0, %d)", o.SrcHost, o.DstHost, hosts)
	}
	if o.SrcHost == o.DstHost {
		return o, fmt.Errorf("testbed: src and dst host are both %d", o.SrcHost)
	}
	for c, ws := range o.CrashWindows {
		if c < 0 || c >= o.Shards {
			return o, fmt.Errorf("testbed: crash window for controller %d, have %d shards", c, o.Shards)
		}
		for _, w := range ws {
			if w.Start < 0 || w.End <= w.Start {
				return o, fmt.Errorf("testbed: controller %d crash window [%v, %v) invalid", c, w.Start, w.End)
			}
		}
	}
	if !o.Failures.Empty() {
		if err := o.Failures.Validate(); err != nil {
			return o, fmt.Errorf("testbed: %w", err)
		}
		n := o.Graph.NumSwitches()
		for _, lf := range o.Failures.Links {
			if lf.A >= n || lf.B >= n {
				return o, fmt.Errorf("testbed: failure plan link %d-%d out of range [0, %d)", lf.A, lf.B, n)
			}
			if _, _, ok := o.Graph.EdgePorts(lf.A, lf.B); !ok {
				return o, fmt.Errorf("testbed: failure plan link %d-%d is not an edge of the topology", lf.A, lf.B)
			}
		}
		for _, sf := range o.Failures.Switches {
			if sf.Switch >= n {
				return o, fmt.Errorf("testbed: failure plan switch %d out of range [0, %d)", sf.Switch, n)
			}
		}
	}
	return o, nil
}

// FabricResult extends the paper's metric set with fabric bookkeeping.
type FabricResult struct {
	Result

	// Switches, Shards and PathHops describe the instance: fabric size,
	// controller count, and the workload path's switch-hop length.
	Switches int
	Shards   int
	PathHops int

	// Handoffs counts switch→backup failovers triggered by crash windows;
	// CtlDropped counts control messages lost to a crashed controller.
	Handoffs   int64
	CtlDropped int64
	// Misdelivered counts workload frames emitted toward a host that is not
	// the workload destination (must stay zero: routing is loop-free and the
	// fabric never floods).
	Misdelivered int64
	// Unroutable counts misses the controllers dropped for lack of a route;
	// PathInstalls counts downstream flow_mods pushed by path installation;
	// RemoteSkips counts path hops skipped because another shard masters
	// them (the sharding dilution the sweep measures).
	Unroutable   uint64
	PathInstalls uint64
	RemoteSkips  uint64

	// Survivability metrics (FabricOptions.Failures; all zero without a
	// plan). ReroutedPaths counts (switch, host) next hops changed by
	// routing-table swaps and Blackholes misses for destinations a failure
	// cut off. The drop ledger names every in-window loss: LinkDownDrops are
	// frames destroyed in flight on a dead wire, TxDownDrops transmissions
	// the egress backstop suppressed toward a down port, DeadPortRefusals
	// installs/releases refused for a dead egress, BufDropsDeadPort buffered
	// packets those refusals destroyed, CrashRxDrops frames arriving at a
	// crashed chassis, CrashCtlDrops control messages ditto, and
	// CrashBufPackets/CrashBufBytes what crashes wiped from the buffers.
	// LoopFrames counts switch revisits beyond the table-epoch bound (must
	// stay zero: the flush-and-swap protocol is loop-free). ConvergenceTime
	// is the longest delivery gap opened by any failure-window start, and
	// LastReorderTime when the last order violation was delivered (zero when
	// none) — transient reordering while old-path and new-path frames race
	// is physical, but it must end with the convergence, and
	// OrderViolations must be zero once the fabric has settled.
	ReroutedPaths    uint64
	Blackholes       uint64
	LinkDownDrops    int64
	TxDownDrops      uint64
	DeadPortRefusals uint64
	BufDropsDeadPort uint64
	CrashRxDrops     uint64
	CrashCtlDrops    uint64
	CrashBufPackets  uint64
	CrashBufBytes    uint64
	LoopFrames       int64
	ConvergenceTime  time.Duration
	LastReorderTime  time.Duration

	// Flow-table management (DESIGN.md §17). The rule ledger sums the
	// datapath lifecycle counters across switches: every install must end up
	// active, removed (by reason), or cleared — LedgerGap is the summed
	// imbalance and must be zero. The aggregation counters sum the per-shard
	// tracker stats (all zero when FabricOptions.TableMgmt is nil).
	RuleInstalls     uint64
	RuleReplacements uint64
	RuleRejects      uint64
	RulesCleared     uint64
	RulesActive      uint64
	RemovedIdle      uint64
	RemovedHard      uint64
	RemovedDelete    uint64
	RemovedEvict     uint64
	LedgerGap        int64
	Aggregations     uint64
	RulesCompressed  uint64
	Deaggregations   uint64
	CoveredSkips     uint64
	TableFullErrors  uint64
	FlowRemovedSeen  uint64
}

// hopTrack is the per-hop time record for one tracked frame.
type hopTrack struct {
	enters []time.Duration
	exits  []time.Duration
	seenIn []bool
	seenEx []bool
}

// Fabric is a multi-switch platform instance: the Graph realized as
// simulated switches and links, driven by a sharded control plane running
// the PathForwarder application.
type Fabric struct {
	cfg    Config
	opts   FabricOptions
	g      *topo.Graph
	kernel *sim.Kernel    // serial mode only (nil under the parallel kernel)
	par    *sim.ParKernel // parallel mode only (domain i = switch i, domain NumSwitches+j = controller j)
	runner sim.Runner     // whichever of the two drives this fabric
	sws    []*switchd.SimSwitch
	ctls   []*controller.SimController
	apps   []*topo.PathForwarder
	chans  []*capture.ControlChannel

	dataLinks [][]*netem.Link // [switch][port-1]; nil entries are host ports
	hostUp    []*netem.Link   // host -> attachment switch
	hostDown  []*netem.Link   // attachment switch -> host

	// ctlDown[j] is owned by controller j's domain; useBackup[i] by switch
	// i's domain (crash toggles are replicated per domain in parallel mode).
	// The three counters below are incremented from more than one domain in
	// the same window, so they are atomic; everything else in this struct
	// is single-domain-owned or read only after the run.
	ctlDown    []bool // controller currently crashed
	useBackup  []bool // switch currently failed over to its backup shard
	handoffs   atomic.Int64
	ctlDropped atomic.Int64

	path       []topo.Hop  // the src→dst switch chain
	pathIndex  map[int]int // switch -> position on path
	hops       map[frameIdent]*hopTrack
	firstIdent map[int]frameIdent // flow -> its first packet's identity

	index        map[frameIdent]int
	flows        map[int]*flowTrack
	emitted      map[frameIdent]int
	delivered    int64
	misdelivered atomic.Int64
	dups         int64
	misorders    int64

	// Survivability state (fabricfail.go), allocated only when the plan is
	// non-empty. linkDownDrops is written from any switch domain (atomic);
	// swIngress[i] is owned by switch i's domain; deliveryTimes and
	// failStarts by the destination edge's domain / read-only.
	linkDownDrops atomic.Int64
	swIngress     []map[frameIdent]int
	visitBound    int
	deliveryTimes []time.Duration
	failStarts    []time.Duration
	lastReorderAt time.Duration

	tel       *telemetry.Recorder
	telShards []*telemetry.Recorder // per-domain recorders, parallel mode only
}

// ctlDomain maps controller shard j to its parallel-kernel domain (switch i
// lives on domain i).
func (fb *Fabric) ctlDomain(j int) int { return fb.g.NumSwitches() + j }

// swKernel reports the kernel executing switch i's events.
func (fb *Fabric) swKernel(i int) *sim.Kernel {
	if fb.par != nil {
		return fb.par.DomainKernel(i)
	}
	return fb.kernel
}

// telSw reports the recorder switch i's domain feeds (the shared recorder in
// serial mode).
func (fb *Fabric) telSw(i int) *telemetry.Recorder {
	if fb.telShards != nil {
		return fb.telShards[i]
	}
	return fb.tel
}

// NewFabric assembles a fabric. The per-switch Config carries the same
// resource models as the single-switch platform; a fabric of one line switch
// is bit-identical to the Fig. 1 testbed. Chaos plans and the authority
// proxy are single-switch features — fabric fault injection goes through
// FabricOptions.CrashWindows.
func NewFabric(cfg Config, opts FabricOptions) (*Fabric, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil || cfg.UseAuthorityProxy {
		return nil, fmt.Errorf("testbed: fabric does not support chaos plans or the authority proxy")
	}
	opts, err = opts.withDefaults()
	if err != nil {
		return nil, err
	}
	g := opts.Graph
	if cfg.Switch.CPUCores == 0 {
		dp := cfg.Switch.Datapath
		cfg.Switch = switchd.DefaultSimConfig()
		cfg.Switch.Datapath = dp
	}
	if cfg.Controller.CPUCores == 0 {
		cfg.Controller = controller.DefaultSimConfig()
	}

	fb := &Fabric{
		cfg:       cfg,
		opts:      opts,
		g:         g,
		ctlDown:   make([]bool, opts.Shards),
		useBackup: make([]bool, g.NumSwitches()),
		index:     make(map[frameIdent]int),
		flows:     make(map[int]*flowTrack),
		emitted:   make(map[frameIdent]int),
	}

	// Kernel selection (DESIGN.md §15). The lookahead is the minimum
	// propagation delay of any cross-domain link: control links always cross
	// (switch domain ↔ controller domain), and with more than one switch the
	// inter-switch data links (host-link parameters) cross too.
	lookahead := cfg.ControlLinkPropagation
	if g.NumSwitches() > 1 && cfg.HostLinkPropagation < lookahead {
		lookahead = cfg.HostLinkPropagation
	}
	var par *sim.ParKernel
	var k *sim.Kernel
	if opts.KernelWorkers > 1 && lookahead > 0 && cfg.ControlLossRate == 0 {
		par, err = sim.NewPar(cfg.Seed, g.NumSwitches()+opts.Shards, lookahead, opts.KernelWorkers)
		if err != nil {
			return nil, fmt.Errorf("testbed: parallel kernel: %w", err)
		}
		fb.par = par
		fb.runner = par
	} else {
		k = sim.New(cfg.Seed)
		fb.kernel = k
		fb.runner = k
	}
	// swk/ctlk select the kernel a component schedules on; markRemote turns
	// a link crossing domains into a mailbox edge of the parallel kernel.
	swk := func(i int) *sim.Kernel {
		if par != nil {
			return par.DomainKernel(i)
		}
		return k
	}
	ctlk := func(j int) *sim.Kernel {
		if par != nil {
			return par.DomainKernel(g.NumSwitches() + j)
		}
		return k
	}
	markRemote := func(l *netem.Link, srcDom, dstDom int) {
		if par != nil && srcDom != dstDom {
			l.SetRemote(func(t time.Duration, fn func()) { par.Post(srcDom, dstDom, t, fn) })
		}
	}

	if cfg.Telemetry != nil {
		fb.tel = telemetry.NewRecorder(*cfg.Telemetry)
		telemetry.SetEnabled(true)
		if par != nil {
			// Per-LP recorders keep emission lock-free; the total ring
			// budget is split across domains so a big fabric does not
			// multiply the configured footprint.
			capa := cfg.Telemetry.SpanCapacity
			if capa < 1 {
				capa = telemetry.DefaultSpanCapacity
			}
			per := capa / par.Domains()
			if per < 1024 {
				per = 1024
			}
			shCfg := *cfg.Telemetry
			shCfg.SpanCapacity = per
			fb.telShards = make([]*telemetry.Recorder, par.Domains())
			for d := range fb.telShards {
				fb.telShards[d] = telemetry.NewRecorder(shCfg)
			}
		}
	}
	fb.path, err = g.HostPath(opts.SrcHost, opts.DstHost)
	if err != nil {
		return nil, fmt.Errorf("testbed: fabric workload path: %w", err)
	}
	fb.pathIndex = make(map[int]int, len(fb.path))
	for pos, hop := range fb.path {
		fb.pathIndex[hop.Switch] = pos
	}
	if opts.TrackHops {
		fb.hops = make(map[frameIdent]*hopTrack)
		fb.firstIdent = make(map[int]frameIdent)
	}

	mkLink := func(on *sim.Kernel, name string, mbps float64, prop time.Duration) (*netem.Link, error) {
		l, err := netem.NewLink(on, name, mbps, prop)
		if err != nil {
			return nil, fmt.Errorf("testbed: link %s: %w", name, err)
		}
		return l, nil
	}

	// Control plane: one PathForwarder per shard over the shared graph. Each
	// controller lives on its own domain.
	for j := 0; j < opts.Shards; j++ {
		app := topo.NewPathForwarder(g, opts.Install, cfg.Forwarder)
		if opts.TableMgmt != nil {
			if err := app.EnableTableMgmt(*opts.TableMgmt); err != nil {
				return nil, fmt.Errorf("testbed: controller %d: %w", j, err)
			}
		}
		ctl, err := controller.NewSimController(ctlk(j), cfg.Controller, app)
		if err != nil {
			return nil, fmt.Errorf("testbed: building controller %d: %w", j, err)
		}
		if fb.tel != nil {
			if fb.telShards != nil {
				ctl.SetTelemetry(fb.telShards[g.NumSwitches()+j])
			} else {
				ctl.SetTelemetry(fb.tel)
			}
		}
		fb.apps = append(fb.apps, app)
		fb.ctls = append(fb.ctls, ctl)
	}

	// attach wires switch i to controller j and returns the uplink entry
	// point (what the switch's control sender calls for this role). A
	// crashed controller loses messages in both directions.
	attach := func(i, j int, sw *switchd.SimSwitch, role string, standby bool) (func(msg []byte), error) {
		// The uplink's send side (queue, counters) belongs to switch i's
		// domain and its deliveries land on controller j's; the downlink is
		// the mirror image. Both ctlDown guards execute on the controller's
		// domain — at uplink arrival and at downlink send — which is what
		// lets ctlDown stay a plain bool.
		up, err := mkLink(swk(i), fmt.Sprintf("sw%d->ctl%d(%s)", i, j, role), cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		markRemote(up, i, g.NumSwitches()+j)
		down, err := mkLink(ctlk(j), fmt.Sprintf("ctl%d->sw%d(%s)", j, i, role), cfg.ControlLinkMbps, cfg.ControlLinkPropagation)
		if err != nil {
			return nil, err
		}
		markRemote(down, g.NumSwitches()+j, i)
		if cfg.ControlLossRate > 0 {
			if err := up.SetLossRate(cfg.ControlLossRate); err != nil {
				return nil, err
			}
			if err := down.SetLossRate(cfg.ControlLossRate); err != nil {
				return nil, err
			}
		}
		fb.chans = append(fb.chans, capture.NewControlChannel(up, down))
		conn, deliver := fb.ctls[j].AttachConn(func(msg []byte) {
			if fb.ctlDown[j] {
				fb.ctlDropped.Add(1)
				return
			}
			down.Send(msg, func() { sw.DeliverControl(msg) })
		})
		if standby {
			fb.apps[j].RegisterStandbyConn(conn, i)
		} else {
			fb.apps[j].RegisterConn(conn, i)
		}
		return func(msg []byte) {
			up.Send(msg, func() {
				if fb.ctlDown[j] {
					fb.ctlDropped.Add(1)
					return
				}
				deliver(msg)
			})
		}, nil
	}

	// Switches, each wired to its master shard (and backup, when sharded).
	for i := 0; i < g.NumSwitches(); i++ {
		swCfg := cfg.Switch
		swCfg.Datapath.DatapathID = uint64(i + 1)
		swCfg.Datapath.NumPorts = g.NumPorts(i)
		sw, err := switchd.NewSimSwitch(swk(i), swCfg)
		if err != nil {
			return nil, fmt.Errorf("testbed: building switch %d: %w", i, err)
		}
		if fb.tel != nil {
			sw.SetTelemetry(fb.telSw(i))
		}
		master := i % opts.Shards
		sendMaster, err := attach(i, master, sw, "m", false)
		if err != nil {
			return nil, err
		}
		sendBackup := sendMaster
		if opts.Shards > 1 {
			backup := (master + 1) % opts.Shards
			if sendBackup, err = attach(i, backup, sw, "b", true); err != nil {
				return nil, err
			}
		}
		i := i
		sw.SetControlSender(func(msg []byte) {
			if fb.useBackup[i] {
				sendBackup(msg)
				return
			}
			sendMaster(msg)
		})
		fb.sws = append(fb.sws, sw)
	}

	// Crash windows: deterministic handoff at the window edges. The serial
	// kernel toggles everything in one event per edge; the parallel kernel
	// replicates each edge onto every domain owning a piece of the state —
	// one counted event on the controller's domain (keeping Executed()
	// byte-identical) plus uncounted shadow events flipping each mastered
	// switch's failover flag on that switch's own domain.
	for j := 0; j < opts.Shards; j++ {
		for _, w := range opts.CrashWindows[j] {
			j, w := j, w
			if par != nil {
				ctlk(j).At(w.Start, func() { fb.ctlDown[j] = true })
				ctlk(j).At(w.End, func() { fb.ctlDown[j] = false })
				if opts.Shards > 1 {
					for i := 0; i < g.NumSwitches(); i++ {
						if i%opts.Shards != j {
							continue
						}
						i := i
						par.ShadowAt(i, w.Start, func() {
							if !fb.useBackup[i] {
								fb.useBackup[i] = true
								fb.handoffs.Add(1)
							}
						})
						par.ShadowAt(i, w.End, func() { fb.useBackup[i] = false })
					}
				}
				continue
			}
			k.At(w.Start, func() {
				fb.ctlDown[j] = true
				if opts.Shards > 1 {
					for i := range fb.sws {
						if i%opts.Shards == j && !fb.useBackup[i] {
							fb.useBackup[i] = true
							fb.handoffs.Add(1)
						}
					}
				}
			})
			k.At(w.End, func() {
				fb.ctlDown[j] = false
				for i := range fb.sws {
					if i%opts.Shards == j {
						fb.useBackup[i] = false
					}
				}
			})
		}
	}

	// Data-plane failure plan: translated into kernel events on the domains
	// owning the affected state, identically in serial and parallel mode
	// (fabricfail.go). Shards learn each other's topology transitions over a
	// modeled sync link; wiring the hook without a plan changes nothing — it
	// only fires on first-hand learns, which need a port_status.
	if !opts.Failures.Empty() {
		fb.initSurvivability(opts.Failures)
		fb.scheduleFailures(opts.Failures)
	}
	if opts.Shards > 1 {
		fb.wirePeerSync()
	}

	// Data plane: one link per directed switch-switch edge plus the host
	// access links, all created in switch/port order for determinism.
	fb.dataLinks = make([][]*netem.Link, g.NumSwitches())
	for i := 0; i < g.NumSwitches(); i++ {
		fb.dataLinks[i] = make([]*netem.Link, g.NumPorts(i))
		for p := 1; p <= g.NumPorts(i); p++ {
			peer, _ := g.PeerOf(i, uint16(p))
			if peer.Switch < 0 {
				continue
			}
			l, err := mkLink(swk(i), fmt.Sprintf("sw%d:%d->sw%d", i, p, peer.Switch), cfg.HostLinkMbps, cfg.HostLinkPropagation)
			if err != nil {
				return nil, err
			}
			markRemote(l, i, peer.Switch)
			fb.dataLinks[i][p-1] = l
		}
	}
	for hIdx, h := range g.Hosts() {
		// Host access links never cross domains: a host lives on its
		// attachment switch's domain (injections are scheduled there).
		up, err := mkLink(swk(h.Switch), fmt.Sprintf("h%d->sw%d", hIdx, h.Switch), cfg.HostLinkMbps, cfg.HostLinkPropagation)
		if err != nil {
			return nil, err
		}
		down, err := mkLink(swk(h.Switch), fmt.Sprintf("sw%d->h%d", h.Switch, hIdx), cfg.HostLinkMbps, cfg.HostLinkPropagation)
		if err != nil {
			return nil, err
		}
		fb.hostUp = append(fb.hostUp, up)
		fb.hostDown = append(fb.hostDown, down)
	}
	for i := range fb.sws {
		i := i
		fb.sws[i].SetTransmit(func(port uint16, frame []byte) { fb.onTransmit(i, port, frame) })
	}
	return fb, nil
}

// onTransmit routes every frame leaving switch i onto the proper egress
// link: the next path switch, a host, or (misrouted) anywhere else.
func (fb *Fabric) onTransmit(i int, port uint16, frame []byte) {
	peer, ok := fb.g.PeerOf(i, port)
	if !ok {
		return
	}
	if peer.Host >= 0 {
		if peer.Host == fb.opts.DstHost {
			fb.observeExit(i, frame)
			fb.hostDown[peer.Host].Send(frame, func() {
				fb.delivered++
				if fb.deliveryTimes != nil {
					fb.deliveryTimes = append(fb.deliveryTimes, fb.swKernel(i).Now())
				}
			})
			return
		}
		// A workload frame leaving toward any other host took a wrong turn.
		if _, _, ok := fb.identify(frame); ok {
			fb.misdelivered.Add(1)
		}
		fb.hostDown[peer.Host].Send(frame, nil)
		return
	}
	fb.hopExit(i, frame)
	next, nextPort := peer.Switch, peer.Port
	fb.dataLinks[i][port-1].Send(frame, func() {
		// A frame in flight when the wire died arrives to a down port and is
		// destroyed there — the egress backstop stops new sends at the source,
		// this accounts for what the failure caught mid-air.
		if fb.sws[next].Datapath().PortDown(nextPort) {
			fb.linkDownDrops.Add(1)
			return
		}
		fb.noteIngress(next, frame)
		fb.hopEnter(next, frame)
		fb.sws[next].Ingest(nextPort, frame)
	})
}

// identify maps a frame to its workload flow id.
func (fb *Fabric) identify(frame []byte) (frameIdent, int, bool) {
	f, err := packet.ParseHeaders(frame)
	if err != nil {
		return frameIdent{}, 0, false
	}
	ident := frameIdent{key: f.Key(), ipid: f.IPID}
	id, ok := fb.index[ident]
	return ident, id, ok
}

// observeExit is the exactly-once-in-order oracle at the destination edge,
// identical to the single-switch platform's transmit tap.
func (fb *Fabric) observeExit(sw int, frame []byte) {
	now := fb.swKernel(sw).Now()
	ident, id, ok := fb.identify(frame)
	if !ok {
		return
	}
	fb.hopExit(sw, frame)
	fb.emitted[ident]++
	if fb.emitted[ident] > 1 {
		fb.dups++
	}
	tr := fb.flows[id]
	if tr == nil || !tr.haveEnter {
		return
	}
	if seq := int(ident.ipid); seq < tr.lastSeq {
		fb.misorders++
		fb.lastReorderAt = now
	} else {
		tr.lastSeq = seq
	}
	if !tr.haveLeave {
		tr.leaveFirst = now
		tr.haveLeave = true
		if fb.tel != nil {
			fb.telSw(sw).Span(telemetry.KindFlowSetup, tr.enterFirst, now,
				telemetry.HashKey(ident.key), uint32(id), uint32(len(frame)))
		}
	}
	if now > tr.leaveLast {
		tr.leaveLast = now
	}
	tr.leaves++
}

// hopEnter records a tracked frame's ingress time at a path switch and
// emits the inter-hop link span.
func (fb *Fabric) hopEnter(sw int, frame []byte) {
	if fb.hops == nil {
		return
	}
	pos, ok := fb.pathIndex[sw]
	if !ok {
		return
	}
	ident, _, ok := fb.identify(frame)
	if !ok {
		return
	}
	ht := fb.hops[ident]
	if ht == nil || ht.seenIn[pos] {
		return
	}
	now := fb.swKernel(sw).Now()
	ht.enters[pos] = now
	ht.seenIn[pos] = true
	// The upstream hop's exit record was written on the previous switch's
	// domain at least one link propagation — one lookahead — earlier, so the
	// barrier between windows ordered it before this read.
	if fb.tel != nil && pos > 0 && ht.seenEx[pos-1] {
		fb.telSw(sw).Span(telemetry.KindHopLink, ht.exits[pos-1], now,
			telemetry.HashKey(ident.key), uint32(pos-1), uint32(len(frame)))
	}
}

// hopExit records a tracked frame's egress time at a path switch and emits
// the hop-residency span.
func (fb *Fabric) hopExit(sw int, frame []byte) {
	if fb.hops == nil {
		return
	}
	pos, ok := fb.pathIndex[sw]
	if !ok {
		return
	}
	ident, _, ok := fb.identify(frame)
	if !ok {
		return
	}
	ht := fb.hops[ident]
	if ht == nil || ht.seenEx[pos] {
		return
	}
	now := fb.swKernel(sw).Now()
	ht.exits[pos] = now
	ht.seenEx[pos] = true
	if fb.tel != nil && ht.seenIn[pos] {
		fb.telSw(sw).Span(telemetry.KindHopResidency, ht.enters[pos], now,
			telemetry.HashKey(ident.key), uint32(pos), uint32(len(frame)))
	}
}

// Kernel exposes the serial event kernel (nil when the fabric runs on the
// parallel kernel — see FabricOptions.KernelWorkers and ParKernel).
func (fb *Fabric) Kernel() *sim.Kernel { return fb.kernel }

// ParKernel exposes the parallel kernel (nil on the serial path).
func (fb *Fabric) ParKernel() *sim.ParKernel { return fb.par }

// Runner exposes whichever kernel drives this fabric.
func (fb *Fabric) Runner() sim.Runner { return fb.runner }

// Graph exposes the topology.
func (fb *Fabric) Graph() *topo.Graph { return fb.g }

// Switches exposes the simulated switches in topology order.
func (fb *Fabric) Switches() []*switchd.SimSwitch { return fb.sws }

// Controllers exposes the controller shards.
func (fb *Fabric) Controllers() []*controller.SimController { return fb.ctls }

// Forwarders exposes the per-shard PathForwarder applications.
func (fb *Fabric) Forwarders() []*topo.PathForwarder { return fb.apps }

// Capture exposes every control channel in wiring order (per switch: master,
// then backup when sharded).
func (fb *Fabric) Capture() []*capture.ControlChannel { return fb.chans }

// Telemetry exposes the recorder (nil unless Config.Telemetry was set).
func (fb *Fabric) Telemetry() *telemetry.Recorder { return fb.tel }

// Path exposes the workload's src→dst switch chain.
func (fb *Fabric) Path() []topo.Hop { return fb.path }

// HopRecord reports the recorded per-hop ingress and egress times of a
// flow's first packet (requires TrackHops). The slices index path positions;
// ok is false until the packet traversed the whole path.
func (fb *Fabric) HopRecord(flowID int) (enters, exits []time.Duration, ok bool) {
	ident, ok := fb.firstIdent[flowID]
	if !ok {
		return nil, nil, false
	}
	ht := fb.hops[ident]
	if ht == nil {
		return nil, nil, false
	}
	for pos := range fb.path {
		if !ht.seenIn[pos] || !ht.seenEx[pos] {
			return nil, nil, false
		}
	}
	return ht.enters, ht.exits, true
}

// Run replays a schedule from the source host and runs the fabric to
// quiescence. Delay metrics are measured source-edge ingress to
// destination-edge egress, i.e. across all hops.
func (fb *Fabric) Run(sched pktgen.Schedule) (*FabricResult, error) {
	if len(sched) == 0 {
		return nil, fmt.Errorf("testbed: empty schedule")
	}
	for _, e := range sched {
		f, err := packet.ParseHeaders(e.Frame)
		if err != nil {
			return nil, fmt.Errorf("testbed: schedule frame unparseable: %w", err)
		}
		ident := frameIdent{key: f.Key(), ipid: f.IPID}
		fb.index[ident] = e.FlowID
		if _, ok := fb.flows[e.FlowID]; !ok {
			fb.flows[e.FlowID] = &flowTrack{lastSeq: -1}
		}
		if fb.hops != nil && e.Seq == 0 {
			if _, dup := fb.firstIdent[e.FlowID]; !dup {
				fb.firstIdent[e.FlowID] = ident
				n := len(fb.path)
				fb.hops[ident] = &hopTrack{
					enters: make([]time.Duration, n),
					exits:  make([]time.Duration, n),
					seenIn: make([]bool, n),
					seenEx: make([]bool, n),
				}
			}
		}
	}
	src := fb.g.Hosts()[fb.opts.SrcHost]
	srck := fb.swKernel(src.Switch) // injections live on the source edge's domain
	for _, e := range sched {
		e := e
		srck.At(e.At, func() {
			fb.hostUp[fb.opts.SrcHost].Send(e.Frame, func() {
				now := srck.Now()
				if _, id, ok := fb.identify(e.Frame); ok {
					tr := fb.flows[id]
					if !tr.haveEnter {
						tr.enterFirst = now
						tr.haveEnter = true
					}
				}
				fb.noteIngress(src.Switch, e.Frame)
				fb.hopEnter(src.Switch, e.Frame)
				fb.sws[src.Switch].Ingest(src.Port, e.Frame)
			})
		})
	}
	deadline := sched.Duration() + fb.cfg.Drain
	fb.runner.Drain(deadline)
	if fb.telShards != nil {
		fb.tel.MergeShards(fb.runner.Now(), fb.telShards)
	} else {
		fb.tel.Finish(fb.runner.Now()) // nil-safe
	}
	return fb.collect(sched), nil
}

func (fb *Fabric) collect(sched pktgen.Schedule) *FabricResult {
	now := fb.runner.Now()
	res := &FabricResult{
		Switches: fb.g.NumSwitches(),
		Shards:   fb.opts.Shards,
		PathHops: len(fb.path),
	}
	res.Elapsed = now
	res.SendingWindow = sched.Duration()
	res.FramesSent = len(sched)

	for _, ch := range fb.chans {
		res.CtrlLoadToControllerMbps += ch.ToController.LoadMbps(now)
		res.CtrlLoadToSwitchMbps += ch.ToSwitch.LoadMbps(now)
		pi, _ := ch.ToController.ByType(openflow.TypePacketIn)
		fm, _ := ch.ToSwitch.ByType(openflow.TypeFlowMod)
		po, _ := ch.ToSwitch.ByType(openflow.TypePacketOut)
		res.PacketIns += pi
		res.FlowMods += fm
		res.PacketOuts += po
	}
	for _, ctl := range fb.ctls {
		res.ControllerUsagePercent += ctl.CPUUtilizationPercent()
		shed, shedBytes := ctl.AdmissionStats()
		res.CtrlShedPacketIns += shed
		res.CtrlShedBytes += shedBytes
	}
	res.ControllerUsagePercent /= float64(len(fb.ctls))
	for _, app := range fb.apps {
		_, installs, skips, unroutable := app.Stats()
		res.PathInstalls += installs
		res.RemoteSkips += skips
		res.Unroutable += unroutable
		rerouted, blackholes := app.RecoveryStats()
		res.ReroutedPaths += rerouted
		res.Blackholes += blackholes
		if ts, ok := app.TableMgmt(); ok {
			res.Aggregations += ts.Aggregations
			res.RulesCompressed += ts.RulesCompressed
			res.Deaggregations += ts.Deaggregations
			res.CoveredSkips += ts.CoveredSkips
			res.TableFullErrors += ts.TableFullErrors
			res.FlowRemovedSeen += ts.FlowRemovedSeen
		}
	}
	for _, sw := range fb.sws {
		res.SwitchUsagePercent += sw.CPUUtilizationPercent()
		mech := sw.Datapath().Mechanism()
		st := mech.Stats(now)
		res.Rerequests += st.Rerequests
		res.BufferFallbacks += st.DroppedNoBuffer
		res.Giveups += st.Giveups
		res.BufferOccupancyMean += mech.OccupancyMean(now)
		if m := mech.OccupancyMax(); m > res.BufferOccupancyMax {
			res.BufferOccupancyMax = m
		}
		if pm, ok := mech.(interface{ Pool() *core.Pool }); ok {
			res.BufferUnitsLeaked += pm.Pool().Live()
			res.BufferBytesHighWater += uint64(pm.Pool().BytesHighWater())
			res.BufferRejectedBytes += pm.Pool().RejectedBytes()
			res.BufferBytesLeaked += pm.Pool().BytesInUse()
		}
		drops, dropBytes := sw.PacerDrops()
		res.PacerDrops += drops
		res.PacerDropBytes += dropBytes
		sf, cdm := sw.Datapath().FailStats()
		res.StandaloneForwards += sf
		res.ControlDownMisses += cdm
		res.ControllerDelay.Merge(sw.ControllerDelay())
		refusals, bufDrops, txDrops, crashLoss := sw.Datapath().FailureStats()
		res.DeadPortRefusals += refusals
		res.BufDropsDeadPort += bufDrops
		res.TxDownDrops += txDrops
		res.CrashBufPackets += uint64(crashLoss.Packets)
		res.CrashBufBytes += uint64(crashLoss.Bytes)
		rxDrops, ctlDrops := sw.CrashDrops()
		res.CrashRxDrops += rxDrops
		res.CrashCtlDrops += ctlDrops
		tm := sw.Datapath().TableMgmt()
		res.RuleInstalls += tm.Installs
		res.RuleReplacements += tm.Replacements
		res.RuleRejects += tm.Rejects
		res.RulesCleared += tm.Cleared
		res.RulesActive += uint64(tm.Active)
		res.RemovedIdle += tm.RemovedIdle
		res.RemovedHard += tm.RemovedHard
		res.RemovedDelete += tm.RemovedDelete
		res.RemovedEvict += tm.RemovedEvict
		res.LedgerGap += tm.LedgerGap()
	}
	res.SwitchUsagePercent /= float64(len(fb.sws))
	res.LinkDownDrops = fb.linkDownDrops.Load()
	res.LoopFrames = fb.loopFrames()
	res.ConvergenceTime = fb.convergenceTime()
	res.LastReorderTime = fb.lastReorderAt

	ids := make([]int, 0, len(fb.flows))
	for id := range fb.flows {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		tr := fb.flows[id]
		if !tr.haveEnter {
			continue
		}
		res.FlowsObserved++
		if tr.haveLeave {
			res.FlowSetupDelay.Observe((tr.leaveFirst - tr.enterFirst).Seconds())
			res.FlowForwardingDelay.Observe((tr.leaveLast - tr.enterFirst).Seconds())
		}
	}
	res.SwitchDelayMean = res.FlowSetupDelay.Mean() - res.ControllerDelay.Mean()
	if res.SwitchDelayMean < 0 {
		res.SwitchDelayMean = 0
	}
	res.FramesDelivered = fb.delivered
	res.DupEmissions = fb.dups
	res.OrderViolations = fb.misorders
	res.Handoffs = fb.handoffs.Load()
	res.CtlDropped = fb.ctlDropped.Load()
	res.Misdelivered = fb.misdelivered.Load()
	return res
}
