package testbed

import (
	"os"
	"testing"
	"time"

	"sdnbuffer/internal/chaos"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/switchd"
)

// chaosConfig builds a flow-granularity testbed with combined flow_mods (the
// atomic install+release keeps buffer drains exactly-once even when control
// messages duplicate) under the given fault plan.
func chaosConfig(seed int64, plan *chaos.Plan) Config {
	cfg := DefaultConfig(openflow.FlowBufferConfig{
		Granularity:        openflow.GranularityFlow,
		RerequestTimeoutMs: 50,
	}, 256)
	cfg.Seed = seed
	cfg.Forwarder.CombinedFlowMod = true
	cfg.Chaos = plan
	return cfg
}

func runChaos(t *testing.T, cfg Config) *Result {
	t.Helper()
	tb, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pcfg := pktgenConfig(50)
	pcfg.Seed = cfg.Seed
	sched, err := pktgen.InterleavedBursts(pcfg, 30, 10, 5)
	if err != nil {
		t.Fatalf("InterleavedBursts: %v", err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestChaosLossExactlyOnceInOrder is the satellite property test: replaying
// seeded impairment schedules (loss, reorder, duplication on both control
// directions), every flow's queue must drain exactly once, in arrival order,
// with no buffer unit left behind.
func TestChaosLossExactlyOnceInOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		imp := netem.Impairment{
			LossRate:       0.05,
			ReorderProb:    0.05,
			ReorderDelay:   2 * time.Millisecond,
			DuplicateProb:  0.05,
			DuplicateDelay: time.Millisecond,
		}
		plan := &chaos.Plan{Name: "loss-reorder-dup", ControlUp: imp, ControlDown: imp}
		res := runChaos(t, chaosConfig(seed, plan))
		if res.FramesDelivered != int64(res.FramesSent) {
			t.Errorf("seed %d: delivered %d of %d", seed, res.FramesDelivered, res.FramesSent)
		}
		if res.DupEmissions != 0 {
			t.Errorf("seed %d: %d duplicate emissions", seed, res.DupEmissions)
		}
		if res.OrderViolations != 0 {
			t.Errorf("seed %d: %d order violations", seed, res.OrderViolations)
		}
		if res.BufferUnitsLeaked != 0 {
			t.Errorf("seed %d: %d buffer units leaked", seed, res.BufferUnitsLeaked)
		}
		if res.Rerequests == 0 {
			t.Errorf("seed %d: no re-requests under 5%% loss — impairment not applied?", seed)
		}
	}
}

// TestChaosOutageFailSecureRecovers: a mid-workload control blackout under
// fail-secure must not lose a single frame — misses keep buffering, and the
// re-request timer recovers everything once the channel returns.
func TestChaosOutageFailSecureRecovers(t *testing.T) {
	plan := chaos.Outage(20*time.Millisecond, 60*time.Millisecond)
	res := runChaos(t, chaosConfig(1, plan))
	if res.FramesDelivered != int64(res.FramesSent) {
		t.Errorf("delivered %d of %d across the outage", res.FramesDelivered, res.FramesSent)
	}
	if res.ControlDownMisses == 0 {
		t.Error("no misses observed while control was down — outage not applied?")
	}
	if res.StandaloneForwards != 0 {
		t.Errorf("fail-secure datapath standalone-forwarded %d frames", res.StandaloneForwards)
	}
	if res.BufferUnitsLeaked != 0 {
		t.Errorf("%d buffer units leaked", res.BufferUnitsLeaked)
	}
	if res.DupEmissions != 0 || res.OrderViolations != 0 {
		t.Errorf("dups=%d misorders=%d after outage recovery", res.DupEmissions, res.OrderViolations)
	}
}

// TestChaosOutageFailStandaloneBeatsFailSecure: with buffering disabled, a
// blackout drops every in-flight miss under fail-secure, while the
// fail-standalone learning switch keeps traffic moving.
func TestChaosOutageFailStandaloneBeatsFailSecure(t *testing.T) {
	run := func(mode switchd.FailMode) *Result {
		cfg := DefaultConfig(openflow.FlowBufferConfig{Granularity: openflow.GranularityNone}, 256)
		cfg.Seed = 1
		cfg.Switch.Datapath.FailMode = mode
		cfg.Chaos = chaos.Outage(20*time.Millisecond, 60*time.Millisecond)
		return runChaos(t, cfg)
	}
	secure := run(switchd.FailSecure)
	standalone := run(switchd.FailStandalone)
	if secure.FramesDelivered >= int64(secure.FramesSent) {
		t.Errorf("fail-secure no-buffer delivered %d of %d — blackout had no effect?",
			secure.FramesDelivered, secure.FramesSent)
	}
	if standalone.StandaloneForwards == 0 {
		t.Error("fail-standalone forwarded nothing during the blackout")
	}
	if standalone.FramesDelivered <= secure.FramesDelivered {
		t.Errorf("standalone delivered %d, secure %d — degraded forwarding should win",
			standalone.FramesDelivered, secure.FramesDelivered)
	}
}

// TestChaosControllerStallReplaysInOrder: a controller stall window parks
// arriving requests and replays them at window end; nothing is lost,
// duplicated or reordered on the data path.
func TestChaosControllerStallReplaysInOrder(t *testing.T) {
	plan := &chaos.Plan{
		Name:       "stall",
		Controller: chaos.ControllerFaults{Stalls: []netem.Window{{Start: 10 * time.Millisecond, End: 40 * time.Millisecond}}},
	}
	res := runChaos(t, chaosConfig(1, plan))
	if res.CtrlStalled == 0 {
		t.Error("no messages stalled — injector not wired?")
	}
	if res.FramesDelivered != int64(res.FramesSent) {
		t.Errorf("delivered %d of %d across the stall", res.FramesDelivered, res.FramesSent)
	}
	if res.DupEmissions != 0 || res.OrderViolations != 0 || res.BufferUnitsLeaked != 0 {
		t.Errorf("dups=%d misorders=%d leaked=%d", res.DupEmissions, res.OrderViolations, res.BufferUnitsLeaked)
	}
}

// TestChaosHardenedGiveUpNeverLeaks: under a totally dead up-channel the
// hardened mechanism abandons each flow after its re-request budget and
// must hand every buffer unit back to the pool.
func TestChaosHardenedGiveUpNeverLeaks(t *testing.T) {
	cfg := DefaultConfig(openflow.FlowBufferConfig{
		Granularity:         openflow.GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxRerequests:       4,
		RerequestBackoffPct: 100,
	}, 256)
	cfg.Seed = 1
	cfg.Forwarder.CombinedFlowMod = true
	// A whole-run outage on the up direction: no request ever reaches the
	// controller, so every buffered flow must exhaust its budget and give up.
	cfg.Chaos = &chaos.Plan{Name: "dead-up", ControlUp: netem.Impairment{
		Outages: []netem.Window{{Start: 0, End: time.Hour}},
	}}
	res := runChaos(t, cfg)
	if res.FramesDelivered != 0 {
		t.Errorf("delivered %d frames over a dead up-channel", res.FramesDelivered)
	}
	if res.Giveups == 0 {
		t.Error("no give-ups recorded — retry budget not applied?")
	}
	if res.BufferUnitsLeaked != 0 {
		t.Errorf("%d buffer units leaked after give-up", res.BufferUnitsLeaked)
	}
}

// TestChaosDeterministicReplay: the same seed and plan must reproduce the
// run bit for bit, counters included.
func TestChaosDeterministicReplay(t *testing.T) {
	imp := netem.Impairment{LossRate: 0.05, DuplicateProb: 0.03, DuplicateDelay: time.Millisecond}
	mk := func() *Result {
		plan := &chaos.Plan{Name: "replay", ControlUp: imp, ControlDown: imp}
		return runChaos(t, chaosConfig(3, plan))
	}
	a, b := mk(), mk()
	if *a != *b {
		t.Errorf("seeded chaos runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestChaosSoak is the long-running seed sweep behind CI's non-gating
// chaos-soak job. It is skipped unless CHAOS_SOAK is set so the regular
// test run stays fast; the soak drives many more seeds through the full
// loss+reorder+dup plan and a mid-run outage, asserting the same
// exactly-once/zero-leak invariants on every one.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK") == "" {
		t.Skip("set CHAOS_SOAK=1 to run the long chaos seed sweep")
	}
	imp := netem.Impairment{
		LossRate:       0.08,
		ReorderProb:    0.05,
		ReorderDelay:   2 * time.Millisecond,
		DuplicateProb:  0.05,
		DuplicateDelay: time.Millisecond,
	}
	for seed := int64(1); seed <= 40; seed++ {
		plan := &chaos.Plan{
			Name:        "soak",
			ControlUp:   imp,
			ControlDown: imp,
			Controller: chaos.ControllerFaults{
				Stalls: []netem.Window{{Start: 15 * time.Millisecond, End: 30 * time.Millisecond}},
			},
		}
		res := runChaos(t, chaosConfig(seed, plan))
		if res.FramesDelivered != int64(res.FramesSent) {
			t.Errorf("seed %d: delivered %d of %d", seed, res.FramesDelivered, res.FramesSent)
		}
		if res.DupEmissions != 0 || res.OrderViolations != 0 || res.BufferUnitsLeaked != 0 {
			t.Errorf("seed %d: dups=%d misorders=%d leaked=%d",
				seed, res.DupEmissions, res.OrderViolations, res.BufferUnitsLeaked)
		}
		t.Logf("seed %d: sent=%d delivered=%d rerequests=%d stalled=%d",
			seed, res.FramesSent, res.FramesDelivered, res.Rerequests, res.CtrlStalled)
	}
}
