package testbed

import (
	"fmt"
	"log"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/netem/tcpchaos"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/switchd"
)

// LiveFleetConfig describes a live soak run: N real switchd.Agents dialing
// one controller.Server over loopback, optionally through a tcpchaos proxy
// that mangles the byte streams between them.
type LiveFleetConfig struct {
	// Agents is the fleet size (required, ≥ 1).
	Agents int
	// Chaos, when Enabled, interposes a fault-injection proxy between every
	// agent and the server.
	Chaos tcpchaos.Profile
	// Server tunes the daemon under test; zero-value fields default as in
	// controller.ServerConfig. MaxConns defaults to 0 (unlimited) so chaos
	// reconnect storms are admitted.
	Server controller.ServerConfig
	// EchoInterval is the keepalive period used on BOTH sides (agents probe
	// the server, the server probes agents). Default 150ms — short enough
	// that blackhole windows trip dead-peer detection within a soak.
	EchoInterval time.Duration
	// Logger receives lifecycle noise; nil silences it.
	Logger *log.Logger
}

// LiveFleet is the live-mode soak harness: a controller daemon, a chaos
// proxy, and a fleet of real agents with auto-reconnect, all on loopback.
// It is the acceptance rig for ROADMAP item 3: every fault the proxy
// injects must end either in a converged agent or a reconnect that
// converges, never a wedge or a leak.
type LiveFleet struct {
	cfg    LiveFleetConfig
	server *controller.Server
	proxy  *tcpchaos.Proxy // nil without chaos
	agents []*switchd.Agent

	reconnects atomic.Uint64 // fleet-wide successful reconnect count
	disconns   atomic.Uint64 // fleet-wide disconnect reports
	flowSeq    atomic.Uint32 // unique flow ids across Converge calls

	mu       sync.Mutex
	received map[int]int // agent index → frames egressed by the datapath
}

// NewLiveFleet assembles and starts the whole rig: server listening,
// proxy (if chaotic) in front of it, and every agent connected through
// whichever endpoint applies. Agents use seeded reconnect jitter so runs
// are as reproducible as real sockets allow.
func NewLiveFleet(cfg LiveFleetConfig) (*LiveFleet, error) {
	if cfg.Agents < 1 {
		return nil, fmt.Errorf("testbed: live fleet needs at least 1 agent, got %d", cfg.Agents)
	}
	if cfg.EchoInterval == 0 {
		cfg.EchoInterval = 150 * time.Millisecond
	}
	app := controller.NewLearningSwitch(controller.ForwarderConfig{})
	scfg := cfg.Server
	if scfg.EchoInterval == 0 {
		scfg.EchoInterval = cfg.EchoInterval
	}
	if scfg.Logger == nil {
		scfg.Logger = cfg.Logger
	}
	server, err := controller.NewServer(scfg, app)
	if err != nil {
		return nil, err
	}
	if err := server.Listen("127.0.0.1:0"); err != nil {
		return nil, err
	}
	lf := &LiveFleet{
		cfg:      cfg,
		server:   server,
		received: make(map[int]int),
	}
	dialAddr := server.Addr()
	if cfg.Chaos.Enabled() {
		proxy, err := tcpchaos.New(cfg.Chaos, server.Addr())
		if err != nil {
			_ = server.Close()
			return nil, err
		}
		lf.proxy = proxy
		dialAddr = proxy.Addr()
	}
	for i := 0; i < cfg.Agents; i++ {
		i := i
		agent, err := switchd.NewAgent(switchd.AgentConfig{
			Datapath: switchd.Config{
				DatapathID: uint64(i + 1),
				NumPorts:   2,
				Buffer:     openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
			},
			Logger:       cfg.Logger,
			EchoInterval: cfg.EchoInterval,
			DialTimeout:  2 * time.Second,
			WriteTimeout: 2 * time.Second,
			Reconnect: switchd.ReconnectConfig{
				Enable:         true,
				InitialBackoff: 25 * time.Millisecond,
				MaxBackoff:     250 * time.Millisecond,
				Jitter:         0.2,
				Seed:           int64(i + 1),
			},
			OnDisconnect: func(error) { lf.disconns.Add(1) },
			OnReconnect:  func(int) { lf.reconnects.Add(1) },
		})
		if err != nil {
			lf.closePartial()
			return nil, err
		}
		agent.SetTransmit(func(port uint16, frame []byte) {
			lf.mu.Lock()
			lf.received[i]++
			lf.mu.Unlock()
		})
		lf.agents = append(lf.agents, agent)
		if err := agent.Connect(dialAddr); err != nil {
			// Under chaos the very first dial may die to an injected fault;
			// the reconnect loop only arms after one successful Connect, so
			// retry here rather than failing assembly.
			ok := false
			for attempt := 0; attempt < 50 && !ok; attempt++ {
				time.Sleep(20 * time.Millisecond)
				ok = agent.Connect(dialAddr) == nil
			}
			if !ok {
				lf.closePartial()
				return nil, fmt.Errorf("testbed: agent %d never connected: %w", i, err)
			}
		}
	}
	return lf, nil
}

func (lf *LiveFleet) closePartial() {
	for _, a := range lf.agents {
		_ = a.Close()
	}
	if lf.proxy != nil {
		_ = lf.proxy.Close()
	}
	_ = lf.server.Close()
}

// Server exposes the daemon under test (stats, registry).
func (lf *LiveFleet) Server() *controller.Server { return lf.server }

// Proxy exposes the chaos relay, or nil when the fleet runs clean.
func (lf *LiveFleet) Proxy() *tcpchaos.Proxy { return lf.proxy }

// Agent returns the i-th agent.
func (lf *LiveFleet) Agent(i int) *switchd.Agent { return lf.agents[i] }

// Reconnects reports fleet-wide successful reconnect count.
func (lf *LiveFleet) Reconnects() uint64 { return lf.reconnects.Load() }

// Disconnects reports fleet-wide disconnect reports.
func (lf *LiveFleet) Disconnects() uint64 { return lf.disconns.Load() }

// fleetFrame builds the injected workload frame for one agent: a UDP
// packet between the agent's two hosts (host 1 on port 1, host 2 on port
// 2), varying the UDP source port per round so the learning switch sees
// distinct flows. reverse swaps the endpoints — used to teach the learning
// switch the destination before asking for an installed rule.
func fleetFrame(agent, round int, reverse bool) ([]byte, error) {
	h1 := packet.MAC{2, 0, byte(agent >> 8), byte(agent), 0, 1}
	h2 := packet.MAC{2, 0, byte(agent >> 8), byte(agent), 0, 2}
	ip1 := netip.AddrFrom4([4]byte{10, 1, byte(agent >> 8), byte(agent)})
	ip2 := netip.AddrFrom4([4]byte{10, 2, byte(agent >> 8), byte(agent)})
	if reverse {
		h1, h2 = h2, h1
		ip1, ip2 = ip2, ip1
	}
	f := &packet.Frame{
		SrcMAC:    h1,
		DstMAC:    h2,
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     ip1,
		DstIP:     ip2,
		SrcPort:   uint16(1024 + round),
		DstPort:   9,
		Payload:   make([]byte, 64),
	}
	return f.Serialize()
}

// Converge drives every agent to a converged state: inject a frame, wait
// for the resulting egress (miss → packet_in → packet_out/flow_mod →
// transmit), retrying through faults until each agent has proven a working
// control-channel round trip AND an installed rule. Returns the number of
// agents that failed to converge within the per-agent deadline (0 on full
// convergence).
func (lf *LiveFleet) Converge(perAgent time.Duration) int {
	var wg sync.WaitGroup
	var failed atomic.Int32
	for i := range lf.agents {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if !lf.convergeOne(i, time.Now().Add(perAgent)) {
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	return int(failed.Load())
}

func (lf *LiveFleet) convergeOne(i int, deadline time.Time) bool {
	agent := lf.agents[i]
	for time.Now().Before(deadline) {
		// A fresh flow id every round — including across Converge calls —
		// so a frame can never hit a rule installed for an earlier round
		// and masquerade local forwarding as control-plane convergence.
		round := int(lf.flowSeq.Add(1))
		// Teach the learning switch host 2's location first (reverse frame
		// from port 2), then the forward frame from port 1 hits a known
		// destination and earns an installed rule plus a released packet.
		reverse, err := fleetFrame(i, round, true)
		if err != nil {
			return false
		}
		forward, err := fleetFrame(i, round, false)
		if err != nil {
			return false
		}
		before := lf.egressCount(i)
		if err := agent.InjectFrame(2, reverse); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if err := agent.InjectFrame(1, forward); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		// Wait briefly for the control round trips to produce an installed
		// rule and egress; under chaos this round may be a casualty, in
		// which case the outer loop retries with a fresh flow. Requiring a
		// Ready registry entry keeps the fail-standalone datapath (which
		// forwards locally while the control channel is down) from passing
		// for a converged control plane.
		waitUntil := time.Now().Add(500 * time.Millisecond)
		for time.Now().Before(waitUntil) {
			if lf.egressCount(i) > before && agent.TableLen() > 0 && lf.serverReady(i) {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return false
}

// serverReady reports whether the daemon's registry holds a Ready
// connection for agent i's datapath.
func (lf *LiveFleet) serverReady(i int) bool {
	for _, c := range lf.server.Conns() {
		if c.DatapathID == uint64(i+1) && c.State == controller.StateReady {
			return true
		}
	}
	return false
}

func (lf *LiveFleet) egressCount(i int) int {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.received[i]
}

// Close tears the whole rig down: agents first (clean FINs toward the
// server), then the proxy, then the daemon.
func (lf *LiveFleet) Close() error {
	var firstErr error
	for _, a := range lf.agents {
		if err := a.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if lf.proxy != nil {
		if err := lf.proxy.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := lf.server.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
