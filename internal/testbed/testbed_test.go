package testbed

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/switchd"
)

func pktgenConfig(rate float64) pktgen.Config {
	return pktgen.Config{
		FrameSize: 1000,
		RateMbps:  rate,
		Jitter:    0.5,
		Seed:      7,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}
}

func runStudyA(t *testing.T, g openflow.BufferGranularity, capacity int, rate float64, flows int) *Result {
	t.Helper()
	buf := openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 50}
	tb, err := New(DefaultConfig(buf, capacity))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	sched, err := pktgen.SinglePacketFlows(pktgenConfig(rate), flows)
	if err != nil {
		t.Fatalf("SinglePacketFlows: %v", err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestAllPacketsDeliveredAcrossModes(t *testing.T) {
	for _, g := range []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	} {
		res := runStudyA(t, g, 256, 50, 300)
		if res.FramesDelivered != int64(res.FramesSent) {
			t.Errorf("%v: delivered %d of %d", g, res.FramesDelivered, res.FramesSent)
		}
		if res.FlowsObserved != 300 {
			t.Errorf("%v: flows observed %d", g, res.FlowsObserved)
		}
		if res.FlowSetupDelay.Count() != 300 {
			t.Errorf("%v: setup delay samples %d", g, res.FlowSetupDelay.Count())
		}
	}
}

func TestBufferReducesControlPathLoad(t *testing.T) {
	// The paper's headline: buffering cuts control path load by ~78.7% in
	// the switch-to-controller direction and ~96% in the reverse.
	noBuf := runStudyA(t, openflow.GranularityNone, 256, 50, 500)
	buf := runStudyA(t, openflow.GranularityPacket, 256, 50, 500)
	if buf.CtrlLoadToControllerMbps > 0.3*noBuf.CtrlLoadToControllerMbps {
		t.Errorf("uplink load %g not <30%% of no-buffer %g",
			buf.CtrlLoadToControllerMbps, noBuf.CtrlLoadToControllerMbps)
	}
	if buf.CtrlLoadToSwitchMbps > 0.2*noBuf.CtrlLoadToSwitchMbps {
		t.Errorf("downlink load %g not <20%% of no-buffer %g",
			buf.CtrlLoadToSwitchMbps, noBuf.CtrlLoadToSwitchMbps)
	}
	// No-buffer control load tracks the sending rate.
	if noBuf.CtrlLoadToControllerMbps < 40 || noBuf.CtrlLoadToControllerMbps > 60 {
		t.Errorf("no-buffer uplink load %g, want ~50 (the sending rate)",
			noBuf.CtrlLoadToControllerMbps)
	}
}

func TestBufferReducesControllerUsageAndDelay(t *testing.T) {
	noBuf := runStudyA(t, openflow.GranularityNone, 256, 50, 500)
	buf := runStudyA(t, openflow.GranularityPacket, 256, 50, 500)
	if buf.ControllerUsagePercent >= noBuf.ControllerUsagePercent {
		t.Errorf("controller usage %g not below no-buffer %g",
			buf.ControllerUsagePercent, noBuf.ControllerUsagePercent)
	}
	if buf.ControllerDelay.Mean() >= noBuf.ControllerDelay.Mean() {
		t.Errorf("controller delay %g not below no-buffer %g",
			buf.ControllerDelay.Mean(), noBuf.ControllerDelay.Mean())
	}
	if buf.FlowSetupDelay.Mean() >= noBuf.FlowSetupDelay.Mean() {
		t.Errorf("setup delay %g not below no-buffer %g",
			buf.FlowSetupDelay.Mean(), noBuf.FlowSetupDelay.Mean())
	}
}

func TestBufferSwitchOverheadSmall(t *testing.T) {
	// Paper Fig. 4: buffering adds only ~5.6% switch CPU.
	noBuf := runStudyA(t, openflow.GranularityNone, 256, 35, 500)
	buf := runStudyA(t, openflow.GranularityPacket, 256, 35, 500)
	if buf.SwitchUsagePercent < noBuf.SwitchUsagePercent {
		t.Errorf("buffered switch usage %g below no-buffer %g; expected small positive overhead",
			buf.SwitchUsagePercent, noBuf.SwitchUsagePercent)
	}
	if buf.SwitchUsagePercent > 1.15*noBuf.SwitchUsagePercent {
		t.Errorf("buffered switch usage %g more than 15%% above no-buffer %g",
			buf.SwitchUsagePercent, noBuf.SwitchUsagePercent)
	}
}

func TestSmallBufferExhaustsAtModerateRate(t *testing.T) {
	// Paper Fig. 8: buffer-16 is exhausted past ~30 Mbps; buffer-256 is not.
	low := runStudyA(t, openflow.GranularityPacket, 16, 20, 500)
	if low.BufferFallbacks != 0 {
		t.Errorf("buffer-16 at 20 Mbps: %d fallbacks, want 0", low.BufferFallbacks)
	}
	high := runStudyA(t, openflow.GranularityPacket, 16, 50, 500)
	if high.BufferFallbacks == 0 {
		t.Error("buffer-16 at 50 Mbps: no fallbacks, expected exhaustion")
	}
	if high.BufferOccupancyMax != 16 {
		t.Errorf("buffer-16 max occupancy = %g, want pegged at 16", high.BufferOccupancyMax)
	}
	big := runStudyA(t, openflow.GranularityPacket, 256, 50, 500)
	if big.BufferFallbacks != 0 {
		t.Errorf("buffer-256 at 50 Mbps: %d fallbacks, want 0", big.BufferFallbacks)
	}
	if big.BufferOccupancyMax >= 256 || big.BufferOccupancyMax <= 16 {
		t.Errorf("buffer-256 max occupancy = %g, want between 16 and 256", big.BufferOccupancyMax)
	}
}

func TestExhaustedBufferDegradesTowardNoBuffer(t *testing.T) {
	small := runStudyA(t, openflow.GranularityPacket, 16, 70, 500)
	big := runStudyA(t, openflow.GranularityPacket, 256, 70, 500)
	if small.CtrlLoadToControllerMbps < 3*big.CtrlLoadToControllerMbps {
		t.Errorf("exhausted buffer-16 load %g not well above buffer-256 %g",
			small.CtrlLoadToControllerMbps, big.CtrlLoadToControllerMbps)
	}
}

func runStudyB(t *testing.T, g openflow.BufferGranularity, rate float64) *Result {
	t.Helper()
	buf := openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 50}
	tb, err := New(DefaultConfig(buf, 256))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(pktgenConfig(rate), 50, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFlowGranularitySingleRequestPerFlow(t *testing.T) {
	res := runStudyB(t, openflow.GranularityFlow, 70)
	if res.PacketIns != 50 {
		t.Errorf("flow granularity sent %d packet_ins for 50 flows, want 50", res.PacketIns)
	}
	if res.FramesDelivered != 1000 {
		t.Errorf("delivered %d of 1000", res.FramesDelivered)
	}
	pkt := runStudyB(t, openflow.GranularityPacket, 70)
	if pkt.PacketIns <= 60 {
		t.Errorf("packet granularity sent %d packet_ins; expected well above 50 at 70 Mbps", pkt.PacketIns)
	}
}

func TestFlowGranularityReducesLoadAndOccupancy(t *testing.T) {
	flow := runStudyB(t, openflow.GranularityFlow, 70)
	pkt := runStudyB(t, openflow.GranularityPacket, 70)
	if flow.CtrlLoadToControllerMbps >= pkt.CtrlLoadToControllerMbps {
		t.Errorf("flow load %g not below packet load %g",
			flow.CtrlLoadToControllerMbps, pkt.CtrlLoadToControllerMbps)
	}
	if flow.CtrlLoadToSwitchMbps >= pkt.CtrlLoadToSwitchMbps {
		t.Errorf("flow downlink %g not below packet %g",
			flow.CtrlLoadToSwitchMbps, pkt.CtrlLoadToSwitchMbps)
	}
	// Paper Fig. 13: ~71.6% better buffer utilization.
	if flow.BufferOccupancyMean > 0.5*pkt.BufferOccupancyMean {
		t.Errorf("flow occupancy %g not <50%% of packet occupancy %g",
			flow.BufferOccupancyMean, pkt.BufferOccupancyMean)
	}
	if flow.ControllerUsagePercent >= pkt.ControllerUsagePercent {
		t.Errorf("flow controller usage %g not below packet %g",
			flow.ControllerUsagePercent, pkt.ControllerUsagePercent)
	}
}

func TestFlowGranularityNoExtraSwitchOverhead(t *testing.T) {
	// Paper Fig. 11: the proposed mechanism does not increase switch load.
	flow := runStudyB(t, openflow.GranularityFlow, 50)
	pkt := runStudyB(t, openflow.GranularityPacket, 50)
	if flow.SwitchUsagePercent > 1.05*pkt.SwitchUsagePercent {
		t.Errorf("flow switch usage %g above packet %g",
			flow.SwitchUsagePercent, pkt.SwitchUsagePercent)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runStudyA(t, openflow.GranularityPacket, 64, 40, 300)
	b := runStudyA(t, openflow.GranularityPacket, 64, 40, 300)
	if a.CtrlLoadToControllerMbps != b.CtrlLoadToControllerMbps ||
		a.FlowSetupDelay.Mean() != b.FlowSetupDelay.Mean() ||
		a.BufferOccupancyMean != b.BufferOccupancyMean ||
		a.PacketIns != b.PacketIns {
		t.Error("identical configs and seeds produced different results")
	}
}

func TestRunValidation(t *testing.T) {
	tb, err := New(DefaultConfig(openflow.FlowBufferConfig{Granularity: openflow.GranularityNone}, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(nil); err == nil {
		t.Error("Run accepted empty schedule")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig(openflow.FlowBufferConfig{Granularity: openflow.GranularityNone}, 16)
	cfg.HostLinkMbps = 0
	if _, err := New(cfg); err == nil {
		t.Error("accepted zero host link bandwidth")
	}
	cfg = DefaultConfig(openflow.FlowBufferConfig{Granularity: 77}, 16)
	if _, err := New(cfg); err == nil {
		t.Error("accepted invalid granularity")
	}
}

func TestTCPEvictionScenario(t *testing.T) {
	// §VI.B: a TCP flow pauses, its rule is evicted by other traffic, and
	// the second burst misses again — the buffer absorbs it.
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
	cfg := DefaultConfig(buf, 256)
	cfg.Switch.Datapath.TableCapacity = 8
	cfg.Switch.Datapath.EvictionPolicy = flowtable.EvictLRU
	// Idle timeout shorter than the pause also evicts.
	cfg.Forwarder = controller.ForwarderConfig{
		Routes: []controller.Route{
			{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Port: PortHost2},
			{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Port: PortHost1},
		},
		IdleTimeout: 1,
	}
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.TCPEvictionFlow(pktgen.TCPFlowConfig{
		Config:      pktgenConfig(50),
		SrcIP:       netip.MustParseAddr("10.1.0.1"),
		SrcPort:     40000,
		BurstPkts:   5,
		PauseLen:    3 * time.Second,
		SecondBurst: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != int64(len(sched)) {
		t.Errorf("delivered %d of %d TCP segments", res.FramesDelivered, len(sched))
	}
	// Two miss cycles: the SYN and the post-pause restart.
	if res.PacketIns != 2 {
		t.Errorf("packet_ins = %d, want 2 (initial + post-eviction)", res.PacketIns)
	}
}

func TestStudyBZeroFlowSetupWithoutLoss(t *testing.T) {
	// Every multi-packet flow completes with in-order measurable setup and
	// forwarding delays.
	res := runStudyB(t, openflow.GranularityFlow, 35)
	if res.FlowSetupDelay.Count() != 50 || res.FlowForwardingDelay.Count() != 50 {
		t.Fatalf("delay samples = %d/%d, want 50/50",
			res.FlowSetupDelay.Count(), res.FlowForwardingDelay.Count())
	}
	if res.FlowForwardingDelay.Mean() <= res.FlowSetupDelay.Mean() {
		t.Error("forwarding delay not above setup delay for 20-packet flows")
	}
}

func TestSwitchModelExposed(t *testing.T) {
	tb, err := New(DefaultConfig(openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket}, 64))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Switch() == nil || tb.Controller() == nil || tb.Capture() == nil || tb.Kernel() == nil {
		t.Error("accessors returned nil")
	}
	sw := switchd.DefaultSimConfig()
	if sw.CPUCores <= 0 {
		t.Error("default sim config invalid")
	}
}

func TestControlLossFlowGranularityRecovers(t *testing.T) {
	// The §V re-request timer is the recovery path for lost control
	// messages: with 10% loss on the control channel, every packet must
	// still come out, at the cost of re-requests.
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 20}
	cfg := DefaultConfig(buf, 256)
	cfg.ControlLossRate = 0.10
	cfg.Drain = 5 * time.Second
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(pktgenConfig(50), 50, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != int64(res.FramesSent) {
		t.Errorf("delivered %d of %d under 10%% control loss", res.FramesDelivered, res.FramesSent)
	}
	if res.Rerequests == 0 {
		t.Error("no re-requests despite control loss; the timeout path never ran")
	}
}

func TestControlLossPacketGranularityLosesPackets(t *testing.T) {
	// The default mechanism has no re-request: a lost packet_in (or its
	// packet_out) strands that packet in the buffer. This is the contrast
	// that motivates Algorithm 1's timeout.
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket}
	cfg := DefaultConfig(buf, 256)
	cfg.ControlLossRate = 0.10
	cfg.Drain = 5 * time.Second
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(pktgenConfig(50), 50, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered >= int64(res.FramesSent) {
		t.Errorf("packet granularity delivered everything (%d) under loss; expected stranded packets",
			res.FramesDelivered)
	}
}

func TestPropertyRandomWorkloadsConserved(t *testing.T) {
	// Arbitrary Poisson workloads through any buffer mode: every frame is
	// delivered exactly once (no loss, no duplication) and every flow gets
	// a setup-delay sample.
	modes := []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	}
	for seed := int64(1); seed <= 6; seed++ {
		mode := modes[seed%3]
		buf := openflow.FlowBufferConfig{Granularity: mode, RerequestTimeoutMs: 50}
		cfg := DefaultConfig(buf, 256)
		cfg.Seed = seed
		tb, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pcfg := pktgenConfig(20 + float64(seed*10))
		pcfg.Seed = seed
		sched, err := pktgen.PoissonFlows(pcfg, rand.New(rand.NewSource(seed)), 15, 6)
		if err != nil {
			t.Fatal(err)
		}
		res, err := tb.Run(sched)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.FramesDelivered != int64(res.FramesSent) {
			t.Errorf("seed %d (%v): delivered %d of %d", seed, mode, res.FramesDelivered, res.FramesSent)
		}
		if res.FlowSetupDelay.Count() != int64(res.FlowsObserved) {
			t.Errorf("seed %d: setup samples %d for %d flows",
				seed, res.FlowSetupDelay.Count(), res.FlowsObserved)
		}
		if res.FlowSetupDelay.Min() <= 0 {
			t.Errorf("seed %d: non-positive setup delay %g", seed, res.FlowSetupDelay.Min())
		}
	}
}
