package testbed

import (
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// LiveFanoutRow is one cell of the live fan-out grid: n raw loopback
// switches pumping packet_ins at one controller daemon, measured end to
// end (packet_in written → both replies read back).
type LiveFanoutRow struct {
	Conns       int     `json:"conns"`
	MsgsPerConn int     `json:"msgs_per_conn"`
	QueueMode   string  `json:"queue_mode"` // "queued" or "direct"
	Seconds     float64 `json:"seconds"`
	PacketInsPS float64 `json:"packet_ins_per_sec"` // fleet-wide handled misses/s
	MsgsOutPS   float64 `json:"msgs_out_per_sec"`   // server→switch messages/s
	Shed        uint64  `json:"shed"`               // sheddable messages dropped
}

// MeasureLiveFanout runs one cell: conns raw OpenFlow clients over real
// loopback TCP against a controller.Server running ReactiveForwarder, each
// client pumping msgsPerConn buffered packet_ins while concurrently reading
// the flow_mod+packet_out replies. direct selects the legacy synchronous
// write path (WriteQueue < 0) instead of the bounded-queue writer, so the
// two paths are comparable on the same workload.
func MeasureLiveFanout(conns, msgsPerConn int, direct bool) (LiveFanoutRow, error) {
	row := LiveFanoutRow{Conns: conns, MsgsPerConn: msgsPerConn, QueueMode: "queued"}
	if conns < 1 || msgsPerConn < 1 {
		return row, fmt.Errorf("testbed: fan-out needs conns and msgs >= 1")
	}
	scfg := controller.ServerConfig{StallTimeout: 30 * time.Second}
	if direct {
		scfg.WriteQueue = -1
		row.QueueMode = "direct"
	}
	app, err := controller.NewReactiveForwarder(controller.ForwarderConfig{Routes: []controller.Route{
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Port: 2},
	}})
	if err != nil {
		return row, err
	}
	srv, err := controller.NewServer(scfg, app)
	if err != nil {
		return row, err
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		return row, err
	}
	defer srv.Close()

	frame, err := (&packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr("10.1.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1000,
		DstPort:   9,
		Payload:   make([]byte, 64),
	}).Serialize()
	if err != nil {
		return row, err
	}

	// Handshake every client before the clock starts: the measurement is
	// steady-state fan-out, not connection setup.
	clients := make([]net.Conn, conns)
	readers := make([]*openflow.Reader, conns)
	for i := range clients {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			return row, err
		}
		defer c.Close()
		r := openflow.NewReader(c)
		for _, want := range []openflow.MsgType{openflow.TypeHello, openflow.TypeFeaturesRequest} {
			_ = c.SetReadDeadline(time.Now().Add(10 * time.Second))
			m, _, err := r.ReadMessage()
			if err != nil || m.Type() != want {
				return row, fmt.Errorf("testbed: client %d handshake: got %v, %w", i, m, err)
			}
		}
		if err := openflow.WriteMessage(c, &openflow.Hello{}, 1); err != nil {
			return row, err
		}
		if err := openflow.WriteMessage(c, &openflow.FeaturesReply{DatapathID: uint64(i + 1)}, 2); err != nil {
			return row, err
		}
		clients[i], readers[i] = c, r
	}

	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	start := time.Now()
	for i := range clients {
		c, r := clients[i], readers[i]
		wg.Add(2)
		// Writer: pump packet_ins as fast as the socket takes them.
		go func() {
			defer wg.Done()
			w := openflow.NewWriter(c)
			for m := 0; m < msgsPerConn; m++ {
				pi := &openflow.PacketIn{
					BufferID: uint32(m + 1),
					TotalLen: uint16(len(frame)),
					InPort:   1,
					Reason:   openflow.ReasonNoMatch,
					Data:     frame,
				}
				_ = c.SetWriteDeadline(time.Now().Add(30 * time.Second))
				if err := w.WriteMessage(pi, uint32(m+1)); err != nil {
					fail(fmt.Errorf("testbed: fan-out write: %w", err))
					return
				}
			}
		}()
		// Reader: drain replies until every flow_mod is back. Flow_mods are
		// never shed, so msgsPerConn of them proves every miss completed;
		// packet_outs may legally be dropped by the slow-consumer policy
		// (the row's Shed column reports how many were).
		go func() {
			defer wg.Done()
			for got := 0; got < msgsPerConn; {
				_ = c.SetReadDeadline(time.Now().Add(30 * time.Second))
				m, _, err := r.ReadMessage()
				if err != nil {
					fail(fmt.Errorf("testbed: fan-out read after %d/%d flow_mods: %w", got, msgsPerConn, err))
					return
				}
				if m.Type() == openflow.TypeFlowMod {
					got++
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return row, firstErr
	}
	st := srv.Stats()
	row.Seconds = elapsed.Seconds()
	row.PacketInsPS = float64(conns*msgsPerConn) / elapsed.Seconds()
	row.MsgsOutPS = float64(st.MsgsOut) / elapsed.Seconds()
	row.Shed = st.Shed
	return row, nil
}
