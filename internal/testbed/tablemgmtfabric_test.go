package testbed

import (
	"fmt"
	"os"
	"testing"

	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/tablemgmt"
	"sdnbuffer/internal/topo"
)

// runTableMgmtFabric runs a line:4 fabric under table pressure — capacity-4
// LRU tables, 1s idle timeouts, flow_removed requested — with or without the
// controller-side aggregation tracker, at the given kernel worker count.
func runTableMgmtFabric(t *testing.T, workers int, agg bool, flows int, seed int64) *FabricResult {
	t.Helper()
	graph := buildGraph(t, "line:4")
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket, RerequestTimeoutMs: 50}
	cfg := DefaultConfig(buf, 256)
	cfg.Seed = seed
	cfg.Forwarder.IdleTimeout = 1
	cfg.Forwarder.RequestFlowRemoved = true
	cfg.Switch.Datapath.TableCapacity = 4
	cfg.Switch.Datapath.EvictionPolicy = flowtable.EvictLRU
	opts := FabricOptions{Graph: graph, Install: topo.InstallHopByHop, KernelWorkers: workers}
	if agg {
		opts.TableMgmt = &tablemgmt.Config{TableCapacity: 4, RequestFlowRemoved: true}
	}
	fb, err := NewFabric(cfg, opts)
	if err != nil {
		t.Fatalf("NewFabric(workers=%d, agg=%v): %v", workers, agg, err)
	}
	sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, 40, fb.opts.DstHost), flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.Run(sched)
	if err != nil {
		t.Fatalf("Run(workers=%d, agg=%v): %v", workers, agg, err)
	}
	return res
}

// TestFabricTableMgmtLedgerAcrossWorkers pins the parallel-kernel half of
// the eviction-ordering property: the full rule ledger — installs,
// per-reason removals, rejects, gap — and every other FabricResult field
// must be identical whether 1 or 8 kernel workers executed the run, with
// eviction genuinely exercised and the ledger closed in the baseline.
func TestFabricTableMgmtLedgerAcrossWorkers(t *testing.T) {
	for _, agg := range []bool{false, true} {
		serial := runTableMgmtFabric(t, 1, agg, 32, 1)
		if serial.RuleInstalls == 0 {
			t.Fatalf("agg=%v: baseline installed no rules", agg)
		}
		if !agg && serial.RemovedEvict == 0 && serial.RuleRejects == 0 {
			t.Fatal("capacity-4 tables under 32 flows saw no eviction or reject; pressure scenario inert")
		}
		if agg && (serial.Aggregations == 0 || serial.RulesCompressed == 0) {
			// With aggregation on, the pressure is absorbed by compression
			// instead of eviction — that absorption must actually happen.
			t.Fatalf("aggregation enabled but inert: %d aggregations, %d rules compressed",
				serial.Aggregations, serial.RulesCompressed)
		}
		if serial.LedgerGap != 0 {
			t.Fatalf("agg=%v: baseline ledger gap %d", agg, serial.LedgerGap)
		}
		if serial.BufferUnitsLeaked != 0 {
			t.Fatalf("agg=%v: baseline leaked %d buffer units", agg, serial.BufferUnitsLeaked)
		}
		for _, workers := range []int{2, 8} {
			par := runTableMgmtFabric(t, workers, agg, 32, 1)
			diffResults(t, fmt.Sprintf("tablemgmt agg=%v workers=%d", agg, workers), serial, par)
		}
	}
}

// TestTableMgmtSoak is the CI soak entry point (TABLEMGMT_SOAK=1, typically
// under -race): 10 seeds × both aggregation arms, each seed held to a closed
// rule ledger, zero buffer leaks, and serial-vs-8-workers equality. Skipped
// by default.
func TestTableMgmtSoak(t *testing.T) {
	if os.Getenv("TABLEMGMT_SOAK") == "" {
		t.Skip("set TABLEMGMT_SOAK=1 to run the 10-seed table-management soak")
	}
	for seed := int64(1); seed <= 10; seed++ {
		for _, agg := range []bool{false, true} {
			label := fmt.Sprintf("seed=%d agg=%v", seed, agg)
			serial := runTableMgmtFabric(t, 1, agg, 32, seed)
			if serial.LedgerGap != 0 {
				t.Errorf("%s: rule ledger gap %d", label, serial.LedgerGap)
			}
			if serial.BufferUnitsLeaked != 0 {
				t.Errorf("%s: leaked %d buffer units", label, serial.BufferUnitsLeaked)
			}
			par := runTableMgmtFabric(t, 8, agg, 32, seed)
			diffResults(t, label, serial, par)
		}
	}
}
