package testbed

import (
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/topo"
)

// fabricConfig is DefaultConfig pointed at a fabric host pair.
func fabricPktgen(g *topo.Graph, rate float64, dst int) pktgen.Config {
	c := pktgenConfig(rate)
	c.DstIP = g.Hosts()[dst].Addr
	return c
}

func buildGraph(t *testing.T, spec string) *topo.Graph {
	t.Helper()
	s, err := topo.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	g, err := topo.Build(s)
	if err != nil {
		t.Fatalf("Build(%q): %v", spec, err)
	}
	return g
}

func runFabric(t *testing.T, spec string, g openflow.BufferGranularity, opts FabricOptions, rate float64, flows int) (*Fabric, *FabricResult) {
	t.Helper()
	graph := buildGraph(t, spec)
	opts.Graph = graph
	buf := openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 50}
	fb, err := NewFabric(DefaultConfig(buf, 256), opts)
	if err != nil {
		t.Fatalf("NewFabric(%s): %v", spec, err)
	}
	sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, rate, fb.opts.DstHost), flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.Run(sched)
	if err != nil {
		t.Fatalf("Run(%s): %v", spec, err)
	}
	return fb, res
}

func TestFabricDelayMatchesHopSumOracle(t *testing.T) {
	// The end-to-end setup delay of each flow's first packet must equal the
	// sum of its per-hop components exactly: k switch residencies plus the
	// k-1 inter-switch link legs. Integer time, no tolerance — a duplicate
	// delivery, a detour, or a bookkeeping slip all break the identity.
	for _, gran := range []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	} {
		fb, res := runFabric(t, "line:4", gran, FabricOptions{TrackHops: true}, 40, 50)
		if res.FramesDelivered != 50 || res.FlowSetupDelay.Count() != 50 {
			t.Fatalf("gran %v: delivered %d, setup samples %d", gran, res.FramesDelivered, res.FlowSetupDelay.Count())
		}
		if res.PathHops != 4 {
			t.Fatalf("path hops = %d", res.PathHops)
		}
		var meanOfSums float64
		for flow := 0; flow < 50; flow++ {
			enters, exits, ok := fb.HopRecord(flow)
			if !ok {
				t.Fatalf("gran %v: flow %d has no complete hop record", gran, flow)
			}
			total := exits[len(exits)-1] - enters[0]
			var sum time.Duration
			for pos := range enters {
				resid := exits[pos] - enters[pos]
				if resid <= 0 {
					t.Fatalf("gran %v: flow %d hop %d residency %v", gran, flow, pos, resid)
				}
				sum += resid
				if pos > 0 {
					leg := enters[pos] - exits[pos-1]
					if leg <= 0 {
						t.Fatalf("gran %v: flow %d link leg %d = %v", gran, flow, pos-1, leg)
					}
					sum += leg
				}
			}
			if sum != total {
				t.Fatalf("gran %v: flow %d hop sum %v != end-to-end %v", gran, flow, sum, total)
			}
			meanOfSums += total.Seconds()
		}
		meanOfSums /= 50
		if diff := math.Abs(meanOfSums - res.FlowSetupDelay.Mean()); diff > 1e-12 {
			t.Errorf("gran %v: hop-sum mean %g vs setup-delay mean %g (diff %g)",
				gran, meanOfSums, res.FlowSetupDelay.Mean(), diff)
		}
	}
}

func TestFabricSingleSwitchMatchesTestbed(t *testing.T) {
	// A 1-switch line fabric is the Fig. 1 platform: same switch, same
	// controller model, same reactive decision bytes. Every metric must be
	// bit-identical to the legacy single-switch testbed on the same workload.
	for _, gran := range []openflow.BufferGranularity{
		openflow.GranularityNone, openflow.GranularityPacket, openflow.GranularityFlow,
	} {
		graph := buildGraph(t, "line:1")
		buf := openflow.FlowBufferConfig{Granularity: gran, RerequestTimeoutMs: 50}
		// The same schedule drives both platforms: host 1 of the fabric is
		// 10.0.0.3, which the legacy forwarder's 10.0.0.0/24 route sends out
		// port 2 — the identical forwarding decision.
		sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, 40, 1), 150)
		if err != nil {
			t.Fatal(err)
		}

		fb, err := NewFabric(DefaultConfig(buf, 256), FabricOptions{Graph: graph})
		if err != nil {
			t.Fatal(err)
		}
		fres, err := fb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := New(DefaultConfig(buf, 256))
		if err != nil {
			t.Fatal(err)
		}
		sres, err := tb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}

		type pair struct {
			name   string
			fabric any
			single any
		}
		for _, p := range []pair{
			{"FramesDelivered", fres.FramesDelivered, sres.FramesDelivered},
			{"PacketIns", fres.PacketIns, sres.PacketIns},
			{"FlowMods", fres.FlowMods, sres.FlowMods},
			{"PacketOuts", fres.PacketOuts, sres.PacketOuts},
			{"FlowsObserved", fres.FlowsObserved, sres.FlowsObserved},
			{"FlowSetupDelay.Count", fres.FlowSetupDelay.Count(), sres.FlowSetupDelay.Count()},
			{"FlowSetupDelay.Mean", fres.FlowSetupDelay.Mean(), sres.FlowSetupDelay.Mean()},
			{"ControllerDelay.Mean", fres.ControllerDelay.Mean(), sres.ControllerDelay.Mean()},
			{"ControllerUsagePercent", fres.ControllerUsagePercent, sres.ControllerUsagePercent},
			{"SwitchUsagePercent", fres.SwitchUsagePercent, sres.SwitchUsagePercent},
			{"CtrlLoadToControllerMbps", fres.CtrlLoadToControllerMbps, sres.CtrlLoadToControllerMbps},
			{"CtrlLoadToSwitchMbps", fres.CtrlLoadToSwitchMbps, sres.CtrlLoadToSwitchMbps},
			{"BufferOccupancyMean", fres.BufferOccupancyMean, sres.BufferOccupancyMean},
			{"BufferOccupancyMax", fres.BufferOccupancyMax, sres.BufferOccupancyMax},
			{"BufferUnitsLeaked", fres.BufferUnitsLeaked, sres.BufferUnitsLeaked},
			{"DupEmissions", fres.DupEmissions, sres.DupEmissions},
			{"OrderViolations", fres.OrderViolations, sres.OrderViolations},
		} {
			if p.fabric != p.single {
				t.Errorf("gran %v: %s: fabric %v != single %v", gran, p.name, p.fabric, p.single)
			}
		}
	}
}

func TestFabricRandomTopologiesDeliverExactlyOnceInOrder(t *testing.T) {
	// Seeded random fabrics: whatever the wiring, routing must deliver every
	// frame exactly once, in order, to the right host, and leak nothing.
	for seed := int64(1); seed <= 6; seed++ {
		spec := fmt.Sprintf("random:nodes=%d,extra=%d,seed=%d,hosts=4", 5+seed*3, seed*2, seed)
		_, res := runFabric(t, spec, openflow.GranularityFlow,
			FabricOptions{SrcHost: 0, DstHost: 3}, 40, 60)
		if res.FramesDelivered != int64(res.FramesSent) {
			t.Errorf("%s: delivered %d of %d", spec, res.FramesDelivered, res.FramesSent)
		}
		if res.DupEmissions != 0 || res.OrderViolations != 0 || res.Misdelivered != 0 {
			t.Errorf("%s: dups %d, misorders %d, misdelivered %d",
				spec, res.DupEmissions, res.OrderViolations, res.Misdelivered)
		}
		if res.BufferUnitsLeaked != 0 || res.BufferBytesLeaked != 0 {
			t.Errorf("%s: leaked %d units / %d bytes", spec, res.BufferUnitsLeaked, res.BufferBytesLeaked)
		}
		if res.Unroutable != 0 {
			t.Errorf("%s: %d unroutable misses", spec, res.Unroutable)
		}
	}
}

func TestFabricPathInstallCollapsesPacketIns(t *testing.T) {
	// Hop-by-hop: every switch on the 4-hop line misses per flow. Path
	// install: only the first switch misses — the route's flow_mods beat the
	// released packet downstream because it must serialize onto each data
	// link while they cross the parallel control links.
	_, hop := runFabric(t, "line:4", openflow.GranularityFlow,
		FabricOptions{Install: topo.InstallHopByHop}, 40, 100)
	_, path := runFabric(t, "line:4", openflow.GranularityFlow,
		FabricOptions{Install: topo.InstallPath}, 40, 100)
	if hop.PacketIns != 400 {
		t.Errorf("hop-by-hop packet_ins = %d, want 400", hop.PacketIns)
	}
	if path.PacketIns != 100 {
		t.Errorf("path-install packet_ins = %d, want 100", path.PacketIns)
	}
	if path.PathInstalls != 300 { // 3 downstream switches × 100 flows
		t.Errorf("path installs = %d, want 300", path.PathInstalls)
	}
	if path.FramesDelivered != 100 || hop.FramesDelivered != 100 {
		t.Errorf("delivered: path %d, hop %d", path.FramesDelivered, hop.FramesDelivered)
	}
	if path.FlowSetupDelay.Mean() >= hop.FlowSetupDelay.Mean() {
		t.Errorf("path setup %g not below hop-by-hop %g",
			path.FlowSetupDelay.Mean(), hop.FlowSetupDelay.Mean())
	}
}

func TestFabricShardingDilutesPathInstall(t *testing.T) {
	// With two shards on a 4-switch line, the shard answering the first miss
	// masters only every other switch: half the downstream rules are skipped
	// and those hops miss on their own.
	_, res := runFabric(t, "line:4", openflow.GranularityFlow,
		FabricOptions{Install: topo.InstallPath, Shards: 2}, 40, 100)
	if res.RemoteSkips == 0 {
		t.Error("two shards skipped no remote path hops")
	}
	if res.PacketIns <= 100 || res.PacketIns >= 400 {
		t.Errorf("sharded path install packet_ins = %d, want between 100 and 400", res.PacketIns)
	}
	if res.FramesDelivered != 100 {
		t.Errorf("delivered %d of 100", res.FramesDelivered)
	}
}

func TestFabricShardHandoffLeaksNothing(t *testing.T) {
	// Crash the shard mastering the entry switch in the middle of flow
	// setup: its switches fail over to the backup shard, re-request timers
	// resend the pending misses, and at quiescence every frame is delivered
	// with zero pool units or bytes still held.
	run := func() *FabricResult {
		graph := buildGraph(t, "line:4")
		buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
		fb, err := NewFabric(DefaultConfig(buf, 256), FabricOptions{
			Graph:  graph,
			Shards: 2,
			CrashWindows: map[int][]netem.Window{
				0: {{Start: 2 * time.Millisecond, End: 60 * time.Millisecond}},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, 40, 1), 80)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run()
	if res.Handoffs == 0 {
		t.Fatal("crash window triggered no handoffs")
	}
	if res.CtlDropped == 0 {
		t.Error("crashed controller dropped no control messages")
	}
	if res.FramesDelivered != 80 {
		t.Errorf("delivered %d of 80", res.FramesDelivered)
	}
	if res.BufferUnitsLeaked != 0 || res.BufferBytesLeaked != 0 {
		t.Errorf("leaked %d units / %d bytes after handoff", res.BufferUnitsLeaked, res.BufferBytesLeaked)
	}
	if res.DupEmissions != 0 || res.OrderViolations != 0 {
		t.Errorf("dups %d, misorders %d", res.DupEmissions, res.OrderViolations)
	}
	// The crash-and-recover run is as deterministic as a healthy one.
	again := run()
	if res.FlowSetupDelay.Mean() != again.FlowSetupDelay.Mean() ||
		res.PacketIns != again.PacketIns ||
		res.Rerequests != again.Rerequests ||
		res.Handoffs != again.Handoffs ||
		res.CtlDropped != again.CtlDropped {
		t.Errorf("crash run not reproducible: %+v vs %+v", res, again)
	}
}

func TestFabricLeafSpineAndFatTree(t *testing.T) {
	for _, spec := range []string{
		"leafspine:leaves=4,spines=2",
		"fattree:pods=2,leaves=2,spines=2,cores=2",
	} {
		_, res := runFabric(t, spec, openflow.GranularityFlow, FabricOptions{}, 40, 60)
		if res.FramesDelivered != 60 {
			t.Errorf("%s: delivered %d of 60", spec, res.FramesDelivered)
		}
		if res.BufferUnitsLeaked != 0 || res.Misdelivered != 0 {
			t.Errorf("%s: leaked %d, misdelivered %d", spec, res.BufferUnitsLeaked, res.Misdelivered)
		}
		// Every path hop misses once per flow under hop-by-hop install.
		if want := int64(60 * res.PathHops); res.PacketIns != want {
			t.Errorf("%s: packet_ins = %d, want %d (%d hops)", spec, res.PacketIns, want, res.PathHops)
		}
	}
}

func TestFabricOptionValidation(t *testing.T) {
	graph := buildGraph(t, "line:2")
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow}
	cfg := DefaultConfig(buf, 64)
	for name, opts := range map[string]FabricOptions{
		"nil graph":       {},
		"bad shards":      {Graph: graph, Shards: -1},
		"same hosts":      {Graph: graph, SrcHost: 1, DstHost: 1},
		"host range":      {Graph: graph, DstHost: 9},
		"bad crash ctl":   {Graph: graph, Shards: 2, CrashWindows: map[int][]netem.Window{5: {{End: time.Second}}}},
		"bad crash order": {Graph: graph, CrashWindows: map[int][]netem.Window{0: {{Start: time.Second, End: time.Second}}}},
	} {
		if _, err := NewFabric(cfg, opts); err == nil {
			t.Errorf("%s: NewFabric succeeded", name)
		}
	}
}

// TestFabricSoak builds a ≥1000-switch leaf-spine fabric and pushes a
// workload across it — the CI soak job's entry point (FABRIC_SOAK=1,
// typically under -race). Skipped by default: it allocates the full fabric.
func TestFabricSoak(t *testing.T) {
	if os.Getenv("FABRIC_SOAK") == "" {
		t.Skip("set FABRIC_SOAK=1 to run the 1000-switch fabric soak")
	}
	graph := buildGraph(t, "leafspine:leaves=1016,spines=8,hosts=16")
	if graph.NumSwitches() < 1000 {
		t.Fatalf("soak fabric has %d switches", graph.NumSwitches())
	}
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
	fb, err := NewFabric(DefaultConfig(buf, 256), FabricOptions{
		Graph:   graph,
		Shards:  4,
		Install: topo.InstallPath,
		SrcHost: 0, DstHost: 9, // different leaves: a 3-hop path
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(fabricPktgen(graph, 60, 9), 200, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != int64(len(sched)) {
		t.Errorf("delivered %d of %d", res.FramesDelivered, len(sched))
	}
	if res.BufferUnitsLeaked != 0 || res.BufferBytesLeaked != 0 {
		t.Errorf("leaked %d units / %d bytes", res.BufferUnitsLeaked, res.BufferBytesLeaked)
	}
	if res.DupEmissions != 0 || res.OrderViolations != 0 || res.Misdelivered != 0 {
		t.Errorf("dups %d, misorders %d, misdelivered %d", res.DupEmissions, res.OrderViolations, res.Misdelivered)
	}
	t.Logf("soak: %d switches, %d frames, setup mean %.3fms, packet_ins %d, path installs %d",
		res.Switches, res.FramesSent, res.FlowSetupDelay.Mean()*1e3, res.PacketIns, res.PathInstalls)
}
