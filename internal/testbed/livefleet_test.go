package testbed

import (
	"os"
	"runtime"
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/netem/tcpchaos"
)

// countFDs reads /proc/self/fd — the leak oracle for sockets.
func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc/self/fd: %v", err)
	}
	return len(ents)
}

// leakCheck snapshots goroutines and fds, returning a function that
// asserts both have returned to (near) baseline. Goroutines get slack for
// runtime internals; fds must come back exactly (sockets are what we pin).
func leakCheck(t *testing.T) func() {
	t.Helper()
	runtime.GC()
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs(t)
	return func() {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			runtime.GC()
			g, f := runtime.NumGoroutine(), countFDs(t)
			if g <= baseGoroutines+2 && f <= baseFDs {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Fatalf("leak: %d goroutines (base %d), %d fds (base %d)\n%s",
					g, baseGoroutines, f, baseFDs, buf[:n])
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
}

func TestLiveFleetCleanConvergence(t *testing.T) {
	check := leakCheck(t)
	lf, err := NewLiveFleet(LiveFleetConfig{Agents: 8})
	if err != nil {
		t.Fatal(err)
	}
	if failed := lf.Converge(10 * time.Second); failed != 0 {
		t.Errorf("%d/8 agents failed to converge on a clean network", failed)
	}
	st := lf.Server().Stats()
	if st.Accepted < 8 || st.MsgsIn == 0 || st.MsgsOut == 0 {
		t.Errorf("server stats = %+v", st)
	}
	if err := lf.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	check()
}

// TestLiveFleetSurvivesChaos is the gating slice of the acceptance soak: a
// small fleet through an aggressive fault profile — every agent must still
// converge (possibly after several reconnects), and teardown must leak
// nothing.
func TestLiveFleetSurvivesChaos(t *testing.T) {
	check := leakCheck(t)
	lf, err := NewLiveFleet(LiveFleetConfig{
		Agents: 8,
		Chaos: tcpchaos.Profile{
			Seed:         42,
			Latency:      time.Millisecond,
			Jitter:       2 * time.Millisecond,
			PartialWrite: 0.3,
			Truncate:     0.005,
			Reset:        0.005,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := lf.Converge(30 * time.Second); failed != 0 {
		t.Errorf("%d/8 agents failed to converge through chaos (reconnects %d, disconnects %d)",
			failed, lf.Reconnects(), lf.Disconnects())
	}
	if err := lf.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	check()
}

// TestLiveFleetMassReconnect drops every control connection at once
// (KillAll — the management-network blip) and requires the whole fleet to
// re-handshake and re-install rules.
func TestLiveFleetMassReconnect(t *testing.T) {
	check := leakCheck(t)
	lf, err := NewLiveFleet(LiveFleetConfig{
		Agents: 8,
		Chaos:  tcpchaos.Profile{Seed: 1, Latency: 100 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if failed := lf.Converge(10 * time.Second); failed != 0 {
		t.Fatalf("%d agents failed pre-kill convergence", failed)
	}
	lf.Proxy().KillAll()
	// Every agent must notice (disconnect), redial, and converge again.
	if failed := lf.Converge(30 * time.Second); failed != 0 {
		t.Errorf("%d/8 agents failed to reconverge after KillAll (reconnects %d)",
			failed, lf.Reconnects())
	}
	if lf.Reconnects() == 0 {
		t.Error("no reconnects recorded after KillAll")
	}
	if err := lf.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	check()
}

// TestLiveFleetBlackholeRecovery runs a fleet through a blackhole window:
// during the window keepalives die on both sides, after it the fleet must
// reconverge via reconnect.
func TestLiveFleetBlackholeRecovery(t *testing.T) {
	check := leakCheck(t)
	lf, err := NewLiveFleet(LiveFleetConfig{
		Agents:       4,
		EchoInterval: 100 * time.Millisecond,
		Chaos: tcpchaos.Profile{
			Seed: 9,
			// The window opens shortly after assembly and lasts 1s —
			// several keepalive periods of total silence.
			Blackholes: []netem.Window{{Start: 500 * time.Millisecond, End: 1500 * time.Millisecond}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Second) // ride through the window
	if failed := lf.Converge(30 * time.Second); failed != 0 {
		t.Errorf("%d/4 agents failed to reconverge after blackhole (reconnects %d, disconnects %d)",
			failed, lf.Reconnects(), lf.Disconnects())
	}
	if err := lf.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	check()
}

// TestLiveFleetSoak is the full acceptance soak: ≥256 agents through the
// chaos proxy under -race. Gated behind LIVE_SOAK=1 — minutes of wall
// clock and thousands of goroutines.
func TestLiveFleetSoak(t *testing.T) {
	if os.Getenv("LIVE_SOAK") == "" {
		t.Skip("set LIVE_SOAK=1 to run the 256-agent live soak")
	}
	check := leakCheck(t)
	start := time.Now()
	lf, err := NewLiveFleet(LiveFleetConfig{
		Agents: 256,
		Chaos: tcpchaos.Profile{
			Seed:         2024,
			Latency:      500 * time.Microsecond,
			Jitter:       time.Millisecond,
			PartialWrite: 0.2,
			Truncate:     0.002,
			Reset:        0.002,
			Blackholes:   []netem.Window{{Start: 10 * time.Second, End: 12 * time.Second}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: full convergence through latency/partial-write/kill chaos.
	if failed := lf.Converge(60 * time.Second); failed != 0 {
		t.Fatalf("round 1: %d/256 agents failed to converge", failed)
	}
	// Mass failure: drop every control connection at once, reconverge.
	lf.Proxy().KillAll()
	if failed := lf.Converge(120 * time.Second); failed != 0 {
		t.Fatalf("round 2 (post-KillAll): %d/256 agents failed to reconverge (reconnects %d)",
			failed, lf.Reconnects())
	}
	// Ride through the blackhole window (10s–12s after proxy start), then
	// prove liveness once more. The window is placed relative to the proxy's
	// start, which is within milliseconds of ours — sleep until it has
	// definitely closed. On a fast machine rounds 1–2 finish well before
	// 10s, so this is where the fleet sits through total silence.
	if until := time.Until(start.Add(13 * time.Second)); until > 0 {
		time.Sleep(until)
	}
	if failed := lf.Converge(120 * time.Second); failed != 0 {
		t.Fatalf("round 3 (post-blackhole): %d/256 agents failed", failed)
	}
	st := lf.Server().Stats()
	ps := lf.Proxy().Stats()
	if ps.BytesSwallow == 0 {
		// 512 keepalive streams tick every 150ms; a 2s blackhole that
		// swallowed nothing means the window never overlapped live traffic.
		t.Error("blackhole window swallowed no bytes — window never engaged")
	}
	t.Logf("soak: server %+v", st)
	t.Logf("soak: proxy %+v, fleet reconnects %d disconnects %d",
		ps, lf.Reconnects(), lf.Disconnects())
	if err := lf.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	check()
}
