package testbed

import (
	"testing"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
)

func runLine(t *testing.T, g openflow.BufferGranularity, switches int, rate float64, flows int) *Result {
	t.Helper()
	buf := openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 50}
	lt, err := NewLine(DefaultConfig(buf, 256), switches)
	if err != nil {
		t.Fatalf("NewLine: %v", err)
	}
	sched, err := pktgen.SinglePacketFlows(pktgenConfig(rate), flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lt.Run(sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestLineDeliversEndToEnd(t *testing.T) {
	for _, switches := range []int{1, 2, 3} {
		res := runLine(t, openflow.GranularityPacket, switches, 40, 100)
		if res.FramesDelivered != 100 {
			t.Errorf("%d switches: delivered %d of 100", switches, res.FramesDelivered)
		}
		if res.FlowSetupDelay.Count() != 100 {
			t.Errorf("%d switches: setup samples = %d", switches, res.FlowSetupDelay.Count())
		}
	}
}

func TestLineRequestAmplification(t *testing.T) {
	// Every hop misses independently: n switches cost n packet_ins per
	// flow.
	one := runLine(t, openflow.GranularityPacket, 1, 30, 100)
	three := runLine(t, openflow.GranularityPacket, 3, 30, 100)
	if one.PacketIns != 100 {
		t.Errorf("1 switch: packet_ins = %d, want 100", one.PacketIns)
	}
	if three.PacketIns != 300 {
		t.Errorf("3 switches: packet_ins = %d, want 300", three.PacketIns)
	}
	// And the end-to-end setup delay grows with hops.
	if three.FlowSetupDelay.Mean() <= one.FlowSetupDelay.Mean() {
		t.Errorf("3-hop setup %g not above 1-hop %g",
			three.FlowSetupDelay.Mean(), one.FlowSetupDelay.Mean())
	}
}

func TestLineBufferBenefitCompounds(t *testing.T) {
	noBuf := runLine(t, openflow.GranularityNone, 3, 40, 200)
	buf := runLine(t, openflow.GranularityPacket, 3, 40, 200)
	if buf.CtrlLoadToControllerMbps > 0.3*noBuf.CtrlLoadToControllerMbps {
		t.Errorf("3-hop buffered load %g not well below no-buffer %g",
			buf.CtrlLoadToControllerMbps, noBuf.CtrlLoadToControllerMbps)
	}
	if buf.FramesDelivered != noBuf.FramesDelivered {
		t.Errorf("delivery mismatch: %d vs %d", buf.FramesDelivered, noBuf.FramesDelivered)
	}
}

func TestLineFlowGranularityAcrossHops(t *testing.T) {
	// Flow granularity still sends exactly one request per flow per hop on
	// the multi-packet workload.
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
	lt, err := NewLine(DefaultConfig(buf, 256), 2)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := pktgen.InterleavedBursts(pktgenConfig(60), 20, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lt.Run(sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDelivered != int64(len(sched)) {
		t.Fatalf("delivered %d of %d", res.FramesDelivered, len(sched))
	}
	if res.PacketIns != 40 { // 20 flows × 2 hops
		t.Errorf("packet_ins = %d, want 40", res.PacketIns)
	}
}

func TestLineSingleSwitchMatchesPacketCounts(t *testing.T) {
	// A 1-switch line is the Fig. 1 topology; its protocol behaviour must
	// match the single-switch testbed.
	line := runLine(t, openflow.GranularityPacket, 1, 40, 150)
	single := runStudyA(t, openflow.GranularityPacket, 256, 40, 150)
	if line.PacketIns != single.PacketIns {
		t.Errorf("packet_ins: line %d vs single %d", line.PacketIns, single.PacketIns)
	}
	if line.FramesDelivered != single.FramesDelivered {
		t.Errorf("delivered: line %d vs single %d", line.FramesDelivered, single.FramesDelivered)
	}
}

func TestLineValidation(t *testing.T) {
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityNone}
	if _, err := NewLine(DefaultConfig(buf, 16), 0); err == nil {
		t.Error("NewLine(0) succeeded")
	}
	lt, err := NewLine(DefaultConfig(buf, 16), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lt.Run(nil); err == nil {
		t.Error("Run(nil) succeeded")
	}
	if len(lt.Switches()) != 2 || lt.Controller() == nil || len(lt.Capture()) != 2 {
		t.Error("accessors inconsistent")
	}
}
