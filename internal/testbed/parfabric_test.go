package testbed

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/telemetry"
	"sdnbuffer/internal/topo"
)

// The parallel-kernel contract (DESIGN.md §15): a fabric run at any
// KernelWorkers count produces the same FabricResult as the serial kernel,
// field for field. These tests pin that with reflect.DeepEqual across
// topology families, install modes, sharding, crash windows, and hop
// tracking, at workers ∈ {1, 2, 8}.

// runFabricWorkers builds and runs one fabric workload at the given worker
// count and returns the fabric, its result, and the kernel's executed-event
// count.
func runFabricWorkers(t *testing.T, spec string, opts FabricOptions, seed int64, workers, flows int) (*Fabric, *FabricResult, uint64) {
	t.Helper()
	graph := buildGraph(t, spec)
	opts.Graph = graph
	opts.KernelWorkers = workers
	buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
	cfg := DefaultConfig(buf, 256)
	cfg.Seed = seed
	fb, err := NewFabric(cfg, opts)
	if err != nil {
		t.Fatalf("NewFabric(%s, workers=%d): %v", spec, workers, err)
	}
	if workers > 1 && fb.ParKernel() == nil {
		t.Fatalf("%s: workers=%d still on the serial kernel", spec, workers)
	}
	if workers <= 1 && fb.ParKernel() != nil {
		t.Fatalf("%s: workers=%d built a parallel kernel", spec, workers)
	}
	sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, 40, fb.opts.DstHost), flows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fb.Run(sched)
	if err != nil {
		t.Fatalf("Run(%s, workers=%d): %v", spec, workers, err)
	}
	return fb, res, fb.Runner().Executed()
}

// diffResults reports every field where two FabricResults disagree, so a
// divergence names the metric instead of dumping two structs.
func diffResults(t *testing.T, label string, serial, par *FabricResult) {
	t.Helper()
	if reflect.DeepEqual(serial, par) {
		return
	}
	sv := reflect.ValueOf(*serial)
	pv := reflect.ValueOf(*par)
	typ := sv.Type()
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(sv.Field(i).Interface(), pv.Field(i).Interface()) {
			t.Errorf("%s: %s: serial %v != parallel %v",
				label, typ.Field(i).Name, sv.Field(i).Interface(), pv.Field(i).Interface())
		}
	}
	// Result is embedded; walk it too for field names.
	sr := reflect.ValueOf(serial.Result)
	pr := reflect.ValueOf(par.Result)
	rt := sr.Type()
	for i := 0; i < rt.NumField(); i++ {
		if !reflect.DeepEqual(sr.Field(i).Interface(), pr.Field(i).Interface()) {
			t.Errorf("%s: Result.%s: serial %v != parallel %v",
				label, rt.Field(i).Name, sr.Field(i).Interface(), pr.Field(i).Interface())
		}
	}
}

func TestParallelFabricMatchesSerial(t *testing.T) {
	// Every topology family the repo ships, under both install modes, with
	// hop tracking on: the parallel kernel must reproduce the serial run
	// exactly — results, executed-event counts, final virtual time, and the
	// per-hop time records of every flow.
	cases := []struct {
		spec string
		opts FabricOptions
	}{
		{"line:4", FabricOptions{TrackHops: true}},
		{"line:4", FabricOptions{Install: topo.InstallPath, TrackHops: true}},
		{"leafspine:leaves=4,spines=2", FabricOptions{TrackHops: true}},
		{"fattree:pods=2,leaves=2,spines=2,cores=2", FabricOptions{Install: topo.InstallPath}},
		{"random:nodes=12,extra=4,seed=7,hosts=4", FabricOptions{SrcHost: 0, DstHost: 3, TrackHops: true}},
	}
	for _, c := range cases {
		sfb, sres, sexec := runFabricWorkers(t, c.spec, c.opts, 1, 1, 60)
		if sres.FramesDelivered != 60 {
			t.Fatalf("%s: serial baseline delivered %d of 60", c.spec, sres.FramesDelivered)
		}
		for _, workers := range []int{2, 8} {
			label := fmt.Sprintf("%s workers=%d", c.spec, workers)
			pfb, pres, pexec := runFabricWorkers(t, c.spec, c.opts, 1, workers, 60)
			diffResults(t, label, sres, pres)
			if sexec != pexec {
				t.Errorf("%s: executed %d events, serial %d", label, pexec, sexec)
			}
			if sn, pn := sfb.Runner().Now(), pfb.Runner().Now(); sn != pn {
				t.Errorf("%s: final virtual time %v, serial %v", label, pn, sn)
			}
			if c.opts.TrackHops {
				for flow := 0; flow < 60; flow++ {
					se, sx, sok := sfb.HopRecord(flow)
					pe, px, pok := pfb.HopRecord(flow)
					if sok != pok {
						t.Fatalf("%s: flow %d hop record complete=%v, serial %v", label, flow, pok, sok)
					}
					if !reflect.DeepEqual(se, pe) || !reflect.DeepEqual(sx, px) {
						t.Errorf("%s: flow %d hop times diverge:\n serial %v / %v\n par    %v / %v",
							label, flow, se, sx, pe, px)
					}
				}
			}
		}
	}
}

func TestParallelFabricSeedSweepMatchesSerial(t *testing.T) {
	// Seeded random topologies under random seeds: the wiring, the routing,
	// and the workload all vary, the equality must not.
	for seed := int64(1); seed <= 4; seed++ {
		spec := fmt.Sprintf("random:nodes=%d,extra=%d,seed=%d,hosts=4", 8+seed*2, seed, seed)
		opts := FabricOptions{SrcHost: 0, DstHost: 3}
		_, sres, sexec := runFabricWorkers(t, spec, opts, seed, 1, 40)
		_, pres, pexec := runFabricWorkers(t, spec, opts, seed, 8, 40)
		diffResults(t, spec, sres, pres)
		if sexec != pexec {
			t.Errorf("%s: executed %d events, serial %d", spec, pexec, sexec)
		}
		if sres.DupEmissions != 0 || sres.OrderViolations != 0 || sres.Misdelivered != 0 {
			t.Errorf("%s: oracle violations in baseline: %+v", spec, sres)
		}
	}
}

func TestParallelFabricShardedCrashMatchesSerial(t *testing.T) {
	// The hardest case for the replicated crash toggles: two shards, a crash
	// window over the shard mastering the entry switch, failover and
	// re-request traffic in flight. Handoffs, drops, and every derived
	// metric must match the serial run at any worker count.
	opts := FabricOptions{
		Shards: 2,
		CrashWindows: map[int][]netem.Window{
			0: {{Start: 2 * time.Millisecond, End: 60 * time.Millisecond}},
		},
	}
	_, sres, sexec := runFabricWorkers(t, "line:4", opts, 1, 1, 80)
	if sres.Handoffs == 0 || sres.CtlDropped == 0 {
		t.Fatalf("crash baseline inert: handoffs %d, dropped %d", sres.Handoffs, sres.CtlDropped)
	}
	for _, workers := range []int{2, 8} {
		label := fmt.Sprintf("crash workers=%d", workers)
		_, pres, pexec := runFabricWorkers(t, "line:4", opts, 1, workers, 80)
		diffResults(t, label, sres, pres)
		if sexec != pexec {
			t.Errorf("%s: executed %d events, serial %d (shadow events must stay uncounted)", label, pexec, sexec)
		}
	}
}

func TestParallelFabricTelemetryStableAcrossWorkers(t *testing.T) {
	// The merged telemetry view is deterministic in the worker count: spans
	// and flow records from per-domain shard recorders fold identically
	// whether 2 or 8 goroutines executed the windows. (It is documented as
	// not byte-identical to a serial recorder — that is the one divergence
	// the shard merge allows.)
	run := func(workers int) (*telemetry.Recorder, *FabricResult) {
		graph := buildGraph(t, "line:4")
		buf := openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50}
		cfg := DefaultConfig(buf, 256)
		cfg.Telemetry = &telemetry.Config{}
		fb, err := NewFabric(cfg, FabricOptions{Graph: graph, KernelWorkers: workers, TrackHops: true})
		if err != nil {
			t.Fatal(err)
		}
		sched, err := pktgen.SinglePacketFlows(fabricPktgen(graph, 40, 1), 50)
		if err != nil {
			t.Fatal(err)
		}
		res, err := fb.Run(sched)
		if err != nil {
			t.Fatal(err)
		}
		return fb.Telemetry(), res
	}
	tel2, res2 := run(2)
	tel8, res8 := run(8)
	diffResults(t, "telemetry workers 2 vs 8", res2, res8)
	s2, s8 := tel2.Tracer().Snapshot(), tel8.Tracer().Snapshot()
	if len(s2) == 0 {
		t.Fatal("no spans recorded")
	}
	if !reflect.DeepEqual(s2, s8) {
		t.Errorf("merged span streams diverge: %d vs %d spans", len(s2), len(s8))
	}
	f2, f8 := tel2.Flows().Records(), tel8.Flows().Records()
	if len(f2) == 0 {
		t.Fatal("no flow records exported")
	}
	if !reflect.DeepEqual(f2, f8) {
		t.Errorf("merged flow records diverge: %d vs %d records", len(f2), len(f8))
	}
}

// TestParallelFabricSoak is the CI soak entry point (PARKERNEL_SOAK=1,
// typically under -race): 25 seeds of random topologies, serial vs 8
// workers, full-result equality on every one. Skipped by default.
func TestParallelFabricSoak(t *testing.T) {
	if os.Getenv("PARKERNEL_SOAK") == "" {
		t.Skip("set PARKERNEL_SOAK=1 to run the 25-seed parallel-kernel soak")
	}
	for seed := int64(1); seed <= 25; seed++ {
		spec := fmt.Sprintf("random:nodes=%d,extra=%d,seed=%d,hosts=4", 8+seed%7*2, seed%5, seed)
		opts := FabricOptions{SrcHost: 0, DstHost: 3, Shards: 1 + int(seed%2)}
		_, sres, sexec := runFabricWorkers(t, spec, opts, seed, 1, 60)
		_, pres, pexec := runFabricWorkers(t, spec, opts, seed, 8, 60)
		diffResults(t, spec, sres, pres)
		if sexec != pexec {
			t.Errorf("%s: executed %d events, serial %d", spec, pexec, sexec)
		}
	}
}
