package testbed

import (
	"os"
	"testing"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/core"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/switchd"
)

// overloadConfig builds a flow-granularity testbed whose pool holds a byte
// budget of budget bytes and whose ladder uses test-scale holds: escalation
// decides in 150µs, recovery in 2ms.
func overloadConfig(seed int64, budget int64) Config {
	cfg := DefaultConfig(openflow.FlowBufferConfig{
		Granularity:         openflow.GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxRerequests:       8,
		RerequestBackoffPct: 200,
	}, 256)
	cfg.Seed = seed
	cfg.Forwarder.CombinedFlowMod = true
	cfg.Switch.Datapath.Overload = &core.OverloadConfig{
		ByteBudget:    budget,
		AdmitFraction: 1,
		Ladder: &core.LadderConfig{
			UpThreshold:   0.9,
			DownThreshold: 0.5,
			HoldUp:        150 * time.Microsecond,
			HoldDown:      2 * time.Millisecond,
		},
	}
	return cfg
}

// TestOverloadLadderDegradesAndRecoversAtSwitch is the acceptance pin: a
// miss storm worth twice the pool's byte budget drives the switch down the
// ladder flow → packet → no-buffer, and after the controller answers the
// storm the ladder walks back up to flow granularity with zero pool units
// and zero pool bytes left behind.
func TestOverloadLadderDegradesAndRecoversAtSwitch(t *testing.T) {
	const budget = 8000 // 8 frames of the 1000-byte workload
	cfg := overloadConfig(1, budget)
	tb, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	pcfg := pktgenConfig(100)
	pcfg.Jitter = 0
	// 16 single-packet flows × 1000 bytes = 2× the byte budget, all live at
	// once (round-robin emission, back-to-back at 100 Mbps).
	sched, err := pktgen.MissStorm(pcfg, 16, 1, 0)
	if err != nil {
		t.Fatalf("MissStorm: %v", err)
	}
	res, err := tb.Run(sched)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	lad, ok := tb.Switch().Datapath().Mechanism().(*core.Ladder)
	if !ok {
		t.Fatalf("mechanism is %T, want *core.Ladder", tb.Switch().Datapath().Mechanism())
	}
	tr := lad.Transitions()
	if len(tr) < 2 ||
		tr[0].From != core.LevelFlow || tr[0].To != core.LevelPacket ||
		tr[1].From != core.LevelPacket || tr[1].To != core.LevelNoBuffer {
		t.Fatalf("transitions = %+v, want prefix flow→packet→no-buffer", tr)
	}
	if res.LadderMaxLevel < uint8(core.LevelNoBuffer) {
		t.Errorf("LadderMaxLevel = %d, want ≥ no-buffer", res.LadderMaxLevel)
	}
	if res.LadderLevelEnd != uint8(core.LevelFlow) {
		t.Errorf("LadderLevelEnd = %v, want recovery to flow granularity",
			core.DegradeLevel(res.LadderLevelEnd))
	}
	if res.BufferUnitsLeaked != 0 {
		t.Errorf("%d pool units leaked", res.BufferUnitsLeaked)
	}
	if res.BufferBytesLeaked != 0 {
		t.Errorf("%d pool bytes leaked", res.BufferBytesLeaked)
	}
	if res.BufferRejectedBytes == 0 {
		t.Error("no bytes rejected by the budget — storm never exceeded it?")
	}
	if res.FramesDelivered != int64(res.FramesSent) {
		t.Errorf("delivered %d of %d — degraded rungs lost traffic", res.FramesDelivered, res.FramesSent)
	}
}

// TestOverloadIdleProtectionPerturbsNothing is the backward-compatibility
// pin: overload protection compiled in but idle (zero byte budget, no
// ladder, zero pacer, unbounded admission) must reproduce the legacy run
// bit for bit — same metrics, same counters, no extra RNG draws or events.
func TestOverloadIdleProtectionPerturbsNothing(t *testing.T) {
	run := func(withIdleKnobs bool) *Result {
		cfg := DefaultConfig(openflow.FlowBufferConfig{
			Granularity:        openflow.GranularityFlow,
			RerequestTimeoutMs: 50,
		}, 256)
		cfg.Seed = 3
		cfg.Forwarder.CombinedFlowMod = true
		if withIdleKnobs {
			cfg.Switch.Datapath.Overload = &core.OverloadConfig{}
			cfg.Switch.PacketInPacer = switchd.PacerConfig{}
			cfg.Controller.Admission = controller.AdmissionConfig{}
		}
		tb, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		pcfg := pktgenConfig(50)
		pcfg.Seed = 3
		sched, err := pktgen.InterleavedBursts(pcfg, 30, 10, 5)
		if err != nil {
			t.Fatalf("InterleavedBursts: %v", err)
		}
		res, err := tb.Run(sched)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	legacy, idle := run(false), run(true)
	if *legacy != *idle {
		t.Errorf("idle overload knobs perturbed the run:\nlegacy: %+v\nidle:   %+v", legacy, idle)
	}
}

// TestOverloadSoak is the long-running seed sweep behind CI's non-gating
// overload-soak job: many seeded miss storms through the full protection
// stack (ladder + pacer + controller admission) under -race, asserting on
// every seed that the ladder lands back at flow granularity, the pool
// drains to zero units and bytes, and no duplicate or reordered emission
// slips through the degraded rungs. Skipped unless OVERLOAD_SOAK is set.
func TestOverloadSoak(t *testing.T) {
	if os.Getenv("OVERLOAD_SOAK") == "" {
		t.Skip("set OVERLOAD_SOAK=1 to run the long overload seed sweep")
	}
	for seed := int64(1); seed <= 25; seed++ {
		cfg := overloadConfig(seed, 16000)
		cfg.Switch.Datapath.Overload.AdmitFraction = 0.25
		cfg.Switch.PacketInPacer = switchd.PacerConfig{RatePerSec: 4000, Burst: 32}
		cfg.Controller.Admission = controller.AdmissionConfig{MaxPacketInQueue: 64}
		cfg.Switch.Datapath.BufferExpiry = 250 * time.Millisecond
		tb, err := New(cfg)
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		pcfg := pktgenConfig(100)
		pcfg.Seed = seed
		sched, err := pktgen.MissStorm(pcfg, 96, 4, 64)
		if err != nil {
			t.Fatalf("seed %d: MissStorm: %v", seed, err)
		}
		res, err := tb.Run(sched)
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}
		if res.LadderLevelEnd != uint8(core.LevelFlow) {
			t.Errorf("seed %d: ladder stuck at %v", seed, core.DegradeLevel(res.LadderLevelEnd))
		}
		if res.BufferUnitsLeaked != 0 || res.BufferBytesLeaked != 0 {
			t.Errorf("seed %d: leaked %d units / %d bytes",
				seed, res.BufferUnitsLeaked, res.BufferBytesLeaked)
		}
		// No ordering assertion: a rejected append's full-payload fallback may
		// overtake its flow's buffered queue — the pre-existing overflow
		// semantics of the fallback path (same as the maxPerFlow bound).
		if res.DupEmissions != 0 {
			t.Errorf("seed %d: %d duplicate emissions", seed, res.DupEmissions)
		}
		t.Logf("seed %d: sent=%d delivered=%d maxLevel=%s transitions=%d paced=%d shed=%d rejected=%dB misorders=%d",
			seed, res.FramesSent, res.FramesDelivered, core.DegradeLevel(res.LadderMaxLevel),
			res.LadderTransitions, res.PacerDrops, res.CtrlShedPacketIns, res.BufferRejectedBytes,
			res.OrderViolations)
	}
}
