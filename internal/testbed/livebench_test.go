package testbed

import "testing"

// TestMeasureLiveFanoutSmoke runs one tiny cell in each write-path mode —
// the gating slice of the scripts/livebench.go grid. Both paths must
// deliver every flow_mod (they are never shed) and report sane rates.
func TestMeasureLiveFanoutSmoke(t *testing.T) {
	for _, direct := range []bool{false, true} {
		row, err := MeasureLiveFanout(4, 50, direct)
		if err != nil {
			t.Fatalf("direct=%v: %v", direct, err)
		}
		if row.Seconds <= 0 || row.PacketInsPS <= 0 || row.MsgsOutPS <= 0 {
			t.Errorf("direct=%v: degenerate row %+v", direct, row)
		}
		wantMode := "queued"
		if direct {
			wantMode = "direct"
		}
		if row.QueueMode != wantMode {
			t.Errorf("direct=%v: QueueMode = %q, want %q", direct, row.QueueMode, wantMode)
		}
	}
}

func TestMeasureLiveFanoutRejectsBadArgs(t *testing.T) {
	if _, err := MeasureLiveFanout(0, 10, false); err == nil {
		t.Error("conns=0 accepted")
	}
	if _, err := MeasureLiveFanout(1, 0, false); err == nil {
		t.Error("msgs=0 accepted")
	}
}
