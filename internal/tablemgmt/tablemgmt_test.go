package tablemgmt

import (
	"fmt"
	"net/netip"
	"testing"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// flowMatch builds a distinct per-flow match keyed by source port, destined
// to dst — shaped like the forwarder's exact matches but only the identity
// matters to the tracker.
func flowMatch(tpSrc uint16, dst netip.Addr) openflow.Match {
	return openflow.Match{
		InPort: 1,
		DLType: packet.EtherTypeIPv4,
		NWDst:  dst,
		TPSrc:  tpSrc,
	}
}

func mustTracker(t *testing.T, cfg Config) *Tracker {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return tr
}

// fill installs n per-flow rules on sw, all destined into 10.0.1.0/24 out
// port 2, and returns the messages from the last install.
func fill(t *testing.T, tr *Tracker, sw, n int) []openflow.Message {
	t.Helper()
	var msgs []openflow.Message
	for i := 0; i < n; i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, 1, byte(10 + i)})
		msgs = tr.NoteInstall(sw, flowMatch(uint16(1000+i), dst), 100, dst, 2)
	}
	return msgs
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{TableCapacity: -1},
		{Threshold: -0.1},
		{Threshold: 1.5},
		{PrefixBits: 33},
		{PrefixBits: -8},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", bad)
		}
	}
	tr := mustTracker(t, Config{TableCapacity: 8})
	cfg := tr.Config()
	if cfg.Threshold != 0.75 || cfg.PrefixBits != 24 || cfg.AggPriority != 50 {
		t.Errorf("defaults = %+v, want threshold 0.75, /24, priority 50", cfg)
	}
}

func TestAggregationTriggersAtThreshold(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 8, RequestFlowRemoved: true})
	// Threshold 0.75×8 = 6: the first five installs must stay quiet.
	for i := 0; i < 5; i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, 1, byte(10 + i)})
		if msgs := tr.NoteInstall(0, flowMatch(uint16(1000+i), dst), 100, dst, 2); msgs != nil {
			t.Fatalf("install %d below threshold returned %d messages", i, len(msgs))
		}
	}
	dst := netip.AddrFrom4([4]byte{10, 0, 1, 15})
	msgs := tr.NoteInstall(0, flowMatch(1005, dst), 100, dst, 2)
	if len(msgs) != 7 {
		t.Fatalf("aggregation returned %d messages, want 1 flow_mod + 6 strict deletes", len(msgs))
	}
	agg, ok := msgs[0].(*openflow.FlowMod)
	if !ok || agg.Command != openflow.FlowModAdd {
		t.Fatalf("first message = %#v, want a FlowModAdd", msgs[0])
	}
	if agg.Priority != 50 {
		t.Errorf("aggregate priority %d, want 50 (below the per-flow 100)", agg.Priority)
	}
	if agg.Flags&openflow.FlowModFlagSendFlowRem == 0 {
		t.Error("aggregate does not request flow_removed despite RequestFlowRemoved")
	}
	if got := openflow.NWDstIgnoreBits(agg.Match.Wildcards); got != 8 {
		t.Errorf("aggregate NW_DST ignore bits = %d, want 8 (a /24)", got)
	}
	if want := netip.AddrFrom4([4]byte{10, 0, 1, 0}); agg.Match.NWDst != want {
		t.Errorf("aggregate NWDst = %v, want %v", agg.Match.NWDst, want)
	}
	if agg.Match.DLType != packet.EtherTypeIPv4 {
		t.Errorf("aggregate DLType = %#x, want IPv4", agg.Match.DLType)
	}
	// The strict deletes must subsume exactly the six per-flow rules, in the
	// deterministic sorted order (here: ascending TPSrc), each at the
	// per-flow priority so only the exact rule dies.
	for i, m := range msgs[1:] {
		del, ok := m.(*openflow.FlowMod)
		if !ok || del.Command != openflow.FlowModDeleteStrict {
			t.Fatalf("message %d = %#v, want a strict delete", i+1, m)
		}
		if del.Priority != 100 {
			t.Errorf("delete %d priority %d, want 100", i, del.Priority)
		}
		if want := uint16(1000 + i); del.Match.TPSrc != want {
			t.Errorf("delete %d is for TPSrc %d, want %d (sorted order)", i, del.Match.TPSrc, want)
		}
	}
	st := tr.Stats()
	if st.Aggregations != 1 || st.RulesCompressed != 6 {
		t.Errorf("stats = %+v, want 1 aggregation, 6 compressed", st)
	}
	// Occupancy: 6 installs + 1 aggregate; the deletes reconcile only when
	// their flow_removed notifications come back.
	if occ := tr.Occupancy(0); occ != 7 {
		t.Errorf("occupancy = %d, want 7 before the delete notifications", occ)
	}
}

func TestAggregationNeedsTwoRulesInAGroup(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 8})
	// Six rules, six distinct /24s: threshold crossed, nothing compressible.
	for i := 0; i < 6; i++ {
		dst := netip.AddrFrom4([4]byte{10, 0, byte(i), 9})
		if msgs := tr.NoteInstall(0, flowMatch(uint16(1000+i), dst), 100, dst, 2); msgs != nil {
			t.Fatalf("install %d aggregated a single-rule group: %d messages", i, len(msgs))
		}
	}
	if st := tr.Stats(); st.Aggregations != 0 {
		t.Errorf("aggregations = %d, want 0", st.Aggregations)
	}
}

func TestAggregationDisabledWithoutCapacity(t *testing.T) {
	tr := mustTracker(t, Config{})
	if msgs := fill(t, tr, 0, 20); msgs != nil {
		t.Fatalf("capacity-0 tracker aggregated: %d messages", len(msgs))
	}
	if occ := tr.Occupancy(0); occ != 0 {
		t.Errorf("capacity-0 tracker tracked occupancy %d", occ)
	}
}

func TestCovered(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 8})
	fill(t, tr, 0, 6) // triggers the 10.0.1.0/24 → port 2 aggregate
	if !tr.Covered(0, netip.AddrFrom4([4]byte{10, 0, 1, 200}), 2) {
		t.Error("in-prefix destination out the aggregate port not covered")
	}
	if tr.Covered(0, netip.AddrFrom4([4]byte{10, 0, 1, 200}), 3) {
		t.Error("covered despite a different egress port")
	}
	if tr.Covered(0, netip.AddrFrom4([4]byte{10, 0, 2, 200}), 2) {
		t.Error("covered despite a different /24")
	}
	if tr.Covered(1, netip.AddrFrom4([4]byte{10, 0, 1, 200}), 2) {
		t.Error("covered on a switch with no aggregate")
	}
	if tr.Covered(0, netip.MustParseAddr("fd00::1"), 2) {
		t.Error("covered a non-IPv4 destination")
	}
	if st := tr.Stats(); st.CoveredSkips != 1 {
		t.Errorf("covered skips = %d, want 1 (only the true case counts)", st.CoveredSkips)
	}
}

func TestFlowRemovedAccounting(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 8})
	msgs := fill(t, tr, 0, 6)
	// Reconcile the strict deletes: each victim's flow_removed drops the
	// estimate and forgets the rule.
	for _, m := range msgs[1:] {
		del := m.(*openflow.FlowMod)
		tr.NoteFlowRemoved(0, &openflow.FlowRemoved{Match: del.Match, Priority: del.Priority, Reason: openflow.RemovedDelete})
	}
	if occ := tr.Occupancy(0); occ != 1 {
		t.Fatalf("occupancy = %d after delete reconciliation, want 1 (the aggregate)", occ)
	}
	// The aggregate's own removal (e.g. eviction downstream) reopens the
	// prefix: no longer covered, and a fresh install wave may re-aggregate.
	agg := msgs[0].(*openflow.FlowMod)
	tr.NoteFlowRemoved(0, &openflow.FlowRemoved{Match: agg.Match, Priority: agg.Priority, Reason: openflow.RemovedEviction})
	if occ := tr.Occupancy(0); occ != 0 {
		t.Errorf("occupancy = %d after aggregate removal, want 0", occ)
	}
	if tr.Covered(0, netip.AddrFrom4([4]byte{10, 0, 1, 200}), 2) {
		t.Error("still covered after the aggregate was removed")
	}
	// Untracked removals and over-notification clamp at zero, never wrap.
	tr.NoteFlowRemoved(0, &openflow.FlowRemoved{Match: flowMatch(9999, netip.AddrFrom4([4]byte{10, 9, 9, 9})), Priority: 100})
	if occ := tr.Occupancy(0); occ != 0 {
		t.Errorf("occupancy = %d after spurious removal, want clamp at 0", occ)
	}
	if st := tr.Stats(); st.FlowRemovedSeen != 8 {
		t.Errorf("flow_removed seen = %d, want 8", st.FlowRemovedSeen)
	}
	// Reopened prefix: refilling the group re-triggers aggregation.
	if msgs := fill(t, tr, 0, 6); len(msgs) == 0 {
		t.Error("no re-aggregation after the prefix reopened")
	}
}

func TestNoteTableFull(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 64})
	fill(t, tr, 0, 3)
	tr.NoteTableFull(0)
	if occ := tr.Occupancy(0); occ != 2 {
		t.Errorf("occupancy = %d after reject, want 2", occ)
	}
	for i := 0; i < 5; i++ {
		tr.NoteTableFull(0)
	}
	if occ := tr.Occupancy(0); occ != 0 {
		t.Errorf("occupancy = %d, want clamp at 0", occ)
	}
	if st := tr.Stats(); st.TableFullErrors != 6 {
		t.Errorf("table-full errors = %d, want 6", st.TableFullErrors)
	}
}

func TestResetIsDeaggregation(t *testing.T) {
	tr := mustTracker(t, Config{TableCapacity: 8})
	fill(t, tr, 0, 6) // aggregate active on switch 0
	fill(t, tr, 1, 2) // no aggregate on switch 1
	tr.ResetAll()
	st := tr.Stats()
	if st.Deaggregations != 1 {
		t.Errorf("deaggregations = %d, want 1 (only the switch with an active aggregate)", st.Deaggregations)
	}
	if tr.Occupancy(0) != 0 || tr.Occupancy(1) != 0 {
		t.Errorf("occupancy after reset = %d/%d, want 0/0", tr.Occupancy(0), tr.Occupancy(1))
	}
	if tr.Covered(0, netip.AddrFrom4([4]byte{10, 0, 1, 200}), 2) {
		t.Error("covered after de-aggregation reset")
	}
}

// TestAggregationMessageOrderDeterministic re-runs the same install sequence
// and demands byte-identical message streams — the sweep's CSV determinism
// rests on this.
func TestAggregationMessageOrderDeterministic(t *testing.T) {
	render := func() string {
		tr := mustTracker(t, Config{TableCapacity: 8})
		var out string
		// Two competing groups with equal counts force the tie-break path.
		for i := 0; i < 3; i++ {
			dst := netip.AddrFrom4([4]byte{10, 0, 1, byte(10 + i)})
			for _, m := range tr.NoteInstall(0, flowMatch(uint16(1000+i), dst), 100, dst, 2) {
				out += fmt.Sprintf("%x\n", openflow.MustEncode(m, 0))
			}
			dst = netip.AddrFrom4([4]byte{10, 0, 2, byte(10 + i)})
			for _, m := range tr.NoteInstall(0, flowMatch(uint16(2000+i), dst), 100, dst, 3) {
				out += fmt.Sprintf("%x\n", openflow.MustEncode(m, 0))
			}
		}
		return out
	}
	first := render()
	if first == "" {
		t.Fatal("scenario never aggregated")
	}
	for i := 0; i < 20; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d diverged:\nfirst:\n%s\ngot:\n%s", i, first, got)
		}
	}
}
