// Package tablemgmt is the controller-side flow-table management layer: a
// per-switch occupancy tracker and a destination-aware wildcard aggregation
// policy ("Destination-aware Adaptive Traffic Flow Rule Aggregation",
// PAPERS.md). The paper treats the switch buffer as the scarce resource and
// assumes the flow table absorbs every flow_mod; at datacenter flow-arrival
// rates the table saturates first, and table-full → more misses → buffer
// pressure couples the two mechanisms (ROADMAP item 4). This package makes
// the table side of that coupling a controllable mechanism axis.
//
// The Tracker lives in the controller application (the fabric
// PathForwarder). It estimates each switch's table occupancy from the
// controller's own observable traffic — rules it installed, flow_removed
// notifications, all-tables-full errors — never by inspecting switch
// internals. When a switch's estimated occupancy crosses a configurable
// fraction of its table capacity, the tracker compresses that switch's
// largest group of per-flow rules sharing a destination prefix and egress
// port into one lower-priority wildcard rule (DLType + masked NW_DST), then
// strict-deletes the per-flow rules it subsumed. De-aggregation is tied to
// the PR-8 reroute protocol: a routing-snapshot swap flushes every mastered
// switch, so the tracker resets with it and per-flow rules reinstall against
// the new topology, keeping the aggregate/reroute interaction loop-free.
//
// The tracker is confined to its owning controller shard's goroutine, like
// every other per-shard structure.
package tablemgmt

import (
	"bytes"
	"fmt"
	"net/netip"
	"sort"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// Config parameterises the tracker.
type Config struct {
	// TableCapacity is the per-switch rule budget occupancy is measured
	// against; it should match the switches' configured table capacity.
	// Zero disables aggregation (nothing to saturate).
	TableCapacity int
	// Threshold is the occupancy fraction at which aggregation triggers
	// (default 0.75).
	Threshold float64
	// PrefixBits is the destination-prefix width of aggregate rules
	// (default 24).
	PrefixBits int
	// AggPriority is the priority of aggregate rules; it must be below the
	// per-flow rule priority so specific rules keep winning while both are
	// installed (default 50).
	AggPriority uint16
	// RequestFlowRemoved marks aggregate rules with OFPFF_SEND_FLOW_REM,
	// mirroring the per-flow forwarder configuration so occupancy tracking
	// sees their removal too.
	RequestFlowRemoved bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.75
	}
	if c.PrefixBits == 0 {
		c.PrefixBits = 24
	}
	if c.AggPriority == 0 {
		c.AggPriority = 50
	}
	return c
}

// groupKey identifies an aggregable set of per-flow rules: same destination
// prefix, same egress port.
type groupKey struct {
	prefix netip.Prefix
	port   uint16
}

// ruleInfo is one tracked per-flow rule.
type ruleInfo struct {
	priority uint16
	group    groupKey
	grouped  bool // false when the rule has no IPv4 destination to group by
}

// switchState is the tracker's model of one switch's table.
type switchState struct {
	installed  int // occupancy estimate: rules sent minus removals seen
	rules      map[openflow.Match]ruleInfo
	groups     map[groupKey]int
	aggregates map[netip.Prefix]uint16 // active aggregate rules: prefix → port
}

func newSwitchState() *switchState {
	return &switchState{
		rules:      make(map[openflow.Match]ruleInfo),
		groups:     make(map[groupKey]int),
		aggregates: make(map[netip.Prefix]uint16),
	}
}

// Stats are the tracker's lifetime counters.
type Stats struct {
	// Aggregations counts aggregate rules installed.
	Aggregations uint64
	// RulesCompressed counts per-flow rules strict-deleted because an
	// aggregate subsumed them.
	RulesCompressed uint64
	// Deaggregations counts reroute resets that discarded at least one
	// active aggregate.
	Deaggregations uint64
	// CoveredSkips counts per-flow installs skipped because an aggregate
	// already forwards the destination.
	CoveredSkips uint64
	// TableFullErrors counts all-tables-full rejections observed.
	TableFullErrors uint64
	// FlowRemovedSeen counts flow_removed notifications consumed.
	FlowRemovedSeen uint64
}

// Tracker implements the policy. The zero value is unusable; use New.
type Tracker struct {
	cfg      Config
	switches map[int]*switchState
	stats    Stats
}

// New builds a tracker.
func New(cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if cfg.TableCapacity < 0 {
		return nil, fmt.Errorf("tablemgmt: negative table capacity %d", cfg.TableCapacity)
	}
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("tablemgmt: threshold %v outside [0,1]", cfg.Threshold)
	}
	if cfg.PrefixBits < 1 || cfg.PrefixBits > 32 {
		return nil, fmt.Errorf("tablemgmt: prefix bits %d outside [1,32]", cfg.PrefixBits)
	}
	return &Tracker{cfg: cfg, switches: make(map[int]*switchState)}, nil
}

// Config reports the effective (defaulted) configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Stats reports the tracker's counters.
func (t *Tracker) Stats() Stats { return t.stats }

// Occupancy reports the tracker's occupancy estimate for one switch.
func (t *Tracker) Occupancy(sw int) int {
	if s, ok := t.switches[sw]; ok {
		return s.installed
	}
	return 0
}

func (t *Tracker) state(sw int) *switchState {
	s, ok := t.switches[sw]
	if !ok {
		s = newSwitchState()
		t.switches[sw] = s
	}
	return s
}

// prefixOf maps a destination address into its aggregation prefix.
func (t *Tracker) prefixOf(dst netip.Addr) (netip.Prefix, bool) {
	if !dst.Is4() {
		return netip.Prefix{}, false
	}
	p, err := dst.Prefix(t.cfg.PrefixBits)
	if err != nil {
		return netip.Prefix{}, false
	}
	return p, true
}

// Covered reports whether an active aggregate rule on sw already forwards
// dst out the given port, so the per-flow install can be skipped (the
// caller still releases any buffered packet).
func (t *Tracker) Covered(sw int, dst netip.Addr, port uint16) bool {
	s, ok := t.switches[sw]
	if !ok {
		return false
	}
	pfx, ok := t.prefixOf(dst)
	if !ok {
		return false
	}
	aggPort, ok := s.aggregates[pfx]
	if ok && aggPort == port {
		t.stats.CoveredSkips++
		return true
	}
	return false
}

// NoteInstall records a per-flow rule the controller is sending to sw and
// returns any aggregation messages (one wildcard flow_mod plus the strict
// deletes of the per-flow rules it subsumes) to ship to the same switch,
// nil when the threshold hasn't been crossed.
func (t *Tracker) NoteInstall(sw int, m openflow.Match, priority uint16, dst netip.Addr, port uint16) []openflow.Message {
	if t.cfg.TableCapacity <= 0 {
		return nil
	}
	s := t.state(sw)
	info := ruleInfo{priority: priority}
	if pfx, ok := t.prefixOf(dst); ok {
		info.group = groupKey{prefix: pfx, port: port}
		info.grouped = true
	}
	if old, exists := s.rules[m]; exists {
		// Same match re-installed (replacement at the switch): occupancy
		// unchanged; regroup in case the egress moved.
		if old.grouped {
			s.groups[old.group]--
			if s.groups[old.group] <= 0 {
				delete(s.groups, old.group)
			}
		}
	} else {
		s.installed++
	}
	s.rules[m] = info
	if info.grouped {
		s.groups[info.group]++
	}
	if float64(s.installed) < t.cfg.Threshold*float64(t.cfg.TableCapacity) {
		return nil
	}
	return t.aggregate(sw, s)
}

// aggregate compresses the switch's most populous eligible group. The group
// choice is a total order (count desc, prefix asc, port asc) so it never
// depends on map iteration order.
func (t *Tracker) aggregate(sw int, s *switchState) []openflow.Message {
	var best groupKey
	bestN := 1 // require at least 2 rules: compressing 1 gains nothing
	for g, n := range s.groups {
		if _, done := s.aggregates[g.prefix]; done {
			continue
		}
		if n > bestN || (n == bestN && bestN > 1 && lessGroup(g, best)) {
			best, bestN = g, n
		}
	}
	if bestN < 2 {
		return nil
	}

	msgs := make([]openflow.Message, 0, bestN+1)
	msgs = append(msgs, t.aggregateRule(best))
	s.aggregates[best.prefix] = best.port
	s.installed++ // the aggregate rule itself
	t.stats.Aggregations++

	// Strict-delete every per-flow rule the aggregate subsumes. Deletion
	// order is the match set sorted by a total order on the match content,
	// again independent of map iteration.
	var victims []openflow.Match
	for m, info := range s.rules {
		if info.grouped && info.group == best {
			victims = append(victims, m)
		}
	}
	sortMatches(victims)
	for _, m := range victims {
		info := s.rules[m]
		msgs = append(msgs, &openflow.FlowMod{
			Match:    m,
			Command:  openflow.FlowModDeleteStrict,
			Priority: info.priority,
			BufferID: openflow.NoBuffer,
			OutPort:  openflow.PortNone,
		})
		delete(s.rules, m)
		t.stats.RulesCompressed++
	}
	delete(s.groups, best)
	return msgs
}

// aggregateRule builds the wildcard flow_mod for one destination group:
// match IPv4 traffic to the prefix, forward out the group's port, at a
// priority below the per-flow rules so specifics win during the handover.
func (t *Tracker) aggregateRule(g groupKey) *openflow.FlowMod {
	w := openflow.WildcardAll&^(openflow.WildcardDLType|openflow.WildcardNWDstAll) |
		openflow.WildcardNWDstPrefix(g.prefix.Bits())
	var flags uint16
	if t.cfg.RequestFlowRemoved {
		flags |= openflow.FlowModFlagSendFlowRem
	}
	return &openflow.FlowMod{
		Match: openflow.Match{
			Wildcards: w,
			DLType:    packet.EtherTypeIPv4,
			NWDst:     g.prefix.Masked().Addr(),
		},
		Command:  openflow.FlowModAdd,
		Priority: t.cfg.AggPriority,
		BufferID: openflow.NoBuffer,
		OutPort:  openflow.PortNone,
		Flags:    flags,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: g.port, MaxLen: 0xffff}},
	}
}

// NoteFlowRemoved consumes a flow_removed notification from sw: the
// occupancy estimate drops, the rule leaves its group, and a removed
// aggregate reopens its prefix.
func (t *Tracker) NoteFlowRemoved(sw int, fr *openflow.FlowRemoved) {
	t.stats.FlowRemovedSeen++
	s, ok := t.switches[sw]
	if !ok {
		return
	}
	if s.installed > 0 {
		s.installed--
	}
	if info, ok := s.rules[fr.Match]; ok {
		delete(s.rules, fr.Match)
		if info.grouped {
			s.groups[info.group]--
			if s.groups[info.group] <= 0 {
				delete(s.groups, info.group)
			}
		}
		return
	}
	// Not a tracked per-flow rule: an aggregate whose priority and
	// destination prefix match an active one reopens that prefix.
	if fr.Priority != t.cfg.AggPriority {
		return
	}
	if ig := openflow.NWDstIgnoreBits(fr.Match.Wildcards); ig > 0 && ig < 32 {
		if pfx, err := fr.Match.NWDst.Prefix(32 - int(ig)); err == nil {
			delete(s.aggregates, pfx)
		}
	}
}

// NoteTableFull consumes an all-tables-full rejection from sw: the last
// counted install never landed, so the estimate backs off by one.
func (t *Tracker) NoteTableFull(sw int) {
	t.stats.TableFullErrors++
	if s, ok := t.switches[sw]; ok && s.installed > 0 {
		s.installed--
	}
}

// Reset discards one switch's state — the de-aggregation protocol. The
// caller invokes it under the PR-8 reroute flush-all, which already removed
// every rule (per-flow and aggregate) from the switch, so per-flow rules
// reinstall against the new topology before any re-aggregation: the
// aggregate can never pin traffic to a pre-failure egress, keeping the
// reroute loop-freedom argument intact.
func (t *Tracker) Reset(sw int) {
	if s, ok := t.switches[sw]; ok {
		if len(s.aggregates) > 0 {
			t.stats.Deaggregations++
		}
		delete(t.switches, sw)
	}
}

// ResetAll is Reset over every tracked switch.
func (t *Tracker) ResetAll() {
	for sw, s := range t.switches {
		if len(s.aggregates) > 0 {
			t.stats.Deaggregations++
		}
		delete(t.switches, sw)
	}
}

// sortMatches orders matches by a total order on the match content so the
// strict-delete emission sequence never depends on map iteration order.
func sortMatches(ms []openflow.Match) {
	sort.Slice(ms, func(i, j int) bool { return matchLess(&ms[i], &ms[j]) })
}

func matchLess(a, b *openflow.Match) bool {
	if a.Wildcards != b.Wildcards {
		return a.Wildcards < b.Wildcards
	}
	if a.InPort != b.InPort {
		return a.InPort < b.InPort
	}
	if c := bytes.Compare(a.DLSrc[:], b.DLSrc[:]); c != 0 {
		return c < 0
	}
	if c := bytes.Compare(a.DLDst[:], b.DLDst[:]); c != 0 {
		return c < 0
	}
	if a.DLVLAN != b.DLVLAN {
		return a.DLVLAN < b.DLVLAN
	}
	if a.DLVLANPCP != b.DLVLANPCP {
		return a.DLVLANPCP < b.DLVLANPCP
	}
	if a.DLType != b.DLType {
		return a.DLType < b.DLType
	}
	if a.NWTOS != b.NWTOS {
		return a.NWTOS < b.NWTOS
	}
	if a.NWProto != b.NWProto {
		return a.NWProto < b.NWProto
	}
	if c := a.NWSrc.Compare(b.NWSrc); c != 0 {
		return c < 0
	}
	if c := a.NWDst.Compare(b.NWDst); c != 0 {
		return c < 0
	}
	if a.TPSrc != b.TPSrc {
		return a.TPSrc < b.TPSrc
	}
	return a.TPDst < b.TPDst
}

// lessGroup is the deterministic tie-break order on groups.
func lessGroup(a, b groupKey) bool {
	if c := a.prefix.Addr().Compare(b.prefix.Addr()); c != 0 {
		return c < 0
	}
	if a.prefix.Bits() != b.prefix.Bits() {
		return a.prefix.Bits() < b.prefix.Bits()
	}
	return a.port < b.port
}
