package flowtable

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// This file pins the tuple-space index to the masked linear-scan oracle: the
// randomized sequence below mixes exact rules, field wildcards, and partial
// CIDR prefix masks on NW_SRC/NW_DST, and every Lookup must agree with
// LookupMaskedOracle on the chosen rule — including priority ties, resolved
// by insertion order — and on the counters left behind.

// maskedFrame spreads addresses across the bits prefix masks discriminate
// on, so a /26 rule and a /16 rule see different traffic subsets.
func maskedFrame(rng *rand.Rand) *packet.Frame {
	proto := uint8(packet.ProtoUDP)
	if rng.Intn(2) == 0 {
		proto = packet.ProtoTCP
	}
	return &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, byte(1 + rng.Intn(2))},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, byte(3 + rng.Intn(2))},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     proto,
		SrcIP:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(2)), byte(rng.Intn(2) * 16), byte(rng.Intn(4) * 64)}),
		DstIP:     netip.AddrFrom4([4]byte{10, byte(rng.Intn(2)), byte(1 + rng.Intn(2)*128), byte(rng.Intn(4) * 64)}),
		SrcPort:   uint16(1000 + rng.Intn(4)),
		DstPort:   uint16(2000 + rng.Intn(4)),
	}
}

// maskedMatch starts from the exact pattern and independently relaxes each
// NW field to a random CIDR prefix or a full wildcard, plus a few random
// non-NW wildcard bits.
func maskedMatch(rng *rand.Rand, inPort uint16, f *packet.Frame) openflow.Match {
	m := openflow.ExactMatch(inPort, f)
	switch rng.Intn(3) {
	case 0: // exact NW_SRC
	case 1:
		m.Wildcards |= openflow.WildcardNWSrcPrefix(8 + rng.Intn(23))
	default:
		m.Wildcards |= openflow.WildcardNWSrcAll
	}
	switch rng.Intn(3) {
	case 0: // exact NW_DST
	case 1:
		m.Wildcards |= openflow.WildcardNWDstPrefix(8 + rng.Intn(23))
	default:
		m.Wildcards |= openflow.WildcardNWDstAll
	}
	extras := []uint32{
		openflow.WildcardInPort, openflow.WildcardDLSrc, openflow.WildcardDLDst,
		openflow.WildcardTPSrc, openflow.WildcardTPDst, openflow.WildcardNWProto,
	}
	for i := rng.Intn(3); i > 0; i-- {
		m.Wildcards |= extras[rng.Intn(len(extras))]
	}
	return m
}

func TestMaskedLookupMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			indexed, err := New(Unlimited, EvictNone)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := New(Unlimited, EvictNone)
			if err != nil {
				t.Fatal(err)
			}
			now := time.Duration(0)
			var cookie uint64

			probe := func() {
				f := maskedFrame(rng)
				inPort := uint16(1 + rng.Intn(3))
				wireLen := 60 + rng.Intn(1400)
				got := indexed.Lookup(now, inPort, f, wireLen)
				want := oracle.LookupMaskedOracle(now, inPort, f, wireLen)
				switch {
				case (got == nil) != (want == nil):
					t.Fatalf("t=%v frame %v in_port %d: Lookup=%v, masked oracle=%v", now, f.Key(), inPort, got, want)
				case got != nil && got.Cookie != want.Cookie:
					t.Fatalf("t=%v frame %v in_port %d: Lookup chose rule %d (prio %d), masked oracle rule %d (prio %d)",
						now, f.Key(), inPort, got.Cookie, got.Priority, want.Cookie, want.Priority)
				}
			}

			for op := 0; op < 600; op++ {
				now += time.Duration(rng.Intn(5)) * time.Millisecond
				switch r := rng.Intn(10); {
				case r < 4: // insert a rule (possibly replacing)
					cookie++
					e := &Entry{
						Match:    maskedMatch(rng, uint16(1+rng.Intn(3)), maskedFrame(rng)),
						Priority: []uint16{50, 100, 100, 200}[rng.Intn(4)],
						Cookie:   cookie,
					}
					if rng.Intn(4) == 0 {
						e.IdleTimeout = time.Duration(1+rng.Intn(20)) * time.Millisecond
					}
					if rng.Intn(4) == 0 {
						e.HardTimeout = time.Duration(1+rng.Intn(30)) * time.Millisecond
					}
					if _, err := indexed.Insert(now, cloneEntry(e)); err != nil {
						t.Fatalf("indexed insert: %v", err)
					}
					if _, err := oracle.Insert(now, cloneEntry(e)); err != nil {
						t.Fatalf("oracle insert: %v", err)
					}
				case r < 5: // delete a random installed rule
					es := indexed.Entries()
					if len(es) == 0 {
						continue
					}
					victim := es[rng.Intn(len(es))]
					a := indexed.Delete(now, &victim.Match, victim.Priority, true, openflow.PortNone)
					b := oracle.Delete(now, &victim.Match, victim.Priority, true, openflow.PortNone)
					if len(a) != len(b) {
						t.Fatalf("delete removed %d vs %d rules", len(a), len(b))
					}
				case r < 6: // expiry sweep
					a := indexed.Expire(now)
					b := oracle.Expire(now)
					if len(a) != len(b) {
						t.Fatalf("expire removed %d vs %d rules", len(a), len(b))
					}
				default:
					probe()
				}
			}

			ea, eb := indexed.Entries(), oracle.Entries()
			if len(ea) != len(eb) {
				t.Fatalf("tables diverged: %d vs %d rules", len(ea), len(eb))
			}
			for i := range ea {
				if ea[i].Cookie != eb[i].Cookie {
					t.Fatalf("rule %d: cookie %d vs %d", i, ea[i].Cookie, eb[i].Cookie)
				}
				pa, ba, _ := ea[i].Stats(now)
				pb, bb, _ := eb[i].Stats(now)
				if pa != pb || ba != bb || ea[i].LastUsed() != eb[i].LastUsed() {
					t.Errorf("rule %d (cookie %d): counters %d/%d/%v vs %d/%d/%v",
						i, ea[i].Cookie, pa, ba, ea[i].LastUsed(), pb, bb, eb[i].LastUsed())
				}
			}
			la, ha, ma, _ := indexed.LookupStats()
			lb, hb, mb, _ := oracle.LookupStats()
			if la != lb || ha != hb || ma != mb {
				t.Errorf("lookup stats diverged: %d/%d/%d vs %d/%d/%d", la, ha, ma, lb, hb, mb)
			}
		})
	}
}

// TestPrefixMaskMatching pins the CIDR semantics deterministically: a /24
// NW_DST rule matches every address in the prefix and nothing outside it.
func TestPrefixMaskMatching(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	m := openflow.Match{
		Wildcards: openflow.WildcardAll&^(openflow.WildcardDLType|openflow.WildcardNWDstAll) |
			openflow.WildcardNWDstPrefix(24),
		DLType: packet.EtherTypeIPv4,
		NWDst:  netip.MustParseAddr("10.0.1.0"),
	}
	if _, err := tbl.Insert(0, &Entry{Match: m, Priority: 50, Cookie: 7}); err != nil {
		t.Fatal(err)
	}
	in := frameFor("192.168.9.9", 1234)
	in.DstIP = netip.MustParseAddr("10.0.1.200")
	if got := tbl.Lookup(0, 3, in, 100); got == nil || got.Cookie != 7 {
		t.Fatalf("in-prefix frame missed the /24 rule: %v", got)
	}
	out := frameFor("192.168.9.9", 1234)
	out.DstIP = netip.MustParseAddr("10.0.2.200")
	if got := tbl.Lookup(0, 3, out, 100); got != nil {
		t.Fatalf("out-of-prefix frame hit the /24 rule: cookie %d", got.Cookie)
	}
}

// TestEvictSoonestExpiry pins the expiry-pressure policy: the victim is the
// rule whose idle/hard deadline lands first; rules without timeouts are
// last-resort victims, tie-broken by installation age.
func TestEvictSoonestExpiry(t *testing.T) {
	tbl := mustNew(t, 2, EvictSoonestExpiry)
	a := entryFor(frameFor("10.0.0.1", 1), 10)
	a.HardTimeout = 50 * time.Millisecond
	a.Cookie = 1
	b := entryFor(frameFor("10.0.0.1", 2), 10)
	b.HardTimeout = 10 * time.Millisecond
	b.Cookie = 2
	if _, err := tbl.Insert(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(0, b); err != nil {
		t.Fatal(err)
	}
	c := entryFor(frameFor("10.0.0.1", 3), 10)
	c.Cookie = 3
	victim, err := tbl.Insert(time.Millisecond, c)
	if err != nil {
		t.Fatalf("Insert with eviction: %v", err)
	}
	if victim == nil || victim.Entry.Cookie != 2 {
		t.Fatalf("evicted %+v, want the soonest-expiring rule (cookie 2)", victim)
	}
	if victim.Reason != openflow.RemovedEviction {
		t.Errorf("eviction reason = %d, want %d", victim.Reason, openflow.RemovedEviction)
	}
	// Now the table holds a (hard 50ms, installed at 0) and c (no timeout).
	// The next insert must pick a — a timed rule beats a permanent one.
	d := entryFor(frameFor("10.0.0.1", 4), 10)
	d.Cookie = 4
	victim, err = tbl.Insert(2*time.Millisecond, d)
	if err != nil {
		t.Fatal(err)
	}
	if victim == nil || victim.Entry.Cookie != 1 {
		t.Fatalf("evicted %+v, want the timed rule (cookie 1) over the permanent one", victim)
	}
	// Two permanent rules: the older install loses.
	e := entryFor(frameFor("10.0.0.1", 5), 10)
	e.Cookie = 5
	victim, err = tbl.Insert(3*time.Millisecond, e)
	if err != nil {
		t.Fatal(err)
	}
	if victim == nil || victim.Entry.Cookie != 3 {
		t.Fatalf("evicted %+v, want the older permanent rule (cookie 3)", victim)
	}
}

// TestRemovedSnapshot pins satellite fix: the Removed record carries the
// victim's counters as of removal time, so the flow_removed built from it
// can never report stale or post-removal values.
func TestRemovedSnapshot(t *testing.T) {
	tbl := mustNew(t, 1, EvictLRU)
	f := frameFor("10.0.0.1", 1)
	e := entryFor(f, 10)
	e.Cookie = 1
	if _, err := tbl.Insert(time.Millisecond, e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got := tbl.Lookup(time.Duration(2+i)*time.Millisecond, 1, f, 500); got == nil {
			t.Fatal("lookup missed installed rule")
		}
	}
	victim, err := tbl.Insert(10*time.Millisecond, entryFor(frameFor("10.0.0.1", 2), 10))
	if err != nil {
		t.Fatal(err)
	}
	if victim == nil {
		t.Fatal("no eviction at capacity 1")
	}
	if victim.Packets != 3 || victim.Bytes != 1500 {
		t.Errorf("snapshot = %d pkts %d bytes, want 3/1500", victim.Packets, victim.Bytes)
	}
	if victim.Age != 9*time.Millisecond {
		t.Errorf("snapshot age = %v, want 9ms", victim.Age)
	}
	if victim.At != 10*time.Millisecond {
		t.Errorf("snapshot at = %v, want 10ms", victim.At)
	}
}

func TestParseEvictionPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EvictionPolicy
	}{
		{"reject", EvictNone},
		{"lru", EvictLRU},
		{"expiry", EvictSoonestExpiry},
	} {
		got, err := ParseEvictionPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEvictionPolicy(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseEvictionPolicy("nope"); err == nil {
		t.Error("ParseEvictionPolicy accepted garbage")
	}
	var bad EvictionPolicy
	if s := bad.String(); s == "" {
		t.Error("zero policy String is empty")
	}
}
