package flowtable

import (
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// FuzzMaskedLookup drives the tuple-space index and the masked linear-scan
// oracle with fully arbitrary wildcard words and addresses — including
// mask-field values past 32 and undefined wildcard bits — and asserts the
// two never diverge and neither panics. The fuzzer owns the whole Match
// surface; the randomized equivalence tests own realistic rule mixes.
func FuzzMaskedLookup(f *testing.F) {
	f.Add(uint32(0), uint32(0x3f<<8), [4]byte{10, 0, 0, 1}[0], byte(0), byte(0), byte(1), uint16(1), uint16(9), byte(17))
	f.Add(openflow.WildcardAll, openflow.WildcardNWDstPrefix(24), byte(10), byte(0), byte(1), byte(0), uint16(1000), uint16(2000), byte(6))
	f.Add(uint32(0xffffffff), uint32(0xdeadbeef), byte(1), byte(2), byte(3), byte(4), uint16(0), uint16(0), byte(0))
	f.Fuzz(func(t *testing.T, w1, w2 uint32, a, b, c, d byte, sport, dport uint16, proto byte) {
		frame := &packet.Frame{
			SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
			DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
			EtherType: packet.EtherTypeIPv4,
			TTL:       64,
			Proto:     proto,
			SrcIP:     netip.AddrFrom4([4]byte{a, b, c, d}),
			DstIP:     netip.AddrFrom4([4]byte{d, c, b, a}),
			SrcPort:   sport,
			DstPort:   dport,
		}
		indexed, err := New(Unlimited, EvictNone)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := New(Unlimited, EvictNone)
		if err != nil {
			t.Fatal(err)
		}
		// Two rules sharing the frame's header space under different
		// arbitrary wildcard words, plus a third whose addresses differ only
		// below a possible mask boundary.
		exact := openflow.ExactMatch(1, frame)
		rules := []openflow.Match{
			{Wildcards: w1, InPort: exact.InPort, DLSrc: exact.DLSrc, DLDst: exact.DLDst,
				DLType: exact.DLType, NWProto: exact.NWProto,
				NWSrc: exact.NWSrc, NWDst: exact.NWDst, TPSrc: exact.TPSrc, TPDst: exact.TPDst},
			{Wildcards: w2, InPort: exact.InPort, DLSrc: exact.DLSrc, DLDst: exact.DLDst,
				DLType: exact.DLType, NWProto: exact.NWProto,
				NWSrc: exact.NWSrc, NWDst: exact.NWDst, TPSrc: exact.TPSrc, TPDst: exact.TPDst},
			{Wildcards: w2, InPort: exact.InPort, DLSrc: exact.DLSrc, DLDst: exact.DLDst,
				DLType: exact.DLType, NWProto: exact.NWProto,
				NWSrc: netip.AddrFrom4([4]byte{a, b, c, d ^ 1}), NWDst: netip.AddrFrom4([4]byte{d, c, b, a ^ 1}),
				TPSrc: exact.TPSrc, TPDst: exact.TPDst},
		}
		for i, m := range rules {
			e := &Entry{Match: m, Priority: uint16(100 - i%2*50), Cookie: uint64(i + 1)}
			if _, err := indexed.Insert(0, cloneEntry(e)); err != nil {
				t.Fatal(err)
			}
			if _, err := oracle.Insert(0, cloneEntry(e)); err != nil {
				t.Fatal(err)
			}
		}
		for _, inPort := range []uint16{1, 2} {
			got := indexed.Lookup(time.Millisecond, inPort, frame, 100)
			want := oracle.LookupMaskedOracle(time.Millisecond, inPort, frame, 100)
			switch {
			case (got == nil) != (want == nil):
				t.Fatalf("w1=%#x w2=%#x in_port %d: Lookup=%v, masked oracle=%v", w1, w2, inPort, got, want)
			case got != nil && got.Cookie != want.Cookie:
				t.Fatalf("w1=%#x w2=%#x in_port %d: Lookup rule %d, masked oracle rule %d",
					w1, w2, inPort, got.Cookie, want.Cookie)
			}
		}
	})
}
