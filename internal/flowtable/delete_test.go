package flowtable

import (
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
)

// TestNonStrictDeleteCovers pins the OpenFlow 1.0 non-strict delete
// relation: the pattern removes every entry it covers, regardless of
// priority, and a fully wildcarded pattern flushes the table.
func TestNonStrictDeleteCovers(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	a := entryFor(frameFor("10.0.0.1", 100), 10)
	b := entryFor(frameFor("10.0.0.2", 200), 20)
	c := entryFor(frameFor("10.0.0.3", 300), 30)
	for _, e := range []*Entry{a, b, c} {
		if _, err := tbl.Insert(0, e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	// A pattern specifying only nw_src covers exactly the matching entry.
	pat := openflow.Match{
		Wildcards: openflow.WildcardAll &^ openflow.WildcardNWSrcAll,
		NWSrc:     a.Match.NWSrc,
	}
	removed := tbl.Delete(time.Millisecond, &pat, 0, false, openflow.PortNone)
	if len(removed) != 1 || removed[0].Entry != a {
		t.Fatalf("nw_src delete removed %d entries, want just a", len(removed))
	}
	if removed[0].Reason != openflow.RemovedDelete {
		t.Fatalf("reason = %d, want RemovedDelete", removed[0].Reason)
	}

	// Wildcard-all deletes everything left, at every priority.
	all := openflow.MatchAll()
	removed = tbl.Delete(2*time.Millisecond, &all, 0, false, openflow.PortNone)
	if len(removed) != 2 || tbl.Len() != 0 {
		t.Fatalf("wildcard-all delete removed %d entries, %d left", len(removed), tbl.Len())
	}
}

// TestNonStrictDeleteDoesNotCoverWider checks a more-specific pattern does
// not delete a wider entry: covering requires the entry to specify every
// field the pattern specifies.
func TestNonStrictDeleteDoesNotCoverWider(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	wide := &Entry{Match: openflow.MatchAll(), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}}}
	if _, err := tbl.Insert(0, wide); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	exact := openflow.ExactMatch(1, frameFor("10.0.0.1", 100))
	if removed := tbl.Delete(0, &exact, 0, false, openflow.PortNone); len(removed) != 0 {
		t.Fatalf("exact pattern deleted the wildcard-all entry")
	}
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d, want 1", tbl.Len())
	}
}

// TestDeleteOutPortFilter pins the ofp_flow_mod out_port filter: with a
// concrete out_port only entries forwarding to it are deleted; PortNone
// disables the filter.
func TestDeleteOutPortFilter(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	to2 := entryFor(frameFor("10.0.0.1", 100), 10) // outputs to port 2
	to3 := entryFor(frameFor("10.0.0.2", 200), 10)
	to3.Actions = []openflow.Action{&openflow.ActionOutput{Port: 3}}
	for _, e := range []*Entry{to2, to3} {
		if _, err := tbl.Insert(0, e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	all := openflow.MatchAll()
	removed := tbl.Delete(0, &all, 0, false, 3)
	if len(removed) != 1 || removed[0].Entry != to3 {
		t.Fatalf("out_port=3 delete removed %d entries", len(removed))
	}
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d, want 1", tbl.Len())
	}
	// Strict deletes honor the filter too.
	removed = tbl.Delete(0, &to2.Match, to2.Priority, true, 9)
	if len(removed) != 0 {
		t.Fatal("strict delete with mismatched out_port removed an entry")
	}
	removed = tbl.Delete(0, &to2.Match, to2.Priority, true, 2)
	if len(removed) != 1 {
		t.Fatal("strict delete with matching out_port removed nothing")
	}
}

// TestDeleteByOutPort covers the port-down eviction path and that lookups
// stop seeing the evicted rules.
func TestDeleteByOutPort(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictLRU)
	f2 := frameFor("10.0.0.1", 100)
	to2 := entryFor(f2, 10)
	to3 := entryFor(frameFor("10.0.0.2", 200), 10)
	to3.Actions = []openflow.Action{&openflow.ActionOutput{Port: 3}}
	for _, e := range []*Entry{to2, to3} {
		if _, err := tbl.Insert(0, e); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	removed := tbl.DeleteByOutPort(time.Millisecond, 2, openflow.RemovedDelete)
	if len(removed) != 1 || removed[0].Entry != to2 {
		t.Fatalf("DeleteByOutPort(2) removed %d entries", len(removed))
	}
	if got := tbl.Lookup(2*time.Millisecond, 1, f2, 100); got != nil {
		t.Fatal("evicted rule still matches")
	}
	if tbl.Len() != 1 {
		t.Fatalf("table len = %d, want 1", tbl.Len())
	}
}

// TestClear pins crash semantics: the table empties with no flow_removed
// records and stays usable.
func TestClear(t *testing.T) {
	tbl := mustNew(t, 8, EvictLRU)
	f := frameFor("10.0.0.1", 100)
	for i := 0; i < 5; i++ {
		if _, err := tbl.Insert(0, entryFor(frameFor("10.0.0.1", uint16(100+i)), 10)); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	tbl.Clear()
	if tbl.Len() != 0 {
		t.Fatalf("Len after Clear = %d", tbl.Len())
	}
	if got := tbl.Lookup(0, 1, f, 100); got != nil {
		t.Fatal("cleared table still matches")
	}
	if _, err := tbl.Insert(time.Millisecond, entryFor(f, 10)); err != nil {
		t.Fatalf("Insert after Clear: %v", err)
	}
	if got := tbl.Lookup(2*time.Millisecond, 1, f, 100); got == nil {
		t.Fatal("reinserted rule does not match")
	}
}
