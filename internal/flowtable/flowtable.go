// Package flowtable implements the OpenFlow flow table the switch datapath
// matches packets against: priority-ordered rules with idle and hard
// timeouts, per-rule traffic counters, and a configurable capacity bound
// with LRU eviction.
//
// The capacity bound exists because the paper's root-cause analysis (§II and
// §VI.B) hinges on it: rules for inactive flows get kicked out of the
// size-limited table, so packets of long-lived but bursty TCP connections
// can miss again mid-connection — exactly the scenario the switch buffer
// helps with.
//
// All methods take the current time explicitly (a time.Duration since the
// start of the run) so the same code serves the virtual-time simulator and
// the live switch.
package flowtable

import (
	"errors"
	"fmt"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// Unlimited disables the capacity bound.
const Unlimited = 0

// Entry is one installed flow rule.
type Entry struct {
	Match       openflow.Match
	Priority    uint16
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout time.Duration // 0 = never idles out
	HardTimeout time.Duration // 0 = never hard-expires
	Flags       uint16

	installedAt time.Duration
	lastUsed    time.Duration
	packets     uint64
	bytes       uint64
}

// Stats reports the rule's traffic counters and age.
func (e *Entry) Stats(now time.Duration) (packets, bytes uint64, age time.Duration) {
	return e.packets, e.bytes, now - e.installedAt
}

// LastUsed reports when the rule last matched a packet (or was installed).
func (e *Entry) LastUsed() time.Duration { return e.lastUsed }

// Removed describes a rule that left the table and why; the switch turns
// these into flow_removed messages when the rule asked for them.
type Removed struct {
	Entry  *Entry
	Reason uint8 // openflow.Removed* code
	At     time.Duration
}

// EvictionPolicy selects the victim when the table is full.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNone rejects inserts into a full table with ErrTableFull.
	EvictNone EvictionPolicy = 1
	// EvictLRU removes the least recently used rule to make room. This is
	// the behaviour the paper's §VI.B discussion assumes ("rules for
	// inactive flows will be kicked out and replaced by rules for active
	// flows").
	EvictLRU EvictionPolicy = 2
)

// ErrTableFull reports an insert into a full table under EvictNone.
var ErrTableFull = errors.New("flowtable: table full")

// Table is a single OpenFlow flow table.
type Table struct {
	capacity int
	policy   EvictionPolicy
	entries  []*Entry

	lookups   uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a table. capacity Unlimited (0) means unbounded; policy
// selects full-table behaviour and must be valid when capacity is bounded.
func New(capacity int, policy EvictionPolicy) (*Table, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("flowtable: negative capacity %d", capacity)
	}
	if policy != EvictNone && policy != EvictLRU {
		return nil, fmt.Errorf("flowtable: unknown eviction policy %d", policy)
	}
	return &Table{capacity: capacity, policy: policy}, nil
}

// Len reports the number of installed rules.
func (t *Table) Len() int { return len(t.entries) }

// Capacity reports the configured bound (Unlimited if none).
func (t *Table) Capacity() int { return t.capacity }

// LookupStats reports lookup/hit/miss/eviction counters.
func (t *Table) LookupStats() (lookups, hits, misses, evictions uint64) {
	return t.lookups, t.hits, t.misses, t.evictions
}

// Lookup finds the highest-priority rule matching a frame on inPort,
// updating its counters and recency. It returns nil on a table miss — the
// event that triggers the whole packet_in machinery.
func (t *Table) Lookup(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	t.lookups++
	var best *Entry
	for _, e := range t.entries {
		if best != nil && e.Priority <= best.Priority {
			continue
		}
		if e.Match.Matches(inPort, f) {
			best = e
		}
	}
	if best == nil {
		t.misses++
		return nil
	}
	t.hits++
	best.lastUsed = now
	best.packets++
	best.bytes += uint64(wireLen)
	return best
}

// Insert installs a rule. A rule with an identical match and priority
// replaces the old one (preserving nothing — spec flow_mod ADD semantics).
// When the table is full the policy decides: ErrTableFull, or LRU eviction
// with the victim returned so the caller can emit flow_removed.
func (t *Table) Insert(now time.Duration, e *Entry) (*Removed, error) {
	if e == nil {
		return nil, fmt.Errorf("flowtable: nil entry")
	}
	e.installedAt = now
	e.lastUsed = now
	for i, old := range t.entries {
		if old.Priority == e.Priority && old.Match.Equal(&e.Match) {
			t.entries[i] = e
			return nil, nil
		}
	}
	var victim *Removed
	if t.capacity != Unlimited && len(t.entries) >= t.capacity {
		switch t.policy {
		case EvictNone:
			return nil, fmt.Errorf("%w: %d rules", ErrTableFull, len(t.entries))
		case EvictLRU:
			idx := 0
			for i, old := range t.entries {
				if old.lastUsed < t.entries[idx].lastUsed {
					idx = i
				}
			}
			victim = &Removed{Entry: t.entries[idx], Reason: openflow.RemovedEviction, At: now}
			copy(t.entries[idx:], t.entries[idx+1:])
			t.entries[len(t.entries)-1] = nil
			t.entries = t.entries[:len(t.entries)-1]
			t.evictions++
		}
	}
	t.entries = append(t.entries, e)
	return victim, nil
}

// Delete removes every rule whose match equals m (strict) or is matched by
// the wildcarded deletion pattern (non-strict behaves like strict here for
// simplicity of the subset). It returns the removed rules.
func (t *Table) Delete(now time.Duration, m *openflow.Match, priority uint16, strict bool) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		match := e.Match.Equal(m)
		if strict {
			match = match && e.Priority == priority
		}
		if match {
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedDelete, At: now})
		} else {
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// Expire removes rules whose idle or hard timeout has passed, returning them
// with the matching reason codes.
func (t *Table) Expire(now time.Duration) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installedAt >= e.HardTimeout:
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedHardTimeout, At: now})
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedIdleTimeout, At: now})
		default:
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// NextExpiry reports the earliest future instant at which some rule could
// expire, and false if no rule carries a timeout. The simulator uses it to
// schedule expiry sweeps without polling.
func (t *Table) NextExpiry() (time.Duration, bool) {
	var next time.Duration
	found := false
	consider := func(d time.Duration) {
		if !found || d < next {
			next, found = d, true
		}
	}
	for _, e := range t.entries {
		if e.HardTimeout > 0 {
			consider(e.installedAt + e.HardTimeout)
		}
		if e.IdleTimeout > 0 {
			consider(e.lastUsed + e.IdleTimeout)
		}
	}
	return next, found
}

// Entries returns a snapshot copy of the rule list (for stats and tests).
func (t *Table) Entries() []*Entry {
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

func clearTail(s []*Entry, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}
