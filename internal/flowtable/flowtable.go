// Package flowtable implements the OpenFlow flow table the switch datapath
// matches packets against: priority-ordered rules with idle and hard
// timeouts, per-rule traffic counters, and a configurable capacity bound
// with pluggable table-full behaviour (reject, LRU eviction, or
// soonest-expiry eviction).
//
// The capacity bound exists because the paper's root-cause analysis (§II and
// §VI.B) hinges on it: rules for inactive flows get kicked out of the
// size-limited table, so packets of long-lived but bursty TCP connections
// can miss again mid-connection — exactly the scenario the switch buffer
// helps with.
//
// Lookup is served by tuple-space search: rules are grouped by their exact
// wildcard pattern ("tuple"), each tuple hashes its rules by the fields the
// pattern matches on (NW addresses masked to the pattern's prefix), and a
// probe consults one hash bucket per tuple. Tuples are kept sorted by a
// priority high-water mark so the probe stops as soon as no remaining tuple
// can beat the best rule found. The dominant workload installs only the
// reactive-forwarding exact pattern, which makes the probe a single O(1)
// map hit — the PR-2 fast path, unchanged in cost. The pre-index linear
// scans are retained as LookupOracle and LookupMaskedOracle and
// property-tested for equivalence (DESIGN.md §10, §17).
//
// All methods take the current time explicitly (a time.Duration since the
// start of the run) so the same code serves the virtual-time simulator and
// the live switch.
package flowtable

import (
	"errors"
	"fmt"
	"encoding/binary"
	"math"
	"net/netip"
	"sort"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// Unlimited disables the capacity bound.
const Unlimited = 0

// Entry is one installed flow rule.
type Entry struct {
	Match       openflow.Match
	Priority    uint16
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout time.Duration // 0 = never idles out
	HardTimeout time.Duration // 0 = never hard-expires
	Flags       uint16

	installedAt time.Duration
	lastUsed    time.Duration
	packets     uint64
	bytes       uint64
	seq         uint64 // insertion order; tie-breaks equal priorities like scan position
}

// Stats reports the rule's traffic counters and age.
func (e *Entry) Stats(now time.Duration) (packets, bytes uint64, age time.Duration) {
	return e.packets, e.bytes, now - e.installedAt
}

// LastUsed reports when the rule last matched a packet (or was installed).
func (e *Entry) LastUsed() time.Duration { return e.lastUsed }

// Removed describes a rule that left the table and why; the switch turns
// these into flow_removed messages when the rule asked for them. Packets,
// Bytes and Age snapshot the rule's counters at the moment of removal —
// flow_removed must report what the rule forwarded while installed, and
// reading Entry after removal risks observing later mutation of a reused
// or replaced rule object.
type Removed struct {
	Entry   *Entry
	Reason  uint8 // openflow.Removed* code
	At      time.Duration
	Packets uint64
	Bytes   uint64
	Age     time.Duration
}

// removedRecord snapshots a rule's counters into its removal record.
func removedRecord(e *Entry, reason uint8, at time.Duration) Removed {
	return Removed{
		Entry:   e,
		Reason:  reason,
		At:      at,
		Packets: e.packets,
		Bytes:   e.bytes,
		Age:     at - e.installedAt,
	}
}

// EvictionPolicy selects the victim when the table is full.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNone rejects inserts into a full table with ErrTableFull.
	EvictNone EvictionPolicy = 1
	// EvictLRU removes the least recently used rule to make room. This is
	// the behaviour the paper's §VI.B discussion assumes ("rules for
	// inactive flows will be kicked out and replaced by rules for active
	// flows").
	EvictLRU EvictionPolicy = 2
	// EvictSoonestExpiry removes the rule whose idle/hard timeout would
	// fire soonest — the rule the table was about to lose anyway, so the
	// eviction forfeits the least remaining lifetime. Rules with no
	// timeout are treated as expiring never; if every rule is
	// timeout-less the oldest installed (lowest seq) is chosen.
	EvictSoonestExpiry EvictionPolicy = 3
)

// String names the policy for CSV/flag output.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictNone:
		return "reject"
	case EvictLRU:
		return "lru"
	case EvictSoonestExpiry:
		return "expiry"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// ParseEvictionPolicy maps a policy name ("reject", "lru", "expiry") back
// to its value.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "reject":
		return EvictNone, nil
	case "lru":
		return EvictLRU, nil
	case "expiry":
		return EvictSoonestExpiry, nil
	}
	return 0, fmt.Errorf("flowtable: unknown eviction policy %q", s)
}

// ErrTableFull reports an insert into a full table under EvictNone.
var ErrTableFull = errors.New("flowtable: table full")

// tupleKey is the comparable per-tuple hash key: every field the tuple's
// wildcard pattern matches on, with ignored fields zeroed and NW addresses
// masked to the pattern's prefix. VLAN fields are excluded because frame
// matching never tests them (the platform's frames carry no VLAN tags), so
// two rules differing only in VLAN fields match identical frame sets and
// may share a bucket. Addresses are stored as masked uint32s with validity
// bits in nwOK rather than netip.Addr — the flat 32-byte key keeps the
// per-probe hash at the PR-2 exact-index cost.
// Field order avoids any implicit padding (explicit pad byte included), so
// the runtime hashes the key as one flat 32-byte region.
type tupleKey struct {
	nwSrc  uint32
	nwDst  uint32
	inPort uint16
	dlType uint16
	tpSrc  uint16
	tpDst  uint16
	dlSrc  packet.MAC
	dlDst  packet.MAC
	tos    uint8
	proto  uint8
	nwOK   uint8 // bit0: nwSrc is a matched IPv4 value; bit1: same for nwDst
	pad    uint8
}

// maskAddr32 canonicalises an address for the key: a matched IPv4 address
// becomes its masked value with ok=1; an ignored field or a non-IPv4
// address (in practice only the zero Addr of an unset field) becomes
// (0, 0). The validity bit keeps a genuine 0.0.0.0 distinct from "unset",
// mirroring raw netip.Addr equality in Match.Matches.
func maskAddr32(a netip.Addr, ignore uint32) (uint32, uint8) {
	if ignore >= 32 || !a.Is4() {
		return 0, 0
	}
	v := a.As4()
	u := binary.BigEndian.Uint32(v[:])
	if ignore > 0 {
		u &^= 1<<ignore - 1
	}
	return u, 1
}

// tuple is one wildcard pattern's hash table: all rules sharing a Wildcards
// value, keyed by their matched fields. maxPrio is a high-water bound on
// the priorities ever stored (never lowered on removal), used to cut the
// probe short; born orders tuples deterministically among equal bounds.
type tuple struct {
	wildcards uint32
	born      uint64
	maxPrio   uint16
	size      int
	buckets   map[tupleKey][]*Entry

	// Precomputed per-field AND-masks of the wildcard pattern (all-ones
	// when the field is matched, zero when ignored), so frame-key
	// derivation on the lookup fast path is branch-free for every field
	// but the MACs.
	mInPort, mDLType, mTPSrc, mTPDst uint16
	mTOS, mProto                     uint8
	useDLSrc, useDLDst               bool
	mNWSrc, mNWDst                   uint32 // address-bit masks (0 = field ignored)
	okNWSrc, okNWDst                 uint8  // validity-bit masks (1 = field matched)
	nwSrcIgnore, nwDstIgnore         uint32 // raw mask-field values, for matchKey
}

func fieldMask16(wildcards, bit uint32) uint16 {
	if wildcards&bit == 0 {
		return 0xffff
	}
	return 0
}

func newTuple(wildcards uint32, born uint64) *tuple {
	tu := &tuple{
		wildcards:   wildcards,
		born:        born,
		buckets:     make(map[tupleKey][]*Entry),
		mInPort:     fieldMask16(wildcards, openflow.WildcardInPort),
		mDLType:     fieldMask16(wildcards, openflow.WildcardDLType),
		mTPSrc:      fieldMask16(wildcards, openflow.WildcardTPSrc),
		mTPDst:      fieldMask16(wildcards, openflow.WildcardTPDst),
		mTOS:        uint8(fieldMask16(wildcards, openflow.WildcardNWTOS)),
		mProto:      uint8(fieldMask16(wildcards, openflow.WildcardNWProto)),
		useDLSrc:    wildcards&openflow.WildcardDLSrc == 0,
		useDLDst:    wildcards&openflow.WildcardDLDst == 0,
		nwSrcIgnore: openflow.NWSrcIgnoreBits(wildcards),
		nwDstIgnore: openflow.NWDstIgnoreBits(wildcards),
	}
	if tu.nwSrcIgnore < 32 {
		tu.mNWSrc = ^uint32(0) &^ (1<<tu.nwSrcIgnore - 1)
		tu.okNWSrc = 1
	}
	if tu.nwDstIgnore < 32 {
		tu.mNWDst = ^uint32(0) &^ (1<<tu.nwDstIgnore - 1)
		tu.okNWDst = 1
	}
	return tu
}

// addr32 projects an address to its key form: (big-endian value, 1) for
// IPv4, (0, 0) otherwise.
func addr32(a netip.Addr) (uint32, uint8) {
	if !a.Is4() {
		return 0, 0
	}
	v := a.As4()
	return binary.BigEndian.Uint32(v[:]), 1
}

// matchKey derives the bucket key for a rule of this tuple's pattern. Key
// equality within a tuple is equivalent to the per-field tests Matches
// applies, so a bucket holds exactly the rules matching the probing frames.
func (tu *tuple) matchKey(m *openflow.Match) tupleKey {
	k := tupleKey{
		inPort: m.InPort & tu.mInPort,
		dlType: m.DLType & tu.mDLType,
		tpSrc:  m.TPSrc & tu.mTPSrc,
		tpDst:  m.TPDst & tu.mTPDst,
		tos:    m.NWTOS & tu.mTOS,
		proto:  m.NWProto & tu.mProto,
	}
	if tu.useDLSrc {
		k.dlSrc = m.DLSrc
	}
	if tu.useDLDst {
		k.dlDst = m.DLDst
	}
	var sOK, dOK uint8
	k.nwSrc, sOK = maskAddr32(m.NWSrc, tu.nwSrcIgnore)
	k.nwDst, dOK = maskAddr32(m.NWDst, tu.nwDstIgnore)
	k.nwOK = sOK | dOK<<1
	return k
}

// frameKey derives the bucket key a frame on inPort probes this tuple with.
func (tu *tuple) frameKey(inPort uint16, f *packet.Frame) tupleKey {
	k := tupleKey{
		inPort: inPort & tu.mInPort,
		dlType: f.EtherType & tu.mDLType,
		tpSrc:  f.SrcPort & tu.mTPSrc,
		tpDst:  f.DstPort & tu.mTPDst,
		tos:    f.TOS & tu.mTOS,
		proto:  f.Proto & tu.mProto,
	}
	if tu.useDLSrc {
		k.dlSrc = f.SrcMAC
	}
	if tu.useDLDst {
		k.dlDst = f.DstMAC
	}
	s32, sOK := addr32(f.SrcIP)
	d32, dOK := addr32(f.DstIP)
	k.nwSrc = s32 & tu.mNWSrc
	k.nwDst = d32 & tu.mNWDst
	k.nwOK = sOK&tu.okNWSrc | (dOK&tu.okNWDst)<<1
	return k
}

// Table is a single OpenFlow flow table.
type Table struct {
	capacity int
	policy   EvictionPolicy
	entries  []*Entry

	// tuples holds one hash table per distinct wildcard pattern, sorted by
	// (maxPrio desc, born asc) so Lookup can stop early; tupleByMask finds
	// a rule's tuple in O(1) for insert/detach.
	tuples      []*tuple
	tupleByMask map[uint32]*tuple
	nextBorn    uint64

	nextSeq uint64

	lookups   uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a table. capacity Unlimited (0) means unbounded; policy
// selects full-table behaviour and must be valid when capacity is bounded.
func New(capacity int, policy EvictionPolicy) (*Table, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("flowtable: negative capacity %d", capacity)
	}
	if policy != EvictNone && policy != EvictLRU && policy != EvictSoonestExpiry {
		return nil, fmt.Errorf("flowtable: unknown eviction policy %d", policy)
	}
	return &Table{
		capacity:    capacity,
		policy:      policy,
		tupleByMask: make(map[uint32]*tuple),
	}, nil
}

// Len reports the number of installed rules.
func (t *Table) Len() int { return len(t.entries) }

// Capacity reports the configured bound (Unlimited if none).
func (t *Table) Capacity() int { return t.capacity }

// Policy reports the configured table-full policy.
func (t *Table) Policy() EvictionPolicy { return t.policy }

// LookupStats reports lookup/hit/miss/eviction counters.
func (t *Table) LookupStats() (lookups, hits, misses, evictions uint64) {
	return t.lookups, t.hits, t.misses, t.evictions
}

// better reports whether e beats best under the scan's selection rule:
// highest priority wins, earliest-installed (lowest seq) breaks ties.
func better(e, best *Entry) bool {
	if best == nil {
		return true
	}
	if e.Priority != best.Priority {
		return e.Priority > best.Priority
	}
	return e.seq < best.seq
}

// Lookup finds the highest-priority rule matching a frame on inPort,
// updating its counters and recency. It returns nil on a table miss — the
// event that triggers the whole packet_in machinery.
//
// Tuple-space search: one hash probe per wildcard pattern, cut short as
// soon as the best rule found outranks every remaining tuple's priority
// bound. The exact-pattern-only workload keeps this a single map hit.
func (t *Table) Lookup(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	var best *Entry
	for _, tu := range t.tuples {
		if best != nil && best.Priority > tu.maxPrio {
			break // sorted by maxPrio desc: no remaining tuple can win
		}
		for _, e := range tu.buckets[tu.frameKey(inPort, f)] {
			if better(e, best) {
				best = e
			}
		}
	}
	return t.account(now, best, wireLen)
}

// LookupOracle is the pre-index linear scan, byte-for-byte the original
// lookup semantics (first strictly-higher-priority rule in insertion order
// wins). It is retained as the reference implementation the equivalence
// property test checks Lookup against; production code uses Lookup.
func (t *Table) LookupOracle(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	var best *Entry
	for _, e := range t.entries {
		if best != nil && e.Priority <= best.Priority {
			continue
		}
		if e.Match.Matches(inPort, f) {
			best = e
		}
	}
	return t.account(now, best, wireLen)
}

// LookupMaskedOracle is the linear-scan reference for the tuple-space path:
// probe every rule with Match.Matches (which honours partial NW prefix
// masks) and keep the best under the same priority/seq order Lookup uses.
// The randomized equivalence tests pin Lookup to this oracle over arbitrary
// masked rule sets; production code uses Lookup.
func (t *Table) LookupMaskedOracle(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	var best *Entry
	for _, e := range t.entries {
		if e.Match.Matches(inPort, f) && better(e, best) {
			best = e
		}
	}
	return t.account(now, best, wireLen)
}

// account applies the hit/miss counter updates shared by all lookup paths.
func (t *Table) account(now time.Duration, best *Entry, wireLen int) *Entry {
	t.lookups++
	if best == nil {
		t.misses++
		return nil
	}
	t.hits++
	best.lastUsed = now
	best.packets++
	best.bytes += uint64(wireLen)
	return best
}

// tupleFor returns the tuple for a wildcard pattern, creating it on demand.
func (t *Table) tupleFor(wildcards uint32) *tuple {
	if tu, ok := t.tupleByMask[wildcards]; ok {
		return tu
	}
	t.nextBorn++
	tu := newTuple(wildcards, t.nextBorn)
	t.tupleByMask[wildcards] = tu
	t.tuples = append(t.tuples, tu)
	t.sortTuples()
	return tu
}

// sortTuples restores the probe order invariant: maxPrio descending, born
// ascending. Selection by better() is order-independent, so this ordering
// affects only how early the probe can stop — but it must be deterministic,
// and (maxPrio, born) is derived purely from the insert sequence.
func (t *Table) sortTuples() {
	sort.Slice(t.tuples, func(i, j int) bool {
		a, b := t.tuples[i], t.tuples[j]
		if a.maxPrio != b.maxPrio {
			return a.maxPrio > b.maxPrio
		}
		return a.born < b.born
	})
}

// attach adds a freshly appended entry to its tuple.
func (t *Table) attach(e *Entry) {
	t.nextSeq++
	e.seq = t.nextSeq
	tu := t.tupleFor(e.Match.Wildcards)
	k := tu.matchKey(&e.Match)
	tu.buckets[k] = append(tu.buckets[k], e)
	tu.size++
	if e.Priority > tu.maxPrio {
		tu.maxPrio = e.Priority
		t.sortTuples()
	}
}

// detach removes an entry from its tuple (not from t.entries). maxPrio is a
// high-water mark and is deliberately not recomputed — a stale bound only
// costs an extra probe, never a wrong answer — but a tuple whose last rule
// leaves is dropped entirely.
func (t *Table) detach(e *Entry) {
	tu := t.tupleByMask[e.Match.Wildcards]
	if tu == nil {
		return
	}
	k := tu.matchKey(&e.Match)
	bucket := tu.buckets[k]
	for i, b := range bucket {
		if b == e {
			bucket = append(bucket[:i], bucket[i+1:]...)
			tu.size--
			break
		}
	}
	if len(bucket) == 0 {
		delete(tu.buckets, k)
	} else {
		tu.buckets[k] = bucket
	}
	if tu.size == 0 {
		delete(t.tupleByMask, tu.wildcards)
		for i, o := range t.tuples {
			if o == tu {
				t.tuples = append(t.tuples[:i], t.tuples[i+1:]...)
				break
			}
		}
	}
}

// replaceInEntries swaps old for e in the master list, preserving position.
func (t *Table) replaceInEntries(old, e *Entry) {
	for i, b := range t.entries {
		if b == old {
			t.entries[i] = e
			return
		}
	}
}

// expiryInstant reports when the rule will next expire (the earlier of its
// idle and hard deadlines), or never=false when it carries no timeout.
func expiryInstant(e *Entry) (time.Duration, bool) {
	var next time.Duration
	found := false
	if e.HardTimeout > 0 {
		next, found = e.installedAt+e.HardTimeout, true
	}
	if e.IdleTimeout > 0 {
		if d := e.lastUsed + e.IdleTimeout; !found || d < next {
			next, found = d, true
		}
	}
	return next, found
}

// Insert installs a rule. A rule with an identical match and priority
// replaces the old one (preserving nothing — spec flow_mod ADD semantics).
// When the table is full the policy decides: ErrTableFull, or eviction with
// the victim returned so the caller can emit flow_removed.
func (t *Table) Insert(now time.Duration, e *Entry) (*Removed, error) {
	if e == nil {
		return nil, fmt.Errorf("flowtable: nil entry")
	}
	e.installedAt = now
	e.lastUsed = now

	// Replacement probe. Match.Equal requires identical wildcards and
	// agreement on every matched field, so a replacement candidate lives in
	// the new rule's own tuple bucket — no full-table scan needed. (The
	// bucket can hold non-Equal rules differing in VLAN fields, so Equal is
	// still checked per candidate.)
	if tu, ok := t.tupleByMask[e.Match.Wildcards]; ok {
		k := tu.matchKey(&e.Match)
		for i, old := range tu.buckets[k] {
			if old.Priority == e.Priority && old.Match.Equal(&e.Match) {
				e.seq = old.seq // keep the scan-position tie-break stable
				tu.buckets[k][i] = e
				t.replaceInEntries(old, e)
				return nil, nil
			}
		}
	}

	var victim *Removed
	if t.capacity != Unlimited && len(t.entries) >= t.capacity {
		idx := -1
		switch t.policy {
		case EvictNone:
			return nil, fmt.Errorf("%w: %d rules", ErrTableFull, len(t.entries))
		case EvictLRU:
			idx = 0
			for i, old := range t.entries {
				if old.lastUsed < t.entries[idx].lastUsed {
					idx = i
				}
			}
		case EvictSoonestExpiry:
			idx = 0
			bestAt := time.Duration(math.MaxInt64)
			if d, ok := expiryInstant(t.entries[0]); ok {
				bestAt = d
			}
			for i, old := range t.entries[1:] {
				at := time.Duration(math.MaxInt64)
				if d, ok := expiryInstant(old); ok {
					at = d
				}
				// Strict < keeps the earliest-installed rule (entries order
				// is insertion order) as the deterministic tie-break.
				if at < bestAt {
					bestAt, idx = at, i+1
				}
			}
		}
		if idx >= 0 {
			r := removedRecord(t.entries[idx], openflow.RemovedEviction, now)
			victim = &r
			t.detach(t.entries[idx])
			copy(t.entries[idx:], t.entries[idx+1:])
			t.entries[len(t.entries)-1] = nil
			t.entries = t.entries[:len(t.entries)-1]
			t.evictions++
		}
	}
	t.entries = append(t.entries, e)
	t.attach(e)
	return victim, nil
}

// Delete removes every rule whose match equals m (strict) or is matched by
// the wildcarded deletion pattern (non-strict behaves like strict here for
// simplicity of the subset). It returns the removed rules.
func (t *Table) Delete(now time.Duration, m *openflow.Match, priority uint16, strict bool, outPort uint16) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		var match bool
		if strict {
			match = e.Match.Equal(m) && e.Priority == priority
		} else {
			// Non-strict: the pattern deletes every entry it covers
			// (OpenFlow 1.0 §4.6 — a fully wildcarded pattern flushes the
			// table), regardless of priority.
			match = m.Covers(&e.Match)
		}
		if match && outPort != openflow.PortNone && outPort != 0 {
			// Port 0 is not a valid port number (OpenFlow 1.0 numbers physical
			// ports from 1), so a zero-valued out_port means "no filter" just
			// like OFPP_NONE — callers predating the filter leave it unset.
			match = outputsTo(e.Actions, outPort)
		}
		if match {
			t.detach(e)
			removed = append(removed, removedRecord(e, openflow.RemovedDelete, now))
		} else {
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// outputsTo reports whether the action list forwards to the given port —
// the ofp_flow_mod out_port delete filter.
func outputsTo(actions []openflow.Action, port uint16) bool {
	for _, a := range actions {
		if out, ok := a.(*openflow.ActionOutput); ok && out.Port == port {
			return true
		}
	}
	return false
}

// DeleteByOutPort evicts every rule whose actions output to the given
// port, tagged with the supplied flow_removed reason — the switch-local
// cleanup when a data port goes down.
func (t *Table) DeleteByOutPort(now time.Duration, port uint16, reason uint8) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		if outputsTo(e.Actions, port) {
			t.detach(e)
			removed = append(removed, removedRecord(e, reason, now))
		} else {
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// Clear empties the table without emitting flow_removed records — crash
// semantics: a restarting switch comes back with no rules and no
// notifications about the ones it lost. It returns how many rules were
// dropped so ledger-keeping callers can account for the loss.
func (t *Table) Clear() int {
	n := len(t.entries)
	for _, e := range t.entries {
		t.detach(e)
	}
	clearTail(t.entries, 0)
	t.entries = t.entries[:0]
	return n
}

// Expire removes rules whose idle or hard timeout has passed, returning them
// with the matching reason codes.
func (t *Table) Expire(now time.Duration) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installedAt >= e.HardTimeout:
			t.detach(e)
			removed = append(removed, removedRecord(e, openflow.RemovedHardTimeout, now))
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
			t.detach(e)
			removed = append(removed, removedRecord(e, openflow.RemovedIdleTimeout, now))
		default:
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// NextExpiry reports the earliest future instant at which some rule could
// expire, and false if no rule carries a timeout. The simulator uses it to
// schedule expiry sweeps without polling.
func (t *Table) NextExpiry() (time.Duration, bool) {
	var next time.Duration
	found := false
	for _, e := range t.entries {
		if d, ok := expiryInstant(e); ok && (!found || d < next) {
			next, found = d, true
		}
	}
	return next, found
}

// Entries returns a snapshot copy of the rule list (for stats and tests).
func (t *Table) Entries() []*Entry {
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// IndexSize reports how many rules are served by the exact-pattern tuple
// (the PR-2 hash-index fast path) versus other wildcard patterns
// (diagnostics and tests).
func (t *Table) IndexSize() (indexed, wildcard int) {
	const exactWildcards = openflow.WildcardDLVLAN | openflow.WildcardDLVLANPCP | openflow.WildcardNWTOS
	for _, tu := range t.tuples {
		if tu.wildcards == exactWildcards {
			indexed += tu.size
		} else {
			wildcard += tu.size
		}
	}
	return indexed, wildcard
}

// TupleCount reports the number of distinct wildcard patterns currently
// installed — the breadth of the tuple-space search.
func (t *Table) TupleCount() int { return len(t.tuples) }

func clearTail(s []*Entry, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}
