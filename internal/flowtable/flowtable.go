// Package flowtable implements the OpenFlow flow table the switch datapath
// matches packets against: priority-ordered rules with idle and hard
// timeouts, per-rule traffic counters, and a configurable capacity bound
// with LRU eviction.
//
// The capacity bound exists because the paper's root-cause analysis (§II and
// §VI.B) hinges on it: rules for inactive flows get kicked out of the
// size-limited table, so packets of long-lived but bursty TCP connections
// can miss again mid-connection — exactly the scenario the switch buffer
// helps with.
//
// Lookup is served from an exact-match hash index whenever possible: rules
// whose match is the reactive-forwarding exact pattern (in_port plus the
// full L2/L3/L4 header fields, the dominant rule shape in every workload
// here) are keyed in a map and found in O(1), while wildcarded rules stay in
// a small priority-ordered scan list. The pre-index linear scan is retained
// as LookupOracle and property-tested for equivalence (DESIGN.md §10).
//
// All methods take the current time explicitly (a time.Duration since the
// start of the run) so the same code serves the virtual-time simulator and
// the live switch.
package flowtable

import (
	"errors"
	"fmt"
	"net/netip"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// Unlimited disables the capacity bound.
const Unlimited = 0

// Entry is one installed flow rule.
type Entry struct {
	Match       openflow.Match
	Priority    uint16
	Actions     []openflow.Action
	Cookie      uint64
	IdleTimeout time.Duration // 0 = never idles out
	HardTimeout time.Duration // 0 = never hard-expires
	Flags       uint16

	installedAt time.Duration
	lastUsed    time.Duration
	packets     uint64
	bytes       uint64
	seq         uint64 // insertion order; tie-breaks equal priorities like scan position
}

// Stats reports the rule's traffic counters and age.
func (e *Entry) Stats(now time.Duration) (packets, bytes uint64, age time.Duration) {
	return e.packets, e.bytes, now - e.installedAt
}

// LastUsed reports when the rule last matched a packet (or was installed).
func (e *Entry) LastUsed() time.Duration { return e.lastUsed }

// Removed describes a rule that left the table and why; the switch turns
// these into flow_removed messages when the rule asked for them.
type Removed struct {
	Entry  *Entry
	Reason uint8 // openflow.Removed* code
	At     time.Duration
}

// EvictionPolicy selects the victim when the table is full.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNone rejects inserts into a full table with ErrTableFull.
	EvictNone EvictionPolicy = 1
	// EvictLRU removes the least recently used rule to make room. This is
	// the behaviour the paper's §VI.B discussion assumes ("rules for
	// inactive flows will be kicked out and replaced by rules for active
	// flows").
	EvictLRU EvictionPolicy = 2
)

// ErrTableFull reports an insert into a full table under EvictNone.
var ErrTableFull = errors.New("flowtable: table full")

// exactWildcards is the wildcard set of openflow.ExactMatch: everything
// matched except VLAN and TOS. Rules with exactly this wildcard pattern are
// servable from the hash index because key equality is then equivalent to
// Match.Matches.
const exactWildcards = openflow.WildcardDLVLAN | openflow.WildcardDLVLANPCP | openflow.WildcardNWTOS

// exactKey is the comparable map key covering every field an exact-pattern
// rule matches on.
type exactKey struct {
	inPort uint16
	dlSrc  packet.MAC
	dlDst  packet.MAC
	dlType uint16
	proto  uint8
	nwSrc  netip.Addr
	nwDst  netip.Addr
	tpSrc  uint16
	tpDst  uint16
}

// indexable reports whether the entry's match is the exact pattern the hash
// index can serve.
func indexable(e *Entry) bool { return e.Match.Wildcards == exactWildcards }

// matchKey derives the index key from an exact-pattern match.
func matchKey(m *openflow.Match) exactKey {
	return exactKey{
		inPort: m.InPort,
		dlSrc:  m.DLSrc,
		dlDst:  m.DLDst,
		dlType: m.DLType,
		proto:  m.NWProto,
		nwSrc:  m.NWSrc,
		nwDst:  m.NWDst,
		tpSrc:  m.TPSrc,
		tpDst:  m.TPDst,
	}
}

// frameKey derives the index key a frame on inPort probes with.
func frameKey(inPort uint16, f *packet.Frame) exactKey {
	return exactKey{
		inPort: inPort,
		dlSrc:  f.SrcMAC,
		dlDst:  f.DstMAC,
		dlType: f.EtherType,
		proto:  f.Proto,
		nwSrc:  f.SrcIP,
		nwDst:  f.DstIP,
		tpSrc:  f.SrcPort,
		tpDst:  f.DstPort,
	}
}

// Table is a single OpenFlow flow table.
type Table struct {
	capacity int
	policy   EvictionPolicy
	entries  []*Entry

	// index maps exact-pattern rules by their full key. A bucket holds the
	// (rare) same-key rules that differ in priority, in insertion order.
	index map[exactKey][]*Entry
	// wild holds the non-indexable rules, in insertion order.
	wild    []*Entry
	nextSeq uint64

	lookups   uint64
	hits      uint64
	misses    uint64
	evictions uint64
}

// New creates a table. capacity Unlimited (0) means unbounded; policy
// selects full-table behaviour and must be valid when capacity is bounded.
func New(capacity int, policy EvictionPolicy) (*Table, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("flowtable: negative capacity %d", capacity)
	}
	if policy != EvictNone && policy != EvictLRU {
		return nil, fmt.Errorf("flowtable: unknown eviction policy %d", policy)
	}
	return &Table{
		capacity: capacity,
		policy:   policy,
		index:    make(map[exactKey][]*Entry),
	}, nil
}

// Len reports the number of installed rules.
func (t *Table) Len() int { return len(t.entries) }

// Capacity reports the configured bound (Unlimited if none).
func (t *Table) Capacity() int { return t.capacity }

// LookupStats reports lookup/hit/miss/eviction counters.
func (t *Table) LookupStats() (lookups, hits, misses, evictions uint64) {
	return t.lookups, t.hits, t.misses, t.evictions
}

// better reports whether e beats best under the scan's selection rule:
// highest priority wins, earliest-installed (lowest seq) breaks ties.
func better(e, best *Entry) bool {
	if best == nil {
		return true
	}
	if e.Priority != best.Priority {
		return e.Priority > best.Priority
	}
	return e.seq < best.seq
}

// Lookup finds the highest-priority rule matching a frame on inPort,
// updating its counters and recency. It returns nil on a table miss — the
// event that triggers the whole packet_in machinery.
//
// Exact-pattern rules are served from the hash index in O(1); only the
// wildcarded rules are scanned.
func (t *Table) Lookup(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	var best *Entry
	if len(t.index) > 0 {
		for _, e := range t.index[frameKey(inPort, f)] {
			if better(e, best) {
				best = e
			}
		}
	}
	for _, e := range t.wild {
		if better(e, best) && e.Match.Matches(inPort, f) {
			best = e
		}
	}
	return t.account(now, best, wireLen)
}

// LookupOracle is the pre-index linear scan, byte-for-byte the original
// lookup semantics (first strictly-higher-priority rule in insertion order
// wins). It is retained as the reference implementation the equivalence
// property test checks Lookup against; production code uses Lookup.
func (t *Table) LookupOracle(now time.Duration, inPort uint16, f *packet.Frame, wireLen int) *Entry {
	var best *Entry
	for _, e := range t.entries {
		if best != nil && e.Priority <= best.Priority {
			continue
		}
		if e.Match.Matches(inPort, f) {
			best = e
		}
	}
	return t.account(now, best, wireLen)
}

// account applies the hit/miss counter updates shared by both lookup paths.
func (t *Table) account(now time.Duration, best *Entry, wireLen int) *Entry {
	t.lookups++
	if best == nil {
		t.misses++
		return nil
	}
	t.hits++
	best.lastUsed = now
	best.packets++
	best.bytes += uint64(wireLen)
	return best
}

// attach adds a freshly appended entry to the lookup index.
func (t *Table) attach(e *Entry) {
	t.nextSeq++
	e.seq = t.nextSeq
	if indexable(e) {
		k := matchKey(&e.Match)
		t.index[k] = append(t.index[k], e)
	} else {
		t.wild = append(t.wild, e)
	}
}

// detach removes an entry from the lookup index (not from t.entries).
func (t *Table) detach(e *Entry) {
	if indexable(e) {
		k := matchKey(&e.Match)
		bucket := t.index[k]
		for i, b := range bucket {
			if b == e {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(t.index, k)
		} else {
			t.index[k] = bucket
		}
		return
	}
	for i, b := range t.wild {
		if b == e {
			t.wild = append(t.wild[:i], t.wild[i+1:]...)
			return
		}
	}
}

// replaceInEntries swaps old for e in the master list, preserving position.
func (t *Table) replaceInEntries(old, e *Entry) {
	for i, b := range t.entries {
		if b == old {
			t.entries[i] = e
			return
		}
	}
}

// Insert installs a rule. A rule with an identical match and priority
// replaces the old one (preserving nothing — spec flow_mod ADD semantics).
// When the table is full the policy decides: ErrTableFull, or LRU eviction
// with the victim returned so the caller can emit flow_removed.
func (t *Table) Insert(now time.Duration, e *Entry) (*Removed, error) {
	if e == nil {
		return nil, fmt.Errorf("flowtable: nil entry")
	}
	e.installedAt = now
	e.lastUsed = now

	// Replacement probe. Match.Equal requires identical wildcards, so an
	// exact-pattern rule can only replace one in its own index bucket and a
	// wildcard rule only one in the wild list — no full-table scan needed.
	if indexable(e) {
		k := matchKey(&e.Match)
		for i, old := range t.index[k] {
			if old.Priority == e.Priority && old.Match.Equal(&e.Match) {
				e.seq = old.seq // keep the scan-position tie-break stable
				t.index[k][i] = e
				t.replaceInEntries(old, e)
				return nil, nil
			}
		}
	} else {
		for i, old := range t.wild {
			if old.Priority == e.Priority && old.Match.Equal(&e.Match) {
				e.seq = old.seq
				t.wild[i] = e
				t.replaceInEntries(old, e)
				return nil, nil
			}
		}
	}

	var victim *Removed
	if t.capacity != Unlimited && len(t.entries) >= t.capacity {
		switch t.policy {
		case EvictNone:
			return nil, fmt.Errorf("%w: %d rules", ErrTableFull, len(t.entries))
		case EvictLRU:
			idx := 0
			for i, old := range t.entries {
				if old.lastUsed < t.entries[idx].lastUsed {
					idx = i
				}
			}
			victim = &Removed{Entry: t.entries[idx], Reason: openflow.RemovedEviction, At: now}
			t.detach(t.entries[idx])
			copy(t.entries[idx:], t.entries[idx+1:])
			t.entries[len(t.entries)-1] = nil
			t.entries = t.entries[:len(t.entries)-1]
			t.evictions++
		}
	}
	t.entries = append(t.entries, e)
	t.attach(e)
	return victim, nil
}

// Delete removes every rule whose match equals m (strict) or is matched by
// the wildcarded deletion pattern (non-strict behaves like strict here for
// simplicity of the subset). It returns the removed rules.
func (t *Table) Delete(now time.Duration, m *openflow.Match, priority uint16, strict bool, outPort uint16) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		var match bool
		if strict {
			match = e.Match.Equal(m) && e.Priority == priority
		} else {
			// Non-strict: the pattern deletes every entry it covers
			// (OpenFlow 1.0 §4.6 — a fully wildcarded pattern flushes the
			// table), regardless of priority.
			match = m.Covers(&e.Match)
		}
		if match && outPort != openflow.PortNone && outPort != 0 {
			// Port 0 is not a valid port number (OpenFlow 1.0 numbers physical
			// ports from 1), so a zero-valued out_port means "no filter" just
			// like OFPP_NONE — callers predating the filter leave it unset.
			match = outputsTo(e.Actions, outPort)
		}
		if match {
			t.detach(e)
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedDelete, At: now})
		} else {
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// outputsTo reports whether the action list forwards to the given port —
// the ofp_flow_mod out_port delete filter.
func outputsTo(actions []openflow.Action, port uint16) bool {
	for _, a := range actions {
		if out, ok := a.(*openflow.ActionOutput); ok && out.Port == port {
			return true
		}
	}
	return false
}

// DeleteByOutPort evicts every rule whose actions output to the given
// port, tagged with the supplied flow_removed reason — the switch-local
// cleanup when a data port goes down.
func (t *Table) DeleteByOutPort(now time.Duration, port uint16, reason uint8) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		if outputsTo(e.Actions, port) {
			t.detach(e)
			removed = append(removed, Removed{Entry: e, Reason: reason, At: now})
		} else {
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// Clear empties the table without emitting flow_removed records — crash
// semantics: a restarting switch comes back with no rules and no
// notifications about the ones it lost.
func (t *Table) Clear() {
	for _, e := range t.entries {
		t.detach(e)
	}
	clearTail(t.entries, 0)
	t.entries = t.entries[:0]
}

// Expire removes rules whose idle or hard timeout has passed, returning them
// with the matching reason codes.
func (t *Table) Expire(now time.Duration) []Removed {
	var removed []Removed
	kept := t.entries[:0]
	for _, e := range t.entries {
		switch {
		case e.HardTimeout > 0 && now-e.installedAt >= e.HardTimeout:
			t.detach(e)
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedHardTimeout, At: now})
		case e.IdleTimeout > 0 && now-e.lastUsed >= e.IdleTimeout:
			t.detach(e)
			removed = append(removed, Removed{Entry: e, Reason: openflow.RemovedIdleTimeout, At: now})
		default:
			kept = append(kept, e)
		}
	}
	clearTail(t.entries, len(kept))
	t.entries = kept
	return removed
}

// NextExpiry reports the earliest future instant at which some rule could
// expire, and false if no rule carries a timeout. The simulator uses it to
// schedule expiry sweeps without polling.
func (t *Table) NextExpiry() (time.Duration, bool) {
	var next time.Duration
	found := false
	consider := func(d time.Duration) {
		if !found || d < next {
			next, found = d, true
		}
	}
	for _, e := range t.entries {
		if e.HardTimeout > 0 {
			consider(e.installedAt + e.HardTimeout)
		}
		if e.IdleTimeout > 0 {
			consider(e.lastUsed + e.IdleTimeout)
		}
	}
	return next, found
}

// Entries returns a snapshot copy of the rule list (for stats and tests).
func (t *Table) Entries() []*Entry {
	out := make([]*Entry, len(t.entries))
	copy(out, t.entries)
	return out
}

// IndexSize reports how many rules are served by the exact-match hash index
// versus the wildcard scan list (diagnostics and tests).
func (t *Table) IndexSize() (indexed, wildcard int) {
	for _, bucket := range t.index {
		indexed += len(bucket)
	}
	return indexed, len(t.wild)
}

func clearTail(s []*Entry, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}
