package flowtable

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// This file property-tests the equivalence promised in the package doc: the
// indexed Lookup must return the same rule as the retained linear-scan
// LookupOracle — and leave identical counters behind — for any mix of exact
// and wildcard rules. Two tables are driven through the same randomized
// insert/delete/expire sequence; one is probed via Lookup, the other via
// LookupOracle, and every divergence is a bug in the index.

// eqFrame builds a parseable frame from a small field universe so probes
// collide with rules often enough to exercise hits, ties and misses.
func eqFrame(rng *rand.Rand) *packet.Frame {
	proto := uint8(packet.ProtoUDP)
	if rng.Intn(2) == 0 {
		proto = packet.ProtoTCP
	}
	return &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, byte(1 + rng.Intn(2))},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, byte(3 + rng.Intn(2))},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     proto,
		SrcIP:     netip.AddrFrom4([4]byte{10, 0, 0, byte(rng.Intn(4))}),
		DstIP:     netip.AddrFrom4([4]byte{10, 0, 1, byte(rng.Intn(4))}),
		SrcPort:   uint16(1000 + rng.Intn(4)),
		DstPort:   uint16(2000 + rng.Intn(4)),
	}
}

// eqMatch builds either the exact reactive-forwarding pattern or a random
// wildcard variant of it (extra wildcard bits on top of the exact set).
func eqMatch(rng *rand.Rand, inPort uint16, f *packet.Frame) openflow.Match {
	m := openflow.ExactMatch(inPort, f)
	if rng.Intn(2) == 0 {
		return m // exact: served by the hash index
	}
	extras := []uint32{
		openflow.WildcardInPort, openflow.WildcardDLSrc, openflow.WildcardDLDst,
		openflow.WildcardNWSrcAll, openflow.WildcardNWDstAll,
		openflow.WildcardTPSrc, openflow.WildcardTPDst, openflow.WildcardNWProto,
	}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		m.Wildcards |= extras[rng.Intn(len(extras))]
	}
	return m
}

// cloneEntry builds an independent Entry with the same rule content, so the
// two tables never share mutable state.
func cloneEntry(e *Entry) *Entry {
	return &Entry{
		Match:       e.Match,
		Priority:    e.Priority,
		Actions:     e.Actions,
		Cookie:      e.Cookie,
		IdleTimeout: e.IdleTimeout,
		HardTimeout: e.HardTimeout,
		Flags:       e.Flags,
	}
}

func TestLookupMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			indexed, err := New(Unlimited, EvictNone)
			if err != nil {
				t.Fatal(err)
			}
			oracle, err := New(Unlimited, EvictNone)
			if err != nil {
				t.Fatal(err)
			}
			now := time.Duration(0)
			var cookie uint64

			probe := func() {
				f := eqFrame(rng)
				inPort := uint16(1 + rng.Intn(3))
				wireLen := 60 + rng.Intn(1400)
				got := indexed.Lookup(now, inPort, f, wireLen)
				want := oracle.LookupOracle(now, inPort, f, wireLen)
				switch {
				case (got == nil) != (want == nil):
					t.Fatalf("t=%v frame %v in_port %d: Lookup=%v, oracle=%v", now, f.Key(), inPort, got, want)
				case got != nil && got.Cookie != want.Cookie:
					t.Fatalf("t=%v frame %v in_port %d: Lookup chose rule %d (prio %d), oracle rule %d (prio %d)",
						now, f.Key(), inPort, got.Cookie, got.Priority, want.Cookie, want.Priority)
				}
			}

			for op := 0; op < 600; op++ {
				now += time.Duration(rng.Intn(5)) * time.Millisecond
				switch r := rng.Intn(10); {
				case r < 4: // insert a rule (possibly replacing)
					cookie++
					e := &Entry{
						Match:    eqMatch(rng, uint16(1+rng.Intn(3)), eqFrame(rng)),
						Priority: []uint16{50, 100, 100, 200}[rng.Intn(4)],
						Cookie:   cookie,
					}
					if rng.Intn(4) == 0 {
						e.IdleTimeout = time.Duration(1+rng.Intn(20)) * time.Millisecond
					}
					if rng.Intn(4) == 0 {
						e.HardTimeout = time.Duration(1+rng.Intn(30)) * time.Millisecond
					}
					if _, err := indexed.Insert(now, cloneEntry(e)); err != nil {
						t.Fatalf("indexed insert: %v", err)
					}
					if _, err := oracle.Insert(now, cloneEntry(e)); err != nil {
						t.Fatalf("oracle insert: %v", err)
					}
				case r < 5: // delete a random installed rule
					es := indexed.Entries()
					if len(es) == 0 {
						continue
					}
					victim := es[rng.Intn(len(es))]
					a := indexed.Delete(now, &victim.Match, victim.Priority, true, openflow.PortNone)
					b := oracle.Delete(now, &victim.Match, victim.Priority, true, openflow.PortNone)
					if len(a) != len(b) {
						t.Fatalf("delete removed %d vs %d rules", len(a), len(b))
					}
				case r < 6: // expiry sweep
					a := indexed.Expire(now)
					b := oracle.Expire(now)
					if len(a) != len(b) {
						t.Fatalf("expire removed %d vs %d rules", len(a), len(b))
					}
				default:
					probe()
				}
			}

			// Final state: identical rule lists, per-rule counters, and
			// aggregate lookup statistics.
			ea, eb := indexed.Entries(), oracle.Entries()
			if len(ea) != len(eb) {
				t.Fatalf("tables diverged: %d vs %d rules", len(ea), len(eb))
			}
			for i := range ea {
				if ea[i].Cookie != eb[i].Cookie {
					t.Fatalf("rule %d: cookie %d vs %d", i, ea[i].Cookie, eb[i].Cookie)
				}
				pa, ba, _ := ea[i].Stats(now)
				pb, bb, _ := eb[i].Stats(now)
				if pa != pb || ba != bb || ea[i].LastUsed() != eb[i].LastUsed() {
					t.Errorf("rule %d (cookie %d): counters %d/%d/%v vs %d/%d/%v",
						i, ea[i].Cookie, pa, ba, ea[i].LastUsed(), pb, bb, eb[i].LastUsed())
				}
			}
			la, ha, ma, _ := indexed.LookupStats()
			lb, hb, mb, _ := oracle.LookupStats()
			if la != lb || ha != hb || ma != mb {
				t.Errorf("lookup stats diverged: %d/%d/%d vs %d/%d/%d", la, ha, ma, lb, hb, mb)
			}
		})
	}
}
