package flowtable

import (
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func frameFor(srcIP string, srcPort uint16) *packet.Frame {
	return &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   srcPort,
		DstPort:   9,
	}
}

func entryFor(f *packet.Frame, priority uint16) *Entry {
	return &Entry{
		Match:    openflow.ExactMatch(1, f),
		Priority: priority,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
}

func mustNew(t *testing.T, capacity int, policy EvictionPolicy) *Table {
	t.Helper()
	tbl, err := New(capacity, policy)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tbl
}

func TestLookupMissThenHit(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 100)
	if got := tbl.Lookup(0, 1, f, 1000); got != nil {
		t.Fatalf("Lookup on empty table = %v, want nil", got)
	}
	if _, err := tbl.Insert(time.Millisecond, entryFor(f, 10)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	e := tbl.Lookup(2*time.Millisecond, 1, f, 1000)
	if e == nil {
		t.Fatal("Lookup after insert = nil")
	}
	pkts, bytes, _ := e.Stats(2 * time.Millisecond)
	if pkts != 1 || bytes != 1000 {
		t.Errorf("stats = %d pkts %d bytes, want 1/1000", pkts, bytes)
	}
	lookups, hits, misses, _ := tbl.LookupStats()
	if lookups != 2 || hits != 1 || misses != 1 {
		t.Errorf("counters = %d/%d/%d, want 2/1/1", lookups, hits, misses)
	}
}

func TestLookupRespectsInPort(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 100)
	if _, err := tbl.Insert(0, entryFor(f, 10)); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if got := tbl.Lookup(0, 3, f, 100); got != nil {
		t.Error("rule for in_port 1 matched on in_port 3")
	}
}

func TestLookupPicksHighestPriority(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 100)
	lo := &Entry{Match: openflow.MatchAll(), Priority: 1,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 3}}}
	hi := entryFor(f, 100)
	if _, err := tbl.Insert(0, lo); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(0, hi); err != nil {
		t.Fatal(err)
	}
	got := tbl.Lookup(0, 1, f, 100)
	if got != hi {
		t.Errorf("Lookup picked priority %d, want %d", got.Priority, hi.Priority)
	}
	// A frame only the wildcard rule matches falls through to it.
	other := frameFor("99.0.0.1", 1)
	if got := tbl.Lookup(0, 1, other, 100); got != lo {
		t.Errorf("fallback rule not used")
	}
}

func TestInsertReplacesSameMatchAndPriority(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 100)
	a := entryFor(f, 10)
	b := entryFor(f, 10)
	b.Actions = []openflow.Action{&openflow.ActionOutput{Port: 7}}
	if _, err := tbl.Insert(0, a); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(0, b); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", tbl.Len())
	}
	got := tbl.Lookup(0, 1, f, 100)
	if out := got.Actions[0].(*openflow.ActionOutput); out.Port != 7 {
		t.Errorf("actions not replaced: port %d", out.Port)
	}
	// Different priority inserts separately.
	c := entryFor(f, 20)
	if _, err := tbl.Insert(0, c); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
}

func TestCapacityEvictNone(t *testing.T) {
	tbl := mustNew(t, 2, EvictNone)
	for i := 0; i < 2; i++ {
		f := frameFor("10.0.0.1", uint16(i+1))
		if _, err := tbl.Insert(0, entryFor(f, 10)); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	f := frameFor("10.0.0.1", 99)
	if _, err := tbl.Insert(0, entryFor(f, 10)); !errors.Is(err, ErrTableFull) {
		t.Errorf("Insert into full table: %v, want ErrTableFull", err)
	}
}

func TestCapacityEvictLRU(t *testing.T) {
	tbl := mustNew(t, 2, EvictLRU)
	f1 := frameFor("10.0.0.1", 1)
	f2 := frameFor("10.0.0.1", 2)
	f3 := frameFor("10.0.0.1", 3)
	e1, e2 := entryFor(f1, 10), entryFor(f2, 10)
	if _, err := tbl.Insert(0, e1); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(time.Millisecond, e2); err != nil {
		t.Fatal(err)
	}
	// Touch e1 so e2 becomes LRU.
	tbl.Lookup(2*time.Millisecond, 1, f1, 100)
	victim, err := tbl.Insert(3*time.Millisecond, entryFor(f3, 10))
	if err != nil {
		t.Fatalf("Insert with eviction: %v", err)
	}
	if victim == nil || victim.Entry != e2 {
		t.Fatalf("victim = %+v, want e2", victim)
	}
	if victim.Reason != openflow.RemovedEviction {
		t.Errorf("victim reason = %d, want eviction", victim.Reason)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tbl.Len())
	}
	if tbl.Lookup(4*time.Millisecond, 1, f1, 100) == nil {
		t.Error("recently used rule was evicted")
	}
	_, _, _, evictions := tbl.LookupStats()
	if evictions != 1 {
		t.Errorf("evictions = %d, want 1", evictions)
	}
}

func TestDeleteStrict(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 1)
	e := entryFor(f, 10)
	if _, err := tbl.Insert(0, e); err != nil {
		t.Fatal(err)
	}
	m := openflow.ExactMatch(1, f)
	removed := tbl.Delete(time.Millisecond, &m, 11, true, openflow.PortNone)
	if len(removed) != 0 {
		t.Errorf("strict delete with wrong priority removed %d rules", len(removed))
	}
	removed = tbl.Delete(time.Millisecond, &m, 10, true, openflow.PortNone)
	if len(removed) != 1 || removed[0].Entry != e {
		t.Fatalf("strict delete removed %d rules", len(removed))
	}
	if removed[0].Reason != openflow.RemovedDelete {
		t.Errorf("reason = %d, want delete", removed[0].Reason)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d, want 0", tbl.Len())
	}
}

func TestExpireIdleAndHard(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f1 := frameFor("10.0.0.1", 1)
	f2 := frameFor("10.0.0.1", 2)
	f3 := frameFor("10.0.0.1", 3)
	idle := entryFor(f1, 10)
	idle.IdleTimeout = 5 * time.Second
	hard := entryFor(f2, 10)
	hard.HardTimeout = 8 * time.Second
	forever := entryFor(f3, 10)
	for _, e := range []*Entry{idle, hard, forever} {
		if _, err := tbl.Insert(0, e); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the idle rule alive by matching it at t=4s.
	tbl.Lookup(4*time.Second, 1, f1, 100)

	if removed := tbl.Expire(4 * time.Second); len(removed) != 0 {
		t.Fatalf("premature expiry of %d rules", len(removed))
	}
	removed := tbl.Expire(9 * time.Second)
	if len(removed) != 2 {
		t.Fatalf("expired %d rules, want 2 (idle at 4+5s, hard at 8s)", len(removed))
	}
	reasons := map[uint8]int{}
	for _, r := range removed {
		reasons[r.Reason]++
	}
	if reasons[openflow.RemovedIdleTimeout] != 1 || reasons[openflow.RemovedHardTimeout] != 1 {
		t.Errorf("reasons = %v", reasons)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1 (the timeout-free rule)", tbl.Len())
	}
}

func TestNextExpiry(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	if _, ok := tbl.NextExpiry(); ok {
		t.Error("NextExpiry on empty table reported a deadline")
	}
	f := frameFor("10.0.0.1", 1)
	e := entryFor(f, 10)
	e.IdleTimeout = 5 * time.Second
	e.HardTimeout = 30 * time.Second
	if _, err := tbl.Insert(2*time.Second, e); err != nil {
		t.Fatal(err)
	}
	next, ok := tbl.NextExpiry()
	if !ok || next != 7*time.Second {
		t.Errorf("NextExpiry = %v/%v, want 7s/true", next, ok)
	}
	tbl.Lookup(6*time.Second, 1, f, 100)
	next, ok = tbl.NextExpiry()
	if !ok || next != 11*time.Second {
		t.Errorf("NextExpiry after touch = %v, want 11s", next)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, EvictNone); err == nil {
		t.Error("New(-1) succeeded")
	}
	if _, err := New(10, EvictionPolicy(0)); err == nil {
		t.Error("New with invalid policy succeeded")
	}
}

func TestInsertNil(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	if _, err := tbl.Insert(0, nil); err == nil {
		t.Error("Insert(nil) succeeded")
	}
}

func TestEntriesSnapshotIsolated(t *testing.T) {
	tbl := mustNew(t, Unlimited, EvictNone)
	f := frameFor("10.0.0.1", 1)
	if _, err := tbl.Insert(0, entryFor(f, 10)); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Entries()
	snap[0] = nil
	if tbl.Entries()[0] == nil {
		t.Error("snapshot mutation leaked into table")
	}
}

func TestPropertyTableNeverExceedsCapacity(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	prop := func() bool {
		capacity := 1 + r.Intn(8)
		tbl, err := New(capacity, EvictLRU)
		if err != nil {
			return false
		}
		now := time.Duration(0)
		for i := 0; i < 50; i++ {
			f := frameFor("10.0.0.1", uint16(r.Intn(20)+1))
			switch r.Intn(3) {
			case 0:
				if _, err := tbl.Insert(now, entryFor(f, uint16(r.Intn(3)))); err != nil {
					return false
				}
			case 1:
				tbl.Lookup(now, 1, f, 100)
			default:
				m := openflow.ExactMatch(1, f)
				tbl.Delete(now, &m, 0, false, openflow.PortNone)
			}
			now += time.Millisecond
			if tbl.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExpireMonotone(t *testing.T) {
	// After Expire(now), no remaining rule is past its deadline.
	r := rand.New(rand.NewSource(22))
	prop := func() bool {
		tbl, err := New(Unlimited, EvictNone)
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			f := frameFor("10.0.0.1", uint16(i+1))
			e := entryFor(f, 10)
			e.IdleTimeout = time.Duration(r.Intn(10)) * time.Second
			e.HardTimeout = time.Duration(r.Intn(10)) * time.Second
			if _, err := tbl.Insert(0, e); err != nil {
				return false
			}
		}
		now := time.Duration(r.Intn(12)) * time.Second
		tbl.Expire(now)
		for _, e := range tbl.Entries() {
			if e.HardTimeout > 0 && now >= e.HardTimeout {
				return false
			}
			if e.IdleTimeout > 0 && now >= e.IdleTimeout {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
