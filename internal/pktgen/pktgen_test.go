package pktgen

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"sdnbuffer/internal/packet"
)

func testConfig(rate float64) Config {
	return Config{
		FrameSize: 1000,
		RateMbps:  rate,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}
}

func TestSinglePacketFlowsShape(t *testing.T) {
	s, err := SinglePacketFlows(testConfig(100), 1000)
	if err != nil {
		t.Fatalf("SinglePacketFlows: %v", err)
	}
	if len(s) != 1000 {
		t.Fatalf("emissions = %d, want 1000", len(s))
	}
	if got := s.Flows(); got != 1000 {
		t.Errorf("flows = %d, want 1000 (each packet a new flow)", got)
	}
	// Every frame is 1000 bytes and parses as valid UDP.
	keys := make(map[packet.FlowKey]bool)
	for i, e := range s {
		if len(e.Frame) != 1000 {
			t.Fatalf("frame %d is %d bytes", i, len(e.Frame))
		}
		f, err := packet.Parse(e.Frame)
		if err != nil {
			t.Fatalf("frame %d unparseable: %v", i, err)
		}
		if f.Proto != packet.ProtoUDP {
			t.Fatalf("frame %d proto %d", i, f.Proto)
		}
		if f.Key() != e.Key {
			t.Fatalf("frame %d key mismatch", i)
		}
		if keys[e.Key] {
			t.Fatalf("duplicate flow key at %d: forged IPs must differ", i)
		}
		keys[e.Key] = true
	}
}

func TestSinglePacketFlowsPacing(t *testing.T) {
	// 1000-byte frames at 100 Mbps: one frame every 80µs.
	s, err := SinglePacketFlows(testConfig(100), 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range s {
		want := time.Duration(i) * 80 * time.Microsecond
		if e.At != want {
			t.Errorf("emission %d at %v, want %v", i, e.At, want)
		}
	}
	// Halving the rate doubles the gap.
	s50, err := SinglePacketFlows(testConfig(50), 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := s50[1].At; got != 160*time.Microsecond {
		t.Errorf("50 Mbps gap = %v, want 160µs", got)
	}
}

func TestSinglePacketFlowsAchievedRate(t *testing.T) {
	for _, rate := range []float64{5, 35, 100} {
		s, err := SinglePacketFlows(testConfig(rate), 200)
		if err != nil {
			t.Fatal(err)
		}
		// Offered bytes over the schedule span approximate the target rate.
		span := s.Duration() + time.Duration(float64(8000)/(rate*1e6)*1e9)
		got := float64(s.TotalBytes()) * 8 / 1e6 / span.Seconds()
		if got < rate*0.99 || got > rate*1.01 {
			t.Errorf("rate %g: achieved %g Mbps", rate, got)
		}
	}
}

func TestInterleavedBurstsCrossSequence(t *testing.T) {
	s, err := InterleavedBursts(testConfig(100), 50, 20, 5)
	if err != nil {
		t.Fatalf("InterleavedBursts: %v", err)
	}
	if len(s) != 1000 {
		t.Fatalf("emissions = %d, want 50*20", len(s))
	}
	if got := s.Flows(); got != 50 {
		t.Errorf("flows = %d, want 50", got)
	}
	// First ten emissions: flows 0,1,2,3,4 seq 0 then flows 0..4 seq 1.
	wantFlow := []int{0, 1, 2, 3, 4, 0, 1, 2, 3, 4}
	wantSeq := []int{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}
	for i := 0; i < 10; i++ {
		if s[i].FlowID != wantFlow[i] || s[i].Seq != wantSeq[i] {
			t.Errorf("emission %d = flow %d seq %d, want %d/%d",
				i, s[i].FlowID, s[i].Seq, wantFlow[i], wantSeq[i])
		}
	}
	// Second group starts at flow 5 after 100 packets.
	if s[100].FlowID != 5 || s[100].Seq != 0 {
		t.Errorf("emission 100 = flow %d seq %d, want 5/0", s[100].FlowID, s[100].Seq)
	}
	// Times strictly increase by the pacing gap.
	for i := 1; i < len(s); i++ {
		if s[i].At <= s[i-1].At {
			t.Fatalf("schedule not strictly increasing at %d", i)
		}
	}
	// Within a flow, sequence numbers are in arrival order.
	lastSeq := make(map[int]int)
	for _, e := range s {
		if prev, ok := lastSeq[e.FlowID]; ok && e.Seq != prev+1 {
			t.Fatalf("flow %d: seq %d after %d", e.FlowID, e.Seq, prev)
		}
		lastSeq[e.FlowID] = e.Seq
	}
}

func TestInterleavedBurstsValidation(t *testing.T) {
	if _, err := InterleavedBursts(testConfig(100), 50, 20, 7); err == nil {
		t.Error("accepted indivisible group size")
	}
	if _, err := InterleavedBursts(testConfig(100), 0, 20, 5); err == nil {
		t.Error("accepted zero flows")
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero rate", func(c *Config) { c.RateMbps = 0 }},
		{"negative rate", func(c *Config) { c.RateMbps = -1 }},
		{"tiny frame", func(c *Config) { c.FrameSize = 10 }},
		{"oversized frame", func(c *Config) { c.FrameSize = 9000 }},
		{"no dst ip", func(c *Config) { c.DstIP = netip.Addr{} }},
		{"v6 dst", func(c *Config) { c.DstIP = netip.MustParseAddr("::1") }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := testConfig(100)
			tt.mut(&c)
			if _, err := SinglePacketFlows(c, 10); err == nil {
				t.Errorf("%s accepted", tt.name)
			}
		})
	}
	if _, err := SinglePacketFlows(testConfig(100), 0); err == nil {
		t.Error("accepted zero flow count")
	}
}

func TestPoissonFlows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := PoissonFlows(testConfig(50), rng, 20, 5)
	if err != nil {
		t.Fatalf("PoissonFlows: %v", err)
	}
	if got := s.Flows(); got != 20 {
		t.Errorf("flows = %d, want 20", got)
	}
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatalf("schedule decreasing at %d", i)
		}
	}
	if _, err := PoissonFlows(testConfig(50), nil, 5, 5); err == nil {
		t.Error("accepted nil rng")
	}
	if _, err := PoissonFlows(testConfig(50), rng, 0, 5); err == nil {
		t.Error("accepted zero flows")
	}
}

func TestPoissonFlowsDeterministicPerSeed(t *testing.T) {
	mk := func() Schedule {
		s, err := PoissonFlows(testConfig(50), rand.New(rand.NewSource(7)), 10, 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].FlowID != b[i].FlowID {
			t.Fatalf("emission %d differs", i)
		}
	}
}

func TestTCPEvictionFlow(t *testing.T) {
	cfg := TCPFlowConfig{
		Config:      testConfig(50),
		SrcIP:       netip.MustParseAddr("10.1.0.1"),
		SrcPort:     40000,
		BurstPkts:   5,
		PauseLen:    2 * time.Second,
		SecondBurst: 8,
	}
	s, err := TCPEvictionFlow(cfg)
	if err != nil {
		t.Fatalf("TCPEvictionFlow: %v", err)
	}
	// SYN + ACK + 5 + 8 = 15 segments.
	if len(s) != 15 {
		t.Fatalf("segments = %d, want 15", len(s))
	}
	f0, err := packet.Parse(s[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f0.Flags&packet.FlagSYN == 0 {
		t.Error("first segment is not SYN")
	}
	// One 5-tuple throughout.
	for i, e := range s {
		if e.Key != s[0].Key {
			t.Fatalf("segment %d has different key", i)
		}
	}
	// The pause separates burst 1 from burst 2.
	gapAt := 2 + cfg.BurstPkts // index of first second-burst segment
	gap := s[gapAt].At - s[gapAt-1].At
	if gap < cfg.PauseLen {
		t.Errorf("pause = %v, want >= %v", gap, cfg.PauseLen)
	}
	// TCP sequence numbers advance across data segments.
	var lastSeq uint32
	for i, e := range s {
		f, err := packet.Parse(e.Frame)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(f.Payload) > 0 && f.Seq <= lastSeq {
			t.Errorf("segment %d seq %d did not advance past %d", i, f.Seq, lastSeq)
		}
		if len(f.Payload) > 0 {
			lastSeq = f.Seq
		}
	}
}

func TestTCPEvictionFlowValidation(t *testing.T) {
	base := TCPFlowConfig{
		Config:      testConfig(50),
		SrcIP:       netip.MustParseAddr("10.1.0.1"),
		SrcPort:     40000,
		BurstPkts:   5,
		PauseLen:    time.Second,
		SecondBurst: 5,
	}
	bad := base
	bad.BurstPkts = 0
	if _, err := TCPEvictionFlow(bad); err == nil {
		t.Error("accepted zero burst")
	}
	bad = base
	bad.PauseLen = 0
	if _, err := TCPEvictionFlow(bad); err == nil {
		t.Error("accepted zero pause")
	}
	bad = base
	bad.SrcIP = netip.Addr{}
	if _, err := TCPEvictionFlow(bad); err == nil {
		t.Error("accepted missing src ip")
	}
}

func TestPropertySchedulesSortedAndParseable(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	prop := func() bool {
		rate := 5 + r.Float64()*95
		c := testConfig(rate)
		c.FrameSize = 100 + r.Intn(1400)
		var s Schedule
		var err error
		if r.Intn(2) == 0 {
			s, err = SinglePacketFlows(c, 1+r.Intn(100))
		} else {
			g := 1 + r.Intn(5)
			s, err = InterleavedBursts(c, g*(1+r.Intn(5)), 1+r.Intn(10), g)
		}
		if err != nil {
			return false
		}
		for i, e := range s {
			if i > 0 && e.At < s[i-1].At {
				return false
			}
			if _, err := packet.Parse(e.Frame); err != nil {
				return false
			}
			if packet.VerifyChecksums(e.Frame) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestScheduleHelpersEdgeCases(t *testing.T) {
	var empty Schedule
	if empty.Duration() != 0 || empty.TotalBytes() != 0 || empty.Flows() != 0 {
		t.Error("empty schedule helpers not zero")
	}
	s, err := SinglePacketFlows(testConfig(50), 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Duration() != s[2].At {
		t.Errorf("Duration = %v, want %v", s.Duration(), s[2].At)
	}
	if s.TotalBytes() != 3000 {
		t.Errorf("TotalBytes = %d, want 3000", s.TotalBytes())
	}
}

func TestCustomDstPort(t *testing.T) {
	c := testConfig(50)
	c.DstPort = 4242
	s, err := SinglePacketFlows(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := packet.Parse(s[0].Frame)
	if err != nil {
		t.Fatal(err)
	}
	if f.DstPort != 4242 {
		t.Errorf("dst port = %d, want 4242", f.DstPort)
	}
}

func TestJitterPreservesMeanRateAndOrdering(t *testing.T) {
	c := testConfig(50)
	c.Jitter = 0.5
	c.Seed = 9
	s, err := SinglePacketFlows(c, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Fatal("jittered schedule not sorted")
		}
	}
	// Mean achieved rate within 10% of the target.
	span := s.Duration()
	rate := float64(s.TotalBytes()-int64(len(s[0].Frame))) * 8 / 1e6 / span.Seconds()
	if rate < 45 || rate > 55 {
		t.Errorf("jittered rate = %g, want ~50", rate)
	}
	// Jitter validation.
	bad := testConfig(50)
	bad.Jitter = 1.5
	if _, err := SinglePacketFlows(bad, 5); err == nil {
		t.Error("accepted jitter > 1")
	}
	bad.Jitter = -0.1
	if _, err := SinglePacketFlows(bad, 5); err == nil {
		t.Error("accepted negative jitter")
	}
}
