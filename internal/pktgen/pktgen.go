// Package pktgen generates the testbed's traffic, mirroring how the paper
// drives its experiments with the Linux pktgen tool: UDP frames of a fixed
// size, paced to a target sending rate, with forged source IP addresses so
// every flow is new to the switch.
//
// Workloads are precomputed emission schedules: a sorted list of (time,
// frame) pairs a host replays. Precomputing keeps the simulator
// deterministic and makes workloads inspectable in tests.
package pktgen

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"sdnbuffer/internal/packet"
)

// Emission is one scheduled frame transmission.
type Emission struct {
	At     time.Duration
	Frame  []byte
	FlowID int // workload-local flow index
	Seq    int // packet index within the flow
	Key    packet.FlowKey
}

// Schedule is a time-ordered list of emissions.
type Schedule []Emission

// Duration reports the time of the last emission (the nominal sending
// window).
func (s Schedule) Duration() time.Duration {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].At
}

// TotalBytes reports the sum of frame sizes.
func (s Schedule) TotalBytes() int64 {
	var n int64
	for _, e := range s {
		n += int64(len(e.Frame))
	}
	return n
}

// Flows reports the number of distinct flows in the schedule.
func (s Schedule) Flows() int {
	seen := make(map[int]bool)
	for _, e := range s {
		seen[e.FlowID] = true
	}
	return len(seen)
}

// Config describes the common frame parameters.
type Config struct {
	// FrameSize is the full Ethernet frame size in bytes (the paper uses
	// 1000).
	FrameSize int
	// RateMbps is the sending rate the host paces to.
	RateMbps float64
	// SrcMAC/DstMAC and DstIP identify the receiving host; source IPs are
	// forged per flow.
	SrcMAC packet.MAC
	DstMAC packet.MAC
	DstIP  netip.Addr
	// DstPort is the destination UDP port (the paper's pktgen default, 9,
	// when zero).
	DstPort uint16
	// Jitter randomizes inter-frame gaps by the given fraction (0 = exact
	// pacing, 0.5 = gaps uniform in [0.5g, 1.5g]), preserving the mean
	// rate. Real pktgen pacing is not metronomic; jitter is what lets
	// queueing effects appear gradually below saturation instead of
	// switching on at exactly 100% utilization.
	Jitter float64
	// Seed drives the jitter (and nothing else); schedules are
	// deterministic per seed.
	Seed int64
}

// headerOverhead is the per-frame byte count consumed by Ethernet, IPv4 and
// UDP headers.
const headerOverhead = packet.EthernetHeaderLen + packet.IPv4HeaderLen + packet.UDPHeaderLen

func (c *Config) validate() error {
	if c.FrameSize < headerOverhead {
		return fmt.Errorf("pktgen: frame size %d below header overhead %d", c.FrameSize, headerOverhead)
	}
	if c.FrameSize > 1514 {
		return fmt.Errorf("pktgen: frame size %d exceeds Ethernet MTU frame", c.FrameSize)
	}
	if c.RateMbps <= 0 {
		return fmt.Errorf("pktgen: rate must be positive, got %g Mbps", c.RateMbps)
	}
	if !c.DstIP.Is4() {
		return fmt.Errorf("pktgen: destination must be an IPv4 address")
	}
	if c.Jitter < 0 || c.Jitter > 1 {
		return fmt.Errorf("pktgen: jitter must be in [0, 1], got %g", c.Jitter)
	}
	return nil
}

// pacer yields successive inter-frame gaps honouring the jitter setting.
type pacer struct {
	gap    time.Duration
	jitter float64
	rng    *rand.Rand
}

func (c *Config) pacer() *pacer {
	return &pacer{gap: c.gap(), jitter: c.Jitter, rng: rand.New(rand.NewSource(c.Seed))}
}

func (p *pacer) next() time.Duration {
	if p.jitter == 0 {
		return p.gap
	}
	f := 1 - p.jitter + 2*p.jitter*p.rng.Float64()
	return time.Duration(float64(p.gap) * f)
}

func (c *Config) dstPort() uint16 {
	if c.DstPort == 0 {
		return 9 // discard protocol, pktgen's default
	}
	return c.DstPort
}

// gap reports the inter-frame pacing interval for the configured rate.
func (c *Config) gap() time.Duration {
	return time.Duration(float64(c.FrameSize*8) / (c.RateMbps * 1e6) * float64(time.Second))
}

// forgedSrcIP derives a distinct source address per flow index, as pktgen's
// source-IP forging does.
func forgedSrcIP(flowID int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 1, byte(flowID >> 8), byte(flowID)})
}

// zeroPad backs every generated payload: pktgen payloads are all-zero and
// Serialize copies them into the wire buffer, so all frames (and all
// concurrently generating sweep cells) can share this one read-only slice
// instead of allocating per frame. validate() caps FrameSize at 1514, so the
// slice is always long enough.
var zeroPad = make([]byte, 1514)

// buildFrame serializes one UDP frame for the given flow and size.
func buildFrame(c *Config, flowID int, srcPort uint16, ipid uint16) ([]byte, packet.FlowKey, error) {
	f := &packet.Frame{
		SrcMAC:    c.SrcMAC,
		DstMAC:    c.DstMAC,
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     forgedSrcIP(flowID),
		DstIP:     c.DstIP,
		IPID:      ipid,
		SrcPort:   srcPort,
		DstPort:   c.dstPort(),
		Payload:   zeroPad[:c.FrameSize-headerOverhead],
	}
	wire, err := f.Serialize()
	if err != nil {
		return nil, packet.FlowKey{}, fmt.Errorf("pktgen: building frame: %w", err)
	}
	return wire, f.Key(), nil
}

// SinglePacketFlows builds the paper's §IV workload: n flows of one packet
// each, every flow from a fresh forged source IP, paced back-to-back at the
// configured rate. 1000 flows at 5-100 Mbps with 1000-byte frames
// reproduces the study's sweep points.
func SinglePacketFlows(c Config, n int) (Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("pktgen: flow count must be positive, got %d", n)
	}
	pc := c.pacer()
	out := make(Schedule, 0, n)
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		wire, key, err := buildFrame(&c, i, uint16(10000+i%50000), uint16(i))
		if err != nil {
			return nil, err
		}
		out = append(out, Emission{
			At:     at,
			Frame:  wire,
			FlowID: i,
			Seq:    0,
			Key:    key,
		})
		at += pc.next()
	}
	return out, nil
}

// InterleavedBursts builds the paper's §V workload: flows of pktsPerFlow
// packets each, released in groups of groupSize flows whose packets are
// interleaved in cross sequence (f1p1, f2p1, …, fGp1, f1p2, f2p2, …), all
// paced at the configured rate. The paper uses 50 flows × 20 packets in
// groups of 5.
func InterleavedBursts(c Config, flows, pktsPerFlow, groupSize int) (Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if flows <= 0 || pktsPerFlow <= 0 || groupSize <= 0 {
		return nil, fmt.Errorf("pktgen: flows/pktsPerFlow/groupSize must be positive, got %d/%d/%d",
			flows, pktsPerFlow, groupSize)
	}
	if flows%groupSize != 0 {
		return nil, fmt.Errorf("pktgen: flows %d not divisible by group size %d", flows, groupSize)
	}
	pc := c.pacer()
	out := make(Schedule, 0, flows*pktsPerFlow)
	at := time.Duration(0)
	for group := 0; group < flows/groupSize; group++ {
		base := group * groupSize
		for seq := 0; seq < pktsPerFlow; seq++ {
			for f := 0; f < groupSize; f++ {
				flowID := base + f
				wire, key, err := buildFrame(&c, flowID, uint16(20000+flowID), uint16(seq))
				if err != nil {
					return nil, err
				}
				out = append(out, Emission{
					At:     at,
					Frame:  wire,
					FlowID: flowID,
					Seq:    seq,
					Key:    key,
				})
				at += pc.next()
			}
		}
	}
	return out, nil
}

// PoissonFlows builds an open-loop workload with exponentially distributed
// flow inter-arrivals around the target rate and a geometric-ish packet
// count per flow, for robustness experiments beyond the paper's fixed
// patterns. rng must be seeded by the caller for reproducibility.
func PoissonFlows(c Config, rng *rand.Rand, flows, meanPktsPerFlow int) (Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if flows <= 0 || meanPktsPerFlow <= 0 {
		return nil, fmt.Errorf("pktgen: flows/meanPktsPerFlow must be positive, got %d/%d", flows, meanPktsPerFlow)
	}
	if rng == nil {
		return nil, fmt.Errorf("pktgen: nil rng")
	}
	// The mean inter-frame gap that achieves the configured rate.
	meanGap := c.gap()
	out := Schedule{}
	at := time.Duration(0)
	for i := 0; i < flows; i++ {
		pkts := 1 + rng.Intn(2*meanPktsPerFlow-1) // uniform, mean ≈ meanPktsPerFlow
		for seq := 0; seq < pkts; seq++ {
			wire, key, err := buildFrame(&c, i, uint16(30000+i), uint16(seq))
			if err != nil {
				return nil, err
			}
			out = append(out, Emission{At: at, Frame: wire, FlowID: i, Seq: seq, Key: key})
			at += time.Duration(rng.ExpFloat64() * float64(meanGap))
		}
	}
	return out, nil
}

// MissStorm builds the overload workload: flows distinct 5-tuples emitted
// round-robin (f1p1, f2p1, …, fNp1, f1p2, …) so every flow stays
// concurrently live at the switch for the whole run, each carrying
// pktsPerFlow packets. When elephantPkts > pktsPerFlow, flow 0 is an
// elephant that keeps sending after the mice finish — the shape that
// exercises the byte-budget admission threshold (one fat flow must not
// starve newly arriving flows out of the shared pool).
func MissStorm(c Config, flows, pktsPerFlow, elephantPkts int) (Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if flows <= 0 || pktsPerFlow <= 0 {
		return nil, fmt.Errorf("pktgen: flows/pktsPerFlow must be positive, got %d/%d", flows, pktsPerFlow)
	}
	if elephantPkts < 0 {
		return nil, fmt.Errorf("pktgen: elephantPkts must be non-negative, got %d", elephantPkts)
	}
	counts := make([]int, flows)
	total := 0
	for i := range counts {
		counts[i] = pktsPerFlow
		total += pktsPerFlow
	}
	if elephantPkts > pktsPerFlow {
		total += elephantPkts - counts[0]
		counts[0] = elephantPkts
	}
	pc := c.pacer()
	out := make(Schedule, 0, total)
	seq := make([]int, flows)
	at := time.Duration(0)
	for emitted := 0; emitted < total; {
		for f := 0; f < flows; f++ {
			if seq[f] >= counts[f] {
				continue
			}
			wire, key, err := buildFrame(&c, f, uint16(40000+f%20000), uint16(seq[f]))
			if err != nil {
				return nil, err
			}
			out = append(out, Emission{At: at, Frame: wire, FlowID: f, Seq: seq[f], Key: key})
			seq[f]++
			emitted++
			at += pc.next()
		}
	}
	return out, nil
}

// TCPFlowConfig describes a synthetic TCP flow for the §VI.B eviction
// scenario: handshake, a first data burst, a pause (during which the
// switch's flow table can evict the rule), then a second burst on the same
// established connection.
type TCPFlowConfig struct {
	Config
	SrcIP       netip.Addr
	SrcPort     uint16
	BurstPkts   int
	PauseLen    time.Duration
	SecondBurst int
}

// TCPEvictionFlow builds the two-burst TCP workload. All packets share one
// 5-tuple; the caller points the switch's flow table at a small capacity so
// background traffic evicts the rule during the pause.
func TCPEvictionFlow(c TCPFlowConfig) (Schedule, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	if !c.SrcIP.Is4() {
		return nil, fmt.Errorf("pktgen: TCP source must be IPv4")
	}
	if c.BurstPkts <= 0 || c.SecondBurst <= 0 {
		return nil, fmt.Errorf("pktgen: burst sizes must be positive, got %d/%d", c.BurstPkts, c.SecondBurst)
	}
	if c.PauseLen <= 0 {
		return nil, fmt.Errorf("pktgen: pause must be positive, got %v", c.PauseLen)
	}
	gap := c.gap()
	mk := func(flags packet.TCPFlags, seq uint32, payload int) ([]byte, packet.FlowKey, error) {
		f := &packet.Frame{
			SrcMAC:    c.SrcMAC,
			DstMAC:    c.DstMAC,
			EtherType: packet.EtherTypeIPv4,
			TTL:       64,
			Proto:     packet.ProtoTCP,
			SrcIP:     c.SrcIP,
			DstIP:     c.DstIP,
			SrcPort:   c.SrcPort,
			DstPort:   c.dstPort(),
			Seq:       seq,
			Flags:     flags,
			Window:    65535,
			Payload:   zeroPad[:payload],
		}
		wire, err := f.Serialize()
		if err != nil {
			return nil, packet.FlowKey{}, fmt.Errorf("pktgen: building TCP frame: %w", err)
		}
		return wire, f.Key(), nil
	}

	dataLen := c.FrameSize - packet.EthernetHeaderLen - packet.IPv4HeaderLen - packet.TCPHeaderLen
	if dataLen < 0 {
		dataLen = 0
	}
	out := Schedule{}
	at := time.Duration(0)
	seqNo := uint32(1)
	emit := func(flags packet.TCPFlags, payload int, pktSeq int) error {
		wire, key, err := mk(flags, seqNo, payload)
		if err != nil {
			return err
		}
		out = append(out, Emission{At: at, Frame: wire, FlowID: 0, Seq: pktSeq, Key: key})
		seqNo += uint32(payload)
		at += gap
		return nil
	}
	n := 0
	// Handshake (the receiving side is not modelled; the switch only sees
	// the client's segments, which is what exercises the miss path).
	if err := emit(packet.FlagSYN, 0, n); err != nil {
		return nil, err
	}
	n++
	if err := emit(packet.FlagACK, 0, n); err != nil {
		return nil, err
	}
	n++
	for i := 0; i < c.BurstPkts; i++ {
		if err := emit(packet.FlagACK|packet.FlagPSH, dataLen, n); err != nil {
			return nil, err
		}
		n++
	}
	at += c.PauseLen
	for i := 0; i < c.SecondBurst; i++ {
		if err := emit(packet.FlagACK|packet.FlagPSH, dataLen, n); err != nil {
			return nil, err
		}
		n++
	}
	return out, nil
}
