package core

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"strconv"
	"testing"
	"testing/quick"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func testKey(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		DstIP:   netip.MustParseAddr("10.0.0.2"),
		SrcPort: uint16(1000 + i),
		DstPort: 9,
		Proto:   packet.ProtoUDP,
	}
}

func testData(i, size int) []byte {
	d := bytes.Repeat([]byte{byte(i)}, size)
	copy(d, strconv.Itoa(i))
	return d
}

func TestNoBufferSendsFullPacket(t *testing.T) {
	m := NewNoBuffer()
	data := testData(1, 1000)
	res := m.HandleMiss(0, 1, data, testKey(1))
	if res.Buffered || res.Fallback {
		t.Errorf("res = %+v, want unbuffered non-fallback", res)
	}
	pi := res.PacketIn
	if pi == nil || pi.BufferID != openflow.NoBuffer {
		t.Fatalf("packet_in = %+v", pi)
	}
	if len(pi.Data) != 1000 || pi.TotalLen != 1000 {
		t.Errorf("data len %d total %d, want full 1000", len(pi.Data), pi.TotalLen)
	}
	if _, err := m.Release(0, 1); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("Release: %v", err)
	}
	if err := m.Drop(0, 1); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("Drop: %v", err)
	}
	if _, ok := m.NextDeadline(); ok {
		t.Error("NoBuffer reported a deadline")
	}
	if got := m.Stats(0).PacketIns; got != 1 {
		t.Errorf("PacketIns = %d, want 1", got)
	}
	if m.OccupancyMean(time.Second) != 0 || m.OccupancyMax() != 0 {
		t.Error("NoBuffer reported nonzero occupancy")
	}
}

func TestPacketGranularityBuffersAndTruncates(t *testing.T) {
	m, err := NewPacketGranularity(16, 128, 0)
	if err != nil {
		t.Fatalf("NewPacketGranularity: %v", err)
	}
	data := testData(1, 1000)
	res := m.HandleMiss(0, 1, data, testKey(1))
	if !res.Buffered || res.Fallback {
		t.Fatalf("res = %+v, want buffered", res)
	}
	pi := res.PacketIn
	if pi.BufferID == openflow.NoBuffer {
		t.Fatal("buffered packet_in carries NoBuffer id")
	}
	if len(pi.Data) != 128 {
		t.Errorf("packet_in payload = %d bytes, want miss_send_len 128", len(pi.Data))
	}
	if pi.TotalLen != 1000 {
		t.Errorf("TotalLen = %d, want 1000", pi.TotalLen)
	}
	rel, err := m.Release(time.Millisecond, pi.BufferID)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(rel) != 1 || !bytes.Equal(rel[0].Data, data) || rel[0].InPort != 1 {
		t.Errorf("released = %+v", rel)
	}
	if _, err := m.Release(time.Millisecond, pi.BufferID); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("double release: %v", err)
	}
}

func TestPacketGranularityEachPacketOwnID(t *testing.T) {
	m, err := NewPacketGranularity(16, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1) // same flow for all packets
	ids := make(map[uint32]bool)
	for i := 0; i < 5; i++ {
		res := m.HandleMiss(0, 1, testData(i, 500), key)
		if res.PacketIn == nil {
			t.Fatalf("packet %d: no packet_in — default mechanism must request per packet", i)
		}
		if ids[res.PacketIn.BufferID] {
			t.Fatalf("duplicate buffer id %d", res.PacketIn.BufferID)
		}
		ids[res.PacketIn.BufferID] = true
	}
	if got := m.Stats(0).PacketIns; got != 5 {
		t.Errorf("PacketIns = %d, want 5", got)
	}
}

func TestPacketGranularityFallbackWhenExhausted(t *testing.T) {
	m, err := NewPacketGranularity(2, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res := m.HandleMiss(0, 1, testData(i, 500), testKey(i)); !res.Buffered {
			t.Fatalf("packet %d not buffered", i)
		}
	}
	res := m.HandleMiss(0, 1, testData(2, 500), testKey(2))
	if res.Buffered || !res.Fallback {
		t.Fatalf("res = %+v, want fallback", res)
	}
	if res.PacketIn.BufferID != openflow.NoBuffer {
		t.Error("fallback packet_in must carry NoBuffer")
	}
	if len(res.PacketIn.Data) != 500 {
		t.Errorf("fallback payload = %d bytes, want full 500", len(res.PacketIn.Data))
	}
	if got := m.Stats(0).DroppedNoBuffer; got != 1 {
		t.Errorf("fallbacks = %d, want 1", got)
	}
}

func TestPacketGranularityExpiry(t *testing.T) {
	m, err := NewPacketGranularity(4, 128, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res := m.HandleMiss(0, 1, testData(1, 100), testKey(1))
	next, ok := m.NextDeadline()
	if !ok || next != 10*time.Millisecond {
		t.Fatalf("NextDeadline = %v/%v, want 10ms", next, ok)
	}
	if out := m.Tick(11 * time.Millisecond); out != nil {
		t.Errorf("Tick produced packet_ins: %v", out)
	}
	if _, err := m.Release(11*time.Millisecond, res.PacketIn.BufferID); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("release after expiry: %v", err)
	}
	if _, ok := m.NextDeadline(); ok {
		t.Error("deadline remains after expiry")
	}
}

func TestPacketGranularityValidation(t *testing.T) {
	if _, err := NewPacketGranularity(16, 0, 0); err == nil {
		t.Error("accepted zero miss_send_len")
	}
	if _, err := NewPacketGranularity(0, 128, 0); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestFlowGranularityOnePacketInPerFlow(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatalf("NewFlowGranularity: %v", err)
	}
	key := testKey(1)
	first := m.HandleMiss(0, 1, testData(0, 1000), key)
	if first.PacketIn == nil || !first.Buffered {
		t.Fatalf("first packet: %+v", first)
	}
	if len(first.PacketIn.Data) != 128 {
		t.Errorf("first packet_in payload = %d", len(first.PacketIn.Data))
	}
	id := first.PacketIn.BufferID
	for i := 1; i < 20; i++ {
		res := m.HandleMiss(time.Duration(i)*time.Millisecond, 1, testData(i, 1000), key)
		if res.PacketIn != nil {
			t.Fatalf("packet %d triggered a packet_in — flow granularity must not", i)
		}
		if !res.Buffered {
			t.Fatalf("packet %d not buffered", i)
		}
	}
	st := m.Stats(0)
	if st.PacketIns != 1 {
		t.Errorf("PacketIns = %d, want 1 for 20 packets", st.PacketIns)
	}
	// The whole flow occupies a single buffer unit — the mechanism's
	// utilization improvement (paper Fig. 13).
	if st.FlowsBuffered != 1 || st.UnitsInUse != 1 {
		t.Errorf("flows/units = %d/%d, want 1/1", st.FlowsBuffered, st.UnitsInUse)
	}
	if stored, _, _, _ := m.Pool().Counters(); stored != 20 {
		t.Errorf("stored packets = %d, want 20", stored)
	}

	rel, err := m.Release(25*time.Millisecond, id)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(rel) != 20 {
		t.Fatalf("released %d packets, want 20", len(rel))
	}
	// Arrival order must be preserved (Algorithm 2 drains FIFO).
	for i, r := range rel {
		want := testData(i, 1000)
		if !bytes.Equal(r.Data, want) {
			t.Fatalf("packet %d out of order", i)
		}
		if i > 0 && r.BufferedAt < rel[i-1].BufferedAt {
			t.Fatalf("packet %d released before earlier arrival", i)
		}
	}
	if m.FlowsBuffered() != 0 || m.Pool().Live() != 0 {
		t.Errorf("state left after release: flows=%d units=%d", m.FlowsBuffered(), m.Pool().Live())
	}
}

func TestFlowGranularityDistinctFlowsDistinctIDs(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[uint32]packet.FlowKey)
	for i := 0; i < 50; i++ {
		key := testKey(i)
		res := m.HandleMiss(0, 1, testData(i, 100), key)
		if res.PacketIn == nil {
			t.Fatalf("flow %d: no packet_in", i)
		}
		id := res.PacketIn.BufferID
		if id == openflow.NoBuffer {
			t.Fatalf("flow %d: NoBuffer id", i)
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("flows %v and %v share buffer id %d", prev, key, id)
		}
		ids[id] = key
	}
}

func TestFlowGranularityBufferIDDeterministic(t *testing.T) {
	// The id is derived from the 5-tuple: the same flow gets the same id
	// across independent mechanism instances (absent collisions).
	mk := func() uint32 {
		m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := m.HandleMiss(0, 1, testData(0, 100), testKey(7))
		return res.PacketIn.BufferID
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("ids differ across instances: %d vs %d", a, b)
	}
}

func TestFlowGranularityRerequestTimeout(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	first := m.HandleMiss(0, 1, testData(0, 100), testKey(1))
	next, ok := m.NextDeadline()
	if !ok || next != 50*time.Millisecond {
		t.Fatalf("NextDeadline = %v/%v, want 50ms", next, ok)
	}
	// Subsequent packets must not push the deadline out.
	m.HandleMiss(20*time.Millisecond, 1, testData(1, 100), testKey(1))
	if next, _ := m.NextDeadline(); next != 50*time.Millisecond {
		t.Errorf("deadline moved to %v after subsequent packet", next)
	}

	resend := m.Tick(50 * time.Millisecond)
	if len(resend) != 1 {
		t.Fatalf("Tick resent %d packet_ins, want 1", len(resend))
	}
	if resend[0].BufferID != first.PacketIn.BufferID {
		t.Error("re-request carries a different buffer id")
	}
	st := m.Stats(0)
	if st.Rerequests != 1 || st.PacketIns != 2 {
		t.Errorf("rerequests/packetIns = %d/%d, want 1/2", st.Rerequests, st.PacketIns)
	}
	// Deadline reset: another timeout re-requests again.
	if next, _ := m.NextDeadline(); next != 100*time.Millisecond {
		t.Errorf("deadline after re-request = %v, want 100ms", next)
	}
}

func TestFlowGranularityTickBeforeDeadlineDoesNothing(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.HandleMiss(0, 1, testData(0, 100), testKey(1))
	if resend := m.Tick(49 * time.Millisecond); len(resend) != 0 {
		t.Errorf("premature Tick resent %d packet_ins", len(resend))
	}
}

func TestFlowGranularityPoolExhaustionFallback(t *testing.T) {
	// A 3-unit pool holds at most 3 concurrently buffered flows; the fourth
	// flow's first packet takes the full-packet path.
	m, err := NewFlowGranularity(3, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if res := m.HandleMiss(0, 1, testData(i, 100), testKey(i)); !res.Buffered {
			t.Fatalf("flow %d not buffered", i)
		}
	}
	res := m.HandleMiss(0, 1, testData(3, 100), testKey(3))
	if !res.Fallback || res.PacketIn == nil || res.PacketIn.BufferID != openflow.NoBuffer {
		t.Fatalf("overflow flow: %+v, want full-packet fallback", res)
	}
	// Already-buffered flows keep absorbing packets: units don't grow.
	if res := m.HandleMiss(0, 1, testData(4, 100), testKey(1)); !res.Buffered || res.PacketIn != nil {
		t.Fatalf("subsequent packet of buffered flow: %+v", res)
	}
	st := m.Stats(0)
	if st.UnitsInUse != 3 || st.FlowsBuffered != 3 || st.DroppedNoBuffer != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestFlowGranularityMaxPerFlowBound(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	m.HandleMiss(0, 1, testData(0, 100), key)
	m.HandleMiss(0, 1, testData(1, 100), key)
	res := m.HandleMiss(0, 1, testData(2, 100), key)
	if !res.Fallback {
		t.Fatalf("third packet: %+v, want per-flow bound fallback", res)
	}
	// Other flows are unaffected.
	res2 := m.HandleMiss(0, 1, testData(0, 100), testKey(2))
	if !res2.Buffered || res2.PacketIn == nil {
		t.Errorf("other flow: %+v", res2)
	}
}

func TestFlowGranularityDrop(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	res := m.HandleMiss(0, 1, testData(0, 100), testKey(1))
	m.HandleMiss(0, 1, testData(1, 100), testKey(1))
	if err := m.Drop(time.Millisecond, res.PacketIn.BufferID); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if m.Pool().Live() != 0 || m.FlowsBuffered() != 0 {
		t.Error("Drop left state behind")
	}
	if err := m.Drop(time.Millisecond, res.PacketIn.BufferID); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("double Drop: %v", err)
	}
}

func TestFlowGranularityExpiry(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, time.Hour, 0, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	res := m.HandleMiss(0, 1, testData(0, 100), testKey(1))
	m.HandleMiss(5*time.Millisecond, 1, testData(1, 100), testKey(1))
	next, ok := m.NextDeadline()
	if !ok || next != 20*time.Millisecond {
		t.Fatalf("NextDeadline = %v, want 20ms (expiry before 1h re-request)", next)
	}
	m.Tick(20 * time.Millisecond)
	if m.FlowsBuffered() != 0 || m.Pool().Live() != 0 {
		t.Error("expiry did not clear the flow")
	}
	if _, err := m.Release(21*time.Millisecond, res.PacketIn.BufferID); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("release after expiry: %v", err)
	}
	_, _, expired, _ := m.Pool().Counters()
	if expired != 2 {
		t.Errorf("expired = %d, want 2", expired)
	}
}

func TestFlowGranularityFlowRestartsAfterRelease(t *testing.T) {
	m, err := NewFlowGranularity(256, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	first := m.HandleMiss(0, 1, testData(0, 100), key)
	if _, err := m.Release(time.Millisecond, first.PacketIn.BufferID); err != nil {
		t.Fatal(err)
	}
	// If the flow misses again later (rule evicted), it is a fresh cycle:
	// a new packet_in must go out.
	again := m.HandleMiss(time.Second, 1, testData(1, 100), key)
	if again.PacketIn == nil {
		t.Fatal("restarted flow did not trigger a packet_in")
	}
}

func TestFlowGranularityValidation(t *testing.T) {
	if _, err := NewFlowGranularity(256, 0, time.Millisecond, 0, 0); err == nil {
		t.Error("accepted zero miss_send_len")
	}
	if _, err := NewFlowGranularity(256, 128, 0, 0, 0); err == nil {
		t.Error("accepted zero re-request timeout")
	}
	if _, err := NewFlowGranularity(256, 128, time.Millisecond, -1, 0); err == nil {
		t.Error("accepted negative max-per-flow")
	}
	if _, err := NewFlowGranularity(0, 128, time.Millisecond, 0, 0); err == nil {
		t.Error("accepted zero capacity")
	}
}

func TestNewMechanismFromConfig(t *testing.T) {
	tests := []struct {
		g    openflow.BufferGranularity
		want openflow.BufferGranularity
	}{
		{openflow.GranularityNone, openflow.GranularityNone},
		{openflow.GranularityPacket, openflow.GranularityPacket},
		{openflow.GranularityFlow, openflow.GranularityFlow},
	}
	for _, tt := range tests {
		m, err := NewMechanism(openflow.FlowBufferConfig{
			Granularity:        tt.g,
			RerequestTimeoutMs: 50,
		}, 16, 128, 0)
		if err != nil {
			t.Fatalf("NewMechanism(%v): %v", tt.g, err)
		}
		if m.Granularity() != tt.want {
			t.Errorf("Granularity = %v, want %v", m.Granularity(), tt.want)
		}
	}
	if _, err := NewMechanism(openflow.FlowBufferConfig{}, 16, 128, 0); err == nil {
		t.Error("NewMechanism accepted invalid granularity")
	}
}

// TestPropertyFlowGranularityInvariants drives random miss/release/tick
// sequences and checks the paper's core invariants: at most one outstanding
// packet_in per flow cycle (plus re-requests), FIFO release order, no unit
// leaks, and pool bounds respected.
func TestPropertyFlowGranularityInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	prop := func() bool {
		capacity := 4 + r.Intn(32)
		m, err := NewFlowGranularity(capacity, 128, 10*time.Millisecond, 0, 0)
		if err != nil {
			return false
		}
		type pending struct {
			id   uint32
			sent [][]byte
		}
		flows := make(map[int]*pending)
		now := time.Duration(0)
		seq := 0
		for step := 0; step < 300; step++ {
			now += time.Duration(r.Intn(1000)) * time.Microsecond
			flowIdx := r.Intn(5)
			switch r.Intn(3) {
			case 0: // miss
				seq++
				data := testData(seq, 64)
				res := m.HandleMiss(now, 1, data, testKey(flowIdx))
				p := flows[flowIdx]
				if p == nil {
					// First packet of a cycle must produce a packet_in
					// unless it fell back.
					if res.Fallback {
						continue
					}
					if res.PacketIn == nil {
						return false
					}
					flows[flowIdx] = &pending{id: res.PacketIn.BufferID, sent: [][]byte{data}}
				} else {
					if res.Fallback {
						continue
					}
					if res.PacketIn != nil {
						return false // subsequent packet must not request
					}
					p.sent = append(p.sent, data)
				}
			case 1: // release
				p := flows[flowIdx]
				if p == nil {
					continue
				}
				rel, err := m.Release(now, p.id)
				if err != nil {
					return false
				}
				if len(rel) != len(p.sent) {
					return false
				}
				for i := range rel {
					if !bytes.Equal(rel[i].Data, p.sent[i]) {
						return false // FIFO violated
					}
				}
				delete(flows, flowIdx)
			default: // tick
				m.Tick(now)
			}
			// One live unit per pending flow; packet counts conserved.
			if m.Pool().Live() != len(flows) {
				return false // leak or loss
			}
			if m.Pool().Live() > capacity {
				return false
			}
			stored, released, expired, _ := m.Pool().Counters()
			pending := uint64(0)
			for _, p := range flows {
				pending += uint64(len(p.sent))
			}
			if stored != released+expired+pending {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPacketGranularityReleaseExactlyOnce checks that every
// successful HandleMiss yields an id releasable exactly once.
func TestPropertyPacketGranularityReleaseExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	prop := func() bool {
		m, err := NewPacketGranularity(8+r.Intn(32), 128, 0)
		if err != nil {
			return false
		}
		var live []uint32
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Microsecond
			if r.Intn(2) == 0 {
				res := m.HandleMiss(now, 1, testData(i, 64), testKey(i))
				if res.Buffered {
					live = append(live, res.PacketIn.BufferID)
				}
			} else if len(live) > 0 {
				idx := r.Intn(len(live))
				id := live[idx]
				rel, err := m.Release(now, id)
				if err != nil || len(rel) != 1 {
					return false
				}
				if _, err := m.Release(now, id); !errors.Is(err, ErrUnknownBufferID) {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
		}
		return m.Pool().Live() == len(live)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
