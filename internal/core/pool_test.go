package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sdnbuffer/internal/openflow"
)

func mustPool(t *testing.T, capacity int, expiry time.Duration) *Pool {
	t.Helper()
	p, err := NewPool(capacity, expiry)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return p
}

func TestPoolStoreRelease(t *testing.T) {
	p := mustPool(t, 4, 0)
	u, err := p.Store(0, 1, []byte("pkt"))
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	if u.ID == openflow.NoBuffer {
		t.Error("allocated the NoBuffer sentinel")
	}
	if p.InUse(0) != 1 || p.Free(0) != 3 {
		t.Errorf("InUse/Free = %d/%d, want 1/3", p.InUse(0), p.Free(0))
	}
	got, err := p.Release(time.Millisecond, u.ID)
	if err != nil {
		t.Fatalf("Release: %v", err)
	}
	if len(got.Packets) != 1 || string(got.Packets[0].Data) != "pkt" ||
		got.Packets[0].InPort != 1 || got.Packets[0].BufferedAt != 0 {
		t.Errorf("released unit = %+v", got)
	}
	if p.InUse(time.Millisecond) != 0 {
		t.Errorf("InUse = %d after release", p.InUse(time.Millisecond))
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := mustPool(t, 2, 0)
	for i := 0; i < 2; i++ {
		if _, err := p.Store(0, 1, nil); err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
	}
	if _, err := p.Store(0, 1, nil); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("Store into full pool: %v, want ErrPoolExhausted", err)
	}
	_, _, _, rejected := p.Counters()
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
}

func TestPoolUnknownRelease(t *testing.T) {
	p := mustPool(t, 2, 0)
	if _, err := p.Release(0, 99); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("Release(99): %v, want ErrUnknownBufferID", err)
	}
}

func TestPoolStoreAsRejectsDuplicateAndSentinel(t *testing.T) {
	p := mustPool(t, 4, 0)
	if _, err := p.StoreAs(0, 7, 1, nil); err != nil {
		t.Fatalf("StoreAs: %v", err)
	}
	if _, err := p.StoreAs(0, 7, 1, nil); err == nil {
		t.Error("StoreAs accepted duplicate id")
	}
	if _, err := p.StoreAs(0, openflow.NoBuffer, 1, nil); err == nil {
		t.Error("StoreAs accepted NoBuffer sentinel")
	}
}

func TestPoolIDsNeverCollideWhileHeld(t *testing.T) {
	p := mustPool(t, 100, 0)
	seen := make(map[uint32]bool)
	for i := 0; i < 100; i++ {
		u, err := p.Store(0, 1, nil)
		if err != nil {
			t.Fatalf("Store %d: %v", i, err)
		}
		if seen[u.ID] {
			t.Fatalf("duplicate live id %d", u.ID)
		}
		seen[u.ID] = true
	}
}

func TestPoolExpire(t *testing.T) {
	p := mustPool(t, 4, 10*time.Millisecond)
	u1, err := p.Store(0, 1, []byte("old"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = p.Store(5*time.Millisecond, 1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	dropped := p.Expire(12 * time.Millisecond)
	if len(dropped) != 1 || dropped[0].ID != u1.ID {
		t.Fatalf("Expire dropped %d units", len(dropped))
	}
	if p.InUse(12*time.Millisecond) != 1 {
		t.Errorf("InUse = %d, want 1", p.InUse(12*time.Millisecond))
	}
	_, _, expired, _ := p.Counters()
	if expired != 1 {
		t.Errorf("expired = %d, want 1", expired)
	}
}

func TestPoolExpireDisabled(t *testing.T) {
	p := mustPool(t, 2, 0)
	if _, err := p.Store(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if dropped := p.Expire(time.Hour); dropped != nil {
		t.Errorf("Expire with expiry disabled dropped %d units", len(dropped))
	}
}

func TestPoolDiscardExpired(t *testing.T) {
	p := mustPool(t, 2, 0)
	u, err := p.Store(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DiscardExpired(time.Millisecond, u.ID); err != nil {
		t.Fatalf("DiscardExpired: %v", err)
	}
	if _, err := p.DiscardExpired(time.Millisecond, u.ID); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("second DiscardExpired: %v", err)
	}
	_, released, expired, _ := p.Counters()
	if released != 0 || expired != 1 {
		t.Errorf("released/expired = %d/%d, want 0/1", released, expired)
	}
}

func TestPoolOccupancyAccounting(t *testing.T) {
	p := mustPool(t, 4, 0)
	u1, err := p.Store(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err = p.Store(0, 1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Release(time.Second, u1.ID); err != nil {
		t.Fatal(err)
	}
	// 2 units for 1s, then 1 unit for 1s → mean 1.5, max 2.
	mean := p.OccupancyMean(2 * time.Second)
	if mean < 1.49 || mean > 1.51 {
		t.Errorf("OccupancyMean = %g, want 1.5", mean)
	}
	if p.OccupancyMax() != 2 {
		t.Errorf("OccupancyMax = %g, want 2", p.OccupancyMax())
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewPool(0, 0); err == nil {
		t.Error("NewPool(0) succeeded")
	}
	if _, err := NewPool(-1, 0); err == nil {
		t.Error("NewPool(-1) succeeded")
	}
	if _, err := NewPool(4, -time.Second); err == nil {
		t.Error("NewPool with negative expiry succeeded")
	}
}

func TestPropertyPoolConservation(t *testing.T) {
	// stored == released + expired + in-use at every point, and occupancy
	// never exceeds capacity.
	r := rand.New(rand.NewSource(31))
	prop := func() bool {
		capacity := 1 + r.Intn(16)
		p, err := NewPool(capacity, 0)
		if err != nil {
			return false
		}
		live := make([]uint32, 0, capacity)
		now := time.Duration(0)
		for i := 0; i < 200; i++ {
			now += time.Duration(r.Intn(100)) * time.Microsecond
			if r.Intn(2) == 0 {
				u, err := p.Store(now, 1, nil)
				if err == nil {
					live = append(live, u.ID)
				} else if !errors.Is(err, ErrPoolExhausted) {
					return false
				}
			} else if len(live) > 0 {
				idx := r.Intn(len(live))
				if _, err := p.Release(now, live[idx]); err != nil {
					return false
				}
				live = append(live[:idx], live[idx+1:]...)
			}
			stored, released, expired, _ := p.Counters()
			if stored != released+expired+uint64(p.InUse(now)) {
				return false
			}
			if p.InUse(now) > capacity || p.InUse(now) != len(live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPoolLazyReclamation(t *testing.T) {
	p := mustPool(t, 2, 0)
	p.SetReclaimDelay(10 * time.Millisecond)
	if p.ReclaimDelay() != 10*time.Millisecond {
		t.Fatalf("ReclaimDelay = %v", p.ReclaimDelay())
	}
	u, err := p.Store(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Release(time.Millisecond, u.ID); err != nil {
		t.Fatal(err)
	}
	// The slot stays occupied during the reclamation window.
	if got := p.InUse(5 * time.Millisecond); got != 1 {
		t.Errorf("InUse during reclaim = %d, want 1", got)
	}
	if p.Live() != 0 {
		t.Errorf("Live during reclaim = %d, want 0", p.Live())
	}
	// After the window it frees.
	if got := p.InUse(11 * time.Millisecond); got != 0 {
		t.Errorf("InUse after reclaim = %d, want 0", got)
	}
}

func TestPoolReclaimDelaysExhaustion(t *testing.T) {
	p := mustPool(t, 1, 0)
	p.SetReclaimDelay(10 * time.Millisecond)
	u, err := p.Store(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Release(time.Millisecond, u.ID); err != nil {
		t.Fatal(err)
	}
	// Slot not yet reclaimed: the pool is still exhausted.
	if _, err := p.Store(5*time.Millisecond, 1, nil); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("Store during reclaim: %v, want ErrPoolExhausted", err)
	}
	if _, err := p.Store(12*time.Millisecond, 1, nil); err != nil {
		t.Errorf("Store after reclaim: %v", err)
	}
}

func TestPoolNegativeReclaimClamped(t *testing.T) {
	p := mustPool(t, 1, 0)
	p.SetReclaimDelay(-time.Second)
	if p.ReclaimDelay() != 0 {
		t.Errorf("negative reclaim delay not clamped: %v", p.ReclaimDelay())
	}
}

func TestPoolAppend(t *testing.T) {
	p := mustPool(t, 2, 0)
	u, err := p.Store(0, 1, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Append(time.Millisecond, u.ID, 1, []byte("b")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Append(time.Millisecond, 9999, 1, []byte("x")); !errors.Is(err, ErrUnknownBufferID) {
		t.Errorf("Append to unknown id: %v", err)
	}
	// Appending consumes no extra unit.
	if p.InUse(time.Millisecond) != 1 {
		t.Errorf("InUse = %d, want 1", p.InUse(time.Millisecond))
	}
	got, err := p.Release(2*time.Millisecond, u.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != 2 || string(got.Packets[0].Data) != "a" || string(got.Packets[1].Data) != "b" {
		t.Errorf("released packets = %+v", got.Packets)
	}
	stored, released, _, _ := p.Counters()
	if stored != 2 || released != 2 {
		t.Errorf("stored/released = %d/%d, want 2/2", stored, released)
	}
}

// TestPoolOrderBounded is a regression test for unbounded growth of the
// insertion-order list: with expiry disabled, Expire never runs its
// compaction, so before remove() compacted too, a long no-expiry run leaked
// one order entry per released unit.
func TestPoolOrderBounded(t *testing.T) {
	p, err := NewPool(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 10000; i++ {
		now += time.Microsecond
		u, err := p.Store(now, 1, []byte("x"))
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		if _, err := p.Release(now, u.ID); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if bound := 2*len(p.units) + 16; len(p.order) > bound {
		t.Errorf("order list grew to %d entries after 10000 store/release cycles, want <= %d", len(p.order), bound)
	}
	// The pool must still function and account correctly after compaction.
	u, err := p.Store(now+time.Microsecond, 1, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Live() != 1 || u == nil {
		t.Errorf("live = %d after post-compaction store", p.Live())
	}
}
