package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/telemetry"
)

// flowState is the per-flow record behind the paper's buffer_id map
// (Algorithm 1): the shared buffer_id (which is also the flow's single
// buffer-unit slot), the re-request deadline, and the header template used
// to (re)build the flow's packet_in.
type flowState struct {
	key       packet.FlowKey
	bufferID  uint32
	createdAt time.Duration
	deadline  time.Duration
	timeout   time.Duration // current re-request wait, grown by the backoff
	attempts  int           // re-requests already sent for this flow
	header    *openflow.PacketIn
}

// RetryPolicy hardens the re-request loop against a lossy or dead control
// channel. MaxRerequests caps how many times a flow's packet_in is re-sent
// before the mechanism gives up on controller-driven release; BackoffPct
// grows each successive wait by that percentage (100 doubles it). Zero
// values keep the original behavior: retry forever at a fixed interval.
//
// On give-up the flow's buffer unit is released — never leaked — and the
// queued packets are handed back through the no-buffer full-packet path in
// arrival order, so the controller can still forward them; they are counted
// as fallbacks, and the abandoned flow as a giveup.
type RetryPolicy struct {
	MaxRerequests int
	BackoffPct    int
}

// FlowGranularity is the paper's proposed buffer mechanism (§V).
//
// Algorithm 1 (HandleMiss): the first miss-match packet of a flow is
// buffered in a fresh unit whose buffer_id derives from the 5-tuple, the id
// is recorded in the buffer_id map, and one packet_in carrying the packet's
// header prefix plus that buffer_id goes to the controller. Subsequent
// miss-match packets of the same flow are chained into the same unit without
// triggering packet_ins. If the control operation messages do not arrive
// before the re-request timeout, the packet_in is re-sent (Tick).
//
// Algorithm 2 (Release): one packet_out referencing the buffer_id drains the
// whole per-flow queue in arrival order and frees the single unit at once —
// which is why the mechanism's occupancy tracks the number of in-flight
// flows rather than the number of in-flight packets (paper Fig. 13), the
// source of its claimed 71.6% buffer-utilization improvement.
type FlowGranularity struct {
	pool             *Pool
	missSendLen      int
	rerequestTimeout time.Duration
	maxPerFlow       int
	retry            RetryPolicy
	flows            map[packet.FlowKey]*flowState
	byID             map[uint32]*flowState
	order            []*flowState // insertion order, for deterministic sweeps

	packetIns  uint64
	rerequests uint64
	fallbacks  uint64
	giveups    uint64

	tel *telemetry.Recorder // nil unless the testbed wires telemetry
}

var _ Mechanism = (*FlowGranularity)(nil)

// NewFlowGranularity creates the proposed mechanism. rerequestTimeout is
// Algorithm 1's timer (must be positive: without it a lost flow_mod would
// strand buffered packets forever). maxPerFlow bounds one flow's queue (0 =
// unbounded). expiry bounds total buffered-flow lifetime (0 = no expiry).
func NewFlowGranularity(capacity, missSendLen int, rerequestTimeout time.Duration, maxPerFlow int, expiry time.Duration) (*FlowGranularity, error) {
	if missSendLen <= 0 {
		return nil, fmt.Errorf("core: miss_send_len must be positive, got %d", missSendLen)
	}
	if rerequestTimeout <= 0 {
		return nil, fmt.Errorf("core: re-request timeout must be positive, got %v", rerequestTimeout)
	}
	if maxPerFlow < 0 {
		return nil, fmt.Errorf("core: negative max packets per flow %d", maxPerFlow)
	}
	pool, err := NewPool(capacity, expiry)
	if err != nil {
		return nil, err
	}
	return newFlowGranularityOn(pool, missSendLen, rerequestTimeout, maxPerFlow)
}

// newFlowGranularityOn builds the mechanism over an existing pool, so the
// degradation ladder can share one pool across granularities.
func newFlowGranularityOn(pool *Pool, missSendLen int, rerequestTimeout time.Duration, maxPerFlow int) (*FlowGranularity, error) {
	if missSendLen <= 0 {
		return nil, fmt.Errorf("core: miss_send_len must be positive, got %d", missSendLen)
	}
	if rerequestTimeout <= 0 {
		return nil, fmt.Errorf("core: re-request timeout must be positive, got %v", rerequestTimeout)
	}
	if maxPerFlow < 0 {
		return nil, fmt.Errorf("core: negative max packets per flow %d", maxPerFlow)
	}
	return &FlowGranularity{
		pool:             pool,
		missSendLen:      missSendLen,
		rerequestTimeout: rerequestTimeout,
		maxPerFlow:       maxPerFlow,
		flows:            make(map[packet.FlowKey]*flowState),
		byID:             make(map[uint32]*flowState),
	}, nil
}

// SetRetryPolicy installs the re-request hardening policy. Call before
// traffic; it applies to flows buffered afterwards.
func (m *FlowGranularity) SetRetryPolicy(p RetryPolicy) error {
	if p.MaxRerequests < 0 {
		return fmt.Errorf("core: negative re-request cap %d", p.MaxRerequests)
	}
	if p.BackoffPct < 0 {
		return fmt.Errorf("core: negative re-request backoff %d%%", p.BackoffPct)
	}
	m.retry = p
	return nil
}

// RetryPolicy reports the installed hardening policy.
func (m *FlowGranularity) RetryPolicy() RetryPolicy { return m.retry }

// SetTelemetry wires the recorder the mechanism emits buffer-lifecycle
// spans and flow-record updates into (nil disables; the default).
func (m *FlowGranularity) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// Granularity implements Mechanism.
func (*FlowGranularity) Granularity() openflow.BufferGranularity {
	return openflow.GranularityFlow
}

// flowBufferID derives the flow's buffer_id from its 5-tuple, as the paper
// specifies ("calculated based on the tuple of (src_ip, src_port, dst_ip,
// dst_port, protocol)"), probing past ids already held by other live flows
// and the NoBuffer sentinel. With a private pool, probing the pool's units
// is redundant with byID; under the degradation ladder the pool is shared
// with the packet-granularity path, whose units must be probed past too.
func (m *FlowGranularity) flowBufferID(key packet.FlowKey) uint32 {
	h := fnv.New32a()
	src := key.SrcIP.As4()
	dst := key.DstIP.As4()
	var b [13]byte
	copy(b[0:4], src[:])
	copy(b[4:8], dst[:])
	binary.BigEndian.PutUint16(b[8:10], key.SrcPort)
	binary.BigEndian.PutUint16(b[10:12], key.DstPort)
	b[12] = key.Proto
	_, _ = h.Write(b[:]) // fnv never errors
	id := h.Sum32()
	for {
		if id != openflow.NoBuffer {
			if _, taken := m.byID[id]; !taken {
				if _, live := m.pool.units[id]; !live {
					return id
				}
			}
		}
		id++
	}
}

// HandleMiss implements Mechanism (Algorithm 1).
func (m *FlowGranularity) HandleMiss(now time.Duration, inPort uint16, data []byte, key packet.FlowKey) MissResult {
	fallback := func() MissResult {
		m.fallbacks++
		m.packetIns++
		return MissResult{
			PacketIn: &openflow.PacketIn{
				BufferID: openflow.NoBuffer,
				TotalLen: uint16(len(data)),
				InPort:   inPort,
				Reason:   openflow.ReasonNoMatch,
				Data:     data,
			},
			Fallback: true,
		}
	}

	if st, known := m.flows[key]; known {
		// Subsequent packet of an already-reported flow: chain it into the
		// flow's unit silently (Algorithm 1 line 11). The re-request timer
		// keeps running from the pending request.
		u, ok := m.pool.Peek(st.bufferID)
		if !ok {
			// Internal invariant broken; fail safe via the full-packet path.
			return fallback()
		}
		if m.maxPerFlow > 0 && len(u.Packets) >= m.maxPerFlow {
			// The flow's queue is at its bound; this packet takes the
			// full-packet path so one heavy flow cannot hog memory.
			return fallback()
		}
		if err := m.pool.Append(now, st.bufferID, inPort, data); err != nil {
			return fallback()
		}
		if m.tel != nil {
			m.tel.Instant(telemetry.KindBufferEnqueue, now, telemetry.HashKey(key), st.bufferID, uint32(len(data)))
			m.tel.FlowBuffered(key, len(data))
		}
		return MissResult{Buffered: true}
	}

	// First packet of the flow: allocate the flow's unit under the
	// tuple-derived id and send the flow's single packet_in (Algorithm 1
	// lines 7-9).
	id := m.flowBufferID(key)
	if _, err := m.pool.StoreAs(now, id, inPort, data); err != nil {
		// Pool exhausted: fall back to the no-buffer path for this packet.
		return fallback()
	}
	st := &flowState{
		key:       key,
		bufferID:  id,
		createdAt: now,
		deadline:  now + m.rerequestTimeout,
		timeout:   m.rerequestTimeout,
		header: &openflow.PacketIn{
			BufferID: id,
			TotalLen: uint16(len(data)),
			InPort:   inPort,
			Reason:   openflow.ReasonNoMatch,
			Data:     truncate(data, m.missSendLen),
		},
	}
	m.flows[key] = st
	m.byID[id] = st
	m.order = append(m.order, st)
	m.packetIns++
	if m.tel != nil {
		m.tel.Instant(telemetry.KindBufferEnqueue, now, telemetry.HashKey(key), id, uint32(len(data)))
		m.tel.FlowBuffered(key, len(data))
	}
	return MissResult{PacketIn: st.header, Buffered: true}
}

// Release implements Mechanism (Algorithm 2): drain the whole per-flow
// queue in arrival order and free its unit.
func (m *FlowGranularity) Release(now time.Duration, bufferID uint32) ([]Released, error) {
	st, ok := m.byID[bufferID]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBufferID, bufferID)
	}
	u, err := m.pool.Release(now, bufferID)
	if err != nil {
		return nil, fmt.Errorf("core: flow %v lost its unit: %w", st.key, err)
	}
	m.forget(st)
	out := make([]Released, len(u.Packets))
	for i, bp := range u.Packets {
		out[i] = Released{Data: bp.Data, InPort: bp.InPort, BufferedAt: bp.BufferedAt}
	}
	return out, nil
}

// Drop implements Mechanism: discard the whole per-flow queue.
func (m *FlowGranularity) Drop(now time.Duration, bufferID uint32) error {
	st, ok := m.byID[bufferID]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBufferID, bufferID)
	}
	if _, err := m.pool.Release(now, bufferID); err != nil {
		return fmt.Errorf("core: flow %v lost its unit: %w", st.key, err)
	}
	m.forget(st)
	return nil
}

func (m *FlowGranularity) forget(st *flowState) {
	delete(m.flows, st.key)
	delete(m.byID, st.bufferID)
	for i, o := range m.order {
		if o == st {
			copy(m.order[i:], m.order[i+1:])
			m.order[len(m.order)-1] = nil
			m.order = m.order[:len(m.order)-1]
			break
		}
	}
}

// NextDeadline implements Mechanism: the earliest re-request or expiry
// instant across buffered flows.
func (m *FlowGranularity) NextDeadline() (time.Duration, bool) {
	next := time.Duration(0)
	found := false
	consider := func(d time.Duration) {
		if !found || d < next {
			next, found = d, true
		}
	}
	for _, st := range m.order {
		consider(st.deadline)
		if m.pool.expiry > 0 {
			consider(st.createdAt + m.pool.expiry)
		}
	}
	return next, found
}

// Tick implements Mechanism: expire overdue flows, re-send the packet_in
// for flows whose re-request timer has fired (Algorithm 1 lines 12-13), and
// — with a RetryPolicy installed — give up on flows that exhausted their
// re-request budget, draining their queues via the no-buffer full-packet
// path so the pool unit is released rather than leaked.
func (m *FlowGranularity) Tick(now time.Duration) []*openflow.PacketIn {
	var resend []*openflow.PacketIn
	// Collect first: forget() mutates the bookkeeping. Iterate in insertion
	// order so re-requests and give-up fallbacks are emitted
	// deterministically.
	var expired, abandoned []*flowState
	for _, st := range m.order {
		if m.pool.expiry > 0 && now-st.createdAt >= m.pool.expiry {
			expired = append(expired, st)
			continue
		}
		if now < st.deadline {
			continue
		}
		if m.retry.MaxRerequests > 0 && st.attempts >= m.retry.MaxRerequests {
			abandoned = append(abandoned, st)
			continue
		}
		st.attempts++
		if m.retry.BackoffPct > 0 {
			st.timeout += st.timeout * time.Duration(m.retry.BackoffPct) / 100
		}
		st.deadline = now + st.timeout
		m.rerequests++
		m.packetIns++
		if m.tel != nil {
			m.tel.Instant(telemetry.KindRerequest, now, telemetry.HashKey(st.key), st.bufferID, 0)
			m.tel.FlowRerequest(st.key)
		}
		resend = append(resend, st.header)
	}
	for _, st := range expired {
		_, _ = m.pool.DiscardExpired(now, st.bufferID) // expiring; unit must exist
		m.forget(st)
	}
	for _, st := range abandoned {
		// Give up on controller-driven release: free the unit and hand every
		// queued packet back as a full-payload no-buffer packet_in, in arrival
		// order. Ownership of the packet bytes transfers to the packet_ins;
		// the pool slot is reclaimed here, so nothing leaks even if the
		// control channel stays dead.
		u, err := m.pool.Release(now, st.bufferID)
		m.forget(st)
		m.giveups++
		if m.tel != nil {
			m.tel.Instant(telemetry.KindGiveup, now, telemetry.HashKey(st.key), st.bufferID, 0)
			m.tel.FlowGiveup(st.key)
		}
		if err != nil {
			continue // invariant broken; forget() already dropped the records
		}
		for _, bp := range u.Packets {
			m.fallbacks++
			m.packetIns++
			resend = append(resend, &openflow.PacketIn{
				BufferID: openflow.NoBuffer,
				TotalLen: uint16(len(bp.Data)),
				InPort:   bp.InPort,
				Reason:   openflow.ReasonNoMatch,
				Data:     bp.Data,
			})
		}
	}
	return resend
}

// Stats implements Mechanism.
func (m *FlowGranularity) Stats(now time.Duration) openflow.FlowBufferStats {
	return openflow.FlowBufferStats{
		UnitsInUse:      uint32(m.pool.InUse(now)),
		UnitsCapacity:   uint32(m.pool.Capacity()),
		FlowsBuffered:   uint32(len(m.flows)),
		PacketIns:       m.packetIns,
		Rerequests:      m.rerequests,
		DroppedNoBuffer: m.fallbacks,
		Giveups:         m.giveups,
		BytesInUse:      uint64(m.pool.BytesInUse()),
		BytesHighWater:  uint64(m.pool.BytesHighWater()),
		RejectedBytes:   m.pool.RejectedBytes(),
	}
}

// OccupancyMean implements Mechanism.
func (m *FlowGranularity) OccupancyMean(now time.Duration) float64 {
	return m.pool.OccupancyMean(now)
}

// OccupancyMax implements Mechanism.
func (m *FlowGranularity) OccupancyMax() float64 { return m.pool.OccupancyMax() }

// Pool exposes the underlying pool for tests and stats collection.
func (m *FlowGranularity) Pool() *Pool { return m.pool }

// FlowsBuffered reports the number of flows currently holding buffer state.
func (m *FlowGranularity) FlowsBuffered() int { return len(m.flows) }

// NewMechanism builds a mechanism from a wire-level configuration, the
// bridge between the vendor extension message and this package.
func NewMechanism(cfg openflow.FlowBufferConfig, capacity, missSendLen int, expiry time.Duration) (Mechanism, error) {
	switch cfg.Granularity {
	case openflow.GranularityNone:
		return NewNoBuffer(), nil
	case openflow.GranularityPacket:
		return NewPacketGranularity(capacity, missSendLen, expiry)
	case openflow.GranularityFlow:
		timeout := time.Duration(cfg.RerequestTimeoutMs) * time.Millisecond
		fg, err := NewFlowGranularity(capacity, missSendLen, timeout, int(cfg.MaxPacketsPerFlow), expiry)
		if err != nil {
			return nil, err
		}
		if err := fg.SetRetryPolicy(RetryPolicy{
			MaxRerequests: int(cfg.MaxRerequests),
			BackoffPct:    int(cfg.RerequestBackoffPct),
		}); err != nil {
			return nil, err
		}
		return fg, nil
	default:
		return nil, fmt.Errorf("core: invalid granularity %d", uint8(cfg.Granularity))
	}
}
