package core

import "time"

// BufferLoss summarizes a whole-buffer wipe: how many units, packets and
// bytes were destroyed. Switch crashes account the loss to a named drop
// reason with it.
type BufferLoss struct {
	Units   int
	Packets int
	Bytes   int64
}

// Add folds another loss in.
func (b *BufferLoss) Add(o BufferLoss) {
	b.Units += o.Units
	b.Packets += o.Packets
	b.Bytes += o.Bytes
}

// AllDropper is the optional Mechanism extension for losing every buffered
// packet at once — crash semantics. NoBuffer holds no state and does not
// implement it; callers treat a missing implementation as an empty loss.
type AllDropper interface {
	DropAll(now time.Duration) BufferLoss
}

// Rerequester is the optional Mechanism extension reporting whether a
// buffered unit will be re-offered to the controller by the re-request
// timer if its first install attempt is refused. Flow-granularity units
// re-request; packet-granularity units have no timer and are lost if the
// install fails. Callers treat a missing implementation as "no".
type Rerequester interface {
	WillRerequest(bufferID uint32) bool
}

// WillRerequest implements Rerequester: every parked flow state carries a
// re-request deadline, so a refused install is retried, not lost.
func (m *FlowGranularity) WillRerequest(bufferID uint32) bool {
	_, ok := m.byID[bufferID]
	return ok
}

// WillRerequest implements Rerequester: only the flow rung re-requests;
// packet-rung units dispatch to the packet mechanism, which has no timer.
func (l *Ladder) WillRerequest(bufferID uint32) bool { return l.flow.WillRerequest(bufferID) }

// DropAll implements AllDropper: every buffered packet is destroyed and the
// units go back through the pool's reclamation path.
func (m *PacketGranularity) DropAll(now time.Duration) BufferLoss {
	var loss BufferLoss
	ids := append([]uint32(nil), m.pool.order...)
	for _, id := range ids {
		u, ok := m.pool.units[id]
		if !ok {
			continue
		}
		loss.Units++
		loss.Packets += len(u.Packets)
		loss.Bytes += int64(u.Bytes)
		if _, err := m.pool.Release(now, id); err != nil {
			break // unreachable: the id came from the live set
		}
	}
	return loss
}

// DropAll implements AllDropper: every parked flow loses its queue and its
// re-request state.
func (m *FlowGranularity) DropAll(now time.Duration) BufferLoss {
	var loss BufferLoss
	states := append([]*flowState(nil), m.order...)
	for _, st := range states {
		if u, ok := m.pool.Peek(st.bufferID); ok {
			loss.Units++
			loss.Packets += len(u.Packets)
			loss.Bytes += int64(u.Bytes)
		}
		_ = m.Drop(now, st.bufferID)
	}
	return loss
}

// DropAll implements AllDropper: both rungs share one pool, so the wipe
// drains the flow mechanism's states first and whatever packet units
// remain, then lets the hysteresis observe the empty pool.
func (l *Ladder) DropAll(now time.Duration) BufferLoss {
	loss := l.flow.DropAll(now)
	loss.Add(l.pkt.DropAll(now))
	l.evaluate(now)
	return loss
}
