package core

import (
	"fmt"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// Released is one buffered packet handed back to the datapath for
// forwarding, in arrival order.
type Released struct {
	Data       []byte
	InPort     uint16
	BufferedAt time.Duration
}

// MissResult is what a mechanism decides for one miss-match packet.
type MissResult struct {
	// PacketIn is the request message to send to the controller, or nil
	// when no request is needed (a subsequent packet of an already-reported
	// flow under flow granularity).
	PacketIn *openflow.PacketIn
	// Buffered reports whether the packet was stored in the buffer pool.
	// When false and PacketIn is non-nil, the packet travels in full inside
	// the request (the no-buffer path or a pool-exhaustion fallback).
	Buffered bool
	// Fallback reports that buffering was attempted but the pool was
	// exhausted, forcing the full-packet path.
	Fallback bool
	// Standalone tells the datapath to handle the packet locally through
	// the fail-standalone L2-learning path instead of consulting the
	// controller. Only the degradation ladder's last rung sets it.
	Standalone bool
}

// Mechanism is the buffer behaviour the switch datapath drives. The
// datapath calls HandleMiss for every packet that misses the flow table and
// Release for every packet_out (or buffered flow_mod) that references a
// buffer id. Implementations are not safe for concurrent use; the datapath
// serializes access (in sim mode everything runs on the event loop, in live
// mode the datapath holds its own lock).
type Mechanism interface {
	// Granularity identifies the mechanism.
	Granularity() openflow.BufferGranularity

	// HandleMiss processes one miss-match packet: data is the wire-format
	// frame, key its 5-tuple. The returned MissResult tells the datapath
	// whether to send a packet_in and whether the packet is now buffered.
	HandleMiss(now time.Duration, inPort uint16, data []byte, key packet.FlowKey) MissResult

	// Release handles a controller reference to bufferID: it removes the
	// corresponding packet(s) from the buffer and returns them in arrival
	// order for forwarding. It returns ErrUnknownBufferID for stale or
	// foreign ids.
	Release(now time.Duration, bufferID uint32) ([]Released, error)

	// Drop discards the packet(s) under bufferID without forwarding (a
	// packet_out with an empty action list). Dropping an unknown id is an
	// error, like Release.
	Drop(now time.Duration, bufferID uint32) error

	// NextDeadline reports the earliest future instant at which the
	// mechanism wants a Tick (for re-request timers and buffer expiry), and
	// false if it has no pending work. The simulator uses it to schedule
	// sweeps without polling.
	NextDeadline() (time.Duration, bool)

	// Tick runs timer work due at now: re-request packet_ins to resend
	// (flow granularity) after a timeout, and expired buffer drops.
	Tick(now time.Duration) []*openflow.PacketIn

	// Stats reports the mechanism's counters and occupancy snapshot.
	Stats(now time.Duration) openflow.FlowBufferStats

	// OccupancyMean and OccupancyMax expose the paper's buffer-utilization
	// metric (Figs. 8 and 13): time-averaged and peak units in use.
	OccupancyMean(now time.Duration) float64
	OccupancyMax() float64
}

// truncate returns the first n bytes of data (the packet_in payload under
// buffering: miss_send_len bytes, per the spec).
func truncate(data []byte, n int) []byte {
	if n <= 0 || n >= len(data) {
		return data
	}
	return data[:n]
}

// NoBuffer is the baseline mechanism: buffering disabled. Every miss-match
// packet is sent to the controller in full, and packet_out messages carry
// the full packet back. Nothing is ever stored, so Release and Drop always
// fail and deadlines never arise.
type NoBuffer struct {
	packetIns uint64
}

var _ Mechanism = (*NoBuffer)(nil)

// NewNoBuffer creates the baseline mechanism.
func NewNoBuffer() *NoBuffer { return &NoBuffer{} }

// Granularity implements Mechanism.
func (*NoBuffer) Granularity() openflow.BufferGranularity { return openflow.GranularityNone }

// HandleMiss implements Mechanism: full packet in the request, nothing
// buffered.
func (n *NoBuffer) HandleMiss(_ time.Duration, inPort uint16, data []byte, _ packet.FlowKey) MissResult {
	n.packetIns++
	return MissResult{
		PacketIn: &openflow.PacketIn{
			BufferID: openflow.NoBuffer,
			TotalLen: uint16(len(data)),
			InPort:   inPort,
			Reason:   openflow.ReasonNoMatch,
			Data:     data,
		},
		Buffered: false,
	}
}

// Release implements Mechanism: no ids are ever valid.
func (*NoBuffer) Release(_ time.Duration, bufferID uint32) ([]Released, error) {
	return nil, fmt.Errorf("%w: %d (buffering disabled)", ErrUnknownBufferID, bufferID)
}

// Drop implements Mechanism.
func (*NoBuffer) Drop(_ time.Duration, bufferID uint32) error {
	return fmt.Errorf("%w: %d (buffering disabled)", ErrUnknownBufferID, bufferID)
}

// NextDeadline implements Mechanism: never.
func (*NoBuffer) NextDeadline() (time.Duration, bool) { return 0, false }

// Tick implements Mechanism: nothing to do.
func (*NoBuffer) Tick(time.Duration) []*openflow.PacketIn { return nil }

// Stats implements Mechanism.
func (n *NoBuffer) Stats(time.Duration) openflow.FlowBufferStats {
	return openflow.FlowBufferStats{PacketIns: n.packetIns}
}

// OccupancyMean implements Mechanism: always zero.
func (*NoBuffer) OccupancyMean(time.Duration) float64 { return 0 }

// OccupancyMax implements Mechanism: always zero.
func (*NoBuffer) OccupancyMax() float64 { return 0 }
