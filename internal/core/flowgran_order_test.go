package core

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/packet"
)

// TestFlowGranularityReleaseOrderProperty asserts the DESIGN §5 release-order
// invariant as a property over randomized interleavings: however the
// miss-match packets of concurrent flows interleave on arrival, Release
// drains each flow's queue in exactly its arrival order (Algorithm 2), with
// one packet_in per flow and no packet crossing into another flow's queue.
func TestFlowGranularityReleaseOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		flows := 2 + rng.Intn(10)
		m, err := NewFlowGranularity(64, 128, 50*time.Millisecond, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]packet.FlowKey, flows)
		for f := range keys {
			keys[f] = packet.FlowKey{
				SrcIP:   netip.AddrFrom4([4]byte{10, 1, 0, byte(f + 1)}),
				DstIP:   netip.AddrFrom4([4]byte{10, 0, 0, 2}),
				SrcPort: uint16(40000 + f),
				DstPort: 9,
				Proto:   packet.ProtoUDP,
			}
		}
		remaining := make([]int, flows)
		total := 0
		for f := range remaining {
			remaining[f] = 1 + rng.Intn(12)
			total += remaining[f]
		}
		arrivals := make([][][]byte, flows)
		ports := make([][]uint16, flows)
		bufID := make([]uint32, flows)
		now := time.Duration(0)
		for sent := 0; sent < total; {
			f := rng.Intn(flows)
			if remaining[f] == 0 {
				continue
			}
			remaining[f]--
			// The payload encodes (flow, arrival index) so a drain-order
			// violation is directly visible in the released bytes.
			data := []byte{0xfe, byte(f), byte(len(arrivals[f]))}
			port := uint16(f%4 + 1)
			res := m.HandleMiss(now, port, data, keys[f])
			if res.Fallback {
				t.Fatalf("seed %d: fallback with %d/%d flows buffered", seed, f, flows)
			}
			if len(arrivals[f]) == 0 {
				if res.PacketIn == nil {
					t.Fatalf("seed %d flow %d: first miss emitted no packet_in", seed, f)
				}
				bufID[f] = res.PacketIn.BufferID
			} else if res.PacketIn != nil {
				t.Fatalf("seed %d flow %d: non-first miss emitted a packet_in", seed, f)
			}
			arrivals[f] = append(arrivals[f], data)
			ports[f] = append(ports[f], port)
			now += time.Duration(1+rng.Intn(50)) * time.Microsecond
			sent++
		}
		// Release the flows in an unrelated random order; each drain must
		// reproduce that flow's arrival sequence exactly.
		for _, f := range rng.Perm(flows) {
			rel, err := m.Release(now, bufID[f])
			if err != nil {
				t.Fatalf("seed %d flow %d: Release: %v", seed, f, err)
			}
			if len(rel) != len(arrivals[f]) {
				t.Fatalf("seed %d flow %d: drained %d packets, queued %d",
					seed, f, len(rel), len(arrivals[f]))
			}
			for i, r := range rel {
				if !bytes.Equal(r.Data, arrivals[f][i]) {
					t.Fatalf("seed %d flow %d: drain position %d = %v, want %v (arrival order violated)",
						seed, f, i, r.Data, arrivals[f][i])
				}
				if r.InPort != ports[f][i] {
					t.Fatalf("seed %d flow %d: drain position %d in-port = %d, want %d",
						seed, f, i, r.InPort, ports[f][i])
				}
			}
			if _, err := m.Release(now, bufID[f]); err == nil {
				t.Fatalf("seed %d flow %d: double release succeeded", seed, f)
			}
		}
		if got := m.OccupancyMax(); got > float64(flows) {
			t.Errorf("seed %d: occupancy max %g exceeds flow count %d (one unit per flow)",
				seed, got, flows)
		}
	}
}
