// Package core implements the paper's contribution: the SDN switch buffer.
//
// Three mechanisms are provided, all behind the Mechanism interface the
// switch datapath drives:
//
//   - NoBuffer: buffering disabled. Every miss-match packet travels in full
//     inside packet_in (buffer_id == OFP_NO_BUFFER). This is the OpenFlow
//     default configuration and the paper's baseline.
//   - PacketGranularity: the spec's buffer behaviour (§IV of the paper).
//     Each miss-match packet is stored in its own buffer unit and triggers
//     its own packet_in carrying only a header prefix plus the buffer_id.
//   - FlowGranularity: the paper's proposed mechanism (§V, Algorithms 1-2).
//     All miss-match packets of one flow share a single buffer unit keyed on
//     the 5-tuple; only the first packet triggers a packet_in, and a single
//     packet_out releases the whole queue in arrival order. A re-request
//     timer resends the packet_in if control operation messages never come
//     back.
//
// A buffer *unit* is a buffer_id slot, matching how the paper counts
// "buffer utilization" (Figs. 8 and 13): the packet-granularity mechanism
// occupies one unit per buffered packet, while the flow-granularity
// mechanism chains every buffered packet of a flow into one unit — which is
// exactly where its claimed 71.6% utilization improvement comes from.
//
// Units support lazy reclamation: a released unit's slot stays accounted
// (and unavailable) for a configurable delay, modelling the deferred buffer
// cleanup of a real software switch. This is what makes a small pool
// (buffer-16) exhaust at moderate sending rates even though individual
// round trips are fast, reproducing the knees in the paper's Figs. 2-8.
package core

import (
	"errors"
	"fmt"
	"time"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/openflow"
)

// Pool errors.
var (
	// ErrPoolExhausted reports that no buffer unit is free. The datapath
	// reacts the way OpenFlow prescribes: fall back to sending the entire
	// packet with buffer_id == NoBuffer.
	ErrPoolExhausted = errors.New("core: buffer pool exhausted")
	// ErrUnknownBufferID reports a release for an id not currently stored —
	// the switch answers the controller with OFPBRC_BUFFER_UNKNOWN.
	ErrUnknownBufferID = errors.New("core: unknown buffer id")
	// ErrByteBudgetExhausted reports that admitting the packet would push
	// the pool's buffered bytes past the configured byte budget. Like unit
	// exhaustion, the datapath falls back to a full-payload packet_in.
	ErrByteBudgetExhausted = errors.New("core: buffer byte budget exhausted")
	// ErrFlowOverThreshold reports that one unit (one flow's queue) grew
	// past the dynamic per-flow admission threshold α·(budget − in use).
	// Only Append is gated by it, so an elephant flow throttles before it
	// can starve other flows' first-packet Stores (BShare-style sharing).
	ErrFlowOverThreshold = errors.New("core: flow queue over dynamic admission threshold")
)

// BufferedPacket is one packet stored inside a buffer unit.
type BufferedPacket struct {
	Data       []byte
	InPort     uint16
	BufferedAt time.Duration
}

// Unit is one occupied buffer unit: a buffer_id slot holding one packet
// (packet granularity) or a whole flow's queue (flow granularity).
type Unit struct {
	ID        uint32
	Packets   []BufferedPacket
	CreatedAt time.Duration
	Bytes     int // sum of len(Packets[i].Data)
}

// Pool is a bounded set of buffer units with id allocation, occupancy
// accounting, lazy slot reclamation and age-based expiry. It does not
// impose a mechanism; the mechanisms in this package compose it.
type Pool struct {
	capacity     int
	expiry       time.Duration
	reclaimDelay time.Duration

	// Byte accounting (PR 5). Both knobs are zero-disabled so a pool
	// without an overload config behaves exactly as before.
	byteBudget int64   // admitted bytes cap; 0 = unlimited
	admitFrac  float64 // BShare α for the per-flow threshold; 0 = disabled

	units      map[uint32]*Unit
	order      []uint32        // insertion order, for expiry scans
	reclaiming []time.Duration // freeAt instants, non-decreasing
	nextID     uint32

	occupancy metrics.Gauge
	byteOcc   metrics.Gauge
	bytesLive int64  // bytes held by live units (freed immediately on remove)
	bytesHigh int64  // high-water mark of bytesLive
	stored    uint64 // packets stored
	released  uint64 // packets released
	expired   uint64 // packets expired
	rejected  uint64 // store/append attempts rejected (units or bytes)
	rejBytes  uint64 // bytes turned away by budget/threshold rejections
	thrRej    uint64 // rejections due to the dynamic per-flow threshold
}

// NewPool creates a pool of capacity units. expiry bounds how long a unit
// may stay buffered before it is dropped (the spec lets switches reclaim
// buffers whose packet_in was never answered); 0 disables expiry.
func NewPool(capacity int, expiry time.Duration) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: pool capacity must be positive, got %d", capacity)
	}
	if expiry < 0 {
		return nil, fmt.Errorf("core: negative expiry %v", expiry)
	}
	return &Pool{
		capacity: capacity,
		expiry:   expiry,
		units:    make(map[uint32]*Unit, capacity),
	}, nil
}

// SetReclaimDelay configures lazy reclamation: a released or expired unit's
// slot stays occupied for d after release. Configure before first use.
func (p *Pool) SetReclaimDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.reclaimDelay = d
}

// ReclaimDelay reports the configured reclamation delay.
func (p *Pool) ReclaimDelay() time.Duration { return p.reclaimDelay }

// SetByteBudget bounds the bytes the pool may hold across all live units.
// 0 disables byte accounting rejections (bytes are still tallied).
// Configure before first use.
func (p *Pool) SetByteBudget(n int64) error {
	if n < 0 {
		return fmt.Errorf("core: negative byte budget %d", n)
	}
	p.byteBudget = n
	return nil
}

// ByteBudget reports the configured byte budget (0 = unlimited).
func (p *Pool) ByteBudget() int64 { return p.byteBudget }

// SetAdmitFraction configures the BShare-style dynamic per-flow threshold:
// with fraction α > 0 an Append is rejected when the unit's queue would
// exceed α·(budget − bytes in use). Requires a byte budget to be in effect.
// 0 disables the threshold.
func (p *Pool) SetAdmitFraction(f float64) error {
	if f < 0 || f > 1 {
		return fmt.Errorf("core: admit fraction %v outside [0,1]", f)
	}
	p.admitFrac = f
	return nil
}

// AdmitFraction reports the configured dynamic-threshold fraction.
func (p *Pool) AdmitFraction() float64 { return p.admitFrac }

// Capacity reports the configured unit count.
func (p *Pool) Capacity() int { return p.capacity }

// sweep frees reclaiming slots whose delay has elapsed. It must be called
// with the current time before any occupancy decision or reading.
func (p *Pool) sweep(now time.Duration) {
	i := 0
	for i < len(p.reclaiming) && p.reclaiming[i] <= now {
		i++
	}
	if i > 0 {
		p.reclaiming = p.reclaiming[i:]
		p.occupancy.Set(now, float64(p.occupied()))
	}
}

// occupied counts live plus still-reclaiming slots.
func (p *Pool) occupied() int { return len(p.units) + len(p.reclaiming) }

// InUse reports the number of occupied units (live and reclaiming) at now.
func (p *Pool) InUse(now time.Duration) int {
	p.sweep(now)
	return p.occupied()
}

// Live reports the number of addressable (not yet released) units.
func (p *Pool) Live() int { return len(p.units) }

// Free reports the number of available units at now.
func (p *Pool) Free(now time.Duration) int {
	p.sweep(now)
	return p.capacity - p.occupied()
}

// Store buffers a packet in a fresh unit with a newly allocated id.
func (p *Pool) Store(now time.Duration, inPort uint16, data []byte) (*Unit, error) {
	return p.store(now, 0, false, inPort, data)
}

// StoreAs buffers a packet in a fresh unit under a caller-chosen id (the
// flow-granularity mechanism derives ids from the 5-tuple). Storing under an
// id already in use is a caller bug and fails.
func (p *Pool) StoreAs(now time.Duration, id uint32, inPort uint16, data []byte) (*Unit, error) {
	return p.store(now, id, true, inPort, data)
}

func (p *Pool) store(now time.Duration, id uint32, explicit bool, inPort uint16, data []byte) (*Unit, error) {
	p.sweep(now)
	if p.occupied() >= p.capacity {
		p.rejected++
		p.rejBytes += uint64(len(data))
		return nil, fmt.Errorf("%w: %d units occupied", ErrPoolExhausted, p.occupied())
	}
	if p.byteBudget > 0 && p.bytesLive+int64(len(data)) > p.byteBudget {
		p.rejected++
		p.rejBytes += uint64(len(data))
		return nil, fmt.Errorf("%w: %d of %d bytes in use", ErrByteBudgetExhausted, p.bytesLive, p.byteBudget)
	}
	if explicit {
		if id == openflow.NoBuffer {
			return nil, fmt.Errorf("core: cannot store under reserved id NoBuffer")
		}
		if _, exists := p.units[id]; exists {
			return nil, fmt.Errorf("core: buffer id %d already in use", id)
		}
	} else {
		var err error
		if id, err = p.allocateID(); err != nil {
			return nil, err
		}
	}
	u := &Unit{
		ID:        id,
		Packets:   []BufferedPacket{{Data: data, InPort: inPort, BufferedAt: now}},
		CreatedAt: now,
		Bytes:     len(data),
	}
	p.units[id] = u
	p.order = append(p.order, id)
	p.stored++
	p.addBytes(now, int64(len(data)))
	p.occupancy.Set(now, float64(p.occupied()))
	return u, nil
}

// addBytes adjusts the live-byte tally (delta may be negative) and keeps
// the high-water mark and byte-occupancy gauge current.
func (p *Pool) addBytes(now time.Duration, delta int64) {
	p.bytesLive += delta
	if p.bytesLive > p.bytesHigh {
		p.bytesHigh = p.bytesLive
	}
	p.byteOcc.Set(now, float64(p.bytesLive))
}

// Append chains another packet into an existing unit. It consumes no extra
// unit: this is the flow-granularity path that lets a whole flow share one
// buffer_id slot.
func (p *Pool) Append(now time.Duration, id uint32, inPort uint16, data []byte) error {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	if p.byteBudget > 0 {
		if p.bytesLive+int64(len(data)) > p.byteBudget {
			p.rejected++
			p.rejBytes += uint64(len(data))
			return fmt.Errorf("%w: %d of %d bytes in use", ErrByteBudgetExhausted, p.bytesLive, p.byteBudget)
		}
		// BShare dynamic threshold: a single flow's queue may only grow up
		// to α·(free bytes). As the pool fills the threshold shrinks, so an
		// elephant throttles itself while first-packet Stores (gated only by
		// the total budget above) keep admitting new flows.
		if p.admitFrac > 0 {
			threshold := int64(p.admitFrac * float64(p.byteBudget-p.bytesLive))
			if int64(u.Bytes)+int64(len(data)) > threshold {
				p.rejected++
				p.rejBytes += uint64(len(data))
				p.thrRej++
				return fmt.Errorf("%w: unit %d holds %d bytes, threshold %d", ErrFlowOverThreshold, id, u.Bytes, threshold)
			}
		}
	}
	u.Packets = append(u.Packets, BufferedPacket{Data: data, InPort: inPort, BufferedAt: now})
	u.Bytes += len(data)
	p.stored++
	p.addBytes(now, int64(len(data)))
	return nil
}

// Release removes and returns the unit with the given id. The slot remains
// accounted as occupied for the reclamation delay.
func (p *Pool) Release(now time.Duration, id uint32) (*Unit, error) {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	p.remove(now, id)
	p.released += uint64(len(u.Packets))
	return u, nil
}

// DiscardExpired removes a unit like Release but accounts its packets as
// expired rather than released; mechanisms with their own expiry bookkeeping
// (flow granularity expires whole flows at once) use it instead of Expire.
func (p *Pool) DiscardExpired(now time.Duration, id uint32) (*Unit, error) {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	p.remove(now, id)
	p.expired += uint64(len(u.Packets))
	return u, nil
}

// remove deletes the unit and starts its slot's reclamation clock. The
// unit's bytes are freed immediately: reclamation models the slot (the
// buffer_id bookkeeping), not the packet memory, which a real switch hands
// back to the allocator on release.
func (p *Pool) remove(now time.Duration, id uint32) {
	if u, ok := p.units[id]; ok {
		p.addBytes(now, -int64(u.Bytes))
	}
	delete(p.units, id)
	if p.reclaimDelay > 0 {
		p.reclaiming = append(p.reclaiming, now+p.reclaimDelay)
	}
	// Compact the insertion-order list once released ids dominate it.
	// Expire compacts as a side effect, but with expiry disabled nothing
	// else prunes the list, and it would otherwise grow by one id per
	// released unit for the whole run. Amortized O(1): a compaction scans
	// at most 2·live+16 entries and drops more than half of them.
	if len(p.order) > 2*len(p.units)+16 {
		kept := p.order[:0]
		for _, oid := range p.order {
			if _, live := p.units[oid]; live {
				kept = append(kept, oid)
			}
		}
		p.order = kept
	}
	p.occupancy.Set(now, float64(p.occupied()))
}

// Peek returns the unit with the given id without releasing it.
func (p *Pool) Peek(id uint32) (*Unit, bool) {
	u, ok := p.units[id]
	return u, ok
}

// Expire drops units older than the pool's expiry and returns them. With
// expiry disabled it is a no-op.
func (p *Pool) Expire(now time.Duration) []*Unit {
	p.sweep(now)
	if p.expiry == 0 {
		return nil
	}
	var dropped []*Unit
	kept := p.order[:0]
	for _, id := range p.order {
		u, ok := p.units[id]
		if !ok {
			continue // already released; compact the order list
		}
		if now-u.CreatedAt >= p.expiry {
			p.remove(now, id)
			p.expired += uint64(len(u.Packets))
			dropped = append(dropped, u)
		} else {
			kept = append(kept, id)
		}
	}
	p.order = kept
	return dropped
}

// allocateID returns a fresh id, skipping ids in use and the NoBuffer
// sentinel.
//
// Invariant: store() admits a unit only when occupied() < capacity, and
// capacities are configured orders of magnitude below the 2^32−1 usable ids,
// so a free id always exists within one pass of the id space and the loop
// terminates long before the bound. The bound exists so that if that
// invariant is ever violated (a future caller bypassing the capacity check),
// allocation fails loudly instead of spinning forever.
func (p *Pool) allocateID() (uint32, error) {
	for tries := uint64(0); tries < uint64(openflow.NoBuffer); tries++ {
		p.nextID++
		if p.nextID == openflow.NoBuffer {
			p.nextID = 1
		}
		if _, used := p.units[p.nextID]; !used {
			return p.nextID, nil
		}
	}
	return 0, fmt.Errorf("core: all %d buffer ids in use", uint64(openflow.NoBuffer)-1)
}

// OccupancyMean reports the time-averaged units occupied up to now — the
// paper's buffer-utilization metric.
func (p *Pool) OccupancyMean(now time.Duration) float64 {
	p.sweep(now)
	p.occupancy.Finish(now)
	return p.occupancy.TimeAverage()
}

// OccupancyMax reports the peak units occupied.
func (p *Pool) OccupancyMax() float64 { return p.occupancy.Max() }

// BytesInUse reports the bytes currently held by live units.
func (p *Pool) BytesInUse() int64 { return p.bytesLive }

// BytesHighWater reports the peak bytes ever held at once.
func (p *Pool) BytesHighWater() int64 { return p.bytesHigh }

// ByteOccupancyMean reports the time-averaged buffered bytes up to now —
// the paper's Fig. 10 utilization metric in bytes rather than units.
func (p *Pool) ByteOccupancyMean(now time.Duration) float64 {
	p.byteOcc.Finish(now)
	return p.byteOcc.TimeAverage()
}

// RejectedBytes reports the bytes turned away by byte-budget or dynamic
// threshold rejections (unit-exhaustion rejections count their bytes too).
func (p *Pool) RejectedBytes() uint64 { return p.rejBytes }

// ThresholdRejections reports how many admissions the dynamic per-flow
// threshold (as opposed to the total budget) refused.
func (p *Pool) ThresholdRejections() uint64 { return p.thrRej }

// Counters reports lifetime packet counts: stored, released, expired, and
// store attempts rejected for exhaustion.
func (p *Pool) Counters() (stored, released, expired, rejected uint64) {
	return p.stored, p.released, p.expired, p.rejected
}
