// Package core implements the paper's contribution: the SDN switch buffer.
//
// Three mechanisms are provided, all behind the Mechanism interface the
// switch datapath drives:
//
//   - NoBuffer: buffering disabled. Every miss-match packet travels in full
//     inside packet_in (buffer_id == OFP_NO_BUFFER). This is the OpenFlow
//     default configuration and the paper's baseline.
//   - PacketGranularity: the spec's buffer behaviour (§IV of the paper).
//     Each miss-match packet is stored in its own buffer unit and triggers
//     its own packet_in carrying only a header prefix plus the buffer_id.
//   - FlowGranularity: the paper's proposed mechanism (§V, Algorithms 1-2).
//     All miss-match packets of one flow share a single buffer unit keyed on
//     the 5-tuple; only the first packet triggers a packet_in, and a single
//     packet_out releases the whole queue in arrival order. A re-request
//     timer resends the packet_in if control operation messages never come
//     back.
//
// A buffer *unit* is a buffer_id slot, matching how the paper counts
// "buffer utilization" (Figs. 8 and 13): the packet-granularity mechanism
// occupies one unit per buffered packet, while the flow-granularity
// mechanism chains every buffered packet of a flow into one unit — which is
// exactly where its claimed 71.6% utilization improvement comes from.
//
// Units support lazy reclamation: a released unit's slot stays accounted
// (and unavailable) for a configurable delay, modelling the deferred buffer
// cleanup of a real software switch. This is what makes a small pool
// (buffer-16) exhaust at moderate sending rates even though individual
// round trips are fast, reproducing the knees in the paper's Figs. 2-8.
package core

import (
	"errors"
	"fmt"
	"time"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/openflow"
)

// Pool errors.
var (
	// ErrPoolExhausted reports that no buffer unit is free. The datapath
	// reacts the way OpenFlow prescribes: fall back to sending the entire
	// packet with buffer_id == NoBuffer.
	ErrPoolExhausted = errors.New("core: buffer pool exhausted")
	// ErrUnknownBufferID reports a release for an id not currently stored —
	// the switch answers the controller with OFPBRC_BUFFER_UNKNOWN.
	ErrUnknownBufferID = errors.New("core: unknown buffer id")
)

// BufferedPacket is one packet stored inside a buffer unit.
type BufferedPacket struct {
	Data       []byte
	InPort     uint16
	BufferedAt time.Duration
}

// Unit is one occupied buffer unit: a buffer_id slot holding one packet
// (packet granularity) or a whole flow's queue (flow granularity).
type Unit struct {
	ID        uint32
	Packets   []BufferedPacket
	CreatedAt time.Duration
}

// Pool is a bounded set of buffer units with id allocation, occupancy
// accounting, lazy slot reclamation and age-based expiry. It does not
// impose a mechanism; the mechanisms in this package compose it.
type Pool struct {
	capacity     int
	expiry       time.Duration
	reclaimDelay time.Duration

	units      map[uint32]*Unit
	order      []uint32        // insertion order, for expiry scans
	reclaiming []time.Duration // freeAt instants, non-decreasing
	nextID     uint32

	occupancy metrics.Gauge
	stored    uint64 // packets stored
	released  uint64 // packets released
	expired   uint64 // packets expired
	rejected  uint64 // store attempts rejected for exhaustion
}

// NewPool creates a pool of capacity units. expiry bounds how long a unit
// may stay buffered before it is dropped (the spec lets switches reclaim
// buffers whose packet_in was never answered); 0 disables expiry.
func NewPool(capacity int, expiry time.Duration) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("core: pool capacity must be positive, got %d", capacity)
	}
	if expiry < 0 {
		return nil, fmt.Errorf("core: negative expiry %v", expiry)
	}
	return &Pool{
		capacity: capacity,
		expiry:   expiry,
		units:    make(map[uint32]*Unit, capacity),
	}, nil
}

// SetReclaimDelay configures lazy reclamation: a released or expired unit's
// slot stays occupied for d after release. Configure before first use.
func (p *Pool) SetReclaimDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.reclaimDelay = d
}

// ReclaimDelay reports the configured reclamation delay.
func (p *Pool) ReclaimDelay() time.Duration { return p.reclaimDelay }

// Capacity reports the configured unit count.
func (p *Pool) Capacity() int { return p.capacity }

// sweep frees reclaiming slots whose delay has elapsed. It must be called
// with the current time before any occupancy decision or reading.
func (p *Pool) sweep(now time.Duration) {
	i := 0
	for i < len(p.reclaiming) && p.reclaiming[i] <= now {
		i++
	}
	if i > 0 {
		p.reclaiming = p.reclaiming[i:]
		p.occupancy.Set(now, float64(p.occupied()))
	}
}

// occupied counts live plus still-reclaiming slots.
func (p *Pool) occupied() int { return len(p.units) + len(p.reclaiming) }

// InUse reports the number of occupied units (live and reclaiming) at now.
func (p *Pool) InUse(now time.Duration) int {
	p.sweep(now)
	return p.occupied()
}

// Live reports the number of addressable (not yet released) units.
func (p *Pool) Live() int { return len(p.units) }

// Free reports the number of available units at now.
func (p *Pool) Free(now time.Duration) int {
	p.sweep(now)
	return p.capacity - p.occupied()
}

// Store buffers a packet in a fresh unit with a newly allocated id.
func (p *Pool) Store(now time.Duration, inPort uint16, data []byte) (*Unit, error) {
	return p.store(now, 0, false, inPort, data)
}

// StoreAs buffers a packet in a fresh unit under a caller-chosen id (the
// flow-granularity mechanism derives ids from the 5-tuple). Storing under an
// id already in use is a caller bug and fails.
func (p *Pool) StoreAs(now time.Duration, id uint32, inPort uint16, data []byte) (*Unit, error) {
	return p.store(now, id, true, inPort, data)
}

func (p *Pool) store(now time.Duration, id uint32, explicit bool, inPort uint16, data []byte) (*Unit, error) {
	p.sweep(now)
	if p.occupied() >= p.capacity {
		p.rejected++
		return nil, fmt.Errorf("%w: %d units occupied", ErrPoolExhausted, p.occupied())
	}
	if explicit {
		if id == openflow.NoBuffer {
			return nil, fmt.Errorf("core: cannot store under reserved id NoBuffer")
		}
		if _, exists := p.units[id]; exists {
			return nil, fmt.Errorf("core: buffer id %d already in use", id)
		}
	} else {
		var err error
		if id, err = p.allocateID(); err != nil {
			return nil, err
		}
	}
	u := &Unit{
		ID:        id,
		Packets:   []BufferedPacket{{Data: data, InPort: inPort, BufferedAt: now}},
		CreatedAt: now,
	}
	p.units[id] = u
	p.order = append(p.order, id)
	p.stored++
	p.occupancy.Set(now, float64(p.occupied()))
	return u, nil
}

// Append chains another packet into an existing unit. It consumes no extra
// unit: this is the flow-granularity path that lets a whole flow share one
// buffer_id slot.
func (p *Pool) Append(now time.Duration, id uint32, inPort uint16, data []byte) error {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	u.Packets = append(u.Packets, BufferedPacket{Data: data, InPort: inPort, BufferedAt: now})
	p.stored++
	return nil
}

// Release removes and returns the unit with the given id. The slot remains
// accounted as occupied for the reclamation delay.
func (p *Pool) Release(now time.Duration, id uint32) (*Unit, error) {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	p.remove(now, id)
	p.released += uint64(len(u.Packets))
	return u, nil
}

// DiscardExpired removes a unit like Release but accounts its packets as
// expired rather than released; mechanisms with their own expiry bookkeeping
// (flow granularity expires whole flows at once) use it instead of Expire.
func (p *Pool) DiscardExpired(now time.Duration, id uint32) (*Unit, error) {
	p.sweep(now)
	u, ok := p.units[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBufferID, id)
	}
	p.remove(now, id)
	p.expired += uint64(len(u.Packets))
	return u, nil
}

// remove deletes the unit and starts its slot's reclamation clock.
func (p *Pool) remove(now time.Duration, id uint32) {
	delete(p.units, id)
	if p.reclaimDelay > 0 {
		p.reclaiming = append(p.reclaiming, now+p.reclaimDelay)
	}
	// Compact the insertion-order list once released ids dominate it.
	// Expire compacts as a side effect, but with expiry disabled nothing
	// else prunes the list, and it would otherwise grow by one id per
	// released unit for the whole run. Amortized O(1): a compaction scans
	// at most 2·live+16 entries and drops more than half of them.
	if len(p.order) > 2*len(p.units)+16 {
		kept := p.order[:0]
		for _, oid := range p.order {
			if _, live := p.units[oid]; live {
				kept = append(kept, oid)
			}
		}
		p.order = kept
	}
	p.occupancy.Set(now, float64(p.occupied()))
}

// Peek returns the unit with the given id without releasing it.
func (p *Pool) Peek(id uint32) (*Unit, bool) {
	u, ok := p.units[id]
	return u, ok
}

// Expire drops units older than the pool's expiry and returns them. With
// expiry disabled it is a no-op.
func (p *Pool) Expire(now time.Duration) []*Unit {
	p.sweep(now)
	if p.expiry == 0 {
		return nil
	}
	var dropped []*Unit
	kept := p.order[:0]
	for _, id := range p.order {
		u, ok := p.units[id]
		if !ok {
			continue // already released; compact the order list
		}
		if now-u.CreatedAt >= p.expiry {
			p.remove(now, id)
			p.expired += uint64(len(u.Packets))
			dropped = append(dropped, u)
		} else {
			kept = append(kept, id)
		}
	}
	p.order = kept
	return dropped
}

// allocateID returns a fresh id, skipping ids in use and the NoBuffer
// sentinel.
//
// Invariant: store() admits a unit only when occupied() < capacity, and
// capacities are configured orders of magnitude below the 2^32−1 usable ids,
// so a free id always exists within one pass of the id space and the loop
// terminates long before the bound. The bound exists so that if that
// invariant is ever violated (a future caller bypassing the capacity check),
// allocation fails loudly instead of spinning forever.
func (p *Pool) allocateID() (uint32, error) {
	for tries := uint64(0); tries < uint64(openflow.NoBuffer); tries++ {
		p.nextID++
		if p.nextID == openflow.NoBuffer {
			p.nextID = 1
		}
		if _, used := p.units[p.nextID]; !used {
			return p.nextID, nil
		}
	}
	return 0, fmt.Errorf("core: all %d buffer ids in use", uint64(openflow.NoBuffer)-1)
}

// OccupancyMean reports the time-averaged units occupied up to now — the
// paper's buffer-utilization metric.
func (p *Pool) OccupancyMean(now time.Duration) float64 {
	p.sweep(now)
	p.occupancy.Finish(now)
	return p.occupancy.TimeAverage()
}

// OccupancyMax reports the peak units occupied.
func (p *Pool) OccupancyMax() float64 { return p.occupancy.Max() }

// Counters reports lifetime packet counts: stored, released, expired, and
// store attempts rejected for exhaustion.
func (p *Pool) Counters() (stored, released, expired, rejected uint64) {
	return p.stored, p.released, p.expired, p.rejected
}
