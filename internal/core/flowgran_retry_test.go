package core

import (
	"bytes"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
)

func TestRetryPolicyValidation(t *testing.T) {
	m, err := NewFlowGranularity(16, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRetryPolicy(RetryPolicy{MaxRerequests: -1}); err == nil {
		t.Error("accepted negative re-request cap")
	}
	if err := m.SetRetryPolicy(RetryPolicy{BackoffPct: -1}); err == nil {
		t.Error("accepted negative backoff")
	}
	if err := m.SetRetryPolicy(RetryPolicy{MaxRerequests: 3, BackoffPct: 100}); err != nil {
		t.Errorf("rejected valid policy: %v", err)
	}
	if got := m.RetryPolicy(); got.MaxRerequests != 3 || got.BackoffPct != 100 {
		t.Errorf("RetryPolicy = %+v", got)
	}
}

// TestRerequestBackoffGrowsWait pins the exponential schedule: with a 100%
// backoff each successive re-request wait doubles (50, 100, 200 ms...).
func TestRerequestBackoffGrowsWait(t *testing.T) {
	m, err := NewFlowGranularity(16, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRetryPolicy(RetryPolicy{BackoffPct: 100}); err != nil {
		t.Fatal(err)
	}
	m.HandleMiss(0, 1, testData(0, 100), testKey(1))

	now := time.Duration(0)
	wantWaits := []time.Duration{50, 100, 200, 400} // ms
	for i, w := range wantWaits {
		next, ok := m.NextDeadline()
		if !ok {
			t.Fatalf("attempt %d: no deadline", i)
		}
		if got := next - now; got != w*time.Millisecond {
			t.Fatalf("attempt %d: wait = %v, want %v", i, got, w*time.Millisecond)
		}
		now = next
		if out := m.Tick(now); len(out) != 1 {
			t.Fatalf("attempt %d: Tick emitted %d packet_ins, want 1 re-request", i, len(out))
		}
	}
	if st := m.Stats(now); st.Rerequests != uint64(len(wantWaits)) {
		t.Errorf("Rerequests = %d, want %d", st.Rerequests, len(wantWaits))
	}
}

// TestGiveUpDrainsQueueWithoutLeak is the buffer-ownership rule on give-up:
// after MaxRerequests unanswered re-sends the flow's unit is released (pool
// returns to empty — no leak), the queued packets come back as full-payload
// no-buffer packet_ins in arrival order, and the counters attribute them as
// fallbacks plus one giveup.
func TestGiveUpDrainsQueueWithoutLeak(t *testing.T) {
	m, err := NewFlowGranularity(16, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRetryPolicy(RetryPolicy{MaxRerequests: 2}); err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	m.HandleMiss(0, 1, testData(0, 600), key)
	m.HandleMiss(time.Millisecond, 1, testData(1, 600), key)
	m.HandleMiss(2*time.Millisecond, 1, testData(2, 600), key)

	now := time.Duration(0)
	// Two re-requests fire, then the third deadline abandons the flow.
	for i := 0; i < 2; i++ {
		next, _ := m.NextDeadline()
		now = next
		out := m.Tick(now)
		if len(out) != 1 || out[0].BufferID == openflow.NoBuffer {
			t.Fatalf("attempt %d: expected one buffered re-request, got %v", i, out)
		}
	}
	next, ok := m.NextDeadline()
	if !ok {
		t.Fatal("no give-up deadline scheduled")
	}
	now = next
	out := m.Tick(now)
	if len(out) != 3 {
		t.Fatalf("give-up emitted %d packet_ins, want 3 (one per queued packet)", len(out))
	}
	for i, pi := range out {
		if pi.BufferID != openflow.NoBuffer {
			t.Errorf("fallback packet_in %d carries buffer id %d, want NoBuffer", i, pi.BufferID)
		}
		if !bytes.Equal(pi.Data, testData(i, 600)) {
			t.Errorf("fallback packet_in %d out of arrival order", i)
		}
	}

	if live := m.Pool().Live(); live != 0 {
		t.Errorf("pool units leaked on give-up: %d live", live)
	}
	if m.FlowsBuffered() != 0 {
		t.Errorf("flow records leaked on give-up: %d", m.FlowsBuffered())
	}
	st := m.Stats(now)
	if st.Giveups != 1 {
		t.Errorf("Giveups = %d, want 1", st.Giveups)
	}
	if st.DroppedNoBuffer != 3 {
		t.Errorf("fallbacks = %d, want 3", st.DroppedNoBuffer)
	}
	if st.Rerequests != 2 {
		t.Errorf("Rerequests = %d, want 2 (capped)", st.Rerequests)
	}
	if _, ok := m.NextDeadline(); ok {
		t.Error("deadline remains after give-up")
	}

	// The flow is forgotten: a new packet of the same 5-tuple starts a fresh
	// buffered flow with its own packet_in.
	res := m.HandleMiss(now+time.Millisecond, 1, testData(3, 600), key)
	if res.PacketIn == nil || !res.Buffered {
		t.Errorf("flow not restartable after give-up: %+v", res)
	}
}

// TestByteBudgetRejectionFallsBackThenGivesUpClean extends the give-up rule
// to the byte-budgeted pool: once the budget (or the per-flow admission
// threshold) rejects an append, the packet takes the full-payload fallback
// path; when the flow later gives up, only the packets that were actually
// admitted drain — in arrival order — and the pool ends with zero units and
// zero bytes.
func TestByteBudgetRejectionFallsBackThenGivesUpClean(t *testing.T) {
	m, err := NewFlowGranularity(16, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetRetryPolicy(RetryPolicy{MaxRerequests: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Pool().SetByteBudget(1500); err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	if res := m.HandleMiss(0, 1, testData(0, 600), key); !res.Buffered {
		t.Fatalf("first packet not buffered: %+v", res)
	}
	if res := m.HandleMiss(time.Millisecond, 1, testData(1, 600), key); !res.Buffered {
		t.Fatalf("second packet not buffered: %+v", res)
	}
	// 1800 > 1500: the budget rejects this append; the packet must still
	// reach the controller via the full-payload path.
	res := m.HandleMiss(2*time.Millisecond, 1, testData(2, 600), key)
	if !res.Fallback || res.PacketIn == nil || res.PacketIn.BufferID != openflow.NoBuffer {
		t.Fatalf("over-budget packet = %+v, want full-payload fallback", res)
	}
	if !bytes.Equal(res.PacketIn.Data, testData(2, 600)) {
		t.Error("fallback packet_in carries wrong payload")
	}
	if got := m.Pool().RejectedBytes(); got != 600 {
		t.Errorf("RejectedBytes = %d, want 600", got)
	}

	// One re-request, then give-up: the two admitted packets drain in
	// arrival order.
	now := time.Duration(0)
	next, _ := m.NextDeadline()
	now = next
	if out := m.Tick(now); len(out) != 1 {
		t.Fatalf("re-request emitted %d packet_ins, want 1", len(out))
	}
	next, ok := m.NextDeadline()
	if !ok {
		t.Fatal("no give-up deadline scheduled")
	}
	out := m.Tick(next)
	if len(out) != 2 {
		t.Fatalf("give-up emitted %d packet_ins, want 2 (the admitted packets)", len(out))
	}
	for i, pi := range out {
		if !bytes.Equal(pi.Data, testData(i, 600)) {
			t.Errorf("drained packet %d out of arrival order", i)
		}
	}
	if live := m.Pool().Live(); live != 0 {
		t.Errorf("pool units leaked: %d", live)
	}
	if b := m.Pool().BytesInUse(); b != 0 {
		t.Errorf("pool bytes leaked: %d", b)
	}
}

// TestZeroPolicyRetriesForever pins backward compatibility: without a
// policy the mechanism never gives up and the wait never grows.
func TestZeroPolicyRetriesForever(t *testing.T) {
	m, err := NewFlowGranularity(16, 128, 50*time.Millisecond, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.HandleMiss(0, 1, testData(0, 100), testKey(1))
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		next, ok := m.NextDeadline()
		if !ok {
			t.Fatalf("attempt %d: no deadline", i)
		}
		if got := next - now; got != 50*time.Millisecond {
			t.Fatalf("attempt %d: wait = %v, want fixed 50ms", i, got)
		}
		now = next
		out := m.Tick(now)
		if len(out) != 1 || out[0].BufferID == openflow.NoBuffer {
			t.Fatalf("attempt %d: got %v, want one buffered re-request", i, out)
		}
	}
	if st := m.Stats(now); st.Giveups != 0 {
		t.Errorf("Giveups = %d, want 0", st.Giveups)
	}
}

// TestNewMechanismAppliesRetryPolicy checks the wire-config bridge.
func TestNewMechanismAppliesRetryPolicy(t *testing.T) {
	mech, err := NewMechanism(openflow.FlowBufferConfig{
		Granularity:         openflow.GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxRerequests:       8,
		RerequestBackoffPct: 200,
	}, 16, 128, 0)
	if err != nil {
		t.Fatalf("NewMechanism: %v", err)
	}
	fg, ok := mech.(*FlowGranularity)
	if !ok {
		t.Fatalf("mechanism is %T", mech)
	}
	if p := fg.RetryPolicy(); p.MaxRerequests != 8 || p.BackoffPct != 200 {
		t.Errorf("policy = %+v, want {8 200}", p)
	}
}
