package core

import (
	"fmt"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/telemetry"
)

// PacketGranularity is the OpenFlow default buffer mechanism: every
// miss-match packet gets its own buffer unit with an exclusive buffer_id,
// and every miss-match packet triggers its own packet_in carrying only the
// first MissSendLen bytes. One packet_out releases exactly one packet.
//
// When the pool is exhausted the mechanism falls back to the no-buffer path
// for that packet (full payload, buffer_id == NoBuffer), which is the knee
// visible in the paper's buffer-16 curves once the sending rate outruns the
// release rate.
type PacketGranularity struct {
	pool        *Pool
	missSendLen int
	packetIns   uint64
	fallbacks   uint64

	tel *telemetry.Recorder // nil unless the testbed wires telemetry
}

var _ Mechanism = (*PacketGranularity)(nil)

// NewPacketGranularity creates the default buffer mechanism over a pool of
// the given capacity. missSendLen is the packet_in payload truncation;
// expiry bounds buffered-packet lifetime (0 = no expiry).
func NewPacketGranularity(capacity, missSendLen int, expiry time.Duration) (*PacketGranularity, error) {
	if missSendLen <= 0 {
		return nil, fmt.Errorf("core: miss_send_len must be positive, got %d", missSendLen)
	}
	pool, err := NewPool(capacity, expiry)
	if err != nil {
		return nil, err
	}
	return &PacketGranularity{pool: pool, missSendLen: missSendLen}, nil
}

// newPacketGranularityOn builds the mechanism over an existing pool, so the
// degradation ladder can share one pool across granularities.
func newPacketGranularityOn(pool *Pool, missSendLen int) (*PacketGranularity, error) {
	if missSendLen <= 0 {
		return nil, fmt.Errorf("core: miss_send_len must be positive, got %d", missSendLen)
	}
	return &PacketGranularity{pool: pool, missSendLen: missSendLen}, nil
}

// Granularity implements Mechanism.
func (*PacketGranularity) Granularity() openflow.BufferGranularity {
	return openflow.GranularityPacket
}

// SetTelemetry wires the recorder the mechanism emits buffer-enqueue spans
// into (nil disables; the default).
func (m *PacketGranularity) SetTelemetry(rec *telemetry.Recorder) { m.tel = rec }

// HandleMiss implements Mechanism: buffer the packet in its own unit and
// report only a header prefix, or fall back to the full-packet path when the
// pool is exhausted.
func (m *PacketGranularity) HandleMiss(now time.Duration, inPort uint16, data []byte, key packet.FlowKey) MissResult {
	m.packetIns++
	u, err := m.pool.Store(now, inPort, data)
	if err != nil {
		m.fallbacks++
		return MissResult{
			PacketIn: &openflow.PacketIn{
				BufferID: openflow.NoBuffer,
				TotalLen: uint16(len(data)),
				InPort:   inPort,
				Reason:   openflow.ReasonNoMatch,
				Data:     data,
			},
			Fallback: true,
		}
	}
	if m.tel != nil {
		m.tel.Instant(telemetry.KindBufferEnqueue, now, telemetry.HashKey(key), u.ID, uint32(len(data)))
		m.tel.FlowBuffered(key, len(data))
	}
	return MissResult{
		PacketIn: &openflow.PacketIn{
			BufferID: u.ID,
			TotalLen: uint16(len(data)),
			InPort:   inPort,
			Reason:   openflow.ReasonNoMatch,
			Data:     truncate(data, m.missSendLen),
		},
		Buffered: true,
	}
}

// Release implements Mechanism: one id, one packet.
func (m *PacketGranularity) Release(now time.Duration, bufferID uint32) ([]Released, error) {
	u, err := m.pool.Release(now, bufferID)
	if err != nil {
		return nil, err
	}
	out := make([]Released, len(u.Packets))
	for i, bp := range u.Packets {
		out[i] = Released{Data: bp.Data, InPort: bp.InPort, BufferedAt: bp.BufferedAt}
	}
	return out, nil
}

// Drop implements Mechanism.
func (m *PacketGranularity) Drop(now time.Duration, bufferID uint32) error {
	_, err := m.pool.Release(now, bufferID)
	return err
}

// NextDeadline implements Mechanism: only buffer expiry needs ticks.
func (m *PacketGranularity) NextDeadline() (time.Duration, bool) {
	if m.pool.expiry == 0 || m.pool.Live() == 0 {
		return 0, false
	}
	next := time.Duration(0)
	found := false
	for _, id := range m.pool.order {
		u, ok := m.pool.units[id]
		if !ok {
			continue
		}
		d := u.CreatedAt + m.pool.expiry
		if !found || d < next {
			next, found = d, true
		}
	}
	return next, found
}

// Tick implements Mechanism: drop expired units. The default mechanism never
// re-requests, so no packet_ins are produced.
func (m *PacketGranularity) Tick(now time.Duration) []*openflow.PacketIn {
	m.pool.Expire(now)
	return nil
}

// Stats implements Mechanism.
func (m *PacketGranularity) Stats(now time.Duration) openflow.FlowBufferStats {
	return openflow.FlowBufferStats{
		UnitsInUse:      uint32(m.pool.InUse(now)),
		UnitsCapacity:   uint32(m.pool.Capacity()),
		PacketIns:       m.packetIns,
		DroppedNoBuffer: m.fallbacks,
		BytesInUse:      uint64(m.pool.BytesInUse()),
		BytesHighWater:  uint64(m.pool.BytesHighWater()),
		RejectedBytes:   m.pool.RejectedBytes(),
	}
}

// OccupancyMean implements Mechanism.
func (m *PacketGranularity) OccupancyMean(now time.Duration) float64 {
	return m.pool.OccupancyMean(now)
}

// OccupancyMax implements Mechanism.
func (m *PacketGranularity) OccupancyMax() float64 { return m.pool.OccupancyMax() }

// Pool exposes the underlying pool for tests and stats collection.
func (m *PacketGranularity) Pool() *Pool { return m.pool }
