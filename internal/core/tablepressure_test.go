package core

import (
	"testing"
	"time"
)

// TestLadderTablePressureDegrades pins the table→ladder coupling (DESIGN.md
// §17): a saturated flow table alone — the pool empty, no backpressure —
// escalates the ladder exactly like buffer pressure, and relief walks it
// back down.
func TestLadderTablePressureDegrades(t *testing.T) {
	lad := ladderForTest(t, 4000)
	now := time.Duration(0)
	lad.SetTablePressure(0.95, now)
	if got := lad.TablePressure(); got != 0.95 {
		t.Fatalf("TablePressure = %v, want 0.95", got)
	}
	for i := 0; lad.Level() == LevelFlow; i++ {
		if i > 100 {
			t.Fatal("table pressure never escalated the ladder")
		}
		d, ok := lad.NextDeadline()
		if !ok {
			now += time.Millisecond
			lad.Tick(now)
			continue
		}
		now = d
		lad.Tick(now)
	}
	if lad.Level() != LevelPacket {
		t.Fatalf("level = %v, want packet after one hold", lad.Level())
	}

	// Table drains (evictions or timeouts freed slots): pressure clears and
	// the ladder recovers on heartbeats alone.
	lad.SetTablePressure(0.1, now)
	for guard := 0; lad.Level() != LevelFlow; guard++ {
		if guard > 100 {
			t.Fatalf("ladder never recovered, stuck at %v", lad.Level())
		}
		d, ok := lad.NextDeadline()
		if !ok {
			now += time.Millisecond
			lad.Tick(now)
			continue
		}
		now = d
		lad.Tick(now)
	}

	// Below-threshold table pressure on its own must not move the ladder.
	lad.SetTablePressure(0.6, now)
	for i := 0; i < 20; i++ {
		now += time.Millisecond
		lad.Tick(now)
	}
	if lad.Level() != LevelFlow {
		t.Errorf("level = %v after sub-threshold pressure, want flow", lad.Level())
	}
}
