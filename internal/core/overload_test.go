package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
)

func TestPoolByteBudgetRejectsStore(t *testing.T) {
	p := mustPool(t, 16, 0)
	if err := p.SetByteBudget(-1); err == nil {
		t.Error("accepted negative byte budget")
	}
	if err := p.SetByteBudget(2500); err != nil {
		t.Fatal(err)
	}
	u1, err := p.Store(0, 1, testData(0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if u1.Bytes != 1000 || p.BytesInUse() != 1000 {
		t.Fatalf("Bytes = %d, BytesInUse = %d, want 1000/1000", u1.Bytes, p.BytesInUse())
	}
	if _, err := p.Store(0, 1, testData(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Store(0, 1, testData(2, 1000)); !errors.Is(err, ErrByteBudgetExhausted) {
		t.Fatalf("third store err = %v, want ErrByteBudgetExhausted", err)
	}
	if p.RejectedBytes() != 1000 {
		t.Errorf("RejectedBytes = %d, want 1000", p.RejectedBytes())
	}
	if p.BytesHighWater() != 2000 {
		t.Errorf("BytesHighWater = %d, want 2000", p.BytesHighWater())
	}
	// Releasing frees the bytes immediately: the reclaim delay models the
	// slot, not the packet memory.
	if _, err := p.Release(time.Millisecond, u1.ID); err != nil {
		t.Fatal(err)
	}
	if p.BytesInUse() != 1000 {
		t.Errorf("BytesInUse after release = %d, want 1000", p.BytesInUse())
	}
	if _, err := p.Store(time.Millisecond, 1, testData(3, 1000)); err != nil {
		t.Errorf("store after release rejected: %v", err)
	}
}

func TestPoolAdmitFractionThrottlesElephant(t *testing.T) {
	p := mustPool(t, 16, 0)
	if err := p.SetAdmitFraction(1.5); err == nil {
		t.Error("accepted admit fraction above 1")
	}
	if err := p.SetByteBudget(4000); err != nil {
		t.Fatal(err)
	}
	if err := p.SetAdmitFraction(0.5); err != nil {
		t.Fatal(err)
	}
	u, err := p.Store(0, 1, testData(0, 600))
	if err != nil {
		t.Fatal(err)
	}
	// threshold = 0.5·(4000−600) = 1700; unit grows to 1200 ≤ 1700: admitted.
	if err := p.Append(0, u.ID, 1, testData(1, 600)); err != nil {
		t.Fatal(err)
	}
	// threshold = 0.5·(4000−1200) = 1400; unit would grow to 1800: rejected.
	if err := p.Append(0, u.ID, 1, testData(2, 600)); !errors.Is(err, ErrFlowOverThreshold) {
		t.Fatalf("append err = %v, want ErrFlowOverThreshold", err)
	}
	if p.ThresholdRejections() != 1 {
		t.Errorf("ThresholdRejections = %d, want 1", p.ThresholdRejections())
	}
	// A new flow's first packet is still admitted — the threshold throttles
	// elephants, not mice.
	if _, err := p.Store(0, 1, testData(3, 600)); err != nil {
		t.Errorf("mouse store rejected while elephant throttled: %v", err)
	}
}

// TestPoolByteAccountingProperty drives randomized Store/Append/Release/
// Expire interleavings and checks after every operation that the pool's
// byte counter equals the sum over live units, never exceeds the budget,
// and drains to exactly zero with the units.
func TestPoolByteAccountingProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := mustPool(t, 24, 50*time.Millisecond)
		if err := p.SetByteBudget(16000); err != nil {
			t.Fatal(err)
		}
		if err := p.SetAdmitFraction(0.5); err != nil {
			t.Fatal(err)
		}
		p.SetReclaimDelay(5 * time.Millisecond)

		liveIDs := func() []uint32 {
			ids := make([]uint32, 0, len(p.units))
			for id := range p.units {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			return ids
		}
		check := func(op string) {
			t.Helper()
			var sum int64
			for _, u := range p.units {
				sum += int64(u.Bytes)
			}
			if p.BytesInUse() != sum {
				t.Fatalf("seed %d after %s: BytesInUse = %d, live units sum %d", seed, op, p.BytesInUse(), sum)
			}
			if p.BytesInUse() > p.ByteBudget() {
				t.Fatalf("seed %d after %s: BytesInUse %d over budget %d", seed, op, p.BytesInUse(), p.ByteBudget())
			}
		}

		now := time.Duration(0)
		for i := 0; i < 2000; i++ {
			now += time.Duration(rng.Intn(2000)) * time.Microsecond
			switch rng.Intn(5) {
			case 0, 1:
				_, _ = p.Store(now, 1, testData(i, 200+rng.Intn(1200)))
				check("store")
			case 2:
				if ids := liveIDs(); len(ids) > 0 {
					_ = p.Append(now, ids[rng.Intn(len(ids))], 1, testData(i, 100+rng.Intn(500)))
					check("append")
				}
			case 3:
				if ids := liveIDs(); len(ids) > 0 {
					_, _ = p.Release(now, ids[rng.Intn(len(ids))])
					check("release")
				}
			case 4:
				p.Expire(now)
				check("expire")
			}
		}
		// Drain: everything left expires.
		now += time.Hour
		p.Expire(now)
		if p.Live() != 0 {
			t.Fatalf("seed %d: %d units leaked after drain", seed, p.Live())
		}
		if p.BytesInUse() != 0 {
			t.Fatalf("seed %d: %d bytes leaked after drain", seed, p.BytesInUse())
		}
	}
}

// TestFlowGiveUpInterleavingsLeakNothing drives the flow mechanism with a
// bounded retry policy through randomized miss/release/timer interleavings
// over a byte-budgeted pool: whatever order gives-ups, releases and expiry
// land in, the pool must drain to zero units AND zero bytes.
func TestFlowGiveUpInterleavingsLeakNothing(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewFlowGranularity(16, 128, 10*time.Millisecond, 4, 40*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.SetRetryPolicy(RetryPolicy{MaxRerequests: 2, BackoffPct: 100}); err != nil {
			t.Fatal(err)
		}
		if err := m.Pool().SetByteBudget(8000); err != nil {
			t.Fatal(err)
		}
		if err := m.Pool().SetAdmitFraction(0.5); err != nil {
			t.Fatal(err)
		}

		now := time.Duration(0)
		var buffered []uint32
		for i := 0; i < 600; i++ {
			now += time.Duration(rng.Intn(3000)) * time.Microsecond
			switch rng.Intn(4) {
			case 0, 1: // miss: reuse a few keys so flows grow multi-packet queues
				res := m.HandleMiss(now, 1, testData(i, 400+rng.Intn(800)), testKey(rng.Intn(20)))
				if res.Buffered && res.PacketIn != nil {
					buffered = append(buffered, res.PacketIn.BufferID)
				}
			case 2: // controller answers a random outstanding flow
				if len(buffered) > 0 {
					j := rng.Intn(len(buffered))
					_, _ = m.Release(now, buffered[j])
					buffered = append(buffered[:j], buffered[j+1:]...)
				}
			case 3: // timers: re-requests, give-ups, expiry
				if d, ok := m.NextDeadline(); ok && d <= now {
					m.Tick(now)
				}
			}
		}
		// Drain: run every remaining deadline (give-ups and expiry fire), then
		// one final far-future tick.
		for guard := 0; ; guard++ {
			if guard > 10000 {
				t.Fatalf("seed %d: deadlines never drained", seed)
			}
			d, ok := m.NextDeadline()
			if !ok {
				break
			}
			now = d
			m.Tick(now)
		}
		m.Tick(now + time.Hour)
		if live := m.Pool().Live(); live != 0 {
			t.Fatalf("seed %d: %d units leaked", seed, live)
		}
		if b := m.Pool().BytesInUse(); b != 0 {
			t.Fatalf("seed %d: %d bytes leaked", seed, b)
		}
		if m.FlowsBuffered() != 0 {
			t.Fatalf("seed %d: %d flow records leaked", seed, m.FlowsBuffered())
		}
	}
}

func ladderForTest(t *testing.T, budget int64) *Ladder {
	t.Helper()
	lad, err := NewLadder(openflow.FlowBufferConfig{
		Granularity:        openflow.GranularityFlow,
		RerequestTimeoutMs: 50,
	}, 64, 128, 0, OverloadConfig{
		ByteBudget:    budget,
		AdmitFraction: 1,
		Ladder: &LadderConfig{
			UpThreshold:   0.9,
			DownThreshold: 0.5,
			HoldUp:        time.Millisecond,
			HoldDown:      2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return lad
}

// TestLadderDegradesAndRecovers pins the ladder's rung sequence: a miss
// storm worth twice the byte budget climbs flow → packet → no-buffer, and
// once the controller answers everything the ladder walks back down to
// flow granularity with nothing left in the pool.
func TestLadderDegradesAndRecovers(t *testing.T) {
	lad := ladderForTest(t, 4000)
	now := time.Duration(0)
	var ids []uint32
	for i := 0; lad.Level() < LevelNoBuffer; i++ {
		if i > 1000 {
			t.Fatal("ladder never reached no-buffer")
		}
		res := lad.HandleMiss(now, 1, testData(i, 1000), testKey(i))
		if res.Buffered && res.PacketIn != nil {
			ids = append(ids, res.PacketIn.BufferID)
		}
		now += 200 * time.Microsecond
	}
	tr := lad.Transitions()
	if len(tr) != 2 ||
		tr[0].From != LevelFlow || tr[0].To != LevelPacket ||
		tr[1].From != LevelPacket || tr[1].To != LevelNoBuffer {
		t.Fatalf("transitions = %+v, want flow→packet→no-buffer", tr)
	}
	if lad.MaxLevel() != LevelNoBuffer {
		t.Errorf("MaxLevel = %v, want no-buffer", lad.MaxLevel())
	}

	// Pressure subsides: the controller releases every buffered unit.
	for _, id := range ids {
		if _, err := lad.Release(now, id); err != nil {
			t.Fatalf("release %d: %v", id, err)
		}
	}
	// The heartbeat deadline drives recovery with zero further traffic.
	for guard := 0; lad.Level() != LevelFlow; guard++ {
		if guard > 100 {
			t.Fatalf("ladder never recovered, stuck at %v", lad.Level())
		}
		d, ok := lad.NextDeadline()
		if !ok {
			t.Fatalf("degraded ladder at %v has no deadline", lad.Level())
		}
		now = d
		lad.Tick(now)
	}
	if got := len(lad.Transitions()); got != 4 {
		t.Errorf("transitions after recovery = %d, want 4 (two up, two down)", got)
	}
	if lad.Pool().Live() != 0 || lad.Pool().BytesInUse() != 0 {
		t.Errorf("pool leaked: %d units, %d bytes", lad.Pool().Live(), lad.Pool().BytesInUse())
	}
}

// TestLadderStandaloneRung pins the last rung: sustained pressure past
// no-buffer routes misses to the datapath's standalone path.
func TestLadderStandaloneRung(t *testing.T) {
	lad := ladderForTest(t, 4000)
	now := time.Duration(0)
	for i := 0; lad.Level() < LevelStandalone; i++ {
		if i > 1000 {
			t.Fatal("ladder never reached standalone")
		}
		lad.HandleMiss(now, 1, testData(i, 1000), testKey(i))
		now += 200 * time.Microsecond
	}
	res := lad.HandleMiss(now, 1, testData(0, 1000), testKey(0))
	if !res.Standalone || res.PacketIn != nil {
		t.Errorf("standalone rung returned %+v, want Standalone with no packet_in", res)
	}
	if lad.StandaloneMisses() == 0 {
		t.Error("StandaloneMisses not counted")
	}
}

// TestLadderBackpressurePinsPressure pins the controller admission signal:
// backpressure alone (an empty pool) escalates, and clearing it lets the
// ladder recover.
func TestLadderBackpressurePinsPressure(t *testing.T) {
	lad := ladderForTest(t, 4000)
	now := time.Duration(0)
	lad.SetBackpressure(true, now)
	for i := 0; lad.Level() == LevelFlow; i++ {
		if i > 100 {
			t.Fatal("backpressure never escalated the ladder")
		}
		d, ok := lad.NextDeadline()
		if !ok {
			// Nothing armed yet: the first evaluate arms the hold.
			now += time.Millisecond
			lad.Tick(now)
			continue
		}
		now = d
		lad.Tick(now)
	}
	if lad.Level() != LevelPacket {
		t.Fatalf("level = %v, want packet after one hold", lad.Level())
	}
	lad.SetBackpressure(false, now)
	for guard := 0; lad.Level() != LevelFlow; guard++ {
		if guard > 100 {
			t.Fatal("ladder never recovered after backpressure cleared")
		}
		d, ok := lad.NextDeadline()
		if !ok {
			t.Fatal("degraded ladder has no deadline")
		}
		now = d
		lad.Tick(now)
	}
}

func TestNewOverloadMechanismBridging(t *testing.T) {
	// Zero overload config on a pooled mechanism: plain NewMechanism.
	mech, err := NewOverloadMechanism(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityPacket,
	}, 16, 128, 0, OverloadConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mech.(*PacketGranularity); !ok {
		t.Errorf("mechanism = %T, want *PacketGranularity", mech)
	}
	// Budget on a pooled mechanism lands on its pool.
	mech, err = NewOverloadMechanism(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityPacket,
	}, 16, 128, 0, OverloadConfig{ByteBudget: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if got := mech.(*PacketGranularity).Pool().ByteBudget(); got != 1234 {
		t.Errorf("ByteBudget = %d, want 1234", got)
	}
	// Budget on a pool-less mechanism is a config error, not a silent no-op.
	if _, err := NewOverloadMechanism(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityNone,
	}, 16, 128, 0, OverloadConfig{ByteBudget: 1}); err == nil {
		t.Error("byte budget accepted on no-buffer mechanism")
	}
	// A ladder demands flow granularity.
	if _, err := NewOverloadMechanism(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityPacket,
	}, 16, 128, 0, OverloadConfig{Ladder: &LadderConfig{}}); err == nil {
		t.Error("ladder accepted on packet granularity")
	}
}

func TestLadderConfigValidate(t *testing.T) {
	cases := []LadderConfig{
		{UpThreshold: 1.2, DownThreshold: 0.5, HoldUp: 1, HoldDown: 1},
		{UpThreshold: 0.9, DownThreshold: 0.9, HoldUp: 1, HoldDown: 1},
		{UpThreshold: 0.9, DownThreshold: 0.5, HoldUp: -1, HoldDown: 1},
	}
	for i, c := range cases {
		if err := c.validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}
