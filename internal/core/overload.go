package core

import (
	"fmt"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/telemetry"
)

// OverloadConfig enables the overload-protection layer on a pool-backed
// mechanism. The zero value disables everything, which keeps legacy runs
// byte-identical: no byte budget, no per-flow admission threshold, no
// degradation ladder.
type OverloadConfig struct {
	// ByteBudget caps the bytes the buffer pool may hold across all units
	// (0 = unlimited, units-only accounting as before).
	ByteBudget int64
	// AdmitFraction is the BShare-style dynamic-threshold α: one flow's
	// queue may grow only to α·(budget − bytes in use). 0 disables.
	AdmitFraction float64
	// Ladder, when non-nil, wraps the flow-granularity mechanism in the
	// automatic degradation ladder. Requires GranularityFlow.
	Ladder *LadderConfig
}

// LadderConfig tunes the degradation ladder's hysteresis. Pressure is the
// worst of the pool's unit fraction, its byte fraction, and the controller
// backpressure signal (which pins pressure to 1 while asserted).
type LadderConfig struct {
	// UpThreshold: pressure at or above it, sustained for HoldUp, climbs
	// one rung. Default 0.9.
	UpThreshold float64
	// DownThreshold: pressure at or below it, sustained for HoldDown,
	// descends one rung. Default 0.5. Must stay below UpThreshold; the
	// dead band between them is what prevents level flapping.
	DownThreshold float64
	// HoldUp / HoldDown are the sustain times before a transition.
	// Defaults 5ms and 25ms (recovery deliberately slower than escalation).
	HoldUp   time.Duration
	HoldDown time.Duration
}

func (c *LadderConfig) withDefaults() LadderConfig {
	out := *c
	if out.UpThreshold == 0 {
		out.UpThreshold = 0.9
	}
	if out.DownThreshold == 0 {
		out.DownThreshold = 0.5
	}
	if out.HoldUp == 0 {
		out.HoldUp = 5 * time.Millisecond
	}
	if out.HoldDown == 0 {
		out.HoldDown = 25 * time.Millisecond
	}
	return out
}

func (c LadderConfig) validate() error {
	if c.UpThreshold <= 0 || c.UpThreshold > 1 {
		return fmt.Errorf("core: ladder up threshold %v outside (0,1]", c.UpThreshold)
	}
	if c.DownThreshold < 0 || c.DownThreshold >= c.UpThreshold {
		return fmt.Errorf("core: ladder down threshold %v not below up threshold %v", c.DownThreshold, c.UpThreshold)
	}
	if c.HoldUp < 0 || c.HoldDown < 0 {
		return fmt.Errorf("core: negative ladder hold time")
	}
	return nil
}

// DegradeLevel is a rung of the degradation ladder, ordered from full
// service to last-resort local forwarding.
type DegradeLevel uint8

const (
	// LevelFlow: normal operation, the paper's flow-granularity buffering.
	LevelFlow DegradeLevel = iota
	// LevelPacket: per-packet buffering — no per-flow queues to grow, each
	// unit is bounded by one MTU.
	LevelPacket
	// LevelNoBuffer: buffering off; misses travel in full inside packet_in
	// and the pool gets to drain.
	LevelNoBuffer
	// LevelStandalone: the switch stops consulting the controller for new
	// misses and falls back to fail-standalone L2 learning.
	LevelStandalone
)

// String names the rung for tables and logs.
func (l DegradeLevel) String() string {
	switch l {
	case LevelFlow:
		return "flow"
	case LevelPacket:
		return "packet"
	case LevelNoBuffer:
		return "no-buffer"
	case LevelStandalone:
		return "standalone"
	default:
		return fmt.Sprintf("level-%d", uint8(l))
	}
}

// LadderTransition records one rung change.
type LadderTransition struct {
	At       time.Duration
	From, To DegradeLevel
}

// Ladder is the automatic degradation ladder: a Mechanism that dispatches
// each miss to flow-granularity, packet-granularity, no-buffer, or the
// datapath's standalone path depending on sustained pool/queue pressure.
// All buffering rungs share ONE pool, so buffered state survives rung
// changes and drains through its original path (a flow buffered at
// LevelFlow still re-requests and releases while the ladder sits at
// LevelNoBuffer).
type Ladder struct {
	cfg  LadderConfig
	pool *Pool
	flow *FlowGranularity
	pkt  *PacketGranularity
	none *NoBuffer

	level    DegradeLevel
	maxLevel DegradeLevel

	backpressure bool // controller admission signal; pins pressure to 1

	// tablePressure is the flow table's occupancy fraction, fed by the
	// switch when table→ladder coupling is enabled: a saturated table
	// causes misses the buffer then absorbs, so the ladder treats table
	// saturation like buffer saturation (DESIGN.md §17).
	tablePressure float64

	// Hysteresis state: a threshold crossing arms a hold timer; the
	// transition happens only if the condition survives the hold.
	hiArmed, loArmed bool
	hiSince, loSince time.Duration
	lastEval         time.Duration

	transitions      []LadderTransition
	standaloneMisses uint64

	tel *telemetry.Recorder
}

var _ Mechanism = (*Ladder)(nil)

// NewLadder builds the ladder from the wire-level flow-buffer config plus
// the overload config. cfg.Granularity must be GranularityFlow: the ladder
// is a protection wrapper for the paper's mechanism, not a mode of its own.
func NewLadder(cfg openflow.FlowBufferConfig, capacity, missSendLen int, expiry time.Duration, ov OverloadConfig) (*Ladder, error) {
	if cfg.Granularity != openflow.GranularityFlow {
		return nil, fmt.Errorf("core: degradation ladder requires flow granularity, got %d", uint8(cfg.Granularity))
	}
	if ov.Ladder == nil {
		return nil, fmt.Errorf("core: nil ladder config")
	}
	lcfg := ov.Ladder.withDefaults()
	if err := lcfg.validate(); err != nil {
		return nil, err
	}
	pool, err := NewPool(capacity, expiry)
	if err != nil {
		return nil, err
	}
	if err := pool.SetByteBudget(ov.ByteBudget); err != nil {
		return nil, err
	}
	if err := pool.SetAdmitFraction(ov.AdmitFraction); err != nil {
		return nil, err
	}
	timeout := time.Duration(cfg.RerequestTimeoutMs) * time.Millisecond
	flow, err := newFlowGranularityOn(pool, missSendLen, timeout, int(cfg.MaxPacketsPerFlow))
	if err != nil {
		return nil, err
	}
	if err := flow.SetRetryPolicy(RetryPolicy{
		MaxRerequests: int(cfg.MaxRerequests),
		BackoffPct:    int(cfg.RerequestBackoffPct),
	}); err != nil {
		return nil, err
	}
	pkt, err := newPacketGranularityOn(pool, missSendLen)
	if err != nil {
		return nil, err
	}
	return &Ladder{
		cfg:  lcfg,
		pool: pool,
		flow: flow,
		pkt:  pkt,
		none: NewNoBuffer(),
	}, nil
}

// SetTelemetry wires the recorder into the ladder and its inner mechanisms.
func (l *Ladder) SetTelemetry(rec *telemetry.Recorder) {
	l.tel = rec
	l.flow.SetTelemetry(rec)
	l.pkt.SetTelemetry(rec)
}

// Granularity implements Mechanism: the configured (top-rung) mode.
func (*Ladder) Granularity() openflow.BufferGranularity { return openflow.GranularityFlow }

// Level reports the current rung; MaxLevel the worst rung ever reached.
func (l *Ladder) Level() DegradeLevel    { return l.level }
func (l *Ladder) MaxLevel() DegradeLevel { return l.maxLevel }

// Transitions returns a copy of every rung change in order.
func (l *Ladder) Transitions() []LadderTransition {
	out := make([]LadderTransition, len(l.transitions))
	copy(out, l.transitions)
	return out
}

// StandaloneMisses reports misses routed to the datapath's standalone path.
func (l *Ladder) StandaloneMisses() uint64 { return l.standaloneMisses }

// Backpressure reports whether the controller signal is asserted.
func (l *Ladder) Backpressure() bool { return l.backpressure }

// SetBackpressure records the controller's admission signal. While on, the
// ladder sees pressure 1 regardless of pool state.
func (l *Ladder) SetBackpressure(on bool, now time.Duration) {
	if l.backpressure == on {
		return
	}
	l.backpressure = on
	l.evaluate(now)
}

// SetTablePressure records the flow table's occupancy fraction. The ladder
// folds it into its pressure as another saturation source, so a full table
// degrades the buffer mechanism just like a full pool.
func (l *Ladder) SetTablePressure(frac float64, now time.Duration) {
	if l.tablePressure == frac {
		return
	}
	l.tablePressure = frac
	l.evaluate(now)
}

// TablePressure reports the last table occupancy fraction fed in.
func (l *Ladder) TablePressure() float64 { return l.tablePressure }

// pressure is the worst of the unit fraction, the byte fraction, the table
// occupancy fraction, and the backpressure signal.
func (l *Ladder) pressure(now time.Duration) float64 {
	l.pool.sweep(now)
	p := float64(l.pool.occupied()) / float64(l.pool.capacity)
	if l.pool.byteBudget > 0 {
		if bf := float64(l.pool.bytesLive) / float64(l.pool.byteBudget); bf > p {
			p = bf
		}
	}
	if l.tablePressure > p {
		p = l.tablePressure
	}
	if l.backpressure && p < 1 {
		p = 1
	}
	return p
}

// evaluate runs the hysteresis state machine at now. Crossing a threshold
// arms a hold timer; the rung changes only once the condition has been
// sustained for the hold, and each further rung requires a fresh hold.
func (l *Ladder) evaluate(now time.Duration) {
	l.lastEval = now
	p := l.pressure(now)
	switch {
	case p >= l.cfg.UpThreshold && l.level < LevelStandalone:
		l.loArmed = false
		if !l.hiArmed {
			l.hiArmed, l.hiSince = true, now
		}
		if now-l.hiSince >= l.cfg.HoldUp {
			l.shift(now, l.level+1)
			l.hiSince = now
		}
	case p <= l.cfg.DownThreshold && l.level > LevelFlow:
		l.hiArmed = false
		if !l.loArmed {
			l.loArmed, l.loSince = true, now
		}
		if now-l.loSince >= l.cfg.HoldDown {
			l.shift(now, l.level-1)
			l.loSince = now
		}
	default:
		l.hiArmed, l.loArmed = false, false
	}
}

func (l *Ladder) shift(now time.Duration, to DegradeLevel) {
	from := l.level
	l.level = to
	if to > l.maxLevel {
		l.maxLevel = to
	}
	l.transitions = append(l.transitions, LadderTransition{At: now, From: from, To: to})
	if l.tel != nil {
		l.tel.Instant(telemetry.KindDegrade, now, 0, uint32(from)<<8|uint32(to), 0)
	}
}

// HandleMiss implements Mechanism: dispatch by rung, then feed the
// resulting pool state back into the hysteresis.
func (l *Ladder) HandleMiss(now time.Duration, inPort uint16, data []byte, key packet.FlowKey) MissResult {
	var res MissResult
	switch l.level {
	case LevelFlow:
		res = l.flow.HandleMiss(now, inPort, data, key)
	case LevelPacket:
		res = l.pkt.HandleMiss(now, inPort, data, key)
	case LevelNoBuffer:
		res = l.none.HandleMiss(now, inPort, data, key)
	default: // LevelStandalone
		l.standaloneMisses++
		res = MissResult{Standalone: true}
	}
	l.evaluate(now)
	return res
}

// Release implements Mechanism, routing by which inner path owns the id.
// Flow and packet units share one pool with disjoint ids, so membership in
// the flow mechanism's id map decides.
func (l *Ladder) Release(now time.Duration, bufferID uint32) ([]Released, error) {
	var out []Released
	var err error
	if _, isFlow := l.flow.byID[bufferID]; isFlow {
		out, err = l.flow.Release(now, bufferID)
	} else {
		out, err = l.pkt.Release(now, bufferID)
	}
	l.evaluate(now)
	return out, err
}

// Drop implements Mechanism.
func (l *Ladder) Drop(now time.Duration, bufferID uint32) error {
	var err error
	if _, isFlow := l.flow.byID[bufferID]; isFlow {
		err = l.flow.Drop(now, bufferID)
	} else {
		err = l.pkt.Drop(now, bufferID)
	}
	l.evaluate(now)
	return err
}

// NextDeadline implements Mechanism: the earliest of the inner mechanisms'
// deadlines, any armed hysteresis hold, and — while degraded with no hold
// armed — a re-evaluation heartbeat. The heartbeat is what guarantees
// recovery: pool pressure can decay purely by time (slot reclamation,
// expiry) with no traffic to trigger an evaluate, so a degraded ladder
// keeps a Tick scheduled until it is back at LevelFlow.
func (l *Ladder) NextDeadline() (time.Duration, bool) {
	next := time.Duration(0)
	found := false
	consider := func(d time.Duration) {
		if !found || d < next {
			next, found = d, true
		}
	}
	if d, ok := l.flow.NextDeadline(); ok {
		consider(d)
	}
	if d, ok := l.pkt.NextDeadline(); ok {
		consider(d)
	}
	if l.hiArmed {
		consider(l.hiSince + l.cfg.HoldUp)
	}
	if l.level > LevelFlow {
		if l.loArmed {
			consider(l.loSince + l.cfg.HoldDown)
		} else {
			consider(l.lastEval + l.cfg.HoldDown)
		}
	}
	return next, found
}

// Tick implements Mechanism: run both buffering rungs' timer work (flows
// keep re-requesting and expiring whatever the current rung), then
// re-evaluate the hysteresis.
func (l *Ladder) Tick(now time.Duration) []*openflow.PacketIn {
	out := l.flow.Tick(now)
	l.pkt.Tick(now)
	l.evaluate(now)
	return out
}

// Stats implements Mechanism, merging the inner mechanisms' counters over
// the shared pool.
func (l *Ladder) Stats(now time.Duration) openflow.FlowBufferStats {
	return openflow.FlowBufferStats{
		UnitsInUse:      uint32(l.pool.InUse(now)),
		UnitsCapacity:   uint32(l.pool.Capacity()),
		FlowsBuffered:   uint32(len(l.flow.flows)),
		PacketIns:       l.flow.packetIns + l.pkt.packetIns + l.none.packetIns,
		Rerequests:      l.flow.rerequests,
		DroppedNoBuffer: l.flow.fallbacks + l.pkt.fallbacks,
		Giveups:         l.flow.giveups,
		BytesInUse:      uint64(l.pool.BytesInUse()),
		BytesHighWater:  uint64(l.pool.BytesHighWater()),
		RejectedBytes:   l.pool.RejectedBytes(),
	}
}

// OccupancyMean implements Mechanism.
func (l *Ladder) OccupancyMean(now time.Duration) float64 { return l.pool.OccupancyMean(now) }

// OccupancyMax implements Mechanism.
func (l *Ladder) OccupancyMax() float64 { return l.pool.OccupancyMax() }

// Pool exposes the shared pool for stats collection and tests.
func (l *Ladder) Pool() *Pool { return l.pool }

// NewOverloadMechanism builds a mechanism from the wire config plus an
// overload config: the full ladder when one is requested, otherwise the
// plain mechanism with the byte budget and admission threshold applied to
// its pool. With a zero OverloadConfig it is NewMechanism exactly.
func NewOverloadMechanism(cfg openflow.FlowBufferConfig, capacity, missSendLen int, expiry time.Duration, ov OverloadConfig) (Mechanism, error) {
	if ov.Ladder != nil {
		return NewLadder(cfg, capacity, missSendLen, expiry, ov)
	}
	mech, err := NewMechanism(cfg, capacity, missSendLen, expiry)
	if err != nil {
		return nil, err
	}
	if pm, ok := mech.(interface{ Pool() *Pool }); ok {
		if err := pm.Pool().SetByteBudget(ov.ByteBudget); err != nil {
			return nil, err
		}
		if err := pm.Pool().SetAdmitFraction(ov.AdmitFraction); err != nil {
			return nil, err
		}
	} else if ov.ByteBudget > 0 || ov.AdmitFraction > 0 {
		return nil, fmt.Errorf("core: byte budget requires a pool-backed mechanism, got granularity %d", uint8(cfg.Granularity))
	}
	return mech, nil
}
