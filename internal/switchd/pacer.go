package switchd

import "time"

// PacerConfig bounds the switch's packet_in rate toward the controller
// with a token bucket. The zero value disables pacing entirely (no state,
// no extra events — legacy runs are untouched).
type PacerConfig struct {
	// RatePerSec is the sustained packet_in rate; 0 disables the pacer.
	RatePerSec float64
	// Burst is the bucket depth (messages that may go back-to-back).
	// Defaults to 8 when pacing is enabled.
	Burst int
}

// packetInPacer is a deterministic token bucket over virtual time: tokens
// refill continuously from the kernel clock, so equal schedules produce
// equal admit/drop decisions — no RNG, no timers.
type packetInPacer struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration

	drops     uint64
	dropBytes uint64
}

func newPacketInPacer(cfg PacerConfig) *packetInPacer {
	burst := cfg.Burst
	if burst <= 0 {
		burst = 8
	}
	return &packetInPacer{
		rate:   cfg.RatePerSec,
		burst:  float64(burst),
		tokens: float64(burst), // start full: the first burst is free
	}
}

// allow consumes one token if available, refilling from the elapsed
// virtual time first. A refused packet_in is counted against the pacer.
func (p *packetInPacer) allow(now time.Duration, bytes int) bool {
	if now > p.last {
		p.tokens += p.rate * (now - p.last).Seconds()
		if p.tokens > p.burst {
			p.tokens = p.burst
		}
		p.last = now
	}
	if p.tokens >= 1 {
		p.tokens--
		return true
	}
	p.drops++
	p.dropBytes += uint64(bytes)
	return false
}
