package switchd

import (
	"fmt"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

// This file is the datapath's data-plane failure surface (DESIGN.md §16):
// per-port link state with rule eviction, whole-switch crash/restart with
// flow-table and buffer loss, and the accounting that lets the fabric close
// its drop ledger. Detection and notification (port_status emission,
// ingestion gating) live one layer up in SimSwitch/Agent; the datapath only
// owns the protocol consequences.

// SetPortDown flips one port's link state. Taking a port down evicts every
// rule that outputs to it (returned so the owner can emit flow_removed) —
// subsequent traffic for those destinations misses the table and re-enters
// the buffer mechanism instead of draining into a dead wire. Bringing a
// port back up is state-only: rules reappear via the normal controller
// path. Idempotent; repeated transitions to the same state return nothing.
func (d *Datapath) SetPortDown(now time.Duration, port uint16, down bool) ([]flowtable.Removed, error) {
	if port < 1 || int(port) > d.cfg.NumPorts {
		return nil, fmt.Errorf("%w: port %d of %d", ErrBadPort, port, d.cfg.NumPorts)
	}
	if d.portDown[port] == down {
		return nil, nil
	}
	d.portDown[port] = down
	if !down {
		return nil, nil
	}
	removed := d.table.DeleteByOutPort(now, port, openflow.RemovedDelete)
	d.countRemoved(removed...)
	return removed, nil
}

// PortDown reports one port's link state (false for out-of-range ports).
func (d *Datapath) PortDown(port uint16) bool {
	return int(port) < len(d.portDown) && d.portDown[port]
}

// PhyPortDesc builds the ofp_phy_port description of one port, reflecting
// its current link state — shared by FEATURES_REPLY and port_status.
func (d *Datapath) PhyPortDesc(port uint16) openflow.PhyPort {
	p := openflow.PhyPort{
		PortNo: port,
		HWAddr: packet.MAC{0x02, 0, 0, 0, 0, byte(port)},
		Name:   fmt.Sprintf("eth%d", port),
	}
	if d.PortDown(port) {
		p.State = openflow.PortStateLinkDown
	}
	return p
}

// Crash wipes the switch as a power loss would: the flow table empties with
// no flow_removed notifications, every buffered packet is destroyed, and
// any outage-learned MAC state is gone. The loss is returned and folded
// into the crash ledger. Port link state deliberately survives — the wire
// is a property of the cable, not the chassis.
func (d *Datapath) Crash(now time.Duration) core.BufferLoss {
	d.crashed = true
	d.rulesCleared += uint64(d.table.Clear())
	d.macTable = nil
	var loss core.BufferLoss
	if ad, ok := d.mech.(core.AllDropper); ok {
		loss = ad.DropAll(now)
	}
	d.crashBufferLoss.Add(loss)
	return loss
}

// Restart brings a crashed datapath back with its post-crash (empty) state.
func (d *Datapath) Restart() { d.crashed = false }

// Crashed reports whether the datapath is between Crash and Restart. The
// owner gates ingress and control delivery on it; the datapath itself only
// records the state.
func (d *Datapath) Crashed() bool { return d.crashed }

// FailureStats reports the data-plane failure counters: installs or
// releases refused because they egress a down port, buffered packets
// destroyed by such refusals, transmissions suppressed toward down ports,
// and the cumulative crash buffer loss.
func (d *Datapath) FailureStats() (deadPortRefusals, bufDropsDeadPort, txDownDrops uint64, crashLoss core.BufferLoss) {
	return d.deadPortRefusals, d.bufDropsDeadPort, d.txDownDrops, d.crashBufferLoss
}

// deadOutput reports whether any action outputs to a concretely-numbered
// down port. Flood/all actions are not refused — emitAction simply skips
// the dead ports — and out-of-range ports are left for applyActions to
// reject with its usual error.
func (d *Datapath) deadOutput(actions []openflow.Action) bool {
	for _, a := range actions {
		var port uint16
		switch act := a.(type) {
		case *openflow.ActionOutput:
			port = act.Port
		case *openflow.ActionEnqueue:
			port = act.Port
		default:
			continue
		}
		if port >= 1 && int(port) <= d.cfg.NumPorts && d.portDown[port] {
			return true
		}
	}
	return false
}

// refuseBuffered settles a buffered packet whose install or release was
// refused for a dead egress port, and counts the refusal. The outcome is
// mechanism-aware: a unit the mechanism will re-offer (flow granularity)
// stays parked — the re-request timer raises the miss again after the
// controller has rerouted, and the packets survive the failure. A unit
// with no timer (packet granularity) is destroyed now, to a named count,
// rather than leaking until expiry.
func (d *Datapath) refuseBuffered(now time.Duration, bufferID uint32) {
	d.deadPortRefusals++
	if bufferID == openflow.NoBuffer {
		return
	}
	if rr, ok := d.mech.(core.Rerequester); ok && rr.WillRerequest(bufferID) {
		return
	}
	if pm, ok := d.mech.(interface{ Pool() *core.Pool }); ok {
		if u, live := pm.Pool().Peek(bufferID); live {
			d.bufDropsDeadPort += uint64(len(u.Packets))
		}
	}
	_ = d.mech.Drop(now, bufferID)
}

func badOutPortError() openflow.Message {
	return &openflow.ErrorMsg{
		ErrType: openflow.ErrTypeBadAction,
		Code:    openflow.ErrCodeBadOutPort,
	}
}
