package switchd

import (
	"fmt"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/sim"
	"sdnbuffer/internal/telemetry"
)

// SimConfig is the resource model of the simulated switch. The defaults are
// calibrated so the emulated testbed reproduces the shapes of the paper's
// figures (see DESIGN.md §4); every knob is a real, physically meaningful
// quantity.
type SimConfig struct {
	Datapath Config

	// CPUCores is the switch host's core count (paper Table I: quad-core).
	CPUCores int
	// PerPacketCost is the CPU demand to receive, look up and forward one
	// frame through the software datapath.
	PerPacketCost time.Duration
	// WakeupCost is the fixed cost of waking the datapath thread for a
	// batch of packets; BatchWindow is how long one wakeup's batch lasts.
	// Together they make per-packet cost amortize at high rates — the
	// concave switch-usage curve of the paper's Fig. 4.
	WakeupCost  time.Duration
	BatchWindow time.Duration
	// MissCost is the extra CPU demand to build a packet_in.
	MissCost time.Duration
	// ControlOpCost is the CPU demand to execute one flow_mod or packet_out.
	ControlOpCost time.Duration
	// PerControlByte is CPU demand per byte of control message handled —
	// what makes full-packet messages expensive.
	PerControlByte time.Duration
	// BufferOpCost is the CPU demand per buffer store or release operation.
	BufferOpCost time.Duration
	// BusMbps is the bandwidth of the channel between the forwarding plane
	// and the switch CPU (the ASIC-CPU bus of a hardware switch, the
	// kernel-userspace upcall channel of OVS). It is a single shared
	// resource: packet_in traffic going up competes with flow_mod and
	// packet_out traffic coming down, and with no-buffer operation its
	// saturation is what blows up the paper's delay curves past ~75 Mbps.
	BusMbps float64
	// BusPropagation is the fixed latency of that channel.
	BusPropagation time.Duration
	// ReclaimDelay is the lazy buffer-slot reclamation delay: how long a
	// released unit's slot stays occupied before the switch's deferred
	// cleanup frees it. This models the batched buffer expiry of a real
	// software switch and produces the occupancy levels of Figs. 8/13.
	ReclaimDelay time.Duration
	// PacketInPacer bounds the packet_in rate toward the controller
	// (overload protection). Zero value = no pacing.
	PacketInPacer PacerConfig
}

// DefaultSimConfig returns the calibrated resource model.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		CPUCores:       4,
		PerPacketCost:  20 * time.Microsecond,
		WakeupCost:     150 * time.Microsecond,
		BatchWindow:    time.Millisecond,
		MissCost:       30 * time.Microsecond,
		ControlOpCost:  40 * time.Microsecond,
		PerControlByte: 10 * time.Nanosecond,
		BufferOpCost:   25 * time.Microsecond,
		BusMbps:        165,
		BusPropagation: 50 * time.Microsecond,
		ReclaimDelay:   3500 * time.Microsecond,
	}
}

func (c *SimConfig) validate() error {
	if c.CPUCores <= 0 {
		return fmt.Errorf("switchd: CPU cores must be positive, got %d", c.CPUCores)
	}
	if c.BusMbps <= 0 {
		return fmt.Errorf("switchd: bus bandwidth must be positive, got %g", c.BusMbps)
	}
	for _, d := range []time.Duration{
		c.PerPacketCost, c.WakeupCost, c.BatchWindow, c.MissCost,
		c.ControlOpCost, c.PerControlByte, c.BufferOpCost, c.BusPropagation, c.ReclaimDelay,
	} {
		if d < 0 {
			return fmt.Errorf("switchd: negative cost in sim config")
		}
	}
	if c.PacketInPacer.RatePerSec < 0 {
		return fmt.Errorf("switchd: negative packet_in pacer rate %g", c.PacketInPacer.RatePerSec)
	}
	if c.PacketInPacer.Burst < 0 {
		return fmt.Errorf("switchd: negative packet_in pacer burst %d", c.PacketInPacer.Burst)
	}
	return nil
}

// SimSwitch drives a Datapath on the discrete-event kernel with the
// SimConfig resource model: a multi-core CPU, a bandwidth-limited
// plane-to-CPU bus, batched wakeups and buffer-operation costs.
type SimSwitch struct {
	kernel *sim.Kernel
	cfg    SimConfig
	dp     *Datapath

	cpu *sim.Resource
	bus *netem.Link // shared forwarding-plane <-> CPU channel

	sendCtrl   func(msg []byte)
	transmit   func(port uint16, frame []byte)
	transmitEx func(out Output)

	pacer *packetInPacer // nil unless PacketInPacer is configured

	nextXid     uint32
	sentAt      map[uint32]time.Duration
	ctrlDelay   metrics.Summary
	nextWakeup  time.Duration
	mechTimer   *sim.Event
	expiryTimer *sim.Event

	portSeq  map[uint16]uint64 // per-port arrival sequence assigned at ingest
	portNext map[uint16]uint64 // next per-port sequence the datapath may pick up
	portHeld map[uint16]map[uint64]func()

	parseErrors uint64
	ctrlErrors  uint64

	// Crash epoch: bumped by Crash so that CPU/bus work submitted before the
	// power loss is discarded when it completes — the chassis that was doing
	// it no longer exists. Ingress and control delivery while crashed are
	// dropped at the boundary and counted.
	epoch         uint64
	crashRxDrops  uint64
	crashCtlDrops uint64

	// tel is nil unless telemetry is wired (SetTelemetry). Every hook is
	// guarded on the nil check; recording never schedules kernel events, so
	// event order is identical with telemetry on or off (DESIGN.md §12).
	tel *telemetry.Recorder
}

// NewSimSwitch builds the simulated switch on the kernel.
func NewSimSwitch(k *sim.Kernel, cfg SimConfig) (*SimSwitch, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	dp, err := NewDatapath(cfg.Datapath)
	if err != nil {
		return nil, err
	}
	bus, err := netem.NewLink(k, "bus", cfg.BusMbps, cfg.BusPropagation)
	if err != nil {
		return nil, err
	}
	s := &SimSwitch{
		kernel:   k,
		cfg:      cfg,
		dp:       dp,
		cpu:      sim.NewResource(k, "switch-cpu", cfg.CPUCores),
		bus:      bus,
		sentAt:   make(map[uint32]time.Duration),
		portSeq:  make(map[uint16]uint64),
		portNext: make(map[uint16]uint64),
		portHeld: make(map[uint16]map[uint64]func()),
	}
	if cfg.ReclaimDelay > 0 {
		if m, ok := dp.Mechanism().(interface{ Pool() *core.Pool }); ok {
			m.Pool().SetReclaimDelay(cfg.ReclaimDelay)
		}
	}
	if cfg.PacketInPacer.RatePerSec > 0 {
		s.pacer = newPacketInPacer(cfg.PacketInPacer)
	}
	return s, nil
}

// Datapath exposes the protocol core (flow table, mechanism, counters).
func (s *SimSwitch) Datapath() *Datapath { return s.dp }

// SetTelemetry wires the packet-lifecycle recorder through the switch: the
// sim driver emits ingress/packet_in/controller-RTT/control-op/egress
// spans, the datapath and mechanism emit lookup and buffer spans, and the
// switch CPU reports each job's service interval via the sim resource trace
// hook. nil disables (the default).
func (s *SimSwitch) SetTelemetry(rec *telemetry.Recorder) {
	s.tel = rec
	s.dp.SetTelemetry(rec)
	if rec == nil {
		s.cpu.SetTraceFunc(nil)
		return
	}
	s.cpu.SetTraceFunc(func(_, started, finished time.Duration) {
		s.tel.Span(telemetry.KindSwitchCPU, started, finished, 0, 0, 0)
	})
}

// SetControlSender wires the switch's uplink: fn is called with each
// encoded control message to put on the control link.
func (s *SimSwitch) SetControlSender(fn func(msg []byte)) { s.sendCtrl = fn }

// SetControlDown flips the switch's datapath in or out of its configured
// fail mode; the testbed calls this at outage-window boundaries.
func (s *SimSwitch) SetControlDown(down bool) { s.dp.SetControlDown(down) }

// SetTransmit wires the data plane egress: fn is called for every frame the
// switch puts on a port.
func (s *SimSwitch) SetTransmit(fn func(port uint16, frame []byte)) { s.transmit = fn }

// SetTransmitEx wires a queue-aware egress callback (for QoS testbeds that
// feed an EgressScheduler). When set, it takes precedence over SetTransmit.
func (s *SimSwitch) SetTransmitEx(fn func(out Output)) { s.transmitEx = fn }

// Ingest is called when a frame arrives on a data port (the ingress link's
// delivery callback).
func (s *SimSwitch) Ingest(inPort uint16, frame []byte) {
	if s.dp.crashed {
		s.crashRxDrops++
		return
	}
	now := s.kernel.Now()
	cost := s.cfg.PerPacketCost
	if now >= s.nextWakeup {
		cost += s.cfg.WakeupCost
		s.nextWakeup = now + s.cfg.BatchWindow
	}
	seq := s.portSeq[inPort]
	s.portSeq[inPort] = seq + 1
	epoch := s.epoch
	s.cpu.Submit(cost, func() {
		if s.epoch != epoch {
			// The frame was in the chassis pipeline when the power died: as
			// gone as one dropped at the boundary, and named the same way so
			// the fabric's ledger closes.
			s.crashRxDrops++
			return
		}
		s.admitInOrder(inPort, seq, func() { s.processFrame(now, inPort, frame) })
	})
}

// admitInOrder hands frame-processing completions to the datapath in per-port
// arrival order. The CPU model runs jobs on parallel cores with unequal
// demands — a batch's first packet also pays the wakeup cost — so a later
// packet's job can finish first. A real datapath drains one port's RX queue
// in order: the wakeup latency delays the whole poll batch, not only the
// packet that triggered it. An out-of-order completion is therefore held (at
// no extra CPU cost) until every earlier packet on the same port has been
// processed; when completions are already in order this is a straight
// pass-through with identical timing.
func (s *SimSwitch) admitInOrder(inPort uint16, seq uint64, fn func()) {
	if seq != s.portNext[inPort] {
		held := s.portHeld[inPort]
		if held == nil {
			held = make(map[uint64]func())
			s.portHeld[inPort] = held
		}
		held[seq] = fn
		return
	}
	fn()
	s.portNext[inPort] = seq + 1
	held := s.portHeld[inPort]
	for {
		next, ok := held[s.portNext[inPort]]
		if !ok {
			return
		}
		delete(held, s.portNext[inPort])
		next()
		s.portNext[inPort]++
	}
}

func (s *SimSwitch) processFrame(arrived time.Duration, inPort uint16, frame []byte) {
	now := s.kernel.Now()
	if s.tel != nil {
		// Ingress span: port arrival to datapath pickup — switch CPU queueing
		// plus the per-packet (and any wakeup) service demand.
		s.tel.Span(telemetry.KindIngress, arrived, now, 0, uint32(inPort), uint32(len(frame)))
	}
	res, err := s.dp.HandleFrame(now, inPort, frame)
	if err != nil {
		s.parseErrors++
		return
	}
	for _, o := range res.Outputs {
		s.emit(o)
	}
	if res.Miss == nil {
		s.armMechTimer()
		return
	}
	miss := res.Miss
	extra := time.Duration(0)
	if miss.Buffered {
		extra += s.cfg.BufferOpCost
	}
	if miss.PacketIn != nil && s.pacer != nil && !s.pacer.allow(now, len(miss.PacketIn.Data)) {
		// Pacer refused the packet_in. A buffered packet stays buffered and
		// recovers through the re-request timer; an unbuffered one is shed
		// load — the cost of protecting the controller.
		if s.tel != nil {
			s.tel.Instant(telemetry.KindPacerDrop, now, 0, 0, uint32(len(miss.PacketIn.Data)))
		}
		if extra > 0 {
			s.cpu.Submit(extra, nil)
		}
		s.armMechTimer()
		return
	}
	if miss.PacketIn != nil {
		s.nextXid++
		xid := s.nextXid
		msg, err := openflow.Encode(miss.PacketIn, xid)
		if err != nil {
			s.ctrlErrors++
			return
		}
		cost := s.cfg.MissCost + extra + time.Duration(len(msg))*s.cfg.PerControlByte
		epoch := s.epoch
		s.cpu.Submit(cost, func() {
			if s.epoch != epoch {
				return
			}
			s.shipControl(xid, msg)
		})
	} else if extra > 0 {
		s.cpu.Submit(extra, nil)
	}
	s.armMechTimer()
}

// shipControl moves a control message over the bus and onto the control
// link, timestamping its departure for controller-delay measurement.
func (s *SimSwitch) shipControl(xid uint32, msg []byte) {
	shipped := s.kernel.Now()
	epoch := s.epoch
	s.bus.Send(msg, func() {
		if s.epoch != epoch {
			return
		}
		now := s.kernel.Now()
		if xid != 0 {
			s.sentAt[xid] = now
			if s.tel != nil {
				// packet_in span: CPU handoff to control-link departure — the
				// plane-to-CPU bus transfer the no-buffer mechanism saturates.
				s.tel.Span(telemetry.KindPacketIn, shipped, now, 0, xid, uint32(len(msg)))
			}
		}
		if s.sendCtrl != nil {
			s.sendCtrl(msg)
		}
	})
}

// DeliverControl is called when a control message arrives from the
// controller (the control link's delivery callback).
func (s *SimSwitch) DeliverControl(msg []byte) {
	if s.dp.crashed {
		s.crashCtlDrops++
		return
	}
	now := s.kernel.Now()
	// Controller delay: packet_in departure to first response arrival,
	// measured at the switch, exactly as the paper does (§III.B).
	if len(msg) >= openflow.HeaderLen {
		t := openflow.MsgType(msg[1])
		if t == openflow.TypeFlowMod || t == openflow.TypePacketOut {
			xid := uint32(msg[4])<<24 | uint32(msg[5])<<16 | uint32(msg[6])<<8 | uint32(msg[7])
			if sent, ok := s.sentAt[xid]; ok {
				s.ctrlDelay.Observe((now - sent).Seconds())
				if s.tel != nil {
					s.tel.Span(telemetry.KindControllerRTT, sent, now, 0, xid, uint32(len(msg)))
				}
				delete(s.sentAt, xid)
			}
		}
	}
	epoch := s.epoch
	s.bus.Send(msg, func() {
		if s.epoch != epoch {
			s.crashCtlDrops++
			return
		}
		cost := s.cfg.ControlOpCost + time.Duration(len(msg))*s.cfg.PerControlByte
		s.cpu.Submit(cost, func() {
			if s.epoch != epoch {
				s.crashCtlDrops++
				return
			}
			s.processControl(msg)
		})
	})
}

func (s *SimSwitch) processControl(msg []byte) {
	now := s.kernel.Now()
	m, xid, err := openflow.Decode(msg)
	if err != nil {
		s.ctrlErrors++
		return
	}
	var res *ControlResult
	switch t := m.(type) {
	case *openflow.FlowMod:
		if s.tel != nil {
			s.tel.Instant(telemetry.KindFlowMod, now, 0, xid, uint32(len(msg)))
		}
		res, err = s.dp.HandleFlowMod(now, t)
	case *openflow.PacketOut:
		if s.tel != nil {
			s.tel.Instant(telemetry.KindPacketOut, now, 0, xid, uint32(len(msg)))
		}
		res, err = s.dp.HandlePacketOut(now, t)
	case *openflow.FeaturesRequest:
		s.reply(s.dp.Features(), xid)
	case *openflow.EchoRequest:
		s.reply(&openflow.EchoReply{Data: t.Data}, xid)
	case *openflow.BarrierRequest:
		s.reply(&openflow.BarrierReply{}, xid)
	case *openflow.GetConfigRequest:
		s.reply(&openflow.GetConfigReply{Config: openflow.SwitchConfig{
			MissSendLen: uint16(s.dp.cfg.MissSendLen),
		}}, xid)
	case *openflow.StatsRequest:
		if sr := s.dp.HandleStatsRequest(now, t); sr != nil {
			s.reply(sr, xid)
		} else {
			s.reply(&openflow.ErrorMsg{
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.ErrCodeBadType,
			}, xid)
		}
	case *openflow.SetConfig, *openflow.Hello:
		// Accepted silently.
	case *openflow.Vendor:
		s.handleVendor(t, xid)
	default:
		s.ctrlErrors++
	}
	if err != nil {
		s.ctrlErrors++
		return
	}
	if res != nil {
		s.finishControl(res, xid)
	}
	// The decoded shell is fully dispatched: the flow table keeps its own
	// reference to the action slice and released frames alias the packet_out
	// data's backing array, neither of which shell recycling touches.
	openflow.ReleaseMessage(m)
	s.feedTableLadder()
	s.armMechTimer()
	s.armExpiryTimer()
}

// feedTableLadder couples flow-table occupancy into the degradation ladder
// when the switch is configured for it (DESIGN.md §17). Called wherever the
// table's population can have changed; armMechTimer must follow so any hold
// deadline the evaluation armed gets scheduled.
func (s *SimSwitch) feedTableLadder() {
	if !s.dp.Config().TableLadder {
		return
	}
	if lad, ok := s.dp.Mechanism().(*core.Ladder); ok {
		lad.SetTablePressure(s.dp.TablePressure(), s.kernel.Now())
	}
}

// finishControl emits the results of a flow_mod/packet_out: released
// packets pay the buffer release cost, then go out the data ports.
func (s *SimSwitch) finishControl(res *ControlResult, xid uint32) {
	if res.Reply != nil {
		s.reply(res.Reply, xid)
	}
	for _, r := range res.Removed {
		if fr := s.dp.FlowRemovedFor(r); fr != nil {
			s.reply(fr, xid)
		}
	}
	if len(res.Outputs) == 0 {
		return
	}
	// Emit released packets now, in the same event that made the rule
	// install visible, and only charge the release cost to the CPU. If the
	// emission were deferred to the cost job's completion, a same-flow frame
	// arriving in the install-to-drain window would match the new rule on
	// another core and overtake its buffered predecessors — breaking the
	// per-flow ordering the buffer mechanism exists to preserve.
	s.cpu.Submit(time.Duration(len(res.Outputs))*s.cfg.BufferOpCost, nil)
	for _, o := range res.Outputs {
		s.emit(o)
	}
}

func (s *SimSwitch) handleVendor(v *openflow.Vendor, xid uint32) {
	payload, err := openflow.ParseVendor(v)
	if err != nil {
		s.ctrlErrors++
		return
	}
	if payload.StatsRequest {
		stats := s.dp.Mechanism().Stats(s.kernel.Now())
		s.reply(openflow.EncodeFlowBufferStats(stats), xid)
	}
	if payload.Backpressure != nil {
		// Controller admission signal: feed it into the degradation ladder
		// (the caller re-arms the mechanism timer after processControl, so
		// any hold deadline the signal arms gets scheduled).
		if lad, ok := s.dp.Mechanism().(*core.Ladder); ok {
			lad.SetBackpressure(payload.Backpressure.Level > 0, s.kernel.Now())
		}
	}
	// Runtime reconfiguration (payload.Config) is a live-mode feature; the
	// sim switch is configured at construction.
}

// reply sends a switch-originated message to the controller via the bus.
func (s *SimSwitch) reply(m openflow.Message, xid uint32) {
	msg, err := openflow.Encode(m, xid)
	if err != nil {
		s.ctrlErrors++
		return
	}
	s.shipControl(0, msg)
}

func (s *SimSwitch) emit(o Output) {
	if s.tel != nil {
		s.tel.Instant(telemetry.KindEgress, s.kernel.Now(), 0, uint32(o.Port), uint32(len(o.Frame)))
	}
	if s.transmitEx != nil {
		s.transmitEx(o)
		return
	}
	if s.transmit != nil {
		s.transmit(o.Port, o.Frame)
	}
}

// armMechTimer (re)schedules the buffer mechanism's next Tick.
func (s *SimSwitch) armMechTimer() {
	deadline, ok := s.dp.Mechanism().NextDeadline()
	if s.mechTimer != nil {
		s.kernel.Cancel(s.mechTimer)
		s.mechTimer = nil
	}
	if !ok {
		return
	}
	if deadline < s.kernel.Now() {
		deadline = s.kernel.Now()
	}
	s.mechTimer = s.kernel.At(deadline, func() {
		s.mechTimer = nil
		resend := s.dp.Mechanism().Tick(s.kernel.Now())
		for _, pi := range resend {
			if s.pacer != nil && !s.pacer.allow(s.kernel.Now(), len(pi.Data)) {
				if s.tel != nil {
					s.tel.Instant(telemetry.KindPacerDrop, s.kernel.Now(), 0, 0, uint32(len(pi.Data)))
				}
				continue
			}
			s.nextXid++
			xid := s.nextXid
			msg, err := openflow.Encode(pi, xid)
			if err != nil {
				s.ctrlErrors++
				continue
			}
			cost := s.cfg.MissCost + time.Duration(len(msg))*s.cfg.PerControlByte
			epoch := s.epoch
			s.cpu.Submit(cost, func() {
				if s.epoch != epoch {
					return
				}
				s.shipControl(xid, msg)
			})
		}
		s.armMechTimer()
	})
}

// armExpiryTimer (re)schedules the flow table's next rule expiry sweep.
func (s *SimSwitch) armExpiryTimer() {
	deadline, ok := s.dp.Table().NextExpiry()
	if s.expiryTimer != nil {
		s.kernel.Cancel(s.expiryTimer)
		s.expiryTimer = nil
	}
	if !ok {
		return
	}
	if deadline < s.kernel.Now() {
		deadline = s.kernel.Now()
	}
	s.expiryTimer = s.kernel.At(deadline, func() {
		s.expiryTimer = nil
		for _, r := range s.dp.ExpireRules(s.kernel.Now()) {
			if fr := s.dp.FlowRemovedFor(r); fr != nil {
				s.reply(fr, 0)
			}
		}
		s.feedTableLadder()
		s.armMechTimer()
		s.armExpiryTimer()
	})
}

// CPUUtilizationPercent reports time-averaged switch CPU usage in percent
// of one core — the paper's "switch usages" metric (Fig. 4 / Fig. 11).
func (s *SimSwitch) CPUUtilizationPercent() float64 { return s.cpu.UtilizationPercent() }

// ControllerDelay reports the distribution of packet_in-to-first-response
// delays measured at the switch, in seconds (Fig. 6).
func (s *SimSwitch) ControllerDelay() *metrics.Summary { return &s.ctrlDelay }

// BusUtilizationPercent reports offered load on the shared plane-CPU bus
// relative to its capacity.
func (s *SimSwitch) BusUtilizationPercent(now time.Duration) float64 {
	return s.bus.UtilizationPercent(now)
}

// Errors reports frames dropped for parse errors and control messages
// dropped for protocol errors.
func (s *SimSwitch) Errors() (parse, control uint64) { return s.parseErrors, s.ctrlErrors }

// PacerDrops reports packet_in messages (and their payload bytes) refused
// by the token-bucket pacer; both zero when pacing is disabled.
func (s *SimSwitch) PacerDrops() (msgs, bytes uint64) {
	if s.pacer == nil {
		return 0, 0
	}
	return s.pacer.drops, s.pacer.dropBytes
}
