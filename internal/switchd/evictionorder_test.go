package switchd

import (
	"sort"
	"testing"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/sim"
)

// This file property-tests the eviction/expiry ordering contract (DESIGN.md
// §17): timeouts are ordinary kernel events, so flow_removed notifications
// must be emitted in deadline order at exactly the deadline instants, and a
// removed rule must never act on traffic again — its buffered packets are
// released by the controller round trip, not resurrected by the dead rule.

// removedTap captures every flow_removed the switch emits, stamped with the
// kernel time of emission.
type removedTap struct {
	t      *testing.T
	kernel *sim.Kernel
	seen   []capturedRemoved
}

type capturedRemoved struct {
	at     time.Duration
	reason uint8
	cookie uint64
}

func (rt *removedTap) deliver(msg []byte) {
	m, _, err := openflow.Decode(msg)
	if err != nil {
		rt.t.Fatalf("controller received garbage: %v", err)
	}
	if fr, ok := m.(*openflow.FlowRemoved); ok {
		rt.seen = append(rt.seen, capturedRemoved{at: rt.kernel.Now(), reason: fr.Reason, cookie: fr.Cookie})
	}
}

// installTimed installs one exact-match rule with the given timeouts (in
// seconds, the flow_mod unit) and SEND_FLOW_REM set.
func installTimed(t *testing.T, sw *SimSwitch, cookie uint64, srcPort uint16, idleSec, hardSec uint16) {
	t.Helper()
	frame, err := packet.ParseHeaders(testFrame(t, "10.1.0.9", srcPort, 900))
	if err != nil {
		t.Fatal(err)
	}
	sw.DeliverControl(openflow.MustEncode(&openflow.FlowMod{
		Match:       openflow.ExactMatch(1, frame),
		Command:     openflow.FlowModAdd,
		Cookie:      cookie,
		IdleTimeout: idleSec,
		HardTimeout: hardSec,
		Priority:    100,
		BufferID:    openflow.NoBuffer,
		OutPort:     openflow.PortNone,
		Flags:       openflow.FlowModFlagSendFlowRem,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, uint32(cookie)))
}

// TestExpiryOrderMatchesKernelOrder installs rules whose idle/hard
// deadlines interleave and asserts the flow_removed stream comes out in
// strict deadline order, at the deadline instants, with the right reason
// for each rule.
func TestExpiryOrderMatchesKernelOrder(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{
		DatapathID: 1, NumPorts: 2,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket, RerequestTimeoutMs: 20},
		BufferCapacity: 16,
	}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatalf("NewSimSwitch: %v", err)
	}
	tap := &removedTap{t: t, kernel: k}
	sw.SetControlSender(tap.deliver)
	sw.SetTransmit(func(uint16, []byte) {})

	// Deadlines (seconds): cookie 1 hard@3, 2 idle@1, 3 hard@5, 4 idle@2,
	// 5 idle@4. No traffic touches them, so idle deadlines stay at
	// install+idle and the expected emission order is 2,4,1,5,3.
	type spec struct {
		cookie       uint64
		idle, hard   uint16
		wantReason   uint8
		wantDeadline time.Duration
	}
	specs := []spec{
		{1, 0, 3, openflow.RemovedHardTimeout, 3 * time.Second},
		{2, 1, 0, openflow.RemovedIdleTimeout, 1 * time.Second},
		{3, 0, 5, openflow.RemovedHardTimeout, 5 * time.Second},
		{4, 2, 0, openflow.RemovedIdleTimeout, 2 * time.Second},
		{5, 4, 6, openflow.RemovedIdleTimeout, 4 * time.Second},
	}
	for i, s := range specs {
		installTimed(t, sw, s.cookie, uint16(1000+i), s.idle, s.hard)
	}
	k.Run()

	if len(tap.seen) != len(specs) {
		t.Fatalf("saw %d flow_removed, want %d", len(tap.seen), len(specs))
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].wantDeadline < specs[j].wantDeadline })
	for i, got := range tap.seen {
		want := specs[i]
		if got.cookie != want.cookie {
			t.Errorf("emission %d: cookie %d, want %d (deadline order violated)", i, got.cookie, want.cookie)
		}
		if got.reason != want.wantReason {
			t.Errorf("emission %d (cookie %d): reason %d, want %d", i, got.cookie, got.reason, want.wantReason)
		}
		// The sweep event runs a sub-millisecond scheduling latency after
		// the deadline; the contract is "at the deadline, before any later
		// deadline", not bit-exact instants.
		if got.at < want.wantDeadline || got.at-want.wantDeadline >= time.Millisecond {
			t.Errorf("emission %d (cookie %d): emitted at %v, want within [%v, %v)",
				i, got.cookie, got.at, want.wantDeadline, want.wantDeadline+time.Millisecond)
		}
		if i > 0 && got.at < tap.seen[i-1].at {
			t.Errorf("emission %d at %v precedes emission %d at %v", i, got.at, i-1, tap.seen[i-1].at)
		}
	}
	st := sw.Datapath().TableMgmt()
	if st.RemovedIdle != 3 || st.RemovedHard != 2 {
		t.Errorf("ledger reasons: idle %d hard %d, want 3/2", st.RemovedIdle, st.RemovedHard)
	}
	if gap := st.LedgerGap(); gap != 0 {
		t.Errorf("ledger gap = %d, want 0", gap)
	}
}

// TestEvictionNeverResurrectsBufferedUnits drives a capacity-2 LRU table
// through a miss storm: every flow's first packet is buffered and released
// by the controller round trip even when its rule is evicted before or
// after the release. Each ingested frame must egress exactly once and the
// buffer pool must drain to zero — an evicted rule must never re-emit (or
// strand) a buffered unit.
func TestEvictionNeverResurrectsBufferedUnits(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{
		DatapathID: 1, NumPorts: 2,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket, RerequestTimeoutMs: 20},
		BufferCapacity: 16,
		TableCapacity:  2,
		EvictionPolicy: flowtable.EvictLRU,
	}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatalf("NewSimSwitch: %v", err)
	}
	fc := &fakeController{t: t, sw: sw, outPort: 2, delay: 200 * time.Microsecond, kernel: k}
	sw.SetControlSender(fc.deliver)
	var egressed []uint16
	sw.SetTransmit(func(port uint16, frame []byte) { egressed = append(egressed, port) })
	egress := &egressed
	const flows = 8
	sent := 0
	for i := 0; i < flows; i++ {
		frame := testFrame(t, "10.1.0.1", uint16(2000+i), 900)
		sw.Ingest(1, frame)
		sent++
	}
	k.Run()
	if len(fc.seen) != flows {
		t.Fatalf("controller saw %d packet_ins, want %d", len(fc.seen), flows)
	}
	if len(*egress) != sent {
		t.Fatalf("egressed %d frames, want %d (no frame lost or duplicated by eviction)", len(*egress), sent)
	}
	st := sw.Datapath().TableMgmt()
	if st.RemovedEvict == 0 {
		t.Fatal("capacity-2 table under 8 flows evicted nothing; the scenario is not exercising eviction")
	}
	if st.Active > 2 {
		t.Errorf("active rules %d exceed capacity 2", st.Active)
	}
	if gap := st.LedgerGap(); gap != 0 {
		t.Errorf("ledger gap = %d, want 0", gap)
	}
	// Live (still addressable) must be zero: a unit an evicted rule could
	// resurrect would still be addressable here. Reclaiming slots are fine —
	// they are released, just not yet returned to the free list.
	if pm, ok := sw.Datapath().Mechanism().(interface{ Pool() *core.Pool }); ok {
		if live := pm.Pool().Live(); live != 0 {
			t.Errorf("buffer pool still holds %d addressable units after full drain", live)
		}
	} else {
		t.Fatalf("mechanism %T does not expose its pool", sw.Datapath().Mechanism())
	}
}
