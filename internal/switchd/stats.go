package switchd

import (
	"time"

	"sdnbuffer/internal/openflow"
)

// HandleStatsRequest answers the OpenFlow statistics request kinds the
// switch advertises (DESC, FLOW, AGGREGATE, TABLE, PORT).
//
// Flow/aggregate scoping: a request whose match is wildcard-all covers
// every rule; otherwise a rule is covered when the request's
// non-wildcarded fields equal the rule's (the useful subset of the spec's
// "more specific than" relation for this testbed).
func (d *Datapath) HandleStatsRequest(now time.Duration, req *openflow.StatsRequest) *openflow.StatsReply {
	reply := &openflow.StatsReply{StatsType: req.StatsType}
	switch req.StatsType {
	case openflow.StatsDesc:
		reply.Desc = &openflow.DescStats{
			Manufacturer: "sdnbuffer project",
			Hardware:     "emulated datapath",
			Software:     "sdnbuffer switchd",
			SerialNum:    "0",
			Datapath:     "SDN switch buffer reproduction (ICDCS 2017)",
		}
	case openflow.StatsFlow:
		for _, e := range d.table.Entries() {
			if !statsScopeCovers(&req.Match, &e.Match) {
				continue
			}
			pkts, bytes, age := e.Stats(now)
			reply.Flows = append(reply.Flows, openflow.FlowStatsEntry{
				TableID:     0,
				Match:       e.Match,
				DurationSec: uint32(age / time.Second),
				DurationNs:  uint32(age % time.Second),
				Priority:    e.Priority,
				IdleTimeout: uint16(e.IdleTimeout / time.Second),
				HardTimeout: uint16(e.HardTimeout / time.Second),
				Cookie:      e.Cookie,
				PacketCount: pkts,
				ByteCount:   bytes,
				Actions:     e.Actions,
			})
		}
	case openflow.StatsAggregate:
		agg := &openflow.AggregateStats{}
		for _, e := range d.table.Entries() {
			if !statsScopeCovers(&req.Match, &e.Match) {
				continue
			}
			pkts, bytes, _ := e.Stats(now)
			agg.PacketCount += pkts
			agg.ByteCount += bytes
			agg.FlowCount++
		}
		reply.Aggregate = agg
	case openflow.StatsTable:
		lookups, hits, _, _ := d.table.LookupStats()
		maxEntries := uint32(0xffffffff)
		if d.cfg.TableCapacity > 0 {
			maxEntries = uint32(d.cfg.TableCapacity)
		}
		reply.Tables = []openflow.TableStatsEntry{{
			TableID:      0,
			Name:         "main",
			Wildcards:    openflow.WildcardAll,
			MaxEntries:   maxEntries,
			ActiveCount:  uint32(d.table.Len()),
			LookupCount:  lookups,
			MatchedCount: hits,
		}}
	case openflow.StatsPort:
		for p := 1; p <= d.cfg.NumPorts; p++ {
			if req.PortNo != openflow.PortNone && req.PortNo != 0 && req.PortNo != uint16(p) {
				continue
			}
			reply.Ports = append(reply.Ports, openflow.PortStatsEntry{
				PortNo:    uint16(p),
				RxPackets: d.portRxFrames[p],
				TxPackets: d.portTxFrames[p],
				RxBytes:   d.portRxBytes[p],
				TxBytes:   d.portTxBytes[p],
			})
		}
	default:
		return nil
	}
	return reply
}

// statsScopeCovers reports whether a rule falls inside a stats request's
// match scope: every field the scope pins must equal the rule's value.
func statsScopeCovers(scope, rule *openflow.Match) bool {
	w := scope.Wildcards
	if w == openflow.WildcardAll {
		return true
	}
	if w&openflow.WildcardInPort == 0 && scope.InPort != rule.InPort {
		return false
	}
	if w&openflow.WildcardDLSrc == 0 && scope.DLSrc != rule.DLSrc {
		return false
	}
	if w&openflow.WildcardDLDst == 0 && scope.DLDst != rule.DLDst {
		return false
	}
	if w&openflow.WildcardDLType == 0 && scope.DLType != rule.DLType {
		return false
	}
	if w&openflow.WildcardNWProto == 0 && scope.NWProto != rule.NWProto {
		return false
	}
	if w&openflow.WildcardNWSrcAll == 0 && scope.NWSrc != rule.NWSrc {
		return false
	}
	if w&openflow.WildcardNWDstAll == 0 && scope.NWDst != rule.NWDst {
		return false
	}
	if w&openflow.WildcardTPSrc == 0 && scope.TPSrc != rule.TPSrc {
		return false
	}
	if w&openflow.WildcardTPDst == 0 && scope.TPDst != rule.TPDst {
		return false
	}
	return true
}
