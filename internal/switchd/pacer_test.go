package switchd

import (
	"testing"
	"time"
)

func TestPacerBurstThenRefill(t *testing.T) {
	p := newPacketInPacer(PacerConfig{RatePerSec: 1000, Burst: 4})
	// The bucket starts full: the first burst goes back-to-back.
	for i := 0; i < 4; i++ {
		if !p.allow(0, 100) {
			t.Fatalf("burst packet %d refused", i)
		}
	}
	if p.allow(0, 100) {
		t.Fatal("fifth back-to-back packet admitted past the burst")
	}
	if p.drops != 1 || p.dropBytes != 100 {
		t.Errorf("drops = %d (%d bytes), want 1 (100)", p.drops, p.dropBytes)
	}
	// 1000 tokens/s: after 1ms exactly one token is back.
	if !p.allow(time.Millisecond, 100) {
		t.Error("refilled token refused")
	}
	if p.allow(time.Millisecond, 100) {
		t.Error("second packet admitted on one refilled token")
	}
	// A long idle period refills to the burst, never past it.
	for i := 0; i < 4; i++ {
		if !p.allow(time.Second, 100) {
			t.Fatalf("post-idle packet %d refused", i)
		}
	}
	if p.allow(time.Second, 100) {
		t.Error("bucket refilled past the burst cap")
	}
}

func TestPacerDeterministicAcrossRuns(t *testing.T) {
	run := func() (admitted uint64, drops uint64) {
		p := newPacketInPacer(PacerConfig{RatePerSec: 2500, Burst: 8})
		now := time.Duration(0)
		for i := 0; i < 1000; i++ {
			if p.allow(now, 1000) {
				admitted++
			}
			now += 173 * time.Microsecond
		}
		return admitted, p.drops
	}
	a1, d1 := run()
	a2, d2 := run()
	if a1 != a2 || d1 != d2 {
		t.Fatalf("pacer not deterministic: %d/%d vs %d/%d", a1, d1, a2, d2)
	}
	if a1+d1 != 1000 {
		t.Fatalf("admitted %d + drops %d != 1000", a1, d1)
	}
	// ~5780 packets/s offered against a 2500/s bucket: roughly half admitted.
	if a1 < 400 || a1 > 600 {
		t.Errorf("admitted = %d, want ≈ 2500/s of a 173µs-spaced offered load", a1)
	}
}

func TestPacerConfigValidation(t *testing.T) {
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 1, NumPorts: 2, BufferCapacity: 16}
	cfg.PacketInPacer = PacerConfig{RatePerSec: -1}
	if err := cfg.validate(); err == nil {
		t.Error("negative pacer rate accepted")
	}
	cfg.PacketInPacer = PacerConfig{RatePerSec: 100, Burst: -1}
	if err := cfg.validate(); err == nil {
		t.Error("negative pacer burst accepted")
	}
}
