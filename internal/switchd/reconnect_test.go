package switchd_test

import (
	"errors"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/switchd"
)

// TestAgentEchoTimeoutErrorIsDistinct pins the satellite contract: a missed
// keepalive surfaces ErrEchoTimeout through OnDisconnect, inspectable with
// errors.Is, not a generic read error.
func TestAgentEchoTimeoutErrorIsDistinct(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 4)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		EchoInterval: 20 * time.Millisecond,
		OnDisconnect: func(err error) { discErr <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)
	// Answer nothing: the keepalive must time out.
	select {
	case err := <-discErr:
		if !errors.Is(err, switchd.ErrEchoTimeout) {
			t.Errorf("disconnect error = %v, want errors.Is(_, ErrEchoTimeout)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired")
	}
	// The disconnect also flips the datapath into its fail mode.
	if !agent.ControlDown() {
		t.Error("datapath not in fail mode after echo timeout")
	}
}

// TestAgentEchoTimerSilentAfterClose guards the close race: an echo timer
// fire in flight when Close runs must not report a disconnect afterwards.
func TestAgentEchoTimerSilentAfterClose(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 16)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		EchoInterval: time.Millisecond, // fire constantly to provoke the race
		OnDisconnect: func(err error) { discErr <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond) // let probes start
	if err := agent.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Drain anything reported before Close completed, then confirm silence.
	for {
		select {
		case <-discErr:
			continue
		default:
		}
		break
	}
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-discErr:
		t.Errorf("OnDisconnect fired after Close: %v", err)
	default:
	}
}

// TestAgentAutoReconnect exercises the full recovery loop: hangup →
// fail-mode entry → backoff redial → fresh handshake → OnReconnect →
// fail-mode exit.
func TestAgentAutoReconnect(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 4)
	reconnected := make(chan int, 4)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		OnDisconnect: func(err error) { discErr <- err },
		OnReconnect:  func(attempts int) { reconnected <- attempts },
		Reconnect: switchd.ReconnectConfig{
			Enable:         true,
			InitialBackoff: 10 * time.Millisecond,
			MaxBackoff:     50 * time.Millisecond,
			Jitter:         0.2,
			Seed:           42,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)

	_ = rc.conn.Close() // controller hangs up
	select {
	case <-discErr:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired")
	}
	if !agent.ControlDown() {
		t.Error("datapath not in fail mode after hangup")
	}

	// The listener is still up: the redial must land here with a fresh
	// handshake.
	rc.accept()
	rc.readType(openflow.TypeHello)
	select {
	case attempts := <-reconnected:
		if attempts < 1 {
			t.Errorf("attempts = %d", attempts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnReconnect never fired")
	}
	if agent.ControlDown() {
		t.Error("datapath still in fail mode after reconnect")
	}
}

// TestAgentReconnectGivesUpAfterMaxAttempts bounds the redial loop: with the
// listener gone, the agent must stop after MaxAttempts and Close must not
// hang on the abandoned loop.
func TestAgentReconnectGivesUpAfterMaxAttempts(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 4)
	reconnected := make(chan int, 4)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		OnDisconnect: func(err error) { discErr <- err },
		OnReconnect:  func(attempts int) { reconnected <- attempts },
		Reconnect: switchd.ReconnectConfig{
			Enable:         true,
			InitialBackoff: 2 * time.Millisecond,
			MaxBackoff:     5 * time.Millisecond,
			MaxAttempts:    3,
			Seed:           7,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)

	_ = rc.conn.Close()
	_ = rc.ln.Close() // nothing to reconnect to
	select {
	case <-discErr:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired")
	}
	time.Sleep(100 * time.Millisecond) // 3 attempts at ≤5ms backoff fit easily
	select {
	case <-reconnected:
		t.Error("OnReconnect fired with no listener")
	default:
	}
	closed := make(chan error, 1)
	go func() { closed <- agent.Close() }()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on the reconnect loop")
	}
}
