package switchd

import (
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/openflow"
)

// SimSwitch's data-plane failure surface: the testbed injects link and
// chassis failures here, at the current simulated time, and the switch's
// reactions — rule eviction, flow_removed and port_status notifications —
// travel the same modeled bus and control link as all other control
// traffic, so detection latency is physical, not instantaneous.

// SetPortDown flips one data port's link state. Taking the port down
// evicts rules egressing it (emitting flow_removed where flagged) and
// announces the change to the controller with a port_status message;
// bringing it up announces only. No-op when already in the target state,
// so repeated injections do not re-notify.
func (s *SimSwitch) SetPortDown(port uint16, down bool) error {
	if s.dp.PortDown(port) == down {
		if port < 1 || int(port) > s.dp.cfg.NumPorts {
			return ErrBadPort
		}
		return nil
	}
	now := s.kernel.Now()
	removed, err := s.dp.SetPortDown(now, port, down)
	if err != nil {
		return err
	}
	for _, r := range removed {
		if fr := s.dp.FlowRemovedFor(r); fr != nil {
			s.reply(fr, 0)
		}
	}
	if !s.dp.crashed {
		s.reply(&openflow.PortStatus{
			Reason: openflow.PortReasonModify,
			Desc:   s.dp.PhyPortDesc(port),
		}, 0)
	}
	return nil
}

// Crash power-cycles the switch: the flow table and every buffered packet
// vanish with no notifications, pending CPU and bus work dies with the
// chassis (see the epoch field), and ingress/control delivery is dropped —
// counted — until Restart. Returns what the buffers lost so the caller can
// close its drop ledger.
func (s *SimSwitch) Crash() core.BufferLoss {
	loss := s.dp.Crash(s.kernel.Now())
	s.epoch++
	if s.mechTimer != nil {
		s.kernel.Cancel(s.mechTimer)
		s.mechTimer = nil
	}
	if s.expiryTimer != nil {
		s.kernel.Cancel(s.expiryTimer)
		s.expiryTimer = nil
	}
	// In-flight controller-delay samples and per-port ordering state died
	// with the chassis; post-restart sequences start fresh. Completions
	// parked in the in-order hold are frames in the chassis pipeline: they
	// die here like any other mid-pipeline frame, to the same named count.
	for _, held := range s.portHeld {
		s.crashRxDrops += uint64(len(held))
	}
	s.sentAt = make(map[uint32]time.Duration)
	s.portSeq = make(map[uint16]uint64)
	s.portNext = make(map[uint16]uint64)
	s.portHeld = make(map[uint16]map[uint64]func())
	s.nextWakeup = 0
	return loss
}

// Restart brings a crashed switch back with empty tables and buffers. The
// controller repopulates state through the ordinary miss path.
func (s *SimSwitch) Restart() {
	s.dp.Restart()
	s.armMechTimer()
	s.armExpiryTimer()
}

// CrashDrops reports frames and control messages dropped because they
// arrived while the switch was crashed.
func (s *SimSwitch) CrashDrops() (rxFrames, ctlMsgs uint64) {
	return s.crashRxDrops, s.crashCtlDrops
}
