package switchd_test

import (
	"fmt"
	"net"
	"net/netip"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/switchd"
)

// hungListener opens a loopback listener with a zero accept backlog and
// saturates it, so further SYNs hang — the deterministic way to make a dial
// block without touching external routes.
func hungListener(t *testing.T) string {
	t.Helper()
	fd, err := syscall.Socket(syscall.AF_INET, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = syscall.Close(fd) })
	if err := syscall.Bind(fd, &syscall.SockaddrInet4{Addr: [4]byte{127, 0, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Listen(fd, 0); err != nil {
		t.Fatal(err)
	}
	sa, err := syscall.Getsockname(fd)
	if err != nil {
		t.Fatal(err)
	}
	addr := fmt.Sprintf("127.0.0.1:%d", sa.(*syscall.SockaddrInet4).Port)
	// The single backlog slot goes to this connection; nobody accepts it.
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return addr
}

// TestAgentDialTimeoutBoundsConnect pins that Connect cannot hang on an
// unresponsive address: with DialTimeout set, an attempt whose SYN goes
// unanswered fails within the bound instead of blocking for minutes.
func TestAgentDialTimeoutBoundsConnect(t *testing.T) {
	addr := hungListener(t)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:    switchd.Config{DatapathID: 1, NumPorts: 2},
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	start := time.Now()
	err = agent.Connect(addr)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Connect through a saturated backlog succeeded")
	}
	if elapsed > 5*time.Second {
		t.Errorf("Connect took %v despite 200ms dial timeout", elapsed)
	}
}

// TestAgentWriteTimeoutDetectsWedgedController pins the write-side liveness
// bound: a controller socket that stops draining (here: never reads at all)
// must surface as a disconnect within ~WriteTimeout once the kernel buffers
// fill, instead of wedging InjectFrame callers forever.
func TestAgentWriteTimeoutDetectsWedgedController(t *testing.T) {
	rc := startRawController(t)
	var disconnected atomic.Bool
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		WriteTimeout: 200 * time.Millisecond,
		OnDisconnect: func(err error) { disconnected.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatalf("Connect: %v", err)
	}
	// Never read from rc.conn. Misses produce full-payload packet_ins (no
	// buffering configured), so a few MB of injected frames exhaust the
	// kernel's socket buffers and wedge the next write.
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr("10.1.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1000,
		DstPort:   9,
		Payload:   make([]byte, 16<<10),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for !disconnected.Load() {
		if time.Now().After(deadline) {
			t.Fatal("wedged controller never detected")
		}
		if err := agent.InjectFrame(1, wire); err != nil {
			// Agent closed the channel mid-call; the callback check decides.
			break
		}
	}
	waitUntil := time.Now().Add(5 * time.Second)
	for !disconnected.Load() {
		if time.Now().After(waitUntil) {
			t.Fatal("OnDisconnect never fired after write stall")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAgentWriteTimeoutSparesHealthyController pins the other side: with a
// controller that reads promptly, WriteTimeout never trips during a normal
// miss/install/hit cycle.
func TestAgentWriteTimeoutSparesHealthyController(t *testing.T) {
	rc := startRawController(t)
	var disconnected atomic.Bool
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		WriteTimeout: 2 * time.Second,
		OnDisconnect: func(err error) { disconnected.Store(true) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatalf("Connect: %v", err)
	}
	rc.readType(openflow.TypeHello)
	for i := 0; i < 20; i++ {
		frame := liveFrame(t, "10.1.0.1", uint16(1000+i))
		if err := agent.InjectFrame(1, frame); err != nil {
			t.Fatalf("InjectFrame %d: %v", i, err)
		}
		if m, _ := rc.readType(openflow.TypePacketIn); m == nil {
			t.Fatal("no packet_in")
		}
	}
	if disconnected.Load() {
		t.Error("write timeout tripped against a healthy controller")
	}
}
