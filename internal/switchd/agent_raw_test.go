package switchd_test

import (
	"net"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/switchd"
)

// rawController is a bare TCP listener that scripts OpenFlow exchanges with
// one Agent, for exercising the agent's dispatch paths directly.
type rawController struct {
	t    *testing.T
	ln   net.Listener
	conn net.Conn
	r    *openflow.Reader
}

func startRawController(t *testing.T) *rawController {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	return &rawController{t: t, ln: ln}
}

func (rc *rawController) accept() {
	rc.t.Helper()
	conn, err := rc.ln.Accept()
	if err != nil {
		rc.t.Fatalf("accept: %v", err)
	}
	rc.conn = conn
	rc.r = openflow.NewReader(conn)
	rc.t.Cleanup(func() { _ = conn.Close() })
}

func (rc *rawController) send(m openflow.Message, xid uint32) {
	rc.t.Helper()
	if err := openflow.WriteMessage(rc.conn, m, xid); err != nil {
		rc.t.Fatalf("write %v: %v", m.Type(), err)
	}
}

func (rc *rawController) read() (openflow.Message, uint32) {
	rc.t.Helper()
	if err := rc.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		rc.t.Fatal(err)
	}
	m, xid, err := rc.r.ReadMessage()
	if err != nil {
		rc.t.Fatalf("read: %v", err)
	}
	return m, xid
}

// readType reads messages until one of the wanted type arrives.
func (rc *rawController) readType(want openflow.MsgType) (openflow.Message, uint32) {
	rc.t.Helper()
	for {
		m, xid := rc.read()
		if m.Type() == want {
			return m, xid
		}
	}
}

func newRawPair(t *testing.T, dpCfg switchd.Config) (*rawController, *switchd.Agent) {
	t.Helper()
	rc := startRawController(t)
	agent, err := switchd.NewAgent(switchd.AgentConfig{Datapath: dpCfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatalf("Connect: %v", err)
	}
	rc.readType(openflow.TypeHello) // agent's hello
	return rc, agent
}

func TestAgentAnswersHandshakeQueries(t *testing.T) {
	rc, _ := newRawPair(t, switchd.Config{
		DatapathID: 0x77, NumPorts: 3,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 64,
	})
	rc.send(&openflow.Hello{}, 1)
	rc.send(&openflow.FeaturesRequest{}, 2)
	m, xid := rc.readType(openflow.TypeFeaturesReply)
	fr := m.(*openflow.FeaturesReply)
	if fr.DatapathID != 0x77 || fr.NBuffers != 64 || len(fr.Ports) != 3 || xid != 2 {
		t.Errorf("features = %+v xid %d", fr, xid)
	}

	rc.send(&openflow.GetConfigRequest{}, 3)
	m, _ = rc.readType(openflow.TypeGetConfigReply)
	if got := m.(*openflow.GetConfigReply).Config.MissSendLen; got != openflow.DefaultMissSendLen {
		t.Errorf("miss_send_len = %d", got)
	}

	rc.send(&openflow.SetConfig{Config: openflow.SwitchConfig{MissSendLen: 64}}, 4)
	rc.send(&openflow.GetConfigRequest{}, 5)
	m, _ = rc.readType(openflow.TypeGetConfigReply)
	if got := m.(*openflow.GetConfigReply).Config.MissSendLen; got != 64 {
		t.Errorf("miss_send_len after set = %d, want 64", got)
	}

	rc.send(&openflow.BarrierRequest{}, 6)
	if _, xid := rc.readType(openflow.TypeBarrierReply); xid != 6 {
		t.Errorf("barrier xid = %d", xid)
	}

	rc.send(&openflow.EchoRequest{Data: []byte("live")}, 7)
	m, _ = rc.readType(openflow.TypeEchoReply)
	if string(m.(*openflow.EchoReply).Data) != "live" {
		t.Error("echo data mismatch")
	}
}

func TestAgentStatsOverTCP(t *testing.T) {
	rc, agent := newRawPair(t, switchd.Config{DatapathID: 1, NumPorts: 2,
		Buffer: openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket}})

	// Push one frame through the miss path so counters move.
	var sunk bool
	agent.SetTransmit(func(port uint16, frame []byte) { sunk = true })
	if err := agent.InjectFrame(1, liveFrame(t, "10.1.0.1", 1000)); err != nil {
		t.Fatal(err)
	}
	pi, xid := rc.readType(openflow.TypePacketIn)
	po := &openflow.PacketOut{
		BufferID: pi.(*openflow.PacketIn).BufferID,
		InPort:   1,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	rc.send(po, xid)

	// Poll port stats until the tx counter shows the released frame.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rc.send(&openflow.StatsRequest{StatsType: openflow.StatsPort, PortNo: openflow.PortNone}, 9)
		m, _ := rc.readType(openflow.TypeStatsReply)
		sr := m.(*openflow.StatsReply)
		if len(sr.Ports) == 2 && sr.Ports[1].TxPackets == 1 && sr.Ports[0].RxPackets == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port stats never converged: %+v", sr.Ports)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sunk {
		t.Error("released frame never transmitted")
	}

	rc.send(&openflow.StatsRequest{StatsType: openflow.StatsDesc}, 10)
	m, _ := rc.readType(openflow.TypeStatsReply)
	if m.(*openflow.StatsReply).Desc == nil {
		t.Error("no desc stats")
	}

	rc.send(&openflow.StatsRequest{StatsType: 42}, 11)
	m, _ = rc.readType(openflow.TypeError)
	if em := m.(*openflow.ErrorMsg); em.ErrType != openflow.ErrTypeBadRequest {
		t.Errorf("error = %+v", em)
	}
}

func TestAgentVendorStatsAndReconfigureRefusal(t *testing.T) {
	rc, agent := newRawPair(t, switchd.Config{DatapathID: 1, NumPorts: 2,
		Buffer: openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket}})
	agent.SetTransmit(func(uint16, []byte) {})

	// Buffer one packet, leaving a unit in use.
	if err := agent.InjectFrame(1, liveFrame(t, "10.1.0.5", 5000)); err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypePacketIn)

	// Vendor stats: one unit in use.
	rc.send(openflow.EncodeFlowBufferStatsRequest(), 20)
	m, _ := rc.readType(openflow.TypeVendor)
	payload, err := openflow.ParseVendor(m.(*openflow.Vendor))
	if err != nil || payload.Stats == nil {
		t.Fatalf("vendor stats = %+v, %v", payload, err)
	}
	if payload.Stats.UnitsInUse != 1 {
		t.Errorf("units in use = %d, want 1", payload.Stats.UnitsInUse)
	}

	// Reconfiguration with a buffered packet must be refused (the mechanism
	// stays packet-granularity).
	v, err := openflow.EncodeFlowBufferConfig(openflow.FlowBufferConfig{
		Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc.send(v, 21)
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if agent.BufferGranularity() == openflow.GranularityFlow {
			t.Fatal("reconfigured while units in use")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAgentIdleTimeoutFlowRemovedOverTCP(t *testing.T) {
	rc, agent := newRawPair(t, switchd.Config{DatapathID: 1, NumPorts: 2})
	agent.SetTransmit(func(uint16, []byte) {})

	frame := liveFrame(t, "10.1.0.9", 9000)
	if err := agent.InjectFrame(1, frame); err != nil {
		t.Fatal(err)
	}
	pi, xid := rc.readType(openflow.TypePacketIn)
	parsed := pi.(*openflow.PacketIn)
	fm := &openflow.FlowMod{
		Match:       mustExact(t, parsed.Data),
		Command:     openflow.FlowModAdd,
		Priority:    100,
		IdleTimeout: 1,
		BufferID:    openflow.NoBuffer,
		Flags:       openflow.FlowModFlagSendFlowRem,
		Actions:     []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	rc.send(fm, xid)
	// The rule idles out after ~1 s of no traffic; the agent's wall-clock
	// tick must emit flow_removed.
	m, _ := rc.readType(openflow.TypeFlowRemoved)
	if got := m.(*openflow.FlowRemoved).Reason; got != openflow.RemovedIdleTimeout {
		t.Errorf("reason = %d, want idle timeout", got)
	}
	if agent.TableLen() != 0 {
		t.Errorf("table len = %d after expiry", agent.TableLen())
	}
}

func mustExact(t *testing.T, data []byte) openflow.Match {
	t.Helper()
	f, err := parseHeadersForTest(data)
	if err != nil {
		t.Fatal(err)
	}
	return openflow.ExactMatch(1, f)
}

func TestAgentKeepaliveProbesController(t *testing.T) {
	rc := startRawController(t)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		EchoInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)
	// The agent must send keepalive probes; answer the first two.
	for i := 0; i < 2; i++ {
		m, xid := rc.readType(openflow.TypeEchoRequest)
		rc.send(&openflow.EchoReply{Data: m.(*openflow.EchoRequest).Data}, xid)
	}
}

func TestAgentDisconnectCallbackOnDeadController(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 1)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		EchoInterval: 20 * time.Millisecond,
		OnDisconnect: func(err error) { discErr <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)
	// Never answer anything: the keepalive must declare the controller
	// dead within a few intervals.
	select {
	case err := <-discErr:
		if err == nil {
			t.Error("nil disconnect error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired for an unresponsive controller")
	}
}

func TestAgentDisconnectCallbackOnClosedConn(t *testing.T) {
	rc := startRawController(t)
	discErr := make(chan error, 1)
	agent, err := switchd.NewAgent(switchd.AgentConfig{
		Datapath:     switchd.Config{DatapathID: 1, NumPorts: 2},
		OnDisconnect: func(err error) { discErr <- err },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	done := make(chan error, 1)
	go func() { done <- agent.Connect(rc.ln.Addr().String()) }()
	rc.accept()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	rc.readType(openflow.TypeHello)
	_ = rc.conn.Close() // controller hangs up
	select {
	case <-discErr:
	case <-time.After(5 * time.Second):
		t.Fatal("OnDisconnect never fired for a closed connection")
	}
}
