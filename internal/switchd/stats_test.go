package switchd

import (
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/sim"
)

func statsDP(t *testing.T) *Datapath {
	t.Helper()
	dp := newDP(t, openflow.GranularityPacket, 64)
	// Install two rules and push traffic through one of them.
	for i, srcPort := range []uint16{1000, 2000} {
		frame := testFrame(t, "10.1.0.1", srcPort, 400)
		parsed, err := packet.ParseHeaders(frame)
		if err != nil {
			t.Fatal(err)
		}
		fm := &openflow.FlowMod{
			Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
			Priority: uint16(10 + i), BufferID: openflow.NoBuffer,
			IdleTimeout: 5, Cookie: uint64(i),
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}
		if _, err := dp.HandleFlowMod(0, fm); err != nil {
			t.Fatal(err)
		}
	}
	frame := testFrame(t, "10.1.0.1", 1000, 400)
	for i := 0; i < 3; i++ {
		if _, err := dp.HandleFrame(time.Duration(i)*time.Millisecond, 1, frame); err != nil {
			t.Fatal(err)
		}
	}
	return dp
}

func TestStatsDesc(t *testing.T) {
	dp := statsDP(t)
	reply := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{StatsType: openflow.StatsDesc})
	if reply == nil || reply.Desc == nil {
		t.Fatal("no desc reply")
	}
	if reply.Desc.Manufacturer == "" || reply.Desc.Software == "" {
		t.Errorf("desc = %+v", reply.Desc)
	}
}

func TestStatsFlowAndAggregate(t *testing.T) {
	dp := statsDP(t)
	reply := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Match:     openflow.MatchAll(),
		OutPort:   openflow.PortNone,
	})
	if reply == nil || len(reply.Flows) != 2 {
		t.Fatalf("flow stats entries = %d, want 2", len(reply.Flows))
	}
	var total uint64
	for _, f := range reply.Flows {
		total += f.PacketCount
	}
	if total != 3 {
		t.Errorf("total packet count = %d, want 3", total)
	}

	agg := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsAggregate,
		Match:     openflow.MatchAll(),
		OutPort:   openflow.PortNone,
	})
	if agg == nil || agg.Aggregate == nil {
		t.Fatal("no aggregate reply")
	}
	if agg.Aggregate.FlowCount != 2 || agg.Aggregate.PacketCount != 3 || agg.Aggregate.ByteCount != 1326 {
		t.Errorf("aggregate = %+v", agg.Aggregate)
	}
}

func TestStatsFlowScoped(t *testing.T) {
	dp := statsDP(t)
	frame := testFrame(t, "10.1.0.1", 1000, 400)
	parsed, err := packet.ParseHeaders(frame)
	if err != nil {
		t.Fatal(err)
	}
	reply := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Match:     openflow.ExactMatch(1, parsed),
		OutPort:   openflow.PortNone,
	})
	if reply == nil || len(reply.Flows) != 1 {
		t.Fatalf("scoped flow stats = %d entries, want 1", len(reply.Flows))
	}
	if reply.Flows[0].PacketCount != 3 {
		t.Errorf("scoped packet count = %d, want 3", reply.Flows[0].PacketCount)
	}
	// A 5-tuple scope also covers the exact-match rule.
	reply = dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsFlow,
		Match:     openflow.FlowMatch(parsed.Key()),
		OutPort:   openflow.PortNone,
	})
	if reply == nil || len(reply.Flows) != 1 {
		t.Fatalf("tuple-scoped flow stats = %d entries, want 1", len(reply.Flows))
	}
}

func TestStatsTable(t *testing.T) {
	dp := statsDP(t)
	reply := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{StatsType: openflow.StatsTable})
	if reply == nil || len(reply.Tables) != 1 {
		t.Fatal("no table stats")
	}
	e := reply.Tables[0]
	if e.ActiveCount != 2 || e.LookupCount != 3 || e.MatchedCount != 3 {
		t.Errorf("table stats = %+v", e)
	}
}

func TestStatsPort(t *testing.T) {
	dp := statsDP(t)
	reply := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsPort, PortNo: openflow.PortNone,
	})
	if reply == nil || len(reply.Ports) != 2 {
		t.Fatalf("port stats = %d entries, want 2", len(reply.Ports))
	}
	if reply.Ports[0].RxPackets != 3 || reply.Ports[0].RxBytes != 1326 {
		t.Errorf("port 1 rx = %d/%d, want 3/1326", reply.Ports[0].RxPackets, reply.Ports[0].RxBytes)
	}
	if reply.Ports[1].TxPackets != 3 {
		t.Errorf("port 2 tx = %d, want 3", reply.Ports[1].TxPackets)
	}
	one := dp.HandleStatsRequest(time.Second, &openflow.StatsRequest{
		StatsType: openflow.StatsPort, PortNo: 2,
	})
	if len(one.Ports) != 1 || one.Ports[0].PortNo != 2 {
		t.Errorf("single-port stats = %+v", one.Ports)
	}
}

func TestStatsUnknownKind(t *testing.T) {
	dp := statsDP(t)
	if reply := dp.HandleStatsRequest(0, &openflow.StatsRequest{StatsType: 42}); reply != nil {
		t.Errorf("unknown stats kind answered: %+v", reply)
	}
}

func TestSimSwitchAnswersStats(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 1, NumPorts: 2}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var replies []openflow.Message
	sw.SetControlSender(func(msg []byte) {
		m, _, err := openflow.Decode(msg)
		if err != nil {
			t.Fatalf("bad reply: %v", err)
		}
		replies = append(replies, m)
	})
	sw.DeliverControl(openflow.MustEncode(&openflow.StatsRequest{StatsType: openflow.StatsTable}, 3))
	sw.DeliverControl(openflow.MustEncode(&openflow.StatsRequest{StatsType: 42}, 4))
	k.Run()
	if len(replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(replies))
	}
	foundTable, foundError := false, false
	for _, m := range replies {
		switch r := m.(type) {
		case *openflow.StatsReply:
			foundTable = r.StatsType == openflow.StatsTable && len(r.Tables) == 1
		case *openflow.ErrorMsg:
			foundError = r.ErrType == openflow.ErrTypeBadRequest
		}
	}
	if !foundTable || !foundError {
		t.Errorf("replies = %#v", replies)
	}
}
