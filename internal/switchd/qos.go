package switchd

import (
	"fmt"
	"sort"
	"time"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/sim"
)

// The paper's future work (§VII) proposes combining the ingress buffer
// mechanism with egress scheduling for QoS guarantees. EgressScheduler
// implements that extension for the simulated switch: per-port priority
// queues in front of the egress link, fed by the OpenFlow ENQUEUE action,
// so released buffered packets and fast-path packets share a policy-driven
// egress instead of a single FIFO.

// QueueConfig describes one egress queue.
type QueueConfig struct {
	// ID is the queue id the ENQUEUE action references.
	ID uint32
	// Priority orders strict-priority service: higher is served first.
	Priority int
	// MaxDepth bounds the queue in packets (0 = unbounded). Arrivals to a
	// full queue are dropped — tail drop, accounted per queue.
	MaxDepth int
}

// QoSConfig is the per-port egress queue set.
type QoSConfig struct {
	Queues []QueueConfig
}

// Validate checks the queue set for duplicates and bounds.
func (c QoSConfig) Validate() error {
	if len(c.Queues) == 0 {
		return fmt.Errorf("switchd: qos config needs at least one queue")
	}
	seen := make(map[uint32]bool, len(c.Queues))
	for _, q := range c.Queues {
		if seen[q.ID] {
			return fmt.Errorf("switchd: duplicate queue id %d", q.ID)
		}
		seen[q.ID] = true
		if q.MaxDepth < 0 {
			return fmt.Errorf("switchd: queue %d negative max depth", q.ID)
		}
	}
	return nil
}

// egressQueue is one queue's runtime state.
type egressQueue struct {
	cfg     QueueConfig
	entries []egressEntry
	sent    uint64
	drops   uint64
	wait    metrics.Summary
	depth   metrics.Gauge
}

type egressEntry struct {
	frame    []byte
	deliver  func()
	enqueued time.Duration
}

// EgressScheduler serializes frames of multiple queues onto one egress link
// in strict priority order. It assumes it is the link's only sender.
type EgressScheduler struct {
	kernel  *sim.Kernel
	link    *netem.Link
	queues  []*egressQueue // sorted by priority, highest first
	byID    map[uint32]*egressQueue
	defQ    *egressQueue
	sending bool
}

// NewEgressScheduler builds a scheduler over the given link. The first
// queue in priority order is also the default for frames without an
// ENQUEUE action (queue id 0 if present, else the lowest-priority queue).
func NewEgressScheduler(k *sim.Kernel, link *netem.Link, cfg QoSConfig) (*EgressScheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &EgressScheduler{
		kernel: k,
		link:   link,
		byID:   make(map[uint32]*egressQueue, len(cfg.Queues)),
	}
	for _, qc := range cfg.Queues {
		q := &egressQueue{cfg: qc}
		s.queues = append(s.queues, q)
		s.byID[qc.ID] = q
	}
	sort.SliceStable(s.queues, func(i, j int) bool {
		return s.queues[i].cfg.Priority > s.queues[j].cfg.Priority
	})
	if q, ok := s.byID[0]; ok {
		s.defQ = q
	} else {
		s.defQ = s.queues[len(s.queues)-1]
	}
	return s, nil
}

// Enqueue submits a frame to queue id (the ENQUEUE action's target).
// Unknown ids fall back to the default queue, mirroring how a switch treats
// a mis-targeted enqueue rather than dropping silently with no accounting.
func (s *EgressScheduler) Enqueue(queueID uint32, frame []byte, deliver func()) {
	q, ok := s.byID[queueID]
	if !ok {
		q = s.defQ
	}
	now := s.kernel.Now()
	if q.cfg.MaxDepth > 0 && len(q.entries) >= q.cfg.MaxDepth {
		q.drops++
		return
	}
	q.entries = append(q.entries, egressEntry{frame: frame, deliver: deliver, enqueued: now})
	q.depth.Set(now, float64(len(q.entries)))
	s.serve()
}

// EnqueueDefault submits a frame to the default queue.
func (s *EgressScheduler) EnqueueDefault(frame []byte, deliver func()) {
	s.Enqueue(s.defQ.cfg.ID, frame, deliver)
}

// serve starts the next transmission if the link is free: strict priority,
// FIFO within a queue.
func (s *EgressScheduler) serve() {
	if s.sending {
		return
	}
	var q *egressQueue
	for _, cand := range s.queues {
		if len(cand.entries) > 0 {
			q = cand
			break
		}
	}
	if q == nil {
		return
	}
	now := s.kernel.Now()
	e := q.entries[0]
	copy(q.entries, q.entries[1:])
	q.entries[len(q.entries)-1] = egressEntry{}
	q.entries = q.entries[:len(q.entries)-1]
	q.depth.Set(now, float64(len(q.entries)))
	q.sent++
	q.wait.Observe((now - e.enqueued).Seconds())

	s.sending = true
	s.link.Send(e.frame, e.deliver)
	s.kernel.After(s.link.TransmissionTime(len(e.frame)), func() {
		s.sending = false
		s.serve()
	})
}

// QueueStats reports one queue's counters: frames sent, tail drops, mean
// scheduling wait in seconds, and time-averaged depth.
func (s *EgressScheduler) QueueStats(queueID uint32) (sent, drops uint64, meanWait, meanDepth float64, err error) {
	q, ok := s.byID[queueID]
	if !ok {
		return 0, 0, 0, 0, fmt.Errorf("switchd: unknown queue %d", queueID)
	}
	q.depth.Finish(s.kernel.Now())
	return q.sent, q.drops, q.wait.Mean(), q.depth.TimeAverage(), nil
}

// Pending reports the total frames waiting across queues.
func (s *EgressScheduler) Pending() int {
	n := 0
	for _, q := range s.queues {
		n += len(q.entries)
	}
	return n
}
