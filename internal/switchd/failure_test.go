package switchd

import (
	"testing"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/sim"
)

func installTo(t *testing.T, dp *Datapath, frame []byte, outPort uint16, flags uint16) *ControlResult {
	t.Helper()
	parsed, err := packet.ParseHeaders(frame)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := dp.HandleFlowMod(0, &openflow.FlowMod{
		Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
		Priority: 10, BufferID: openflow.NoBuffer, Flags: flags,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: outPort}},
	})
	if err != nil {
		t.Fatalf("HandleFlowMod: %v", err)
	}
	return res
}

// TestSetPortDownEvictsAndRefusesInstalls pins the switch-local failure
// protocol: taking a port down evicts the rules egressing it, and installs
// toward the dead port are refused with OFPET_BAD_ACTION/BAD_OUT_PORT until
// the port returns.
func TestSetPortDownEvictsAndRefusesInstalls(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 0)
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	if res := installTo(t, dp, frame, 2, 0); res.Reply != nil {
		t.Fatalf("healthy install refused: %+v", res.Reply)
	}
	if dp.Table().Len() != 1 {
		t.Fatalf("table len = %d", dp.Table().Len())
	}

	removed, err := dp.SetPortDown(time.Millisecond, 2, true)
	if err != nil {
		t.Fatalf("SetPortDown: %v", err)
	}
	if len(removed) != 1 || dp.Table().Len() != 0 {
		t.Fatalf("eviction removed %d rules, table %d", len(removed), dp.Table().Len())
	}
	if !dp.PortDown(2) || dp.PortDown(1) {
		t.Fatal("port state wrong after SetPortDown")
	}
	// Idempotent: no second eviction, no error.
	if again, err := dp.SetPortDown(2*time.Millisecond, 2, true); err != nil || len(again) != 0 {
		t.Fatalf("repeat SetPortDown: %v, %d removed", err, len(again))
	}

	res := installTo(t, dp, frame, 2, 0)
	em, ok := res.Reply.(*openflow.ErrorMsg)
	if !ok || em.ErrType != openflow.ErrTypeBadAction || em.Code != openflow.ErrCodeBadOutPort {
		t.Fatalf("install to dead port replied %+v", res.Reply)
	}
	if dp.Table().Len() != 0 {
		t.Fatal("refused rule reached the table")
	}
	refusals, _, _, _ := dp.FailureStats()
	if refusals != 1 {
		t.Fatalf("deadPortRefusals = %d", refusals)
	}

	if _, err := dp.SetPortDown(3*time.Millisecond, 2, false); err != nil {
		t.Fatalf("port up: %v", err)
	}
	if res := installTo(t, dp, frame, 2, 0); res.Reply != nil {
		t.Fatalf("install after recovery refused: %+v", res.Reply)
	}
	if _, err := dp.SetPortDown(0, 9, true); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

// TestRefusedBufferMechanismAware pins the fate of a buffered packet whose
// install is refused for a dead egress port: a flow-granularity unit stays
// parked (the re-request timer recovers it after reroute), a
// packet-granularity unit is destroyed to a named count.
func TestRefusedBufferMechanismAware(t *testing.T) {
	for _, tc := range []struct {
		g         openflow.BufferGranularity
		wantDrops uint64
		wantLive  int
	}{
		{openflow.GranularityFlow, 0, 1},
		{openflow.GranularityPacket, 1, 0},
	} {
		dp := newDP(t, tc.g, 16)
		frame := testFrame(t, "10.1.0.1", 1000, 200)
		res, err := dp.HandleFrame(0, 1, frame)
		if err != nil || res.Miss == nil || res.Miss.PacketIn == nil {
			t.Fatalf("%v: miss = %+v, %v", tc.g, res, err)
		}
		id := res.Miss.PacketIn.BufferID
		if id == openflow.NoBuffer {
			t.Fatalf("%v: no buffer id", tc.g)
		}
		if _, err := dp.SetPortDown(0, 2, true); err != nil {
			t.Fatal(err)
		}
		parsed, _ := packet.ParseHeaders(frame)
		cres, err := dp.HandleFlowMod(time.Millisecond, &openflow.FlowMod{
			Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
			Priority: 10, BufferID: id,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cres.Reply.(*openflow.ErrorMsg); !ok {
			t.Fatalf("%v: reply = %+v", tc.g, cres.Reply)
		}
		pool := dp.Mechanism().(interface{ Pool() *core.Pool }).Pool()
		if got := pool.Live(); got != tc.wantLive {
			t.Errorf("%v: %d live units, want %d", tc.g, got, tc.wantLive)
		}
		_, bufDrops, _, _ := dp.FailureStats()
		if bufDrops != tc.wantDrops {
			t.Errorf("%v: bufDropsDeadPort = %d, want %d", tc.g, bufDrops, tc.wantDrops)
		}
	}
}

// TestEmitDownPortBackstop pins the physical-layer backstop: a surviving
// rule (flood) skips dead ports with a named count instead of transmitting
// into the void.
func TestEmitDownPortBackstop(t *testing.T) {
	dp, err := NewDatapath(Config{DatapathID: 1, NumPorts: 3})
	if err != nil {
		t.Fatal(err)
	}
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	parsed, _ := packet.ParseHeaders(frame)
	if _, err := dp.HandleFlowMod(0, &openflow.FlowMod{
		Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
		Priority: 10, BufferID: openflow.NoBuffer,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: openflow.PortFlood}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := dp.SetPortDown(0, 3, true); err != nil {
		t.Fatal(err)
	}
	res, err := dp.HandleFrame(time.Millisecond, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 2 {
		t.Fatalf("flood outputs = %+v, want just port 2", res.Outputs)
	}
	_, _, txDown, _ := dp.FailureStats()
	if txDown != 1 {
		t.Fatalf("txDownDrops = %d", txDown)
	}
}

// TestCrashWipesState pins crash semantics: table and buffers vanish with
// accounted loss, and the datapath is fully usable after Restart.
func TestCrashWipesState(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 300)
	if res, err := dp.HandleFrame(0, 1, frame); err != nil || !res.Miss.Buffered {
		t.Fatalf("miss not buffered: %+v, %v", res, err)
	}
	installTo(t, dp, testFrame(t, "10.1.0.2", 2000, 64), 2, 0)

	loss := dp.Crash(time.Millisecond)
	if loss.Units != 1 || loss.Packets != 1 || loss.Bytes <= 0 {
		t.Fatalf("crash loss = %+v", loss)
	}
	if !dp.Crashed() || dp.Table().Len() != 0 {
		t.Fatalf("crashed=%v table=%d", dp.Crashed(), dp.Table().Len())
	}
	pool := dp.Mechanism().(interface{ Pool() *core.Pool }).Pool()
	if pool.Live() != 0 {
		t.Fatalf("%d live units after crash", pool.Live())
	}
	_, _, _, ledger := dp.FailureStats()
	if ledger != loss {
		t.Fatalf("crash ledger %+v != loss %+v", ledger, loss)
	}

	dp.Restart()
	if dp.Crashed() {
		t.Fatal("still crashed after Restart")
	}
	if res, err := dp.HandleFrame(2*time.Millisecond, 1, frame); err != nil || res.Miss == nil {
		t.Fatalf("post-restart frame: %+v, %v", res, err)
	}
}

// TestSimSwitchPortStatus pins detection: flipping a port emits one
// port_status over the modeled control path (plus flow_removed for flagged
// evictions), repeats are silent, and recovery announces link-up.
func TestSimSwitchPortStatus(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 1, NumPorts: 2}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var statuses []*openflow.PortStatus
	var flowRemoved int
	sw.SetControlSender(func(msg []byte) {
		m, _, err := openflow.Decode(msg)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		switch ps := m.(type) {
		case *openflow.PortStatus:
			cp := *ps
			statuses = append(statuses, &cp)
		case *openflow.FlowRemoved:
			flowRemoved++
		}
	})
	installTo(t, sw.Datapath(), testFrame(t, "10.1.0.1", 1000, 64), 2, openflow.FlowModFlagSendFlowRem)

	if err := sw.SetPortDown(2, true); err != nil {
		t.Fatal(err)
	}
	if err := sw.SetPortDown(2, true); err != nil { // repeat: silent
		t.Fatal(err)
	}
	k.Run()
	if len(statuses) != 1 || flowRemoved != 1 {
		t.Fatalf("%d port_status, %d flow_removed; want 1, 1", len(statuses), flowRemoved)
	}
	ps := statuses[0]
	if ps.Reason != openflow.PortReasonModify || ps.Desc.PortNo != 2 || ps.Desc.State&openflow.PortStateLinkDown == 0 {
		t.Fatalf("port_status = %+v", ps)
	}

	if err := sw.SetPortDown(2, false); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(statuses) != 2 || statuses[1].Desc.State&openflow.PortStateLinkDown != 0 {
		t.Fatalf("link-up status missing or wrong: %+v", statuses)
	}
	if err := sw.SetPortDown(9, true); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

// TestSimSwitchCrashGates pins chassis loss: traffic and control arriving
// while crashed are dropped and counted, work in flight dies with the
// chassis, and the switch serves misses again after Restart.
func TestSimSwitchCrashGates(t *testing.T) {
	k, sw, fc, egress := newSimPair(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 300)

	// A frame is mid-pipeline when the power goes: its CPU job must die —
	// and be counted like a boundary drop, so both the in-flight frame and
	// the one arriving while crashed land in the same named ledger entry.
	sw.Ingest(1, frame)
	sw.Crash()
	sw.Ingest(1, frame)
	sw.DeliverControl(openflow.MustEncode(&openflow.EchoRequest{}, 7))
	k.Run()
	if len(fc.seen) != 0 {
		t.Fatalf("crashed switch shipped %d packet_ins", len(fc.seen))
	}
	rx, ctl := sw.CrashDrops()
	if rx != 2 || ctl != 1 {
		t.Fatalf("crash drops = %d rx, %d ctl; want 2, 1", rx, ctl)
	}

	sw.Restart()
	sw.Ingest(1, frame)
	k.Run()
	if len(fc.seen) != 1 || len(*egress) != 1 {
		t.Fatalf("post-restart: %d packet_ins, %d egress", len(fc.seen), len(*egress))
	}
}
