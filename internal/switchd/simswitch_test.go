package switchd

import (
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/sim"
)

// fakeController decodes packet_ins and immediately answers with a
// flow_mod + packet_out pair, directly invoking DeliverControl (no link).
type fakeController struct {
	t       *testing.T
	sw      *SimSwitch
	outPort uint16
	seen    []*openflow.PacketIn
	delay   time.Duration
	kernel  *sim.Kernel
	mute    bool // when true, never answer (for re-request tests)
}

func (f *fakeController) deliver(msg []byte) {
	m, xid, err := openflow.Decode(msg)
	if err != nil {
		f.t.Fatalf("controller received garbage: %v", err)
	}
	pi, ok := m.(*openflow.PacketIn)
	if !ok {
		return
	}
	f.seen = append(f.seen, pi)
	if f.mute {
		return
	}
	frame, err := packet.ParseHeaders(pi.Data)
	if err != nil {
		f.t.Fatalf("controller cannot parse payload: %v", err)
	}
	actions := []openflow.Action{&openflow.ActionOutput{Port: f.outPort}}
	fm := openflow.MustEncode(&openflow.FlowMod{
		Match: openflow.ExactMatch(pi.InPort, frame), Command: openflow.FlowModAdd,
		Priority: 100, BufferID: openflow.NoBuffer, Actions: actions,
	}, xid)
	po := &openflow.PacketOut{BufferID: pi.BufferID, InPort: pi.InPort, Actions: actions}
	if pi.BufferID == openflow.NoBuffer {
		po.Data = pi.Data
	}
	pob := openflow.MustEncode(po, xid)
	f.kernel.After(f.delay, func() {
		f.sw.DeliverControl(fm)
		f.sw.DeliverControl(pob)
	})
}

func newSimPair(t *testing.T, g openflow.BufferGranularity, capacity int) (*sim.Kernel, *SimSwitch, *fakeController, *[]uint16) {
	t.Helper()
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{
		DatapathID: 1, NumPorts: 2,
		Buffer:         openflow.FlowBufferConfig{Granularity: g, RerequestTimeoutMs: 20},
		BufferCapacity: capacity,
	}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatalf("NewSimSwitch: %v", err)
	}
	fc := &fakeController{t: t, sw: sw, outPort: 2, delay: 200 * time.Microsecond, kernel: k}
	sw.SetControlSender(fc.deliver)
	var egress []uint16
	sw.SetTransmit(func(port uint16, frame []byte) { egress = append(egress, port) })
	return k, sw, fc, &egress
}

func TestSimSwitchEndToEndMiss(t *testing.T) {
	k, sw, fc, egress := newSimPair(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 900)
	sw.Ingest(1, frame)
	k.Run()
	if len(fc.seen) != 1 {
		t.Fatalf("controller saw %d packet_ins", len(fc.seen))
	}
	if fc.seen[0].BufferID == openflow.NoBuffer {
		t.Error("buffered switch sent NoBuffer id")
	}
	if len(fc.seen[0].Data) != openflow.DefaultMissSendLen {
		t.Errorf("packet_in payload %dB, want %d", len(fc.seen[0].Data), openflow.DefaultMissSendLen)
	}
	if len(*egress) != 1 || (*egress)[0] != 2 {
		t.Fatalf("egress = %v, want [2]", *egress)
	}
	if sw.ControllerDelay().Count() != 1 {
		t.Errorf("controller delay observations = %d", sw.ControllerDelay().Count())
	}
	if d := sw.ControllerDelay().Mean(); d <= 0 {
		t.Errorf("controller delay = %g", d)
	}
}

func TestSimSwitchHitBypassesController(t *testing.T) {
	k, sw, fc, egress := newSimPair(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 900)
	sw.Ingest(1, frame)
	k.Run()
	// Second identical frame: must hit the installed rule, no new request.
	sw.Ingest(1, frame)
	k.Run()
	if len(fc.seen) != 1 {
		t.Fatalf("controller saw %d packet_ins, want 1", len(fc.seen))
	}
	if len(*egress) != 2 {
		t.Fatalf("egress count = %d, want 2", len(*egress))
	}
}

func TestSimSwitchNoBufferSendsFullPacket(t *testing.T) {
	k, sw, fc, egress := newSimPair(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 900)
	sw.Ingest(1, frame)
	k.Run()
	if len(fc.seen) != 1 {
		t.Fatalf("controller saw %d packet_ins", len(fc.seen))
	}
	if fc.seen[0].BufferID != openflow.NoBuffer {
		t.Error("no-buffer switch sent a buffer id")
	}
	if len(fc.seen[0].Data) != len(frame) {
		t.Errorf("payload %dB, want full %dB", len(fc.seen[0].Data), len(frame))
	}
	if len(*egress) != 1 {
		t.Fatalf("egress = %v", *egress)
	}
}

func TestSimSwitchFlowGranularityOneRequestForBurst(t *testing.T) {
	k, sw, fc, egress := newSimPair(t, openflow.GranularityFlow, 256)
	// 5 packets of the same flow arrive within the control round trip.
	for i := 0; i < 5; i++ {
		frame := testFrame(t, "10.1.0.1", 1000, 500)
		i := i
		k.After(time.Duration(i)*30*time.Microsecond, func() { sw.Ingest(1, frame) })
	}
	k.Run()
	if len(fc.seen) != 1 {
		t.Fatalf("controller saw %d packet_ins, want 1 for the whole burst", len(fc.seen))
	}
	if len(*egress) != 5 {
		t.Fatalf("egress count = %d, want all 5 forwarded", len(*egress))
	}
}

func TestSimSwitchFlowGranularityRerequest(t *testing.T) {
	k, sw, fc, _ := newSimPair(t, openflow.GranularityFlow, 256)
	fc.mute = true // controller never answers
	frame := testFrame(t, "10.1.0.1", 1000, 500)
	sw.Ingest(1, frame)
	// Run 50ms: with a 20ms re-request timeout the switch must have
	// re-sent at least twice.
	k.RunUntil(50 * time.Millisecond)
	if len(fc.seen) < 3 {
		t.Fatalf("controller saw %d packet_ins, want >= 3 (original + re-requests)", len(fc.seen))
	}
	for i := 1; i < len(fc.seen); i++ {
		if fc.seen[i].BufferID != fc.seen[0].BufferID {
			t.Error("re-request changed the buffer id")
		}
	}
}

func TestSimSwitchEchoAndFeatures(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 7, NumPorts: 2}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var replies []openflow.Message
	sw.SetControlSender(func(msg []byte) {
		m, _, err := openflow.Decode(msg)
		if err != nil {
			t.Fatalf("bad reply: %v", err)
		}
		replies = append(replies, m)
	})
	sw.DeliverControl(openflow.MustEncode(&openflow.EchoRequest{Data: []byte("x")}, 5))
	sw.DeliverControl(openflow.MustEncode(&openflow.FeaturesRequest{}, 6))
	sw.DeliverControl(openflow.MustEncode(&openflow.BarrierRequest{}, 7))
	sw.DeliverControl(openflow.MustEncode(&openflow.GetConfigRequest{}, 8))
	sw.DeliverControl(openflow.MustEncode(openflow.EncodeFlowBufferStatsRequest(), 9))
	k.Run()
	if len(replies) != 5 {
		t.Fatalf("replies = %d, want 5", len(replies))
	}
	if fr, ok := replies[1].(*openflow.FeaturesReply); !ok || fr.DatapathID != 7 {
		t.Errorf("features reply = %+v", replies[1])
	}
	if v, ok := replies[4].(*openflow.Vendor); ok {
		payload, err := openflow.ParseVendor(v)
		if err != nil || payload.Stats == nil {
			t.Errorf("stats reply = %+v err %v", payload, err)
		}
	} else {
		t.Errorf("reply 4 = %T", replies[4])
	}
}

func TestSimSwitchRuleExpiryEmitsFlowRemoved(t *testing.T) {
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 1, NumPorts: 2}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var removed []*openflow.FlowRemoved
	sw.SetControlSender(func(msg []byte) {
		m, _, err := openflow.Decode(msg)
		if err != nil {
			return
		}
		if fr, ok := m.(*openflow.FlowRemoved); ok {
			removed = append(removed, fr)
		}
	})
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	parsed, _ := packet.ParseHeaders(frame)
	fm := openflow.MustEncode(&openflow.FlowMod{
		Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
		Priority: 10, HardTimeout: 1, BufferID: openflow.NoBuffer,
		Flags:   openflow.FlowModFlagSendFlowRem,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}, 1)
	sw.DeliverControl(fm)
	k.RunUntil(2 * time.Second)
	if len(removed) != 1 {
		t.Fatalf("flow_removed count = %d, want 1", len(removed))
	}
	if removed[0].Reason != openflow.RemovedHardTimeout {
		t.Errorf("reason = %d, want hard timeout", removed[0].Reason)
	}
	if sw.Datapath().Table().Len() != 0 {
		t.Errorf("table len = %d after expiry", sw.Datapath().Table().Len())
	}
}

func TestSimSwitchUtilizationGrowsWithLoad(t *testing.T) {
	load := func(n int) float64 {
		k, sw, _, _ := newSimPair(t, openflow.GranularityPacket, 256)
		for i := 0; i < n; i++ {
			frame := testFrame(t, "10.1.0.1", uint16(1000+i), 500)
			i := i
			k.After(time.Duration(i)*100*time.Microsecond, func() { sw.Ingest(1, frame) })
		}
		k.RunUntil(time.Duration(n) * 100 * time.Microsecond)
		return sw.CPUUtilizationPercent()
	}
	lo, hi := load(10), load(200)
	if hi <= lo {
		t.Errorf("utilization did not grow with load: %g vs %g", lo, hi)
	}
}

func TestSimSwitchConfigValidation(t *testing.T) {
	k := sim.New(1)
	bad := DefaultSimConfig()
	bad.CPUCores = 0
	if _, err := NewSimSwitch(k, bad); err == nil {
		t.Error("accepted zero cores")
	}
	bad = DefaultSimConfig()
	bad.BusMbps = 0
	if _, err := NewSimSwitch(k, bad); err == nil {
		t.Error("accepted zero bus bandwidth")
	}
	bad = DefaultSimConfig()
	bad.MissCost = -time.Second
	if _, err := NewSimSwitch(k, bad); err == nil {
		t.Error("accepted negative cost")
	}
}

func TestSimSwitchGarbageControlMessage(t *testing.T) {
	k, sw, _, _ := newSimPair(t, openflow.GranularityPacket, 16)
	sw.DeliverControl([]byte{1, 2, 3})
	sw.DeliverControl(make([]byte, 12))
	k.Run()
	_, ctrlErrs := sw.Errors()
	if ctrlErrs == 0 {
		t.Error("garbage control messages not counted as errors")
	}
}

func TestSimSwitchBusUtilization(t *testing.T) {
	k, sw, _, _ := newSimPair(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 900)
	sw.Ingest(1, frame)
	k.RunUntil(10 * time.Millisecond)
	if got := sw.BusUtilizationPercent(10 * time.Millisecond); got <= 0 {
		t.Errorf("bus utilization = %g, want > 0 after a full-packet miss", got)
	}
	if cfg := sw.Datapath().Config(); cfg.NumPorts != 2 {
		t.Errorf("effective config = %+v", cfg)
	}
}
