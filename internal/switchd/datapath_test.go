package switchd

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func testFrame(t *testing.T, srcIP string, srcPort uint16, payload int) []byte {
	t.Helper()
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   srcPort,
		DstPort:   9,
		Payload:   make([]byte, payload),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return wire
}

func newDP(t *testing.T, buffer openflow.BufferGranularity, capacity int) *Datapath {
	t.Helper()
	dp, err := NewDatapath(Config{
		DatapathID:     1,
		NumPorts:       2,
		Buffer:         openflow.FlowBufferConfig{Granularity: buffer, RerequestTimeoutMs: 50},
		BufferCapacity: capacity,
	})
	if err != nil {
		t.Fatalf("NewDatapath: %v", err)
	}
	return dp
}

func TestDatapathMissThenFlowModThenHit(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 900)

	res, err := dp.HandleFrame(0, 1, frame)
	if err != nil {
		t.Fatalf("HandleFrame: %v", err)
	}
	if res.Miss == nil || res.Matched != nil {
		t.Fatalf("first frame should miss: %+v", res)
	}
	pi := res.Miss.PacketIn
	if pi == nil || pi.BufferID == openflow.NoBuffer {
		t.Fatalf("expected buffered packet_in, got %+v", pi)
	}

	// Controller answers: install rule, then release via packet_out.
	parsed, err := packet.ParseHeaders(frame)
	if err != nil {
		t.Fatal(err)
	}
	fm := &openflow.FlowMod{
		Match:    openflow.ExactMatch(1, parsed),
		Command:  openflow.FlowModAdd,
		Priority: 100,
		BufferID: openflow.NoBuffer,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	cres, err := dp.HandleFlowMod(time.Millisecond, fm)
	if err != nil {
		t.Fatalf("HandleFlowMod: %v", err)
	}
	if len(cres.Outputs) != 0 || cres.Reply != nil {
		t.Fatalf("flow_mod without buffer id produced %+v", cres)
	}
	po := &openflow.PacketOut{
		BufferID: pi.BufferID,
		InPort:   1,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	cres, err = dp.HandlePacketOut(2*time.Millisecond, po)
	if err != nil {
		t.Fatalf("HandlePacketOut: %v", err)
	}
	if len(cres.Outputs) != 1 || cres.Outputs[0].Port != 2 {
		t.Fatalf("packet_out outputs = %+v", cres.Outputs)
	}
	if len(cres.Outputs[0].Frame) != len(frame) {
		t.Errorf("released frame %d bytes, want %d", len(cres.Outputs[0].Frame), len(frame))
	}

	// The same flow now hits the rule.
	res, err = dp.HandleFrame(3*time.Millisecond, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss != nil || res.Matched == nil {
		t.Fatalf("second frame should hit: %+v", res)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 2 {
		t.Fatalf("hit outputs = %+v", res.Outputs)
	}
}

func TestDatapathFlowModWithBufferIDReleases(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 500)
	res, err := dp.HandleFrame(0, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	parsed, _ := packet.ParseHeaders(frame)
	fm := &openflow.FlowMod{
		Match:    openflow.ExactMatch(1, parsed),
		Command:  openflow.FlowModAdd,
		Priority: 100,
		BufferID: res.Miss.PacketIn.BufferID, // combined semantics
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	cres, err := dp.HandleFlowMod(time.Millisecond, fm)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Outputs) != 1 || cres.Outputs[0].Port != 2 {
		t.Fatalf("combined flow_mod outputs = %+v", cres.Outputs)
	}
}

func TestDatapathUnknownBufferIDReturnsError(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	po := &openflow.PacketOut{
		BufferID: 12345,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}
	cres, err := dp.HandlePacketOut(0, po)
	if err != nil {
		t.Fatalf("HandlePacketOut: %v", err)
	}
	em, ok := cres.Reply.(*openflow.ErrorMsg)
	if !ok || em.ErrType != openflow.ErrTypeBadRequest || em.Code != openflow.ErrCodeBadBufferID {
		t.Fatalf("reply = %+v, want buffer-unknown error", cres.Reply)
	}
}

func TestDatapathPacketOutWithDataNoBuffer(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 100)
	po := &openflow.PacketOut{
		BufferID: openflow.NoBuffer,
		InPort:   1,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
		Data:     frame,
	}
	cres, err := dp.HandlePacketOut(0, po)
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Outputs) != 1 || cres.Outputs[0].Port != 2 {
		t.Fatalf("outputs = %+v", cres.Outputs)
	}
}

func TestDatapathPacketOutDropBuffered(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 100)
	res, err := dp.HandleFrame(0, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	id := res.Miss.PacketIn.BufferID
	// Empty action list drops the buffered packet.
	cres, err := dp.HandlePacketOut(time.Millisecond, &openflow.PacketOut{BufferID: id})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Outputs) != 0 || cres.Reply != nil {
		t.Fatalf("drop produced %+v", cres)
	}
	// Releasing again fails.
	cres, err = dp.HandlePacketOut(time.Millisecond, &openflow.PacketOut{
		BufferID: id, Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Reply == nil {
		t.Error("double release not rejected")
	}
}

func TestDatapathFloodAndAllPorts(t *testing.T) {
	dp, err := NewDatapath(Config{NumPorts: 4})
	if err != nil {
		t.Fatal(err)
	}
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	outs, err := dp.applyActions(0, 2, frame, []openflow.Action{
		&openflow.ActionOutput{Port: openflow.PortFlood},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("flood produced %d outputs, want 3 (all but ingress)", len(outs))
	}
	for _, o := range outs {
		if o.Port == 2 {
			t.Error("flood echoed to ingress port")
		}
	}
	outs, err = dp.applyActions(0, 2, frame, []openflow.Action{
		&openflow.ActionOutput{Port: openflow.PortAll},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("all produced %d outputs, want 4", len(outs))
	}
}

func TestDatapathInPortOutput(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	outs, err := dp.applyActions(0, 1, frame, []openflow.Action{
		&openflow.ActionOutput{Port: openflow.PortInPort},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].Port != 1 {
		t.Fatalf("in_port output = %+v", outs)
	}
}

func TestDatapathRewriteActions(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	newDst := packet.MAC{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	outs, err := dp.applyActions(0, 1, frame, []openflow.Action{
		&openflow.ActionSetDLDst{Addr: newDst},
		&openflow.ActionSetNWTOS{TOS: 0x2e},
		&openflow.ActionOutput{Port: 2},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outputs = %d", len(outs))
	}
	got, err := packet.Parse(outs[0].Frame)
	if err != nil {
		t.Fatalf("rewritten frame unparseable: %v", err)
	}
	if got.DstMAC != newDst {
		t.Errorf("dst mac = %v, want %v", got.DstMAC, newDst)
	}
	if got.TOS != 0x2e {
		t.Errorf("tos = 0x%02x, want 0x2e", got.TOS)
	}
	// Checksum must have been fixed after the TOS rewrite.
	if err := packet.VerifyChecksums(outs[0].Frame); err != nil {
		t.Errorf("rewritten frame checksums: %v", err)
	}
	// Original frame untouched.
	orig, err := packet.Parse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if orig.DstMAC == newDst {
		t.Error("rewrite mutated the original frame")
	}
}

func TestDatapathBadPorts(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	if _, err := dp.HandleFrame(0, 0, frame); !errors.Is(err, ErrBadPort) {
		t.Errorf("in_port 0: %v", err)
	}
	if _, err := dp.HandleFrame(0, 9, frame); !errors.Is(err, ErrBadPort) {
		t.Errorf("in_port 9: %v", err)
	}
	if _, err := dp.applyActions(0, 1, frame, []openflow.Action{
		&openflow.ActionOutput{Port: 9},
	}, nil); !errors.Is(err, ErrBadPort) {
		t.Errorf("output 9: %v", err)
	}
}

func TestDatapathFlowModDelete(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 64)
	parsed, _ := packet.ParseHeaders(frame)
	match := openflow.ExactMatch(1, parsed)
	if _, err := dp.HandleFlowMod(0, &openflow.FlowMod{
		Match: match, Command: openflow.FlowModAdd, Priority: 10,
		BufferID: openflow.NoBuffer,
		Actions:  []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if dp.Table().Len() != 1 {
		t.Fatalf("table len = %d", dp.Table().Len())
	}
	cres, err := dp.HandleFlowMod(time.Millisecond, &openflow.FlowMod{
		Match: match, Command: openflow.FlowModDeleteStrict, Priority: 10,
		BufferID: openflow.NoBuffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Removed) != 1 || dp.Table().Len() != 0 {
		t.Fatalf("delete removed %d, table %d", len(cres.Removed), dp.Table().Len())
	}
}

func TestDatapathFlowModBadCommand(t *testing.T) {
	dp := newDP(t, openflow.GranularityNone, 16)
	cres, err := dp.HandleFlowMod(0, &openflow.FlowMod{Command: 99, BufferID: openflow.NoBuffer})
	if err != nil {
		t.Fatal(err)
	}
	em, ok := cres.Reply.(*openflow.ErrorMsg)
	if !ok || em.Code != openflow.ErrCodeBadCommand {
		t.Fatalf("reply = %+v", cres.Reply)
	}
}

func TestDatapathTableFullError(t *testing.T) {
	dp, err := NewDatapath(Config{
		NumPorts:       2,
		TableCapacity:  1,
		EvictionPolicy: flowtable.EvictNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(port uint16) *openflow.FlowMod {
		frame := testFrame(t, "10.1.0.1", port, 64)
		parsed, _ := packet.ParseHeaders(frame)
		return &openflow.FlowMod{
			Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
			Priority: 10, BufferID: openflow.NoBuffer,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}
	}
	if _, err := dp.HandleFlowMod(0, mk(1)); err != nil {
		t.Fatal(err)
	}
	cres, err := dp.HandleFlowMod(0, mk(2))
	if err != nil {
		t.Fatal(err)
	}
	em, ok := cres.Reply.(*openflow.ErrorMsg)
	if !ok || em.Code != openflow.ErrCodeAllTablesFull {
		t.Fatalf("reply = %+v, want all-tables-full", cres.Reply)
	}
}

func TestDatapathLRUEvictionEmitsRemoval(t *testing.T) {
	dp, err := NewDatapath(Config{
		NumPorts:       2,
		TableCapacity:  1,
		EvictionPolicy: flowtable.EvictLRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(port uint16, flags uint16) *openflow.FlowMod {
		frame := testFrame(t, "10.1.0.1", port, 64)
		parsed, _ := packet.ParseHeaders(frame)
		return &openflow.FlowMod{
			Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
			Priority: 10, BufferID: openflow.NoBuffer, Flags: flags,
			Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
		}
	}
	if _, err := dp.HandleFlowMod(0, mk(1, openflow.FlowModFlagSendFlowRem)); err != nil {
		t.Fatal(err)
	}
	cres, err := dp.HandleFlowMod(time.Millisecond, mk(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.Removed) != 1 {
		t.Fatalf("removed = %d, want 1", len(cres.Removed))
	}
	fr := dp.FlowRemovedFor(cres.Removed[0])
	if fr == nil || fr.Reason != openflow.RemovedEviction {
		t.Fatalf("flow_removed = %+v", fr)
	}
	// A rule without the flag produces no notification.
	cres, err = dp.HandleFlowMod(2*time.Millisecond, mk(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if fr := dp.FlowRemovedFor(cres.Removed[0]); fr != nil {
		t.Error("flow_removed produced for rule without SEND_FLOW_REM")
	}
}

func TestDatapathFeatures(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 64)
	fr := dp.Features()
	if fr.DatapathID != 1 || fr.NBuffers != 64 || len(fr.Ports) != 2 {
		t.Fatalf("features = %+v", fr)
	}
	dpNone := newDP(t, openflow.GranularityNone, 64)
	if got := dpNone.Features().NBuffers; got != 0 {
		t.Errorf("no-buffer NBuffers = %d, want 0", got)
	}
}

func TestDatapathConfigValidation(t *testing.T) {
	if _, err := NewDatapath(Config{NumPorts: -1}); err == nil {
		t.Error("accepted negative ports")
	}
	if _, err := NewDatapath(Config{
		NumPorts: 2,
		Buffer:   openflow.FlowBufferConfig{Granularity: 99},
	}); err == nil {
		t.Error("accepted invalid granularity")
	}
}

func TestDatapathStatsCounters(t *testing.T) {
	dp := newDP(t, openflow.GranularityPacket, 16)
	frame := testFrame(t, "10.1.0.1", 1000, 400)
	if _, err := dp.HandleFrame(0, 1, frame); err != nil {
		t.Fatal(err)
	}
	rx, rxB, _, _, misses := dp.Stats()
	if rx != 1 || rxB != uint64(len(frame)) || misses != 1 {
		t.Errorf("stats = rx %d/%dB misses %d", rx, rxB, misses)
	}
}

// parseForTest exposes header parsing for qos tests.
func parseForTest(frame []byte) (*packet.Frame, error) {
	return packet.ParseHeaders(frame)
}
