package switchd_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/switchd"
)

// liveTestbed is a controller + switch pair over real TCP loopback.
type liveTestbed struct {
	t      *testing.T
	server *controller.Server
	agent  *switchd.Agent

	mu       sync.Mutex
	received map[uint16][][]byte
	gotFrame chan struct{}
}

func newLiveTestbed(t *testing.T, buffer *openflow.FlowBufferConfig, dpCfg switchd.Config) *liveTestbed {
	t.Helper()
	app, err := controller.NewReactiveForwarder(controller.ForwarderConfig{
		Routes: []controller.Route{
			{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Port: 2},
			{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Port: 1},
		},
	})
	if err != nil {
		t.Fatalf("NewReactiveForwarder: %v", err)
	}
	server, err := controller.NewServer(controller.ServerConfig{Buffer: buffer}, app)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = server.Close() })

	agent, err := switchd.NewAgent(switchd.AgentConfig{Datapath: dpCfg})
	if err != nil {
		t.Fatalf("NewAgent: %v", err)
	}
	lt := &liveTestbed{
		t:        t,
		server:   server,
		agent:    agent,
		received: make(map[uint16][][]byte),
		gotFrame: make(chan struct{}, 1024),
	}
	agent.SetTransmit(func(port uint16, frame []byte) {
		lt.mu.Lock()
		lt.received[port] = append(lt.received[port], frame)
		lt.mu.Unlock()
		lt.gotFrame <- struct{}{}
	})
	if err := agent.Connect(server.Addr()); err != nil {
		t.Fatalf("Connect: %v", err)
	}
	t.Cleanup(func() { _ = agent.Close() })
	return lt
}

func (lt *liveTestbed) waitFrames(n int, timeout time.Duration) {
	lt.t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-lt.gotFrame:
		case <-deadline:
			lt.mu.Lock()
			total := 0
			for _, fs := range lt.received {
				total += len(fs)
			}
			lt.mu.Unlock()
			lt.t.Fatalf("timed out waiting for %d frames; got %d", n, total)
		}
	}
}

func (lt *liveTestbed) countOn(port uint16) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.received[port])
}

func liveFrame(t *testing.T, srcIP string, srcPort uint16) []byte {
	t.Helper()
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   srcPort,
		DstPort:   9,
		Payload:   make([]byte, 400),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func TestLiveMissForwardHitCycle(t *testing.T) {
	lt := newLiveTestbed(t, nil, switchd.Config{
		DatapathID: 1, NumPorts: 2,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 64,
	})
	frame := liveFrame(t, "10.1.0.1", 1000)
	// First frame misses; the controller installs a rule and releases it.
	if err := lt.agent.InjectFrame(1, frame); err != nil {
		t.Fatalf("InjectFrame: %v", err)
	}
	lt.waitFrames(1, 5*time.Second)
	if got := lt.countOn(2); got != 1 {
		t.Fatalf("frames on port 2 = %d, want 1", got)
	}
	// Wait for the flow_mod to land, then a second frame must hit locally.
	deadline := time.Now().Add(5 * time.Second)
	for lt.agent.TableLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rule never installed")
		}
		time.Sleep(time.Millisecond)
	}
	if err := lt.agent.InjectFrame(1, frame); err != nil {
		t.Fatal(err)
	}
	lt.waitFrames(1, 5*time.Second)
	if got := lt.countOn(2); got != 2 {
		t.Fatalf("frames on port 2 = %d, want 2", got)
	}
	_, _, _, _, misses := lt.agent.Stats()
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (second frame hit)", misses)
	}
}

func TestLiveFlowGranularityBurst(t *testing.T) {
	buf := &openflow.FlowBufferConfig{
		Granularity:        openflow.GranularityFlow,
		RerequestTimeoutMs: 1000,
	}
	lt := newLiveTestbed(t, buf, switchd.Config{
		DatapathID: 1, NumPorts: 2,
		// Start with packet granularity; the server's vendor config message
		// must switch the agent to flow granularity at handshake.
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 64,
	})
	// Wait for the handshake reconfiguration to land.
	deadline := time.Now().Add(5 * time.Second)
	for lt.agent.BufferGranularity() != openflow.GranularityFlow {
		if time.Now().After(deadline) {
			t.Fatal("buffer reconfiguration never applied")
		}
		time.Sleep(time.Millisecond)
	}
	// A burst of one flow: every packet must come out, in order.
	for i := 0; i < 8; i++ {
		if err := lt.agent.InjectFrame(1, liveFrame(t, "10.1.0.9", 4242)); err != nil {
			t.Fatal(err)
		}
	}
	lt.waitFrames(8, 5*time.Second)
	if got := lt.countOn(2); got != 8 {
		t.Fatalf("frames on port 2 = %d, want 8", got)
	}
}

func TestLiveEchoKeepsConnectionAlive(t *testing.T) {
	lt := newLiveTestbed(t, nil, switchd.Config{DatapathID: 1, NumPorts: 2})
	// Exercise the path indirectly: inject a frame after an idle period and
	// confirm the control channel still works.
	time.Sleep(50 * time.Millisecond)
	if err := lt.agent.InjectFrame(1, liveFrame(t, "10.1.0.2", 2000)); err != nil {
		t.Fatal(err)
	}
	lt.waitFrames(1, 5*time.Second)
}

func TestLiveAgentCloseIdempotent(t *testing.T) {
	lt := newLiveTestbed(t, nil, switchd.Config{DatapathID: 1, NumPorts: 2})
	if err := lt.agent.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := lt.agent.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := lt.agent.InjectFrame(1, liveFrame(t, "10.1.0.3", 3000)); err == nil {
		t.Error("InjectFrame after Close succeeded in sending")
	}
}

// parseHeadersForTest exposes packet header parsing to the raw agent tests.
func parseHeadersForTest(data []byte) (*packet.Frame, error) {
	return packet.ParseHeaders(data)
}
