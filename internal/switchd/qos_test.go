package switchd

import (
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/sim"
)

func newScheduler(t *testing.T, k *sim.Kernel, mbps float64, queues ...QueueConfig) (*EgressScheduler, *netem.Link) {
	t.Helper()
	link, err := netem.NewLink(k, "egress", mbps, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEgressScheduler(k, link, QoSConfig{Queues: queues})
	if err != nil {
		t.Fatalf("NewEgressScheduler: %v", err)
	}
	return s, link
}

func TestQoSConfigValidation(t *testing.T) {
	if err := (QoSConfig{}).Validate(); err == nil {
		t.Error("accepted empty queue set")
	}
	if err := (QoSConfig{Queues: []QueueConfig{{ID: 1}, {ID: 1}}}).Validate(); err == nil {
		t.Error("accepted duplicate ids")
	}
	if err := (QoSConfig{Queues: []QueueConfig{{ID: 1, MaxDepth: -1}}}).Validate(); err == nil {
		t.Error("accepted negative depth")
	}
}

func TestStrictPriorityOrdering(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 8, // 1000 B takes 1 ms: easy to saturate
		QueueConfig{ID: 0, Priority: 0},
		QueueConfig{ID: 1, Priority: 10},
	)
	var order []string
	// Fill the link with a best-effort frame, then queue two more
	// best-effort and one priority frame while it transmits.
	s.Enqueue(0, make([]byte, 1000), func() { order = append(order, "be0") })
	s.Enqueue(0, make([]byte, 1000), func() { order = append(order, "be1") })
	s.Enqueue(0, make([]byte, 1000), func() { order = append(order, "be2") })
	s.Enqueue(1, make([]byte, 1000), func() { order = append(order, "prio") })
	k.Run()
	want := []string{"be0", "prio", "be1", "be2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityReducesLatencyUnderCongestion(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 8,
		QueueConfig{ID: 0, Priority: 0},
		QueueConfig{ID: 7, Priority: 100},
	)
	// 20 best-effort frames back to back, one priority frame injected
	// mid-burst.
	var prioAt, lastBEAt time.Duration
	for i := 0; i < 20; i++ {
		s.Enqueue(0, make([]byte, 1000), func() { lastBEAt = k.Now() })
	}
	k.After(2*time.Millisecond, func() {
		s.Enqueue(7, make([]byte, 1000), func() { prioAt = k.Now() })
	})
	k.Run()
	if prioAt == 0 || lastBEAt == 0 {
		t.Fatal("frames not delivered")
	}
	// The priority frame must exit well before the best-effort tail.
	if prioAt > lastBEAt/2 {
		t.Errorf("priority frame at %v vs best-effort tail %v: no preference", prioAt, lastBEAt)
	}
	sent, drops, wait, _, err := s.QueueStats(7)
	if err != nil || sent != 1 || drops != 0 {
		t.Errorf("prio stats = %d/%d/%v", sent, drops, err)
	}
	_, _, beWait, _, err := s.QueueStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if wait >= beWait {
		t.Errorf("priority wait %g not below best-effort wait %g", wait, beWait)
	}
}

func TestTailDrop(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 8, QueueConfig{ID: 0, Priority: 0, MaxDepth: 2})
	delivered := 0
	for i := 0; i < 10; i++ {
		s.Enqueue(0, make([]byte, 1000), func() { delivered++ })
	}
	k.Run()
	// One in flight immediately + 2 queued = 3 delivered, 7 dropped.
	if delivered != 3 {
		t.Errorf("delivered = %d, want 3", delivered)
	}
	_, drops, _, _, err := s.QueueStats(0)
	if err != nil || drops != 7 {
		t.Errorf("drops = %d/%v, want 7", drops, err)
	}
}

func TestUnknownQueueFallsBackToDefault(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 100, QueueConfig{ID: 0, Priority: 0})
	ok := false
	s.Enqueue(99, make([]byte, 100), func() { ok = true })
	k.Run()
	if !ok {
		t.Error("frame to unknown queue vanished")
	}
	if _, _, _, _, err := s.QueueStats(99); err == nil {
		t.Error("QueueStats accepted unknown queue")
	}
}

func TestDefaultQueueWithoutID0(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 100,
		QueueConfig{ID: 5, Priority: 10},
		QueueConfig{ID: 6, Priority: 1},
	)
	ok := false
	s.EnqueueDefault(make([]byte, 100), func() { ok = true })
	k.Run()
	if !ok {
		t.Error("default enqueue vanished")
	}
	// The default must be the lowest-priority queue.
	if sent, _, _, _, _ := s.QueueStats(6); sent != 1 {
		t.Errorf("default went to the wrong queue")
	}
}

func TestQoSWithSimSwitchEnqueueAction(t *testing.T) {
	// End to end: rules steer one flow into the priority queue via the
	// ENQUEUE action; under egress congestion its packets exit first.
	k := sim.New(1)
	cfg := DefaultSimConfig()
	cfg.Datapath = Config{DatapathID: 1, NumPorts: 2}
	sw, err := NewSimSwitch(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	egress, err := netem.NewLink(k, "sw->h2", 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewEgressScheduler(k, egress, QoSConfig{Queues: []QueueConfig{
		{ID: 0, Priority: 0},
		{ID: 1, Priority: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var deliveries []uint32
	sw.SetTransmitEx(func(o Output) {
		if o.Port != 2 {
			return
		}
		q := o.Queue
		sched.Enqueue(o.Queue, o.Frame, func() { deliveries = append(deliveries, q) })
	})

	// Install rules directly: best-effort flow -> output:2 (queue 0),
	// priority flow -> enqueue:2:1.
	beFrame := testFrame(t, "10.1.0.1", 1000, 900)
	prioFrame := testFrame(t, "10.1.0.2", 2000, 900)
	install := func(frame []byte, actions []openflow.Action) {
		parsed, err := parseForTest(frame)
		if err != nil {
			t.Fatal(err)
		}
		fm := openflow.MustEncode(&openflow.FlowMod{
			Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
			Priority: 100, BufferID: openflow.NoBuffer, Actions: actions,
		}, 1)
		sw.DeliverControl(fm)
	}
	install(beFrame, []openflow.Action{&openflow.ActionOutput{Port: 2}})
	install(prioFrame, []openflow.Action{&openflow.ActionEnqueue{Port: 2, QueueID: 1}})
	k.Run()

	// Saturate with best-effort, then send the priority flow.
	for i := 0; i < 10; i++ {
		sw.Ingest(1, beFrame)
	}
	k.RunFor(3 * time.Millisecond)
	sw.Ingest(1, prioFrame)
	k.Run()

	if len(deliveries) != 11 {
		t.Fatalf("deliveries = %d, want 11", len(deliveries))
	}
	// The priority frame (queue 1) must not be last.
	if deliveries[len(deliveries)-1] == 1 {
		t.Errorf("priority frame delivered last: %v", deliveries)
	}
	pos := -1
	for i, q := range deliveries {
		if q == 1 {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 6 {
		t.Errorf("priority frame delivered at position %d of %d: %v", pos, len(deliveries), deliveries)
	}
}

func TestSchedulerPending(t *testing.T) {
	k := sim.New(1)
	s, _ := newScheduler(t, k, 8, QueueConfig{ID: 0, Priority: 0})
	for i := 0; i < 4; i++ {
		s.Enqueue(0, make([]byte, 1000), nil)
	}
	// One in service, three waiting.
	if got := s.Pending(); got != 3 {
		t.Errorf("Pending = %d, want 3", got)
	}
	k.Run()
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after drain = %d, want 0", got)
	}
}
