// Package switchd is the software OpenFlow switch — the testbed's stand-in
// for Open vSwitch. The protocol logic (flow-table matching, buffer
// mechanism, flow_mod/packet_out handling, action application) lives in
// Datapath, which is driven either by the deterministic simulator
// (SimSwitch) or by the live TCP agent (Agent), so both modes exercise the
// same code.
package switchd

import (
	"errors"
	"fmt"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/telemetry"
)

// FailMode selects how the datapath behaves while the control channel is
// down (SetControlDown). The zero value is fail-secure, matching OVS's
// default and the safer posture: installed rules keep forwarding and misses
// keep queueing into the bounded buffer pool — the re-request timer then
// recovers them organically once the channel is restored. Fail-standalone
// instead degrades misses to transparent L2 learning-switch forwarding so
// traffic keeps moving without the controller; the learned MAC table lives
// only for the duration of the outage and is cleared on restore, handing
// authority back to the controller.
type FailMode uint8

const (
	// FailSecure keeps the flow table authoritative and buffers misses while
	// the control channel is down.
	FailSecure FailMode = iota
	// FailStandalone forwards misses via MAC learning while the control
	// channel is down.
	FailStandalone
)

// String names the fail mode.
func (m FailMode) String() string {
	switch m {
	case FailSecure:
		return "fail-secure"
	case FailStandalone:
		return "fail-standalone"
	default:
		return fmt.Sprintf("fail-mode(%d)", uint8(m))
	}
}

// Config describes a datapath.
type Config struct {
	// DatapathID is the switch's OpenFlow identity.
	DatapathID uint64
	// NumPorts is the number of physical ports, numbered 1..NumPorts.
	NumPorts int
	// TableCapacity bounds the flow table (flowtable.Unlimited = none).
	TableCapacity int
	// EvictionPolicy applies when the table is bounded (default EvictLRU).
	EvictionPolicy flowtable.EvictionPolicy
	// Buffer selects the buffer mechanism and its parameters.
	Buffer openflow.FlowBufferConfig
	// BufferCapacity is the number of buffer units (ignored with
	// GranularityNone).
	BufferCapacity int
	// MissSendLen truncates buffered packet_in payloads (default
	// openflow.DefaultMissSendLen).
	MissSendLen int
	// BufferExpiry bounds buffered-packet lifetime (0 = none).
	BufferExpiry time.Duration
	// FailMode selects control-channel-loss behavior (default FailSecure).
	FailMode FailMode
	// Overload, when non-nil, enables the overload-protection layer: pool
	// byte accounting and (if Overload.Ladder is set) the automatic
	// degradation ladder. nil keeps the legacy mechanism untouched.
	Overload *core.OverloadConfig
	// TableLadder couples flow-table occupancy into the degradation
	// ladder: a saturated table (whose rejects and evictions re-raise
	// misses the buffer must then absorb) counts as pressure the same way
	// a saturated pool does. Requires Overload with a Ladder; off by
	// default so table-unaware scenarios are untouched.
	TableLadder bool
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.NumPorts == 0 {
		out.NumPorts = 2
	}
	if out.EvictionPolicy == 0 {
		out.EvictionPolicy = flowtable.EvictLRU
	}
	if out.MissSendLen == 0 {
		out.MissSendLen = openflow.DefaultMissSendLen
	}
	if out.Buffer.Granularity == 0 {
		out.Buffer.Granularity = openflow.GranularityNone
	}
	if out.BufferCapacity == 0 {
		out.BufferCapacity = 256
	}
	if out.Buffer.Granularity == openflow.GranularityFlow && out.Buffer.RerequestTimeoutMs == 0 {
		out.Buffer.RerequestTimeoutMs = 50
	}
	return out
}

// Output is one frame to emit on a port. Queue selects the egress QoS
// queue when the rule used an ENQUEUE action (0 = the port's default
// queue).
type Output struct {
	Port  uint16
	Frame []byte
	Queue uint32
}

// FrameResult is the datapath's decision for one ingress frame.
type FrameResult struct {
	// Outputs are the frames to transmit (table hit, possibly rewritten).
	Outputs []Output
	// Miss is set when the frame missed the table; it carries the buffer
	// mechanism's decision.
	Miss *core.MissResult
	// Matched is the rule that matched, nil on a miss.
	Matched *flowtable.Entry
}

// ErrBadPort reports an out-of-range port number.
var ErrBadPort = errors.New("switchd: bad port")

// Datapath is the protocol core of the switch.
type Datapath struct {
	cfg   Config
	table *flowtable.Table
	mech  core.Mechanism

	rxFrames uint64
	rxBytes  uint64
	txFrames uint64
	txBytes  uint64
	misses   uint64

	// Per-port counters, indexed by port number (slot 0 unused).
	portRxFrames []uint64
	portRxBytes  []uint64
	portTxFrames []uint64
	portTxBytes  []uint64

	// Control-channel fail-mode state. macTable is allocated lazily on the
	// first standalone-forwarded frame and discarded when the channel is
	// restored, so the healthy hot path never touches a map.
	controlDown        bool
	macTable           map[packet.MAC]uint16
	standaloneForwards uint64
	downMisses         uint64

	// Data-plane failure state (DESIGN.md §16). portDown is indexed by port
	// number (slot 0 unused); crashed wipes and gates the whole datapath
	// until Restart.
	portDown []bool
	crashed  bool

	deadPortRefusals uint64          // installs/releases refused for a down egress port
	bufDropsDeadPort uint64          // buffered packets destroyed after a refusal
	txDownDrops      uint64          // outputs suppressed because the egress port is down
	crashBufferLoss  core.BufferLoss // buffered state destroyed by crashes

	// Flow-table management ledger (DESIGN.md §17): every rule that enters
	// the table is eventually accounted active, removed by reason, or lost
	// to a crash wipe, and every refused flow_mod is counted — the closed
	// rule ledger the tablemgmt oracle checks.
	ruleInstalls     uint64    // flow_mod ADDs that appended a new rule
	ruleReplacements uint64    // flow_mod ADDs that replaced an identical match
	tableFullRejects uint64    // flow_mod ADDs refused with all-tables-full
	rulesCleared     uint64    // rules wiped without notification by a crash
	removedByReason  [4]uint64 // indexed by openflow.Removed* reason code

	// Per-datapath scratch reused by HandleFrame so the steady-state packet
	// path (parse → lookup hit → forward) allocates nothing. The returned
	// FrameResult therefore aliases these fields — see HandleFrame's doc for
	// the ownership contract.
	parseScratch packet.Frame
	outScratch   []Output
	missScratch  core.MissResult
	resScratch   FrameResult

	// tel is nil unless telemetry is wired (SetTelemetry); every hook below
	// guards on the nil check so the default hot path pays nothing.
	tel *telemetry.Recorder
}

// NewDatapath builds a datapath from the configuration.
func NewDatapath(cfg Config) (*Datapath, error) {
	cfg = cfg.withDefaults()
	if cfg.NumPorts < 1 {
		return nil, fmt.Errorf("switchd: need at least one port, got %d", cfg.NumPorts)
	}
	table, err := flowtable.New(cfg.TableCapacity, cfg.EvictionPolicy)
	if err != nil {
		return nil, fmt.Errorf("switchd: building flow table: %w", err)
	}
	var mech core.Mechanism
	var err2 error
	if cfg.Overload != nil {
		mech, err2 = core.NewOverloadMechanism(cfg.Buffer, cfg.BufferCapacity, cfg.MissSendLen, cfg.BufferExpiry, *cfg.Overload)
	} else {
		mech, err2 = core.NewMechanism(cfg.Buffer, cfg.BufferCapacity, cfg.MissSendLen, cfg.BufferExpiry)
	}
	if err2 != nil {
		return nil, fmt.Errorf("switchd: building buffer mechanism: %w", err2)
	}
	return &Datapath{
		cfg:          cfg,
		table:        table,
		mech:         mech,
		portRxFrames: make([]uint64, cfg.NumPorts+1),
		portRxBytes:  make([]uint64, cfg.NumPorts+1),
		portTxFrames: make([]uint64, cfg.NumPorts+1),
		portTxBytes:  make([]uint64, cfg.NumPorts+1),
		portDown:     make([]bool, cfg.NumPorts+1),
	}, nil
}

// Config reports the effective (defaulted) configuration.
func (d *Datapath) Config() Config { return d.cfg }

// Table exposes the flow table.
func (d *Datapath) Table() *flowtable.Table { return d.table }

// Mechanism exposes the buffer mechanism.
func (d *Datapath) Mechanism() core.Mechanism { return d.mech }

// SetTelemetry wires the packet-lifecycle recorder into the datapath and
// its buffer mechanism: table hits/misses and NetFlow observations are
// emitted here, buffer enqueues by the mechanism, and drain spans (with
// per-flow residency credit) on release. nil disables (the default).
func (d *Datapath) SetTelemetry(rec *telemetry.Recorder) {
	d.tel = rec
	if m, ok := d.mech.(interface{ SetTelemetry(*telemetry.Recorder) }); ok {
		m.SetTelemetry(rec)
	}
}

// SetControlDown flips the datapath in or out of its configured fail mode.
// Restoring the channel clears any outage-learned MAC table: the controller
// is authoritative again and stale learning must not shadow its rules.
func (d *Datapath) SetControlDown(down bool) {
	if d.controlDown == down {
		return
	}
	d.controlDown = down
	if !down {
		d.macTable = nil
	}
}

// ControlDown reports whether the datapath currently treats the control
// channel as dead.
func (d *Datapath) ControlDown() bool { return d.controlDown }

// FailStats reports fail-mode counters: frames forwarded by the standalone
// learning switch, and table misses taken while the control channel was
// down (either mode).
func (d *Datapath) FailStats() (standaloneForwards, downMisses uint64) {
	return d.standaloneForwards, d.downMisses
}

// Features builds the switch's FEATURES_REPLY.
func (d *Datapath) Features() *openflow.FeaturesReply {
	ports := make([]openflow.PhyPort, d.cfg.NumPorts)
	for i := range ports {
		ports[i] = d.PhyPortDesc(uint16(i + 1))
	}
	nbuf := uint32(0)
	if d.cfg.Buffer.Granularity != openflow.GranularityNone {
		nbuf = uint32(d.cfg.BufferCapacity)
	}
	return &openflow.FeaturesReply{
		DatapathID:   d.cfg.DatapathID,
		NBuffers:     nbuf,
		NTables:      1,
		Capabilities: openflow.CapFlowStats | openflow.CapTableStats | openflow.CapPortStats,
		Actions:      1<<uint(openflow.ActionTypeOutput) | 1<<uint(openflow.ActionTypeSetDLSrc) | 1<<uint(openflow.ActionTypeSetDLDst),
		Ports:        ports,
	}
}

// HandleFrame processes one ingress frame: flow-table lookup, then either
// action application (hit) or the buffer mechanism (miss).
//
// The returned FrameResult — including its Outputs slice and Miss pointer —
// is scratch owned by the datapath and is valid only until the next
// HandleFrame call; callers that keep any of it across frames must copy
// (DESIGN.md §10). The Output frame bytes themselves are not scratch: they
// alias the caller's frame (or a rewritten copy) and stay valid as long as
// the caller's buffer does.
func (d *Datapath) HandleFrame(now time.Duration, inPort uint16, frame []byte) (*FrameResult, error) {
	if inPort < 1 || int(inPort) > d.cfg.NumPorts {
		return nil, fmt.Errorf("%w: in_port %d of %d", ErrBadPort, inPort, d.cfg.NumPorts)
	}
	d.rxFrames++
	d.rxBytes += uint64(len(frame))
	d.portRxFrames[inPort]++
	d.portRxBytes[inPort] += uint64(len(frame))
	parsed := &d.parseScratch
	if err := packet.ParseEthernetInto(parsed, frame); err != nil {
		return nil, fmt.Errorf("switchd: unparseable frame on port %d: %w", inPort, err)
	}
	if d.tel != nil {
		d.tel.FlowObserve(now, parsed.Key(), len(frame))
	}
	if e := d.table.Lookup(now, inPort, parsed, len(frame)); e != nil {
		outs, err := d.applyActions(now, inPort, frame, e.Actions, d.outScratch[:0])
		if err != nil {
			return nil, err
		}
		d.outScratch = outs
		d.countTx(outs)
		if d.tel != nil {
			d.tel.Instant(telemetry.KindForward, now, telemetry.HashKey(parsed.Key()), uint32(inPort), uint32(len(frame)))
		}
		d.resScratch = FrameResult{Outputs: outs, Matched: e}
		return &d.resScratch, nil
	}
	d.misses++
	if d.tel != nil {
		d.tel.Instant(telemetry.KindMiss, now, telemetry.HashKey(parsed.Key()), uint32(inPort), uint32(len(frame)))
	}
	if d.controlDown {
		d.downMisses++
		if d.cfg.FailMode == FailStandalone {
			return d.standaloneForward(inPort, parsed, frame)
		}
		// Fail-secure: fall through to the mechanism — misses keep queueing
		// into the bounded pool; the packet_in is lost on the dead channel
		// and the re-request timer recovers the flow after restore.
	}
	d.missScratch = d.mech.HandleMiss(now, inPort, frame, parsed.Key())
	if d.missScratch.Standalone {
		// The degradation ladder's last rung: stop consulting the controller
		// and handle the miss locally, reusing the fail-standalone path.
		return d.standaloneForward(inPort, parsed, frame)
	}
	if d.macTable != nil && !d.controlDown {
		// First normally-routed miss after the ladder stepped back down:
		// discard overload-learned MACs so stale learning cannot shadow the
		// controller's rules (outage-learned tables are cleared on restore
		// by SetControlDown).
		d.macTable = nil
	}
	d.resScratch = FrameResult{Miss: &d.missScratch}
	return &d.resScratch, nil
}

// standaloneForward is the fail-standalone degraded path: transparent L2
// learning-switch forwarding for table misses while the controller is
// unreachable. Learned entries exist only for the outage's duration.
func (d *Datapath) standaloneForward(inPort uint16, parsed *packet.Frame, frame []byte) (*FrameResult, error) {
	if d.macTable == nil {
		d.macTable = make(map[packet.MAC]uint16)
	}
	d.macTable[parsed.SrcMAC] = inPort
	outs := d.outScratch[:0]
	var err error
	if port, known := d.macTable[parsed.DstMAC]; known && !parsed.DstMAC.IsBroadcast() {
		if port != inPort {
			outs, err = d.emitAction(outs, inPort, frame, port, 0)
		}
	} else {
		outs, err = d.emitAction(outs, inPort, frame, openflow.PortFlood, 0)
	}
	if err != nil {
		return nil, err
	}
	d.outScratch = outs
	d.countTx(outs)
	d.standaloneForwards++
	d.resScratch = FrameResult{Outputs: outs}
	return &d.resScratch, nil
}

// ControlResult is the effect of one controller-to-switch message.
type ControlResult struct {
	// Outputs are frames to transmit (released buffered packets or
	// packet_out data, after action application).
	Outputs []Output
	// Removed are rules that left the table (replacement eviction or
	// explicit delete) for which flow_removed may be due.
	Removed []flowtable.Removed
	// Reply is a message to send back to the controller (error, barrier
	// reply, config reply, stats), nil if none.
	Reply openflow.Message
}

// HandleFlowMod installs, modifies or deletes rules. A valid BufferID also
// releases the buffered packet(s) through the new rule's actions, per the
// spec's combined flow_mod semantics.
func (d *Datapath) HandleFlowMod(now time.Duration, fm *openflow.FlowMod) (*ControlResult, error) {
	res := &ControlResult{}
	switch fm.Command {
	case openflow.FlowModAdd, openflow.FlowModModify, openflow.FlowModModifyStrict:
		if d.deadOutput(fm.Actions) {
			// Refuse to install a rule egressing a down port: the switch-local
			// backstop that keeps a racing (stale-topology) controller from
			// planting a blackhole rule. The buffered packet's fate depends on
			// the mechanism — see refuseBuffered.
			res.Reply = badOutPortError()
			d.refuseBuffered(now, fm.BufferID)
			return res, nil
		}
		entry := &flowtable.Entry{
			Match:       fm.Match,
			Priority:    fm.Priority,
			Actions:     fm.Actions,
			Cookie:      fm.Cookie,
			IdleTimeout: time.Duration(fm.IdleTimeout) * time.Second,
			HardTimeout: time.Duration(fm.HardTimeout) * time.Second,
			Flags:       fm.Flags,
		}
		lenBefore := d.table.Len()
		victim, err := d.table.Insert(now, entry)
		if err != nil {
			if errors.Is(err, flowtable.ErrTableFull) {
				d.tableFullRejects++
				res.Reply = &openflow.ErrorMsg{
					ErrType: openflow.ErrTypeFlowModFailed,
					Code:    openflow.ErrCodeAllTablesFull,
				}
				return res, nil
			}
			return nil, fmt.Errorf("switchd: flow_mod insert: %w", err)
		}
		if victim == nil && d.table.Len() == lenBefore {
			d.ruleReplacements++
		} else {
			d.ruleInstalls++
		}
		if victim != nil {
			d.countRemoved(*victim)
			res.Removed = append(res.Removed, *victim)
		}
	case openflow.FlowModDelete, openflow.FlowModDeleteStrict:
		strict := fm.Command == openflow.FlowModDeleteStrict
		deleted := d.table.Delete(now, &fm.Match, fm.Priority, strict, fm.OutPort)
		d.countRemoved(deleted...)
		res.Removed = append(res.Removed, deleted...)
		return res, nil
	default:
		res.Reply = &openflow.ErrorMsg{
			ErrType: openflow.ErrTypeFlowModFailed,
			Code:    openflow.ErrCodeBadCommand,
		}
		return res, nil
	}

	if fm.BufferID != openflow.NoBuffer {
		outs, err := d.releaseThrough(now, fm.BufferID, fm.Actions)
		if err != nil {
			if errors.Is(err, core.ErrUnknownBufferID) {
				res.Reply = bufferUnknownError()
				return res, nil
			}
			return nil, err
		}
		res.Outputs = outs
	}
	return res, nil
}

// HandlePacketOut emits a packet: a buffered one (valid BufferID) or the
// message's own payload.
func (d *Datapath) HandlePacketOut(now time.Duration, po *openflow.PacketOut) (*ControlResult, error) {
	res := &ControlResult{}
	if d.deadOutput(po.Actions) {
		res.Reply = badOutPortError()
		d.refuseBuffered(now, po.BufferID)
		if po.BufferID == openflow.NoBuffer && len(po.Data) > 0 {
			// The no-buffer mechanism's packet rides in the message itself;
			// refusing the release loses it just as surely as dropping a unit.
			d.bufDropsDeadPort++
		}
		return res, nil
	}
	if po.BufferID != openflow.NoBuffer {
		if len(po.Actions) == 0 {
			// Empty action list: drop the buffered packet(s).
			if err := d.mech.Drop(now, po.BufferID); err != nil {
				if errors.Is(err, core.ErrUnknownBufferID) {
					res.Reply = bufferUnknownError()
					return res, nil
				}
				return nil, err
			}
			return res, nil
		}
		outs, err := d.releaseThrough(now, po.BufferID, po.Actions)
		if err != nil {
			if errors.Is(err, core.ErrUnknownBufferID) {
				res.Reply = bufferUnknownError()
				return res, nil
			}
			return nil, err
		}
		res.Outputs = outs
		return res, nil
	}
	if len(po.Data) == 0 {
		return res, nil
	}
	outs, err := d.applyActions(now, po.InPort, po.Data, po.Actions, nil)
	if err != nil {
		return nil, err
	}
	d.countTx(outs)
	res.Outputs = outs
	return res, nil
}

// releaseThrough drains the buffer unit and applies the action list to each
// released packet in arrival order.
func (d *Datapath) releaseThrough(now time.Duration, bufferID uint32, actions []openflow.Action) ([]Output, error) {
	released, err := d.mech.Release(now, bufferID)
	if err != nil {
		return nil, err
	}
	var outs []Output
	for _, r := range released {
		if d.tel != nil {
			// Buffer residency: stored-at to released-at, attributed to the
			// packet's flow. Parsing the key back out of the stored bytes only
			// happens on this telemetry-enabled path.
			if key, err := packet.ParseKey(r.Data); err == nil {
				d.tel.Span(telemetry.KindBufferDrain, r.BufferedAt, now,
					telemetry.HashKey(key), bufferID, uint32(len(r.Data)))
				d.tel.FlowResidency(key, now-r.BufferedAt)
			}
		}
		o, err := d.applyActions(now, r.InPort, r.Data, actions, nil)
		if err != nil {
			return nil, err
		}
		outs = append(outs, o...)
	}
	d.countTx(outs)
	return outs, nil
}

func bufferUnknownError() openflow.Message {
	return &openflow.ErrorMsg{
		ErrType: openflow.ErrTypeBadRequest,
		Code:    openflow.ErrCodeBadBufferID,
	}
}

// applyActions runs an OpenFlow 1.0 action list over a frame, appending the
// resulting transmissions to outs (which may be a caller-owned scratch slice
// re-sliced to length 0, or nil for a fresh allocation). Header rewrites
// mutate a copy; output actions emit the current frame state. It is written
// without closures so the steady-state hit path stays allocation-free.
func (d *Datapath) applyActions(_ time.Duration, inPort uint16, frame []byte, actions []openflow.Action, outs []Output) ([]Output, error) {
	cur := frame
	modified := false
	var err error
	for _, a := range actions {
		switch act := a.(type) {
		case *openflow.ActionOutput:
			if outs, err = d.emitAction(outs, inPort, cur, act.Port, 0); err != nil {
				return nil, err
			}
		case *openflow.ActionEnqueue:
			if outs, err = d.emitAction(outs, inPort, cur, act.Port, act.QueueID); err != nil {
				return nil, err
			}
		case *openflow.ActionSetDLSrc:
			cur, modified = ensureFrameCopy(cur, modified)
			copy(cur[6:12], act.Addr[:])
		case *openflow.ActionSetDLDst:
			cur, modified = ensureFrameCopy(cur, modified)
			copy(cur[0:6], act.Addr[:])
		case *openflow.ActionSetNWTOS:
			cur, modified = ensureFrameCopy(cur, modified)
			if len(cur) >= packet.EthernetHeaderLen+packet.IPv4HeaderLen {
				rewriteTOS(cur, act.TOS)
			}
		default:
			return nil, fmt.Errorf("switchd: unsupported action %v", a.ActionType())
		}
	}
	return outs, nil
}

// emitAction appends the transmissions for one output/enqueue action.
// Already-appended outputs keep whatever frame slice they were emitted with:
// a later rewrite copies cur first, so earlier emissions are not affected.
func (d *Datapath) emitAction(outs []Output, inPort uint16, cur []byte, port uint16, queue uint32) ([]Output, error) {
	switch port {
	case openflow.PortInPort:
		if d.portDown[inPort] {
			d.txDownDrops++
			return outs, nil
		}
		outs = append(outs, Output{Port: inPort, Frame: cur, Queue: queue})
	case openflow.PortFlood, openflow.PortAll:
		for p := 1; p <= d.cfg.NumPorts; p++ {
			if uint16(p) == inPort && port == openflow.PortFlood {
				continue
			}
			if d.portDown[p] {
				d.txDownDrops++
				continue
			}
			outs = append(outs, Output{Port: uint16(p), Frame: cur, Queue: queue})
		}
	case openflow.PortController, openflow.PortLocal, openflow.PortNone, openflow.PortTable, openflow.PortNormal:
		// Not meaningful as a datapath output in this testbed; ignore.
	default:
		if port < 1 || int(port) > d.cfg.NumPorts {
			return nil, fmt.Errorf("%w: output port %d", ErrBadPort, port)
		}
		if d.portDown[port] {
			// Physical-layer backstop: a rule that raced past the install-time
			// check (installed before the port died, matched before eviction
			// lands) must not put frames on a dead wire.
			d.txDownDrops++
			return outs, nil
		}
		outs = append(outs, Output{Port: port, Frame: cur, Queue: queue})
	}
	return outs, nil
}

// ensureFrameCopy returns a private copy of cur on the first rewrite so the
// caller's ingress buffer is never mutated.
func ensureFrameCopy(cur []byte, modified bool) ([]byte, bool) {
	if modified {
		return cur, true
	}
	c := make([]byte, len(cur))
	copy(c, cur)
	return c, true
}

// rewriteTOS updates the IPv4 TOS byte and fixes the header checksum.
func rewriteTOS(frame []byte, tos uint8) {
	ip := frame[packet.EthernetHeaderLen:]
	ip[1] = tos
	ip[10], ip[11] = 0, 0
	ihl := int(ip[0]&0x0f) * 4
	if ihl < packet.IPv4HeaderLen || ihl > len(ip) {
		return
	}
	sum := packet.Checksum(ip[:ihl])
	ip[10] = byte(sum >> 8)
	ip[11] = byte(sum)
}

func (d *Datapath) countTx(outs []Output) {
	for _, o := range outs {
		d.txFrames++
		d.txBytes += uint64(len(o.Frame))
		if int(o.Port) < len(d.portTxFrames) {
			d.portTxFrames[o.Port]++
			d.portTxBytes[o.Port] += uint64(len(o.Frame))
		}
	}
}

// ExpireRules removes timed-out rules, returning them for flow_removed
// notifications.
func (d *Datapath) ExpireRules(now time.Duration) []flowtable.Removed {
	removed := d.table.Expire(now)
	d.countRemoved(removed...)
	return removed
}

// countRemoved tallies removals into the per-reason ledger.
func (d *Datapath) countRemoved(rs ...flowtable.Removed) {
	for _, r := range rs {
		if int(r.Reason) < len(d.removedByReason) {
			d.removedByReason[r.Reason]++
		}
		if d.tel != nil {
			d.tel.Instant(telemetry.KindFlowEvict, r.At, 0, uint32(r.Reason), uint32(r.Bytes))
		}
	}
}

// FlowRemovedFor builds the flow_removed notification for a removed rule if
// the rule asked for one (OFPFF_SEND_FLOW_REM), else nil. The counters come
// from the Removed record's snapshot, taken at the moment of removal: the
// Entry object may have been replaced or mutated between removal and
// notification, and flow_removed must report what the rule forwarded while
// it was installed.
func (d *Datapath) FlowRemovedFor(r flowtable.Removed) *openflow.FlowRemoved {
	if r.Entry.Flags&openflow.FlowModFlagSendFlowRem == 0 {
		return nil
	}
	return &openflow.FlowRemoved{
		Match:       r.Entry.Match,
		Cookie:      r.Entry.Cookie,
		Priority:    r.Entry.Priority,
		Reason:      r.Reason,
		DurationSec: uint32(r.Age / time.Second),
		DurationNs:  uint32(r.Age % time.Second),
		IdleTimeout: uint16(r.Entry.IdleTimeout / time.Second),
		PacketCount: r.Packets,
		ByteCount:   r.Bytes,
	}
}

// TableMgmtStats is the datapath's flow-table management ledger. When no
// rules are in flight the ledger closes: Installs == Active + every
// RemovedBy* bucket + Cleared (replacements and rejects are accounted
// separately and do not change the active count).
type TableMgmtStats struct {
	Installs      uint64
	Replacements  uint64
	Rejects       uint64
	Cleared       uint64
	Active        int
	RemovedIdle   uint64
	RemovedHard   uint64
	RemovedDelete uint64
	RemovedEvict  uint64
}

// LedgerGap reports how far the rule ledger is from closing; zero means
// every installed rule is accounted for.
func (s TableMgmtStats) LedgerGap() int64 {
	return int64(s.Installs) - (int64(s.Active) + int64(s.RemovedIdle) +
		int64(s.RemovedHard) + int64(s.RemovedDelete) + int64(s.RemovedEvict) +
		int64(s.Cleared))
}

// TableMgmt reports the flow-table management ledger.
func (d *Datapath) TableMgmt() TableMgmtStats {
	return TableMgmtStats{
		Installs:      d.ruleInstalls,
		Replacements:  d.ruleReplacements,
		Rejects:       d.tableFullRejects,
		Cleared:       d.rulesCleared,
		Active:        d.table.Len(),
		RemovedIdle:   d.removedByReason[openflow.RemovedIdleTimeout],
		RemovedHard:   d.removedByReason[openflow.RemovedHardTimeout],
		RemovedDelete: d.removedByReason[openflow.RemovedDelete],
		RemovedEvict:  d.removedByReason[openflow.RemovedEviction],
	}
}

// TablePressure reports the table's occupancy fraction (0 when unbounded)
// — the input the degradation ladder couples on when the switch is
// configured to treat table saturation like buffer saturation.
func (d *Datapath) TablePressure() float64 {
	if cap := d.table.Capacity(); cap > 0 {
		return float64(d.table.Len()) / float64(cap)
	}
	return 0
}

// Stats reports datapath traffic counters.
func (d *Datapath) Stats() (rxFrames, rxBytes, txFrames, txBytes, misses uint64) {
	return d.rxFrames, d.rxBytes, d.txFrames, d.txBytes, d.misses
}
