package switchd

import (
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"sdnbuffer/internal/core"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/telemetry"
)

// ErrEchoTimeout reports that the controller stopped answering keepalive
// probes. It is delivered through OnDisconnect (inspect with errors.Is) so
// callers can tell a silent controller from a torn connection.
var ErrEchoTimeout = errors.New("switchd: echo keepalive timed out")

// ReconnectConfig enables automatic redial after the control channel dies.
// Waits grow exponentially from InitialBackoff by Multiplier up to
// MaxBackoff, with a uniform random fraction Jitter of the current backoff
// added on top so a fleet of switches does not redial in lockstep.
type ReconnectConfig struct {
	// Enable turns automatic reconnection on.
	Enable bool
	// InitialBackoff is the first wait (default 100ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the wait (default 5s).
	MaxBackoff time.Duration
	// Multiplier grows the wait per failed attempt (default 2).
	Multiplier float64
	// Jitter adds up to this fraction of the current backoff to each wait
	// (e.g. 0.2 adds 0–20%). 0 disables jitter.
	Jitter float64
	// MaxAttempts gives up after this many failed dials (0 = keep trying).
	MaxAttempts int
	// Seed fixes the jitter RNG for reproducible tests (0 seeds from the
	// clock).
	Seed int64
}

func (rc ReconnectConfig) withDefaults() ReconnectConfig {
	if rc.InitialBackoff <= 0 {
		rc.InitialBackoff = 100 * time.Millisecond
	}
	if rc.MaxBackoff <= 0 {
		rc.MaxBackoff = 5 * time.Second
	}
	if rc.Multiplier < 1 {
		rc.Multiplier = 2
	}
	if rc.Jitter < 0 {
		rc.Jitter = 0
	}
	return rc
}

// AgentConfig configures the live-mode switch.
type AgentConfig struct {
	Datapath Config
	// Logger receives lifecycle messages; nil silences them.
	Logger *log.Logger
	// EchoInterval enables a keepalive loop: the agent probes the
	// controller with ECHO_REQUEST at this interval and reports a dead
	// control channel through OnDisconnect when a probe goes unanswered
	// for two intervals (the error matches ErrEchoTimeout). 0 disables
	// keepalive.
	EchoInterval time.Duration
	// OnDisconnect is called (once per connection) when the control
	// channel dies — read failure or missed keepalive. It runs on an agent
	// goroutine and must not block. With Reconnect.Enable the agent
	// additionally redials on its own; without it, typical use is
	// scheduling a reconnect by hand.
	OnDisconnect func(err error)
	// Reconnect configures automatic redial with exponential backoff.
	Reconnect ReconnectConfig
	// OnReconnect is called after a successful automatic reconnect with
	// the number of dial attempts it took. Runs on an agent goroutine and
	// must not block.
	OnReconnect func(attempts int)
	// DialTimeout bounds each Connect (and automatic redial) attempt.
	// 0 means the operating system's default.
	DialTimeout time.Duration
	// WriteTimeout bounds each control-channel write; past it the write
	// fails and the connection is reported dead rather than wedging the
	// datapath behind a stalled controller socket. 0 disables the bound.
	WriteTimeout time.Duration
}

// Agent is the live-mode switch: a Datapath driven by a real OpenFlow TCP
// connection to a controller, with frames injected by in-process hosts.
// It is the Open vSwitch role in the paper's Fig. 1, runnable over loopback
// or a real network.
type Agent struct {
	logger       *log.Logger
	echoInterval time.Duration
	dialTimeout  time.Duration
	writeTimeout time.Duration
	onDisconnect func(err error)
	onReconnect  func(attempts int)
	reconnect    ReconnectConfig
	rng          *rand.Rand    // jitter source; used only by reconnectLoop
	stop         chan struct{} // closed by Close to abort backoff sleeps

	mu       sync.Mutex
	dp       *Datapath
	conn     net.Conn
	addr     string // last Connect target, for automatic redial
	writeMu  sync.Mutex
	writer   *openflow.Writer // per-connection encode buffer, guarded by writeMu
	start    time.Time
	nextXid  uint32
	tickT    *time.Timer
	echoT    *time.Timer
	echoGen  uint64 // invalidates in-flight echo timer fires on Close/reconnect
	lastEcho time.Time
	disc     bool // OnDisconnect already fired for this connection

	transmit func(port uint16, frame []byte)

	wg     sync.WaitGroup
	closed bool
}

// NewAgent builds the live switch.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	dp, err := NewDatapath(cfg.Datapath)
	if err != nil {
		return nil, err
	}
	rc := cfg.Reconnect.withDefaults()
	seed := rc.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Agent{
		dp:           dp,
		logger:       cfg.Logger,
		echoInterval: cfg.EchoInterval,
		dialTimeout:  cfg.DialTimeout,
		writeTimeout: cfg.WriteTimeout,
		onDisconnect: cfg.OnDisconnect,
		onReconnect:  cfg.OnReconnect,
		reconnect:    rc,
		rng:          rand.New(rand.NewSource(seed)),
		stop:         make(chan struct{}),
		start:        time.Now(),
	}, nil
}

// SetTransmit wires the data-plane egress callback. Must be set before
// frames flow; the callback runs on agent goroutines and must not block.
func (a *Agent) SetTransmit(fn func(port uint16, frame []byte)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.transmit = fn
}

// Datapath exposes the protocol core. The datapath is guarded by the
// agent's lock while the agent is connected; for concurrent inspection use
// the locked accessors (BufferGranularity, TableLen, Stats) instead.
func (a *Agent) Datapath() *Datapath { return a.dp }

// SetTelemetry wires the packet-lifecycle recorder into the live agent's
// datapath (table hits/misses, buffer enqueue/drain spans, NetFlow
// records). The recorder is single-goroutine like the datapath it
// observes: set it before traffic flows and read it only after Close. nil
// disables (the default).
func (a *Agent) SetTelemetry(rec *telemetry.Recorder) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.dp.SetTelemetry(rec)
}

// BufferGranularity reports the active buffer mechanism, safely.
func (a *Agent) BufferGranularity() openflow.BufferGranularity {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dp.Mechanism().Granularity()
}

// TableLen reports the number of installed rules, safely.
func (a *Agent) TableLen() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dp.Table().Len()
}

// Stats reports the datapath traffic counters, safely.
func (a *Agent) Stats() (rxFrames, rxBytes, txFrames, txBytes, misses uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dp.Stats()
}

// ControlDown reports whether the datapath is currently in its fail mode,
// safely.
func (a *Agent) ControlDown() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dp.ControlDown()
}

func (a *Agent) logf(format string, args ...any) {
	if a.logger != nil {
		a.logger.Printf(format, args...)
	}
}

// now reports the agent-relative clock the datapath runs on.
func (a *Agent) now() time.Duration { return time.Since(a.start) }

// Connect dials the controller and starts the message loop. It performs the
// OpenFlow handshake inline and returns once the connection is serving.
func (a *Agent) Connect(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, a.dialTimeout)
	if err != nil {
		return fmt.Errorf("switchd: dialing controller %s: %w", addr, err)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("switchd: agent closed")
	}
	a.conn = conn
	a.addr = addr
	a.writer = openflow.NewWriter(conn)
	a.disc = false
	a.lastEcho = time.Now()
	a.echoGen++ // invalidate probes armed for the previous connection
	a.mu.Unlock()

	if err := a.send(&openflow.Hello{}, a.xid()); err != nil {
		return err
	}
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		a.readLoop(conn)
	}()
	if a.echoInterval > 0 {
		a.mu.Lock()
		a.armEchoLocked()
		a.mu.Unlock()
	}
	return nil
}

// armEchoLocked schedules the next keepalive probe. Callers hold a.mu. The
// probe captures the current echo generation: Close and reconnect bump it,
// so a timer fire already in flight when the agent closes or redials finds
// itself stale and does nothing — the timer cannot act after Close.
func (a *Agent) armEchoLocked() {
	if a.closed || a.echoInterval <= 0 {
		return
	}
	if a.echoT != nil {
		a.echoT.Stop()
	}
	gen := a.echoGen
	a.echoT = time.AfterFunc(a.echoInterval, func() { a.echoProbe(gen) })
}

func (a *Agent) echoProbe(gen uint64) {
	a.mu.Lock()
	stale := a.closed || gen != a.echoGen
	dead := time.Since(a.lastEcho) > 2*a.echoInterval
	a.mu.Unlock()
	if stale {
		return
	}
	if dead {
		a.reportDisconnect(fmt.Errorf("%w: controller unresponsive for %v", ErrEchoTimeout, 2*a.echoInterval))
		return
	}
	if err := a.send(&openflow.EchoRequest{Data: []byte("keepalive")}, a.xid()); err != nil {
		a.reportDisconnect(fmt.Errorf("switchd: keepalive send: %w", err))
		return
	}
	a.mu.Lock()
	a.armEchoLocked()
	a.mu.Unlock()
}

// reportDisconnect fires OnDisconnect once per connection, flips the
// datapath into its fail mode, closes the dead connection (unblocking the
// read loop after an echo timeout), and — when automatic reconnection is
// enabled — starts the backoff redial loop.
func (a *Agent) reportDisconnect(err error) {
	a.mu.Lock()
	fire := !a.disc && !a.closed
	a.disc = true
	cb := a.onDisconnect
	var conn net.Conn
	spawn := false
	if fire {
		a.dp.SetControlDown(true)
		conn = a.conn
		a.conn = nil
		a.writer = nil
		if a.reconnect.Enable {
			// wg.Add happens strictly before Close sets a.closed (both under
			// a.mu), and Close only calls wg.Wait after that — so this Add
			// never races a Wait at counter zero.
			a.wg.Add(1)
			spawn = true
		}
	}
	a.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
	a.logf("switch: control channel down: %v", err)
	if fire && cb != nil {
		cb(err)
	}
	if spawn {
		go a.reconnectLoop()
	}
}

// reconnectLoop redials the controller with exponential backoff + jitter
// until it succeeds, exhausts MaxAttempts, or the agent closes.
func (a *Agent) reconnectLoop() {
	defer a.wg.Done()
	rc := a.reconnect
	backoff := rc.InitialBackoff
	for attempt := 1; ; attempt++ {
		if rc.MaxAttempts > 0 && attempt > rc.MaxAttempts {
			a.logf("switch: reconnect: giving up after %d attempts", rc.MaxAttempts)
			return
		}
		wait := backoff
		if rc.Jitter > 0 {
			wait += time.Duration(a.rng.Float64() * rc.Jitter * float64(backoff))
		}
		select {
		case <-a.stop:
			return
		case <-time.After(wait):
		}
		a.mu.Lock()
		addr := a.addr
		a.mu.Unlock()
		if err := a.Connect(addr); err != nil {
			a.logf("switch: reconnect attempt %d: %v", attempt, err)
			backoff = time.Duration(float64(backoff) * rc.Multiplier)
			if backoff > rc.MaxBackoff {
				backoff = rc.MaxBackoff
			}
			continue
		}
		a.mu.Lock()
		a.dp.SetControlDown(false)
		cb := a.onReconnect
		a.mu.Unlock()
		a.logf("switch: reconnected after %d attempt(s)", attempt)
		if cb != nil {
			cb(attempt)
		}
		return
	}
}

func (a *Agent) xid() uint32 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.nextXid++
	return a.nextXid
}

func (a *Agent) send(m openflow.Message, xid uint32) error {
	a.mu.Lock()
	w, conn := a.writer, a.conn
	a.mu.Unlock()
	if w == nil {
		return fmt.Errorf("switchd: not connected")
	}
	a.writeMu.Lock()
	if a.writeTimeout > 0 {
		_ = conn.SetWriteDeadline(time.Now().Add(a.writeTimeout))
	}
	err := w.WriteMessage(m, xid)
	a.writeMu.Unlock()
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		// A write that can't complete within the bound means the controller
		// socket is wedged: treat it like a missed keepalive, not a lost
		// message — tear the connection down (readLoop unblocks on the
		// close) so the reconnect path can take over.
		a.reportDisconnect(fmt.Errorf("switchd: control write stalled: %w", err))
	}
	return err
}

func (a *Agent) readLoop(conn net.Conn) {
	r := openflow.NewReader(conn)
	for {
		m, xid, err := r.ReadMessage()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				a.logf("switch: read: %v", err)
			}
			a.reportDisconnect(fmt.Errorf("switchd: control read: %w", err))
			return
		}
		a.mu.Lock()
		a.lastEcho = time.Now() // any inbound traffic proves liveness
		a.mu.Unlock()
		if err := a.dispatch(m, xid); err != nil {
			a.logf("switch: handling %v: %v", m.Type(), err)
		}
	}
}

func (a *Agent) dispatch(m openflow.Message, xid uint32) error {
	switch t := m.(type) {
	case *openflow.Hello:
		return nil
	case *openflow.EchoRequest:
		return a.send(&openflow.EchoReply{Data: t.Data}, xid)
	case *openflow.FeaturesRequest:
		a.mu.Lock()
		fr := a.dp.Features()
		a.mu.Unlock()
		return a.send(fr, xid)
	case *openflow.GetConfigRequest:
		a.mu.Lock()
		msl := uint16(a.dp.cfg.MissSendLen)
		a.mu.Unlock()
		return a.send(&openflow.GetConfigReply{Config: openflow.SwitchConfig{MissSendLen: msl}}, xid)
	case *openflow.SetConfig:
		a.mu.Lock()
		if t.Config.MissSendLen > 0 {
			a.dp.cfg.MissSendLen = int(t.Config.MissSendLen)
		}
		a.mu.Unlock()
		return nil
	case *openflow.BarrierRequest:
		return a.send(&openflow.BarrierReply{}, xid)
	case *openflow.StatsRequest:
		a.mu.Lock()
		sr := a.dp.HandleStatsRequest(a.now(), t)
		a.mu.Unlock()
		if sr == nil {
			return a.send(&openflow.ErrorMsg{
				ErrType: openflow.ErrTypeBadRequest,
				Code:    openflow.ErrCodeBadType,
			}, xid)
		}
		return a.send(sr, xid)
	case *openflow.FlowMod:
		return a.control(xid, func(now time.Duration) (*ControlResult, error) {
			return a.dp.HandleFlowMod(now, t)
		})
	case *openflow.PacketOut:
		return a.control(xid, func(now time.Duration) (*ControlResult, error) {
			return a.dp.HandlePacketOut(now, t)
		})
	case *openflow.Vendor:
		return a.handleVendor(t, xid)
	default:
		a.logf("switch: ignoring %v", m.Type())
		return nil
	}
}

// control runs a datapath mutation under the lock and emits its effects.
func (a *Agent) control(xid uint32, f func(now time.Duration) (*ControlResult, error)) error {
	a.mu.Lock()
	res, err := f(a.now())
	var outs []Output
	var removed []*openflow.FlowRemoved
	var reply openflow.Message
	if err == nil && res != nil {
		outs = res.Outputs
		reply = res.Reply
		for _, r := range res.Removed {
			if fr := a.dp.FlowRemovedFor(r); fr != nil {
				removed = append(removed, fr)
			}
		}
	}
	tx := a.transmit
	a.mu.Unlock()
	if err != nil {
		return err
	}
	for _, o := range outs {
		if tx != nil {
			tx(o.Port, o.Frame)
		}
	}
	for _, fr := range removed {
		if err := a.send(fr, xid); err != nil {
			return err
		}
	}
	if reply != nil {
		if err := a.send(reply, xid); err != nil {
			return err
		}
	}
	a.rearmTick()
	return nil
}

func (a *Agent) handleVendor(v *openflow.Vendor, xid uint32) error {
	payload, err := openflow.ParseVendor(v)
	if err != nil {
		return err
	}
	switch {
	case payload.Config != nil:
		return a.reconfigureBuffer(*payload.Config)
	case payload.StatsRequest:
		a.mu.Lock()
		stats := a.dp.Mechanism().Stats(a.now())
		a.mu.Unlock()
		return a.send(openflow.EncodeFlowBufferStats(stats), xid)
	default:
		return nil
	}
}

// reconfigureBuffer swaps the buffer mechanism at runtime. It refuses while
// packets are buffered: dropping them silently would lose traffic.
func (a *Agent) reconfigureBuffer(cfg openflow.FlowBufferConfig) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := a.dp.Mechanism().Stats(a.now()); st.UnitsInUse > 0 {
		return fmt.Errorf("switchd: cannot reconfigure buffer with %d units in use", st.UnitsInUse)
	}
	mech, err := core.NewMechanism(cfg, a.dp.cfg.BufferCapacity, a.dp.cfg.MissSendLen, a.dp.cfg.BufferExpiry)
	if err != nil {
		return err
	}
	a.dp.mech = mech
	a.dp.cfg.Buffer = cfg
	a.logf("switch: buffer reconfigured to %v", cfg.Granularity)
	return nil
}

// InjectFrame delivers one data-plane frame to a switch port, as a host NIC
// would. Table hits are forwarded synchronously via the transmit callback;
// misses go to the buffer mechanism and the controller.
func (a *Agent) InjectFrame(inPort uint16, frame []byte) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("switchd: agent closed")
	}
	res, err := a.dp.HandleFrame(a.now(), inPort, frame)
	tx := a.transmit
	// The FrameResult is datapath-owned scratch, valid only under the lock
	// (a concurrent InjectFrame would overwrite it); copy what outlives it.
	var outs []Output
	var pi *openflow.PacketIn
	if err == nil {
		outs = append(outs, res.Outputs...)
		if res.Miss != nil {
			pi = res.Miss.PacketIn
		}
	}
	a.mu.Unlock()
	if err != nil {
		return err
	}
	for _, o := range outs {
		if tx != nil {
			tx(o.Port, o.Frame)
		}
	}
	if pi != nil {
		if err := a.send(pi, a.xid()); err != nil {
			// A dead control channel loses packet_ins but must not fail the
			// data plane: the fail mode decided what happened to the frame,
			// and for buffered misses the re-request timer retries after
			// reconnect.
			a.logf("switch: packet_in lost (control channel down): %v", err)
		}
	}
	a.rearmTick()
	return nil
}

// SetPortDown flips one data port's link state, as a NIC driver would on
// carrier change. Taking the port down evicts rules egressing it (emitting
// flow_removed where flagged) and announces the transition to the
// controller with a port_status message; bringing it up announces only.
// No-op when already in the target state, so repeated flaps do not
// re-notify. A dead control channel loses the notifications but not the
// state change — the fail mode and reconnect path handle the rest.
func (a *Agent) SetPortDown(port uint16, down bool) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("switchd: agent closed")
	}
	if port >= 1 && int(port) <= a.dp.cfg.NumPorts && a.dp.PortDown(port) == down {
		a.mu.Unlock()
		return nil
	}
	removed, err := a.dp.SetPortDown(a.now(), port, down)
	var msgs []openflow.Message
	if err == nil {
		for _, r := range removed {
			if fr := a.dp.FlowRemovedFor(r); fr != nil {
				msgs = append(msgs, fr)
			}
		}
		msgs = append(msgs, &openflow.PortStatus{
			Reason: openflow.PortReasonModify,
			Desc:   a.dp.PhyPortDesc(port),
		})
	}
	a.mu.Unlock()
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := a.send(m, a.xid()); err != nil {
			a.logf("switch: port_status lost (control channel down): %v", err)
			return nil
		}
	}
	return nil
}

// rearmTick schedules the next mechanism/table timer against the wall
// clock. Callers must NOT hold a.mu.
func (a *Agent) rearmTick() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rearmTickLocked()
}

func (a *Agent) rearmTickLocked() {
	if a.closed {
		return
	}
	next, ok := a.dp.Mechanism().NextDeadline()
	if exp, expOK := a.dp.Table().NextExpiry(); expOK && (!ok || exp < next) {
		next, ok = exp, true
	}
	if a.tickT != nil {
		a.tickT.Stop()
		a.tickT = nil
	}
	if !ok {
		return
	}
	delay := next - a.now()
	if delay < 0 {
		delay = 0
	}
	a.tickT = time.AfterFunc(delay, a.tick)
}

func (a *Agent) tick() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	now := a.now()
	resend := a.dp.Mechanism().Tick(now)
	var removed []*openflow.FlowRemoved
	for _, r := range a.dp.ExpireRules(now) {
		if fr := a.dp.FlowRemovedFor(r); fr != nil {
			removed = append(removed, fr)
		}
	}
	a.rearmTickLocked()
	a.mu.Unlock()
	for _, pi := range resend {
		if err := a.send(pi, a.xid()); err != nil {
			a.logf("switch: re-request: %v", err)
		}
	}
	for _, fr := range removed {
		if err := a.send(fr, 0); err != nil {
			a.logf("switch: flow_removed: %v", err)
		}
	}
}

// Close tears the control connection down, stops timers, aborts any
// reconnect backoff in progress, and waits for agent goroutines to exit.
func (a *Agent) Close() error {
	a.mu.Lock()
	wasClosed := a.closed
	a.closed = true
	a.echoGen++ // a probe already fired but not yet run becomes stale
	conn := a.conn
	a.conn = nil
	a.writer = nil
	if a.tickT != nil {
		a.tickT.Stop()
		a.tickT = nil
	}
	if a.echoT != nil {
		a.echoT.Stop()
		a.echoT = nil
	}
	a.mu.Unlock()
	if !wasClosed {
		close(a.stop)
	}
	var err error
	if conn != nil {
		err = conn.Close()
	}
	a.wg.Wait()
	return err
}
