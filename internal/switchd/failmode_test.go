package switchd

import (
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func macFrame(t *testing.T, src, dst packet.MAC, srcIP string) []byte {
	t.Helper()
	f := &packet.Frame{
		SrcMAC:    src,
		DstMAC:    dst,
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr(srcIP),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1000,
		DstPort:   9,
		Payload:   make([]byte, 100),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return wire
}

func TestFailSecureKeepsBufferingWhileDown(t *testing.T) {
	dp, err := NewDatapath(Config{
		NumPorts:       3,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50},
		BufferCapacity: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.SetControlDown(true)
	if !dp.ControlDown() {
		t.Fatal("ControlDown not set")
	}
	frame := macFrame(t, packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2}, "10.1.0.1")
	res, err := dp.HandleFrame(0, 1, frame)
	if err != nil {
		t.Fatalf("HandleFrame: %v", err)
	}
	// Fail-secure: the miss still goes through the buffer mechanism.
	if res.Miss == nil || !res.Miss.Buffered || res.Miss.PacketIn == nil {
		t.Fatalf("fail-secure miss = %+v, want buffered packet_in", res)
	}
	if fwd, down := dp.FailStats(); fwd != 0 || down != 1 {
		t.Errorf("FailStats = %d/%d, want 0 standalone, 1 down miss", fwd, down)
	}

	// Installed rules keep forwarding while down.
	parsed, err := packet.ParseHeaders(frame)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dp.HandleFlowMod(time.Millisecond, &openflow.FlowMod{
		Match: openflow.ExactMatch(1, parsed), Command: openflow.FlowModAdd,
		Priority: 100, BufferID: openflow.NoBuffer,
		Actions: []openflow.Action{&openflow.ActionOutput{Port: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	res, err = dp.HandleFrame(2*time.Millisecond, 1, frame)
	if err != nil {
		t.Fatal(err)
	}
	if res.Matched == nil || len(res.Outputs) != 1 || res.Outputs[0].Port != 2 {
		t.Errorf("rule did not forward while down: %+v", res)
	}
}

func TestFailStandaloneLearningSwitch(t *testing.T) {
	dp, err := NewDatapath(Config{
		NumPorts:       3,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityFlow, RerequestTimeoutMs: 50},
		BufferCapacity: 16,
		FailMode:       FailStandalone,
	})
	if err != nil {
		t.Fatal(err)
	}
	dp.SetControlDown(true)
	macA := packet.MAC{2, 0, 0, 0, 0, 0xA}
	macB := packet.MAC{2, 0, 0, 0, 0, 0xB}

	// Unknown destination floods all ports except ingress.
	res, err := dp.HandleFrame(0, 1, macFrame(t, macA, macB, "10.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss != nil {
		t.Fatalf("standalone mode buffered a miss: %+v", res.Miss)
	}
	if len(res.Outputs) != 2 || res.Outputs[0].Port != 2 || res.Outputs[1].Port != 3 {
		t.Fatalf("unknown dst outputs = %+v, want flood to 2,3", res.Outputs)
	}

	// Reply from B on port 2: A was learned on port 1, so unicast.
	res, err = dp.HandleFrame(time.Millisecond, 2, macFrame(t, macB, macA, "10.2.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 1 || res.Outputs[0].Port != 1 {
		t.Fatalf("learned dst outputs = %+v, want unicast to 1", res.Outputs)
	}

	// Broadcast floods even though the broadcast MAC might be "learned".
	bcast := packet.MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	res, err = dp.HandleFrame(2*time.Millisecond, 1, macFrame(t, macA, bcast, "10.1.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("broadcast outputs = %+v, want flood", res.Outputs)
	}

	if fwd, down := dp.FailStats(); fwd != 3 || down != 3 {
		t.Errorf("FailStats = %d/%d, want 3/3", fwd, down)
	}

	// Restore: learned MACs are wiped, and misses buffer again.
	dp.SetControlDown(false)
	if dp.macTable != nil {
		t.Error("MAC table survived control-channel restore")
	}
	res, err = dp.HandleFrame(3*time.Millisecond, 2, macFrame(t, macB, macA, "10.2.0.1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Miss == nil || !res.Miss.Buffered {
		t.Errorf("restored datapath did not buffer the miss: %+v", res)
	}
}

func TestFailModeString(t *testing.T) {
	if FailSecure.String() != "fail-secure" || FailStandalone.String() != "fail-standalone" {
		t.Errorf("strings = %q/%q", FailSecure, FailStandalone)
	}
}
