package switchd_test

import (
	"bytes"
	"log"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/switchd"
)

// syncBuffer is a goroutine-safe log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLivePortFlapEmitsPortStatus pins the live-mode failure surface: an
// agent-side port flap evicts the rules egressing the port, ships
// flow_removed and port_status over the real TCP control channel, and the
// controller prints both transitions. Repeats stay silent.
func TestLivePortFlapEmitsPortStatus(t *testing.T) {
	app, err := controller.NewReactiveForwarder(controller.ForwarderConfig{
		Routes: []controller.Route{
			{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Port: 2},
			{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Port: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var logged syncBuffer
	server, err := controller.NewServer(controller.ServerConfig{
		Logger: log.New(&logged, "", 0),
	}, app)
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })

	agent, err := switchd.NewAgent(switchd.AgentConfig{Datapath: switchd.Config{
		DatapathID: 1, NumPorts: 2,
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 64,
	}})
	if err != nil {
		t.Fatal(err)
	}
	agent.SetTransmit(func(uint16, []byte) {})
	if err := agent.Connect(server.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = agent.Close() })

	// Install a rule egressing port 2 via the normal miss path, so the flap
	// has something to evict.
	if err := agent.InjectFrame(1, liveFrame(t, "10.1.0.1", 1000)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for agent.TableLen() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rule never installed")
		}
		time.Sleep(time.Millisecond)
	}

	if err := agent.SetPortDown(2, true); err != nil {
		t.Fatalf("SetPortDown: %v", err)
	}
	if err := agent.SetPortDown(2, true); err != nil { // repeat: silent
		t.Fatal(err)
	}
	waitLog := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !strings.Contains(logged.String(), want) {
			if time.Now().After(deadline) {
				t.Fatalf("controller never logged %q; log:\n%s", want, logged.String())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitLog("port 2 (eth2) link down")
	if agent.TableLen() != 0 {
		t.Fatalf("table len = %d after port down", agent.TableLen())
	}

	if err := agent.SetPortDown(2, false); err != nil {
		t.Fatal(err)
	}
	waitLog("port 2 (eth2) link up")
	if got := strings.Count(logged.String(), "port_status"); got != 2 {
		t.Fatalf("%d port_status lines, want 2 (repeat flap must stay silent):\n%s", got, logged.String())
	}
	if err := agent.SetPortDown(9, true); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}
