package switchd

import (
	"net/netip"
	"testing"
	"time"

	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func testFrameIPID(t *testing.T, ipid uint16) []byte {
	t.Helper()
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		IPID:      ipid,
		Proto:     packet.ProtoUDP,
		SrcIP:     netip.MustParseAddr("10.1.0.1"),
		DstIP:     netip.MustParseAddr("10.0.0.2"),
		SrcPort:   1000,
		DstPort:   9,
		Payload:   make([]byte, 900),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return wire
}

// TestSimSwitchIngestPreservesPortOrder pins the per-port in-order admission
// guarantee: the first frame after an idle gap pays the wakeup cost on one
// core while its successor's cheaper job runs on another, so without the
// admission gate the successor would reach the datapath — and the wire —
// first. A real datapath drains a port's RX queue in arrival order; the
// wakeup stalls the whole batch.
func TestSimSwitchIngestPreservesPortOrder(t *testing.T) {
	k, sw, _, _ := newSimPair(t, openflow.GranularityFlow, 16)
	var ipids []uint16
	sw.SetTransmit(func(port uint16, frame []byte) {
		f, err := packet.ParseHeaders(frame)
		if err != nil {
			t.Fatalf("egress frame does not parse: %v", err)
		}
		ipids = append(ipids, f.IPID)
	})

	// Install the flow's rule via a normal miss round trip.
	sw.Ingest(1, testFrameIPID(t, 1))
	k.Run()
	ipids = ipids[:0]

	// Wait out the batch window so the next arrival pays the wakeup cost,
	// then deliver two rule-hitting frames closer together than the
	// wakeup/per-packet cost difference.
	gap := sw.cfg.BatchWindow + time.Millisecond
	k.After(gap, func() { sw.Ingest(1, testFrameIPID(t, 2)) })
	k.After(gap+20*time.Microsecond, func() { sw.Ingest(1, testFrameIPID(t, 3)) })
	k.Run()

	if len(ipids) != 2 || ipids[0] != 2 || ipids[1] != 3 {
		t.Fatalf("egress ipid order = %v, want [2 3]", ipids)
	}
}
