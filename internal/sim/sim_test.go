package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := New(1)
	var order []int
	k.At(3*time.Millisecond, func() { order = append(order, 3) })
	k.At(1*time.Millisecond, func() { order = append(order, 1) })
	k.At(2*time.Millisecond, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if k.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(time.Millisecond, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestKernelAfterAndNestedScheduling(t *testing.T) {
	k := New(1)
	var fired []time.Duration
	k.After(time.Second, func() {
		fired = append(fired, k.Now())
		k.After(time.Second, func() {
			fired = append(fired, k.Now())
		})
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Errorf("fired = %v, want [1s 2s]", fired)
	}
}

func TestKernelNegativeAfterMeansNow(t *testing.T) {
	k := New(1)
	done := false
	k.After(-time.Second, func() { done = true })
	k.Run()
	if !done {
		t.Error("event with negative delay never ran")
	}
	if k.Now() != 0 {
		t.Errorf("Now = %v, want 0", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := New(1)
	k.At(time.Second, func() {})
	k.Run()
	defer func() {
		if recover() == nil {
			t.Error("At in the past did not panic")
		}
	}()
	k.At(500*time.Millisecond, func() {})
}

func TestKernelCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(time.Second, func() { fired = true })
	if !k.Cancel(e) {
		t.Error("Cancel = false for pending event")
	}
	if k.Cancel(e) {
		t.Error("second Cancel = true")
	}
	if k.Cancel(nil) {
		t.Error("Cancel(nil) = true")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestKernelCancelAfterFire(t *testing.T) {
	k := New(1)
	e := k.After(time.Millisecond, func() {})
	k.Run()
	if k.Cancel(e) {
		t.Error("Cancel after fire = true")
	}
}

func TestKernelCancelMiddleOfHeap(t *testing.T) {
	k := New(1)
	var order []int
	events := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		events[i] = k.At(time.Duration(i+1)*time.Millisecond, func() { order = append(order, i) })
	}
	k.Cancel(events[2])
	k.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	k := New(1)
	var fired []int
	k.At(time.Second, func() { fired = append(fired, 1) })
	k.At(3*time.Second, func() { fired = append(fired, 3) })
	k.RunUntil(2 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Errorf("fired = %v, want [1]", fired)
	}
	if k.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	k.Run()
	if len(fired) != 2 {
		t.Errorf("after Run, fired = %v", fired)
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	k := New(1)
	k.RunFor(time.Second)
	k.RunFor(time.Second)
	if k.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", k.Now())
	}
}

func TestKernelDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		k := New(42)
		var ts []time.Duration
		var spawn func(depth int)
		spawn = func(depth int) {
			ts = append(ts, k.Now())
			if depth < 6 {
				n := k.Rand().Intn(3) + 1
				for i := 0; i < n; i++ {
					d := time.Duration(k.Rand().Intn(1000)) * time.Microsecond
					k.After(d, func() { spawn(depth + 1) })
				}
			}
		}
		k.After(0, func() { spawn(0) })
		k.Run()
		return ts
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("timestamp %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestResourceSingleServerSerializesJobs(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	var doneAt []time.Duration
	for i := 0; i < 3; i++ {
		r.Submit(10*time.Millisecond, func() { doneAt = append(doneAt, k.Now()) })
	}
	k.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(doneAt) != 3 {
		t.Fatalf("completions = %d, want 3", len(doneAt))
	}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Errorf("completion %d at %v, want %v", i, doneAt[i], want[i])
		}
	}
	if r.Completed() != 3 {
		t.Errorf("Completed = %d, want 3", r.Completed())
	}
}

func TestResourceParallelServers(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 2)
	var doneAt []time.Duration
	for i := 0; i < 4; i++ {
		r.Submit(10*time.Millisecond, func() { doneAt = append(doneAt, k.Now()) })
	}
	k.Run()
	// Two at 10ms, two at 20ms.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Errorf("completion %d at %v, want %v", i, doneAt[i], want[i])
		}
	}
}

func TestResourceUtilizationAccounting(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	r.Submit(time.Second, nil)
	k.RunUntil(2 * time.Second)
	// Busy 1s out of 2s elapsed: 50% of one core.
	if got := r.UtilizationPercent(); got < 49.9 || got > 50.1 {
		t.Errorf("UtilizationPercent = %g, want 50", got)
	}
}

func TestResourceWaitStats(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	r.Submit(10*time.Millisecond, nil) // waits 0
	r.Submit(10*time.Millisecond, nil) // waits 10ms
	k.Run()
	if got := r.WaitStats().Max(); got < 0.0099 || got > 0.0101 {
		t.Errorf("max wait = %gs, want ~0.01", got)
	}
	if got := r.ServiceStats().Mean(); got < 0.0099 || got > 0.0101 {
		t.Errorf("mean service = %gs, want ~0.01", got)
	}
}

func TestResourceZeroServiceJob(t *testing.T) {
	k := New(1)
	r := NewResource(k, "cpu", 1)
	done := false
	r.Submit(0, func() { done = true })
	k.Run()
	if !done {
		t.Error("zero-service job never completed")
	}
	r.Submit(-time.Second, nil) // clamped, must not panic
	k.Run()
}

func TestResourcePanicsOnZeroServers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewResource with 0 servers did not panic")
		}
	}()
	NewResource(New(1), "bad", 0)
}

func TestPropertyResourceConservation(t *testing.T) {
	// Every submitted job completes exactly once, in FIFO order per
	// identical service times, regardless of submission pattern.
	r := rand.New(rand.NewSource(5))
	prop := func() bool {
		k := New(int64(r.Intn(1000)))
		res := NewResource(k, "cpu", 1+r.Intn(3))
		n := 1 + r.Intn(60)
		completed := 0
		for i := 0; i < n; i++ {
			delay := time.Duration(r.Intn(500)) * time.Microsecond
			service := time.Duration(r.Intn(500)) * time.Microsecond
			k.After(delay, func() {
				res.Submit(service, func() { completed++ })
			})
		}
		k.Run()
		return completed == n && res.QueueLen() == 0 && res.InService() == 0 &&
			res.Completed() == int64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyKernelClockMonotonic(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	prop := func() bool {
		k := New(int64(r.Intn(1000)))
		last := time.Duration(-1)
		ok := true
		for i := 0; i < 50; i++ {
			k.After(time.Duration(r.Intn(1000))*time.Microsecond, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
