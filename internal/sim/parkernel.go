// Conservative parallel discrete-event kernel (DESIGN.md §15).
//
// A ParKernel partitions a simulation into logical processes (domains): each
// domain owns a full serial Kernel — its own event heap, free list and seeded
// RNG stream — and executes its events on one goroutine at a time. Domains
// interact only through Post, which turns a cross-domain send into a
// timestamped mailbox message delivered at the next virtual-time barrier.
//
// The synchronization protocol is synchronous bounded-lag ("conservative
// time windows"): every cross-domain message must be timestamped at least
// `lookahead` after its sender's current virtual time (for the fabric the
// lookahead is the minimum cross-domain link propagation delay, so the bound
// is physical, not tuned). Each round the coordinator computes
//
//	T = min over domains of the earliest pending event
//	B = min(T + lookahead, deadline)
//
// and lets every domain with work before B execute [T, B) in parallel. Any
// message created inside the window carries a delivery time ≥ sender now +
// lookahead ≥ T + lookahead ≥ B, so no message can target the window that
// creates it — the windows are causally closed, and the barrier between
// windows is the only synchronization domains ever need.
//
// Determinism: within a domain the serial kernel's (time, sequence) order
// applies unchanged. At each barrier the mailboxes are folded into the
// destination heaps in the total order (delivery time, send time, source
// domain, source sequence), so heap sequence numbers — and therefore
// execution order — are identical at any worker count, including one. The
// testbed's equivalence suite checks the stronger property that a ParKernel
// run is indistinguishable from the serial reference kernel.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// SplitSeed derives an independent per-domain RNG seed from a root seed via
// a splitmix64 finalizer — the standard way to split one seed into many
// decorrelated streams without touching the root stream. The serial Kernel
// keeps consuming rand.NewSource(seed) directly, so legacy single-kernel
// runs are unaffected (pinned by TestSerialKernelRNGStreamUnchanged).
func SplitSeed(root int64, domain int) int64 {
	z := uint64(root) + (uint64(domain)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// Runner is the draining surface shared by the serial Kernel and the
// ParKernel, letting the testbeds run either without caring which.
type Runner interface {
	// Now reports the current virtual time (for a ParKernel: the maximum
	// over domains, which equals the serial kernel's clock after a Drain).
	Now() time.Duration
	// Pending reports how many events are scheduled but not yet executed.
	Pending() int
	// Executed reports how many events have run.
	Executed() uint64
	// Drain executes pending events until none remain or the clock has
	// reached the deadline (see Kernel.Drain for the exact boundary rule).
	Drain(deadline time.Duration)
}

var (
	_ Runner = (*Kernel)(nil)
	_ Runner = (*ParKernel)(nil)
)

// message is one cross-domain send awaiting barrier delivery.
type message struct {
	dst  int
	at   time.Duration // delivery time
	sent time.Duration // sender's virtual time at Post
	src  int           // sending domain
	seq  uint64        // per-sender Post counter
	fn   func()
}

// lp is one logical process: a serial kernel plus its outgoing mailbox.
// The outbox is only appended to by the goroutine currently executing the
// domain's events, and only drained by the coordinator at barriers.
type lp struct {
	id      int
	k       *Kernel
	outbox  []message
	postSeq uint64
}

func (d *lp) runWindow(b time.Duration) {
	k := d.k
	for len(k.events) > 0 && k.events[0].at < b {
		k.Step()
	}
}

// ParKernel coordinates a set of per-domain serial kernels under the
// conservative window protocol. Construct with NewPar, wire components to
// the per-domain kernels (DomainKernel), route cross-domain sends through
// Post, then call Drain. Like the serial kernel, a ParKernel must be driven
// from a single goroutine; it manages its own workers during Drain.
type ParKernel struct {
	lps       []*lp
	lookahead time.Duration
	workers   int
	maxNow    time.Duration

	pending []message // barrier scratch: gathered outboxes
	active  []*lp     // window scratch: domains with work before B

	// shadowExec counts executions of ShadowAt events, which replicate a
	// serial-mode event's side effects across domains and must not inflate
	// Executed(). Atomic: shadow events run on worker goroutines.
	shadowExec atomic.Uint64

	tasks     chan *lp // nil unless workers are running
	windowEnd time.Duration
	wg        sync.WaitGroup
}

// NewPar creates a parallel kernel with the given domain count. Domain d's
// RNG stream is seeded SplitSeed(seed, d). The lookahead must be positive:
// it is the promise that no cross-domain message takes effect sooner than
// lookahead after its send, and the window width the coordinator may safely
// run domains in parallel for. workers caps the goroutines executing
// windows (values < 1 mean 1; 1 still uses the parallel protocol, which is
// how the protocol itself is tested for worker-count independence).
func NewPar(seed int64, domains int, lookahead time.Duration, workers int) (*ParKernel, error) {
	if domains < 1 {
		return nil, fmt.Errorf("sim: parallel kernel needs at least one domain, got %d", domains)
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("sim: parallel kernel needs positive lookahead, got %v", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	p := &ParKernel{lookahead: lookahead, workers: workers}
	p.lps = make([]*lp, domains)
	for d := range p.lps {
		p.lps[d] = &lp{id: d, k: New(SplitSeed(seed, d))}
	}
	return p, nil
}

// Domains reports the domain count.
func (p *ParKernel) Domains() int { return len(p.lps) }

// Lookahead reports the conservative window width.
func (p *ParKernel) Lookahead() time.Duration { return p.lookahead }

// DomainKernel exposes domain d's serial kernel. Components owned by the
// domain schedule on it directly; everything scheduled there must only touch
// state owned by the same domain.
func (p *ParKernel) DomainKernel(d int) *Kernel { return p.lps[d].k }

// Post schedules fn at absolute virtual time t on domain dst, called from
// an event currently executing on domain src. The delivery time must honor
// the lookahead promise; violating it would let a message target the
// current window and breaks the conservative protocol, so it panics.
func (p *ParKernel) Post(src, dst int, t time.Duration, fn func()) {
	d := p.lps[src]
	if t < d.k.now+p.lookahead {
		panic(fmt.Sprintf("sim: cross-domain post at %v from domain %d (now %v) violates lookahead %v",
			t, src, d.k.now, p.lookahead))
	}
	d.postSeq++
	d.outbox = append(d.outbox, message{dst: dst, at: t, sent: d.k.now, src: src, seq: d.postSeq, fn: fn})
}

// ShadowAt schedules an uncounted event on domain d at time t, for
// replicating one serial-mode event's side effects onto every domain owning
// a piece of the touched state (the fabric's controller-crash toggles).
// Shadow executions are excluded from Executed() so the count stays
// byte-identical to the serial kernel, which performs the combined update
// as a single event.
func (p *ParKernel) ShadowAt(d int, t time.Duration, fn func()) {
	p.lps[d].k.At(t, func() {
		p.shadowExec.Add(1)
		fn()
	})
}

// Now reports the maximum virtual time reached by any domain — after a
// Drain, exactly the serial kernel's clock (the time of the last executed
// event).
func (p *ParKernel) Now() time.Duration { return p.maxNow }

// Pending reports scheduled-but-unexecuted events across all domains,
// including undelivered mailbox messages.
func (p *ParKernel) Pending() int {
	n := 0
	for _, d := range p.lps {
		n += len(d.k.events) + len(d.outbox)
	}
	return n
}

// Executed reports executed events across all domains, minus shadow
// replicas — byte-identical to the serial kernel's count for an equivalent
// run.
func (p *ParKernel) Executed() uint64 {
	var n uint64
	for _, d := range p.lps {
		n += d.k.executed
	}
	return n - p.shadowExec.Load()
}

// minNext finds the earliest pending event time across domains; ties go to
// the lowest domain ID (deterministic at any worker count).
func (p *ParKernel) minNext() (time.Duration, *lp) {
	var best *lp
	var bt time.Duration
	for _, d := range p.lps {
		if len(d.k.events) == 0 {
			continue
		}
		if t := d.k.events[0].at; best == nil || t < bt {
			best, bt = d, t
		}
	}
	return bt, best
}

// flush gathers every outbox and folds the messages into the destination
// heaps in the total order (delivery time, send time, source domain, source
// sequence). Destination sequence numbers are assigned in that order, so
// the resulting heap order is independent of which goroutines ran the
// window. Earlier barriers always fold before later ones, and a later
// barrier's messages were created at strictly later virtual times, so the
// fold order matches the serial kernel's creation order (DESIGN.md §15).
func (p *ParKernel) flush() {
	for _, src := range p.lps {
		if len(src.outbox) == 0 {
			continue
		}
		p.pending = append(p.pending, src.outbox...)
		src.outbox = src.outbox[:0]
	}
	if len(p.pending) == 0 {
		return
	}
	sort.Slice(p.pending, func(i, j int) bool {
		a, b := p.pending[i], p.pending[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.sent != b.sent {
			return a.sent < b.sent
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range p.pending {
		m := &p.pending[i]
		p.lps[m.dst].k.At(m.at, m.fn)
		m.fn = nil
	}
	p.pending = p.pending[:0]
}

// startWorkers launches the window-execution pool (only useful with more
// than one worker and more than one domain).
func (p *ParKernel) startWorkers() {
	n := p.workers
	if n > len(p.lps) {
		n = len(p.lps)
	}
	if n <= 1 {
		return
	}
	tasks := make(chan *lp)
	p.tasks = tasks
	for w := 0; w < n; w++ {
		go func() {
			// The channel receive happens after the coordinator wrote
			// windowEnd for this window, and the wg.Done is observed by the
			// coordinator's wg.Wait before it writes the next window — those
			// two edges are the protocol's entire happens-before story.
			for d := range tasks {
				d.runWindow(p.windowEnd)
				p.wg.Done()
			}
		}()
	}
}

func (p *ParKernel) stopWorkers() {
	if p.tasks != nil {
		close(p.tasks)
		p.tasks = nil
	}
}

// runWindow executes every domain with work before b up to (excluding) b.
// The channel send to a worker and the barrier wait afterwards are the
// happens-before edges that make each domain's state visible to whichever
// goroutine touches it next.
func (p *ParKernel) runWindow(b time.Duration) {
	p.active = p.active[:0]
	for _, d := range p.lps {
		if len(d.k.events) > 0 && d.k.events[0].at < b {
			p.active = append(p.active, d)
		}
	}
	if len(p.active) == 1 || p.tasks == nil {
		for _, d := range p.active {
			d.runWindow(b)
		}
		return
	}
	p.windowEnd = b
	p.wg.Add(len(p.active))
	for _, d := range p.active {
		p.tasks <- d
	}
	p.wg.Wait()
}

// Drain runs the conservative window protocol until no events remain or the
// clock reaches deadline, with the serial kernel's exact boundary rule:
// every event strictly before the deadline runs, plus the single earliest
// event at or past it (whose execution advances the clock past the deadline
// and stops the run) — replicating Kernel.Drain event for event.
// syncClocks fast-forwards every idle domain's clock to the global final
// time once the run is over. Serial components all read the one kernel
// clock, so post-run accounting that closes a window "at now" — CPU busy
// integrals, queue-length gauges — must see the same final time on every
// domain, not the instant each LP happened to run out of events.
func (p *ParKernel) syncClocks() {
	for _, d := range p.lps {
		if d.k.now < p.maxNow {
			d.k.now = p.maxNow
		}
	}
}

func (p *ParKernel) Drain(deadline time.Duration) {
	defer p.syncClocks()
	p.flush()
	if len(p.lps) == 1 {
		// One domain: the protocol degenerates to the serial loop.
		d := p.lps[0]
		d.k.Drain(deadline)
		if d.k.now > p.maxNow {
			p.maxNow = d.k.now
		}
		return
	}
	p.startWorkers()
	defer p.stopWorkers()
	for p.maxNow < deadline {
		t, first := p.minNext()
		if first == nil {
			return
		}
		if t >= deadline {
			// The serial loop executes exactly one event at or past the
			// deadline; ties across domains go to the lowest domain ID.
			first.k.Step()
			if first.k.now > p.maxNow {
				p.maxNow = first.k.now
			}
			p.flush()
			continue
		}
		b := t + p.lookahead
		if b > deadline {
			b = deadline
		}
		p.runWindow(b)
		for _, d := range p.active {
			if d.k.now > p.maxNow {
				p.maxNow = d.k.now
			}
		}
		p.flush()
	}
}
