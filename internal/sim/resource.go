package sim

import (
	"fmt"
	"time"

	"sdnbuffer/internal/metrics"
)

// Resource models a contended processing resource — a CPU with a fixed
// number of cores, or the ASIC-to-CPU bus of a switch — as a FIFO queue in
// front of k identical servers. Jobs are submitted with a service demand;
// the resource calls the completion callback when the job finishes, which
// may be much later than submission when the resource is saturated.
//
// Utilization accounting mirrors what `top` reports on the paper's testbed:
// busy-core integral over time, expressed in percent of one core (so a fully
// busy 4-core resource reads 400%).
type Resource struct {
	kernel  *Kernel
	name    string
	servers int
	busy    int
	queue   []resourceJob

	busyGauge  metrics.Gauge // number of busy servers over time
	queueGauge metrics.Gauge // queued (not yet started) jobs over time
	waits      metrics.Summary
	services   metrics.Summary
	completed  int64

	// trace, when set, observes every completed job (SetTraceFunc). It is a
	// plain callback so sim stays independent of the telemetry layer; the
	// nil check is the only cost when unset.
	trace func(submitted, started, finished time.Duration)
}

type resourceJob struct {
	submitted time.Duration
	started   time.Duration
	service   time.Duration
	done      func()
}

// NewResource creates a resource with the given number of parallel servers.
// It panics on a non-positive server count: that is a configuration bug, not
// a runtime condition.
func NewResource(k *Kernel, name string, servers int) *Resource {
	if servers <= 0 {
		panic(fmt.Sprintf("sim: resource %q needs at least one server, got %d", name, servers))
	}
	return &Resource{kernel: k, name: name, servers: servers}
}

// Name reports the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Servers reports the configured parallelism.
func (r *Resource) Servers() int { return r.servers }

// Submit enqueues a job with the given service demand. done may be nil.
// Service demands are clamped to be non-negative.
func (r *Resource) Submit(service time.Duration, done func()) {
	if service < 0 {
		service = 0
	}
	job := resourceJob{submitted: r.kernel.Now(), service: service, done: done}
	if r.busy < r.servers {
		r.start(job)
		return
	}
	r.queue = append(r.queue, job)
	r.queueGauge.Set(r.kernel.Now(), float64(len(r.queue)))
}

func (r *Resource) start(job resourceJob) {
	now := r.kernel.Now()
	r.busy++
	r.busyGauge.Set(now, float64(r.busy))
	r.waits.Observe((now - job.submitted).Seconds())
	r.services.Observe(job.service.Seconds())
	job.started = now
	r.kernel.After(job.service, func() { r.finish(job) })
}

func (r *Resource) finish(job resourceJob) {
	now := r.kernel.Now()
	r.busy--
	r.busyGauge.Set(now, float64(r.busy))
	r.completed++
	if r.trace != nil {
		r.trace(job.submitted, job.started, now)
	}
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.queueGauge.Set(now, float64(len(r.queue)))
		r.start(next)
	}
	if job.done != nil {
		job.done()
	}
}

// SetTraceFunc installs an observer invoked once per completed job with the
// job's submission, service-start and finish times. Passing nil removes the
// observer. The callback runs on the kernel goroutine and must not schedule
// kernel events; it exists so higher layers (telemetry) can decompose queueing
// wait from service time without sim importing them.
func (r *Resource) SetTraceFunc(fn func(submitted, started, finished time.Duration)) {
	r.trace = fn
}

// QueueLen reports the number of jobs waiting (excluding in-service jobs).
func (r *Resource) QueueLen() int { return len(r.queue) }

// InService reports the number of jobs currently being served.
func (r *Resource) InService() int { return r.busy }

// Completed reports how many jobs have finished.
func (r *Resource) Completed() int64 { return r.completed }

// UtilizationPercent reports the time-averaged busy-core count as a
// percentage of one core, after closing the accounting window at the current
// virtual time. A fully busy 2-server resource reports 200.
func (r *Resource) UtilizationPercent() float64 {
	r.busyGauge.Finish(r.kernel.Now())
	return r.busyGauge.TimeAverage() * 100
}

// MeanQueueLen reports the time-averaged queue length.
func (r *Resource) MeanQueueLen() float64 {
	r.queueGauge.Finish(r.kernel.Now())
	return r.queueGauge.TimeAverage()
}

// WaitStats exposes the distribution of queueing delays (seconds).
func (r *Resource) WaitStats() *metrics.Summary { return &r.waits }

// ServiceStats exposes the distribution of service demands (seconds).
func (r *Resource) ServiceStats() *metrics.Summary { return &r.services }
