package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestSplitSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for d := 0; d < 4096; d++ {
		s := SplitSeed(42, d)
		if s2 := SplitSeed(42, d); s2 != s {
			t.Fatalf("SplitSeed(42, %d) unstable: %d then %d", d, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("SplitSeed(42, %d) collides with domain %d: %d", d, prev, s)
		}
		seen[s] = d
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("SplitSeed ignores the root seed")
	}
	// Golden pin: the derivation function is part of the reproducibility
	// contract (reseeding every parallel experiment would invalidate
	// committed baselines), so lock two values.
	if got, want := SplitSeed(1, 0), int64(-7995527694508729151); got != want {
		t.Fatalf("SplitSeed(1, 0) = %d, want %d", got, want)
	}
	if got, want := SplitSeed(1, 1), int64(-4689498862643123097); got != want {
		t.Fatalf("SplitSeed(1, 1) = %d, want %d", got, want)
	}
}

// TestSerialKernelRNGStreamUnchanged pins the serial kernel's random stream
// to rand.NewSource(seed): introducing the per-domain splittable streams
// must not touch the legacy stream, or every committed experiment CSV would
// silently shift.
func TestSerialKernelRNGStreamUnchanged(t *testing.T) {
	k := New(1)
	ref := rand.New(rand.NewSource(1))
	for i := 0; i < 64; i++ {
		if got, want := k.Rand().Float64(), ref.Float64(); got != want {
			t.Fatalf("draw %d: serial kernel stream diverged from rand.NewSource(1): %v != %v", i, got, want)
		}
	}
	// Golden value for Go's source stability (Go 1 compatibility promise).
	if got, want := New(1).Rand().Float64(), 0.6046602879796196; got != want {
		t.Fatalf("first draw for seed 1 = %v, want %v", got, want)
	}
}

// rec is one trace entry of the equivalence workload.
type rec struct {
	Dom int
	At  time.Duration
	ID  uint64
}

// mix is a tiny deterministic hash so the synthetic workload's branching
// depends only on the event's identity, never on execution order.
func mix(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 1
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	return z ^ z>>31
}

// dagHarness runs the same randomized event cascade on either kernel kind:
// every event records itself, schedules 0-2 local children at arbitrary
// delays, and 0-2 cross-domain children at delays honoring the lookahead.
type dagHarness struct {
	domains   int
	lookahead time.Duration
	trace     [][]rec

	at   func(dom int, t time.Duration, fn func())
	post func(src, dst int, t time.Duration, fn func())
	now  func(dom int) time.Duration
}

func (h *dagHarness) event(dom int, id uint64, depth int) func() {
	return func() {
		now := h.now(dom)
		h.trace[dom] = append(h.trace[dom], rec{Dom: dom, At: now, ID: id})
		if depth <= 0 {
			return
		}
		// Delays are irregular (prime-modulus pseudo-random nanoseconds) so
		// no two events in the whole run share a timestamp: the equivalence
		// guarantee is for tie-free schedules — at an exact cross-domain
		// timestamp tie the serial kernel falls back to creation order,
		// which no distributed tie-break can reconstruct (DESIGN.md §15).
		// TestParKernelMatchesSerial asserts the run really is tie-free.
		r := mix(uint64(dom)<<32|id, uint64(depth))
		for c := 0; c < int(r%3); c++ {
			cid := mix(id, uint64(c))
			delay := time.Duration(cid % 999959)
			h.at(dom, now+delay, h.event(dom, cid, depth-1))
		}
		r = mix(r, 0xBEEF)
		for c := 0; c < int(r%3); c++ {
			cid := mix(id, 0x100+uint64(c))
			dst := int(cid) % h.domains
			if dst < 0 {
				dst = -dst
			}
			delay := h.lookahead + time.Duration(cid%1000003)
			h.post(dom, dst, now+delay, h.event(dst, cid, depth-1))
		}
	}
}

func (h *dagHarness) seedRoots() {
	for d := 0; d < h.domains; d++ {
		at := time.Duration(mix(0xABCD, uint64(d)) % 500009)
		h.at(d, at, h.event(d, uint64(d)+1, 6))
	}
}

// runSerial executes the cascade on one serial kernel (the reference).
func runSerial(domains int, lookahead, deadline time.Duration) ([][]rec, uint64, time.Duration) {
	k := New(1)
	h := &dagHarness{
		domains:   domains,
		lookahead: lookahead,
		trace:     make([][]rec, domains),
		at:        func(_ int, t time.Duration, fn func()) { k.At(t, fn) },
		now:       func(int) time.Duration { return k.Now() },
	}
	h.post = func(_, _ int, t time.Duration, fn func()) { k.At(t, fn) }
	h.seedRoots()
	k.Drain(deadline)
	return h.trace, k.Executed(), k.Now()
}

func runParallel(t *testing.T, domains, workers int, lookahead, deadline time.Duration) ([][]rec, uint64, time.Duration) {
	t.Helper()
	p, err := NewPar(1, domains, lookahead, workers)
	if err != nil {
		t.Fatalf("NewPar: %v", err)
	}
	h := &dagHarness{
		domains:   domains,
		lookahead: lookahead,
		trace:     make([][]rec, domains),
		at:        func(dom int, tt time.Duration, fn func()) { p.DomainKernel(dom).At(tt, fn) },
		post:      p.Post,
		now:       func(dom int) time.Duration { return p.DomainKernel(dom).Now() },
	}
	h.seedRoots()
	p.Drain(deadline)
	return h.trace, p.Executed(), p.Now()
}

// TestParKernelMatchesSerial drives the same cascade through the serial
// reference kernel and through ParKernel at several worker counts: the
// per-domain execution traces, the executed-event count, and the final
// clock must match exactly.
func TestParKernelMatchesSerial(t *testing.T) {
	const domains = 7
	const lookahead = 100 * time.Microsecond
	const deadline = 50 * time.Millisecond
	wantTrace, wantExec, wantNow := runSerial(domains, lookahead, deadline)
	total := 0
	times := map[time.Duration]bool{}
	ties := 0
	for _, tr := range wantTrace {
		total += len(tr)
		for _, r := range tr {
			if times[r.At] {
				ties++
			}
			times[r.At] = true
		}
	}
	if total < 100 {
		t.Fatalf("workload too small to be meaningful: %d events", total)
	}
	if ties > 0 {
		t.Fatalf("workload has %d timestamp ties; the equivalence precondition needs a tie-free schedule — retune the delay constants", ties)
	}
	for _, workers := range []int{1, 2, 8} {
		gotTrace, gotExec, gotNow := runParallel(t, domains, workers, lookahead, deadline)
		if gotExec != wantExec {
			t.Errorf("workers=%d: Executed() = %d, serial %d", workers, gotExec, wantExec)
		}
		if gotNow != wantNow {
			t.Errorf("workers=%d: Now() = %v, serial %v", workers, gotNow, wantNow)
		}
		if !reflect.DeepEqual(gotTrace, wantTrace) {
			t.Errorf("workers=%d: execution trace diverged from serial", workers)
		}
	}
}

// TestParKernelDeadlineQuirk pins the boundary rule: events strictly before
// the deadline all run, then exactly one event at/past the deadline runs.
func TestParKernelDeadlineQuirk(t *testing.T) {
	run := func(r Runner, at func(dom int, t time.Duration, fn func())) (fired []time.Duration) {
		times := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
			5 * time.Millisecond, 7 * time.Millisecond}
		for i, tt := range times {
			tt := tt
			at(i%2, tt, func() { fired = append(fired, tt) })
		}
		r.Drain(5 * time.Millisecond)
		return fired
	}

	k := New(1)
	serial := run(k, func(_ int, t time.Duration, fn func()) { k.At(t, fn) })

	p, err := NewPar(1, 2, time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	var par []time.Duration
	{
		times := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
			5 * time.Millisecond, 7 * time.Millisecond}
		perDom := make([][]time.Duration, 2)
		for i, tt := range times {
			tt := tt
			dom := i % 2
			p.DomainKernel(dom).At(tt, func() { perDom[dom] = append(perDom[dom], tt) })
		}
		p.Drain(5 * time.Millisecond)
		for _, d := range perDom {
			par = append(par, d...)
		}
	}
	// Events before 5ms: both fire. At 5ms: exactly one fires (serial picks
	// the lower sequence; parallel the lower domain — same event here).
	if len(serial) != 3 {
		t.Fatalf("serial fired %d events, want 3 (two before deadline + one at it)", len(serial))
	}
	if len(par) != 3 {
		t.Fatalf("parallel fired %d events, want 3", len(par))
	}
	if k.Executed() != p.Executed() || k.Now() != p.Now() {
		t.Fatalf("boundary divergence: serial (exec %d, now %v) vs parallel (exec %d, now %v)",
			k.Executed(), k.Now(), p.Executed(), p.Now())
	}
}

func TestPostLookaheadViolationPanics(t *testing.T) {
	p, err := NewPar(1, 2, time.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.DomainKernel(0).At(0, func() {
		defer func() {
			if recover() == nil {
				t.Error("posting inside the lookahead window did not panic")
			}
		}()
		p.Post(0, 1, 500*time.Microsecond, func() {})
	})
	p.Drain(time.Second)
}

// TestShadowEventsUncounted checks ShadowAt runs its callback but keeps
// Executed() at the counted-event total.
func TestShadowEventsUncounted(t *testing.T) {
	p, err := NewPar(1, 3, time.Millisecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	ran := make([]bool, 3)
	p.DomainKernel(0).At(time.Millisecond, func() { ran[0] = true })
	p.ShadowAt(1, time.Millisecond, func() { ran[1] = true })
	p.ShadowAt(2, time.Millisecond, func() { ran[2] = true })
	p.Drain(time.Second)
	for d, ok := range ran {
		if !ok {
			t.Errorf("domain %d callback did not run", d)
		}
	}
	if got := p.Executed(); got != 1 {
		t.Errorf("Executed() = %d, want 1 (shadow replicas excluded)", got)
	}
}

// TestKernelDrainMatchesStepLoop pins the satellite perf fix: Drain must be
// byte-for-byte the historical manual Step loop.
func TestKernelDrainMatchesStepLoop(t *testing.T) {
	build := func(k *Kernel) *[]time.Duration {
		var fired []time.Duration
		var chain func(t time.Duration, depth int) func()
		chain = func(at time.Duration, depth int) func() {
			return func() {
				fired = append(fired, at)
				if depth > 0 {
					k.After(time.Duration(mix(uint64(depth), uint64(at))%1000)*time.Microsecond, chain(k.Now(), depth-1))
				}
			}
		}
		for i := 0; i < 50; i++ {
			at := time.Duration(mix(7, uint64(i))%10000) * time.Microsecond
			k.At(at, chain(at, 10))
		}
		return &fired
	}
	const deadline = 8 * time.Millisecond

	ka := New(1)
	fa := build(ka)
	for ka.Pending() > 0 && ka.Now() < deadline {
		ka.Step()
	}
	kb := New(1)
	fb := build(kb)
	kb.Drain(deadline)

	if !reflect.DeepEqual(*fa, *fb) {
		t.Fatal("Drain fired a different event sequence than the manual Step loop")
	}
	if ka.Executed() != kb.Executed() || ka.Now() != kb.Now() || ka.Pending() != kb.Pending() {
		t.Fatalf("Drain state (exec %d, now %v, pending %d) != Step loop (exec %d, now %v, pending %d)",
			kb.Executed(), kb.Now(), kb.Pending(), ka.Executed(), ka.Now(), ka.Pending())
	}

	kc := New(1)
	fc := build(kc)
	for kc.StepN(7) > 0 {
		if kc.Now() >= deadline {
			break
		}
	}
	_ = fc // StepN has no deadline; just check it runs to exhaustion cleanly
	kc2 := New(1)
	build(kc2)
	if n := kc2.StepN(1 << 30); n == 0 {
		t.Fatal("StepN executed nothing")
	}
	if kc2.Pending() != 0 {
		t.Fatalf("StepN(max) left %d events pending", kc2.Pending())
	}
}

func BenchmarkKernelStepLoop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 10000 {
				k.After(time.Microsecond, tick)
			}
		}
		k.At(0, tick)
		deadline := time.Second
		for k.Pending() > 0 && k.Now() < deadline {
			k.Step()
		}
	}
}

func BenchmarkKernelDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := New(1)
		var tick func()
		n := 0
		tick = func() {
			n++
			if n < 10000 {
				k.After(time.Microsecond, tick)
			}
		}
		k.At(0, tick)
		k.Drain(time.Second)
	}
}

// BenchmarkParKernelPingPong measures the protocol overhead: two domains
// exchanging messages at exactly the lookahead horizon, the worst case for
// window amortization (one event per window).
func BenchmarkParKernelPingPong(b *testing.B) {
	const lookahead = 10 * time.Microsecond
	for i := 0; i < b.N; i++ {
		p, err := NewPar(1, 2, lookahead, 2)
		if err != nil {
			b.Fatal(err)
		}
		var ping func(src, dst int) func()
		n := 0
		ping = func(src, dst int) func() {
			return func() {
				n++
				if n < 2000 {
					p.Post(dst, src, p.DomainKernel(dst).Now()+lookahead, ping(dst, src))
				}
			}
		}
		p.DomainKernel(0).At(0, func() {
			p.Post(0, 1, lookahead, ping(0, 1))
		})
		p.Drain(time.Minute)
	}
}
