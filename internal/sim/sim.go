// Package sim is a deterministic discrete-event simulation kernel. It drives
// the emulated testbed in virtual time: every component (links, switch CPU,
// controller CPU, traffic sources) schedules closures on a shared Kernel,
// and the Kernel executes them in timestamp order with FIFO tie-breaking, so
// a given seed always replays the exact same execution.
//
// The kernel is single-threaded by design: determinism is what lets the
// benchmark harness regenerate the paper's figures reproducibly. Components
// must not retain goroutines; all concurrency is simulated.
//
// Concurrency contract: one Kernel (and everything scheduled on it) must be
// confined to a single goroutine, but independent Kernels share no state —
// not even a package-level RNG — so any number of simulations may run on
// different goroutines at once. The parallel experiment runner relies on
// exactly this: one kernel per sweep cell, many cells in flight.
//
// Hot-path design (DESIGN.md §10): the kernel recycles fired and cancelled
// Event structs through a kernel-local free list (safe precisely because of
// the single-goroutine confinement above), and the pending set is a concrete
// 4-ary min-heap rather than container/heap — no interface boxing, fewer
// cache-missing levels. Steady-state scheduling therefore allocates nothing.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled closure. It is returned by At/After so callers can
// cancel pending work (for example the flow-granularity re-request timer).
//
// Handle validity: an Event handle is only meaningful while the event is
// pending. Once the event fires or is cancelled the kernel recycles the
// struct for a later At/After call, so callers that keep a handle must drop
// it (set it to nil) no later than inside the event's own callback —
// cancelling through a stale handle could cancel an unrelated future event.
// The timer fields in switchd follow exactly this discipline.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// Time reports when the event is scheduled to fire. It is only valid while
// the event is pending (see the handle-validity note on Event).
func (e *Event) Time() time.Duration { return e.at }

// eventHeap is a 4-ary min-heap of events ordered by (time, sequence).
// Sequence numbers are unique, so the order is total and every conforming
// heap implementation pops the exact same event sequence — which is what
// keeps the pooled kernel replay-identical to the original container/heap
// version (verified by TestKernelMatchesReferenceOrder).
//
// A 4-ary layout halves the tree depth of a binary heap: sift-down does more
// comparisons per level but against adjacent slice elements (one cache
// line), which wins for the short-lived, high-churn event populations the
// testbed produces.
type eventHeap []*Event

// before reports the strict (time, seq) order; seq uniqueness means equal
// elements never occur.
func before(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h eventHeap) siftUp(i int) {
	e := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !before(e, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = e
	e.index = i
}

func (h eventHeap) siftDown(i int) {
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if before(h[j], h[m]) {
				m = j
			}
		}
		if !before(h[m], e) {
			break
		}
		h[i] = h[m]
		h[i].index = i
		i = m
	}
	h[i] = e
	e.index = i
}

func (h *eventHeap) push(e *Event) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

func (h *eventHeap) pop() *Event {
	old := *h
	n := len(old) - 1
	top := old[0]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if n > 0 {
		old[0] = last
		(*h).siftDown(0)
	}
	top.index = -1
	return top
}

// remove deletes the event at heap index i.
func (h *eventHeap) remove(i int) {
	old := *h
	n := len(old) - 1
	e := old[i]
	last := old[n]
	old[n] = nil
	*h = old[:n]
	if i < n {
		old[i] = last
		last.index = i
		hh := *h
		hh.siftDown(i)
		if last.index == i {
			hh.siftUp(i)
		}
	}
	e.index = -1
}

// maxFree bounds the event free list so a transient burst of pending events
// cannot pin its peak memory for the rest of the run. Steady-state churn
// stays far below this.
const maxFree = 4096

// Kernel is the event loop. Create one with New; the zero value is not
// usable because it lacks a seeded RNG.
type Kernel struct {
	now      time.Duration
	events   eventHeap
	seq      uint64
	rng      *rand.Rand
	executed uint64
	free     []*Event // recycled Event structs; kernel-local, no locking
}

// New creates a kernel whose random source is seeded deterministically.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand exposes the kernel's deterministic random source. All simulated
// randomness (jitter, service-time noise) must come from here so runs are
// replayable from the seed.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed reports how many events have run, a cheap progress/debug signal.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are scheduled but not yet executed.
func (k *Kernel) Pending() int { return len(k.events) }

// acquire takes an Event from the free list (or allocates) and stamps it
// with a fresh sequence number.
func (k *Kernel) acquire(t time.Duration, fn func()) *Event {
	k.seq++
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		e.at, e.seq, e.fn = t, k.seq, fn
		return e
	}
	return &Event{at: t, seq: k.seq, fn: fn}
}

// release returns a fired or cancelled event to the free list.
func (k *Kernel) release(e *Event) {
	e.fn = nil
	if len(k.free) < maxFree {
		k.free = append(k.free, e)
	}
}

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt every
// downstream measurement.
func (k *Kernel) At(t time.Duration, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	e := k.acquire(t, fn)
	k.events.push(e)
	return e
}

// After schedules fn d after the current virtual time. Negative d means now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false — but note the
// handle-validity contract on Event: a handle kept past its event's firing
// may already designate a recycled, unrelated event.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	k.events.remove(e.index)
	k.release(e)
	return true
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := k.events.pop()
	k.now = e.at
	fn := e.fn
	k.release(e)
	k.executed++
	fn()
	return true
}

// Run executes events until none remain.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// StepN executes up to n earliest pending events and reports how many ran.
// It is Step batched: one bounds check per event instead of a full
// call-and-test round trip per event in the caller's loop.
func (k *Kernel) StepN(n int) int {
	ran := 0
	for ran < n && len(k.events) > 0 {
		e := k.events.pop()
		k.now = e.at
		fn := e.fn
		k.release(e)
		k.executed++
		fn()
		ran++
	}
	return ran
}

// Drain executes pending events until none remain or the clock has reached
// the deadline. The boundary rule is exactly the testbeds' historical
//
//	for k.Pending() > 0 && k.Now() < deadline { k.Step() }
//
// loop, inlined: every event strictly before the deadline runs, plus the
// single earliest event at or past it (popping it advances the clock past
// the deadline, which stops the loop). Events beyond that stay pending and
// the clock is not advanced artificially — unlike RunUntil, which stops
// *before* executing past-deadline events and then pins the clock to the
// deadline. TestKernelDrainMatchesStepLoop pins the equivalence.
func (k *Kernel) Drain(deadline time.Duration) {
	for len(k.events) > 0 && k.now < deadline {
		e := k.events.pop()
		k.now = e.at
		fn := e.fn
		k.release(e)
		k.executed++
		fn()
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled after the deadline stay pending.
func (k *Kernel) RunUntil(deadline time.Duration) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }
