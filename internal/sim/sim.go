// Package sim is a deterministic discrete-event simulation kernel. It drives
// the emulated testbed in virtual time: every component (links, switch CPU,
// controller CPU, traffic sources) schedules closures on a shared Kernel,
// and the Kernel executes them in timestamp order with FIFO tie-breaking, so
// a given seed always replays the exact same execution.
//
// The kernel is single-threaded by design: determinism is what lets the
// benchmark harness regenerate the paper's figures reproducibly. Components
// must not retain goroutines; all concurrency is simulated.
//
// Concurrency contract: one Kernel (and everything scheduled on it) must be
// confined to a single goroutine, but independent Kernels share no state —
// not even a package-level RNG — so any number of simulations may run on
// different goroutines at once. The parallel experiment runner relies on
// exactly this: one kernel per sweep cell, many cells in flight.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled closure. It is returned by At/After so callers can
// cancel pending work (for example the flow-granularity re-request timer).
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once popped or cancelled
}

// Time reports when the event is (or was) scheduled to fire.
func (e *Event) Time() time.Duration { return e.at }

// eventHeap orders events by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the event loop. Create one with New; the zero value is not
// usable because it lacks a seeded RNG.
type Kernel struct {
	now      time.Duration
	events   eventHeap
	seq      uint64
	rng      *rand.Rand
	executed uint64
}

// New creates a kernel whose random source is seeded deterministically.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand exposes the kernel's deterministic random source. All simulated
// randomness (jitter, service-time noise) must come from here so runs are
// replayable from the seed.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Executed reports how many events have run, a cheap progress/debug signal.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are scheduled but not yet executed.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn at absolute virtual time t. Scheduling in the past is a
// programming error and panics: silently reordering time would corrupt every
// downstream measurement.
func (k *Kernel) At(t time.Duration, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	k.seq++
	e := &Event{at: t, seq: k.seq, fn: fn}
	heap.Push(&k.events, e)
	return e
}

// After schedules fn d after the current virtual time. Negative d means now.
func (k *Kernel) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return k.At(k.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and reports false.
func (k *Kernel) Cancel(e *Event) bool {
	if e == nil || e.index < 0 {
		return false
	}
	heap.Remove(&k.events, e.index)
	e.index = -1
	e.fn = nil
	return true
}

// Step executes the single earliest pending event and reports whether one
// existed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*Event)
	k.now = e.at
	fn := e.fn
	e.fn = nil
	k.executed++
	fn()
	return true
}

// Run executes events until none remain.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled after the deadline stay pending.
func (k *Kernel) RunUntil(deadline time.Duration) {
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (k *Kernel) RunFor(d time.Duration) { k.RunUntil(k.now + d) }
