package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestKernelMatchesReferenceOrder is the replay guarantee the eventHeap
// comment promises: the pooled 4-ary-heap kernel must fire events in the
// exact order a straightforward reference scheduler does. The reference
// below shares no code with the kernel — it keeps pending events in a slice
// and picks the (time, seq) minimum by linear scan — so any recycling bug
// (a freed event resurfacing, a sift breaking the FIFO tie-break) shows up
// as an order divergence.

// scheduler is the common surface the workload drives. Handles are opaque;
// the workload only cancels handles of still-pending events, honouring the
// kernel's handle-validity contract.
type scheduler interface {
	schedule(at time.Duration, fn func()) any
	cancel(h any) bool
	now() time.Duration
	run()
}

// kernelSched adapts the real Kernel.
type kernelSched struct{ k *Kernel }

func (s kernelSched) schedule(at time.Duration, fn func()) any { return s.k.At(at, fn) }
func (s kernelSched) cancel(h any) bool                        { return s.k.Cancel(h.(*Event)) }
func (s kernelSched) now() time.Duration                       { return s.k.now }
func (s kernelSched) run()                                     { s.k.Run() }

// refSched is the reference: no heap, no free list, O(n) pop.
type refEvent struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

type refSched struct {
	clock   time.Duration
	seq     uint64
	pending []*refEvent
}

func (s *refSched) schedule(at time.Duration, fn func()) any {
	s.seq++
	e := &refEvent{at: at, seq: s.seq, fn: fn}
	s.pending = append(s.pending, e)
	return e
}

func (s *refSched) cancel(h any) bool {
	e := h.(*refEvent)
	if e.cancelled {
		return false
	}
	e.cancelled = true
	return true
}

func (s *refSched) now() time.Duration { return s.clock }

func (s *refSched) run() {
	for {
		min := -1
		for i, e := range s.pending {
			if e.cancelled {
				continue
			}
			if min < 0 || e.at < s.pending[min].at ||
				(e.at == s.pending[min].at && e.seq < s.pending[min].seq) {
				min = i
			}
		}
		if min < 0 {
			return
		}
		e := s.pending[min]
		s.pending = append(s.pending[:min], s.pending[min+1:]...)
		s.clock = e.at
		e.fn()
	}
}

// driveWorkload runs a seeded event program on sched and returns the ids in
// firing order. Callbacks reschedule children and cancel random pending
// events, so the heap sees pushes, pops and removals interleaved — the full
// surface the free list recycles through. Because both executions consume
// the rng from inside callbacks, any order divergence also desynchronises
// the rng and snowballs, making mismatches impossible to miss.
func driveWorkload(sched scheduler, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var fired []int
	pending := map[int]any{}
	var pendingIDs []int // insertion-ordered live ids, for deterministic picks
	nextID := 0
	budget := 2000 // total events ever created

	dropID := func(id int) {
		for i, v := range pendingIDs {
			if v == id {
				pendingIDs = append(pendingIDs[:i], pendingIDs[i+1:]...)
				return
			}
		}
	}

	var add func(at time.Duration)
	add = func(at time.Duration) {
		id := nextID
		nextID++
		h := sched.schedule(at, func() {
			delete(pending, id)
			dropID(id)
			fired = append(fired, id)
			// Spawn 0-2 children; many land at identical timestamps to
			// stress the seq tie-break.
			for i := rng.Intn(3); i > 0 && budget > 0; i-- {
				budget--
				add(sched.now() + time.Duration(rng.Intn(20))*time.Millisecond)
			}
			// Occasionally cancel a still-pending event.
			if len(pendingIDs) > 0 && rng.Intn(4) == 0 {
				victim := pendingIDs[rng.Intn(len(pendingIDs))]
				sched.cancel(pending[victim])
				delete(pending, victim)
				dropID(victim)
			}
		})
		pending[id] = h
		pendingIDs = append(pendingIDs, id)
	}

	for i := 0; i < 100 && budget > 0; i++ {
		budget--
		add(time.Duration(rng.Intn(50)) * time.Millisecond)
	}
	sched.run()
	return fired
}

func TestKernelMatchesReferenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		got := driveWorkload(kernelSched{New(0)}, seed)
		want := driveWorkload(&refSched{}, seed)
		if len(got) != len(want) {
			t.Fatalf("seed %d: kernel fired %d events, reference %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges at position %d: kernel event %d, reference event %d",
					seed, i, got[i], want[i])
			}
		}
	}
}
