package experiments

import (
	"fmt"
	"io"
	"math"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/telemetry"
	"sdnbuffer/internal/testbed"
)

// DelayDecompOptions scale the per-stage delay decomposition sweep: for each
// (series, rate, repeat) cell the platform runs with the telemetry recorder
// wired in, and the recorded spans are folded into one delay histogram per
// lifecycle stage.
type DelayDecompOptions struct {
	// Rates are the sending-rate sweep points in Mbps (default 20, 50, 80 —
	// light, moderate and heavy load on the 100 Mbps links).
	Rates []float64
	// Repeats is the number of seeds per point (default 3).
	Repeats int
	// Flows, PktsPerFlow, Group shape the interleaved-burst workload
	// (default 50/20/5, the §V shape: the miss path and the fast path both
	// appear).
	Flows, PktsPerFlow, Group int
	// FrameSize is the Ethernet frame size (default 1000).
	FrameSize int
	// Jitter is the pktgen pacing jitter (default 0.5).
	Jitter float64
	// SpanCapacity sizes each cell's tracer ring (default 1<<18). A cell
	// whose ring overflows fails the sweep: a decomposition over a partial
	// window would silently misreport the early stages.
	SpanCapacity int
	// Parallelism fans the (series, rate, repeat) grid across workers
	// (default GOMAXPROCS). Per-cell histograms are merged in a fixed order,
	// so output is byte-identical at any setting.
	Parallelism int
	// KernelWorkers is accepted for benchrunner flag symmetry; this
	// scenario runs the single-switch platform, which is always serial
	// (see FabricOptions.KernelWorkers for where the knob takes effect).
	KernelWorkers int
}

func (o DelayDecompOptions) withDefaults() DelayDecompOptions {
	if len(o.Rates) == 0 {
		o.Rates = []float64{20, 50, 80}
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Flows == 0 {
		o.Flows = 50
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 20
	}
	if o.Group == 0 {
		o.Group = 5
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.SpanCapacity == 0 {
		o.SpanCapacity = 1 << 18
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// DelayDecompSeries are the buffer configurations the decomposition
// compares: the no-buffer baseline against both buffering granularities.
func DelayDecompSeries() []Series {
	return []Series{SeriesNoBuffer, SeriesPacketGranularity, SeriesFlowGranularity}
}

// decompCell is one (series, rate, seed) run's decomposition plus the
// queueing-model inputs measured from the same spans.
type decompCell struct {
	decomp *telemetry.Decomposition
	// svcMsgs counts controller-service spans (answered control messages),
	// ctlBusy sums controller-CPU service intervals, elapsed is the cell's
	// measurement window — together they estimate the M/M/c arrival and
	// service rates.
	svcMsgs int64
	ctlBusy time.Duration
	elapsed time.Duration
}

// DelayDecompPoint is one (series, rate) aggregate: merged per-stage delay
// statistics and the single-node queueing model's prediction for the
// controller-service stage at the measured load.
type DelayDecompPoint struct {
	RateMbps float64
	// Stages reports every decomposition stage in DecompStages order
	// (seconds).
	Stages []telemetry.StageStats
	// Lambda is the measured controller message arrival rate (msgs/s), Mu
	// the measured per-message service rate of one core (msgs/s), Servers
	// the controller core count.
	Lambda, Mu float64
	Servers    int
	// ModelSojourn is the M/M/c mean sojourn prediction W = 1/µ + Wq in
	// seconds (Inf when the measured load saturates the model, NaN when no
	// control messages were observed). Compare against the
	// controller-service stage's measured mean.
	ModelSojourn float64
}

// DelayDecompSeriesResult is one series' sweep.
type DelayDecompSeriesResult struct {
	Series Series
	Points []DelayDecompPoint
}

// DelayDecompResult is a completed delay-decomposition sweep.
type DelayDecompResult struct {
	Options DelayDecompOptions
	Series  []DelayDecompSeriesResult
}

func runDelayDecompCell(s Series, opts DelayDecompOptions, rate float64, seed int64) (decompCell, error) {
	cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
	cfg.Seed = seed
	cfg.Telemetry = &telemetry.Config{SpanCapacity: opts.SpanCapacity}
	tb, err := testbed.New(cfg)
	if err != nil {
		return decompCell{}, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}, opts.Flows, opts.PktsPerFlow, opts.Group)
	if err != nil {
		return decompCell{}, err
	}
	res, err := tb.Run(sched)
	if err != nil {
		return decompCell{}, err
	}
	tracer := tb.Telemetry().Tracer()
	if d := tracer.Dropped(); d > 0 {
		return decompCell{}, fmt.Errorf("tracer ring overflowed (%d spans dropped); raise SpanCapacity above %d",
			d, opts.SpanCapacity)
	}
	dec, err := telemetry.NewDecomposition(nil)
	if err != nil {
		return decompCell{}, err
	}
	out := decompCell{decomp: dec, elapsed: res.Elapsed}
	for _, sp := range tracer.Snapshot() {
		dec.Add(sp)
		switch sp.Kind {
		case telemetry.KindControllerService:
			out.svcMsgs++
		case telemetry.KindControllerCPU:
			out.ctlBusy += sp.Duration()
		}
	}
	return out, nil
}

// ErlangC is the Erlang-C delay probability C(c, a): the probability an
// arrival to an M/M/c queue with offered load a = λ/µ Erlangs has to wait.
// It is the single-node model the related measurement literature fits SDN
// controller delay with; see EXPERIMENTS.md §delay-decomposition.
func ErlangC(c int, a float64) float64 {
	if c <= 0 || a <= 0 {
		return 0
	}
	if a >= float64(c) {
		return 1 // saturated: every arrival waits
	}
	// term accumulates a^k/k! iteratively to avoid factorial overflow.
	term := 1.0
	sum := 1.0 // k = 0
	for k := 1; k < c; k++ {
		term *= a / float64(k)
		sum += term
	}
	top := term * a / float64(c) * float64(c) / (float64(c) - a) // a^c/c! · c/(c−a)
	return top / (sum + top)
}

// MMcSojourn is the M/M/c mean sojourn time W = 1/µ + C(c,λ/µ)/(cµ−λ) in
// seconds. It returns +Inf at or beyond saturation and NaN for λ ≤ 0.
func MMcSojourn(lambda, mu float64, c int) float64 {
	if lambda <= 0 || mu <= 0 || c <= 0 {
		return math.NaN()
	}
	a := lambda / mu
	if a >= float64(c) {
		return math.Inf(1)
	}
	return 1/mu + ErlangC(c, a)/(float64(c)*mu-lambda)
}

// RunDelayDecomp executes the delay-decomposition sweep, fanning the
// (series, rate, repeat) grid across Parallelism workers and merging the
// per-cell stage histograms in a fixed order — the same determinism contract
// as Run, so table and CSV bytes are identical at any parallelism.
func RunDelayDecomp(opts DelayDecompOptions) (*DelayDecompResult, error) {
	opts = opts.withDefaults()
	series := DelayDecompSeries()
	servers := testbed.DefaultConfig(series[0].Buffer, series[0].BufferCapacity).Controller.CPUCores
	type dcell struct{ s, r, rep int }
	var cells []dcell
	for si := range series {
		for ri := range opts.Rates {
			for rep := 0; rep < opts.Repeats; rep++ {
				cells = append(cells, dcell{s: si, r: ri, rep: rep})
			}
		}
	}
	vals := make([]decompCell, len(cells))
	errs := make([]error, len(cells))
	workers := opts.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if failed.Load() {
					continue
				}
				c := cells[i]
				v, err := runDelayDecompCell(series[c.s], opts, opts.Rates[c.r], int64(c.rep)+1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("experiments: delay-decomp %s at %g Mbps rep %d: %w",
				series[c.s].Name, opts.Rates[c.r], c.rep, err)
		}
	}

	out := &DelayDecompResult{Options: opts}
	i := 0
	for _, s := range series {
		sr := DelayDecompSeriesResult{Series: s}
		for _, rate := range opts.Rates {
			merged, err := telemetry.NewDecomposition(nil)
			if err != nil {
				return nil, err
			}
			var svcMsgs int64
			var ctlBusy, elapsed time.Duration
			for rep := 0; rep < opts.Repeats; rep++ {
				v := vals[i]
				i++
				if err := merged.Merge(v.decomp); err != nil {
					return nil, err
				}
				svcMsgs += v.svcMsgs
				ctlBusy += v.ctlBusy
				elapsed += v.elapsed
			}
			p := DelayDecompPoint{
				RateMbps: rate,
				Stages:   merged.Stats(),
				Servers:  servers,
			}
			if elapsed > 0 {
				p.Lambda = float64(svcMsgs) / elapsed.Seconds()
			}
			if ctlBusy > 0 {
				p.Mu = float64(svcMsgs) / ctlBusy.Seconds()
			}
			p.ModelSojourn = MMcSojourn(p.Lambda, p.Mu, servers)
			sr.Points = append(sr.Points, p)
		}
		out.Series = append(out.Series, sr)
	}
	return out, nil
}

// measuredControllerService returns the measured controller-service stage of
// a point (nil if absent).
func (p *DelayDecompPoint) measuredControllerService() *telemetry.StageStats {
	for i := range p.Stages {
		if p.Stages[i].Stage == telemetry.KindControllerService {
			return &p.Stages[i]
		}
	}
	return nil
}

// WriteTable renders the sweep as fixed-width per-stage delay tables, one
// block per (series, rate), each followed by the M/M/c model comparison for
// the controller-service stage.
func (r *DelayDecompResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "delay-decomp — per-stage delay decomposition (%d×%d-packet flows, %d repeats)\n",
		r.Options.Flows, r.Options.PktsPerFlow, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-20s %6s %-20s %8s %10s %10s %10s %10s %10s",
		"series", "Mbps", "stage", "count", "mean_us", "p50_us", "p95_us", "p99_us", "max_us")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			for _, st := range p.Stages {
				if _, err := fmt.Fprintf(w, "%-20s %6g %-20s %8d %10s %10s %10s %10s %10s\n",
					s.Series.Name, p.RateMbps, st.Stage, st.Count,
					telemetry.Micros(st.Mean), telemetry.Micros(st.P50),
					telemetry.Micros(st.P95), telemetry.Micros(st.P99),
					telemetry.Micros(st.Max)); err != nil {
					return err
				}
			}
			meas := p.measuredControllerService()
			if meas != nil && meas.Count > 0 {
				if _, err := fmt.Fprintf(w,
					"%-20s %6g model: M/M/%d λ=%.0f/s µ=%.0f/s → sojourn %s µs (measured %s µs)\n",
					s.Series.Name, p.RateMbps, p.Servers, p.Lambda, p.Mu,
					telemetry.Micros(p.ModelSojourn), telemetry.Micros(meas.Mean)); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the measured stage statistics as CSV rows:
// series,rate_mbps,stage,count,mean_us,p50_us,p95_us,p99_us,max_us.
// Output is byte-identical at any Parallelism.
func (r *DelayDecompResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "series,rate_mbps,stage,count,mean_us,p50_us,p95_us,p99_us,max_us"); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			for _, st := range p.Stages {
				if _, err := fmt.Fprintf(w, "%s,%g,%s,%d,%s,%s,%s,%s,%s\n",
					s.Series.Name, p.RateMbps, st.Stage, st.Count,
					telemetry.Micros(st.Mean), telemetry.Micros(st.P50),
					telemetry.Micros(st.P95), telemetry.Micros(st.P99),
					telemetry.Micros(st.Max)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// RunTraced executes one (series, rate) run with the telemetry recorder
// wired in and returns the testbed for span and flow-record export — the
// benchrunner -trace path.
func RunTraced(s Series, opts DelayDecompOptions, rate float64, seed int64) (*testbed.Testbed, error) {
	opts = opts.withDefaults()
	cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
	cfg.Seed = seed
	cfg.Telemetry = &telemetry.Config{SpanCapacity: opts.SpanCapacity}
	tb, err := testbed.New(cfg)
	if err != nil {
		return nil, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}, opts.Flows, opts.PktsPerFlow, opts.Group)
	if err != nil {
		return nil, err
	}
	if _, err := tb.Run(sched); err != nil {
		return nil, err
	}
	return tb, nil
}
