package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/chaos"
	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/switchd"
	"sdnbuffer/internal/testbed"
)

// SeriesFlowHardened is the flow-granularity mechanism with the re-request
// budget enabled: after 8 attempts (backing off 200% per resend) the flow's
// buffer is released and its packets fall back to full-packet packet_ins.
var SeriesFlowHardened = Series{
	Name: "flow-hardened",
	Buffer: openflow.FlowBufferConfig{
		Granularity:         openflow.GranularityFlow,
		RerequestTimeoutMs:  50,
		MaxRerequests:       8,
		RerequestBackoffPct: 200,
	},
	BufferCapacity: 256,
}

// ResilienceOptions scale the loss-rate × mechanism sweep. The zero value is
// filled with the defaults the report quotes.
type ResilienceOptions struct {
	// LossRates are the control-channel loss probabilities swept (default
	// 0, 1%, 2%, 5%, 10%, both directions).
	LossRates []float64
	// BurstLen, when > 1, switches the loss model from i.i.d. to
	// Gilbert–Elliott with this mean burst length (in control messages).
	BurstLen float64
	// RateMbps is the fixed workload sending rate (default 50).
	RateMbps float64
	// Repeats is the number of seeds per point (default 3).
	Repeats int
	// Flows, PktsPerFlow, Group shape the interleaved-burst workload
	// (default 50/20/5, the §V shape).
	Flows, PktsPerFlow, Group int
	// FrameSize is the Ethernet frame size (default 1000).
	FrameSize int
	// Jitter is the pktgen pacing jitter (default 0.5).
	Jitter float64
	// BufferExpiry bounds buffered-packet lifetime so units stranded by a
	// lost request eventually expire (default 1s).
	BufferExpiry time.Duration
	// Parallelism fans the (series, loss, repeat) grid across workers
	// (default GOMAXPROCS). Results are folded in a fixed order, so output
	// is byte-identical at any setting.
	Parallelism int
	// KernelWorkers is accepted for benchrunner flag symmetry; this
	// scenario runs the single-switch platform, which is always serial
	// (see FabricOptions.KernelWorkers for where the knob takes effect).
	KernelWorkers int
}

func (o ResilienceOptions) withDefaults() ResilienceOptions {
	if len(o.LossRates) == 0 {
		o.LossRates = []float64{0, 0.01, 0.02, 0.05, 0.10}
	}
	if o.RateMbps == 0 {
		o.RateMbps = 50
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	if o.Flows == 0 {
		o.Flows = 50
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 20
	}
	if o.Group == 0 {
		o.Group = 5
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.BufferExpiry == 0 {
		o.BufferExpiry = time.Second
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// resilienceCell is the raw metric set of one (series, loss, seed) run.
type resilienceCell struct {
	delivered, sent int64
	rerequests      uint64
	giveups         uint64
	fallbacks       uint64
	leaked          int
	dups, misorders int64
}

// ResiliencePoint aggregates one loss rate of one series across repeats.
type ResiliencePoint struct {
	LossRate float64
	// Delivery is the per-repeat delivered/sent ratio.
	Delivery metrics.Summary
	// Rerequests, Giveups and Fallbacks are summed across repeats.
	Rerequests, Giveups, Fallbacks uint64
	// Leaked is the worst pool occupancy left at quiescence across repeats
	// (the acceptance criterion demands zero for the flow series).
	Leaked int
	// Dups and Misorders sum duplicate and out-of-order workload emissions
	// observed at the switch's transmit tap.
	Dups, Misorders int64
}

// ResilienceSeriesResult is one mechanism's curve.
type ResilienceSeriesResult struct {
	Series Series
	Points []ResiliencePoint
}

// ResilienceResult is a completed loss-rate × mechanism sweep.
type ResilienceResult struct {
	Options ResilienceOptions
	Series  []ResilienceSeriesResult
}

// ResilienceSeries are the mechanisms the sweep compares: packet granularity
// (no re-request), flow granularity (retry forever) and the hardened flow
// mechanism (bounded retries with backoff and give-up).
func ResilienceSeries() []Series {
	return []Series{SeriesPacketGranularity, SeriesFlowGranularity, SeriesFlowHardened}
}

// resilienceConfig builds the testbed for one cell: §V platform, combined
// flow_mods (atomic install+release keeps drains exactly-once under
// duplicated re-requests) and the cell's loss plan.
func resilienceConfig(s Series, opts ResilienceOptions, loss float64, seed int64) (testbed.Config, error) {
	cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
	cfg.Seed = seed
	cfg.Switch.Datapath.BufferExpiry = opts.BufferExpiry
	cfg.Forwarder.CombinedFlowMod = true
	if loss > 0 {
		if opts.BurstLen > 1 {
			plan, err := chaos.BurstyLoss(loss, opts.BurstLen)
			if err != nil {
				return cfg, err
			}
			cfg.Chaos = plan
		} else {
			cfg.Chaos = chaos.SymmetricLoss(loss)
		}
	}
	return cfg, nil
}

func runResilienceCell(s Series, opts ResilienceOptions, loss float64, seed int64) (resilienceCell, error) {
	cfg, err := resilienceConfig(s, opts, loss, seed)
	if err != nil {
		return resilienceCell{}, err
	}
	tb, err := testbed.New(cfg)
	if err != nil {
		return resilienceCell{}, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  opts.RateMbps,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}, opts.Flows, opts.PktsPerFlow, opts.Group)
	if err != nil {
		return resilienceCell{}, err
	}
	res, err := tb.Run(sched)
	if err != nil {
		return resilienceCell{}, err
	}
	return resilienceCell{
		delivered:  res.FramesDelivered,
		sent:       int64(res.FramesSent),
		rerequests: res.Rerequests,
		giveups:    res.Giveups,
		fallbacks:  res.BufferFallbacks,
		leaked:     res.BufferUnitsLeaked,
		dups:       res.DupEmissions,
		misorders:  res.OrderViolations,
	}, nil
}

// RunResilience executes the loss-rate × mechanism sweep, fanning the
// (series, loss, repeat) grid across Parallelism workers and folding the
// per-cell metrics in a fixed order — the same determinism contract as Run.
func RunResilience(opts ResilienceOptions) (*ResilienceResult, error) {
	opts = opts.withDefaults()
	series := ResilienceSeries()
	type rcell struct{ s, l, rep int }
	var cells []rcell
	for si := range series {
		for li := range opts.LossRates {
			for rep := 0; rep < opts.Repeats; rep++ {
				cells = append(cells, rcell{s: si, l: li, rep: rep})
			}
		}
	}
	vals := make([]resilienceCell, len(cells))
	errs := make([]error, len(cells))
	workers := opts.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if failed.Load() {
					continue
				}
				c := cells[i]
				v, err := runResilienceCell(series[c.s], opts, opts.LossRates[c.l], int64(c.rep)+1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("experiments: resilience %s at loss %g rep %d: %w",
				series[c.s].Name, opts.LossRates[c.l], c.rep, err)
		}
	}

	out := &ResilienceResult{Options: opts}
	i := 0
	for _, s := range series {
		sr := ResilienceSeriesResult{Series: s}
		for _, loss := range opts.LossRates {
			p := ResiliencePoint{LossRate: loss}
			for rep := 0; rep < opts.Repeats; rep++ {
				v := vals[i]
				i++
				if v.sent > 0 {
					p.Delivery.Observe(float64(v.delivered) / float64(v.sent))
				}
				p.Rerequests += v.rerequests
				p.Giveups += v.giveups
				p.Fallbacks += v.fallbacks
				if v.leaked > p.Leaked {
					p.Leaked = v.leaked
				}
				p.Dups += v.dups
				p.Misorders += v.misorders
			}
			sr.Points = append(sr.Points, p)
		}
		out.Series = append(out.Series, sr)
	}
	return out, nil
}

// WriteTable renders the sweep as a fixed-width text table, one row per
// (series, loss rate).
func (r *ResilienceResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "resilience — delivery under control-channel loss (rate %g Mbps, %d repeats)\n",
		r.Options.RateMbps, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-20s %8s %10s %10s %8s %9s %7s %6s %9s",
		"series", "loss", "delivery", "±sd", "rereq", "giveups", "fallbk", "leak", "dup/misord")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%-20s %8.3g %10.4f %10.4f %8d %9d %7d %6d %5d/%d\n",
				s.Series.Name, p.LossRate, p.Delivery.Mean(), p.Delivery.StdDev(),
				p.Rerequests, p.Giveups, p.Fallbacks, p.Leaked, p.Dups, p.Misorders); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the sweep as CSV rows:
// series,loss_rate,delivery_mean,delivery_stddev,delivery_min,rerequests,giveups,fallbacks,leaked,dups,misorders.
func (r *ResilienceResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "series,loss_rate,delivery_mean,delivery_stddev,delivery_min,rerequests,giveups,fallbacks,leaked,dups,misorders"); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g,%g,%g,%d,%d,%d,%d,%d,%d\n",
				s.Series.Name, p.LossRate, p.Delivery.Mean(), p.Delivery.StdDev(), p.Delivery.Min(),
				p.Rerequests, p.Giveups, p.Fallbacks, p.Leaked, p.Dups, p.Misorders); err != nil {
				return err
			}
		}
	}
	return nil
}

// OutageOptions configure the control-channel blackout scenario.
type OutageOptions struct {
	// Window is the blackout (default 40ms–120ms, mid-workload).
	Window netem.Window
	// RateMbps, Flows, PktsPerFlow, Group, FrameSize, Jitter shape the
	// workload exactly as in ResilienceOptions.
	RateMbps                  float64
	Flows, PktsPerFlow, Group int
	FrameSize                 int
	Jitter                    float64
	// Seed drives the run (default 1).
	Seed int64
	// BufferExpiry as in ResilienceOptions (default 1s).
	BufferExpiry time.Duration
}

func (o OutageOptions) withDefaults() OutageOptions {
	if o.Window == (netem.Window{}) {
		o.Window = netem.Window{Start: 40 * time.Millisecond, End: 120 * time.Millisecond}
	}
	if o.RateMbps == 0 {
		o.RateMbps = 50
	}
	if o.Flows == 0 {
		o.Flows = 50
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 20
	}
	if o.Group == 0 {
		o.Group = 5
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BufferExpiry == 0 {
		o.BufferExpiry = time.Second
	}
	return o
}

// OutageRow is one (mechanism, fail mode) cell of the outage scenario.
type OutageRow struct {
	Series   string
	FailMode switchd.FailMode
	// Delivery is delivered/sent for the run.
	Delivery float64
	// StandaloneForwards and ControlDownMisses are the datapath fail-mode
	// counters; Giveups/Leaked/Dups/Misorders as in ResiliencePoint.
	StandaloneForwards uint64
	ControlDownMisses  uint64
	Giveups            uint64
	Leaked             int
	Dups, Misorders    int64
}

// RunOutage runs the blackout scenario for {no-buffer, flow-granularity} ×
// {fail-secure, fail-standalone}: the switch sees the control channel die
// mid-workload, degrades per its fail mode, and recovers when the window
// ends. Four cells, run serially — determinism is trivial.
func RunOutage(opts OutageOptions) ([]OutageRow, error) {
	opts = opts.withDefaults()
	series := []Series{SeriesNoBuffer, SeriesFlowGranularity}
	modes := []switchd.FailMode{switchd.FailSecure, switchd.FailStandalone}
	var rows []OutageRow
	for _, s := range series {
		for _, mode := range modes {
			cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
			cfg.Seed = opts.Seed
			cfg.Switch.Datapath.BufferExpiry = opts.BufferExpiry
			cfg.Switch.Datapath.FailMode = mode
			cfg.Forwarder.CombinedFlowMod = true
			cfg.Chaos = &chaos.Plan{
				Name:          fmt.Sprintf("outage-%s-%s", s.Name, mode),
				SwitchOutages: []netem.Window{opts.Window},
			}
			tb, err := testbed.New(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: outage %s/%s: %w", s.Name, mode, err)
			}
			sched, err := pktgen.InterleavedBursts(pktgen.Config{
				FrameSize: opts.FrameSize,
				RateMbps:  opts.RateMbps,
				Jitter:    opts.Jitter,
				Seed:      opts.Seed,
				SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
				DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
				DstIP:     netip.MustParseAddr("10.0.0.2"),
			}, opts.Flows, opts.PktsPerFlow, opts.Group)
			if err != nil {
				return nil, err
			}
			res, err := tb.Run(sched)
			if err != nil {
				return nil, fmt.Errorf("experiments: outage %s/%s: %w", s.Name, mode, err)
			}
			row := OutageRow{
				Series:             s.Name,
				FailMode:           mode,
				StandaloneForwards: res.StandaloneForwards,
				ControlDownMisses:  res.ControlDownMisses,
				Giveups:            res.Giveups,
				Leaked:             res.BufferUnitsLeaked,
				Dups:               res.DupEmissions,
				Misorders:          res.OrderViolations,
			}
			if res.FramesSent > 0 {
				row.Delivery = float64(res.FramesDelivered) / float64(res.FramesSent)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WriteOutageTable renders the blackout scenario rows.
func WriteOutageTable(w io.Writer, opts OutageOptions, rows []OutageRow) error {
	opts = opts.withDefaults()
	if _, err := fmt.Fprintf(w, "outage — control blackout %v–%v at %g Mbps\n",
		opts.Window.Start, opts.Window.End, opts.RateMbps); err != nil {
		return err
	}
	header := fmt.Sprintf("%-18s %-16s %10s %11s %10s %8s %6s %9s",
		"series", "fail-mode", "delivery", "standalone", "downmiss", "giveups", "leak", "dup/misord")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-18s %-16s %10.4f %11d %10d %8d %6d %5d/%d\n",
			r.Series, r.FailMode, r.Delivery, r.StandaloneForwards, r.ControlDownMisses,
			r.Giveups, r.Leaked, r.Dups, r.Misorders); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteOutageCSV renders the blackout rows as CSV:
// series,fail_mode,delivery,standalone_forwards,control_down_misses,giveups,leaked,dups,misorders.
func WriteOutageCSV(w io.Writer, rows []OutageRow, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "series,fail_mode,delivery,standalone_forwards,control_down_misses,giveups,leaked,dups,misorders"); err != nil {
			return err
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%g,%d,%d,%d,%d,%d,%d\n",
			r.Series, r.FailMode, r.Delivery, r.StandaloneForwards, r.ControlDownMisses,
			r.Giveups, r.Leaked, r.Dups, r.Misorders); err != nil {
			return err
		}
	}
	return nil
}
