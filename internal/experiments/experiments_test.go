package experiments

import (
	"reflect"
	"strings"
	"testing"

	"sdnbuffer/internal/testbed"
)

// quickOpts keeps experiment tests fast: three rates, one seed, small
// workloads.
func quickOpts() Options {
	return Options{
		Rates:   []float64{20, 50, 80},
		Repeats: 1,
		FlowsA:  200,
		FlowsB:  20, PktsPerFlowB: 10, GroupB: 5,
	}
}

func TestAllDefinitionsComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("experiments = %d, want 16 (every figure of the paper)", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Metric == "" || e.PaperClaim == "" {
			t.Errorf("%q: incomplete definition", e.ID)
		}
		if e.Extract == nil {
			t.Errorf("%q: nil extractor", e.ID)
		}
		if len(e.Series) < 2 {
			t.Errorf("%q: %d series", e.ID, len(e.Series))
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9a")
	if err != nil || e.ID != "fig9a" {
		t.Errorf("ByID(fig9a) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID accepted unknown id")
	}
}

func TestRunFig2aShape(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp, quickOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	noBuf, err := res.FindSeries("no-buffer")
	if err != nil {
		t.Fatal(err)
	}
	buf256, err := res.FindSeries("buffer-256")
	if err != nil {
		t.Fatal(err)
	}
	// No-buffer load grows with rate; buffered load is far below it.
	for i := 1; i < len(noBuf.Points); i++ {
		if noBuf.Points[i].Mean <= noBuf.Points[i-1].Mean {
			t.Errorf("no-buffer load not increasing: %+v", noBuf.Points)
		}
	}
	for i := range buf256.Points {
		if buf256.Points[i].Mean > 0.3*noBuf.Points[i].Mean {
			t.Errorf("rate %g: buffered load %g not well below no-buffer %g",
				buf256.Points[i].RateMbps, buf256.Points[i].Mean, noBuf.Points[i].Mean)
		}
	}
	red, err := res.MeanReduction("no-buffer", "buffer-256")
	if err != nil {
		t.Fatal(err)
	}
	if red < 70 {
		t.Errorf("mean load reduction = %.1f%%, want >= 70%% (paper: 78.7%%)", red)
	}
}

func TestRunFig13Shape(t *testing.T) {
	exp, err := ByID("fig13a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp, quickOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	red, err := res.MeanReduction("packet-granularity", "flow-granularity")
	if err != nil {
		t.Fatal(err)
	}
	if red < 30 {
		t.Errorf("buffer utilization improvement = %.1f%%, want >= 30%% (paper: 71.6%%)", red)
	}
}

func TestRunDeterministic(t *testing.T) {
	exp, err := ByID("fig8")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Rates: []float64{40}, Repeats: 2, FlowsA: 150}
	a, err := Run(exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Series {
		if a.Series[i].Points[0].Mean != b.Series[i].Points[0].Mean {
			t.Errorf("series %s differs across identical runs", a.Series[i].Series.Name)
		}
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	exp, err := ByID("fig11")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp, Options{Rates: []float64{30}, Repeats: 1, FlowsB: 10, PktsPerFlowB: 5, GroupB: 5})
	if err != nil {
		t.Fatal(err)
	}
	var tbl strings.Builder
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	for _, want := range []string{"fig11", "packet-granularity", "flow-granularity", "30", "overall"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv, true); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 { // header + 2 series × 1 rate
		t.Errorf("csv lines = %d, want 3:\n%s", len(lines), csv.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,series,") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestClaims(t *testing.T) {
	exp, err := ByID("fig9a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp, Options{Rates: []float64{50}, Repeats: 1, FlowsB: 20, PktsPerFlowB: 10, GroupB: 5})
	if err != nil {
		t.Fatal(err)
	}
	claims := res.Claims()
	if len(claims) == 0 {
		t.Fatal("no claims derived")
	}
	if !strings.Contains(claims[0], "fig9a") {
		t.Errorf("claim = %q", claims[0])
	}
}

func TestMeanReductionErrors(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Experiment: exp}
	if _, err := res.MeanReduction("no-buffer", "buffer-256"); err == nil {
		t.Error("MeanReduction on empty result succeeded")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Experiment{ID: "x"}, Options{}); err == nil {
		t.Error("Run accepted experiment without extractor")
	}
}

func TestWritePlot(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(exp, Options{Rates: []float64{20, 50, 80}, Repeats: 1, FlowsA: 150})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WritePlot(&sb); err != nil {
		t.Fatalf("WritePlot: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"fig2a", "o=no-buffer", "+=buffer-256", "Mbps"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// The plot must contain at least one glyph per series.
	for _, g := range []string{"o", "*", "+"} {
		if !strings.Contains(out, g) {
			t.Errorf("plot missing glyph %q", g)
		}
	}
}

func TestWritePlotEmpty(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	res := &Result{Experiment: exp}
	var sb strings.Builder
	if err := res.WritePlot(&sb); err != nil {
		t.Fatalf("WritePlot: %v", err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Errorf("empty plot output: %q", sb.String())
	}
}

func TestRunMatchesRunSerial(t *testing.T) {
	// One §IV figure and one §V figure: the parallel runner must reproduce
	// the reference serial fold bit for bit, including the order-sensitive
	// Welford tails, at any worker count.
	for _, id := range []string{"fig2a", "fig13a"} {
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			opts := Options{
				Rates:   []float64{20, 60},
				Repeats: 3,
				FlowsA:  60,
				FlowsB:  10, PktsPerFlowB: 4, GroupB: 5,
			}
			serial, err := RunSerial(exp, opts)
			if err != nil {
				t.Fatalf("RunSerial: %v", err)
			}
			for _, par := range []int{1, 4} {
				popts := opts
				popts.Parallelism = par
				got, err := Run(exp, popts)
				if err != nil {
					t.Fatalf("Run(parallel=%d): %v", par, err)
				}
				if !reflect.DeepEqual(serial.Series, got.Series) {
					t.Errorf("parallel=%d results differ from serial:\nserial: %+v\nparallel: %+v",
						par, serial.Series, got.Series)
				}
				var want, have strings.Builder
				if err := serial.WriteCSV(&want, true); err != nil {
					t.Fatal(err)
				}
				if err := got.WriteCSV(&have, true); err != nil {
					t.Fatal(err)
				}
				if want.String() != have.String() {
					t.Errorf("parallel=%d CSV differs from serial:\n%s\nvs\n%s",
						par, want.String(), have.String())
				}
			}
		})
	}
}

func TestRunPropagatesCellError(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Rates: []float64{20, 40}, Repeats: 2, FlowsA: 20, Parallelism: 4,
		Testbed: func(s Series) testbed.Config {
			cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
			cfg.HostLinkMbps = -1 // every cell fails to assemble
			return cfg
		},
	}
	_, perr := Run(exp, opts)
	if perr == nil {
		t.Fatal("parallel Run succeeded with an invalid testbed config")
	}
	_, serr := RunSerial(exp, opts)
	if serr == nil {
		t.Fatal("RunSerial succeeded with an invalid testbed config")
	}
	// Cells are claimed in index order, so the parallel runner reports the
	// same first-failing cell the serial loop does.
	if perr.Error() != serr.Error() {
		t.Errorf("parallel error %q != serial error %q", perr, serr)
	}
}

func TestAllExperimentsRunOnTinySweep(t *testing.T) {
	// Every figure's extractor, table writer and claim derivation must work
	// end to end, even on a tiny sweep.
	opts := Options{
		Rates:   []float64{40, 80},
		Repeats: 1,
		FlowsA:  80,
		FlowsB:  10, PktsPerFlowB: 5, GroupB: 5,
	}
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			res, err := Run(exp, opts)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(res.Series) != len(exp.Series) {
				t.Fatalf("series = %d, want %d", len(res.Series), len(exp.Series))
			}
			for _, s := range res.Series {
				if len(s.Points) != 2 {
					t.Errorf("%s: points = %d, want 2", s.Series.Name, len(s.Points))
				}
				if s.Overall.Count() != 2 {
					t.Errorf("%s: overall count = %d", s.Series.Name, s.Overall.Count())
				}
				for _, p := range s.Points {
					if p.Mean < 0 {
						t.Errorf("%s: negative metric %g at %g Mbps", s.Series.Name, p.Mean, p.RateMbps)
					}
				}
			}
			var sb strings.Builder
			if err := res.WriteTable(&sb); err != nil {
				t.Fatalf("WriteTable: %v", err)
			}
			if err := res.WritePlot(&sb); err != nil {
				t.Fatalf("WritePlot: %v", err)
			}
			if err := res.WriteCSV(&sb, true); err != nil {
				t.Fatalf("WriteCSV: %v", err)
			}
			if claims := res.Claims(); len(claims) == 0 {
				t.Errorf("no claims derived for %s", exp.ID)
			}
		})
	}
}
