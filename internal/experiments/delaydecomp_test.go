package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"sdnbuffer/internal/telemetry"
	"sdnbuffer/internal/testbed"
)

func quickDecompOptions(parallel int) DelayDecompOptions {
	return DelayDecompOptions{
		Rates:       []float64{30, 60},
		Repeats:     2,
		Flows:       20,
		PktsPerFlow: 10,
		Group:       5,
		Parallelism: parallel,
	}
}

func TestDelayDecompCSVIdenticalAtAnyParallelism(t *testing.T) {
	serial, err := RunDelayDecomp(quickDecompOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunDelayDecomp(quickDecompOptions(8))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := serial.WriteCSV(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("CSV differs between -parallel 1 and -parallel 8:\n%s\nvs\n%s", a.String(), b.String())
	}
	var tbl bytes.Buffer
	if err := parallel.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "model: M/M/") {
		t.Error("table missing the queueing-model comparison line")
	}
}

func TestDelayDecompStagesPopulated(t *testing.T) {
	res, err := RunDelayDecomp(quickDecompOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	buffered, err := findDecompSeries(res, SeriesFlowGranularity.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range buffered.Points {
		counts := map[telemetry.SpanKind]int64{}
		for _, st := range p.Stages {
			counts[st.Stage] = st.Count
		}
		for _, k := range []telemetry.SpanKind{
			telemetry.KindIngress, telemetry.KindPacketIn,
			telemetry.KindControllerService, telemetry.KindControllerRTT,
			telemetry.KindBufferDrain, telemetry.KindFlowSetup,
		} {
			if counts[k] == 0 {
				t.Errorf("%s at %g Mbps: stage %v has no samples", buffered.Series.Name, p.RateMbps, k)
			}
		}
		if p.ModelSojourn <= 0 || math.IsNaN(p.ModelSojourn) {
			t.Errorf("model sojourn %g at %g Mbps", p.ModelSojourn, p.RateMbps)
		}
	}
	// The no-buffer baseline must not report buffer residency.
	baseline, err := findDecompSeries(res, SeriesNoBuffer.Name)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range baseline.Points {
		for _, st := range p.Stages {
			if st.Stage == telemetry.KindBufferDrain && st.Count != 0 {
				t.Errorf("no-buffer series reports %d buffer-drain spans", st.Count)
			}
		}
	}
}

func findDecompSeries(r *DelayDecompResult, name string) (*DelayDecompSeriesResult, error) {
	for i := range r.Series {
		if r.Series[i].Series.Name == name {
			return &r.Series[i], nil
		}
	}
	return nil, errNoSeries(name)
}

type errNoSeries string

func (e errNoSeries) Error() string { return "no series " + string(e) }

func TestErlangCAndMMcSojourn(t *testing.T) {
	// M/M/1: C(1, a) = a, sojourn = 1/(µ−λ).
	if got := ErlangC(1, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ErlangC(1, 0.5) = %g, want 0.5", got)
	}
	lambda, mu := 50.0, 100.0
	if got, want := MMcSojourn(lambda, mu, 1), 1/(mu-lambda); math.Abs(got-want) > 1e-12 {
		t.Errorf("M/M/1 sojourn = %g, want %g", got, want)
	}
	// M/M/2 at a = 1 Erlang: C(2,1) = 1/3, W = 1/µ + (1/3)/(2µ−λ).
	if got, want := ErlangC(2, 1), 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("ErlangC(2, 1) = %g, want %g", got, want)
	}
	// Saturation and degenerate inputs.
	if !math.IsInf(MMcSojourn(200, 100, 1), 1) {
		t.Error("saturated M/M/1 sojourn not +Inf")
	}
	if !math.IsNaN(MMcSojourn(0, 100, 1)) {
		t.Error("zero-arrival sojourn not NaN")
	}
	if got := ErlangC(2, 3); got != 1 {
		t.Errorf("saturated ErlangC = %g, want 1", got)
	}
}

// TestLegacyCSVUnchangedWithTelemetry pins the acceptance criterion that
// wiring the recorder into a figure sweep leaves the legacy experiment CSV
// byte-identical: recording observes, never perturbs.
func TestLegacyCSVUnchangedWithTelemetry(t *testing.T) {
	exp, err := ByID("fig2a")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Rates:   []float64{30, 60},
		Repeats: 2,
		FlowsA:  200,
	}
	bare, err := Run(exp, opts)
	if err != nil {
		t.Fatal(err)
	}
	withTel := opts
	withTel.Testbed = func(s Series) testbed.Config {
		cfg := testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
		cfg.Telemetry = &telemetry.Config{}
		return cfg
	}
	traced, err := Run(exp, withTel)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := bare.WriteCSV(&a, true); err != nil {
		t.Fatal(err)
	}
	if err := traced.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("telemetry changed the legacy CSV:\n%s\nvs\n%s", a.String(), b.String())
	}
}
