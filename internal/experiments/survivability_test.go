package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sdnbuffer/internal/topo"
)

// survivabilityTestOptions is a reduced grid that still crosses both
// failure scenarios with sharded recovery.
func survivabilityTestOptions() SurvivabilityOptions {
	return SurvivabilityOptions{
		Topos:      []string{"leafspine:leaves=2,spines=2"},
		Mechanisms: []Series{SeriesFlowGranularity},
		Installs:   []topo.InstallMode{topo.InstallPath},
		Shards:     []int{1, 2},
		Repeats:    1,
	}
}

func survivabilityCSV(t *testing.T, opts SurvivabilityOptions) string {
	t.Helper()
	res, err := RunSurvivability(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestSurvivabilitySweep pins the sweep's acceptance columns: every cell
// reroutes, closes its drop ledger, and keeps the loop/duplication/leak
// counters at zero.
func TestSurvivabilitySweep(t *testing.T) {
	res, err := RunSurvivability(survivabilityTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Points), 2*2; got != want { // 2 scenarios × 2 shard counts
		t.Fatalf("%d points, want %d", got, want)
	}
	for _, p := range res.Points {
		label := p.Topo + "/" + p.Scenario + "/" + p.Series
		if p.Rerouted == 0 {
			t.Errorf("%s: no reroutes — the failure was never learned", label)
		}
		if p.ConvergeMs.Mean() <= 0 {
			t.Errorf("%s: convergence %v ms", label, p.ConvergeMs.Mean())
		}
		if p.Delivery.Mean() <= 0.5 {
			t.Errorf("%s: delivery %v", label, p.Delivery.Mean())
		}
		if p.LedgerGap != 0 {
			t.Errorf("%s: %d unnamed losses", label, p.LedgerGap)
		}
		if p.LoopFrames != 0 || p.Blackholes != 0 || p.Dups != 0 || p.Misdelivered != 0 ||
			p.LateReorders != 0 || p.LeakedUnits != 0 || p.LeakedBytes != 0 {
			t.Errorf("%s: invariant counters nonzero: %+v", label, p)
		}
	}
}

// TestSurvivabilityDeterministic pins the sweep's reproducibility contract:
// the CSV is byte-identical when the grid fans across workers and when each
// cell runs on the parallel kernel.
func TestSurvivabilityDeterministic(t *testing.T) {
	base := survivabilityTestOptions()
	base.Parallelism = 1
	want := survivabilityCSV(t, base)
	if !strings.Contains(want, "leafspine") {
		t.Fatalf("csv missing rows:\n%s", want)
	}

	fanned := survivabilityTestOptions()
	fanned.Parallelism = 4
	if got := survivabilityCSV(t, fanned); got != want {
		t.Errorf("parallel sweep CSV differs:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}

	parKernel := survivabilityTestOptions()
	parKernel.Parallelism = 1
	parKernel.KernelWorkers = 4
	if got := survivabilityCSV(t, parKernel); got != want {
		t.Errorf("parallel-kernel sweep CSV differs:\n--- serial ---\n%s--- kernelworkers=4 ---\n%s", want, got)
	}
}

// TestSurvivabilityUnknownScenario pins input validation: an unknown
// scenario fails the sweep instead of silently running nothing.
func TestSurvivabilityUnknownScenario(t *testing.T) {
	opts := survivabilityTestOptions()
	opts.Scenarios = []string{"meteor"}
	if _, err := RunSurvivability(opts); err == nil || !strings.Contains(err.Error(), "meteor") {
		t.Fatalf("err = %v", err)
	}
}
