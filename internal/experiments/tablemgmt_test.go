package experiments

import (
	"bytes"
	"strings"
	"testing"

	"sdnbuffer/internal/flowtable"
)

// tableMgmtTestOptions is a reduced grid that still crosses eviction
// policies with aggregation on and off under genuine table pressure.
func tableMgmtTestOptions() TableMgmtOptions {
	return TableMgmtOptions{
		Topos:       []string{"line:switches=3"},
		Capacities:  []int{8},
		Policies:    []flowtable.EvictionPolicy{flowtable.EvictNone, flowtable.EvictLRU},
		Aggregation: []bool{false, true},
		Mechanisms:  []Series{SeriesPacketGranularity},
		Flows:       16,
		PktsPerFlow: 4,
		Repeats:     1,
	}
}

func tableMgmtCSV(t *testing.T, opts TableMgmtOptions) string {
	t.Helper()
	res, err := RunTableMgmt(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestTableMgmtSweep pins the sweep's acceptance columns: every cell closes
// its rule ledger exactly, leaks nothing, and the aggregation arm actually
// compresses while the reject arm actually rejects.
func TestTableMgmtSweep(t *testing.T) {
	res, err := RunTableMgmt(tableMgmtTestOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Points), 2*2; got != want { // 2 policies × 2 aggregation arms
		t.Fatalf("%d points, want %d", got, want)
	}
	var sawReject, sawAgg bool
	for _, p := range res.Points {
		label := p.Topo + "/" + p.Policy.String() + "/" + map[bool]string{false: "flat", true: "agg"}[p.Aggregation]
		if p.LedgerGap != 0 {
			t.Errorf("%s: rule ledger gap %d, want 0", label, p.LedgerGap)
		}
		if p.LeakedUnits != 0 {
			t.Errorf("%s: %d leaked buffer units", label, p.LeakedUnits)
		}
		if p.Installs == 0 {
			t.Errorf("%s: no rule installs", label)
		}
		if p.Delivery.Mean() <= 0.5 {
			t.Errorf("%s: delivery %v", label, p.Delivery.Mean())
		}
		if !p.Aggregation && p.Policy == flowtable.EvictNone && p.Rejects > 0 {
			sawReject = true
		}
		if p.Aggregation && p.Aggregations > 0 && p.RulesCompressed > 0 {
			sawAgg = true
		}
		if p.Aggregation && p.Rejects > 0 {
			t.Errorf("%s: aggregation arm still rejected %d installs", label, p.Rejects)
		}
	}
	if !sawReject {
		t.Error("reject policy without aggregation never rejected — no table pressure in the grid")
	}
	if !sawAgg {
		t.Error("aggregation arm never compressed")
	}
}

// TestTableMgmtDeterministic pins the sweep's reproducibility contract: the
// CSV is byte-identical when the grid fans across workers and when each
// cell runs on the parallel kernel.
func TestTableMgmtDeterministic(t *testing.T) {
	base := tableMgmtTestOptions()
	base.Parallelism = 1
	want := tableMgmtCSV(t, base)
	if !strings.Contains(want, "line:switches=3") {
		t.Fatalf("csv missing rows:\n%s", want)
	}

	fanned := tableMgmtTestOptions()
	fanned.Parallelism = 4
	if got := tableMgmtCSV(t, fanned); got != want {
		t.Errorf("parallel sweep CSV differs:\n--- serial ---\n%s--- parallel ---\n%s", want, got)
	}

	parKernel := tableMgmtTestOptions()
	parKernel.Parallelism = 1
	parKernel.KernelWorkers = 4
	if got := tableMgmtCSV(t, parKernel); got != want {
		t.Errorf("parallel-kernel sweep CSV differs:\n--- serial ---\n%s--- kernelworkers=4 ---\n%s", want, got)
	}
}

// TestTableMgmtValidation pins input validation.
func TestTableMgmtValidation(t *testing.T) {
	opts := tableMgmtTestOptions()
	opts.Topos = []string{"klein-bottle:4"}
	if _, err := RunTableMgmt(opts); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
