package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/testbed"
	"sdnbuffer/internal/topo"
)

// FabricOptions scale the fabric sweep: topology × buffer mechanism ×
// install mode × shard count, each cell repeated across seeds, plus one
// at-scale run (≥1000 switches) appended as its own row. The zero value is
// filled with the defaults BENCH_fabric.json quotes.
type FabricOptions struct {
	// Topos are the topology specs swept (topo.ParseSpec syntax; defaults
	// cover a 2- and 4-hop line, a leaf-spine and a three-tier fat-tree).
	Topos []string
	// Mechanisms are the buffer series swept (default no-buffer,
	// packet-granularity, flow-granularity).
	Mechanisms []Series
	// Installs are the rule-installation modes swept (default hop, path).
	Installs []topo.InstallMode
	// Shards are the controller counts swept (default 1, 2).
	Shards []int
	// Rate is the sending rate in Mbps (default 40); Flows × PktsPerFlow
	// shape the workload (defaults 40 × 4); FrameSize and Jitter shape the
	// frames (defaults 1000 bytes, 0.5).
	Rate        float64
	Flows       int
	PktsPerFlow int
	FrameSize   int
	Jitter      float64
	// Repeats is the number of seeds per cell (default 2).
	Repeats int
	// Scale is the at-scale topology appended after the grid (default a
	// 1024-switch leaf-spine), run once under flow granularity with path
	// install and ScaleShards controllers. NoScale skips it (quick mode).
	Scale       string
	ScaleShards int
	NoScale     bool
	// Parallelism fans the grid across workers (default GOMAXPROCS).
	// Results fold in a fixed order, so output is byte-identical at any
	// setting.
	Parallelism int
	// KernelWorkers > 1 runs each fabric cell on the conservative parallel
	// kernel with up to that many goroutines executing event windows
	// (default 0/1 = the serial kernel). Orthogonal to Parallelism: that
	// fans independent cells out, this speeds a single big fabric up. Every
	// cell's metrics — and hence the CSV — are byte-identical either way.
	KernelWorkers int
}

func (o FabricOptions) withDefaults() FabricOptions {
	if len(o.Topos) == 0 {
		o.Topos = []string{
			"line:2",
			"line:4",
			"leafspine:leaves=4,spines=2",
			"fattree:pods=2,leaves=2,spines=2,cores=2",
		}
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = []Series{SeriesNoBuffer, SeriesPacketGranularity, SeriesFlowGranularity}
	}
	if len(o.Installs) == 0 {
		o.Installs = []topo.InstallMode{topo.InstallHopByHop, topo.InstallPath}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2}
	}
	if o.Rate == 0 {
		o.Rate = 40
	}
	if o.Flows == 0 {
		o.Flows = 40
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 4
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	if o.Scale == "" {
		o.Scale = "leafspine:leaves=1016,spines=8,hosts=16"
	}
	if o.ScaleShards == 0 {
		o.ScaleShards = 4
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// fabricCell is the raw metric set of one (topo, mechanism, install, shards,
// seed) run.
type fabricCell struct {
	switches, hops  int
	delivered, sent int64
	packetIns       int64
	flowMods        int64
	ctrlMbps        float64
	setupMs         float64
	pathInstalls    uint64
	remoteSkips     uint64
	unroutable      uint64
	leakedUnits     int
	leakedBytes     int64
	dups, misorders int64
	misdelivered    int64
}

// FabricPoint aggregates one grid cell across repeats.
type FabricPoint struct {
	Topo     string
	Switches int
	PathHops int
	Series   string
	Install  topo.InstallMode
	Shards   int
	// Delivery and SetupMs observe one per-repeat sample each.
	Delivery metrics.Summary
	SetupMs  metrics.Summary
	// PacketIns, FlowMods, PathInstalls, RemoteSkips and Unroutable are
	// summed across repeats; CtrlMbps averages the switch→controller load.
	PacketIns    int64
	FlowMods     int64
	PathInstalls uint64
	RemoteSkips  uint64
	Unroutable   uint64
	CtrlMbps     float64
	// LeakedUnits / LeakedBytes / Dups / Misorders / Misdelivered are the
	// worst values across repeats — acceptance demands zero for all.
	LeakedUnits  int
	LeakedBytes  int64
	Dups         int64
	Misorders    int64
	Misdelivered int64
}

// FabricSweepResult is a completed fabric sweep.
type FabricSweepResult struct {
	Options FabricOptions
	Points  []FabricPoint
}

func runFabricCell(spec string, series Series, install topo.InstallMode, shards int, opts FabricOptions, flows, pktsPerFlow int, seed int64) (fabricCell, error) {
	s, err := topo.ParseSpec(spec)
	if err != nil {
		return fabricCell{}, err
	}
	g, err := topo.Build(s)
	if err != nil {
		return fabricCell{}, err
	}
	cfg := testbed.DefaultConfig(series.Buffer, series.BufferCapacity)
	cfg.Seed = seed
	fb, err := testbed.NewFabric(cfg, testbed.FabricOptions{
		Graph:         g,
		Shards:        shards,
		Install:       install,
		KernelWorkers: opts.KernelWorkers,
	})
	if err != nil {
		return fabricCell{}, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  opts.Rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     g.Hosts()[1].Addr,
	}, flows, pktsPerFlow, 4)
	if err != nil {
		return fabricCell{}, err
	}
	res, err := fb.Run(sched)
	if err != nil {
		return fabricCell{}, err
	}
	return fabricCell{
		switches:     res.Switches,
		hops:         res.PathHops,
		delivered:    res.FramesDelivered,
		sent:         int64(res.FramesSent),
		packetIns:    res.PacketIns,
		flowMods:     res.FlowMods,
		ctrlMbps:     res.CtrlLoadToControllerMbps,
		setupMs:      res.FlowSetupDelay.Mean() * 1e3,
		pathInstalls: res.PathInstalls,
		remoteSkips:  res.RemoteSkips,
		unroutable:   res.Unroutable,
		leakedUnits:  res.BufferUnitsLeaked,
		leakedBytes:  res.BufferBytesLeaked,
		dups:         res.DupEmissions,
		misorders:    res.OrderViolations,
		misdelivered: res.Misdelivered,
	}, nil
}

// fabricJob is one scheduled run of the sweep: a grid cell repeat, or the
// appended scale row (repeats == 1).
type fabricJob struct {
	spec    string
	series  Series
	install topo.InstallMode
	shards  int
	flows   int
	pkts    int
	seed    int64
}

// RunFabric executes the fabric sweep, fanning the (topo, mechanism,
// install, shards, repeat) grid — plus the at-scale run — across
// Parallelism workers and folding the per-cell metrics in a fixed order:
// the result (and hence the CSV) is byte-identical at any Parallelism.
func RunFabric(opts FabricOptions) (*FabricSweepResult, error) {
	opts = opts.withDefaults()
	var jobs []fabricJob
	for _, spec := range opts.Topos {
		for _, series := range opts.Mechanisms {
			for _, install := range opts.Installs {
				for _, shards := range opts.Shards {
					for rep := 0; rep < opts.Repeats; rep++ {
						jobs = append(jobs, fabricJob{
							spec: spec, series: series, install: install, shards: shards,
							flows: opts.Flows, pkts: opts.PktsPerFlow, seed: int64(rep) + 1,
						})
					}
				}
			}
		}
	}
	scaleStart := len(jobs)
	if !opts.NoScale {
		jobs = append(jobs, fabricJob{
			spec: opts.Scale, series: SeriesFlowGranularity, install: topo.InstallPath,
			shards: opts.ScaleShards, flows: opts.Flows, pkts: opts.PktsPerFlow, seed: 1,
		})
	}

	vals := make([]fabricCell, len(jobs))
	errs := make([]error, len(jobs))
	workers := opts.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if failed.Load() {
					continue
				}
				j := jobs[i]
				v, err := runFabricCell(j.spec, j.series, j.install, j.shards, opts, j.flows, j.pkts, j.seed)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return nil, fmt.Errorf("experiments: fabric %s/%s/%s/%d shards seed %d: %w",
				j.spec, j.series.Name, j.install, j.shards, j.seed, err)
		}
	}

	out := &FabricSweepResult{Options: opts}
	fold := func(p *FabricPoint, v fabricCell) {
		p.Switches = v.switches
		p.PathHops = v.hops
		if v.sent > 0 {
			p.Delivery.Observe(float64(v.delivered) / float64(v.sent))
		}
		p.SetupMs.Observe(v.setupMs)
		p.PacketIns += v.packetIns
		p.FlowMods += v.flowMods
		p.PathInstalls += v.pathInstalls
		p.RemoteSkips += v.remoteSkips
		p.Unroutable += v.unroutable
		p.CtrlMbps += v.ctrlMbps
		if v.leakedUnits > p.LeakedUnits {
			p.LeakedUnits = v.leakedUnits
		}
		if v.leakedBytes > p.LeakedBytes {
			p.LeakedBytes = v.leakedBytes
		}
		if v.dups > p.Dups {
			p.Dups = v.dups
		}
		if v.misorders > p.Misorders {
			p.Misorders = v.misorders
		}
		if v.misdelivered > p.Misdelivered {
			p.Misdelivered = v.misdelivered
		}
	}
	i := 0
	for _, spec := range opts.Topos {
		for _, series := range opts.Mechanisms {
			for _, install := range opts.Installs {
				for _, shards := range opts.Shards {
					p := FabricPoint{Topo: spec, Series: series.Name, Install: install, Shards: shards}
					for rep := 0; rep < opts.Repeats; rep++ {
						fold(&p, vals[i])
						i++
					}
					p.CtrlMbps /= float64(opts.Repeats)
					out.Points = append(out.Points, p)
				}
			}
		}
	}
	if !opts.NoScale {
		p := FabricPoint{Topo: opts.Scale, Series: SeriesFlowGranularity.Name,
			Install: topo.InstallPath, Shards: opts.ScaleShards}
		fold(&p, vals[scaleStart])
		out.Points = append(out.Points, p)
	}
	return out, nil
}

// WriteTable renders the sweep as a fixed-width text table, one row per
// (topo, mechanism, install, shards).
func (r *FabricSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "fabric — %d flows × %d pkts at %g Mbps, %d repeats\n",
		r.Options.Flows, r.Options.PktsPerFlow, r.Options.Rate, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-40s %4s %4s %-18s %-4s %6s %9s %9s %8s %8s %9s %6s %5s",
		"topo", "sw", "hops", "mechanism", "inst", "shards", "delivery", "setup_ms", "pkt_ins", "flowmods", "installs", "skips", "leak")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-40s %4d %4d %-18s %-4s %6d %9.4f %9.3f %8d %8d %9d %6d %3d/%d\n",
			p.Topo, p.Switches, p.PathHops, p.Series, p.Install, p.Shards,
			p.Delivery.Mean(), p.SetupMs.Mean(), p.PacketIns, p.FlowMods,
			p.PathInstalls, p.RemoteSkips, p.LeakedUnits, p.LeakedBytes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// csvQuote wraps a field in RFC 4180 quotes when it contains a comma, as
// topology specs like "leafspine:leaves=8,spines=4" do.
func csvQuote(s string) string {
	if strings.ContainsAny(s, ",\"") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV renders the sweep as CSV rows:
// topo,switches,hops,mechanism,install,shards,delivery_mean,setup_ms_mean,setup_ms_stddev,packet_ins,flow_mods,path_installs,remote_skips,ctrl_mbps,unroutable,dups,misorders,misdelivered,leaked_units,leaked_bytes.
// The topo column is quoted when the spec itself contains commas.
func (r *FabricSweepResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "topo,switches,hops,mechanism,install,shards,delivery_mean,setup_ms_mean,setup_ms_stddev,packet_ins,flow_mods,path_installs,remote_skips,ctrl_mbps,unroutable,dups,misorders,misdelivered,leaked_units,leaked_bytes"); err != nil {
			return err
		}
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%s,%s,%d,%g,%g,%g,%d,%d,%d,%d,%g,%d,%d,%d,%d,%d,%d\n",
			csvQuote(p.Topo), p.Switches, p.PathHops, p.Series, p.Install, p.Shards,
			p.Delivery.Mean(), p.SetupMs.Mean(), p.SetupMs.StdDev(),
			p.PacketIns, p.FlowMods, p.PathInstalls, p.RemoteSkips, p.CtrlMbps,
			p.Unroutable, p.Dups, p.Misorders, p.Misdelivered,
			p.LeakedUnits, p.LeakedBytes); err != nil {
			return err
		}
	}
	return nil
}
