// Package experiments defines one reproducible experiment per table and
// figure of the paper's evaluation, and the sweep runner that regenerates
// them: for each sending rate and each series (buffer configuration), it
// assembles a fresh testbed, replays the workload with several seeds, and
// aggregates the figure's metric.
//
// Run fans the sweep's (series, rate, repeat) cell grid out across
// Options.Parallelism worker goroutines. Every cell is a self-contained
// simulation — its own event kernel, testbed and seeded RNGs — and the
// per-cell metrics are folded into the aggregates in a fixed order, so a
// given seed yields identical results (and identical CSV bytes) whether the
// sweep ran serially or on every core.
package experiments

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/testbed"
)

// Workload selects the paper's two workload shapes.
type Workload uint8

// Workload kinds.
const (
	// WorkloadSinglePacketFlows is §IV: n single-packet flows with forged
	// sources (paper: 1000 flows).
	WorkloadSinglePacketFlows Workload = 1
	// WorkloadInterleavedBursts is §V: multi-packet flows released in
	// interleaved groups (paper: 50 flows × 20 packets, groups of 5).
	WorkloadInterleavedBursts Workload = 2
)

// Series is one curve of a figure: a named buffer configuration.
type Series struct {
	Name           string
	Buffer         openflow.FlowBufferConfig
	BufferCapacity int
}

// Paper series definitions.
var (
	// SeriesNoBuffer is the baseline: full packets in packet_in.
	SeriesNoBuffer = Series{
		Name:           "no-buffer",
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityNone},
		BufferCapacity: 256,
	}
	// SeriesBuffer16 is the 16-unit packet-granularity buffer.
	SeriesBuffer16 = Series{
		Name:           "buffer-16",
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 16,
	}
	// SeriesBuffer256 is the 256-unit packet-granularity buffer.
	SeriesBuffer256 = Series{
		Name:           "buffer-256",
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 256,
	}
	// SeriesPacketGranularity is §V's default mechanism (256 units).
	SeriesPacketGranularity = Series{
		Name:           "packet-granularity",
		Buffer:         openflow.FlowBufferConfig{Granularity: openflow.GranularityPacket},
		BufferCapacity: 256,
	}
	// SeriesFlowGranularity is the paper's proposed mechanism (256 units,
	// 50 ms re-request timer).
	SeriesFlowGranularity = Series{
		Name: "flow-granularity",
		Buffer: openflow.FlowBufferConfig{
			Granularity:        openflow.GranularityFlow,
			RerequestTimeoutMs: 50,
		},
		BufferCapacity: 256,
	}
)

// Experiment regenerates one figure.
type Experiment struct {
	// ID is the figure identifier, e.g. "fig2a".
	ID string
	// Title is the paper's caption.
	Title string
	// Metric is the y-axis label.
	Metric string
	// Workload selects the traffic shape.
	Workload Workload
	// Series are the figure's curves.
	Series []Series
	// Extract pulls the figure's metric out of one run's results.
	Extract func(*testbed.Result) float64
	// PaperClaim is the quantitative statement the paper attaches to this
	// figure, used in EXPERIMENTS.md.
	PaperClaim string
}

// Options scale an experiment run. The zero value is filled with the
// paper's parameters (which take a few seconds per experiment); benchmarks
// pass reduced values.
type Options struct {
	// Rates are the sending-rate sweep points in Mbps (default 5..100
	// step 5, the paper's x-axis).
	Rates []float64
	// Repeats is the number of seeds per point (paper: 20; default 5).
	Repeats int
	// FlowsA is the §IV flow count (default 1000).
	FlowsA int
	// FlowsB, PktsPerFlowB, GroupB are the §V workload shape (default
	// 50/20/5).
	FlowsB, PktsPerFlowB, GroupB int
	// FrameSize is the Ethernet frame size (default 1000).
	FrameSize int
	// Jitter is the pktgen pacing jitter (default 0.5).
	Jitter float64
	// Testbed overrides the platform configuration builder; nil uses
	// testbed.DefaultConfig. A non-nil builder must be safe for concurrent
	// calls when Parallelism > 1 (it is invoked once per sweep cell, from
	// worker goroutines).
	Testbed func(s Series) testbed.Config
	// Parallelism is the number of worker goroutines the (series, rate,
	// repeat) sweep grid is fanned out across (default
	// runtime.GOMAXPROCS(0); 1 executes the cells serially). Every cell is
	// an independent simulation seeded from its repeat index, and results
	// are folded in a fixed order, so the output is identical — bit for
	// bit — at any setting.
	Parallelism int
	// KernelWorkers selects intra-run parallelism for scenarios built on
	// multi-switch fabrics (see FabricOptions.KernelWorkers). The figure
	// sweep runs the single-switch Fig. 1 platform, which is always serial;
	// the field is accepted here so one -kernelworkers flag threads through
	// every benchrunner invocation uniformly.
	KernelWorkers int
}

func (o Options) withDefaults() Options {
	if len(o.Rates) == 0 {
		for r := 5.0; r <= 100; r += 5 {
			o.Rates = append(o.Rates, r)
		}
	}
	if o.Repeats == 0 {
		o.Repeats = 5
	}
	if o.FlowsA == 0 {
		o.FlowsA = 1000
	}
	if o.FlowsB == 0 {
		o.FlowsB = 50
	}
	if o.PktsPerFlowB == 0 {
		o.PktsPerFlowB = 20
	}
	if o.GroupB == 0 {
		o.GroupB = 5
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.Testbed == nil {
		o.Testbed = func(s Series) testbed.Config {
			return testbed.DefaultConfig(s.Buffer, s.BufferCapacity)
		}
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Point is one aggregated sweep point of one series.
type Point struct {
	RateMbps float64
	// Mean and StdDev aggregate the metric across repeats.
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// SeriesResult is one curve of a completed experiment.
type SeriesResult struct {
	Series Series
	Points []Point
	// Overall aggregates the metric across every rate and repeat, the way
	// the paper reports per-figure means.
	Overall metrics.Summary
}

// Result is a completed experiment.
type Result struct {
	Experiment Experiment
	Options    Options
	Series     []SeriesResult
}

// cell is one (series, rate, repeat) unit of an experiment's sweep grid,
// identified by its indexes into exp.Series, opts.Rates and the repeat
// count. Cells are enumerated in series → rate → repeat order, which is both
// the order workers claim them in and the order the fold consumes them in.
type cell struct {
	series, rate, rep int
}

// cellGrid indexes the full sweep up front.
func cellGrid(exp Experiment, opts Options) []cell {
	cells := make([]cell, 0, len(exp.Series)*len(opts.Rates)*opts.Repeats)
	for si := range exp.Series {
		for ri := range opts.Rates {
			for rep := 0; rep < opts.Repeats; rep++ {
				cells = append(cells, cell{series: si, rate: ri, rep: rep})
			}
		}
	}
	return cells
}

// fold assembles the per-cell metric values — laid out in cellGrid order —
// into the aggregated result, observing repeats in repeat order regardless
// of which worker produced them when. Welford summaries are order-sensitive
// in the last bits, so folding in a fixed order is what makes the output
// independent of Parallelism.
func fold(exp Experiment, opts Options, vals []float64) *Result {
	out := &Result{Experiment: exp, Options: opts}
	i := 0
	for _, s := range exp.Series {
		sr := SeriesResult{Series: s}
		for _, rate := range opts.Rates {
			var agg metrics.Summary
			for rep := 0; rep < opts.Repeats; rep++ {
				v := vals[i]
				i++
				agg.Observe(v)
				sr.Overall.Observe(v)
			}
			sr.Points = append(sr.Points, Point{
				RateMbps: rate,
				Mean:     agg.Mean(),
				StdDev:   agg.StdDev(),
				Min:      agg.Min(),
				Max:      agg.Max(),
			})
		}
		out.Series = append(out.Series, sr)
	}
	return out
}

// Run executes the experiment's full sweep, fanning the (series, rate,
// repeat) cell grid out across opts.Parallelism worker goroutines. Each cell
// is an independent simulation (its own kernel, testbed and RNGs, seeded
// from the repeat index), so cells never share mutable state; the aggregates
// are folded in a deterministic order afterwards, making the result
// identical to RunSerial's for the same options and seeds.
func Run(exp Experiment, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if exp.Extract == nil {
		return nil, fmt.Errorf("experiments: %s has no metric extractor", exp.ID)
	}
	cells := cellGrid(exp, opts)
	vals := make([]float64, len(cells))
	errs := make([]error, len(cells))
	workers := opts.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if failed.Load() {
					continue // a cell failed: drain the rest without running them
				}
				c := cells[i]
				v, err := runOne(exp, exp.Series[c.series], opts, opts.Rates[c.rate], int64(c.rep)+1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	// Cells are claimed in index order, so the earliest failing cell always
	// executes before the failure flag can skip it: the reported error is
	// the same one the serial loop would have hit first.
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("experiments: %s %s at %g Mbps rep %d: %w",
				exp.ID, exp.Series[c.series].Name, opts.Rates[c.rate], c.rep, err)
		}
	}
	return fold(exp, opts, vals), nil
}

// RunSerial executes the sweep on the calling goroutine, one cell at a time
// in series → rate → repeat order. It is the reference implementation the
// parallel runner is tested for equivalence against.
func RunSerial(exp Experiment, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if exp.Extract == nil {
		return nil, fmt.Errorf("experiments: %s has no metric extractor", exp.ID)
	}
	out := &Result{Experiment: exp, Options: opts}
	for _, s := range exp.Series {
		sr := SeriesResult{Series: s}
		for _, rate := range opts.Rates {
			var agg metrics.Summary
			for rep := 0; rep < opts.Repeats; rep++ {
				v, err := runOne(exp, s, opts, rate, int64(rep)+1)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s %s at %g Mbps rep %d: %w",
						exp.ID, s.Name, rate, rep, err)
				}
				agg.Observe(v)
				sr.Overall.Observe(v)
			}
			sr.Points = append(sr.Points, Point{
				RateMbps: rate,
				Mean:     agg.Mean(),
				StdDev:   agg.StdDev(),
				Min:      agg.Min(),
				Max:      agg.Max(),
			})
		}
		out.Series = append(out.Series, sr)
	}
	return out, nil
}

// runOne executes a single (series, rate, seed) cell and extracts the
// metric.
func runOne(exp Experiment, s Series, opts Options, rate float64, seed int64) (float64, error) {
	cfg := opts.Testbed(s)
	cfg.Seed = seed
	tb, err := testbed.New(cfg)
	if err != nil {
		return 0, err
	}
	pcfg := pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}
	var sched pktgen.Schedule
	switch exp.Workload {
	case WorkloadSinglePacketFlows:
		sched, err = pktgen.SinglePacketFlows(pcfg, opts.FlowsA)
	case WorkloadInterleavedBursts:
		sched, err = pktgen.InterleavedBursts(pcfg, opts.FlowsB, opts.PktsPerFlowB, opts.GroupB)
	default:
		return 0, fmt.Errorf("unknown workload %d", exp.Workload)
	}
	if err != nil {
		return 0, err
	}
	res, err := tb.Run(sched)
	if err != nil {
		return 0, err
	}
	if res.FramesDelivered != int64(res.FramesSent) {
		return 0, fmt.Errorf("lost frames: delivered %d of %d", res.FramesDelivered, res.FramesSent)
	}
	return exp.Extract(res), nil
}

// FindSeries returns the named curve of a result.
func (r *Result) FindSeries(name string) (*SeriesResult, error) {
	for i := range r.Series {
		if r.Series[i].Series.Name == name {
			return &r.Series[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: no series %q in %s", name, r.Experiment.ID)
}

// MeanReduction reports how much the target series improves on the baseline
// series, averaged across sweep points: mean over rates of
// (baseline - target) / baseline, in percent. This is the aggregate the
// paper quotes ("reduces X by N% on average").
func (r *Result) MeanReduction(baseline, target string) (float64, error) {
	b, err := r.FindSeries(baseline)
	if err != nil {
		return 0, err
	}
	t, err := r.FindSeries(target)
	if err != nil {
		return 0, err
	}
	if len(b.Points) != len(t.Points) {
		return 0, fmt.Errorf("experiments: point count mismatch %d vs %d", len(b.Points), len(t.Points))
	}
	var agg metrics.Summary
	for i := range b.Points {
		if b.Points[i].Mean == 0 {
			continue
		}
		agg.Observe((b.Points[i].Mean - t.Points[i].Mean) / b.Points[i].Mean * 100)
	}
	if agg.Count() == 0 {
		return 0, fmt.Errorf("experiments: no comparable points")
	}
	return agg.Mean(), nil
}

// durationMs converts a seconds-valued summary mean to milliseconds.
func durationMs(s metrics.Summary) float64 { return s.Mean() * 1000 }
