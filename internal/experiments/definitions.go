package experiments

import (
	"fmt"

	"sdnbuffer/internal/testbed"
)

// Study A (§IV) series: the default buffer at three sizes.
func studyASeries() []Series {
	return []Series{SeriesNoBuffer, SeriesBuffer16, SeriesBuffer256}
}

// Study B (§V) series: packet- vs flow-granularity at 256 units.
func studyBSeries() []Series {
	return []Series{SeriesPacketGranularity, SeriesFlowGranularity}
}

// All returns every experiment of the paper's evaluation, in figure order.
func All() []Experiment {
	return []Experiment{
		{
			ID:       "fig2a",
			Title:    "Control Path Load under Different Sending Rates (switch→controller)",
			Metric:   "control path load (Mbps)",
			Workload: WorkloadSinglePacketFlows,
			Series:   studyASeries(),
			Extract:  func(r *testbed.Result) float64 { return r.CtrlLoadToControllerMbps },
			PaperClaim: "buffer reduces switch→controller control path load by 78.7% on " +
				"average; no-buffer load is near-linear in sending rate; buffer-16 rises " +
				"past ~35 Mbps as its pool exhausts",
		},
		{
			ID:       "fig2b",
			Title:    "Control Path Load under Different Sending Rates (controller→switch)",
			Metric:   "control path load (Mbps)",
			Workload: WorkloadSinglePacketFlows,
			Series:   studyASeries(),
			Extract:  func(r *testbed.Result) float64 { return r.CtrlLoadToSwitchMbps },
			PaperClaim: "buffer reduces controller→switch control path load by 96% on " +
				"average (packet_out carries a port number instead of the whole packet)",
		},
		{
			ID:       "fig3",
			Title:    "Controller Usages under Different Sending Rates",
			Metric:   "controller CPU (%)",
			Workload: WorkloadSinglePacketFlows,
			Series:   studyASeries(),
			Extract:  func(r *testbed.Result) float64 { return r.ControllerUsagePercent },
			PaperClaim: "buffer reduces controller overhead by 37% on average; no-buffer " +
				"usage grows superlinearly past ~50 Mbps; buffer-256 stays low and stable " +
				"(paper mean 34.59%)",
		},
		{
			ID:       "fig4",
			Title:    "Switch Usages under Different Sending Rates",
			Metric:   "switch CPU (%)",
			Workload: WorkloadSinglePacketFlows,
			Series:   studyASeries(),
			Extract:  func(r *testbed.Result) float64 { return r.SwitchUsagePercent },
			PaperClaim: "buffer adds only ~5.6% switch overhead on average; all three " +
				"curves rise quickly then flatten past ~40 Mbps",
		},
		{
			ID:         "fig5",
			Title:      "Flow Setup Delay under Different Sending Rates",
			Metric:     "flow setup delay (ms)",
			Workload:   WorkloadSinglePacketFlows,
			Series:     studyASeries(),
			Extract:    func(r *testbed.Result) float64 { return durationMs(r.FlowSetupDelay) },
			PaperClaim: "buffer-256 cuts flow setup delay by ~78% on average (paper: 1.17 ms vs 5.28 ms) and stays stable; no-buffer becomes highly variable past ~70 Mbps (max 30.46 ms)",
		},
		{
			ID:         "fig6",
			Title:      "Controller Delay under Different Sending Rates",
			Metric:     "controller delay (ms)",
			Workload:   WorkloadSinglePacketFlows,
			Series:     studyASeries(),
			Extract:    func(r *testbed.Result) float64 { return durationMs(r.ControllerDelay) },
			PaperClaim: "buffer reduces controller delay by ~58% on average (paper: 0.70 ms vs 1.65 ms); no-buffer rises from ~60 Mbps",
		},
		{
			ID:         "fig7",
			Title:      "Switch Delay under Different Sending Rates",
			Metric:     "switch delay (ms)",
			Workload:   WorkloadSinglePacketFlows,
			Series:     studyASeries(),
			Extract:    func(r *testbed.Result) float64 { return r.SwitchDelayMean * 1000 },
			PaperClaim: "buffer reduces switch delay by ~87% on average (paper: 0.47 ms vs up to 25.07 ms); no-buffer blows up past ~75 Mbps from bus contention",
		},
		{
			ID:         "fig8",
			Title:      "Buffer Utilization under Different Sending Rates",
			Metric:     "buffer units in use (mean)",
			Workload:   WorkloadSinglePacketFlows,
			Series:     []Series{SeriesBuffer16, SeriesBuffer256},
			Extract:    func(r *testbed.Result) float64 { return r.BufferOccupancyMean },
			PaperClaim: "buffer-16 is exhausted past ~30 Mbps; buffer-256 grows with rate but ~80 units suffice at 100 Mbps",
		},
		{
			ID:         "fig9a",
			Title:      "Control Path Load under Different Sending Rates (switch→controller, §V)",
			Metric:     "control path load (Mbps)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.CtrlLoadToControllerMbps },
			PaperClaim: "flow granularity reduces switch→controller load by 64% on average (paper: 0.045 vs 0.123 Mbps); packet granularity rises past ~30 Mbps",
		},
		{
			ID:         "fig9b",
			Title:      "Control Path Load under Different Sending Rates (controller→switch, §V)",
			Metric:     "control path load (Mbps)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.CtrlLoadToSwitchMbps },
			PaperClaim: "flow granularity reduces controller→switch load by 80% on average (fewer requests mean fewer flow_mod/packet_out operations)",
		},
		{
			ID:         "fig10",
			Title:      "Controller Usages under Different Sending Rates (§V)",
			Metric:     "controller CPU (%)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.ControllerUsagePercent },
			PaperClaim: "flow granularity decreases controller overhead by 35.7% on average and keeps it below the packet-granularity curve",
		},
		{
			ID:         "fig11",
			Title:      "Switch Usages under Different Sending Rates (§V)",
			Metric:     "switch CPU (%)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.SwitchUsagePercent },
			PaperClaim: "flow granularity introduces no extra switch overhead (paper means: 11.67% vs 17.31%)",
		},
		{
			ID:         "fig12a",
			Title:      "Flow Setup Delay under Different Sending Rates (§V)",
			Metric:     "flow setup delay (ms)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return durationMs(r.FlowSetupDelay) },
			PaperClaim: "packet granularity is slightly better at low rates (its per-packet path is simpler); flow granularity catches up at high rates (paper: crossover ~80 Mbps, 10.8% better at 95 Mbps)",
		},
		{
			ID:         "fig12b",
			Title:      "Flow Forwarding Delay under Different Sending Rates (§V)",
			Metric:     "flow forwarding delay (ms)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return durationMs(r.FlowForwardingDelay) },
			PaperClaim: "similar at low rates; flow granularity wins past ~80 Mbps (paper: 34.23 vs 54.71 ms at 95 Mbps, 18% mean reduction)",
		},
		{
			ID:         "fig13a",
			Title:      "Buffer Utilization under Different Sending Rates (mean, §V)",
			Metric:     "buffer units in use (mean)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.BufferOccupancyMean },
			PaperClaim: "flow granularity improves buffer utilization by 71.6% on average: one unit per flow instead of one per packet",
		},
		{
			ID:         "fig13b",
			Title:      "Buffer Utilization under Different Sending Rates (max, §V)",
			Metric:     "buffer units in use (max)",
			Workload:   WorkloadInterleavedBursts,
			Series:     studyBSeries(),
			Extract:    func(r *testbed.Result) float64 { return r.BufferOccupancyMax },
			PaperClaim: "flow granularity never needs more than ~5 units; packet granularity grows to 43 units at 95 Mbps",
		},
	}
}

// ByID returns the experiment with the given figure id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}
