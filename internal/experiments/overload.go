package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/core"
	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/switchd"
	"sdnbuffer/internal/testbed"
)

// OverloadOptions scale the miss-storm sweep: unique-flow count × sending
// rate, each cell run once without and once with the overload-protection
// stack (byte budget + admission threshold + degradation ladder + packet_in
// pacer + controller admission queue). The zero value is filled with the
// defaults the report quotes.
type OverloadOptions struct {
	// FlowCounts are the unique-flow counts swept (default 64, 128, 256).
	FlowCounts []int
	// Rates are the sending rates in Mbps (default 25, 50, 100).
	Rates []float64
	// PktsPerFlow is the per-mouse packet count (default 4); ElephantPkts,
	// when above it, turns flow 0 into an elephant (default 64).
	PktsPerFlow  int
	ElephantPkts int
	// Repeats is the number of seeds per cell (default 2).
	Repeats int
	// FrameSize and Jitter shape the frames (default 1000 bytes, 0.5).
	FrameSize int
	Jitter    float64
	// BufferCapacity is the pool's unit cap (default 128).
	BufferCapacity int
	// ByteBudget / AdmitFraction configure the protected series' pool
	// (defaults 96000 bytes, 0.25).
	ByteBudget    int64
	AdmitFraction float64
	// PacerRatePerSec / PacerBurst configure the protected series'
	// packet_in token bucket (defaults 4000/s, burst 32).
	PacerRatePerSec float64
	PacerBurst      int
	// CtrlQueue bounds the protected series' controller packet_in queue
	// (default 64).
	CtrlQueue int
	// BufferExpiry bounds buffered-packet lifetime (default 250ms) — it is
	// also what lets the ladder recover, since expiry drains pressure.
	BufferExpiry time.Duration
	// Parallelism fans the (series, flows, rate, repeat) grid across
	// workers (default GOMAXPROCS). Results fold in a fixed order, so
	// output is byte-identical at any setting.
	Parallelism int
	// KernelWorkers is accepted for benchrunner flag symmetry; this
	// scenario runs the single-switch platform, which is always serial
	// (see FabricOptions.KernelWorkers for where the knob takes effect).
	KernelWorkers int
}

func (o OverloadOptions) withDefaults() OverloadOptions {
	if len(o.FlowCounts) == 0 {
		o.FlowCounts = []int{64, 128, 256}
	}
	if len(o.Rates) == 0 {
		o.Rates = []float64{25, 50, 100}
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 4
	}
	if o.ElephantPkts == 0 {
		o.ElephantPkts = 64
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.BufferCapacity == 0 {
		o.BufferCapacity = 128
	}
	if o.ByteBudget == 0 {
		o.ByteBudget = 96000
	}
	if o.AdmitFraction == 0 {
		o.AdmitFraction = 0.25
	}
	if o.PacerRatePerSec == 0 {
		o.PacerRatePerSec = 4000
	}
	if o.PacerBurst == 0 {
		o.PacerBurst = 32
	}
	if o.CtrlQueue == 0 {
		o.CtrlQueue = 64
	}
	if o.BufferExpiry == 0 {
		o.BufferExpiry = 250 * time.Millisecond
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// overloadCell is the raw metric set of one (series, flows, rate, seed) run.
type overloadCell struct {
	delivered, sent int64
	packetIns       int64
	pacerDrops      uint64
	ctrlShed        uint64
	rejectedBytes   uint64
	bytesHigh       uint64
	maxLevel        uint8
	levelEnd        uint8
	transitions     int
	giveups         uint64
	leakedUnits     int
	leakedBytes     int64
}

// OverloadPoint aggregates one (flows, rate) cell of one series across
// repeats.
type OverloadPoint struct {
	Flows    int
	RateMbps float64
	// Delivery is the per-repeat delivered/sent ratio.
	Delivery metrics.Summary
	// PacketIns, PacerDrops, CtrlShed, RejectedBytes and Giveups are summed
	// across repeats.
	PacketIns     int64
	PacerDrops    uint64
	CtrlShed      uint64
	RejectedBytes uint64
	Giveups       uint64
	// BytesHighWater is the worst pool byte occupancy across repeats.
	BytesHighWater uint64
	// MaxLevel is the deepest ladder rung reached across repeats;
	// LevelEndWorst the worst rung left at quiescence (acceptance demands
	// LevelFlow); Transitions sums rung changes.
	MaxLevel      core.DegradeLevel
	LevelEndWorst core.DegradeLevel
	Transitions   int
	// LeakedUnits / LeakedBytes are the worst pool occupancy left at
	// quiescence across repeats — acceptance demands zero for both.
	LeakedUnits int
	LeakedBytes int64
}

// OverloadSeriesResult is one protection mode's surface.
type OverloadSeriesResult struct {
	Name      string
	Protected bool
	Points    []OverloadPoint
}

// OverloadResult is a completed miss-storm sweep.
type OverloadResult struct {
	Options OverloadOptions
	Series  []OverloadSeriesResult
}

// overloadConfig builds the testbed for one cell: §V platform over the
// hardened flow mechanism, with the full protection stack layered on for
// the protected series.
func overloadConfig(protected bool, opts OverloadOptions, seed int64) testbed.Config {
	cfg := testbed.DefaultConfig(SeriesFlowHardened.Buffer, opts.BufferCapacity)
	cfg.Seed = seed
	cfg.Switch.Datapath.BufferExpiry = opts.BufferExpiry
	cfg.Forwarder.CombinedFlowMod = true
	if protected {
		cfg.Switch.Datapath.Overload = &core.OverloadConfig{
			ByteBudget:    opts.ByteBudget,
			AdmitFraction: opts.AdmitFraction,
			Ladder:        &core.LadderConfig{},
		}
		cfg.Switch.PacketInPacer = switchd.PacerConfig{
			RatePerSec: opts.PacerRatePerSec,
			Burst:      opts.PacerBurst,
		}
		cfg.Controller.Admission = controller.AdmissionConfig{
			MaxPacketInQueue: opts.CtrlQueue,
		}
	}
	return cfg
}

func runOverloadCell(protected bool, opts OverloadOptions, flows int, rate float64, seed int64) (overloadCell, error) {
	tb, err := testbed.New(overloadConfig(protected, opts, seed))
	if err != nil {
		return overloadCell{}, err
	}
	sched, err := pktgen.MissStorm(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     netip.MustParseAddr("10.0.0.2"),
	}, flows, opts.PktsPerFlow, opts.ElephantPkts)
	if err != nil {
		return overloadCell{}, err
	}
	res, err := tb.Run(sched)
	if err != nil {
		return overloadCell{}, err
	}
	return overloadCell{
		delivered:     res.FramesDelivered,
		sent:          int64(res.FramesSent),
		packetIns:     res.PacketIns,
		pacerDrops:    res.PacerDrops,
		ctrlShed:      res.CtrlShedPacketIns,
		rejectedBytes: res.BufferRejectedBytes,
		bytesHigh:     res.BufferBytesHighWater,
		maxLevel:      res.LadderMaxLevel,
		levelEnd:      res.LadderLevelEnd,
		transitions:   res.LadderTransitions,
		giveups:       res.Giveups,
		leakedUnits:   res.BufferUnitsLeaked,
		leakedBytes:   res.BufferBytesLeaked,
	}, nil
}

// RunOverload executes the miss-storm sweep, fanning the (series, flows,
// rate, repeat) grid across Parallelism workers and folding the per-cell
// metrics in a fixed order — the same determinism contract as Run: the
// result (and hence the CSV) is byte-identical at any Parallelism.
func RunOverload(opts OverloadOptions) (*OverloadResult, error) {
	opts = opts.withDefaults()
	protection := []bool{false, true}
	type ocell struct{ p, f, r, rep int }
	var cells []ocell
	for pi := range protection {
		for fi := range opts.FlowCounts {
			for ri := range opts.Rates {
				for rep := 0; rep < opts.Repeats; rep++ {
					cells = append(cells, ocell{p: pi, f: fi, r: ri, rep: rep})
				}
			}
		}
	}
	vals := make([]overloadCell, len(cells))
	errs := make([]error, len(cells))
	workers := opts.Parallelism
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				if failed.Load() {
					continue
				}
				c := cells[i]
				v, err := runOverloadCell(protection[c.p], opts,
					opts.FlowCounts[c.f], opts.Rates[c.r], int64(c.rep)+1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			c := cells[i]
			return nil, fmt.Errorf("experiments: overload %s at %d flows %g Mbps rep %d: %w",
				overloadSeriesName(protection[c.p]), opts.FlowCounts[c.f], opts.Rates[c.r], c.rep, err)
		}
	}

	out := &OverloadResult{Options: opts}
	i := 0
	for _, prot := range protection {
		sr := OverloadSeriesResult{Name: overloadSeriesName(prot), Protected: prot}
		for _, flows := range opts.FlowCounts {
			for _, rate := range opts.Rates {
				p := OverloadPoint{Flows: flows, RateMbps: rate}
				for rep := 0; rep < opts.Repeats; rep++ {
					v := vals[i]
					i++
					if v.sent > 0 {
						p.Delivery.Observe(float64(v.delivered) / float64(v.sent))
					}
					p.PacketIns += v.packetIns
					p.PacerDrops += v.pacerDrops
					p.CtrlShed += v.ctrlShed
					p.RejectedBytes += v.rejectedBytes
					p.Giveups += v.giveups
					if v.bytesHigh > p.BytesHighWater {
						p.BytesHighWater = v.bytesHigh
					}
					if lv := core.DegradeLevel(v.maxLevel); lv > p.MaxLevel {
						p.MaxLevel = lv
					}
					if lv := core.DegradeLevel(v.levelEnd); lv > p.LevelEndWorst {
						p.LevelEndWorst = lv
					}
					p.Transitions += v.transitions
					if v.leakedUnits > p.LeakedUnits {
						p.LeakedUnits = v.leakedUnits
					}
					if v.leakedBytes > p.LeakedBytes {
						p.LeakedBytes = v.leakedBytes
					}
				}
				sr.Points = append(sr.Points, p)
			}
		}
		out.Series = append(out.Series, sr)
	}
	return out, nil
}

func overloadSeriesName(protected bool) string {
	if protected {
		return "protected"
	}
	return "unprotected"
}

// WriteTable renders the sweep as a fixed-width text table, one row per
// (series, flows, rate).
func (r *OverloadResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "overload — miss storm, %d pkts/flow + %d-pkt elephant, %d repeats\n",
		r.Options.PktsPerFlow, r.Options.ElephantPkts, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-12s %6s %6s %9s %9s %8s %8s %9s %9s %-10s %5s %8s %6s",
		"series", "flows", "rate", "delivery", "pkt_ins", "paced", "shed", "rej_bytes", "byte_hw", "max-level", "trans", "giveups", "leak")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%-12s %6d %6g %9.4f %9d %8d %8d %9d %9d %-10s %5d %8d %3d/%d\n",
				s.Name, p.Flows, p.RateMbps, p.Delivery.Mean(), p.PacketIns,
				p.PacerDrops, p.CtrlShed, p.RejectedBytes, p.BytesHighWater,
				p.MaxLevel, p.Transitions, p.Giveups, p.LeakedUnits, p.LeakedBytes); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the sweep as CSV rows:
// series,flows,rate_mbps,delivery_mean,delivery_stddev,packet_ins,pacer_drops,ctrl_shed,rejected_bytes,bytes_high_water,max_level,level_end,transitions,giveups,leaked_units,leaked_bytes.
func (r *OverloadResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "series,flows,rate_mbps,delivery_mean,delivery_stddev,packet_ins,pacer_drops,ctrl_shed,rejected_bytes,bytes_high_water,max_level,level_end,transitions,giveups,leaked_units,leaked_bytes"); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%d,%g,%g,%g,%d,%d,%d,%d,%d,%s,%s,%d,%d,%d,%d\n",
				s.Name, p.Flows, p.RateMbps, p.Delivery.Mean(), p.Delivery.StdDev(),
				p.PacketIns, p.PacerDrops, p.CtrlShed, p.RejectedBytes, p.BytesHighWater,
				p.MaxLevel, p.LevelEndWorst, p.Transitions, p.Giveups,
				p.LeakedUnits, p.LeakedBytes); err != nil {
				return err
			}
		}
	}
	return nil
}
