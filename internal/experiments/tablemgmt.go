package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"sdnbuffer/internal/flowtable"
	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/tablemgmt"
	"sdnbuffer/internal/testbed"
	"sdnbuffer/internal/topo"
)

// TableMgmtOptions scale the table×buffer coupled sweep (DESIGN.md §17):
// flow-table capacity × eviction policy × wildcard aggregation × buffer
// mechanism, each cell repeated across seeds. The workload is many short
// flows converging on one destination, sized so the small capacities
// saturate: the sweep shows how a full table amplifies misses — and hence
// buffer pressure and controller load — and how much eviction choice and
// destination-prefix aggregation claw back. The zero value is filled with
// the defaults BENCH_tablemgmt.json quotes.
type TableMgmtOptions struct {
	// Topos are the topology specs swept (topo.ParseSpec syntax).
	Topos []string
	// Capacities are the per-switch flow-table capacities swept.
	Capacities []int
	// Policies are the table-full policies swept (default reject, lru,
	// expiry).
	Policies []flowtable.EvictionPolicy
	// Aggregation sweeps the wildcard aggregation layer off/on (default
	// both).
	Aggregation []bool
	// Mechanisms are the buffer series swept (default no-buffer,
	// packet-granularity).
	Mechanisms []Series
	// Rate is the sending rate in Mbps (default 40); Flows × PktsPerFlow
	// shape the workload (defaults 24 × 6 — enough distinct rules to bury
	// the small capacities); FrameSize and Jitter shape the frames
	// (defaults 600, 0.5).
	Rate        float64
	Flows       int
	PktsPerFlow int
	FrameSize   int
	Jitter      float64
	// IdleTimeoutSec is the installed rules' idle timeout in seconds
	// (default 1 — fires during the drain, exercising idle expiry).
	IdleTimeoutSec int
	// Repeats is the number of seeds per cell (default 2).
	Repeats int
	// Parallelism fans the grid across workers (default GOMAXPROCS).
	// Results fold in a fixed order, so output is byte-identical at any
	// setting.
	Parallelism int
	// KernelWorkers > 1 runs each cell on the conservative parallel kernel
	// (default 0/1 = serial); the CSV is byte-identical at any setting.
	KernelWorkers int
}

func (o TableMgmtOptions) withDefaults() TableMgmtOptions {
	if len(o.Topos) == 0 {
		o.Topos = []string{"line:switches=3"}
	}
	if len(o.Capacities) == 0 {
		o.Capacities = []int{8, 48}
	}
	if len(o.Policies) == 0 {
		o.Policies = []flowtable.EvictionPolicy{
			flowtable.EvictNone, flowtable.EvictLRU, flowtable.EvictSoonestExpiry,
		}
	}
	if len(o.Aggregation) == 0 {
		o.Aggregation = []bool{false, true}
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = []Series{SeriesNoBuffer, SeriesPacketGranularity}
	}
	if o.Rate == 0 {
		o.Rate = 40
	}
	if o.Flows == 0 {
		o.Flows = 24
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 6
	}
	if o.FrameSize == 0 {
		o.FrameSize = 600
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.IdleTimeoutSec == 0 {
		o.IdleTimeoutSec = 1
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// tableMgmtCell is the raw metric set of one (topo, capacity, policy,
// aggregation, mechanism, seed) run.
type tableMgmtCell struct {
	switches        int
	delivered, sent int64
	setupMs         float64
	packetIns       int64
	occMean         float64
	occMax          float64
	installs        uint64
	replacements    uint64
	active          uint64
	removedIdle     uint64
	removedHard     uint64
	removedDelete   uint64
	removedEvict    uint64
	rejects         uint64
	cleared         uint64
	ledgerGap       int64
	aggregations    uint64
	rulesCompressed uint64
	coveredSkips    uint64
	tableFullErrs   uint64
	leakedUnits     int
}

// TableMgmtPoint aggregates one grid cell across repeats.
type TableMgmtPoint struct {
	Topo        string
	Capacity    int
	Policy      flowtable.EvictionPolicy
	Aggregation bool
	Series      string
	Switches    int
	// Delivery and SetupMs observe one per-repeat sample each.
	Delivery metrics.Summary
	SetupMs  metrics.Summary
	// The rule ledger and aggregation counters are summed across repeats.
	PacketIns       int64
	Installs        uint64
	Replacements    uint64
	Active          uint64
	RemovedIdle     uint64
	RemovedHard     uint64
	RemovedDelete   uint64
	RemovedEvict    uint64
	Rejects         uint64
	Cleared         uint64
	Aggregations    uint64
	RulesCompressed uint64
	CoveredSkips    uint64
	TableFullErrors uint64
	// OccupancyMean averages the per-repeat buffer occupancy means;
	// OccupancyMax is the worst repeat.
	OccupancyMean metrics.Summary
	OccupancyMax  float64
	// LedgerGap and LeakedUnits are worst-of across repeats — acceptance
	// demands zero for both: every installed rule is accounted for and no
	// buffer unit leaks.
	LedgerGap   int64
	LeakedUnits int
}

// TableMgmtSweepResult is a completed table-management sweep.
type TableMgmtSweepResult struct {
	Options TableMgmtOptions
	Points  []TableMgmtPoint
}

func runTableMgmtCell(spec string, capacity int, policy flowtable.EvictionPolicy,
	agg bool, series Series, opts TableMgmtOptions, seed int64) (tableMgmtCell, error) {
	s, err := topo.ParseSpec(spec)
	if err != nil {
		return tableMgmtCell{}, err
	}
	g, err := topo.Build(s)
	if err != nil {
		return tableMgmtCell{}, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  opts.Rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     g.Hosts()[1].Addr,
	}, opts.Flows, opts.PktsPerFlow, 4)
	if err != nil {
		return tableMgmtCell{}, err
	}
	cfg := testbed.DefaultConfig(series.Buffer, series.BufferCapacity)
	cfg.Seed = seed
	cfg.Forwarder.IdleTimeout = uint16(opts.IdleTimeoutSec)
	cfg.Forwarder.RequestFlowRemoved = true
	cfg.Switch.Datapath.TableCapacity = capacity
	cfg.Switch.Datapath.EvictionPolicy = policy
	cfg.Switch.Datapath.TableLadder = true // no-op unless the series runs a Ladder
	fopts := testbed.FabricOptions{
		Graph:         g,
		Install:       topo.InstallHopByHop,
		KernelWorkers: opts.KernelWorkers,
	}
	if agg {
		fopts.TableMgmt = &tablemgmt.Config{
			TableCapacity:      capacity,
			RequestFlowRemoved: true,
		}
	}
	fb, err := testbed.NewFabric(cfg, fopts)
	if err != nil {
		return tableMgmtCell{}, err
	}
	res, err := fb.Run(sched)
	if err != nil {
		return tableMgmtCell{}, err
	}
	return tableMgmtCell{
		switches:        res.Switches,
		delivered:       res.FramesDelivered,
		sent:            int64(res.FramesSent),
		setupMs:         res.FlowSetupDelay.Mean() * 1e3,
		packetIns:       res.PacketIns,
		occMean:         res.BufferOccupancyMean,
		occMax:          res.BufferOccupancyMax,
		installs:        res.RuleInstalls,
		replacements:    res.RuleReplacements,
		active:          res.RulesActive,
		removedIdle:     res.RemovedIdle,
		removedHard:     res.RemovedHard,
		removedDelete:   res.RemovedDelete,
		removedEvict:    res.RemovedEvict,
		rejects:         res.RuleRejects,
		cleared:         res.RulesCleared,
		ledgerGap:       res.LedgerGap,
		aggregations:    res.Aggregations,
		rulesCompressed: res.RulesCompressed,
		coveredSkips:    res.CoveredSkips,
		tableFullErrs:   res.TableFullErrors,
		leakedUnits:     res.BufferUnitsLeaked,
	}, nil
}

// tableMgmtJob is one scheduled run of the sweep.
type tableMgmtJob struct {
	spec     string
	capacity int
	policy   flowtable.EvictionPolicy
	agg      bool
	series   Series
	seed     int64
}

// RunTableMgmt executes the table-management sweep, fanning the (topo,
// capacity, policy, aggregation, mechanism, repeat) grid across Parallelism
// workers and folding the per-cell metrics in a fixed order: the result
// (and hence the CSV) is byte-identical at any Parallelism and any
// KernelWorkers setting.
func RunTableMgmt(opts TableMgmtOptions) (*TableMgmtSweepResult, error) {
	opts = opts.withDefaults()
	var jobs []tableMgmtJob
	for _, spec := range opts.Topos {
		for _, capa := range opts.Capacities {
			for _, policy := range opts.Policies {
				for _, agg := range opts.Aggregation {
					for _, series := range opts.Mechanisms {
						for rep := 0; rep < opts.Repeats; rep++ {
							jobs = append(jobs, tableMgmtJob{
								spec: spec, capacity: capa, policy: policy,
								agg: agg, series: series, seed: int64(rep) + 1,
							})
						}
					}
				}
			}
		}
	}

	vals := make([]tableMgmtCell, len(jobs))
	errs := make([]error, len(jobs))
	workers := opts.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if failed.Load() {
					continue
				}
				j := jobs[i]
				v, err := runTableMgmtCell(j.spec, j.capacity, j.policy, j.agg, j.series, opts, j.seed)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return nil, fmt.Errorf("experiments: tablemgmt %s/cap%d/%s/agg=%v/%s seed %d: %w",
				j.spec, j.capacity, j.policy, j.agg, j.series.Name, j.seed, err)
		}
	}

	out := &TableMgmtSweepResult{Options: opts}
	fold := func(p *TableMgmtPoint, v tableMgmtCell) {
		p.Switches = v.switches
		if v.sent > 0 {
			p.Delivery.Observe(float64(v.delivered) / float64(v.sent))
		}
		p.SetupMs.Observe(v.setupMs)
		p.PacketIns += v.packetIns
		p.Installs += v.installs
		p.Replacements += v.replacements
		p.Active += v.active
		p.RemovedIdle += v.removedIdle
		p.RemovedHard += v.removedHard
		p.RemovedDelete += v.removedDelete
		p.RemovedEvict += v.removedEvict
		p.Rejects += v.rejects
		p.Cleared += v.cleared
		p.Aggregations += v.aggregations
		p.RulesCompressed += v.rulesCompressed
		p.CoveredSkips += v.coveredSkips
		p.TableFullErrors += v.tableFullErrs
		p.OccupancyMean.Observe(v.occMean)
		if v.occMax > p.OccupancyMax {
			p.OccupancyMax = v.occMax
		}
		if gap := v.ledgerGap; gap < 0 {
			gap = -gap
			if gap > p.LedgerGap {
				p.LedgerGap = gap
			}
		} else if gap > p.LedgerGap {
			p.LedgerGap = gap
		}
		if v.leakedUnits > p.LeakedUnits {
			p.LeakedUnits = v.leakedUnits
		}
	}
	i := 0
	for _, spec := range opts.Topos {
		for _, capa := range opts.Capacities {
			for _, policy := range opts.Policies {
				for _, agg := range opts.Aggregation {
					for _, series := range opts.Mechanisms {
						p := TableMgmtPoint{Topo: spec, Capacity: capa, Policy: policy,
							Aggregation: agg, Series: series.Name}
						for rep := 0; rep < opts.Repeats; rep++ {
							fold(&p, vals[i])
							i++
						}
						out.Points = append(out.Points, p)
					}
				}
			}
		}
	}
	return out, nil
}

// WriteTable renders the sweep as a fixed-width text table, one row per
// (topo, capacity, policy, aggregation, mechanism).
func (r *TableMgmtSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "tablemgmt — %d flows × %d pkts at %g Mbps, idle %ds, %d repeats\n",
		r.Options.Flows, r.Options.PktsPerFlow, r.Options.Rate, r.Options.IdleTimeoutSec, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-18s %5s %-7s %-4s %-18s %9s %9s %9s %7s %7s %7s %7s %7s %8s %7s %5s",
		"topo", "cap", "policy", "agg", "mechanism", "delivery", "setup_ms", "pktins",
		"install", "evict", "idle", "reject", "aggs", "squeezed", "occmax", "gap")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, p := range r.Points {
		agg := "off"
		if p.Aggregation {
			agg = "on"
		}
		if _, err := fmt.Fprintf(w, "%-18s %5d %-7s %-4s %-18s %9.4f %9.3f %9d %7d %7d %7d %7d %7d %8d %7.1f %5d\n",
			p.Topo, p.Capacity, p.Policy, agg, p.Series,
			p.Delivery.Mean(), p.SetupMs.Mean(), p.PacketIns,
			p.Installs, p.RemovedEvict, p.RemovedIdle, p.Rejects,
			p.Aggregations, p.RulesCompressed, p.OccupancyMax, p.LedgerGap); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the sweep as CSV rows:
// topo,capacity,policy,aggregation,mechanism,switches,delivery_mean,setup_ms_mean,packet_ins,installs,replacements,active,removed_idle,removed_hard,removed_delete,removed_evict,rejects,cleared,ledger_gap,aggregations,rules_compressed,covered_skips,table_full_errors,occupancy_mean,occupancy_max,leaked_units.
// The topo column is quoted when the spec itself contains commas.
func (r *TableMgmtSweepResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "topo,capacity,policy,aggregation,mechanism,switches,delivery_mean,setup_ms_mean,packet_ins,installs,replacements,active,removed_idle,removed_hard,removed_delete,removed_evict,rejects,cleared,ledger_gap,aggregations,rules_compressed,covered_skips,table_full_errors,occupancy_mean,occupancy_max,leaked_units"); err != nil {
			return err
		}
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%d,%s,%v,%s,%d,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g,%d\n",
			csvQuote(p.Topo), p.Capacity, p.Policy, p.Aggregation, p.Series, p.Switches,
			p.Delivery.Mean(), p.SetupMs.Mean(), p.PacketIns,
			p.Installs, p.Replacements, p.Active,
			p.RemovedIdle, p.RemovedHard, p.RemovedDelete, p.RemovedEvict,
			p.Rejects, p.Cleared, p.LedgerGap,
			p.Aggregations, p.RulesCompressed, p.CoveredSkips, p.TableFullErrors,
			p.OccupancyMean.Mean(), p.OccupancyMax, p.LeakedUnits); err != nil {
			return err
		}
	}
	return nil
}
