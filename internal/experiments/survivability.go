package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sdnbuffer/internal/metrics"
	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/pktgen"
	"sdnbuffer/internal/testbed"
	"sdnbuffer/internal/topo"
)

// Survivability scenario names: which element of the active path the sweep
// kills mid-run. "link" takes down the path's first inter-switch link for
// the window; "crash" power-cycles the mid-path switch (the spine on a
// leaf-spine), wiping its flow table and buffers.
const (
	ScenarioLinkDown    = "link"
	ScenarioSwitchCrash = "crash"
)

// SurvivabilityOptions scale the survivability sweep: topology × failure
// scenario × buffer mechanism × install mode × shard count, each cell
// repeated across seeds. Topologies must offer a detour around the killed
// element (the defaults are leaf-spines with a spare spine); the failure
// window sits a third of the way into the schedule so traffic straddles
// it. The zero value is filled with the defaults BENCH_survivability.json
// quotes.
type SurvivabilityOptions struct {
	// Topos are the topology specs swept (topo.ParseSpec syntax).
	Topos []string
	// Scenarios are the failure scenarios swept (default link, crash).
	Scenarios []string
	// Mechanisms are the buffer series swept (default no-buffer,
	// packet-granularity, flow-granularity).
	Mechanisms []Series
	// Installs are the rule-installation modes swept (default hop, path).
	Installs []topo.InstallMode
	// Shards are the controller counts swept (default 1, 2).
	Shards []int
	// Rate is the sending rate in Mbps (default 40); Flows × PktsPerFlow
	// shape the workload (defaults 8 × 30, long enough to straddle the
	// window); FrameSize and Jitter shape the frames (defaults 1000, 0.5).
	Rate        float64
	Flows       int
	PktsPerFlow int
	FrameSize   int
	Jitter      float64
	// WindowMs is the failure window length in milliseconds (default 20).
	WindowMs int
	// Repeats is the number of seeds per cell (default 2).
	Repeats int
	// Parallelism fans the grid across workers (default GOMAXPROCS).
	// Results fold in a fixed order, so output is byte-identical at any
	// setting.
	Parallelism int
	// KernelWorkers > 1 runs each cell on the conservative parallel kernel
	// (default 0/1 = serial). Failure events are scheduled one per owning
	// domain in both modes, so every cell's metrics — and hence the CSV —
	// are byte-identical at any setting.
	KernelWorkers int
}

func (o SurvivabilityOptions) withDefaults() SurvivabilityOptions {
	if len(o.Topos) == 0 {
		o.Topos = []string{
			"leafspine:leaves=2,spines=2",
			"leafspine:leaves=4,spines=3",
		}
	}
	if len(o.Scenarios) == 0 {
		o.Scenarios = []string{ScenarioLinkDown, ScenarioSwitchCrash}
	}
	if len(o.Mechanisms) == 0 {
		o.Mechanisms = []Series{SeriesNoBuffer, SeriesPacketGranularity, SeriesFlowGranularity}
	}
	if len(o.Installs) == 0 {
		o.Installs = []topo.InstallMode{topo.InstallHopByHop, topo.InstallPath}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2}
	}
	if o.Rate == 0 {
		o.Rate = 40
	}
	if o.Flows == 0 {
		o.Flows = 8
	}
	if o.PktsPerFlow == 0 {
		o.PktsPerFlow = 30
	}
	if o.FrameSize == 0 {
		o.FrameSize = 1000
	}
	if o.Jitter == 0 {
		o.Jitter = 0.5
	}
	if o.WindowMs == 0 {
		o.WindowMs = 20
	}
	if o.Repeats == 0 {
		o.Repeats = 2
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// survivabilityPlan derives the cell's failure plan from the topology's
// active host 0 → host 1 path, so the failure always bites the workload.
func survivabilityPlan(g *topo.Graph, scenario string, w netem.Window) (*netem.FailurePlan, error) {
	path, err := g.HostPath(0, 1)
	if err != nil {
		return nil, err
	}
	switch scenario {
	case ScenarioLinkDown:
		if len(path) < 2 {
			return nil, fmt.Errorf("experiments: %q needs a multi-switch path, got %d hops", scenario, len(path))
		}
		return &netem.FailurePlan{Links: []netem.LinkFailure{
			{A: path[0].Switch, B: path[1].Switch, Window: w},
		}}, nil
	case ScenarioSwitchCrash:
		if len(path) < 3 {
			return nil, fmt.Errorf("experiments: %q needs a mid-path switch, got %d hops", scenario, len(path))
		}
		return &netem.FailurePlan{Switches: []netem.SwitchFailure{
			{Switch: path[1].Switch, Window: w},
		}}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown survivability scenario %q (want %s or %s)",
			scenario, ScenarioLinkDown, ScenarioSwitchCrash)
	}
}

// survivabilityCell is the raw metric set of one (topo, scenario, mechanism,
// install, shards, seed) run.
type survivabilityCell struct {
	switches        int
	delivered, sent int64
	convergeMs      float64
	rerouted        uint64
	blackholes      uint64
	loopFrames      int64
	linkDownDrops   int64
	txDownDrops     uint64
	bufDropsDead    uint64
	crashRxDrops    uint64
	crashBufPackets uint64
	ledgerGap       int64
	unroutable      uint64
	dups            int64
	misdelivered    int64
	lateReorders    int64
	leakedUnits     int
	leakedBytes     int64
}

// SurvivabilityPoint aggregates one grid cell across repeats.
type SurvivabilityPoint struct {
	Topo     string
	Scenario string
	Series   string
	Install  topo.InstallMode
	Shards   int
	Switches int
	// Delivery and ConvergeMs observe one per-repeat sample each.
	Delivery   metrics.Summary
	ConvergeMs metrics.Summary
	// Rerouted and the named drop reasons are summed across repeats.
	Rerouted        uint64
	LinkDownDrops   int64
	TxDownDrops     uint64
	BufDropsDead    uint64
	CrashRxDrops    uint64
	CrashBufPackets uint64
	// Blackholes, LoopFrames, LedgerGap, Unroutable, Dups, Misdelivered,
	// LateReorders and the leak counters are worst-of across repeats —
	// acceptance demands zero for all: no frame circulates, every loss has
	// a name, and delivery settles back to exactly once in order.
	Blackholes   uint64
	LoopFrames   int64
	LedgerGap    int64
	Unroutable   uint64
	Dups         int64
	Misdelivered int64
	LateReorders int64
	LeakedUnits  int
	LeakedBytes  int64
}

// SurvivabilitySweepResult is a completed survivability sweep.
type SurvivabilitySweepResult struct {
	Options SurvivabilityOptions
	Points  []SurvivabilityPoint
}

func runSurvivabilityCell(spec, scenario string, series Series, install topo.InstallMode,
	shards int, opts SurvivabilityOptions, seed int64) (survivabilityCell, error) {
	s, err := topo.ParseSpec(spec)
	if err != nil {
		return survivabilityCell{}, err
	}
	g, err := topo.Build(s)
	if err != nil {
		return survivabilityCell{}, err
	}
	sched, err := pktgen.InterleavedBursts(pktgen.Config{
		FrameSize: opts.FrameSize,
		RateMbps:  opts.Rate,
		Jitter:    opts.Jitter,
		Seed:      seed,
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		DstIP:     g.Hosts()[1].Addr,
	}, opts.Flows, opts.PktsPerFlow, 4)
	if err != nil {
		return survivabilityCell{}, err
	}
	start := sched.Duration() / 3
	window := netem.Window{Start: start, End: start + time.Duration(opts.WindowMs)*time.Millisecond}
	plan, err := survivabilityPlan(g, scenario, window)
	if err != nil {
		return survivabilityCell{}, err
	}
	cfg := testbed.DefaultConfig(series.Buffer, series.BufferCapacity)
	cfg.Seed = seed
	fb, err := testbed.NewFabric(cfg, testbed.FabricOptions{
		Graph:         g,
		Shards:        shards,
		Install:       install,
		KernelWorkers: opts.KernelWorkers,
		Failures:      plan,
	})
	if err != nil {
		return survivabilityCell{}, err
	}
	res, err := fb.Run(sched)
	if err != nil {
		return survivabilityCell{}, err
	}
	named := res.LinkDownDrops + int64(res.TxDownDrops) + int64(res.BufDropsDeadPort) +
		int64(res.CrashRxDrops) + int64(res.CrashBufPackets)
	// Reordering while old-path and new-path frames race is physical and
	// transient; only violations delivered after the settle deadline (the
	// window's end plus one re-request period and control slack) count.
	var lateReorders int64
	if settle := window.End + 60*time.Millisecond; res.LastReorderTime > settle {
		lateReorders = res.OrderViolations
	}
	return survivabilityCell{
		switches:        res.Switches,
		delivered:       res.FramesDelivered,
		sent:            int64(res.FramesSent),
		convergeMs:      float64(res.ConvergenceTime) / float64(time.Millisecond),
		rerouted:        res.ReroutedPaths,
		blackholes:      res.Blackholes,
		loopFrames:      res.LoopFrames,
		linkDownDrops:   res.LinkDownDrops,
		txDownDrops:     res.TxDownDrops,
		bufDropsDead:    res.BufDropsDeadPort,
		crashRxDrops:    res.CrashRxDrops,
		crashBufPackets: res.CrashBufPackets,
		ledgerGap:       int64(res.FramesSent) - res.FramesDelivered - named,
		unroutable:      res.Unroutable,
		dups:            res.DupEmissions,
		misdelivered:    res.Misdelivered,
		lateReorders:    lateReorders,
		leakedUnits:     res.BufferUnitsLeaked,
		leakedBytes:     res.BufferBytesLeaked,
	}, nil
}

// survivabilityJob is one scheduled run of the sweep.
type survivabilityJob struct {
	spec     string
	scenario string
	series   Series
	install  topo.InstallMode
	shards   int
	seed     int64
}

// RunSurvivability executes the survivability sweep, fanning the (topo,
// scenario, mechanism, install, shards, repeat) grid across Parallelism
// workers and folding the per-cell metrics in a fixed order: the result
// (and hence the CSV) is byte-identical at any Parallelism and any
// KernelWorkers setting.
func RunSurvivability(opts SurvivabilityOptions) (*SurvivabilitySweepResult, error) {
	opts = opts.withDefaults()
	var jobs []survivabilityJob
	for _, spec := range opts.Topos {
		for _, scenario := range opts.Scenarios {
			for _, series := range opts.Mechanisms {
				for _, install := range opts.Installs {
					for _, shards := range opts.Shards {
						for rep := 0; rep < opts.Repeats; rep++ {
							jobs = append(jobs, survivabilityJob{
								spec: spec, scenario: scenario, series: series,
								install: install, shards: shards, seed: int64(rep) + 1,
							})
						}
					}
				}
			}
		}
	}

	vals := make([]survivabilityCell, len(jobs))
	errs := make([]error, len(jobs))
	workers := opts.Parallelism
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				if failed.Load() {
					continue
				}
				j := jobs[i]
				v, err := runSurvivabilityCell(j.spec, j.scenario, j.series, j.install, j.shards, opts, j.seed)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				vals[i] = v
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			j := jobs[i]
			return nil, fmt.Errorf("experiments: survivability %s/%s/%s/%s/%d shards seed %d: %w",
				j.spec, j.scenario, j.series.Name, j.install, j.shards, j.seed, err)
		}
	}

	out := &SurvivabilitySweepResult{Options: opts}
	fold := func(p *SurvivabilityPoint, v survivabilityCell) {
		p.Switches = v.switches
		if v.sent > 0 {
			p.Delivery.Observe(float64(v.delivered) / float64(v.sent))
		}
		p.ConvergeMs.Observe(v.convergeMs)
		p.Rerouted += v.rerouted
		p.LinkDownDrops += v.linkDownDrops
		p.TxDownDrops += v.txDownDrops
		p.BufDropsDead += v.bufDropsDead
		p.CrashRxDrops += v.crashRxDrops
		p.CrashBufPackets += v.crashBufPackets
		if v.blackholes > p.Blackholes {
			p.Blackholes = v.blackholes
		}
		if v.loopFrames > p.LoopFrames {
			p.LoopFrames = v.loopFrames
		}
		if gap := v.ledgerGap; gap < 0 {
			gap = -gap
			if gap > p.LedgerGap {
				p.LedgerGap = gap
			}
		} else if gap > p.LedgerGap {
			p.LedgerGap = gap
		}
		if v.unroutable > p.Unroutable {
			p.Unroutable = v.unroutable
		}
		if v.dups > p.Dups {
			p.Dups = v.dups
		}
		if v.misdelivered > p.Misdelivered {
			p.Misdelivered = v.misdelivered
		}
		if v.lateReorders > p.LateReorders {
			p.LateReorders = v.lateReorders
		}
		if v.leakedUnits > p.LeakedUnits {
			p.LeakedUnits = v.leakedUnits
		}
		if v.leakedBytes > p.LeakedBytes {
			p.LeakedBytes = v.leakedBytes
		}
	}
	i := 0
	for _, spec := range opts.Topos {
		for _, scenario := range opts.Scenarios {
			for _, series := range opts.Mechanisms {
				for _, install := range opts.Installs {
					for _, shards := range opts.Shards {
						p := SurvivabilityPoint{Topo: spec, Scenario: scenario,
							Series: series.Name, Install: install, Shards: shards}
						for rep := 0; rep < opts.Repeats; rep++ {
							fold(&p, vals[i])
							i++
						}
						out.Points = append(out.Points, p)
					}
				}
			}
		}
	}
	return out, nil
}

// WriteTable renders the sweep as a fixed-width text table, one row per
// (topo, scenario, mechanism, install, shards).
func (r *SurvivabilitySweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "survivability — %d flows × %d pkts at %g Mbps, %d ms window, %d repeats\n",
		r.Options.Flows, r.Options.PktsPerFlow, r.Options.Rate, r.Options.WindowMs, r.Options.Repeats); err != nil {
		return err
	}
	header := fmt.Sprintf("%-30s %-6s %-18s %-4s %6s %9s %11s %8s %9s %9s %8s %6s %5s",
		"topo", "fail", "mechanism", "inst", "shards", "delivery", "converge_ms", "rerouted", "linkdrops", "bufdrops", "crashrx", "loops", "gap")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%-30s %-6s %-18s %-4s %6d %9.4f %11.3f %8d %9d %9d %8d %6d %5d\n",
			p.Topo, p.Scenario, p.Series, p.Install, p.Shards,
			p.Delivery.Mean(), p.ConvergeMs.Mean(), p.Rerouted,
			p.LinkDownDrops, p.BufDropsDead, p.CrashRxDrops,
			p.LoopFrames, p.LedgerGap); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the sweep as CSV rows:
// topo,scenario,switches,mechanism,install,shards,delivery_mean,converge_ms_mean,converge_ms_max,rerouted,blackholes,loop_frames,link_down_drops,tx_down_drops,buf_drops_dead_port,crash_rx_drops,crash_buf_packets,ledger_gap,unroutable,dups,misdelivered,late_reorders,leaked_units,leaked_bytes.
// The topo column is quoted when the spec itself contains commas.
func (r *SurvivabilitySweepResult) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "topo,scenario,switches,mechanism,install,shards,delivery_mean,converge_ms_mean,converge_ms_max,rerouted,blackholes,loop_frames,link_down_drops,tx_down_drops,buf_drops_dead_port,crash_rx_drops,crash_buf_packets,ledger_gap,unroutable,dups,misdelivered,late_reorders,leaked_units,leaked_bytes"); err != nil {
			return err
		}
	}
	for _, p := range r.Points {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%d,%g,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			csvQuote(p.Topo), p.Scenario, p.Switches, p.Series, p.Install, p.Shards,
			p.Delivery.Mean(), p.ConvergeMs.Mean(), p.ConvergeMs.Max(),
			p.Rerouted, p.Blackholes, p.LoopFrames,
			p.LinkDownDrops, p.TxDownDrops, p.BufDropsDead, p.CrashRxDrops, p.CrashBufPackets,
			p.LedgerGap, p.Unroutable, p.Dups, p.Misdelivered, p.LateReorders,
			p.LeakedUnits, p.LeakedBytes); err != nil {
			return err
		}
	}
	return nil
}
