package experiments

import (
	"bytes"
	"testing"

	"sdnbuffer/internal/topo"
)

// quickFabricOpts is a small grid that still exercises every axis.
func quickFabricOpts(parallelism int) FabricOptions {
	return FabricOptions{
		Topos:       []string{"line:2", "leafspine:leaves=2,spines=1"},
		Mechanisms:  []Series{SeriesNoBuffer, SeriesFlowGranularity},
		Installs:    []topo.InstallMode{topo.InstallHopByHop, topo.InstallPath},
		Shards:      []int{1, 2},
		Flows:       12,
		Repeats:     1,
		NoScale:     true,
		Parallelism: parallelism,
	}
}

func TestRunFabricDeterministicAcrossParallelism(t *testing.T) {
	// The hard guarantee the CI gate enforces on the full scenario: the CSV
	// must be byte-identical whether cells run serially or fanned out.
	var serial, parallel bytes.Buffer
	r1, err := RunFabric(quickFabricOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.WriteCSV(&serial, true); err != nil {
		t.Fatal(err)
	}
	r8, err := RunFabric(quickFabricOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := r8.WriteCSV(&parallel, true); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("CSV differs between -parallel 1 and 8:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunFabricSweepInvariants(t *testing.T) {
	res, err := RunFabric(quickFabricOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2*2*2*2 {
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Delivery.Mean() != 1 {
			t.Errorf("%s/%s/%s/%d: delivery %g", p.Topo, p.Series, p.Install, p.Shards, p.Delivery.Mean())
		}
		if p.LeakedUnits != 0 || p.LeakedBytes != 0 || p.Dups != 0 || p.Misdelivered != 0 {
			t.Errorf("%s/%s/%s/%d: leak/dup/misdeliver nonzero: %+v", p.Topo, p.Series, p.Install, p.Shards, p)
		}
		// Only flow granularity promises in-order delivery: the whole flow
		// queues behind its first packet at every hop. Under no-buffer the
		// controller round trip re-emits early packets behind later fast-path
		// ones — the reordering is the paper's motivation, not a harness bug.
		if p.Series == SeriesFlowGranularity.Name && p.Misorders != 0 {
			t.Errorf("%s/%s/%s/%d: flow granularity misordered %d frames", p.Topo, p.Series, p.Install, p.Shards, p.Misorders)
		}
		if p.Unroutable != 0 {
			t.Errorf("%s/%s/%s/%d: %d unroutable", p.Topo, p.Series, p.Install, p.Shards, p.Unroutable)
		}
	}
	// Path install on the single-shard line:2 must cost fewer packet_ins
	// than hop-by-hop on the same cell.
	byKey := map[string]FabricPoint{}
	for _, p := range res.Points {
		byKey[p.Topo+"/"+p.Series+"/"+p.Install.String()+"/"+string(rune('0'+p.Shards))] = p
	}
	hop := byKey["line:2/flow-granularity/hop/1"]
	path := byKey["line:2/flow-granularity/path/1"]
	if path.PacketIns >= hop.PacketIns {
		t.Errorf("path install packet_ins %d not below hop-by-hop %d", path.PacketIns, hop.PacketIns)
	}
	// The table renderer must not error.
	var tbl bytes.Buffer
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
}
