package experiments

import (
	"bytes"
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/switchd"
)

func smallResilienceOptions(parallelism int) ResilienceOptions {
	return ResilienceOptions{
		LossRates:   []float64{0, 0.02, 0.05},
		Repeats:     2,
		Flows:       20,
		PktsPerFlow: 8,
		Group:       5,
		Parallelism: parallelism,
	}
}

// TestResilienceDeterministicCSV pins the acceptance criterion: the same
// seeds produce byte-identical CSV output, at any parallelism.
func TestResilienceDeterministicCSV(t *testing.T) {
	csv := func(parallelism int) string {
		res, err := RunResilience(smallResilienceOptions(parallelism))
		if err != nil {
			t.Fatalf("RunResilience: %v", err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf, true); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.String()
	}
	serial := csv(1)
	if again := csv(1); again != serial {
		t.Errorf("serial reruns diverged:\n%s\n---\n%s", serial, again)
	}
	if par := csv(4); par != serial {
		t.Errorf("parallel run diverged from serial:\n%s\n---\n%s", serial, par)
	}
}

// TestResilienceFlowSeriesAcceptance pins the 5%-loss acceptance criteria
// for the flow-granularity mechanisms: full delivery, zero leaked units,
// exactly-once in-order emission.
func TestResilienceFlowSeriesAcceptance(t *testing.T) {
	res, err := RunResilience(smallResilienceOptions(0))
	if err != nil {
		t.Fatalf("RunResilience: %v", err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series count = %d", len(res.Series))
	}
	sawPacketGranMisorder := false
	for _, s := range res.Series {
		flowSeries := s.Series.Name == SeriesFlowGranularity.Name || s.Series.Name == SeriesFlowHardened.Name
		for _, p := range s.Points {
			if p.Dups != 0 {
				t.Errorf("%s loss %g: %d duplicate emissions", s.Series.Name, p.LossRate, p.Dups)
			}
			// Per-flow ordering is only guaranteed by flow granularity:
			// under packet granularity a post-install packet legally
			// fast-paths past its still-buffered predecessors (the paper's
			// §V reordering motivation), so only record that it happens.
			if flowSeries && p.Misorders != 0 {
				t.Errorf("%s loss %g: %d order violations", s.Series.Name, p.LossRate, p.Misorders)
			}
			if !flowSeries && p.Misorders != 0 {
				sawPacketGranMisorder = true
			}
			if p.Leaked != 0 {
				t.Errorf("%s loss %g: %d leaked buffer units", s.Series.Name, p.LossRate, p.Leaked)
			}
			if flowSeries && p.Delivery.Min() != 1 {
				t.Errorf("%s loss %g: delivery min %g, want 1 (re-request must recover every flow)",
					s.Series.Name, p.LossRate, p.Delivery.Min())
			}
			if flowSeries && p.LossRate >= 0.05 && p.Rerequests == 0 {
				t.Errorf("%s loss %g: no re-requests — loss plan not applied?", s.Series.Name, p.LossRate)
			}
		}
	}
	if !sawPacketGranMisorder {
		t.Error("packet granularity showed no setup-window reordering — tap not measuring?")
	}
}

// TestResilienceBurstyLoss exercises the Gilbert–Elliott path end to end.
func TestResilienceBurstyLoss(t *testing.T) {
	opts := smallResilienceOptions(0)
	opts.LossRates = []float64{0.05}
	opts.BurstLen = 4
	res, err := RunResilience(opts)
	if err != nil {
		t.Fatalf("RunResilience: %v", err)
	}
	for _, s := range res.Series {
		if s.Series.Name == SeriesFlowGranularity.Name {
			p := s.Points[0]
			if p.Delivery.Min() != 1 || p.Leaked != 0 || p.Dups != 0 || p.Misorders != 0 {
				t.Errorf("bursty loss: delivery=%g leaked=%d dups=%d misorders=%d",
					p.Delivery.Min(), p.Leaked, p.Dups, p.Misorders)
			}
		}
	}
}

// TestRunOutage pins the blackout scenario shape: four rows, degraded
// forwarding only under fail-standalone, and standalone beating fail-secure
// for the bufferless switch.
func TestRunOutage(t *testing.T) {
	// The reduced workload spans ~26ms of virtual time, so the blackout must
	// sit inside it rather than at the full-size default of 40–120ms.
	opts := OutageOptions{
		Flows: 20, PktsPerFlow: 8, Group: 5,
		Window: netem.Window{Start: 5 * time.Millisecond, End: 15 * time.Millisecond},
	}
	rows, err := RunOutage(opts)
	if err != nil {
		t.Fatalf("RunOutage: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byKey := map[string]OutageRow{}
	for _, r := range rows {
		byKey[r.Series+"/"+r.FailMode.String()] = r
		if r.FailMode == switchd.FailSecure && r.StandaloneForwards != 0 {
			t.Errorf("%s fail-secure standalone-forwarded %d frames", r.Series, r.StandaloneForwards)
		}
		if r.ControlDownMisses == 0 {
			t.Errorf("%s/%s saw no misses during the blackout", r.Series, r.FailMode)
		}
		if r.Leaked != 0 {
			t.Errorf("%s/%s leaked %d units", r.Series, r.FailMode, r.Leaked)
		}
	}
	nbSecure := byKey["no-buffer/fail-secure"]
	nbStandalone := byKey["no-buffer/fail-standalone"]
	if nbStandalone.Delivery <= nbSecure.Delivery {
		t.Errorf("no-buffer: standalone delivery %g <= fail-secure %g",
			nbStandalone.Delivery, nbSecure.Delivery)
	}
	fgSecure := byKey["flow-granularity/fail-secure"]
	if fgSecure.Delivery != 1 {
		t.Errorf("flow-granularity fail-secure delivery %g, want 1 (buffer + re-request rides out the blackout)",
			fgSecure.Delivery)
	}
	// Tables and CSV must render without error.
	var buf bytes.Buffer
	if err := WriteOutageTable(&buf, opts, rows); err != nil {
		t.Fatalf("WriteOutageTable: %v", err)
	}
	if err := WriteOutageCSV(&buf, rows, true); err != nil {
		t.Fatalf("WriteOutageCSV: %v", err)
	}
	res, err := RunResilience(smallResilienceOptions(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteTable(&buf); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	if buf.Len() == 0 {
		t.Error("empty report output")
	}
}
