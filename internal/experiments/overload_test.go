package experiments

import (
	"bytes"
	"testing"

	"sdnbuffer/internal/core"
)

func smallOverloadOptions(parallelism int) OverloadOptions {
	return OverloadOptions{
		FlowCounts:  []int{32, 128},
		Rates:       []float64{25, 100},
		Repeats:     2,
		Parallelism: parallelism,
	}
}

// TestOverloadDeterministicCSV pins the acceptance criterion: the same
// seeds produce byte-identical CSV output, at any parallelism.
func TestOverloadDeterministicCSV(t *testing.T) {
	csv := func(parallelism int) string {
		res, err := RunOverload(smallOverloadOptions(parallelism))
		if err != nil {
			t.Fatalf("RunOverload: %v", err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf, true); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return buf.String()
	}
	serial := csv(1)
	if again := csv(1); again != serial {
		t.Errorf("serial reruns diverged:\n%s\n---\n%s", serial, again)
	}
	if par := csv(8); par != serial {
		t.Errorf("parallel run diverged from serial:\n%s\n---\n%s", serial, par)
	}
}

// TestOverloadSweepAcceptance pins the sweep's invariants: every cell of
// both series ends with an empty pool and a ladder back at flow
// granularity, and the heaviest protected cell actually engaged the
// protection stack (ladder transitions plus byte rejections).
func TestOverloadSweepAcceptance(t *testing.T) {
	res, err := RunOverload(smallOverloadOptions(0))
	if err != nil {
		t.Fatalf("RunOverload: %v", err)
	}
	if len(res.Series) != 2 || res.Series[0].Protected || !res.Series[1].Protected {
		t.Fatalf("series = %+v, want unprotected then protected", res.Series)
	}
	engaged := false
	for _, s := range res.Series {
		for _, p := range s.Points {
			if p.LeakedUnits != 0 || p.LeakedBytes != 0 {
				t.Errorf("%s %d flows %g Mbps: leaked %d units / %d bytes",
					s.Name, p.Flows, p.RateMbps, p.LeakedUnits, p.LeakedBytes)
			}
			if p.LevelEndWorst != core.LevelFlow {
				t.Errorf("%s %d flows %g Mbps: ladder ended at %v, want flow",
					s.Name, p.Flows, p.RateMbps, p.LevelEndWorst)
			}
			if !s.Protected && (p.MaxLevel != core.LevelFlow || p.PacerDrops != 0 || p.CtrlShed != 0) {
				t.Errorf("unprotected series shows protection activity: %+v", p)
			}
			if s.Protected && p.MaxLevel > core.LevelFlow && p.RejectedBytes > 0 {
				engaged = true
			}
		}
	}
	if !engaged {
		t.Error("no protected cell engaged the ladder — sweep not reaching overload?")
	}
}
