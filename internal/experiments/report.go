package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders the result as a fixed-width text table: one row per
// sending rate, one column per series (mean ± std across repeats), matching
// how the paper's figures read.
func (r *Result) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n%s\n", r.Experiment.ID, r.Experiment.Title, r.Experiment.Metric); err != nil {
		return err
	}
	header := fmt.Sprintf("%10s", "rate(Mbps)")
	for _, s := range r.Series {
		header += fmt.Sprintf("  %22s", s.Series.Name)
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	if len(r.Series) == 0 {
		return nil
	}
	for i, p := range r.Series[0].Points {
		row := fmt.Sprintf("%10.0f", p.RateMbps)
		for _, s := range r.Series {
			if i >= len(s.Points) {
				row += fmt.Sprintf("  %22s", "-")
				continue
			}
			row += fmt.Sprintf("  %14.4g ±%6.2g", s.Points[i].Mean, s.Points[i].StdDev)
		}
		if _, err := fmt.Fprintln(w, row); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		if _, err := fmt.Fprintf(w, "overall %-20s mean=%.4g sd=%.4g min=%.4g max=%.4g\n",
			s.Series.Name, s.Overall.Mean(), s.Overall.StdDev(), s.Overall.Min(), s.Overall.Max()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV renders the result as CSV rows:
// experiment,series,rate_mbps,mean,stddev,min,max.
func (r *Result) WriteCSV(w io.Writer, includeHeader bool) error {
	if includeHeader {
		if _, err := fmt.Fprintln(w, "experiment,series,rate_mbps,mean,stddev,min,max"); err != nil {
			return err
		}
	}
	for _, s := range r.Series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%g,%g,%g,%g,%g\n",
				r.Experiment.ID, s.Series.Name, p.RateMbps, p.Mean, p.StdDev, p.Min, p.Max); err != nil {
				return err
			}
		}
	}
	return nil
}

// Claims summarizes the paper's quantitative statements against the
// measured aggregates for the figures with a clear baseline/target pair.
// It returns one line per derivable claim.
func (r *Result) Claims() []string {
	var out []string
	add := func(baseline, target, what string) {
		red, err := r.MeanReduction(baseline, target)
		if err != nil {
			return
		}
		out = append(out, fmt.Sprintf("%s: %s vs %s — measured mean reduction of %s: %.1f%%",
			r.Experiment.ID, target, baseline, what, red))
	}
	switch r.Experiment.ID {
	case "fig2a", "fig2b", "fig3", "fig5", "fig6", "fig7":
		add(SeriesNoBuffer.Name, SeriesBuffer256.Name, r.Experiment.Metric)
	case "fig8":
		b16, err16 := r.FindSeries(SeriesBuffer16.Name)
		b256, err256 := r.FindSeries(SeriesBuffer256.Name)
		if err16 == nil && err256 == nil {
			out = append(out, fmt.Sprintf(
				"fig8: peak buffer occupancy — buffer-16 %.0f units (capacity 16), buffer-256 %.0f units (capacity 256)",
				b16.Overall.Max(), b256.Overall.Max()))
		}
	case "fig4":
		red, err := r.MeanReduction(SeriesNoBuffer.Name, SeriesBuffer256.Name)
		if err == nil {
			out = append(out, fmt.Sprintf("fig4: buffer-256 switch overhead vs no-buffer: %+.1f%%", -red))
		}
	case "fig9a", "fig9b", "fig10", "fig11", "fig13a", "fig13b", "fig12a", "fig12b":
		add(SeriesPacketGranularity.Name, SeriesFlowGranularity.Name, r.Experiment.Metric)
	}
	return out
}
