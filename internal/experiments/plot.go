package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotHeight is the number of character rows in an ASCII plot.
const plotHeight = 16

// seriesGlyphs mark the curves, in series order.
var seriesGlyphs = []byte{'o', '*', '+', 'x', '#'}

// WritePlot renders the result as an ASCII chart — one glyph per series —
// so a terminal run of benchrunner visually mirrors the paper's figures.
func (r *Result) WritePlot(w io.Writer) error {
	if len(r.Series) == 0 || len(r.Series[0].Points) == 0 {
		_, err := fmt.Fprintf(w, "%s: no data\n", r.Experiment.ID)
		return err
	}
	cols := len(r.Series[0].Points)

	// Y range across all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range r.Series {
		for _, p := range s.Points {
			lo = math.Min(lo, p.Mean)
			hi = math.Max(hi, p.Mean)
		}
	}
	if lo > 0 && lo < hi/10 {
		lo = 0 // anchor at zero unless the whole range is far from it
	}
	if hi == lo {
		hi = lo + 1
	}

	// Cells: 3 columns per sweep point keeps curves readable.
	const colWidth = 3
	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*colWidth))
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		rw := int(math.Round(frac * float64(plotHeight-1)))
		if rw < 0 {
			rw = 0
		}
		if rw > plotHeight-1 {
			rw = plotHeight - 1
		}
		return plotHeight - 1 - rw // row 0 is the top
	}
	for si, s := range r.Series {
		glyph := seriesGlyphs[si%len(seriesGlyphs)]
		for pi, p := range s.Points {
			x := pi*colWidth + 1
			y := row(p.Mean)
			if grid[y][x] == ' ' {
				grid[y][x] = glyph
			} else if grid[y][x] != glyph {
				grid[y][x] = '@' // overlapping series
			}
		}
	}

	if _, err := fmt.Fprintf(w, "%s — %s\n", r.Experiment.ID, r.Experiment.Title); err != nil {
		return err
	}
	for i, line := range grid {
		label := "          "
		switch i {
		case 0:
			label = fmt.Sprintf("%10.3g", hi)
		case plotHeight - 1:
			label = fmt.Sprintf("%10.3g", lo)
		case plotHeight / 2:
			label = fmt.Sprintf("%10.3g", (hi+lo)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", cols*colWidth)); err != nil {
		return err
	}
	// X labels: first, middle, last rate.
	xl := make([]byte, cols*colWidth)
	for i := range xl {
		xl[i] = ' '
	}
	place := func(pi int) {
		s := fmt.Sprintf("%g", r.Series[0].Points[pi].RateMbps)
		at := pi * colWidth
		if at+len(s) > len(xl) {
			at = len(xl) - len(s)
		}
		copy(xl[at:], s)
	}
	place(0)
	place(cols / 2)
	place(cols - 1)
	if _, err := fmt.Fprintf(w, "%10s  %s Mbps\n", "", string(xl)); err != nil {
		return err
	}
	legend := make([]string, 0, len(r.Series))
	for si, s := range r.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesGlyphs[si%len(seriesGlyphs)], s.Series.Name))
	}
	_, err := fmt.Fprintf(w, "%10s  %s  (@=overlap)\n", "", strings.Join(legend, "  "))
	return err
}
