package topo

import (
	"fmt"
	"net/netip"
	"testing"
)

func build(t *testing.T, spec string) *Graph {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	g, err := Build(s)
	if err != nil {
		t.Fatalf("Build(%q): %v", spec, err)
	}
	return g
}

func TestParseSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"line:1",
		"line:4",
		"leafspine:leaves=8,spines=4",
		"leafspine:leaves=8,spines=4,hosts=6",
		"fattree:pods=2,leaves=2,spines=2,cores=2",
		"random:nodes=12,extra=4,seed=7",
	} {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got := spec.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
		if spec2, err := ParseSpec(spec.String()); err != nil || spec2 != spec {
			t.Errorf("re-parse of %q: %+v, %v", s, spec2, err)
		}
	}
	// line:switches=4 normalizes to the shorthand.
	spec, err := ParseSpec("line:switches=4")
	if err != nil || spec.String() != "line:4" {
		t.Errorf("line:switches=4 -> %q, %v", spec.String(), err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"line",
		"line:",
		"line:0",
		"line:4,hosts=3",
		"mesh:nodes=4",
		"leafspine:leaves=8",         // missing spines
		"leafspine:pods=2",           // wrong key for kind
		"fattree:pods=1,leaves=1",    // missing spines/cores
		"random:nodes=4,extra=99999", // extra > 4×nodes
		"random:nodes=999999",        // over MaxSwitches
		"line:9999999999999999999999",
		"leafspine:leaves=-1,spines=2",
		"line:4x",
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) succeeded", s)
		}
	}
}

func TestLinePortConventions(t *testing.T) {
	// A line must match the legacy LineTestbed wiring: port 1 faces left
	// (host 0 on the first switch), port 2 faces right (host 1 on the last).
	g := build(t, "line:3")
	hosts := g.Hosts()
	if len(hosts) != 2 || hosts[0].Switch != 0 || hosts[0].Port != 1 || hosts[1].Switch != 2 || hosts[1].Port != 2 {
		t.Fatalf("line hosts = %+v", hosts)
	}
	if hosts[0].Addr != netip.MustParseAddr("10.0.0.2") || hosts[1].Addr != netip.MustParseAddr("10.0.0.3") {
		t.Errorf("host addrs = %v, %v", hosts[0].Addr, hosts[1].Addr)
	}
	for i := 0; i < 2; i++ {
		p, ok := g.PeerOf(i, 2)
		if !ok || p.Switch != i+1 || p.Port != 1 {
			t.Errorf("sw%d port 2 peer = %+v", i, p)
		}
	}
	hops, err := g.HostPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Fatalf("line:3 path = %d hops", len(hops))
	}
	for i, h := range hops {
		if h.Switch != i || h.Entry != 1 || h.Exit != 2 {
			t.Errorf("hop %d = %+v", i, h)
		}
	}
}

func TestLeafSpinePathLengths(t *testing.T) {
	g := build(t, "leafspine:leaves=4,spines=2,hosts=4")
	if g.NumSwitches() != 6 {
		t.Fatalf("switches = %d", g.NumSwitches())
	}
	// Hosts land round-robin on leaves: different leaves → 3-switch path
	// (leaf, spine, leaf).
	hops, err := g.HostPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 3 {
		t.Errorf("cross-leaf path = %d switches, want 3", len(hops))
	}
}

func TestFatTreeCrossPodPath(t *testing.T) {
	g := build(t, "fattree:pods=2,leaves=2,spines=2,cores=2")
	if g.NumSwitches() != 10 {
		t.Fatalf("switches = %d", g.NumSwitches())
	}
	// Default hosts 0 and 1 land in different pods: leaf → spine → core →
	// spine → leaf.
	hops, err := g.HostPath(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != 5 {
		t.Errorf("cross-pod path = %d switches, want 5", len(hops))
	}
}

// checkInvariants asserts the structural properties every built graph must
// hold: symmetric wiring, dense ports, valid host attachments, and
// loop-free exactly-terminating routes between every host pair.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.NumSwitches()
	for i := 0; i < n; i++ {
		for p := 1; p <= g.NumPorts(i); p++ {
			peer, ok := g.PeerOf(i, uint16(p))
			if !ok {
				t.Fatalf("sw%d port %d missing", i, p)
			}
			if peer.Switch >= 0 {
				back, ok := g.PeerOf(peer.Switch, peer.Port)
				if !ok || back.Switch != i || int(back.Port) != p {
					t.Fatalf("asymmetric edge sw%d:%d <-> sw%d:%d (back=%+v)", i, p, peer.Switch, peer.Port, back)
				}
			} else if peer.Host < 0 || peer.Host >= len(g.Hosts()) {
				t.Fatalf("sw%d port %d: bad host %d", i, p, peer.Host)
			}
		}
	}
	for hi, h := range g.Hosts() {
		peer, ok := g.PeerOf(h.Switch, h.Port)
		if !ok || peer.Host != hi {
			t.Fatalf("host %d attachment inconsistent: %+v", hi, peer)
		}
		if idx, ok := g.HostByAddr(h.Addr); !ok || idx != hi {
			t.Fatalf("HostByAddr(%v) = %d, %v", h.Addr, idx, ok)
		}
	}
	for src := range g.Hosts() {
		for dst := range g.Hosts() {
			if src == dst {
				continue
			}
			hops, err := g.HostPath(src, dst)
			if err != nil {
				t.Fatalf("HostPath(%d, %d): %v", src, dst, err)
			}
			if len(hops) > n {
				t.Fatalf("path %d->%d visits %d switches (> %d)", src, dst, len(hops), n)
			}
			seen := make(map[int]bool, len(hops))
			for _, hop := range hops {
				if seen[hop.Switch] {
					t.Fatalf("path %d->%d revisits switch %d", src, dst, hop.Switch)
				}
				seen[hop.Switch] = true
			}
			last := hops[len(hops)-1]
			if last.Switch != g.Hosts()[dst].Switch || last.Exit != g.Hosts()[dst].Port {
				t.Fatalf("path %d->%d ends at %+v, want host %d attachment", src, dst, last, dst)
			}
		}
	}
}

func TestBuiltGraphInvariants(t *testing.T) {
	for _, spec := range []string{
		"line:1", "line:5",
		"leafspine:leaves=1,spines=1",
		"leafspine:leaves=6,spines=3,hosts=5",
		"fattree:pods=3,leaves=2,spines=2,cores=4,hosts=6",
		"random:nodes=1,extra=0,seed=1,hosts=2",
	} {
		t.Run(spec, func(t *testing.T) { checkInvariants(t, build(t, spec)) })
	}
}

func TestRandomGraphsAreSeededAndSound(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		spec := fmt.Sprintf("random:nodes=%d,extra=%d,seed=%d,hosts=%d",
			3+seed%13, seed%7, seed, 2+seed%3)
		g := build(t, spec)
		checkInvariants(t, g)
		// Same seed, same wiring: rebuild and compare edges.
		g2 := build(t, spec)
		for i := 0; i < g.NumSwitches(); i++ {
			if g.NumPorts(i) != g2.NumPorts(i) {
				t.Fatalf("%s: rebuild differs at sw%d", spec, i)
			}
			for p := 1; p <= g.NumPorts(i); p++ {
				a, _ := g.PeerOf(i, uint16(p))
				b, _ := g2.PeerOf(i, uint16(p))
				if a != b {
					t.Fatalf("%s: rebuild differs at sw%d:%d (%+v vs %+v)", spec, i, p, a, b)
				}
			}
		}
	}
}

func TestRandomGraphNotConnectedImpossible(t *testing.T) {
	// The spanning-tree construction guarantees connectivity for any seed.
	for seed := int64(100); seed < 140; seed++ {
		if _, err := Build(Spec{Kind: KindRandom, Nodes: 30, ExtraEdges: 10, Seed: seed}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestParseInstallMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want InstallMode
	}{{"hop", InstallHopByHop}, {"path", InstallPath}} {
		got, err := ParseInstallMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseInstallMode(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Errorf("%v.String() = %q", got, got.String())
		}
	}
	if _, err := ParseInstallMode("bogus"); err == nil {
		t.Error("ParseInstallMode(bogus) succeeded")
	}
}
