package topo

import (
	"testing"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
)

func frameTo(t *testing.T, g *Graph, dst int) []byte {
	t.Helper()
	f := &packet.Frame{
		SrcMAC:    packet.MAC{2, 0, 0, 0, 0, 1},
		DstMAC:    packet.MAC{2, 0, 0, 0, 0, 2},
		EtherType: packet.EtherTypeIPv4,
		TTL:       64,
		Proto:     packet.ProtoUDP,
		SrcIP:     g.Hosts()[0].Addr,
		DstIP:     g.Hosts()[dst].Addr,
		SrcPort:   1000,
		DstPort:   9,
		Payload:   make([]byte, 64),
	}
	wire, err := f.Serialize()
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	return wire
}

func portStatusFor(t *testing.T, g *Graph, sw, nb int, down bool) *openflow.PortStatus {
	t.Helper()
	pa, _, ok := g.EdgePorts(sw, nb)
	if !ok {
		t.Fatalf("no edge %d-%d", sw, nb)
	}
	var state uint32
	if down {
		state = openflow.PortStateLinkDown
	}
	return &openflow.PortStatus{
		Reason: openflow.PortReasonModify,
		Desc:   openflow.PhyPort{PortNo: pa, State: state},
	}
}

// TestPortStatusRerouteAndFlush pins the recovery protocol on a 2×2
// leaf-spine: a link-down port_status swaps the routing snapshot away from
// the dead edge, flushes every mastered switch, is idempotent, and link-up
// restores the pristine next hops (with another flush).
func TestPortStatusRerouteAndFlush(t *testing.T) {
	g, err := Build(Spec{Kind: KindLeafSpine, Leaves: 2, Spines: 2, Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPathForwarder(g, InstallPath, controller.ForwarderConfig{})
	for sw := 0; sw < g.NumSwitches(); sw++ {
		pf.RegisterConn(sw+1, sw)
	}

	// Host 1 hangs off leaf 1; leaf 0's pristine next hop crosses spine 2
	// (ports tie-break in port order).
	pristine, ok := g.NextHopPort(0, 1)
	if !ok {
		t.Fatal("no pristine route")
	}
	spine, okn := g.NeighborAt(0, pristine)
	if !okn {
		t.Fatalf("pristine next hop %d is not a switch port", pristine)
	}

	dirs, err := pf.HandlePortStatusConn(1, portStatusFor(t, g, 0, spine, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) != g.NumSwitches() {
		t.Fatalf("flush reached %d switches, want %d", len(dirs), g.NumSwitches())
	}
	for _, d := range dirs {
		fm, ok := d.Msg.(*openflow.FlowMod)
		if !ok || fm.Command != openflow.FlowModDelete || fm.Match.Wildcards != openflow.WildcardAll {
			t.Fatalf("flush message = %+v", d.Msg)
		}
	}
	rerouted, ok2 := pf.table.NextHopPort(0, 1)
	if !ok2 || rerouted == pristine {
		t.Fatalf("next hop after failure = %d (ok=%v), pristine %d", rerouted, ok2, pristine)
	}
	if nb, _ := g.NeighborAt(0, rerouted); nb == spine {
		t.Fatal("reroute still crosses the failed edge")
	}
	if rr, _ := pf.RecoveryStats(); rr == 0 {
		t.Fatal("reroutedPaths = 0 after a table swap that changed hops")
	}
	if pf.FailedEdges() != 1 {
		t.Fatalf("failed edges = %d", pf.FailedEdges())
	}

	// Same notification again: already known, silent.
	if dirs, err := pf.HandlePortStatusConn(1, portStatusFor(t, g, 0, spine, true)); err != nil || dirs != nil {
		t.Fatalf("repeat learn: %v, %d dirs", err, len(dirs))
	}

	// Link-up: pristine routing returns, with a flush.
	dirs, err = pf.HandlePortStatusConn(1, portStatusFor(t, g, 0, spine, false))
	if err != nil || len(dirs) != g.NumSwitches() {
		t.Fatalf("link-up: %v, %d dirs", err, len(dirs))
	}
	if restored, _ := pf.table.NextHopPort(0, 1); restored != pristine {
		t.Fatalf("restored next hop = %d, want %d", restored, pristine)
	}
	if pf.FailedEdges() != 0 {
		t.Fatalf("failed edges = %d after recovery", pf.FailedEdges())
	}
}

// TestPeerLearnAndBlackhole pins the cross-shard path: a peer learning an
// edge second-hand flushes too, and a miss for a destination the failure
// cut off counts as a blackhole, not plain unroutability.
func TestPeerLearnAndBlackhole(t *testing.T) {
	g, err := Build(Spec{Kind: KindLine, Switches: 2})
	if err != nil {
		t.Fatal(err)
	}
	pf := NewPathForwarder(g, InstallHopByHop, controller.ForwarderConfig{})
	pf.RegisterConn(1, 0)

	var notified []EdgeKey
	pf.SetPeerNotify(func(e EdgeKey, down bool) { notified = append(notified, e) })

	// Second-hand learn (as the fabric delivers a peer's notification).
	dirs := pf.LearnEdge(MakeEdgeKey(0, 1), true)
	if len(dirs) != 1 {
		t.Fatalf("peer learn flushed %d switches, want 1", len(dirs))
	}
	if len(notified) != 0 {
		t.Fatal("second-hand learn must not re-notify peers")
	}

	// Host 1 is behind the cut edge: miss on switch 0 is a blackhole drop.
	pi := &openflow.PacketIn{BufferID: 7, InPort: 1, Data: frameTo(t, g, 1)}
	replies, err := pf.HandlePacketInConn(1, pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != 1 {
		t.Fatalf("blackhole miss got %d replies, want the buffer-freeing drop", len(replies))
	}
	po, ok := replies[0].Msg.(*openflow.PacketOut)
	if !ok || po.BufferID != 7 || len(po.Actions) != 0 {
		t.Fatalf("drop reply = %+v", replies[0].Msg)
	}
	if _, bh := pf.RecoveryStats(); bh != 1 {
		t.Fatalf("blackholes = %d", bh)
	}
	// A first-hand port_status does notify peers.
	if _, err := pf.HandlePortStatusConn(1, portStatusFor(t, g, 0, 1, false)); err != nil {
		t.Fatal(err)
	}
	if len(notified) != 1 || notified[0] != MakeEdgeKey(0, 1) {
		t.Fatalf("peer notifications = %v", notified)
	}
}
