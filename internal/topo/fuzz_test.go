package topo

import "testing"

// FuzzParseTopo throws arbitrary strings at the spec parser. Anything that
// parses must round-trip through String, and small specs must build into a
// structurally sound graph — ParseSpec's bounds are the only thing standing
// between a CLI flag and an unbounded allocation.
func FuzzParseTopo(f *testing.F) {
	for _, s := range []string{
		"line:1",
		"line:4",
		"line:switches=9",
		"leafspine:leaves=8,spines=4",
		"leafspine:leaves=2,spines=2,hosts=6",
		"fattree:pods=2,leaves=2,spines=2,cores=2",
		"fattree:pods=4,leaves=4,spines=4,cores=16,hosts=8",
		"random:nodes=12,extra=4,seed=7",
		"random:nodes=1,extra=0,seed=0,hosts=2",
		"line:",
		"mesh:nodes=4",
		"random:nodes=999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseSpec(s)
		if err != nil {
			return
		}
		reparsed, err := ParseSpec(spec.String())
		if err != nil {
			t.Fatalf("String() of parsed %q does not re-parse: %v", s, err)
		}
		if reparsed != spec {
			t.Fatalf("round trip of %q: %+v vs %+v", s, spec, reparsed)
		}
		if spec.NumSwitches() > 512 {
			return // parseable and bounded; building huge fabrics is the sweep's job
		}
		g, err := Build(spec)
		if err != nil {
			t.Fatalf("validated spec %q does not build: %v", s, err)
		}
		for i := 0; i < g.NumSwitches(); i++ {
			for p := 1; p <= g.NumPorts(i); p++ {
				peer, ok := g.PeerOf(i, uint16(p))
				if !ok {
					t.Fatalf("%q: sw%d port %d missing", s, i, p)
				}
				if peer.Switch >= 0 {
					back, ok := g.PeerOf(peer.Switch, peer.Port)
					if !ok || back.Switch != i || int(back.Port) != p {
						t.Fatalf("%q: asymmetric edge sw%d:%d", s, i, p)
					}
				}
			}
		}
		for src := range g.Hosts() {
			for dst := range g.Hosts() {
				if src == dst {
					continue
				}
				if _, err := g.HostPath(src, dst); err != nil {
					t.Fatalf("%q: HostPath(%d, %d): %v", s, src, dst, err)
				}
			}
		}
	})
}
