// Package topo builds multi-switch fabric topologies for the testbed: a
// line of switches (the oracle case the single-node platform generalizes
// to), two- and three-tier leaf-spine fabrics, and seeded random graphs.
//
// A Graph is a static wiring plan: switches with numbered ports, the edges
// between them, and the hosts hanging off edge switches. Routing is computed
// up front — one BFS shortest-path tree per host, iterated in port order, so
// routes are deterministic, loop-free, and independent of map iteration
// order. The fabric testbed (internal/testbed.NewFabric) instantiates the
// plan as simulated switches and netem links; the PathForwarder controller
// application answers per-hop misses from the same routing tables.
package topo

import (
	"fmt"
	"math/rand"
	"net/netip"
)

// Kind selects the topology family.
type Kind uint8

// Topology families.
const (
	// KindLine is Host — SW1 — SW2 — … — SWn — Host: every flow crosses
	// all n switches, the worst-case hop amplification.
	KindLine Kind = iota + 1
	// KindLeafSpine is the two-tier Clos fabric: every leaf connects to
	// every spine, hosts hang off leaves. Any leaf-to-leaf path is two
	// hops through one spine.
	KindLeafSpine
	// KindFatTree is the three-tier fabric: pods of leaves and spines,
	// cores connecting all spines. Cross-pod paths are four switch hops
	// (leaf → spine → core → spine → leaf).
	KindFatTree
	// KindRandom is a seeded connected random graph: a random spanning
	// tree plus extra edges, hosts on two distinct switches.
	KindRandom
)

func (k Kind) String() string {
	switch k {
	case KindLine:
		return "line"
	case KindLeafSpine:
		return "leafspine"
	case KindFatTree:
		return "fattree"
	case KindRandom:
		return "random"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MaxSwitches bounds how large a spec the builder accepts. It exists so the
// spec parser can be fuzzed (and specs taken from CLI flags) without letting
// a hostile string allocate an unbounded fabric.
const MaxSwitches = 65536

// Spec describes one topology. Build validates it and produces the Graph.
type Spec struct {
	Kind Kind

	// Switches is the line length (KindLine).
	Switches int
	// Leaves/Spines shape the two-tier fabric (KindLeafSpine).
	Leaves, Spines int
	// Pods, LeavesPerPod, SpinesPerPod and Cores shape the three-tier
	// fabric (KindFatTree).
	Pods, LeavesPerPod, SpinesPerPod, Cores int
	// Nodes and ExtraEdges shape the random graph (KindRandom): a random
	// spanning tree over Nodes switches plus ExtraEdges additional edges.
	Nodes, ExtraEdges int
	// Seed drives the random graph's RNG (and nothing else).
	Seed int64
	// Hosts is the number of hosts attached to the fabric (default 2; a
	// line always has exactly one host per end). Hosts are spread
	// round-robin across the family's edge switches.
	Hosts int
}

// NumSwitches reports the switch count the spec builds, before validation.
func (s Spec) NumSwitches() int {
	switch s.Kind {
	case KindLine:
		return s.Switches
	case KindLeafSpine:
		return s.Leaves + s.Spines
	case KindFatTree:
		return s.Pods*(s.LeavesPerPod+s.SpinesPerPod) + s.Cores
	case KindRandom:
		return s.Nodes
	}
	return 0
}

func (s Spec) validate() error {
	switch s.Kind {
	case KindLine:
		if s.Switches < 1 {
			return fmt.Errorf("topo: line needs at least 1 switch, got %d", s.Switches)
		}
		if s.Hosts != 0 && s.Hosts != 2 {
			return fmt.Errorf("topo: a line has exactly 2 hosts, got %d", s.Hosts)
		}
	case KindLeafSpine:
		if s.Leaves < 1 || s.Spines < 1 {
			return fmt.Errorf("topo: leafspine needs leaves and spines ≥ 1, got %d/%d", s.Leaves, s.Spines)
		}
	case KindFatTree:
		if s.Pods < 1 || s.LeavesPerPod < 1 || s.SpinesPerPod < 1 || s.Cores < 1 {
			return fmt.Errorf("topo: fattree needs pods, leaves, spines and cores ≥ 1, got %d/%d/%d/%d",
				s.Pods, s.LeavesPerPod, s.SpinesPerPod, s.Cores)
		}
	case KindRandom:
		if s.Nodes < 1 {
			return fmt.Errorf("topo: random graph needs nodes ≥ 1, got %d", s.Nodes)
		}
		if s.ExtraEdges < 0 {
			return fmt.Errorf("topo: negative extra edges %d", s.ExtraEdges)
		}
		if s.ExtraEdges > 4*s.Nodes {
			return fmt.Errorf("topo: extra edges %d exceed 4× node count", s.ExtraEdges)
		}
	default:
		return fmt.Errorf("topo: unknown kind %d", uint8(s.Kind))
	}
	if n := s.NumSwitches(); n > MaxSwitches {
		return fmt.Errorf("topo: %d switches exceed the %d limit", n, MaxSwitches)
	}
	if s.Hosts < 0 {
		return fmt.Errorf("topo: negative host count %d", s.Hosts)
	}
	if s.Hosts > MaxSwitches {
		return fmt.Errorf("topo: %d hosts exceed the %d limit", s.Hosts, MaxSwitches)
	}
	return nil
}

// Peer is what one switch port connects to: either a neighbouring switch
// (Switch ≥ 0, Port its port on the shared edge) or a host (Host ≥ 0).
type Peer struct {
	Switch int    // neighbour switch index, -1 for a host port
	Port   uint16 // neighbour's port on this edge (switch peers only)
	Host   int    // host index, -1 for a switch port
}

// Host is one end station: its attachment switch and port, and the address
// the fabric routes to it.
type Host struct {
	Switch int
	Port   uint16
	Addr   netip.Addr
}

// Graph is a built topology with precomputed shortest-path routing.
type Graph struct {
	Spec Spec

	// adj[i][p-1] is switch i's port p. Ports are 1-based and dense.
	adj [][]Peer
	// hosts are the attached end stations.
	hosts []Host
	// routes[h][i] is switch i's next-hop port toward host h (0 when i is
	// unreachable from h's attachment switch — impossible on a validated
	// connected graph).
	routes [][]uint16
	// addrIndex maps a host address back to its index.
	addrIndex map[netip.Addr]int
}

// hostAddr assigns host i a stable address under 10.0.0.0/16, disjoint from
// the 10.1.0.0/16 block pktgen forges sources from. Host 0 is 10.0.0.2, the
// paper platform's Host2 address, so single-switch fabrics replay legacy
// schedules unchanged.
func hostAddr(i int) netip.Addr {
	n := i + 2 // skip .0 and .1 in the first block
	return netip.AddrFrom4([4]byte{10, 0, byte(n >> 8), byte(n)})
}

// Build validates the spec and constructs the graph, including routing.
func Build(spec Spec) (*Graph, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	g := &Graph{Spec: spec}
	switch spec.Kind {
	case KindLine:
		g.buildLine(spec.Switches)
	case KindLeafSpine:
		g.buildLeafSpine(spec.Leaves, spec.Spines, defaultHosts(spec.Hosts))
	case KindFatTree:
		g.buildFatTree(spec.Pods, spec.LeavesPerPod, spec.SpinesPerPod, spec.Cores, defaultHosts(spec.Hosts))
	case KindRandom:
		g.buildRandom(spec.Nodes, spec.ExtraEdges, spec.Seed, defaultHosts(spec.Hosts))
	}
	g.addrIndex = make(map[netip.Addr]int, len(g.hosts))
	for i, h := range g.hosts {
		g.addrIndex[h.Addr] = i
	}
	if err := g.checkConnected(); err != nil {
		return nil, err
	}
	g.computeRoutes()
	return g, nil
}

func defaultHosts(h int) int {
	if h == 0 {
		return 2
	}
	return h
}

// addEdge wires a duplex edge between switches a and b, appending one port
// to each. Construction order defines port numbers, so builders add edges in
// a fixed, documented order.
func (g *Graph) addEdge(a, b int) {
	pa := uint16(len(g.adj[a]) + 1)
	pb := uint16(len(g.adj[b]) + 1)
	g.adj[a] = append(g.adj[a], Peer{Switch: b, Port: pb, Host: -1})
	g.adj[b] = append(g.adj[b], Peer{Switch: a, Port: pa, Host: -1})
}

// addHost attaches the next host to switch sw on a fresh port.
func (g *Graph) addHost(sw int) {
	id := len(g.hosts)
	port := uint16(len(g.adj[sw]) + 1)
	g.adj[sw] = append(g.adj[sw], Peer{Switch: -1, Host: id})
	g.hosts = append(g.hosts, Host{Switch: sw, Port: port, Addr: hostAddr(id)})
}

// buildLine wires Host0 — SW0 — … — SW(n-1) — Host1. Port conventions match
// the legacy LineTestbed: port 1 faces left (or Host0), port 2 faces right
// (or Host1), so a 1-switch line is exactly the paper's Fig. 1 platform.
func (g *Graph) buildLine(n int) {
	g.adj = make([][]Peer, n)
	g.addHost(0) // SW0 port 1 = Host0
	for i := 0; i+1 < n; i++ {
		g.addEdge(i, i+1) // SWi port 2 ↔ SW(i+1) port 1
	}
	g.addHost(n - 1) // last switch's next port (2) = Host1
}

// buildLeafSpine wires leaves 0..L-1 and spines L..L+S-1 as a complete
// bipartite fabric: leaf l port s+1 ↔ spine s port l+1. Hosts go round-robin
// across leaves on ports S+1, S+2, ….
func (g *Graph) buildLeafSpine(L, S, hosts int) {
	g.adj = make([][]Peer, L+S)
	for l := 0; l < L; l++ {
		for s := 0; s < S; s++ {
			g.addEdge(l, L+s)
		}
	}
	for h := 0; h < hosts; h++ {
		g.addHost(h % L)
	}
}

// buildFatTree wires pods of leaves and spines plus a core tier: within pod
// p, every leaf connects to every pod spine; every pod spine connects to
// every core. Hosts go round-robin across all leaves, spread across pods.
func (g *Graph) buildFatTree(P, Lp, Sp, C, hosts int) {
	leaves := P * Lp
	spines := P * Sp
	g.adj = make([][]Peer, leaves+spines+C)
	leaf := func(p, l int) int { return p*Lp + l }
	spine := func(p, s int) int { return leaves + p*Sp + s }
	core := func(c int) int { return leaves + spines + c }
	for p := 0; p < P; p++ {
		for l := 0; l < Lp; l++ {
			for s := 0; s < Sp; s++ {
				g.addEdge(leaf(p, l), spine(p, s))
			}
		}
	}
	for p := 0; p < P; p++ {
		for s := 0; s < Sp; s++ {
			for c := 0; c < C; c++ {
				g.addEdge(spine(p, s), core(c))
			}
		}
	}
	for h := 0; h < hosts; h++ {
		// Spread consecutive hosts across pods first, then across a pod's
		// leaves, so the default two hosts land in different pods and the
		// default path exercises all three tiers.
		p := h % P
		l := (h / P) % Lp
		g.addHost(leaf(p, l))
	}
}

// buildRandom wires a seeded random spanning tree over n switches plus
// extra edges (skipping duplicates and self-loops best-effort). Hosts go on
// evenly spaced switches.
func (g *Graph) buildRandom(n, extra int, seed int64, hosts int) {
	g.adj = make([][]Peer, n)
	rng := rand.New(rand.NewSource(seed))
	have := make(map[[2]int]bool, n+extra)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		g.addEdge(u, v)
		have[key(u, v)] = true
	}
	for e := 0; e < extra && n > 2; e++ {
		for attempt := 0; attempt < 8; attempt++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b || have[key(a, b)] {
				continue
			}
			g.addEdge(a, b)
			have[key(a, b)] = true
			break
		}
	}
	for h := 0; h < hosts; h++ {
		sw := 0
		if hosts > 1 {
			sw = h * (n - 1) / (hosts - 1)
		}
		g.addHost(sw)
	}
}

// checkConnected verifies every switch is reachable from switch 0.
func (g *Graph) checkConnected() error {
	n := len(g.adj)
	if n == 0 {
		return fmt.Errorf("topo: empty graph")
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, p := range g.adj[u] {
			if p.Switch >= 0 && !seen[p.Switch] {
				seen[p.Switch] = true
				count++
				queue = append(queue, p.Switch)
			}
		}
	}
	if count != n {
		return fmt.Errorf("topo: graph not connected: reached %d of %d switches", count, n)
	}
	return nil
}

// EdgeKey identifies an undirected switch-switch edge in canonical
// (low, high) order; build one with MakeEdgeKey so lookups are
// direction-independent.
type EdgeKey struct {
	A, B int
}

// MakeEdgeKey canonicalizes the endpoint order.
func MakeEdgeKey(a, b int) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// EdgePorts reports the port numbers on either end of the a↔b edge
// (pa on switch a, pb on switch b). ok is false when no such edge exists.
// Builders never wire parallel edges, so the pair is unique.
func (g *Graph) EdgePorts(a, b int) (pa, pb uint16, ok bool) {
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		return 0, 0, false
	}
	for i, p := range g.adj[a] {
		if p.Switch == b {
			return uint16(i + 1), p.Port, true
		}
	}
	return 0, 0, false
}

// computeRoutes fills the pristine (no failed edges) routing table.
func (g *Graph) computeRoutes() {
	g.routes = g.routesExcluding(nil)
}

// routesExcluding runs one BFS per host from its attachment switch over the
// graph minus the failed edges, recording at every switch the port leading
// one hop closer to the host (0 where the host is unreachable). Neighbour
// iteration is in port order, so equal-length paths tie-break the same way
// on every run — and the masked table agrees with a fresh Build of the
// reduced topology wherever both have routes.
func (g *Graph) routesExcluding(failed map[EdgeKey]bool) [][]uint16 {
	n := len(g.adj)
	routes := make([][]uint16, len(g.hosts))
	for h, host := range g.hosts {
		next := make([]uint16, n)
		next[host.Switch] = host.Port
		seen := make([]bool, n)
		seen[host.Switch] = true
		queue := []int{host.Switch}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, p := range g.adj[u] {
				if p.Switch < 0 || seen[p.Switch] {
					continue
				}
				if failed[MakeEdgeKey(u, p.Switch)] {
					continue
				}
				seen[p.Switch] = true
				// From the neighbour, the route toward the host is the port
				// back across this edge to u.
				next[p.Switch] = p.Port
				queue = append(queue, p.Switch)
			}
		}
		routes[h] = next
	}
	return routes
}

// RouteTable is one next-hop table over the graph: the pristine table, or a
// failure-masked one from RoutesExcluding. Tables are immutable snapshots —
// recovery swaps whole tables rather than patching entries.
type RouteTable struct {
	g      *Graph
	routes [][]uint16 // [host][switch] next-hop port, 0 = unreachable
}

// Routes returns the pristine routing table (shared, not copied).
func (g *Graph) Routes() *RouteTable {
	return &RouteTable{g: g, routes: g.routes}
}

// RoutesExcluding computes the routing table of the graph with the failed
// edges removed. Switches cut off from a host get no route toward it
// (NextHopPort reports ok=false), which the controller surfaces as a
// blackhole rather than a stale path.
func (g *Graph) RoutesExcluding(failed map[EdgeKey]bool) *RouteTable {
	if len(failed) == 0 {
		return g.Routes()
	}
	return &RouteTable{g: g, routes: g.routesExcluding(failed)}
}

// NextHopPort reports switch sw's port one hop closer to host h under this
// table. On the host's attachment switch it is the host port itself.
func (t *RouteTable) NextHopPort(sw, h int) (uint16, bool) {
	if h < 0 || h >= len(t.routes) || sw < 0 || sw >= len(t.g.adj) {
		return 0, false
	}
	p := t.routes[h][sw]
	return p, p != 0
}

// PathFrom walks this table's path from switch sw (entered on port entry)
// toward host dst, returning every hop in order. Each table is one BFS tree,
// so the walk terminates in at most NumSwitches steps.
func (t *RouteTable) PathFrom(sw int, entry uint16, dst int) ([]Hop, error) {
	var hops []Hop
	cur, curEntry := sw, entry
	for range t.g.adj { // bounded by the switch count: BFS routes are loop-free
		out, ok := t.NextHopPort(cur, dst)
		if !ok {
			return nil, fmt.Errorf("topo: no route from switch %d to host %d", cur, dst)
		}
		hops = append(hops, Hop{Switch: cur, Entry: curEntry, Exit: out})
		peer, ok := t.g.PeerOf(cur, out)
		if !ok {
			return nil, fmt.Errorf("topo: switch %d has no port %d", cur, out)
		}
		if peer.Host >= 0 {
			if peer.Host != dst {
				return nil, fmt.Errorf("topo: route from switch %d leads to host %d, want %d", sw, peer.Host, dst)
			}
			return hops, nil
		}
		cur, curEntry = peer.Switch, peer.Port
	}
	return nil, fmt.Errorf("topo: routing loop walking from switch %d to host %d", sw, dst)
}

// NumSwitches reports the switch count.
func (g *Graph) NumSwitches() int { return len(g.adj) }

// NumPorts reports switch i's port count (ports are 1..NumPorts).
func (g *Graph) NumPorts(i int) int { return len(g.adj[i]) }

// PeerOf reports what switch i's port p connects to.
func (g *Graph) PeerOf(i int, p uint16) (Peer, bool) {
	if int(p) < 1 || int(p) > len(g.adj[i]) {
		return Peer{}, false
	}
	return g.adj[i][p-1], true
}

// Hosts reports the attached hosts.
func (g *Graph) Hosts() []Host { return g.hosts }

// HostByAddr maps a destination address to its host index.
func (g *Graph) HostByAddr(a netip.Addr) (int, bool) {
	i, ok := g.addrIndex[a]
	return i, ok
}

// NextHopPort reports switch sw's port one hop closer to host h. On the
// host's attachment switch it is the host port itself.
func (g *Graph) NextHopPort(sw, h int) (uint16, bool) {
	if h < 0 || h >= len(g.routes) || sw < 0 || sw >= len(g.adj) {
		return 0, false
	}
	p := g.routes[h][sw]
	return p, p != 0
}

// Hop is one switch on a routed path: the switch, the port the packet
// enters on, and the port it exits toward the destination.
type Hop struct {
	Switch int
	Entry  uint16
	Exit   uint16
}

// PathFrom walks the routed path from switch sw (entered on port entry)
// toward host dst, returning every hop in order. The walk follows the BFS
// tree, so it terminates in at most NumSwitches steps on a valid graph.
func (g *Graph) PathFrom(sw int, entry uint16, dst int) ([]Hop, error) {
	return g.Routes().PathFrom(sw, entry, dst)
}

// HostPath is PathFrom starting at a source host's attachment switch: the
// switch chain a packet from src to dst traverses.
func (g *Graph) HostPath(src, dst int) ([]Hop, error) {
	if src < 0 || src >= len(g.hosts) || dst < 0 || dst >= len(g.hosts) {
		return nil, fmt.Errorf("topo: host index out of range (%d, %d)", src, dst)
	}
	h := g.hosts[src]
	return g.PathFrom(h.Switch, h.Port, dst)
}
