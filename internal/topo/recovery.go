package topo

import (
	"fmt"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
)

// Failure recovery for the PathForwarder (DESIGN.md §16). The protocol is
// deliberately table-swap shaped: a learned edge transition replaces the
// whole routing snapshot with Graph.RoutesExcluding over the current failed
// set and flushes every mastered switch, so the rules in the fabric are
// always a subset of one BFS tree's next hops — the property that makes
// routing loops impossible even while shards converge at different times.

// NeighborAt reports which switch is on the far side of switch sw's port —
// ok is false for host ports and out-of-range ports, whose state changes
// do not affect switch-switch routing.
func (g *Graph) NeighborAt(sw int, port uint16) (int, bool) {
	if sw < 0 || sw >= len(g.adj) {
		return 0, false
	}
	p, ok := g.PeerOf(sw, port)
	if !ok || p.Switch < 0 {
		return 0, false
	}
	return p.Switch, true
}

var _ controller.PortStatusApp = (*PathForwarder)(nil)

// HandlePortStatusConn implements controller.PortStatusApp: detection. A
// switch announced a port change; map the port to the fabric edge behind it
// and learn the transition. Host-port flaps don't touch switch-switch
// routing and are ignored here (the fabric accounts their loss at the
// edge). The shard also tells its peers via the wired notify hook — a
// port_status reaches only the failed link's endpoints' masters, but every
// shard owning a hop of an affected path must stop using it.
func (p *PathForwarder) HandlePortStatusConn(conn int, ps *openflow.PortStatus) ([]controller.Directed, error) {
	sw, ok := p.connSwitch[conn]
	if !ok {
		return nil, fmt.Errorf("topo: port_status on unregistered connection %d", conn)
	}
	nb, ok := p.g.NeighborAt(sw, ps.Desc.PortNo)
	if !ok {
		return nil, nil
	}
	down := ps.Desc.State&openflow.PortStateLinkDown != 0
	e := MakeEdgeKey(sw, nb)
	dirs := p.LearnEdge(e, down)
	if dirs != nil && p.peerNotify != nil {
		p.peerNotify(e, down)
	}
	return dirs, nil
}

// LearnEdge records one edge transition: the routing table is swapped for a
// fresh failure-masked snapshot and, on any actual state change, every
// switch this shard masters is flushed (one wildcard-all non-strict delete
// each, in registration order) so no rule computed on the old table
// survives. Returns nil when the shard already knew — peer notifications
// and the local port_status race benignly. Exported because peers learn
// through it too: the fabric delivers another shard's notification here.
func (p *PathForwarder) LearnEdge(e EdgeKey, down bool) []controller.Directed {
	if down == p.failedEdges[e] {
		return nil
	}
	if down {
		if p.failedEdges == nil {
			p.failedEdges = make(map[EdgeKey]bool)
		}
		p.failedEdges[e] = true
	} else {
		delete(p.failedEdges, e)
	}
	old := p.table
	p.table = p.g.RoutesExcluding(p.failedEdges)
	p.reroutedPaths += countChangedHops(old, p.table)

	// Flush on every transition, up included: rules from the old tree mixed
	// with new-tree installs are not provably loop-free, an empty table plus
	// re-misses is.
	if p.tm != nil {
		// De-aggregation: the flush below removes aggregates along with the
		// per-flow rules, so the tracker forgets them too and per-flow rules
		// reinstall against the new routing table before any re-aggregation.
		p.tm.ResetAll()
	}
	dirs := make([]controller.Directed, 0, len(p.masteredOrder))
	flushAll := openflow.MatchAll()
	for _, sw := range p.masteredOrder {
		dirs = append(dirs, controller.Directed{
			Conn: p.switchConn[sw],
			Msg: &openflow.FlowMod{
				Match:    flushAll,
				Command:  openflow.FlowModDelete,
				BufferID: openflow.NoBuffer,
				OutPort:  openflow.PortNone,
			},
		})
	}
	return dirs
}

// SetPeerNotify wires the cross-shard topology channel: fn is called once
// per first-hand learned transition with the edge and its new state. The
// fabric implements fn as a delayed delivery of LearnEdge on every other
// shard, modeling the inter-controller sync link.
func (p *PathForwarder) SetPeerNotify(fn func(e EdgeKey, down bool)) { p.peerNotify = fn }

// FailedEdges reports how many edges the shard currently believes are down.
func (p *PathForwarder) FailedEdges() int { return len(p.failedEdges) }

// RecoveryStats reports reconvergence counters: (switch, host) next hops
// changed by table swaps, and misses for destinations a failure cut off.
func (p *PathForwarder) RecoveryStats() (reroutedPaths, blackholes uint64) {
	return p.reroutedPaths, p.blackholes
}

// countChangedHops counts (switch, host) pairs whose next-hop port differs
// between two snapshots — the size of the rerouting a swap caused.
func countChangedHops(old, new *RouteTable) uint64 {
	var n uint64
	for h := range old.routes {
		for sw := range old.routes[h] {
			if old.routes[h][sw] != new.routes[h][sw] {
				n++
			}
		}
	}
	return n
}
