package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the textual topology spec format used by benchrunner
// flags, experiment options and test corpora:
//
//	line:4
//	line:switches=4
//	leafspine:leaves=8,spines=4
//	leafspine:leaves=8,spines=4,hosts=6
//	fattree:pods=2,leaves=2,spines=2,cores=2
//	random:nodes=12,extra=4,seed=7
//
// The kind comes before the colon; parameters are comma-separated key=value
// pairs. A line accepts the bare switch count as shorthand. Parsed specs are
// validated with the same bounds Build enforces, so a parseable spec always
// builds (MaxSwitches caps hostile sizes).
func ParseSpec(s string) (Spec, error) {
	kindStr, rest, found := strings.Cut(s, ":")
	if !found {
		return Spec{}, fmt.Errorf("topo: spec %q: want kind:params", s)
	}
	var spec Spec
	switch kindStr {
	case "line":
		spec.Kind = KindLine
	case "leafspine":
		spec.Kind = KindLeafSpine
	case "fattree":
		spec.Kind = KindFatTree
	case "random":
		spec.Kind = KindRandom
	default:
		return Spec{}, fmt.Errorf("topo: unknown topology kind %q", kindStr)
	}
	if rest == "" {
		return Spec{}, fmt.Errorf("topo: spec %q has no parameters", s)
	}
	for _, field := range strings.Split(rest, ",") {
		key, valStr, found := strings.Cut(field, "=")
		if !found {
			if spec.Kind == KindLine {
				// Bare-count shorthand: line:4.
				key, valStr = "switches", field
			} else {
				return Spec{}, fmt.Errorf("topo: spec %q: field %q is not key=value", s, field)
			}
		}
		val, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("topo: spec %q: field %q: %v", s, field, err)
		}
		if key != "seed" && (val < 0 || val > MaxSwitches) {
			return Spec{}, fmt.Errorf("topo: spec %q: %s=%d out of range [0, %d]", s, key, val, MaxSwitches)
		}
		n := int(val)
		switch {
		case key == "switches" && spec.Kind == KindLine:
			spec.Switches = n
		case key == "leaves" && spec.Kind == KindLeafSpine:
			spec.Leaves = n
		case key == "spines" && spec.Kind == KindLeafSpine:
			spec.Spines = n
		case key == "pods" && spec.Kind == KindFatTree:
			spec.Pods = n
		case key == "leaves" && spec.Kind == KindFatTree:
			spec.LeavesPerPod = n
		case key == "spines" && spec.Kind == KindFatTree:
			spec.SpinesPerPod = n
		case key == "cores" && spec.Kind == KindFatTree:
			spec.Cores = n
		case key == "nodes" && spec.Kind == KindRandom:
			spec.Nodes = n
		case key == "extra" && spec.Kind == KindRandom:
			spec.ExtraEdges = n
		case key == "seed" && spec.Kind == KindRandom:
			spec.Seed = val
		case key == "hosts":
			spec.Hosts = n
		default:
			return Spec{}, fmt.Errorf("topo: spec %q: unknown key %q for kind %s", s, key, spec.Kind)
		}
	}
	if err := spec.validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// String renders the spec in the ParseSpec format (a round-trip identity
// for specs that came from ParseSpec).
func (s Spec) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:", s.Kind)
	switch s.Kind {
	case KindLine:
		fmt.Fprintf(&b, "%d", s.Switches)
		return b.String() // a line's host count is fixed; omit it
	case KindLeafSpine:
		fmt.Fprintf(&b, "leaves=%d,spines=%d", s.Leaves, s.Spines)
	case KindFatTree:
		fmt.Fprintf(&b, "pods=%d,leaves=%d,spines=%d,cores=%d", s.Pods, s.LeavesPerPod, s.SpinesPerPod, s.Cores)
	case KindRandom:
		fmt.Fprintf(&b, "nodes=%d,extra=%d,seed=%d", s.Nodes, s.ExtraEdges, s.Seed)
	}
	if s.Hosts != 0 {
		fmt.Fprintf(&b, ",hosts=%d", s.Hosts)
	}
	return b.String()
}
