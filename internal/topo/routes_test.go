package topo

import (
	"testing"
)

func TestMakeEdgeKey(t *testing.T) {
	if MakeEdgeKey(3, 1) != (EdgeKey{A: 1, B: 3}) {
		t.Fatalf("MakeEdgeKey(3,1) = %+v", MakeEdgeKey(3, 1))
	}
	if MakeEdgeKey(1, 3) != MakeEdgeKey(3, 1) {
		t.Fatal("MakeEdgeKey is direction-dependent")
	}
}

func TestEdgePorts(t *testing.T) {
	g := build(t, "line:3")
	pa, pb, ok := g.EdgePorts(0, 1)
	if !ok {
		t.Fatal("EdgePorts(0,1) not found")
	}
	peer, _ := g.PeerOf(0, pa)
	if peer.Switch != 1 || peer.Port != pb {
		t.Fatalf("EdgePorts(0,1) = (%d,%d) inconsistent with PeerOf: %+v", pa, pb, peer)
	}
	// Reversed endpoints swap the ports.
	qb, qa, ok := g.EdgePorts(1, 0)
	if !ok || qa != pa || qb != pb {
		t.Fatalf("EdgePorts(1,0) = (%d,%d,%v), want (%d,%d)", qb, qa, ok, pb, pa)
	}
	if _, _, ok := g.EdgePorts(0, 2); ok {
		t.Fatal("EdgePorts(0,2): no such edge, got ok")
	}
	if _, _, ok := g.EdgePorts(-1, 1); ok {
		t.Fatal("EdgePorts(-1,1): out of range, got ok")
	}
}

// switchEdges enumerates every undirected switch-switch edge once.
func switchEdges(g *Graph) []EdgeKey {
	seen := make(map[EdgeKey]bool)
	var edges []EdgeKey
	for i := 0; i < g.NumSwitches(); i++ {
		for p := 1; p <= g.NumPorts(i); p++ {
			peer, _ := g.PeerOf(i, uint16(p))
			if peer.Switch < 0 {
				continue
			}
			k := MakeEdgeKey(i, peer.Switch)
			if !seen[k] {
				seen[k] = true
				edges = append(edges, k)
			}
		}
	}
	return edges
}

// maskedDistances is the test's independent oracle: plain BFS hop counts
// from each host's attachment switch over the graph minus failed, sharing
// no code with routesExcluding beyond the adjacency accessors.
func maskedDistances(g *Graph, h int, failed map[EdgeKey]bool) []int {
	dist := make([]int, g.NumSwitches())
	for i := range dist {
		dist[i] = -1
	}
	start := g.Hosts()[h].Switch
	dist[start] = 0
	queue := []int{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for p := 1; p <= g.NumPorts(u); p++ {
			peer, _ := g.PeerOf(u, uint16(p))
			if peer.Switch < 0 || dist[peer.Switch] >= 0 || failed[MakeEdgeKey(u, peer.Switch)] {
				continue
			}
			dist[peer.Switch] = dist[u] + 1
			queue = append(queue, peer.Switch)
		}
	}
	return dist
}

// TestRoutesExcludingOracle masks every single edge of several topologies
// and checks the masked table against the fresh BFS oracle: a switch has a
// route exactly when the oracle reaches it, every next hop moves strictly
// closer to the destination, and no route crosses the failed edge.
func TestRoutesExcludingOracle(t *testing.T) {
	for _, spec := range []string{
		"line:4",
		"leafspine:leaves=3,spines=2",
		"fattree:pods=2,leaves=2,spines=2,cores=2",
		"random:nodes=8,extra=4,seed=7,hosts=3",
	} {
		t.Run(spec, func(t *testing.T) {
			g := build(t, spec)
			for _, edge := range switchEdges(g) {
				failed := map[EdgeKey]bool{edge: true}
				rt := g.RoutesExcluding(failed)
				for h := range g.Hosts() {
					dist := maskedDistances(g, h, failed)
					for sw := 0; sw < g.NumSwitches(); sw++ {
						port, ok := rt.NextHopPort(sw, h)
						if (dist[sw] >= 0) != ok {
							t.Fatalf("edge %v down, host %d, sw %d: route ok=%v but oracle dist=%d",
								edge, h, sw, ok, dist[sw])
						}
						if !ok {
							continue
						}
						peer, pok := g.PeerOf(sw, port)
						if !pok {
							t.Fatalf("edge %v down: sw %d routes via missing port %d", edge, sw, port)
						}
						if peer.Host >= 0 {
							if peer.Host != h || dist[sw] != 0 {
								t.Fatalf("edge %v down: sw %d exits to host %d at dist %d", edge, sw, peer.Host, dist[sw])
							}
							continue
						}
						if MakeEdgeKey(sw, peer.Switch) == edge {
							t.Fatalf("edge %v down but sw %d still routes across it", edge, sw)
						}
						if dist[peer.Switch] != dist[sw]-1 {
							t.Fatalf("edge %v down: sw %d (dist %d) routes to sw %d (dist %d)",
								edge, sw, dist[sw], peer.Switch, dist[peer.Switch])
						}
					}
					// Every reachable switch walks a terminating path that
					// avoids the failed edge.
					for sw := 0; sw < g.NumSwitches(); sw++ {
						if dist[sw] < 0 {
							continue
						}
						hops, err := rt.PathFrom(sw, 0, h)
						if err != nil {
							t.Fatalf("edge %v down: PathFrom(%d, %d): %v", edge, sw, h, err)
						}
						if len(hops) != dist[sw]+1 {
							t.Fatalf("edge %v down: path %d->%d has %d hops, oracle wants %d",
								edge, sw, h, len(hops), dist[sw]+1)
						}
					}
				}
			}
		})
	}
}

// TestRoutesExcludingPristine checks the no-failure fast path shares the
// pristine table and agrees with Graph.NextHopPort everywhere.
func TestRoutesExcludingPristine(t *testing.T) {
	g := build(t, "leafspine:leaves=2,spines=2")
	for _, rt := range []*RouteTable{g.Routes(), g.RoutesExcluding(nil), g.RoutesExcluding(map[EdgeKey]bool{})} {
		for h := range g.Hosts() {
			for sw := 0; sw < g.NumSwitches(); sw++ {
				wp, wok := g.NextHopPort(sw, h)
				gp, gok := rt.NextHopPort(sw, h)
				if wp != gp || wok != gok {
					t.Fatalf("pristine table diverges at (sw %d, host %d): (%d,%v) vs (%d,%v)",
						sw, h, wp, wok, gp, gok)
				}
			}
		}
	}
}

// TestRoutesExcludingDisconnect pins the unreachable case: cutting a line
// topology strands every switch on the far side.
func TestRoutesExcludingDisconnect(t *testing.T) {
	g := build(t, "line:2") // host0 - sw0 - sw1 - host1
	rt := g.RoutesExcluding(map[EdgeKey]bool{MakeEdgeKey(0, 1): true})
	if _, ok := rt.NextHopPort(0, 1); ok {
		t.Fatal("sw0 still routes to host1 across the failed edge")
	}
	if _, ok := rt.NextHopPort(1, 1); !ok {
		t.Fatal("sw1 lost its direct host attachment")
	}
	if _, err := rt.PathFrom(0, 1, 1); err == nil {
		t.Fatal("PathFrom across the cut did not error")
	}
}
