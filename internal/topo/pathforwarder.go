package topo

import (
	"fmt"
	"net/netip"

	"sdnbuffer/internal/controller"
	"sdnbuffer/internal/openflow"
	"sdnbuffer/internal/packet"
	"sdnbuffer/internal/tablemgmt"
)

// InstallMode selects how the controller answers a path miss.
type InstallMode uint8

const (
	// InstallHopByHop answers each switch's miss with that switch's rule
	// only — every hop costs one full packet_in round trip (the chained
	// amplification a k-hop path multiplies the paper's overhead by).
	InstallHopByHop InstallMode = iota
	// InstallPath answers the first miss with the whole route: the miss
	// switch gets its flow_mod and packet_out, and every downstream path
	// switch attached to the same controller gets its flow_mod in the same
	// batched decision (one controller CPU job, messages back-to-back via
	// the AppendEncode path). Downstream rules race the released packet
	// down the path and normally win: the data packet must serialize onto
	// each 100 Mbps data link while the flow_mods cross the parallel
	// control links concurrently.
	InstallPath
)

func (m InstallMode) String() string {
	if m == InstallPath {
		return "path"
	}
	return "hop"
}

// ParseInstallMode parses "hop" or "path".
func ParseInstallMode(s string) (InstallMode, error) {
	switch s {
	case "hop":
		return InstallHopByHop, nil
	case "path":
		return InstallPath, nil
	}
	return 0, fmt.Errorf("topo: unknown install mode %q (want hop or path)", s)
}

// PathForwarder is the fabric controller application: a reactive forwarder
// that routes by the topology's shortest-path tables instead of a static
// prefix list, knows which switch each controller connection belongs to,
// and (in InstallPath mode) installs the whole route on the first miss.
//
// One PathForwarder serves one SimController; with a sharded control plane
// each shard gets its own instance over the shared read-only Graph.
type PathForwarder struct {
	g    *Graph
	mode InstallMode
	cfg  controller.ForwarderConfig

	connSwitch map[int]int // controller conn -> switch index
	switchConn map[int]int // switch index -> conn on this controller

	// Recovery state (recovery.go): the forwarder routes by table, an
	// immutable snapshot swapped whole on every learned edge transition.
	// masteredOrder keeps flush emission deterministic.
	table         *RouteTable
	failedEdges   map[EdgeKey]bool
	masteredOrder []int
	peerNotify    func(e EdgeKey, down bool)

	// tm, when non-nil, is the flow-table management layer: it tracks
	// per-switch occupancy from flow_removed / table-full feedback and
	// compresses per-flow rules into destination-prefix wildcards once a
	// switch's table pressure crosses its threshold.
	tm *tablemgmt.Tracker

	packetIns     uint64
	pathInstalls  uint64 // downstream flow_mods sent by path installation
	remoteSkips   uint64 // path hops skipped because another shard masters them
	unroutable    uint64
	reroutedPaths uint64 // (switch, host) next hops changed by table swaps
	blackholes    uint64 // misses for destinations a failure cut off
}

var _ controller.ConnApp = (*PathForwarder)(nil)

// NewPathForwarder builds the application over a built graph.
func NewPathForwarder(g *Graph, mode InstallMode, cfg controller.ForwarderConfig) *PathForwarder {
	return &PathForwarder{
		g:          g,
		mode:       mode,
		cfg:        cfg,
		table:      g.Routes(),
		connSwitch: make(map[int]int),
		switchConn: make(map[int]int),
	}
}

// RegisterConn tells the forwarder that controller connection conn carries
// switch sw and that this controller masters the switch — the connection
// becomes a path-install target.
func (p *PathForwarder) RegisterConn(conn, sw int) {
	p.connSwitch[conn] = sw
	if _, ok := p.switchConn[sw]; !ok {
		p.switchConn[sw] = conn
		p.masteredOrder = append(p.masteredOrder, sw)
	}
}

// RegisterStandbyConn registers a backup connection: misses arriving on it
// (after a master crash hands the switch over) are answered, but the switch
// is not a path-install target here — its master installs its rules, and a
// shard never pushes rules onto switches it merely backs up.
func (p *PathForwarder) RegisterStandbyConn(conn, sw int) {
	p.connSwitch[conn] = sw
}

// EnableTableMgmt turns on the wildcard aggregation policy with the given
// configuration. Must be called before the forwarder handles traffic.
func (p *PathForwarder) EnableTableMgmt(cfg tablemgmt.Config) error {
	tm, err := tablemgmt.New(cfg)
	if err != nil {
		return err
	}
	p.tm = tm
	return nil
}

// TableMgmt reports the aggregation layer's counters; ok is false when the
// layer is disabled.
func (p *PathForwarder) TableMgmt() (tablemgmt.Stats, bool) {
	if p.tm == nil {
		return tablemgmt.Stats{}, false
	}
	return p.tm.Stats(), true
}

// Name implements controller.App.
func (p *PathForwarder) Name() string { return "path-forwarder" }

// HandlePacketIn implements controller.App. The fabric always attaches
// switches with explicit connections, so the conn-less entry point only
// exists to satisfy the interface.
func (p *PathForwarder) HandlePacketIn(*openflow.PacketIn, uint32) ([]openflow.Message, error) {
	return nil, fmt.Errorf("topo: PathForwarder needs connection dispatch (use SimController.AttachConn)")
}

// HandlePacketInConn implements controller.ConnApp: route the miss by the
// topology tables and answer with this hop's rule — plus, in path mode,
// rules for every downstream hop this controller masters.
func (p *PathForwarder) HandlePacketInConn(conn int, pi *openflow.PacketIn, xid uint32) ([]controller.Directed, error) {
	p.packetIns++
	sw, ok := p.connSwitch[conn]
	if !ok {
		return nil, fmt.Errorf("topo: packet_in on unregistered connection %d", conn)
	}
	frame, err := packet.ParseHeaders(pi.Data)
	if err != nil {
		return nil, fmt.Errorf("topo: parsing packet_in payload: %w", err)
	}
	dst, ok := p.g.HostByAddr(frame.DstIP)
	if !ok {
		return p.drop(conn, pi), nil
	}
	out, ok := p.table.NextHopPort(sw, dst)
	if !ok {
		if _, reachable := p.g.NextHopPort(sw, dst); reachable {
			// Routable on the pristine graph, not on the failure-masked one:
			// a failure cut this destination off. Named separately from
			// plain unroutability so survivability runs can tell the two
			// apart.
			p.blackholes++
		}
		return p.drop(conn, pi), nil
	}
	var directed []controller.Directed
	if p.tm != nil && p.tm.Covered(sw, frame.DstIP, out) {
		// An aggregate rule already forwards this destination: skip the
		// per-flow install and only release the buffered packet (mirroring
		// InstallMessages' packet_out shape).
		po := &openflow.PacketOut{
			BufferID: pi.BufferID,
			InPort:   pi.InPort,
			Actions:  []openflow.Action{&openflow.ActionOutput{Port: out, MaxLen: 0xffff}},
		}
		if pi.BufferID == openflow.NoBuffer {
			po.Data = pi.Data
		}
		directed = append(directed, controller.Directed{Conn: conn, Msg: po})
	} else {
		msgs := p.cfg.InstallMessages(pi, frame, out)
		for _, m := range msgs {
			directed = append(directed, controller.Directed{Conn: conn, Msg: m})
		}
		directed = p.noteInstall(directed, conn, sw, p.cfg.MatchFor(pi.InPort, frame), frame.DstIP, out)
	}
	if p.mode != InstallPath {
		return directed, nil
	}
	hops, err := p.table.PathFrom(sw, pi.InPort, dst)
	if err != nil {
		return nil, err
	}
	for _, hop := range hops[1:] { // hops[0] is the miss switch, answered above
		hopConn, ok := p.switchConn[hop.Switch]
		if !ok {
			// Another shard masters this hop; it will answer that switch's
			// own miss. Sharding dilutes the batch — by design, and the
			// sweep measures exactly how much.
			p.remoteSkips++
			continue
		}
		if p.tm != nil && p.tm.Covered(hop.Switch, frame.DstIP, hop.Exit) {
			// Covered downstream hops need nothing: no buffer is waiting
			// there, the aggregate already forwards the flow.
			continue
		}
		p.pathInstalls++
		match := p.cfg.MatchFor(hop.Entry, frame)
		directed = append(directed, controller.Directed{
			Conn: hopConn,
			Msg:  p.cfg.RuleFor(match, hop.Exit),
		})
		directed = p.noteInstall(directed, hopConn, hop.Switch, match, frame.DstIP, hop.Exit)
	}
	return directed, nil
}

// noteInstall records one per-flow install with the table-management layer
// and appends any aggregation messages (wildcard flow_mod plus strict
// deletes) it triggers, directed at the same switch.
func (p *PathForwarder) noteInstall(directed []controller.Directed, conn, sw int, match openflow.Match, dst netip.Addr, out uint16) []controller.Directed {
	if p.tm == nil {
		return directed
	}
	for _, m := range p.tm.NoteInstall(sw, match, p.cfg.EffectivePriority(), dst, out) {
		directed = append(directed, controller.Directed{Conn: conn, Msg: m})
	}
	return directed
}

// HandleFlowRemovedConn implements controller.FlowRemovedApp: rule-lifetime
// notifications feed the table-management occupancy estimate.
func (p *PathForwarder) HandleFlowRemovedConn(conn int, fr *openflow.FlowRemoved) ([]controller.Directed, error) {
	if p.tm == nil {
		return nil, nil
	}
	sw, ok := p.connSwitch[conn]
	if !ok {
		return nil, fmt.Errorf("topo: flow_removed on unregistered connection %d", conn)
	}
	p.tm.NoteFlowRemoved(sw, fr)
	return nil, nil
}

// HandleErrorConn implements controller.ErrorApp: all-tables-full
// rejections tell the table-management layer an install never landed.
func (p *PathForwarder) HandleErrorConn(conn int, e *openflow.ErrorMsg) ([]controller.Directed, error) {
	if p.tm == nil {
		return nil, nil
	}
	sw, ok := p.connSwitch[conn]
	if !ok {
		return nil, fmt.Errorf("topo: error message on unregistered connection %d", conn)
	}
	if e.ErrType == openflow.ErrTypeFlowModFailed && e.Code == openflow.ErrCodeAllTablesFull {
		p.tm.NoteTableFull(sw)
	}
	return nil, nil
}

// drop answers an unroutable miss: release the buffered packet with no
// actions (freeing the unit) instead of flooding — a fabric with cycles
// must never flood blindly.
func (p *PathForwarder) drop(conn int, pi *openflow.PacketIn) []controller.Directed {
	p.unroutable++
	if pi.BufferID == openflow.NoBuffer {
		return nil
	}
	return []controller.Directed{{
		Conn: conn,
		Msg:  &openflow.PacketOut{BufferID: pi.BufferID, InPort: pi.InPort},
	}}
}

// Stats reports the forwarder's decision counters: packet_ins handled,
// downstream rules pushed by path installation, path hops skipped because
// another shard masters them, and unroutable drops.
func (p *PathForwarder) Stats() (packetIns, pathInstalls, remoteSkips, unroutable uint64) {
	return p.packetIns, p.pathInstalls, p.remoteSkips, p.unroutable
}
