package chaos

import (
	"testing"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/sim"
)

func TestSymmetricLoss(t *testing.T) {
	p := SymmetricLoss(0.05)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !p.Enabled() {
		t.Error("plan with 5% loss reports disabled")
	}
	if p.ControlUp.LossRate != 0.05 || p.ControlDown.LossRate != 0.05 {
		t.Errorf("loss rates = %g/%g, want 0.05 both ways", p.ControlUp.LossRate, p.ControlDown.LossRate)
	}
}

func TestZeroPlanDisabled(t *testing.T) {
	var p Plan
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.Enabled() {
		t.Error("zero plan reports enabled")
	}
}

func TestGilbertElliottFor(t *testing.T) {
	ge, err := GilbertElliottFor(0.05, 4)
	if err != nil {
		t.Fatalf("GilbertElliottFor: %v", err)
	}
	if got := ge.MeanLossRate(); got < 0.0499 || got > 0.0501 {
		t.Errorf("MeanLossRate = %g, want 0.05", got)
	}
	if got := 1 / ge.PBadGood; got < 3.99 || got > 4.01 {
		t.Errorf("mean burst length = %g, want 4", got)
	}
	if _, err := GilbertElliottFor(0, 4); err == nil {
		t.Error("accepted zero mean loss")
	}
	if _, err := GilbertElliottFor(0.5, 0.5); err == nil {
		t.Error("accepted burst length < 1")
	}
}

func TestBurstyLossIndependentState(t *testing.T) {
	p, err := BurstyLoss(0.1, 5)
	if err != nil {
		t.Fatalf("BurstyLoss: %v", err)
	}
	if p.ControlUp.Gilbert == p.ControlDown.Gilbert {
		t.Error("up and down directions share one Gilbert model pointer")
	}
}

func TestOutagePlan(t *testing.T) {
	p := Outage(10*time.Millisecond, 20*time.Millisecond)
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.SwitchOutages) != 1 || !p.SwitchOutages[0].Contains(15*time.Millisecond) {
		t.Errorf("outage windows = %+v", p.SwitchOutages)
	}
}

func TestInjectorDropWindow(t *testing.T) {
	k := sim.New(1)
	inj := NewInjector(k, ControllerFaults{
		Drops: []netem.Window{{Start: 10 * time.Millisecond, End: 20 * time.Millisecond}},
	}, nil)
	var delivered []time.Duration
	send := func(at time.Duration) {
		k.At(at, func() {
			inj.Wrap(func() { delivered = append(delivered, k.Now()) })()
		})
	}
	send(5 * time.Millisecond)
	send(15 * time.Millisecond)
	send(25 * time.Millisecond)
	k.Run()
	if len(delivered) != 2 || delivered[0] != 5*time.Millisecond || delivered[1] != 25*time.Millisecond {
		t.Errorf("delivered = %v, want [5ms 25ms]", delivered)
	}
	if inj.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", inj.Dropped)
	}
}

func TestInjectorStallHoldsAndReplaysInOrder(t *testing.T) {
	k := sim.New(1)
	inj := NewInjector(k, ControllerFaults{
		Stalls: []netem.Window{{Start: 10 * time.Millisecond, End: 20 * time.Millisecond}},
	}, nil)
	type ev struct {
		id int
		at time.Duration
	}
	var delivered []ev
	send := func(id int, at time.Duration) {
		k.At(at, func() {
			inj.Wrap(func() { delivered = append(delivered, ev{id, k.Now()}) })()
		})
	}
	send(0, 5*time.Millisecond)
	send(1, 12*time.Millisecond)
	send(2, 14*time.Millisecond)
	send(3, 25*time.Millisecond)
	k.Run()
	if len(delivered) != 4 {
		t.Fatalf("delivered %d messages, want 4: %v", len(delivered), delivered)
	}
	// Stalled messages 1 and 2 replay in arrival order at the window end.
	want := []ev{
		{0, 5 * time.Millisecond},
		{1, 20 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{3, 25 * time.Millisecond},
	}
	for i, w := range want {
		if delivered[i] != w {
			t.Errorf("delivered[%d] = %+v, want %+v", i, delivered[i], w)
		}
	}
	if inj.Stalled != 2 {
		t.Errorf("Stalled = %d, want 2", inj.Stalled)
	}
	if inj.HeldCount() != 0 {
		t.Errorf("HeldCount = %d after flush, want 0", inj.HeldCount())
	}
}

func TestInjectorCrashDropsAndRestarts(t *testing.T) {
	k := sim.New(1)
	restarts := 0
	inj := NewInjector(k, ControllerFaults{
		Crashes: []netem.Window{{Start: 10 * time.Millisecond, End: 20 * time.Millisecond}},
	}, func() { restarts++ })
	delivered := 0
	send := func(at time.Duration) {
		k.At(at, func() { inj.Wrap(func() { delivered++ })() })
	}
	send(15 * time.Millisecond)
	send(25 * time.Millisecond)
	k.Run()
	if delivered != 1 {
		t.Errorf("delivered = %d, want 1", delivered)
	}
	if inj.Crashed != 1 {
		t.Errorf("Crashed = %d, want 1", inj.Crashed)
	}
	if restarts != 1 {
		t.Errorf("restarts = %d, want 1", restarts)
	}
}
