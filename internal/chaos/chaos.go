// Package chaos composes netem impairments and controller-side faults into
// named, seeded fault plans for the resilience experiments. A Plan is pure
// configuration: the testbed applies its link impairments to the control
// channel, schedules its outage windows as fail-mode toggles on the switch,
// and wraps the sim controller's deliver/emit path in an Injector that can
// stall, drop, or crash/restart the controller mid-sweep.
//
// Everything is driven off the sim kernel RNG (via netem's per-payload
// draws) or explicit time windows, so a plan replays identically for a
// given kernel seed — the property the acceptance criteria lean on.
package chaos

import (
	"fmt"
	"time"

	"sdnbuffer/internal/netem"
	"sdnbuffer/internal/sim"
)

// ControllerFaults describes controller-side misbehavior, expressed as time
// windows against the sim clock.
//
// Stalls model a controller that is alive but not making progress (GC pause,
// overload): messages arriving during a stall window are held and replayed,
// in arrival order, when the window ends. Drops model silent discard (e.g. a
// crashed worker thread): messages arriving in a drop window vanish.
// Crashes model a full controller restart: like a drop window, but on
// recovery the controller's state is reset via the RestartFn the testbed
// wires in (for the reactive forwarder this clears nothing — it is
// stateless — but the hook is where e.g. learned topology would be wiped).
type ControllerFaults struct {
	Stalls  []netem.Window
	Drops   []netem.Window
	Crashes []netem.Window
}

// Validate rejects malformed windows.
func (cf *ControllerFaults) Validate() error {
	for _, set := range [][]netem.Window{cf.Stalls, cf.Drops, cf.Crashes} {
		for _, w := range set {
			if err := w.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Enabled reports whether any fault window is configured.
func (cf *ControllerFaults) Enabled() bool {
	return len(cf.Stalls)+len(cf.Drops)+len(cf.Crashes) > 0
}

// Plan is a complete fault scenario for one testbed run.
type Plan struct {
	// Name labels the plan in reports and logs.
	Name string
	// ControlUp impairs the switch→controller direction (packet_ins and
	// re-requests travel here — the paper's loss-sensitive direction).
	ControlUp netem.Impairment
	// ControlDown impairs the controller→switch direction (flow_mods and
	// packet_outs).
	ControlDown netem.Impairment
	// Controller injects faults at the controller itself, after the control
	// channel has delivered the message.
	Controller ControllerFaults
	// SwitchOutages are windows during which the switch treats the control
	// channel as dead: the datapath flips into its configured fail mode
	// (fail-secure or fail-standalone) at Start and restores at End. The
	// testbed also blanks both control links over the same windows so no
	// message sneaks through.
	SwitchOutages []netem.Window
}

// Validate checks every component of the plan.
func (p *Plan) Validate() error {
	if err := p.ControlUp.Validate(); err != nil {
		return fmt.Errorf("chaos: plan %q control-up: %w", p.Name, err)
	}
	if err := p.ControlDown.Validate(); err != nil {
		return fmt.Errorf("chaos: plan %q control-down: %w", p.Name, err)
	}
	if err := p.Controller.Validate(); err != nil {
		return fmt.Errorf("chaos: plan %q controller: %w", p.Name, err)
	}
	for _, w := range p.SwitchOutages {
		if err := w.Validate(); err != nil {
			return fmt.Errorf("chaos: plan %q switch outage: %w", p.Name, err)
		}
	}
	return nil
}

// Enabled reports whether the plan injects any fault at all.
func (p *Plan) Enabled() bool {
	return p.ControlUp.Enabled() || p.ControlDown.Enabled() ||
		p.Controller.Enabled() || len(p.SwitchOutages) > 0
}

// SymmetricLoss builds a plan dropping each control message independently
// with probability p in both directions.
func SymmetricLoss(p float64) *Plan {
	return &Plan{
		Name:        fmt.Sprintf("loss-%g", p),
		ControlUp:   netem.Impairment{LossRate: p},
		ControlDown: netem.Impairment{LossRate: p},
	}
}

// GilbertElliottFor returns a two-state loss model whose stationary loss
// rate is meanLoss with mean burst length burstLen (in payloads). Loss is
// total inside the bad state and zero in the good state, the standard
// simplified Gilbert configuration.
func GilbertElliottFor(meanLoss float64, burstLen float64) (*netem.GilbertElliott, error) {
	if meanLoss <= 0 || meanLoss >= 1 {
		return nil, fmt.Errorf("chaos: mean loss %g outside (0, 1)", meanLoss)
	}
	if burstLen < 1 {
		return nil, fmt.Errorf("chaos: burst length %g < 1", burstLen)
	}
	// With LossBad = 1, stationary loss = pGB/(pGB+pBG) and mean burst
	// length = 1/pBG. Solve for the transition probabilities.
	pBG := 1 / burstLen
	pGB := meanLoss * pBG / (1 - meanLoss)
	if pGB > 1 {
		return nil, fmt.Errorf("chaos: mean loss %g unreachable with burst length %g", meanLoss, burstLen)
	}
	return &netem.GilbertElliott{PGoodBad: pGB, PBadGood: pBG, LossBad: 1}, nil
}

// BurstyLoss builds a symmetric Gilbert–Elliott plan at the given stationary
// loss rate and mean burst length.
func BurstyLoss(meanLoss, burstLen float64) (*Plan, error) {
	ge, err := GilbertElliottFor(meanLoss, burstLen)
	if err != nil {
		return nil, err
	}
	up, down := *ge, *ge
	return &Plan{
		Name:        fmt.Sprintf("burst-%g-len%g", meanLoss, burstLen),
		ControlUp:   netem.Impairment{Gilbert: &up},
		ControlDown: netem.Impairment{Gilbert: &down},
	}, nil
}

// Outage builds a plan with a single switch-visible control-channel blackout.
func Outage(start, end time.Duration) *Plan {
	return &Plan{
		Name:          fmt.Sprintf("outage-%v-%v", start, end),
		SwitchOutages: []netem.Window{{Start: start, End: end}},
	}
}

// Clock is the minimal sim-time source the Injector needs (satisfied by
// *sim.Kernel).
type Clock interface {
	Now() time.Duration
	At(t time.Duration, fn func()) *sim.Event
}

// Injector applies ControllerFaults around a message-delivery function. It
// is single-goroutine like the kernel it runs on.
type Injector struct {
	clock  Clock
	faults ControllerFaults
	held   []func() // messages parked by an active stall window

	// Counters for reports.
	Stalled int64
	Dropped int64
	Crashed int64

	// RestartFn, when set, runs once at the end of each crash window,
	// modeling controller state reset on restart.
	RestartFn func()
}

// NewInjector builds an injector for the given fault windows. Stall-window
// flushes are scheduled eagerly so held messages replay even if no further
// traffic arrives.
func NewInjector(clock Clock, faults ControllerFaults, restart func()) *Injector {
	inj := &Injector{clock: clock, faults: faults, RestartFn: restart}
	for _, w := range faults.Stalls {
		w := w
		clock.At(w.End, func() { inj.flush() })
	}
	for _, w := range faults.Crashes {
		w := w
		clock.At(w.End, func() {
			if inj.RestartFn != nil {
				inj.RestartFn()
			}
		})
	}
	return inj
}

// Wrap decorates deliver with the configured faults. The returned function
// is what the testbed hands to the control link in place of the raw
// controller deliver.
func (inj *Injector) Wrap(deliver func()) func() {
	return func() {
		now := inj.clock.Now()
		for _, w := range inj.faults.Crashes {
			if w.Contains(now) {
				inj.Crashed++
				return
			}
		}
		for _, w := range inj.faults.Drops {
			if w.Contains(now) {
				inj.Dropped++
				return
			}
		}
		for _, w := range inj.faults.Stalls {
			if w.Contains(now) {
				inj.Stalled++
				inj.held = append(inj.held, deliver)
				return
			}
		}
		deliver()
	}
}

// flush replays messages parked by a stall window, in arrival order.
func (inj *Injector) flush() {
	held := inj.held
	inj.held = nil
	for _, fn := range held {
		fn()
	}
}

// HeldCount reports messages currently parked by a stall window.
func (inj *Injector) HeldCount() int { return len(inj.held) }
